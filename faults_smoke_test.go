package jury_test

import (
	"testing"
	"time"

	jury "github.com/jurysdn/jury"
	"github.com/jurysdn/jury/internal/controller"
	"github.com/jurysdn/jury/internal/core"
	"github.com/jurysdn/jury/internal/faults"
	"github.com/jurysdn/jury/internal/policy"
	"github.com/jurysdn/jury/internal/store"
	"github.com/jurysdn/jury/internal/workload"
)

func newFaultSim(t *testing.T, seed int64, policies []policy.Policy) *jury.Simulation {
	t.Helper()
	sim, err := jury.New(jury.Config{
		Seed:        seed,
		Kind:        jury.ONOS,
		ClusterSize: 3,
		EnableJury:  true,
		K:           2,
		Policies:    policies,
	})
	if err != nil {
		t.Fatal(err)
	}
	sim.Boot()
	return sim
}

func driveAndCollect(t *testing.T, sim *jury.Simulation, d time.Duration) []core.Result {
	t.Helper()
	until := sim.Now() + d
	sim.Driver.Start(workload.ConstantRate(50), until)
	if err := sim.Run(d + time.Second); err != nil {
		t.Fatal(err)
	}
	return sim.Validator().Alarms()
}

func TestDetectDatabaseLocking(t *testing.T) {
	sim := newFaultSim(t, 11, nil)
	target := sim.Controller(1)
	f := faults.InjectDatabaseLocking(target)
	// Reconnect a switch governed by C1 to trigger FEATURES_REPLY.
	gov := target.Governed()
	if len(gov) == 0 {
		t.Fatal("C1 governs nothing")
	}
	sw, _ := sim.Fabric.Switch(gov[0])
	target.ConnectSwitch(gov[0], sw.HandleControllerMessage)
	alarms := driveAndCollect(t, sim, 2*time.Second)
	if f.Injections() == 0 {
		t.Fatal("fault never manifested")
	}
	for _, a := range alarms {
		if a.Fault == core.FaultOmission && a.Offender == store.NodeID(1) {
			t.Logf("detected: %s in %v", a.Reason, a.DetectionTime)
			return
		}
	}
	t.Fatalf("database locking not detected; alarms=%v", alarms)
}

func TestDetectLinkFailure(t *testing.T) {
	sim := newFaultSim(t, 12, nil)
	target := sim.Controller(2)
	f := faults.InjectLinkFailure(target)
	// Flap a link whose liveness master is C2 so rediscovery makes C2
	// rewrite the LinksDB entry (which the fault flips to "down").
	var flapped bool
	for _, l := range sim.Topo.Links() {
		if m, ok := sim.Members.LinkLivenessMaster(l.Src.DPID, l.Dst.DPID); ok && m == target.ID() {
			sim.Fabric.SetLinkDown(l.Src, true)
			src := l.Src
			sim.Engine.Schedule(4*time.Second, func() { sim.Fabric.SetLinkDown(src, false) })
			flapped = true
			break
		}
	}
	if !flapped {
		t.Fatal("no link governed by C2 found")
	}
	alarms := driveAndCollect(t, sim, 8*time.Second)
	if f.Injections() == 0 {
		t.Skip("no LinksDB writes during window")
	}
	for _, a := range alarms {
		if a.Fault == core.FaultValue && a.Offender == store.NodeID(2) {
			t.Logf("detected: %s in %v", a.Reason, a.DetectionTime)
			return
		}
	}
	t.Fatalf("link failure not detected; injections=%d alarms=%v", f.Injections(), alarms)
}

func TestDetectFlowModDrop(t *testing.T) {
	sim := newFaultSim(t, 13, nil)
	target := sim.Controller(3)
	f := faults.InjectFlowModDrop(target, 1)
	alarms := driveAndCollect(t, sim, 3*time.Second)
	if f.Injections() == 0 {
		t.Fatal("fault never manifested")
	}
	for _, a := range alarms {
		if a.Fault == core.FaultMissingNetwork && a.Offender == store.NodeID(3) {
			t.Logf("detected: %s in %v", a.Reason, a.DetectionTime)
			return
		}
	}
	t.Fatalf("FLOW_MOD drop not detected; injections=%d alarms=%d", f.Injections(), len(alarms))
}

func TestDetectUndesirableFlowMod(t *testing.T) {
	sim := newFaultSim(t, 14, nil)
	target := sim.Controller(1)
	f := faults.InjectUndesirableFlowMod(target)
	alarms := driveAndCollect(t, sim, 3*time.Second)
	if f.Injections() == 0 {
		t.Fatal("fault never manifested")
	}
	for _, a := range alarms {
		if a.Fault == core.FaultInconsistent {
			t.Logf("detected: %s in %v", a.Reason, a.DetectionTime)
			return
		}
	}
	t.Fatalf("undesirable FLOW_MOD not detected; injections=%d alarms=%d", f.Injections(), len(alarms))
}

func TestDetectFaultyProactiveActionViaPolicy(t *testing.T) {
	policies := []policy.Policy{{
		Name:    "no-proactive-topology-changes",
		Trigger: "internal",
		Cache:   "LinksDB",
	}}
	sim := newFaultSim(t, 15, policies)
	target := sim.Controller(2)
	links := sim.Topo.Links()
	key := controller.LinkKey(links[0].Src, links[0].Dst)
	f := faults.InjectFaultyProactiveAction(target, key)
	f.Fire()
	if err := sim.Run(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	for _, a := range sim.Validator().Alarms() {
		if a.Fault == core.FaultPolicy && a.Offender == store.NodeID(2) {
			t.Logf("detected: %s in %v", a.Reason, a.DetectionTime)
			return
		}
	}
	t.Fatalf("faulty proactive action not detected; alarms=%v", sim.Validator().Alarms())
}

func TestDetectPendingAddViaReconciliation(t *testing.T) {
	// The appendix PENDING_ADD fault: the switch accepts FLOW_MODs but
	// never moves entries to ADDED, so the ONOS-style reconciler keeps
	// the FlowsDB rules in PENDING_ADD and eventually marks them stuck —
	// which an administrator policy turns into an alarm.
	profile := controller.ONOSProfile()
	profile.ReconcilePeriod = 500 * time.Millisecond
	sim, err := jury.New(jury.Config{
		Seed:        31,
		Kind:        jury.ONOS,
		Profile:     &profile,
		ClusterSize: 3,
		EnableJury:  true,
		K:           2,
		Policies: []policy.Policy{{
			Name:  "no-stuck-rules",
			Cache: "FlowsDB",
			Entry: "*,*" + controller.RuleStuck + "*",
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	sim.Boot()
	target := sim.Controller(1)
	dpid := target.Governed()[0]
	sw, _ := sim.Fabric.Switch(dpid)
	faults.InjectPendingAdd(target, sw)
	alarms := driveAndCollect(t, sim, 4*time.Second)
	for _, a := range alarms {
		if a.Fault == core.FaultPolicy && a.Reason == "policy violation: no-stuck-rules" {
			t.Logf("detected: %s in %v", a.Reason, a.DetectionTime)
			return
		}
	}
	t.Fatalf("PENDING_ADD not detected; alarms=%d", len(alarms))
}

func TestDetectByzantineCorruption(t *testing.T) {
	sim := newFaultSim(t, 37, nil)
	target := sim.Controller(2)
	f := faults.InjectByzantineCorruption(target, sim.Engine.Rand(), 100)
	alarms := driveAndCollect(t, sim, 3*time.Second)
	if f.Injections() == 0 {
		t.Fatal("fault never manifested")
	}
	// Corrupted primary writes diverge from the secondaries' replicated
	// executions (T1 value faults) or break cache/network sanity.
	for _, a := range alarms {
		if a.Offender == store.NodeID(2) &&
			(a.Fault == core.FaultValue || a.Fault == core.FaultInconsistent) {
			t.Logf("detected: %s in %v", a.Reason, a.DetectionTime)
			return
		}
	}
	t.Fatalf("byzantine corruption not detected; injections=%d alarms=%d", f.Injections(), len(alarms))
}

func TestDetectMasterElection(t *testing.T) {
	sim := newFaultSim(t, 39, nil)
	// The highest-ID controller wins liveness elections; after its
	// "reboot" with a lower election ID it stops tracking its links.
	target := sim.Controller(3)
	f := faults.InjectMasterElection(target)
	// Flap a cross-governed link whose liveness master is the target so
	// rediscovery requires the (now silent) liveness master to act.
	var flapped bool
	for _, l := range sim.Topo.Links() {
		ma, _ := sim.Members.Master(l.Src.DPID)
		mb, _ := sim.Members.Master(l.Dst.DPID)
		if ma == mb {
			continue
		}
		if m, ok := sim.Members.LinkLivenessMaster(l.Src.DPID, l.Dst.DPID); ok && m == target.ID() {
			src := l.Src
			sim.Fabric.SetLinkDown(src, true)
			sim.Engine.Schedule(2*time.Second, func() { sim.Fabric.SetLinkDown(src, false) })
			flapped = true
			break
		}
	}
	if !flapped {
		t.Fatal("no cross-governed link with target as liveness master")
	}
	alarms := driveAndCollect(t, sim, 6*time.Second)
	_ = f
	for _, a := range alarms {
		if a.Fault == core.FaultOmission && a.Offender == store.NodeID(3) {
			t.Logf("detected: %s in %v", a.Reason, a.DetectionTime)
			return
		}
	}
	t.Fatalf("master election fault not detected; alarms=%d", len(alarms))
}

func TestDetectFlowModDropODL(t *testing.T) {
	// The FLOW_MOD-drop bug is an ODL bug (§III-B T2); verify detection
	// under the ODL profile too (strong consistency, encapsulating
	// replication path, SINGLE_CONTROLLER mastership).
	sim, err := jury.New(jury.Config{
		Seed:        41,
		Kind:        jury.ODL,
		ClusterSize: 3,
		EnableJury:  true,
		K:           2,
	})
	if err != nil {
		t.Fatal(err)
	}
	sim.Boot()
	target := sim.Controller(3)
	f := faults.InjectFlowModDrop(target, 1)
	until := sim.Now() + 4*time.Second
	sim.Driver.LocalPairs = true
	sim.Driver.Start(workload.ConstantRate(40), until)
	if err := sim.Run(6 * time.Second); err != nil {
		t.Fatal(err)
	}
	if f.Injections() == 0 {
		t.Fatal("fault never manifested")
	}
	for _, a := range sim.Validator().Alarms() {
		if a.Fault == core.FaultMissingNetwork && a.Offender == store.NodeID(3) {
			t.Logf("detected on ODL: %s in %v", a.Reason, a.DetectionTime)
			return
		}
	}
	t.Fatalf("ODL FLOW_MOD drop not detected; injections=%d alarms=%d",
		f.Injections(), len(sim.Validator().Alarms()))
}

func TestDetectUndesirableFlowModODL(t *testing.T) {
	sim, err := jury.New(jury.Config{
		Seed:        43,
		Kind:        jury.ODL,
		ClusterSize: 3,
		EnableJury:  true,
		K:           2,
	})
	if err != nil {
		t.Fatal(err)
	}
	sim.Boot()
	target := sim.Controller(2)
	f := faults.InjectUndesirableFlowMod(target)
	until := sim.Now() + 4*time.Second
	sim.Driver.LocalPairs = true
	sim.Driver.Start(workload.ConstantRate(40), until)
	if err := sim.Run(6 * time.Second); err != nil {
		t.Fatal(err)
	}
	if f.Injections() == 0 {
		t.Fatal("fault never manifested")
	}
	for _, a := range sim.Validator().Alarms() {
		if a.Fault == core.FaultInconsistent {
			t.Logf("detected on ODL: %s in %v", a.Reason, a.DetectionTime)
			return
		}
	}
	t.Fatalf("ODL undesirable FLOW_MOD not detected; injections=%d", f.Injections())
}
