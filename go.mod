module github.com/jurysdn/jury

go 1.22
