package jury

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"github.com/jurysdn/jury/internal/core"
	"github.com/jurysdn/jury/internal/faults"
	"github.com/jurysdn/jury/internal/topo"
	"github.com/jurysdn/jury/internal/workload"
)

// shardedScenario runs the golden 4-switch scenario with the validator
// partitioned across the given shard count and one controller dropping a
// FLOW_MOD (so the run raises real alarms), returning the full decision
// sequence, the JSONL trace and the simulation for counter reads.
func shardedScenario(t *testing.T, seed int64, shards int) ([]core.Result, string, *Simulation) {
	t.Helper()
	top, err := topo.Linear(4)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := New(Config{
		Seed:           seed,
		Kind:           ONOS,
		ClusterSize:    3,
		EnableJury:     true,
		K:              2,
		Shards:         shards,
		CustomTopology: top,
		EnableTracing:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	var results []core.Result
	sim.Validator().OnResult = func(r core.Result) { results = append(results, r) }
	sim.Boot()
	faults.InjectFlowModDrop(sim.Controller(1), 1)
	until := sim.Now() + 500*time.Millisecond
	sim.Driver.LocalPairs = true
	sim.Driver.Start(workload.ConstantRate(200), until)
	if err := sim.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	if err := sim.Tracer().WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	return results, b.String(), sim
}

// TestShardCountDeterminism is the sharded validation plane's end-to-end
// acceptance test: for a fixed seed, the complete decision sequence, the
// fault count and the golden JSONL trace must be byte-identical whether
// the validator runs on one shard or eight. Sharding is a throughput
// lever, never a semantic one.
func TestShardCountDeterminism(t *testing.T) {
	const seed = 7
	ref, refTrace, refSim := shardedScenario(t, seed, 1)
	if len(ref) == 0 {
		t.Fatal("scenario decided nothing")
	}
	if refSim.Validator().Faults() == 0 {
		t.Fatal("injected FLOW_MOD drop raised no alarm — too benign to validate")
	}
	for _, shards := range []int{2, 8} {
		got, trace, sim := shardedScenario(t, seed, shards)
		if !reflect.DeepEqual(ref, got) {
			t.Fatalf("shards=%d: decision sequence diverges from single-shard reference (%d vs %d results)",
				shards, len(got), len(ref))
		}
		if trace != refTrace {
			t.Fatalf("shards=%d: golden trace diverges (%d bytes vs %d reference)",
				shards, len(trace), len(refTrace))
		}
		v, vref := sim.Validator(), refSim.Validator()
		if v.Decided() != vref.Decided() || v.Faults() != vref.Faults() ||
			v.Timeouts() != vref.Timeouts() || v.NonDeterministic() != vref.NonDeterministic() {
			t.Fatalf("shards=%d: aggregate counters diverge", shards)
		}
		if !reflect.DeepEqual(vref.Alarms(), v.Alarms()) {
			t.Fatalf("shards=%d: alarm list diverges", shards)
		}
	}
}

// TestShardConfigValidation pins the façade contract: negative shard
// counts are rejected, zero defaults to the paper's single decision loop.
func TestShardConfigValidation(t *testing.T) {
	if _, err := New(Config{Kind: ONOS, ClusterSize: 3, EnableJury: true, K: 2, Shards: -1}); err == nil {
		t.Fatal("New accepted a negative shard count")
	}
	sim, err := New(Config{Kind: ONOS, ClusterSize: 3, EnableJury: true, K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := sim.Validator().Shards(); got != 1 {
		t.Fatalf("default Shards() = %d, want 1", got)
	}
}
