package jury

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"github.com/jurysdn/jury/internal/sweep"
	"github.com/jurysdn/jury/internal/topo"
	"github.com/jurysdn/jury/internal/workload"
)

// traceScenario runs the golden 4-switch scenario with tracing enabled and
// returns its JSONL trace plus the decided-trigger coverage numbers.
func traceScenario(seed int64) (jsonl string, completed, decided int64, err error) {
	top, err := topo.Linear(4)
	if err != nil {
		return "", 0, 0, err
	}
	sim, err := New(Config{
		Seed:           seed,
		Kind:           ONOS,
		ClusterSize:    3,
		EnableJury:     true,
		K:              2,
		CustomTopology: top,
		EnableTracing:  true,
	})
	if err != nil {
		return "", 0, 0, err
	}
	sim.Boot()
	until := sim.Now() + 500*time.Millisecond
	sim.Driver.LocalPairs = true
	sim.Driver.Start(workload.ConstantRate(200), until)
	if err := sim.Run(time.Second); err != nil {
		return "", 0, 0, err
	}
	var b bytes.Buffer
	if err := sim.Tracer().WriteJSONL(&b); err != nil {
		return "", 0, 0, err
	}
	return b.String(), sim.Tracer().CompletedTriggers(), sim.Validator().Decided(), nil
}

// TestGoldenTraceDeterministic is the tentpole's determinism acceptance
// test: the 4-switch scenario's JSONL trace must be byte-identical across
// repeated runs and across sweep parallelism widths 1 and 8 (the suite
// runs under -race in CI, so a racy tracer or engine would fail here).
func TestGoldenTraceDeterministic(t *testing.T) {
	const seed = 7
	ref, completed, decided, err := traceScenario(seed)
	if err != nil {
		t.Fatal(err)
	}
	if decided == 0 || completed == 0 {
		t.Fatalf("scenario decided %d triggers, traced %d end-to-end — too quiet to validate", decided, completed)
	}
	if completed < decided {
		t.Fatalf("trace covers %d of %d decided triggers, want full coverage", completed, decided)
	}
	if !strings.Contains(ref, `"name":"trigger"`) || !strings.Contains(ref, `"name":"validate"`) {
		t.Fatal("trace is missing root or validate spans")
	}

	type point struct{ Replica int }
	for _, parallelism := range []int{1, 8} {
		parallelism := parallelism
		t.Run(fmt.Sprintf("parallelism=%d", parallelism), func(t *testing.T) {
			params := make([]point, 8)
			for i := range params {
				params[i] = point{Replica: i}
			}
			results, err := sweep.Run(context.Background(),
				sweep.Config{RootSeed: 1, Parallelism: parallelism},
				params,
				func(_ context.Context, pt sweep.Point[point]) (string, error) {
					// Every point runs the same scenario with the same
					// fixed seed: identical inputs must yield identical
					// bytes no matter which worker runs them or when.
					jsonl, _, _, err := traceScenario(seed)
					return jsonl, err
				})
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range results {
				if r.Err != nil {
					t.Fatalf("point %d: %v", r.Point.Index, r.Err)
				}
				if r.Value != ref {
					t.Fatalf("point %d produced a divergent trace (%d bytes vs %d reference)",
						r.Point.Index, len(r.Value), len(ref))
				}
			}
		})
	}
}
