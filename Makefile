GO ?= go

.PHONY: build test race lint verify figures bench bench-obs bench-shard bench-load bench-wire trace

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The benign-trace sweep runs as parallel per-trace subtests through
# internal/sweep, so the race job scales with cores instead of running
# the traces back to back; -parallel bounds the subtest width and the
# timeout has headroom for single-core runners.
race:
	$(GO) test -race -timeout 30m -parallel 4 ./...

lint:
	$(GO) vet ./...
	$(GO) run ./cmd/jurylint ./...

# verify is the tier-1 gate: compile, vet, enforce the determinism &
# concurrency contract with jurylint, then run the test suite.
verify:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) run ./cmd/jurylint ./...
	$(GO) test ./...

# figures regenerates every TSV series through the cached sweep: reruns
# resume from .jurycache, so an interrupted campaign only re-executes
# the missing points. Delete .jurycache to force a cold regeneration.
figures:
	$(GO) run ./cmd/juryfig -all -progress -cache .jurycache > figures.tsv

# bench seeds the performance trajectory: the obs-overhead
# microbenchmarks and the validator submit path at full statistical
# weight, plus one pass over the root figure benchmarks, captured as
# BENCH_obs.json. The file embeds the raw text under .raw, so
#   jq -r .raw BENCH_obs.json | benchstat /dev/stdin
# reconstructs benchstat's native input for comparisons against later
# baselines.
bench:
	{ $(GO) test -run '^$$' -bench . -benchmem ./internal/obs ./internal/core; \
	  $(GO) test -run '^$$' -bench . -benchtime 1x -benchmem .; } \
	  | $(GO) run ./cmd/benchjson > BENCH_obs.json

# bench-obs is the observability-overhead regression step: it refreshes
# BENCH_obs.json (same recipe as bench, which now includes the flight
# recorder and series rows) and fails if the always-on recorder allocates
# on the Submit hot path (TestSubmitRecorderBoundedAlloc pins it at zero).
bench-obs:
	$(GO) test ./internal/core -run TestSubmitRecorderBoundedAlloc -count=1
	$(MAKE) bench

# bench-shard mints BENCH_shard.json: the sharded validation plane's
# Submit-throughput scaling curve at 1/2/4/8 shards (see the
# BenchmarkShardScaling doc comment and EXPERIMENTS.md for the
# bottleneck-shard methodology; submit_per_s at shards=8 must stay ≥4×
# the shards=1 value).
bench-shard:
	$(GO) test -run '^$$' -bench BenchmarkShardScaling -benchtime 10x . \
	  | $(GO) run ./cmd/benchjson > BENCH_shard.json

# bench-load mints BENCH_load.json: the generator hot path (events/s of
# streaming synthesis, zero allocs) plus the plane's Submit throughput
# under the streaming FatTree(8) workload at 1/2/4/8 shards (see the
# BenchmarkLoadStreamScaling doc comment and EXPERIMENTS.md for how to
# read submit_per_s/partition_x against the bottleneck shard).
bench-load:
	{ $(GO) test -run '^$$' -bench BenchmarkSourceNext -benchmem ./internal/loadgen; \
	  $(GO) test -run '^$$' -bench BenchmarkLoadStreamScaling -benchtime 3x .; } \
	  | $(GO) run ./cmd/benchjson > BENCH_load.json

# bench-wire mints BENCH_wire.json: both wire codecs moving the same
# seeded workload over a TCP loopback in one run (cmd/benchwire). The
# zero-alloc steady-state encode/decode invariant is pinned first, then
# the bench itself enforces binary >= 5x json envelopes/sec and RTT p99
# parity (see the cmd/benchwire doc comment for the methodology).
bench-wire:
	$(GO) test ./internal/wire -run TestBinCodecZeroAllocSteadyState -count=1
	$(GO) run ./cmd/benchwire -n 100000 -rtt 2000 -out BENCH_wire.json

# trace produces an example Chrome trace_event file from the quickstart
# scenario; open trace.json in chrome://tracing or https://ui.perfetto.dev.
trace:
	$(GO) run ./cmd/jurysim -n 3 -k 2 -duration 2s -rate 300 -trace-out trace.json
