GO ?= go

.PHONY: build test race lint verify figures

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The benign-trace sweep runs as parallel per-trace subtests through
# internal/sweep, so the race job scales with cores instead of running
# the traces back to back; -parallel bounds the subtest width and the
# timeout has headroom for single-core runners.
race:
	$(GO) test -race -timeout 20m -parallel 4 ./...

lint:
	$(GO) vet ./...
	$(GO) run ./cmd/jurylint ./...

# verify is the tier-1 gate: compile, vet, enforce the determinism &
# concurrency contract with jurylint, then run the test suite.
verify:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) run ./cmd/jurylint ./...
	$(GO) test ./...

# figures regenerates every TSV series through the cached sweep: reruns
# resume from .jurycache, so an interrupted campaign only re-executes
# the missing points. Delete .jurycache to force a cold regeneration.
figures:
	$(GO) run ./cmd/juryfig -all -progress -cache .jurycache > figures.tsv
