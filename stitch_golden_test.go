package jury

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"github.com/jurysdn/jury/internal/obs"
	"github.com/jurysdn/jury/internal/sweep"
)

// splitTraceByProcess partitions one scenario trace into the two JSONL
// streams a real deployment would write: validator-node spans (juryd's
// trace file) and everything else (the controller side, jurylive's file).
// This turns the single-process golden scenario into a faithful
// two-process stitch input without needing live TCP in the test.
func splitTraceByProcess(t *testing.T, jsonl string) (controller, validator string) {
	t.Helper()
	var ctrl, val strings.Builder
	for _, line := range strings.Split(strings.TrimSpace(jsonl), "\n") {
		var s obs.Span
		if err := json.Unmarshal([]byte(line), &s); err != nil {
			t.Fatalf("scenario span unparsable: %v", err)
		}
		if s.Node == "validator" {
			val.WriteString(line)
			val.WriteByte('\n')
		} else {
			ctrl.WriteString(line)
			ctrl.WriteByte('\n')
		}
	}
	return ctrl.String(), val.String()
}

// stitchScenario renders the golden scenario as a stitched two-process
// trace: JSONL merge plus Chrome trace, both byte-deterministic.
func stitchScenario(t *testing.T, seed int64) (merged, chrome string) {
	t.Helper()
	jsonl, _, _, err := traceScenario(seed)
	if err != nil {
		t.Fatal(err)
	}
	ctrl, val := splitTraceByProcess(t, jsonl)
	if ctrl == "" || val == "" {
		t.Fatal("scenario trace does not cover both processes")
	}
	var m, c bytes.Buffer
	inputs := func() []obs.StitchInput {
		return []obs.StitchInput{
			{Origin: "jurylive", R: strings.NewReader(ctrl)},
			{Origin: "juryd", R: strings.NewReader(val)},
		}
	}
	if err := obs.StitchJSONL(&m, inputs()...); err != nil {
		t.Fatal(err)
	}
	if err := obs.StitchChromeTrace(&c, inputs()...); err != nil {
		t.Fatal(err)
	}
	return m.String(), c.String()
}

// TestGoldenStitchDeterministic is the stitching acceptance test: the
// two-process stitched trace of the golden scenario must be
// byte-identical across repeated runs and across sweep parallelism widths
// 1 and 8 (the suite runs under -race in CI, so racy stitching or span
// recording would fail here).
func TestGoldenStitchDeterministic(t *testing.T) {
	const seed = 7
	refMerged, refChrome := stitchScenario(t, seed)
	if !strings.Contains(refMerged, `"origin":"jurylive"`) || !strings.Contains(refMerged, `"origin":"juryd"`) {
		t.Fatal("stitched JSONL is missing an origin stamp")
	}
	if !strings.Contains(refChrome, `"name":"process_name"`) {
		t.Fatal("stitched Chrome trace is missing process rows")
	}

	type point struct{ Replica int }
	for _, parallelism := range []int{1, 8} {
		parallelism := parallelism
		t.Run(fmt.Sprintf("parallelism=%d", parallelism), func(t *testing.T) {
			params := make([]point, 8)
			for i := range params {
				params[i] = point{Replica: i}
			}
			results, err := sweep.Run(context.Background(),
				sweep.Config{RootSeed: 1, Parallelism: parallelism},
				params,
				func(_ context.Context, pt sweep.Point[point]) (string, error) {
					merged, chrome := stitchScenario(t, seed)
					return merged + "\x00" + chrome, nil
				})
			if err != nil {
				t.Fatal(err)
			}
			want := refMerged + "\x00" + refChrome
			for _, r := range results {
				if r.Err != nil {
					t.Fatalf("point %d: %v", r.Point.Index, r.Err)
				}
				if r.Value != want {
					t.Fatalf("point %d produced a divergent stitched trace (%d bytes vs %d reference)",
						r.Point.Index, len(r.Value), len(want))
				}
			}
		})
	}
}
