package jury

import (
	"fmt"
	"time"

	"github.com/jurysdn/jury/internal/cluster"
	"github.com/jurysdn/jury/internal/controller"
	"github.com/jurysdn/jury/internal/core"
	"github.com/jurysdn/jury/internal/obs"
	"github.com/jurysdn/jury/internal/policy"
	"github.com/jurysdn/jury/internal/store"
	"github.com/jurysdn/jury/internal/topo"
	"github.com/jurysdn/jury/internal/wire"
)

// ControllerKind selects a calibrated controller profile.
type ControllerKind uint8

// Controller kinds.
const (
	// ONOS models ONOS v1.0.0: eventually consistent store, fast
	// multi-worker pipeline, ANY_CONTROLLER_ONE_MASTER clustering.
	ONOS ControllerKind = iota + 1
	// ODL models OpenDaylight Hydrogen: strongly consistent store, slow
	// single-worker pipeline, SINGLE_CONTROLLER clustering.
	ODL
)

// String names the kind.
func (k ControllerKind) String() string {
	if k == ODL {
		return "odl"
	}
	return "onos"
}

// TopologyKind selects a built-in topology.
type TopologyKind uint8

// Topologies.
const (
	// Linear24 is the 24-switch / 24-host Mininet setup of §VII.
	Linear24 TopologyKind = iota + 1
	// ThreeTier is the 8-edge/4-aggregate/2-core physical testbed shape.
	ThreeTier
	// SingleSwitch is a one-switch Cbench-style topology.
	SingleSwitch
)

// Config assembles a simulated deployment.
type Config struct {
	// Seed makes the run reproducible.
	Seed int64
	// Kind selects the controller profile (default ONOS).
	Kind ControllerKind
	// Profile overrides the calibrated profile entirely when non-nil.
	Profile *controller.Profile
	// ClusterSize is n, the number of controller replicas (default 7).
	ClusterSize int
	// Topology selects the data-plane shape (default Linear24).
	Topology TopologyKind
	// CustomTopology overrides Topology when non-nil.
	CustomTopology *topo.Topology
	// ClusterMode overrides the HA connection-management mode implied by
	// the controller kind (ANY_CONTROLLER_ONE_MASTER for ONOS,
	// SINGLE_CONTROLLER for ODL). Set cluster.ActivePassive for the
	// Active-Passive deployment of §II-A.
	ClusterMode cluster.Mode

	// EnableJury interposes replicators, modules and the validator.
	EnableJury bool
	// K is JURY's replication factor (default n-1, full replication).
	K int
	// ValidationTimeout is θτ (default: calibrated per profile).
	ValidationTimeout time.Duration
	// AdaptiveTimeout enables the EWMA adaptive deadline (§VIII-1).
	AdaptiveTimeout bool
	// RelayAll disables k+1 sampling of cache relays.
	RelayAll bool
	// NoStateAware disables the validator's state-aware consensus
	// refinements (ablation).
	NoStateAware bool
	// Shards partitions validator state by trigger taint-ID across this
	// many shards (default 1). In the simulation all shards share the
	// event engine, so verdicts and traces are byte-identical at any
	// shard count for a fixed seed; the knob exercises the same dispatch
	// path the parallel plane (internal/shard) scales across goroutines.
	Shards int
	// Policies is the administrator policy set evaluated by the
	// validator.
	Policies []policy.Policy
	// IndexedPolicies compiles the policy set with a cache index
	// (ablation; the paper's engine scans linearly).
	IndexedPolicies bool

	// Metrics is the observability registry shared by every component of
	// the deployment; nil creates one per simulation (reachable via
	// Simulation.Metrics).
	Metrics *obs.Registry
	// Tracer records the per-trigger span tree across the pipeline
	// (replicate → exec → store fan-out → verdict); nil disables tracing
	// at zero hot-path cost.
	Tracer *obs.Tracer
	// EnableTracing creates a Tracer on the simulation's own virtual
	// clock when Tracer is nil — the usual way to turn tracing on, since
	// the engine does not exist before New.
	EnableTracing bool
	// FlightRecorder records the validator's last FlightRing trigger
	// lifecycle events into a fixed ring (nil disables at zero hot-path
	// cost). Normally left nil and armed via FlightRing.
	FlightRecorder *obs.Recorder
	// FlightRing creates a FlightRecorder of this capacity when
	// FlightRecorder is nil — the usual way to arm flight recording
	// (negative selects obs.DefaultFlightRing).
	FlightRing int
}

func (c Config) withDefaults() (Config, error) {
	if c.Kind == 0 {
		c.Kind = ONOS
	}
	if c.ClusterSize == 0 {
		c.ClusterSize = 7
	}
	if c.ClusterSize < 1 {
		return c, fmt.Errorf("jury: cluster size must be >= 1, got %d", c.ClusterSize)
	}
	if c.Topology == 0 {
		c.Topology = Linear24
	}
	if c.Metrics == nil {
		c.Metrics = obs.NewRegistry()
	}
	if c.EnableJury {
		if c.K == 0 {
			c.K = c.ClusterSize - 1
		}
		if c.Shards < 0 {
			return c, fmt.Errorf("jury: shards must be >= 0, got %d", c.Shards)
		}
		if c.Shards == 0 {
			c.Shards = 1
		}
		if c.K > c.ClusterSize-1 {
			return c, fmt.Errorf("jury: k=%d exceeds cluster size n=%d", c.K, c.ClusterSize)
		}
		if c.ValidationTimeout == 0 {
			if c.Kind == ODL {
				c.ValidationTimeout = 700 * time.Millisecond
			} else {
				c.ValidationTimeout = 130 * time.Millisecond
			}
		}
	}
	return c, nil
}

func (c Config) profile() controller.Profile {
	if c.Profile != nil {
		return *c.Profile
	}
	if c.Kind == ODL {
		return controller.ODLProfile()
	}
	return controller.ONOSProfile()
}

func (c Config) clusterMode() cluster.Mode {
	if c.ClusterMode != 0 {
		return c.ClusterMode
	}
	if c.Kind == ODL {
		return cluster.SingleController
	}
	return cluster.AnyControllerOneMaster
}

func (c Config) storeConfig(p controller.Profile) store.Config {
	sc := store.DefaultConfig(p.Consistency)
	sc.Metrics = c.Metrics
	sc.Tracer = c.Tracer
	if p.Consistency == store.Eventual {
		sc.FlowBusService = p.StoreBusService
	}
	if c.EnableJury && c.K > 0 && p.JuryStoreOverhead > 0 {
		extra := time.Duration(c.K) * p.JuryStoreOverhead
		if p.Consistency == store.Eventual {
			sc.FlowBusService += extra
		} else {
			sc.CommitBase += extra
		}
	}
	return sc
}

func (c Config) replicationMode() core.ReplicationMode {
	if c.Kind == ODL {
		return core.EncapMode
	}
	return core.ProxyMode
}

// ValidatorServiceConfig assembles the out-of-band validator service of
// Fig. 2 (what cmd/juryd runs): the deployment shape the validator
// assumes plus the wire-bridge resilience knobs. The zero value selects
// the paper's defaults.
type ValidatorServiceConfig struct {
	// ClusterSize is n, the number of controllers whose responses the
	// validator expects (default 7).
	ClusterSize int
	// K is the replication factor (default n-1).
	K int
	// Switches is the number of datapaths in the membership map
	// (default 24).
	Switches int
	// ValidationTimeout is θτ (default 130ms, the §VII calibration).
	ValidationTimeout time.Duration
	// AdaptiveTimeout enables the EWMA adaptive deadline (§VIII-1).
	AdaptiveTimeout bool
	// Shards partitions validator state by trigger taint-ID across this
	// many shards (default 1 — the paper's single decision loop). With
	// Shards > 1 the service runs the parallel shard plane: one worker
	// goroutine per shard, responses dispatched by FNV over the taint ID.
	Shards int
	// QueueDepth bounds each shard's intake queue (default
	// shard.DefaultQueueDepth). A full queue applies backpressure to the
	// dispatching connection — responses are never dropped. Only
	// meaningful with Shards > 1.
	QueueDepth int
	// AlarmsOnly pushes only fault results to connected clients.
	AlarmsOnly bool
	// Tracing arms a per-trigger span tracer on the service's virtual
	// clock (single-shard mode only; rejected with Shards > 1). The trace
	// is read back with ValidatorService.WriteTrace — juryd -trace-out.
	Tracing bool
	// FlightRing arms a flight recorder retaining the last N trigger
	// lifecycle events (per-shard rings when Shards > 1); zero disables.
	FlightRing int
	// OnFlightDump receives dump-on-alarm flight snapshots (reason plus
	// the merged ring, oldest first), serialized and rate-limited.
	OnFlightDump func(reason string, events []obs.Event)

	// Codec is the service's wire-codec stance (juryd -codec).
	// wire.CodecAuto (the default) mirrors each connection's first byte,
	// so old JSON-only clients and binary-framing clients interoperate on
	// the same port with no configuration; wire.CodecJSON refuses the
	// binary handshake; wire.CodecBinary additionally speaks binary on
	// pushes that race ahead of a client's first byte.
	Codec wire.Codec
	// MaxLineBytes caps one protocol line; oversized lines are rejected
	// and counted without killing the connection (default
	// wire.DefaultMaxLineBytes).
	MaxLineBytes int
	// HeartbeatEvery probes idle client connections with ping envelopes
	// (default wire.DefaultHeartbeatEvery; negative disables).
	HeartbeatEvery time.Duration
	// IdleTimeout reaps half-open peers idle past this horizon (default
	// wire.DefaultIdleTimeout; negative disables).
	IdleTimeout time.Duration
	// Metrics receives the jury_wire_* connection-lifecycle families;
	// nil shares the validator's own registry, so the service /metrics
	// page carries them automatically.
	Metrics *obs.Registry
}

func (c ValidatorServiceConfig) withDefaults() ValidatorServiceConfig {
	if c.ClusterSize <= 0 {
		c.ClusterSize = 7
	}
	if c.K <= 0 {
		c.K = c.ClusterSize - 1
	}
	if c.Switches <= 0 {
		c.Switches = 24
	}
	if c.ValidationTimeout <= 0 {
		c.ValidationTimeout = 130 * time.Millisecond
	}
	if c.Shards <= 0 {
		c.Shards = 1
	}
	return c
}
