// Package obs is JURY's observability layer: a typed metrics registry
// with Prometheus text exposition, a virtual-clock span tracer keyed by
// trigger (taint) IDs, and a small HTTP server for /metrics + /healthz.
//
// The package is a concurrency bridge in the jurylint suite: counters and
// gauges are atomic so a live exposition goroutine can scrape them while
// the validator decides triggers, and the HTTP server owns goroutines.
// The tracer itself, however, is driven from simulation event handlers on
// a single goroutine and takes its timestamps from the simnet virtual
// clock, which is what makes traces bit-deterministic: the same seed
// produces the same bytes at any sweep parallelism. Wall-clock reads are
// confined to the annotated boundary of the exposition server.
package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/jurysdn/jury/internal/metrics"
)

// Label is one name/value pair attached to a metric child.
type Label struct {
	Key   string
	Value string
}

// L constructs a label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing counter. The zero value is ready
// to use; counters obtained from a Registry are additionally exposed on
// /metrics. All methods are safe for concurrent use.
type Counter struct {
	n atomic.Int64
}

// Add increments the counter by delta.
func (c *Counter) Add(delta int64) { c.n.Add(delta) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.n.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.n.Load() }

// Gauge is a value that can go up and down. Safe for concurrent use.
// Alongside the current value it tracks the high-watermark — the largest
// value ever set — so saturation episodes (a shard intake queue that
// briefly filled) stay visible after the gauge has drained back down.
type Gauge struct {
	bits atomic.Uint64
	hwm  atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	g.bits.Store(math.Float64bits(v))
	g.raiseHWM(v)
}

// Add shifts the gauge by delta (negative to decrement), lock-free and
// safe against concurrent Set/Add — connection-lifecycle gauges are
// moved from accept and teardown paths racing each other.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64frombits(old) + delta
		if g.bits.CompareAndSwap(old, math.Float64bits(next)) {
			g.raiseHWM(next)
			return
		}
	}
}

// raiseHWM lifts the high-watermark to v when v exceeds it (CAS max).
func (g *Gauge) raiseHWM(v float64) {
	for {
		old := g.hwm.Load()
		if v <= math.Float64frombits(old) {
			return
		}
		if g.hwm.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// HighWatermark returns the largest value the gauge has reached (at
// least zero — the zero value's watermark).
func (g *Gauge) HighWatermark() float64 { return math.Float64frombits(g.hwm.Load()) }

// Histogram accumulates duration samples into a metrics.Distribution and
// exposes quantiles, sum and count as a Prometheus summary (in seconds).
// Observe serializes against exposition with an internal mutex; callers
// that mutate a wrapped Distribution directly (the simulation does) must
// serialize their own scrapes externally, as cmd/juryd does under the
// wire server's lock.
type Histogram struct {
	mu sync.Mutex
	d  *metrics.Distribution
}

// Observe records one duration sample.
func (h *Histogram) Observe(v time.Duration) {
	h.mu.Lock()
	h.d.Add(v)
	h.mu.Unlock()
}

// Snapshot returns the immutable sorted view of the backing distribution.
func (h *Histogram) Snapshot() metrics.Snapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.d.Snapshot()
}

type metricKind uint8

const (
	kindCounter metricKind = iota + 1
	kindGauge
	kindGaugeFunc
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge, kindGaugeFunc:
		return "gauge"
	case kindHistogram:
		return "summary"
	default:
		return "untyped"
	}
}

// child is one (metric, label set) instance within a family.
type child struct {
	labels    string // canonical rendered label block, "" for none
	counter   *Counter
	gauge     *Gauge
	gaugeFn   func() float64
	histogram *Histogram
}

// family groups all children sharing one metric name.
type family struct {
	name     string
	help     string
	kind     metricKind
	children map[string]*child
}

// Registry is a named collection of metrics. Registration is
// get-or-create: asking for the same (name, labels) twice returns the
// same instance, so components can hold their counters as fields while
// the exposition server walks the registry. Safe for concurrent use.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

func (r *Registry) family(name, help string, kind metricKind) *family {
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, children: make(map[string]*child)}
		r.families[name] = f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)", name, kind, f.kind))
	}
	return f
}

func (r *Registry) childOf(name, help string, kind metricKind, labels []Label) *child {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, kind)
	key := renderLabels(labels)
	c, ok := f.children[key]
	if !ok {
		c = &child{labels: key}
		f.children[key] = c
	}
	return c
}

// Counter returns the counter registered under name and labels, creating
// it on first use.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	c := r.childOf(name, help, kindCounter, labels)
	if c.counter == nil {
		c.counter = &Counter{}
	}
	return c.counter
}

// Gauge returns the gauge registered under name and labels.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	c := r.childOf(name, help, kindGauge, labels)
	if c.gauge == nil {
		c.gauge = &Gauge{}
	}
	return c.gauge
}

// GaugeFunc registers a gauge whose value is computed at scrape time.
// The function must be safe to call from the exposition goroutine (or
// the caller must serialize scrapes, as cmd/juryd does).
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	c := r.childOf(name, help, kindGaugeFunc, labels)
	c.gaugeFn = fn
}

// Histogram returns a histogram registered under name and labels. When
// dist is non-nil the histogram exposes that existing distribution (the
// simulation's detection-time distributions are wrapped this way);
// otherwise it owns a fresh one.
func (r *Registry) Histogram(name, help string, dist *metrics.Distribution, labels ...Label) *Histogram {
	c := r.childOf(name, help, kindHistogram, labels)
	if c.histogram == nil {
		if dist == nil {
			dist = &metrics.Distribution{}
		}
		c.histogram = &Histogram{d: dist}
	}
	return c.histogram
}

// summaryQuantiles are the quantiles exposed for every histogram.
var summaryQuantiles = []float64{50, 90, 95, 99}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4). Families and children are emitted in sorted
// order so the page is deterministic for a given metric state.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	bw := bufio.NewWriter(w)
	for _, name := range names {
		f := r.families[name]
		if f.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.name, f.help)
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.kind)
		keys := make([]string, 0, len(f.children))
		for k := range f.children {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			writeChild(bw, f, f.children[k])
		}
	}
	r.mu.Unlock()
	return bw.Flush()
}

func writeChild(bw *bufio.Writer, f *family, c *child) {
	switch f.kind {
	case kindCounter:
		fmt.Fprintf(bw, "%s%s %s\n", f.name, c.labels, strconv.FormatInt(c.counter.Value(), 10))
	case kindGauge:
		fmt.Fprintf(bw, "%s%s %s\n", f.name, c.labels, formatFloat(c.gauge.Value()))
	case kindGaugeFunc:
		fmt.Fprintf(bw, "%s%s %s\n", f.name, c.labels, formatFloat(c.gaugeFn()))
	case kindHistogram:
		snap := c.histogram.Snapshot()
		for _, q := range summaryQuantiles {
			fmt.Fprintf(bw, "%s%s %s\n", f.name,
				mergeLabels(c.labels, fmt.Sprintf("quantile=%q", formatFloat(q/100))),
				formatFloat(snap.Percentile(q).Seconds()))
		}
		fmt.Fprintf(bw, "%s_sum%s %s\n", f.name, c.labels, formatFloat(snap.Sum().Seconds()))
		fmt.Fprintf(bw, "%s_count%s %d\n", f.name, c.labels, snap.Count())
	}
}

// renderLabels produces the canonical label block: keys sorted, values
// escaped, wrapped in braces; empty for no labels.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// mergeLabels appends extra to an already-rendered label block.
func mergeLabels(rendered, extra string) string {
	if rendered == "" {
		return "{" + extra + "}"
	}
	return rendered[:len(rendered)-1] + "," + extra + "}"
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
