package obs

import "sync/atomic"

// Log is a single-writer, many-reader append log with lock-free
// snapshots. The writer (a simulation event handler, or a shard worker
// that owns the log) appends without locks; readers on other goroutines
// take consistent views through an atomic pointer. This is what makes
// sim-contract packages (no sync primitives allowed) safely scrapeable
// from live goroutines: the validator's alarm list is one of these, so a
// shard plane or exposition server can read alarms while the decision
// loop keeps appending.
//
// Append is NOT safe for concurrent writers — ownership of the write side
// must be a single goroutine at a time, which is exactly the shard
// ownership discipline the validation plane enforces. The published view
// shares the append buffer's backing array: the writer only ever writes
// at indexes past every published view's length, and the atomic publish
// orders those writes before any reader can observe the new length.
type Log[T any] struct {
	buf  []T
	snap atomic.Pointer[[]T]
}

// Append adds one entry. Single writer only.
func (l *Log[T]) Append(v T) {
	l.buf = append(l.buf, v)
	view := l.buf[:len(l.buf):len(l.buf)]
	l.snap.Store(&view)
}

// Len returns the number of entries in the current published view.
func (l *Log[T]) Len() int {
	if s := l.snap.Load(); s != nil {
		return len(*s)
	}
	return 0
}

// Snapshot returns the current immutable view (capacity-capped, so an
// append by a consumer cannot reach into the log's backing array).
func (l *Log[T]) Snapshot() []T {
	if s := l.snap.Load(); s != nil {
		return *s
	}
	return nil
}
