package obs

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"
)

// ExpoConfig parameterizes the exposition endpoint.
type ExpoConfig struct {
	// Write renders the /metrics page body. Callers whose metrics are
	// mutated on another goroutine wrap the registry write in their own
	// lock here (cmd/juryd wraps it in the wire server's mutex). Nil
	// with a non-nil Registry defaults to Registry.WritePrometheus.
	Write func(io.Writer) error
	// Registry is the default metrics source when Write is nil.
	Registry *Registry
	// Health reports service health for /healthz; nil means always
	// healthy. A non-nil error renders a 503.
	Health func() error
	// Clock supplies real time for the uptime report; nil selects the
	// host wall clock at this annotated real-time boundary. Tests inject
	// a fake clock so the handler output is deterministic.
	Clock func() time.Time
}

// Expo serves /metrics (Prometheus text format) and /healthz over HTTP.
// It is the only wall-clock-adjacent piece of the observability layer;
// everything it renders comes from the registry or the injected clock.
type Expo struct {
	ln      net.Listener
	srv     *http.Server
	started time.Time
	cfg     ExpoConfig

	closeOnce sync.Once
	done      sync.WaitGroup
}

// NewExpoHandler returns the HTTP handler serving /metrics and /healthz,
// for embedding into an existing mux or test server.
func NewExpoHandler(cfg ExpoConfig) (http.Handler, error) {
	if cfg.Write == nil {
		if cfg.Registry == nil {
			return nil, fmt.Errorf("obs: exposition needs a Registry or a Write func")
		}
		reg := cfg.Registry
		cfg.Write = reg.WritePrometheus
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now //jurylint:allow wallclock -- default clock at the real-time boundary
	}
	started := cfg.Clock()
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		var b strings.Builder
		if err := cfg.Write(&b); err != nil {
			http.Error(w, "metrics render failed: "+err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = io.WriteString(w, b.String())
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, req *http.Request) {
		uptime := cfg.Clock().Sub(started).Seconds()
		if cfg.Health != nil {
			if err := cfg.Health(); err != nil {
				w.Header().Set("Content-Type", "application/json")
				w.WriteHeader(http.StatusServiceUnavailable)
				fmt.Fprintf(w, "{\"status\":\"unhealthy\",\"error\":%s,\"uptime_seconds\":%.3f}\n",
					mustJSON(err.Error()), uptime)
				return
			}
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, "{\"status\":\"ok\",\"uptime_seconds\":%.3f}\n", uptime)
	})
	return mux, nil
}

// ServeExpo starts the exposition endpoint on addr ("127.0.0.1:0" for an
// ephemeral port). The returned Expo owns a background goroutine; call
// Close.
func ServeExpo(addr string, cfg ExpoConfig) (*Expo, error) {
	handler, err := NewExpoHandler(cfg)
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	e := &Expo{
		ln:  ln,
		cfg: cfg,
		srv: &http.Server{Handler: handler, ReadHeaderTimeout: 5 * time.Second},
	}
	e.done.Add(1)
	go func() {
		defer e.done.Done()
		_ = e.srv.Serve(ln) // always returns ErrServerClosed or the accept error after Close
	}()
	return e, nil
}

// Addr returns the bound listener address.
func (e *Expo) Addr() string { return e.ln.Addr().String() }

// Close shuts the endpoint down and waits for the serve goroutine.
func (e *Expo) Close() error {
	var err error
	e.closeOnce.Do(func() {
		err = e.srv.Close()
		e.done.Wait()
	})
	return err
}
