package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// Span is one completed interval of a trigger's life. Timestamps are
// virtual (simnet.Engine time), so spans are bit-deterministic: the same
// seed yields the same spans no matter the host, wall-clock load or sweep
// parallelism.
type Span struct {
	// Seq is the span's open order, a deterministic tiebreak for spans
	// opened at the same virtual instant.
	Seq uint64 `json:"seq"`
	// Trigger is the taint/trigger ID the span belongs to (τ).
	Trigger string `json:"trigger"`
	// Name classifies the span: "trigger" (root, replicate→verdict),
	// "exec" (one controller's pipeline processing), "decap" (ODL
	// de-encapsulation), "store-repl" (store fan-out to one replica),
	// "validate" (first response→decision).
	Name string `json:"name"`
	// Node is the component the span ran on ("replicator/of:0001",
	// "C3", "store/C2", "validator").
	Node string `json:"node,omitempty"`
	// StartNS and DurNS are virtual nanoseconds since simulation start.
	StartNS int64 `json:"start_ns"` // vclock:wire -- span format is virtual ns by contract
	DurNS   int64 `json:"dur_ns"`   // vclock:wire -- span format is virtual ns by contract
	// Verdict and Fault are set on root spans when the validator decided
	// the trigger.
	Verdict string `json:"verdict,omitempty"`
	Fault   string `json:"fault,omitempty"`
	// Detail carries span-specific context (message kind, reason).
	Detail string `json:"detail,omitempty"`
	// Origin names the process that recorded the span. Single-process
	// traces leave it empty; obs.Stitch stamps it when merging traces
	// from multiple processes, and the field is compat-safe (omitted when
	// empty, ignored by older readers).
	Origin string `json:"origin,omitempty"`
}

type spanKey struct {
	id   string
	name string
	node string
}

type openSpan struct {
	seq   uint64
	start time.Duration
}

// Tracer records per-trigger spans against a virtual clock. A nil
// *Tracer is the disabled tracer: every method is a cheap nil-check and
// performs no allocation, so instrumented hot paths cost nothing when
// tracing is off (asserted by TestDisabledTracerZeroAlloc).
//
// The tracer is driven from simulation event handlers on one goroutine
// and is deliberately unsynchronized; do not share an enabled tracer
// across goroutines.
type Tracer struct {
	now  func() time.Duration
	seq  uint64
	done []Span
	open map[spanKey]openSpan
	// details carries per-trigger root detail from open to close.
	details map[string]string

	completed int64 // root spans closed with a verdict
	dropped   int64 // spans discarded (open at export, or over cap)
	// dropC mirrors dropped onto a registry counter
	// (jury_trace_spans_dropped_total) so a tripped MaxSpans cap is
	// visible on /metrics instead of silently truncating the trace.
	dropC *Counter

	// MaxSpans bounds retained completed spans (0 = unlimited). When the
	// cap is hit, further closes are counted in Dropped instead.
	MaxSpans int
}

// NewTracer creates a tracer reading timestamps from now (normally
// simnet.Engine.Now).
func NewTracer(now func() time.Duration) *Tracer {
	return &Tracer{now: now, open: make(map[spanKey]openSpan)}
}

// Enabled reports whether the tracer records spans.
func (t *Tracer) Enabled() bool { return t != nil }

// StartTrigger opens the root span for a trigger (idempotent: the first
// opener wins, so the replicator's replicate-time start is preserved when
// the validator later ensures the root exists for internal triggers).
func (t *Tracer) StartTrigger(id, detail string) {
	if t == nil {
		return
	}
	key := spanKey{id: id, name: "trigger"}
	if _, ok := t.open[key]; ok {
		return
	}
	t.open[key] = openSpan{seq: t.nextSeq(), start: t.now()}
	if detail != "" {
		if t.details == nil {
			t.details = make(map[string]string)
		}
		t.details[id] = detail
	}
}

// EndTrigger closes the root span with the validator's verdict. A root
// that was never opened (trigger decided without a traced start) is given
// a zero-length span at the decision instant so every decided trigger
// appears in the trace.
func (t *Tracer) EndTrigger(id, verdict, fault string) {
	if t == nil {
		return
	}
	key := spanKey{id: id, name: "trigger"}
	os, ok := t.open[key]
	if !ok {
		os = openSpan{seq: t.nextSeq(), start: t.now()}
	} else {
		delete(t.open, key)
	}
	detail := ""
	if t.details != nil {
		detail = t.details[id]
		delete(t.details, id)
	}
	t.completed++
	t.close(Span{
		Seq:     os.seq,
		Trigger: id,
		Name:    "trigger",
		Node:    "triggers",
		StartNS: int64(os.start),
		DurNS:   int64(t.now() - os.start),
		Verdict: verdict,
		Fault:   fault,
		Detail:  detail,
	})
}

// StartSpan opens a child span for a trigger on a component.
func (t *Tracer) StartSpan(id, name, node string) {
	if t == nil {
		return
	}
	t.open[spanKey{id: id, name: name, node: node}] = openSpan{seq: t.nextSeq(), start: t.now()}
}

// EndSpan closes a child span opened by StartSpan; without a matching
// open it is a no-op.
func (t *Tracer) EndSpan(id, name, node, detail string) {
	if t == nil {
		return
	}
	key := spanKey{id: id, name: name, node: node}
	os, ok := t.open[key]
	if !ok {
		return
	}
	delete(t.open, key)
	t.close(Span{
		Seq:     os.seq,
		Trigger: id,
		Name:    name,
		Node:    node,
		StartNS: int64(os.start),
		DurNS:   int64(t.now() - os.start),
		Detail:  detail,
	})
}

// Emit records a complete span directly, for intervals whose start and
// end are both known at the call site (e.g. a scheduled store delivery).
func (t *Tracer) Emit(id, name, node string, start, end time.Duration, detail string) {
	if t == nil {
		return
	}
	t.close(Span{
		Seq:     t.nextSeq(),
		Trigger: id,
		Name:    name,
		Node:    node,
		StartNS: int64(start),
		DurNS:   int64(end - start),
		Detail:  detail,
	})
}

func (t *Tracer) nextSeq() uint64 {
	t.seq++
	return t.seq
}

func (t *Tracer) close(s Span) {
	if t.MaxSpans > 0 && len(t.done) >= t.MaxSpans {
		t.dropped++
		if t.dropC != nil {
			t.dropC.Inc()
		}
		return
	}
	t.done = append(t.done, s)
}

// InstrumentMetrics exposes the tracer's drop count as
// jury_trace_spans_dropped_total on reg, so spans silently discarded by a
// tripped MaxSpans cap surface on /metrics. Nil-safe.
func (t *Tracer) InstrumentMetrics(reg *Registry) {
	if t == nil || reg == nil {
		return
	}
	t.dropC = reg.Counter("jury_trace_spans_dropped_total",
		"Completed spans discarded by the MaxSpans cap.")
}

// CompletedTriggers returns the number of root spans closed with a
// verdict — the trace's end-to-end trigger coverage numerator.
func (t *Tracer) CompletedTriggers() int64 {
	if t == nil {
		return 0
	}
	return t.completed
}

// OpenSpans returns the number of spans opened but not yet closed.
func (t *Tracer) OpenSpans() int {
	if t == nil {
		return 0
	}
	return len(t.open)
}

// Dropped returns the number of spans discarded due to MaxSpans.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	return t.dropped
}

// Spans returns the completed spans in canonical order: by start time,
// then open sequence. Open spans are excluded (they have no duration yet).
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	out := append([]Span(nil), t.done...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].StartNS != out[j].StartNS {
			return out[i].StartNS < out[j].StartNS
		}
		return out[i].Seq < out[j].Seq
	})
	return out
}

// WriteJSONL writes one canonical JSON object per span. Output is
// byte-deterministic for a deterministic simulation run.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	for _, s := range t.Spans() {
		line, err := json.Marshal(s)
		if err != nil {
			return fmt.Errorf("obs: marshal span: %w", err)
		}
		line = append(line, '\n')
		if _, err := w.Write(line); err != nil {
			return fmt.Errorf("obs: write span: %w", err)
		}
	}
	return nil
}

// WriteChromeTrace writes the spans in the Chrome trace_event JSON array
// format, loadable in chrome://tracing and Perfetto. Virtual timestamps
// map to the trace's microsecond axis; each component gets its own
// thread row via thread_name metadata.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	spans := t.Spans()
	// Assign deterministic tids: sorted distinct nodes.
	nodes := make(map[string]int)
	var names []string
	for _, s := range spans {
		if _, ok := nodes[s.Node]; !ok {
			nodes[s.Node] = 0
			names = append(names, s.Node)
		}
	}
	sort.Strings(names)
	for i, n := range names {
		nodes[n] = i + 1
	}
	if _, err := io.WriteString(w, "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"); err != nil {
		return fmt.Errorf("obs: write trace: %w", err)
	}
	first := true
	emit := func(line string) error {
		if !first {
			if _, err := io.WriteString(w, ",\n"); err != nil {
				return err
			}
		}
		first = false
		_, err := io.WriteString(w, line)
		return err
	}
	for _, n := range names {
		name := n
		if name == "" {
			name = "(unattributed)"
		}
		meta := fmt.Sprintf(`{"ph":"M","pid":1,"tid":%d,"name":"thread_name","args":{"name":%s}}`,
			nodes[n], mustJSON(name))
		if err := emit(meta); err != nil {
			return fmt.Errorf("obs: write trace: %w", err)
		}
	}
	for _, s := range spans {
		args := map[string]string{"trigger": s.Trigger}
		if s.Verdict != "" {
			args["verdict"] = s.Verdict
		}
		if s.Fault != "" && s.Fault != "none" {
			args["fault"] = s.Fault
		}
		if s.Detail != "" {
			args["detail"] = s.Detail
		}
		argJSON, err := json.Marshal(args)
		if err != nil {
			return fmt.Errorf("obs: marshal args: %w", err)
		}
		line := fmt.Sprintf(`{"ph":"X","pid":1,"tid":%d,"name":%s,"cat":"jury","ts":%s,"dur":%s,"args":%s}`,
			nodes[s.Node], mustJSON(s.Name), usec(s.StartNS), usec(s.DurNS), argJSON)
		if err := emit(line); err != nil {
			return fmt.Errorf("obs: write trace: %w", err)
		}
	}
	if _, err := io.WriteString(w, "\n]}\n"); err != nil {
		return fmt.Errorf("obs: write trace: %w", err)
	}
	return nil
}

// usec renders nanoseconds on the trace_event microsecond axis with
// sub-microsecond precision preserved.
func usec(ns int64) string {
	neg := ""
	if ns < 0 {
		neg = "-"
		ns = -ns
	}
	return fmt.Sprintf("%s%d.%03d", neg, ns/1000, ns%1000)
}

func mustJSON(s string) string {
	b, err := json.Marshal(s)
	if err != nil {
		return `"?"`
	}
	return string(b)
}
