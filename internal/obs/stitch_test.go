package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func jsonlOf(t *testing.T, spans ...Span) string {
	t.Helper()
	var buf bytes.Buffer
	for _, s := range spans {
		line, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(line)
		buf.WriteByte('\n')
	}
	return buf.String()
}

// TestStitchJSONLShiftAndOrder asserts stitching stamps origins, applies
// per-input clock-base shifts, and orders the merged stream by shifted
// start time with (origin, seq) tiebreaks.
func TestStitchJSONLShiftAndOrder(t *testing.T) {
	controller := jsonlOf(t,
		Span{Seq: 1, Trigger: "τ1", Name: "flow-mod", Node: "C1", StartNS: 0, DurNS: 5},
		Span{Seq: 2, Trigger: "τ1", Name: "validate-rtt", Node: "C1", StartNS: 10, DurNS: 40},
	)
	validator := jsonlOf(t,
		Span{Seq: 1, Trigger: "τ1", Name: "validate", Node: "validator", StartNS: 5, DurNS: 20},
	)
	var out bytes.Buffer
	err := StitchJSONL(&out,
		StitchInput{Origin: "jurylive", R: strings.NewReader(controller)},
		// The validator saw τ1 15ns after the controller's clock base:
		// shift its spans onto the controller axis.
		StitchInput{Origin: "juryd", ShiftNS: 15, R: strings.NewReader(validator)},
	)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("stitched %d spans, want 3", len(lines))
	}
	var spans []Span
	for _, l := range lines {
		var s Span
		if err := json.Unmarshal([]byte(l), &s); err != nil {
			t.Fatal(err)
		}
		spans = append(spans, s)
	}
	wantOrigin := []string{"jurylive", "jurylive", "juryd"}
	wantStart := []int64{0, 10, 20}
	for i, s := range spans {
		if s.Origin != wantOrigin[i] || s.StartNS != wantStart[i] {
			t.Fatalf("span[%d] = origin %q start %d, want %q %d",
				i, s.Origin, s.StartNS, wantOrigin[i], wantStart[i])
		}
	}
}

// TestStitchPreservesExistingOrigin asserts a span already stamped with
// an origin (a re-stitched merged trace) keeps it.
func TestStitchPreservesExistingOrigin(t *testing.T) {
	merged := jsonlOf(t,
		Span{Seq: 1, Trigger: "τ", Name: "x", Origin: "upstream", StartNS: 1},
	)
	var out bytes.Buffer
	if err := StitchJSONL(&out, StitchInput{Origin: "restitch", R: strings.NewReader(merged)}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), `"origin":"upstream"`) {
		t.Fatalf("re-stitch overwrote origin:\n%s", out.String())
	}
}

// TestStitchChromeTraceProcessRows asserts each origin becomes its own
// deterministic process row with named threads, and span events carry the
// right pid.
func TestStitchChromeTraceProcessRows(t *testing.T) {
	a := jsonlOf(t, Span{Seq: 1, Trigger: "τ", Name: "flow-mod", Node: "C1", StartNS: 0, DurNS: 5})
	b := jsonlOf(t, Span{Seq: 1, Trigger: "τ", Name: "validate", Node: "validator", StartNS: 2, DurNS: 3})
	render := func() string {
		var out bytes.Buffer
		err := StitchChromeTrace(&out,
			StitchInput{Origin: "jurylive", R: strings.NewReader(a)},
			StitchInput{Origin: "juryd", R: strings.NewReader(b)},
		)
		if err != nil {
			t.Fatal(err)
		}
		return out.String()
	}
	got := render()
	if got != render() {
		t.Fatal("stitched Chrome trace not deterministic across renders")
	}
	var doc struct {
		TraceEvents []struct {
			Ph   string `json:"ph"`
			Pid  int    `json:"pid"`
			Name string `json:"name"`
			Args map[string]any
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(got), &doc); err != nil {
		t.Fatalf("stitched trace is not valid JSON: %v\n%s", err, got)
	}
	pidByOrigin := map[string]int{}
	var spanPids []int
	for _, e := range doc.TraceEvents {
		if e.Ph == "M" && e.Name == "process_name" {
			pidByOrigin[e.Args["name"].(string)] = e.Pid
		}
		if e.Ph == "X" {
			spanPids = append(spanPids, e.Pid)
		}
	}
	// Sorted origins: juryd < jurylive, so juryd is pid 1.
	if pidByOrigin["juryd"] != 1 || pidByOrigin["jurylive"] != 2 {
		t.Fatalf("pids = %v, want juryd:1 jurylive:2", pidByOrigin)
	}
	if len(spanPids) != 2 || spanPids[0] != 2 || spanPids[1] != 1 {
		t.Fatalf("span pids in merged order = %v, want [2 1]", spanPids)
	}
}

// TestStitchRejectsGarbage asserts a malformed input line fails loudly
// with the origin named, instead of silently truncating the timeline.
func TestStitchRejectsGarbage(t *testing.T) {
	var out bytes.Buffer
	err := StitchJSONL(&out, StitchInput{Origin: "bad", R: strings.NewReader("not json\n")})
	if err == nil || !strings.Contains(err.Error(), "bad") {
		t.Fatalf("err = %v, want parse error naming the origin", err)
	}
}
