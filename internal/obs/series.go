package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// SeriesColumn is one sampled column: a name and a function read at each
// Sample call. Fn runs on the sampling goroutine; point it at atomic
// counters, gauges, or accessors documented lock-free.
type SeriesColumn struct {
	Name string
	Fn   func() float64
}

// SeriesRow is one sampling instant: the virtual timestamp plus one value
// per column, in column order.
type SeriesRow struct {
	AtNS int64     `json:"at_ns"` // vclock:wire -- series format is virtual ns by contract
	V    []float64 `json:"v"`
}

// Series accumulates periodic virtual-clock samples of a fixed column set
// into a columnar time series — the campaign telemetry that turns
// end-of-run aggregates (detection latency, FP rate, bottleneck-shard
// load) into plottable curves over a diurnal window. Single-goroutine:
// the campaign's dispatch loop owns it.
type Series struct {
	cols []SeriesColumn
	rows []SeriesRow
}

// NewSeries creates a series over the given columns.
func NewSeries(cols ...SeriesColumn) *Series {
	return &Series{cols: cols}
}

// Columns returns the column names in sampling order.
func (s *Series) Columns() []string {
	names := make([]string, len(s.cols))
	for i, c := range s.cols {
		names[i] = c.Name
	}
	return names
}

// Sample reads every column at virtual time at and appends one row.
func (s *Series) Sample(at time.Duration) {
	row := SeriesRow{AtNS: int64(at), V: make([]float64, len(s.cols))}
	for i, c := range s.cols {
		row.V[i] = c.Fn()
	}
	s.rows = append(s.rows, row)
}

// Len returns the number of rows sampled.
func (s *Series) Len() int { return len(s.rows) }

// Rows returns the sampled rows (shared backing; callers must not
// mutate).
func (s *Series) Rows() []SeriesRow { return s.rows }

// WriteJSONL writes the series as columnar JSONL: a header object naming
// the columns, then one row object per sample. Byte-deterministic for a
// deterministic sampling run.
func (s *Series) WriteJSONL(w io.Writer) error {
	header := struct {
		Series []string `json:"series"`
	}{Series: s.Columns()}
	line, err := json.Marshal(header)
	if err != nil {
		return fmt.Errorf("obs: marshal series header: %w", err)
	}
	line = append(line, '\n')
	if _, err := w.Write(line); err != nil {
		return fmt.Errorf("obs: write series header: %w", err)
	}
	for _, row := range s.rows {
		line, err := json.Marshal(row)
		if err != nil {
			return fmt.Errorf("obs: marshal series row: %w", err)
		}
		line = append(line, '\n')
		if _, err := w.Write(line); err != nil {
			return fmt.Errorf("obs: write series row: %w", err)
		}
	}
	return nil
}
