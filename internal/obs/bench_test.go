package obs

import (
	"fmt"
	"io"
	"testing"
	"time"
)

// BenchmarkTracerDisabledCalls is the zero-cost claim for the nil tracer:
// every instrumentation call must collapse to a nil check.
func BenchmarkTracerDisabledCalls(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.StartTrigger("τ", "packet-in")
		tr.StartSpan("τ", "exec", "C1")
		tr.EndSpan("τ", "exec", "C1", "")
		tr.EndTrigger("τ", "valid", "none")
	}
}

// BenchmarkTracerSpanPair measures one open/close child-span cycle on an
// enabled tracer.
func BenchmarkTracerSpanPair(b *testing.B) {
	clock := &fakeClock{}
	tr := NewTracer(clock.Now)
	tr.MaxSpans = 1024 // bound memory; drops are cheaper than growth
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.StartSpan("τ", "exec", "C1")
		clock.advance(time.Microsecond)
		tr.EndSpan("τ", "exec", "C1", "")
	}
}

// BenchmarkTracerTriggerLifecycle measures a full root open→verdict cycle.
func BenchmarkTracerTriggerLifecycle(b *testing.B) {
	clock := &fakeClock{}
	tr := NewTracer(clock.Now)
	tr.MaxSpans = 1024
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.StartTrigger("τ", "packet-in")
		clock.advance(time.Microsecond)
		tr.EndTrigger("τ", "valid", "none")
	}
}

// BenchmarkCounterInc measures the registry counter hot path shared by
// the validator and replicator.
func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Counter("jury_bench_total", "")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

// BenchmarkWritePrometheus measures one /metrics scrape over a registry
// sized like a mid-size deployment (24 labeled replicator children plus
// the validator family).
func BenchmarkWritePrometheus(b *testing.B) {
	r := NewRegistry()
	for i := 1; i <= 24; i++ {
		r.Counter("jury_replicator_replicated_bytes_total", "Bytes replicated.",
			L("dpid", fmt.Sprintf("of:%04x", i))).Add(int64(i) * 1000)
	}
	r.Counter("jury_validator_decided_total", "Triggers decided.").Add(12345)
	h := r.Histogram("jury_validator_detection_seconds", "Detection time.", nil)
	for i := 0; i < 1000; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := r.WritePrometheus(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWriteJSONL measures trace export throughput over 1k spans.
func BenchmarkWriteJSONL(b *testing.B) {
	clock := &fakeClock{}
	tr := NewTracer(clock.Now)
	for i := 0; i < 1000; i++ {
		id := fmt.Sprintf("τ%d", i)
		tr.StartTrigger(id, "packet-in")
		clock.advance(time.Microsecond)
		tr.EndTrigger(id, "valid", "none")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tr.WriteJSONL(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRecorderDisabled is the zero-cost claim for the nil recorder:
// Record must collapse to a nil check.
func BenchmarkRecorderDisabled(b *testing.B) {
	var rec *Recorder
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rec.Record(Event{AtNS: int64(i), Kind: EvResponse})
	}
}

// BenchmarkRecorderRecord measures the always-on flight-recorder append:
// one mutex round trip and an in-place ring assignment, zero allocations.
func BenchmarkRecorderRecord(b *testing.B) {
	rec := NewRecorder(DefaultFlightRing)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec.Record(Event{AtNS: int64(i), Kind: EvResponse, Trigger: "τ"})
	}
	if rec.Total() != uint64(b.N) {
		b.Fatalf("recorded %d of %d events", rec.Total(), b.N)
	}
}

// BenchmarkRecorderSnapshot measures one dump-path copy of a full
// default-size ring.
func BenchmarkRecorderSnapshot(b *testing.B) {
	rec := NewRecorder(DefaultFlightRing)
	for i := 0; i < DefaultFlightRing*2; i++ {
		rec.Record(Event{AtNS: int64(i), Kind: EvResponse})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := len(rec.Snapshot()); got != DefaultFlightRing {
			b.Fatalf("snapshot = %d events", got)
		}
	}
}

// BenchmarkSeriesSample measures one telemetry sampling instant over a
// campaign-shaped column set (7 aggregates + 2 per-shard columns).
func BenchmarkSeriesSample(b *testing.B) {
	var v float64
	cols := make([]SeriesColumn, 9)
	for i := range cols {
		cols[i] = SeriesColumn{Name: fmt.Sprintf("c%d", i), Fn: func() float64 { v++; return v }}
	}
	s := NewSeries(cols...)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Sample(time.Duration(i))
	}
	if s.Len() != b.N {
		b.Fatalf("sampled %d of %d rows", s.Len(), b.N)
	}
}
