package obs

import (
	"fmt"
	"io"
	"testing"
	"time"
)

// BenchmarkTracerDisabledCalls is the zero-cost claim for the nil tracer:
// every instrumentation call must collapse to a nil check.
func BenchmarkTracerDisabledCalls(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.StartTrigger("τ", "packet-in")
		tr.StartSpan("τ", "exec", "C1")
		tr.EndSpan("τ", "exec", "C1", "")
		tr.EndTrigger("τ", "valid", "none")
	}
}

// BenchmarkTracerSpanPair measures one open/close child-span cycle on an
// enabled tracer.
func BenchmarkTracerSpanPair(b *testing.B) {
	clock := &fakeClock{}
	tr := NewTracer(clock.Now)
	tr.MaxSpans = 1024 // bound memory; drops are cheaper than growth
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.StartSpan("τ", "exec", "C1")
		clock.advance(time.Microsecond)
		tr.EndSpan("τ", "exec", "C1", "")
	}
}

// BenchmarkTracerTriggerLifecycle measures a full root open→verdict cycle.
func BenchmarkTracerTriggerLifecycle(b *testing.B) {
	clock := &fakeClock{}
	tr := NewTracer(clock.Now)
	tr.MaxSpans = 1024
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.StartTrigger("τ", "packet-in")
		clock.advance(time.Microsecond)
		tr.EndTrigger("τ", "valid", "none")
	}
}

// BenchmarkCounterInc measures the registry counter hot path shared by
// the validator and replicator.
func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Counter("jury_bench_total", "")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

// BenchmarkWritePrometheus measures one /metrics scrape over a registry
// sized like a mid-size deployment (24 labeled replicator children plus
// the validator family).
func BenchmarkWritePrometheus(b *testing.B) {
	r := NewRegistry()
	for i := 1; i <= 24; i++ {
		r.Counter("jury_replicator_replicated_bytes_total", "Bytes replicated.",
			L("dpid", fmt.Sprintf("of:%04x", i))).Add(int64(i) * 1000)
	}
	r.Counter("jury_validator_decided_total", "Triggers decided.").Add(12345)
	h := r.Histogram("jury_validator_detection_seconds", "Detection time.", nil)
	for i := 0; i < 1000; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := r.WritePrometheus(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWriteJSONL measures trace export throughput over 1k spans.
func BenchmarkWriteJSONL(b *testing.B) {
	clock := &fakeClock{}
	tr := NewTracer(clock.Now)
	for i := 0; i < 1000; i++ {
		id := fmt.Sprintf("τ%d", i)
		tr.StartTrigger(id, "packet-in")
		clock.advance(time.Microsecond)
		tr.EndTrigger(id, "valid", "none")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tr.WriteJSONL(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}
