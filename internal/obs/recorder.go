package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
)

// EventKind classifies one flight-recorder event on a trigger's lifecycle.
type EventKind uint8

// Flight-recorder event kinds, in trigger-lifecycle order.
const (
	// EvSubmit: a pending trigger opened (first response arrived).
	EvSubmit EventKind = iota + 1
	// EvResponse: one controller response appended to a pending trigger
	// (Detail "late" when it arrived after the verdict).
	EvResponse
	// EvPsi: an untainted response updated a controller's Ψ entry.
	EvPsi
	// EvTimer: the validation deadline expired and forced a decision.
	EvTimer
	// EvVerdict: the trigger decided (Verdict/Fault carry the outcome).
	EvVerdict
)

// String names the event kind.
func (k EventKind) String() string {
	switch k {
	case EvSubmit:
		return "submit"
	case EvResponse:
		return "response"
	case EvPsi:
		return "psi"
	case EvTimer:
		return "timer"
	case EvVerdict:
		return "verdict"
	default:
		return fmt.Sprintf("event(%d)", uint8(k))
	}
}

// MarshalJSON renders the kind as its name, so dumps read without a
// decoder ring.
func (k EventKind) MarshalJSON() ([]byte, error) {
	return json.Marshal(k.String())
}

// UnmarshalJSON accepts the name form written by MarshalJSON.
func (k *EventKind) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	for _, cand := range []EventKind{EvSubmit, EvResponse, EvPsi, EvTimer, EvVerdict} {
		if cand.String() == s {
			*k = cand
			return nil
		}
	}
	return fmt.Errorf("obs: unknown event kind %q", s)
}

// Event is one flight-recorder entry: a single step of a trigger's life
// inside the validator. Events are plain values (strings share backing
// arrays with their sources), so recording one is an assignment — no
// allocation on the steady-state path.
type Event struct {
	// Seq is the recorder-local append order (1-based), the tiebreak for
	// events recorded at the same virtual instant on the same shard.
	Seq uint64 `json:"seq"`
	// AtNS is the virtual timestamp of the event.
	AtNS int64 `json:"at_ns"` // vclock:wire -- dump format is virtual ns by contract
	// Kind classifies the event.
	Kind EventKind `json:"kind"`
	// Trigger is the taint/trigger ID the event belongs to (τ).
	Trigger string `json:"trigger,omitempty"`
	// Shard is the shard whose recorder captured the event.
	Shard int `json:"shard"`
	// Origin names the process that recorded the event (for stitched
	// multi-process dumps); empty in single-process dumps.
	Origin string `json:"origin,omitempty"`
	// Ctrl is the responding controller's node ID (EvResponse, EvPsi).
	Ctrl int64 `json:"ctrl,omitempty"`
	// Verdict and Fault carry the decision on EvVerdict events.
	Verdict string `json:"verdict,omitempty"`
	Fault   string `json:"fault,omitempty"`
	// Detail carries event-specific context ("late", the fault reason).
	Detail string `json:"detail,omitempty"`
	// Arg is an event-specific scalar: the armed timeout for EvSubmit,
	// the response count for EvVerdict.
	Arg int64 `json:"arg,omitempty"`
}

// Recorder is an always-on flight recorder: a fixed-size ring buffer of
// the most recent validator events, cheap enough to leave running in
// production and snapshotted to JSONL only when a dump predicate fires
// (non-benign verdict, queue high-watermark, overflow). A nil *Recorder
// is the disabled recorder: Record is a nil-check and nothing else, so
// instrumented hot paths cost nothing when flight recording is off.
//
// Record never allocates in steady state: the ring is pre-allocated at
// construction and entries are overwritten in place
// (TestSubmitRecorderBoundedAlloc pins the Submit hot path with a live
// recorder at zero allocations). Recorder is safe for concurrent use —
// appends take a mutex so a dump goroutine can snapshot while the owner
// keeps recording — but the intended shape is one recorder per shard
// with a single writer, merged at dump time via MergeEvents.
type Recorder struct {
	mu     sync.Mutex
	ring   []Event // guarded by mu
	total  uint64  // guarded by mu
	shard  int     // guarded by mu
	origin string  // guarded by mu
}

// DefaultFlightRing is the ring capacity when NewRecorder is given a
// non-positive one.
const DefaultFlightRing = 4096

// NewRecorder creates a flight recorder retaining the last capacity
// events (DefaultFlightRing when capacity <= 0).
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultFlightRing
	}
	return &Recorder{ring: make([]Event, capacity)}
}

// Enabled reports whether the recorder records events.
func (r *Recorder) Enabled() bool { return r != nil }

// SetShard stamps every subsequently recorded event with the shard index
// (per-shard rings in the parallel plane).
func (r *Recorder) SetShard(i int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.shard = i
	r.mu.Unlock()
}

// SetOrigin stamps every subsequently recorded event with the process
// origin (for multi-process dump stitching).
func (r *Recorder) SetOrigin(o string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.origin = o
	r.mu.Unlock()
}

// Record appends one event, overwriting the oldest entry once the ring
// is full. Seq, Shard and Origin are filled in; everything else is the
// caller's. Nil-safe and allocation-free.
func (r *Recorder) Record(e Event) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.total++
	e.Seq = r.total
	e.Shard = r.shard
	e.Origin = r.origin
	r.ring[(r.total-1)%uint64(len(r.ring))] = e
	r.mu.Unlock()
}

// Total returns the number of events ever recorded (retained or evicted).
func (r *Recorder) Total() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Cap returns the ring capacity.
func (r *Recorder) Cap() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.ring)
}

// Snapshot copies the retained events oldest-first. This is the dump
// path: it allocates, so call it from dump predicates, not hot paths.
func (r *Recorder) Snapshot() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := uint64(len(r.ring))
	if r.total < n {
		n = r.total
	}
	out := make([]Event, 0, n)
	start := r.total - n
	for i := uint64(0); i < n; i++ {
		out = append(out, r.ring[(start+i)%uint64(len(r.ring))])
	}
	return out
}

// MergeEvents merges per-shard (or per-process) snapshots into one
// deterministic dump order: virtual time, then shard, then the shard's
// own append order. Wall-clock interleaving of the recorders never shows
// in the merged output for a deterministic run.
func MergeEvents(snaps ...[]Event) []Event {
	var out []Event
	for _, s := range snaps {
		out = append(out, s...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].AtNS != out[j].AtNS {
			return out[i].AtNS < out[j].AtNS
		}
		if out[i].Origin != out[j].Origin {
			return out[i].Origin < out[j].Origin
		}
		if out[i].Shard != out[j].Shard {
			return out[i].Shard < out[j].Shard
		}
		return out[i].Seq < out[j].Seq
	})
	return out
}

// WriteEventsJSONL writes one canonical JSON object per event — the
// flight-dump format. Byte-deterministic for a deterministic event list.
func WriteEventsJSONL(w io.Writer, events []Event) error {
	for _, e := range events {
		line, err := json.Marshal(e)
		if err != nil {
			return fmt.Errorf("obs: marshal event: %w", err)
		}
		line = append(line, '\n')
		if _, err := w.Write(line); err != nil {
			return fmt.Errorf("obs: write event: %w", err)
		}
	}
	return nil
}
