package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

// TestRecorderRingWrap asserts the ring retains exactly the newest
// capacity events, oldest-first, once writes exceed capacity.
func TestRecorderRingWrap(t *testing.T) {
	rec := NewRecorder(4)
	for i := 1; i <= 10; i++ {
		rec.Record(Event{AtNS: int64(i), Kind: EvResponse})
	}
	if rec.Total() != 10 {
		t.Fatalf("total = %d, want 10", rec.Total())
	}
	events := rec.Snapshot()
	if len(events) != 4 {
		t.Fatalf("snapshot retains %d events, want 4", len(events))
	}
	for i, e := range events {
		wantSeq := uint64(7 + i)
		if e.Seq != wantSeq || e.AtNS != int64(wantSeq) {
			t.Fatalf("event[%d] = seq %d at %d, want seq %d", i, e.Seq, e.AtNS, wantSeq)
		}
	}
}

// TestRecorderPartialRing asserts a snapshot before the first wrap returns
// only the recorded prefix.
func TestRecorderPartialRing(t *testing.T) {
	rec := NewRecorder(8)
	rec.Record(Event{AtNS: 1, Kind: EvSubmit})
	rec.Record(Event{AtNS: 2, Kind: EvVerdict})
	events := rec.Snapshot()
	if len(events) != 2 {
		t.Fatalf("snapshot retains %d events, want 2", len(events))
	}
	if events[0].Kind != EvSubmit || events[1].Kind != EvVerdict {
		t.Fatalf("snapshot order = %v, %v", events[0].Kind, events[1].Kind)
	}
}

// TestRecorderNilSafe asserts the disabled (nil) recorder is inert on
// every method.
func TestRecorderNilSafe(t *testing.T) {
	var rec *Recorder
	if rec.Enabled() {
		t.Fatal("nil recorder reports enabled")
	}
	rec.Record(Event{Kind: EvSubmit})
	rec.SetShard(3)
	rec.SetOrigin("x")
	if rec.Total() != 0 || rec.Cap() != 0 || rec.Snapshot() != nil {
		t.Fatal("nil recorder retained state")
	}
}

// TestRecorderConcurrentAppend hammers one recorder from many goroutines
// while snapshots run — the race detector is the assertion; the counts
// are the sanity check.
func TestRecorderConcurrentAppend(t *testing.T) {
	rec := NewRecorder(64)
	const writers, perWriter = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				rec.Record(Event{AtNS: int64(i), Kind: EvResponse, Ctrl: int64(w)})
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			_ = rec.Snapshot()
		}
	}()
	wg.Wait()
	<-done
	if rec.Total() != writers*perWriter {
		t.Fatalf("total = %d, want %d", rec.Total(), writers*perWriter)
	}
	if got := len(rec.Snapshot()); got != 64 {
		t.Fatalf("snapshot retains %d events, want 64", got)
	}
}

// TestMergeEventsDeterministic asserts the merged dump order is a pure
// function of the event set: virtual time, origin, shard, then append
// order — regardless of snapshot arrival order.
func TestMergeEventsDeterministic(t *testing.T) {
	shard0 := []Event{
		{Seq: 1, AtNS: 10, Shard: 0, Kind: EvSubmit},
		{Seq: 2, AtNS: 30, Shard: 0, Kind: EvVerdict},
	}
	shard1 := []Event{
		{Seq: 1, AtNS: 10, Shard: 1, Kind: EvSubmit},
		{Seq: 2, AtNS: 20, Shard: 1, Kind: EvVerdict},
	}
	ab := MergeEvents(shard0, shard1)
	ba := MergeEvents(shard1, shard0)
	if len(ab) != 4 || len(ba) != 4 {
		t.Fatalf("merged lengths = %d, %d, want 4", len(ab), len(ba))
	}
	for i := range ab {
		if ab[i] != ba[i] {
			t.Fatalf("merge order depends on snapshot order at index %d: %+v vs %+v", i, ab[i], ba[i])
		}
	}
	wantShards := []int{0, 1, 1, 0}
	for i, e := range ab {
		if e.Shard != wantShards[i] {
			t.Fatalf("merged[%d].Shard = %d, want %d", i, e.Shard, wantShards[i])
		}
	}
}

// TestWriteEventsJSONLRoundTrip asserts dump lines parse back to the
// events that produced them, including the named kind encoding.
func TestWriteEventsJSONLRoundTrip(t *testing.T) {
	rec := NewRecorder(8)
	rec.SetShard(2)
	rec.SetOrigin("juryd")
	rec.Record(Event{AtNS: 5, Kind: EvSubmit, Trigger: "τ", Arg: 100})
	rec.Record(Event{AtNS: 9, Kind: EvVerdict, Trigger: "τ", Verdict: "valid", Fault: "none"})
	var buf bytes.Buffer
	if err := WriteEventsJSONL(&buf, rec.Snapshot()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("dump has %d lines, want 2", len(lines))
	}
	if !strings.Contains(lines[0], `"kind":"submit"`) || !strings.Contains(lines[1], `"kind":"verdict"`) {
		t.Fatalf("dump kinds not name-encoded:\n%s", buf.String())
	}
	if !strings.Contains(lines[0], `"origin":"juryd"`) || !strings.Contains(lines[0], `"shard":2`) {
		t.Fatalf("dump missing origin/shard stamps:\n%s", lines[0])
	}
	var e Event
	if err := e.Kind.UnmarshalJSON([]byte(`"verdict"`)); err != nil || e.Kind != EvVerdict {
		t.Fatalf("kind round-trip = %v, %v", e.Kind, err)
	}
	if err := e.Kind.UnmarshalJSON([]byte(`"nonsense"`)); err == nil {
		t.Fatal("unknown kind name silently accepted")
	}
}
