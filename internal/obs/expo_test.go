package obs

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// testClock is a controllable wall clock for exposition tests.
type testClock struct{ now time.Time }

func (c *testClock) Now() time.Time { return c.now }

func newTestClock() *testClock {
	return &testClock{now: time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func TestExpoHandlerMetrics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("jury_validator_decided_total", "Triggers decided.").Add(9)
	clock := newTestClock()
	h, err := NewExpoHandler(ExpoConfig{Registry: reg, Clock: clock.Now})
	if err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "jury_validator_decided_total 9") {
		t.Fatalf("metrics page missing counter:\n%s", rec.Body.String())
	}
}

func TestExpoHandlerHealthz(t *testing.T) {
	reg := NewRegistry()
	clock := newTestClock()
	h, err := NewExpoHandler(ExpoConfig{Registry: reg, Clock: clock.Now})
	if err != nil {
		t.Fatal(err)
	}
	clock.now = clock.now.Add(1500 * time.Millisecond)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	want := "{\"status\":\"ok\",\"uptime_seconds\":1.500}\n"
	if rec.Body.String() != want {
		t.Fatalf("healthz = %q, want %q", rec.Body.String(), want)
	}
}

func TestExpoHandlerUnhealthy(t *testing.T) {
	reg := NewRegistry()
	clock := newTestClock()
	h, err := NewExpoHandler(ExpoConfig{
		Registry: reg,
		Clock:    clock.Now,
		Health:   func() error { return errors.New("store unreachable") },
	})
	if err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "store unreachable") {
		t.Fatalf("healthz body = %q", rec.Body.String())
	}
}

func TestExpoHandlerWriteError(t *testing.T) {
	clock := newTestClock()
	h, err := NewExpoHandler(ExpoConfig{
		Write: func(io.Writer) error { return errors.New("scrape raced the event loop") },
		Clock: clock.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", rec.Code)
	}
}

func TestExpoHandlerNeedsSource(t *testing.T) {
	if _, err := NewExpoHandler(ExpoConfig{}); err == nil {
		t.Fatal("handler without Registry or Write did not error")
	}
}

func TestServeExpoRoundTrip(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("jury_live_total", "").Add(3)
	e, err := ServeExpo("127.0.0.1:0", ExpoConfig{Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := e.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()
	resp, err := http.Get("http://" + e.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	if cerr := resp.Body.Close(); cerr != nil {
		t.Fatal(cerr)
	}
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "jury_live_total 3") {
		t.Fatalf("live scrape missing counter:\n%s", body)
	}
}
