package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	var g Gauge
	g.Set(2.5)
	if got := g.Value(); got != 2.5 {
		t.Fatalf("gauge = %v, want 2.5", got)
	}
	g.Set(-1)
	if got := g.Value(); got != -1 {
		t.Fatalf("gauge = %v, want -1", got)
	}
}

func TestGaugeAddConcurrent(t *testing.T) {
	var g Gauge
	var wg sync.WaitGroup
	const workers = 8
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				g.Add(1)
				g.Add(-1)
			}
			g.Add(1)
		}()
	}
	wg.Wait()
	if got := g.Value(); got != workers {
		t.Fatalf("gauge = %v, want %d (concurrent Add lost updates)", got, workers)
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("jury_test_total", "help")
	b := r.Counter("jury_test_total", "help")
	if a != b {
		t.Fatal("same (name, labels) returned distinct counters")
	}
	l1 := r.Counter("jury_labeled_total", "help", L("dpid", "of:0001"))
	l2 := r.Counter("jury_labeled_total", "help", L("dpid", "of:0002"))
	if l1 == l2 {
		t.Fatal("distinct label sets share a counter")
	}
	// Label order must not matter.
	x := r.Counter("jury_two_labels_total", "h", L("a", "1"), L("b", "2"))
	y := r.Counter("jury_two_labels_total", "h", L("b", "2"), L("a", "1"))
	if x != y {
		t.Fatal("label order changed child identity")
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("jury_kind_total", "help")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("jury_kind_total", "help")
}

func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("jury_validator_decided_total", "Triggers decided.").Add(7)
	r.Counter("jury_replicator_replicated_bytes_total", "Bytes replicated.",
		L("dpid", "of:0002")).Add(128)
	r.Counter("jury_replicator_replicated_bytes_total", "Bytes replicated.",
		L("dpid", "of:0001")).Add(64)
	r.Gauge("jury_cluster_members_alive", "Members alive.").Set(3)
	r.GaugeFunc("jury_validator_pending", "Triggers awaiting decision.",
		func() float64 { return 2 })
	h := r.Histogram("jury_validator_detection_seconds", "Detection time.", nil)
	for _, d := range []time.Duration{10 * time.Millisecond, 20 * time.Millisecond,
		30 * time.Millisecond, 40 * time.Millisecond} {
		h.Observe(d)
	}

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP jury_cluster_members_alive Members alive.
# TYPE jury_cluster_members_alive gauge
jury_cluster_members_alive 3
# HELP jury_replicator_replicated_bytes_total Bytes replicated.
# TYPE jury_replicator_replicated_bytes_total counter
jury_replicator_replicated_bytes_total{dpid="of:0001"} 64
jury_replicator_replicated_bytes_total{dpid="of:0002"} 128
# HELP jury_validator_decided_total Triggers decided.
# TYPE jury_validator_decided_total counter
jury_validator_decided_total 7
# HELP jury_validator_detection_seconds Detection time.
# TYPE jury_validator_detection_seconds summary
jury_validator_detection_seconds{quantile="0.5"} 0.025
jury_validator_detection_seconds{quantile="0.9"} 0.037
jury_validator_detection_seconds{quantile="0.95"} 0.038499999
jury_validator_detection_seconds{quantile="0.99"} 0.039699999
jury_validator_detection_seconds_sum 0.1
jury_validator_detection_seconds_count 4
# HELP jury_validator_pending Triggers awaiting decision.
# TYPE jury_validator_pending gauge
jury_validator_pending 2
`
	if got := b.String(); got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestWritePrometheusDeterministic(t *testing.T) {
	r := NewRegistry()
	for _, dpid := range []string{"of:0003", "of:0001", "of:0002"} {
		r.Counter("jury_triggers_total", "Triggers.", L("dpid", dpid)).Inc()
	}
	var a, b strings.Builder
	if err := r.WritePrometheus(&a); err != nil {
		t.Fatal(err)
	}
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("two scrapes of the same state rendered differently")
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("jury_escape_total", "", L("v", "a\"b\\c\nd")).Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `jury_escape_total{v="a\"b\\c\nd"} 1`
	if !strings.Contains(b.String(), want) {
		t.Fatalf("escaped label missing:\n%s", b.String())
	}
}

func TestHistogramWrapsExistingDistribution(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("jury_wrapped_seconds", "", nil)
	h.Observe(time.Second)
	snap := h.Snapshot()
	if snap.Count() != 1 || snap.Sum() != time.Second {
		t.Fatalf("snapshot = %d samples / %v sum", snap.Count(), snap.Sum())
	}
}

// TestGaugeHighWatermark asserts the gauge retains its maximum ever
// value across Set/Add movements in both directions.
func TestGaugeHighWatermark(t *testing.T) {
	reg := NewRegistry()
	g := reg.Gauge("jury_shard_queue_depth", `shard="0"`)
	if g.HighWatermark() != 0 {
		t.Fatalf("fresh hwm = %v, want 0", g.HighWatermark())
	}
	g.Set(3)
	g.Set(9)
	g.Set(2)
	if g.HighWatermark() != 9 {
		t.Fatalf("hwm after sets = %v, want 9", g.HighWatermark())
	}
	g.Add(10) // 2 + 10 = 12
	g.Add(-5)
	if g.Value() != 7 || g.HighWatermark() != 12 {
		t.Fatalf("value = %v hwm = %v, want 7/12", g.Value(), g.HighWatermark())
	}
}
