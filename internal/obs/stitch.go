package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// StitchInput is one process's span stream for cross-process stitching:
// its JSONL trace (as written by Tracer.WriteJSONL), the origin name to
// stamp on its spans, and the virtual-timestamp shift aligning its clock
// base onto the stitched axis. ShiftNS normally comes from the wire
// TraceContext exchange (the validator estimates each client origin's
// clock-base offset; see wire.Server.TraceOrigins).
type StitchInput struct {
	// Origin names the process ("jurylive", "juryd"). Spans that already
	// carry an origin keep it; unstamped spans get this one.
	Origin string
	// ShiftNS is added to every span's StartNS, mapping the input's
	// virtual clock base onto the stitched timeline.
	ShiftNS int64 // vclock:wire -- clock-base shift on the virtual-ns trace axis
	// R streams the input's JSONL spans.
	R io.Reader
}

// readStitchSpans parses one input's JSONL spans, stamping origin and
// applying the shift.
func readStitchSpans(in StitchInput) ([]Span, error) {
	var out []Span
	sc := bufio.NewScanner(in.R)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var s Span
		if err := json.Unmarshal(line, &s); err != nil {
			return nil, fmt.Errorf("obs: stitch %s: parse span: %w", in.Origin, err)
		}
		if s.Origin == "" {
			s.Origin = in.Origin
		}
		s.StartNS += in.ShiftNS
		out = append(out, s)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: stitch %s: read: %w", in.Origin, err)
	}
	return out, nil
}

// stitchSpans merges every input into one deterministic span order:
// shifted start time, then origin, then the origin's own open sequence.
// The order is a pure function of the inputs, so stitching the same
// traces always yields the same bytes — the golden stitched-trace test
// pins this.
func stitchSpans(inputs []StitchInput) ([]Span, error) {
	var all []Span
	for _, in := range inputs {
		spans, err := readStitchSpans(in)
		if err != nil {
			return nil, err
		}
		all = append(all, spans...)
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].StartNS != all[j].StartNS {
			return all[i].StartNS < all[j].StartNS
		}
		if all[i].Origin != all[j].Origin {
			return all[i].Origin < all[j].Origin
		}
		return all[i].Seq < all[j].Seq
	})
	return all, nil
}

// StitchJSONL joins the JSONL span streams of N processes into one
// merged JSONL trace, origin-stamped, shift-aligned and deterministically
// ordered.
func StitchJSONL(w io.Writer, inputs ...StitchInput) error {
	spans, err := stitchSpans(inputs)
	if err != nil {
		return err
	}
	for _, s := range spans {
		line, err := json.Marshal(s)
		if err != nil {
			return fmt.Errorf("obs: marshal stitched span: %w", err)
		}
		line = append(line, '\n')
		if _, err := w.Write(line); err != nil {
			return fmt.Errorf("obs: write stitched span: %w", err)
		}
	}
	return nil
}

// StitchChromeTrace joins the JSONL span streams of N processes into one
// Chrome trace_event file: each origin becomes its own process row (pid
// assigned by sorted origin name), each (origin, node) its own thread
// row, so a trigger's controller-side and validator-side spans line up
// on one timeline in chrome://tracing or Perfetto.
func StitchChromeTrace(w io.Writer, inputs ...StitchInput) error {
	spans, err := stitchSpans(inputs)
	if err != nil {
		return err
	}
	// Deterministic pids: sorted distinct origins. Deterministic tids:
	// sorted distinct nodes within each origin.
	pids := make(map[string]int)
	var origins []string
	type tidKey struct{ origin, node string }
	tids := make(map[tidKey]int)
	nodesByOrigin := make(map[string][]string)
	for _, s := range spans {
		if _, ok := pids[s.Origin]; !ok {
			pids[s.Origin] = 0
			origins = append(origins, s.Origin)
		}
		k := tidKey{s.Origin, s.Node}
		if _, ok := tids[k]; !ok {
			tids[k] = 0
			nodesByOrigin[s.Origin] = append(nodesByOrigin[s.Origin], s.Node)
		}
	}
	sort.Strings(origins)
	for i, o := range origins {
		pids[o] = i + 1
		nodes := nodesByOrigin[o]
		sort.Strings(nodes)
		for j, n := range nodes {
			tids[tidKey{o, n}] = j + 1
		}
	}
	if _, err := io.WriteString(w, "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"); err != nil {
		return fmt.Errorf("obs: write stitched trace: %w", err)
	}
	first := true
	emit := func(line string) error {
		if !first {
			if _, err := io.WriteString(w, ",\n"); err != nil {
				return err
			}
		}
		first = false
		_, err := io.WriteString(w, line)
		return err
	}
	for _, o := range origins {
		name := o
		if name == "" {
			name = "(unattributed)"
		}
		meta := fmt.Sprintf(`{"ph":"M","pid":%d,"tid":0,"name":"process_name","args":{"name":%s}}`,
			pids[o], mustJSON(name))
		if err := emit(meta); err != nil {
			return fmt.Errorf("obs: write stitched trace: %w", err)
		}
		for _, n := range nodesByOrigin[o] {
			tname := n
			if tname == "" {
				tname = "(unattributed)"
			}
			meta := fmt.Sprintf(`{"ph":"M","pid":%d,"tid":%d,"name":"thread_name","args":{"name":%s}}`,
				pids[o], tids[tidKey{o, n}], mustJSON(tname))
			if err := emit(meta); err != nil {
				return fmt.Errorf("obs: write stitched trace: %w", err)
			}
		}
	}
	for _, s := range spans {
		args := map[string]string{"trigger": s.Trigger}
		if s.Verdict != "" {
			args["verdict"] = s.Verdict
		}
		if s.Fault != "" && s.Fault != "none" {
			args["fault"] = s.Fault
		}
		if s.Detail != "" {
			args["detail"] = s.Detail
		}
		argJSON, err := json.Marshal(args)
		if err != nil {
			return fmt.Errorf("obs: marshal stitched args: %w", err)
		}
		line := fmt.Sprintf(`{"ph":"X","pid":%d,"tid":%d,"name":%s,"cat":"jury","ts":%s,"dur":%s,"args":%s}`,
			pids[s.Origin], tids[tidKey{s.Origin, s.Node}], mustJSON(s.Name),
			usec(s.StartNS), usec(s.DurNS), argJSON)
		if err := emit(line); err != nil {
			return fmt.Errorf("obs: write stitched trace: %w", err)
		}
	}
	if _, err := io.WriteString(w, "\n]}\n"); err != nil {
		return fmt.Errorf("obs: write stitched trace: %w", err)
	}
	return nil
}
