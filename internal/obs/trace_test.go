package obs

import (
	"strings"
	"testing"
	"time"
)

// fakeClock is a controllable virtual clock for tracer tests.
type fakeClock struct{ now time.Duration }

func (c *fakeClock) Now() time.Duration      { return c.now }
func (c *fakeClock) advance(d time.Duration) { c.now += d }
func newFakeTracer() (*Tracer, *fakeClock) {
	c := &fakeClock{}
	return NewTracer(c.Now), c
}

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	tr.StartTrigger("τ", "packet-in")
	tr.StartSpan("τ", "exec", "C1")
	tr.EndSpan("τ", "exec", "C1", "")
	tr.Emit("τ", "store-repl", "store/C2", 0, time.Millisecond, "")
	tr.EndTrigger("τ", "valid", "none")
	if got := tr.Spans(); got != nil {
		t.Fatalf("nil tracer produced %d spans", len(got))
	}
	if tr.CompletedTriggers() != 0 || tr.OpenSpans() != 0 || tr.Dropped() != 0 {
		t.Fatal("nil tracer reports nonzero counters")
	}
	if err := tr.WriteJSONL(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteChromeTrace(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
}

func TestTracerSpanLifecycle(t *testing.T) {
	tr, clock := newFakeTracer()
	tr.StartTrigger("τ1", "packet-in")
	clock.advance(time.Millisecond)
	tr.StartSpan("τ1", "exec", "C1")
	clock.advance(2 * time.Millisecond)
	tr.EndSpan("τ1", "exec", "C1", "")
	tr.Emit("τ1", "store-repl", "store/C1", 2*time.Millisecond, 4*time.Millisecond, "FlowsDB")
	clock.advance(time.Millisecond)
	tr.EndTrigger("τ1", "valid", "none")

	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	// Canonical order: by start time, then sequence.
	root := spans[0]
	if root.Name != "trigger" || root.Node != "triggers" {
		t.Fatalf("first span = %s on %s, want root trigger span", root.Name, root.Node)
	}
	if root.StartNS != 0 || root.DurNS != int64(4*time.Millisecond) {
		t.Fatalf("root = [%d, +%d]ns, want [0, +4ms]", root.StartNS, root.DurNS)
	}
	if root.Verdict != "valid" || root.Fault != "none" || root.Detail != "packet-in" {
		t.Fatalf("root verdict/fault/detail = %q/%q/%q", root.Verdict, root.Fault, root.Detail)
	}
	exec := spans[1]
	if exec.Name != "exec" || exec.Node != "C1" ||
		exec.StartNS != int64(time.Millisecond) || exec.DurNS != int64(2*time.Millisecond) {
		t.Fatalf("exec span = %+v", exec)
	}
	if tr.CompletedTriggers() != 1 || tr.OpenSpans() != 0 {
		t.Fatalf("completed=%d open=%d", tr.CompletedTriggers(), tr.OpenSpans())
	}
}

func TestStartTriggerIdempotent(t *testing.T) {
	tr, clock := newFakeTracer()
	tr.StartTrigger("τ", "packet-in")
	clock.advance(time.Millisecond)
	tr.StartTrigger("τ", "late-reopen") // must not reset the start or detail
	clock.advance(time.Millisecond)
	tr.EndTrigger("τ", "valid", "none")
	spans := tr.Spans()
	if len(spans) != 1 {
		t.Fatalf("got %d spans, want 1", len(spans))
	}
	if spans[0].StartNS != 0 || spans[0].Detail != "packet-in" {
		t.Fatalf("root = start %dns detail %q, first opener should win", spans[0].StartNS, spans[0].Detail)
	}
}

func TestEndTriggerWithoutStart(t *testing.T) {
	tr, clock := newFakeTracer()
	clock.advance(3 * time.Millisecond)
	tr.EndTrigger("ghost", "valid", "none")
	spans := tr.Spans()
	if len(spans) != 1 || spans[0].DurNS != 0 || spans[0].StartNS != int64(3*time.Millisecond) {
		t.Fatalf("spans = %+v, want one zero-length span at 3ms", spans)
	}
	if tr.CompletedTriggers() != 1 {
		t.Fatalf("completed = %d", tr.CompletedTriggers())
	}
}

func TestEndSpanWithoutStartIsNoop(t *testing.T) {
	tr, _ := newFakeTracer()
	tr.EndSpan("τ", "exec", "C1", "")
	if len(tr.Spans()) != 0 {
		t.Fatal("unmatched EndSpan produced a span")
	}
}

func TestMaxSpansDrops(t *testing.T) {
	tr, _ := newFakeTracer()
	tr.MaxSpans = 2
	for i := 0; i < 5; i++ {
		tr.Emit("τ", "store-repl", "store/C1", 0, time.Millisecond, "")
	}
	if len(tr.Spans()) != 2 {
		t.Fatalf("retained %d spans, want 2", len(tr.Spans()))
	}
	if tr.Dropped() != 3 {
		t.Fatalf("dropped = %d, want 3", tr.Dropped())
	}
}

func TestWriteJSONLGolden(t *testing.T) {
	tr, clock := newFakeTracer()
	tr.StartTrigger("τ1", "packet-in")
	clock.advance(time.Millisecond)
	tr.StartSpan("τ1", "exec", "C1")
	clock.advance(time.Millisecond)
	tr.EndSpan("τ1", "exec", "C1", "")
	tr.EndTrigger("τ1", "valid", "none")
	var b strings.Builder
	if err := tr.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	want := `{"seq":1,"trigger":"τ1","name":"trigger","node":"triggers","start_ns":0,"dur_ns":2000000,"verdict":"valid","fault":"none","detail":"packet-in"}
{"seq":2,"trigger":"τ1","name":"exec","node":"C1","start_ns":1000000,"dur_ns":1000000}
`
	if got := b.String(); got != want {
		t.Fatalf("JSONL mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestWriteChromeTraceGolden(t *testing.T) {
	tr, clock := newFakeTracer()
	tr.StartTrigger("τ1", "")
	tr.StartSpan("τ1", "exec", "C1")
	clock.advance(1500 * time.Nanosecond)
	tr.EndSpan("τ1", "exec", "C1", "")
	tr.EndTrigger("τ1", "fault", "omission")
	var b strings.Builder
	if err := tr.WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	want := `{"displayTimeUnit":"ms","traceEvents":[
{"ph":"M","pid":1,"tid":1,"name":"thread_name","args":{"name":"C1"}},
{"ph":"M","pid":1,"tid":2,"name":"thread_name","args":{"name":"triggers"}},
{"ph":"X","pid":1,"tid":2,"name":"trigger","cat":"jury","ts":0.000,"dur":1.500,"args":{"fault":"omission","trigger":"τ1","verdict":"fault"}},
{"ph":"X","pid":1,"tid":1,"name":"exec","cat":"jury","ts":0.000,"dur":1.500,"args":{"trigger":"τ1"}}
]}
`
	if got := b.String(); got != want {
		t.Fatalf("Chrome trace mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestTraceDeterministicAcrossRuns(t *testing.T) {
	render := func() string {
		tr, clock := newFakeTracer()
		for i := 0; i < 50; i++ {
			id := string(rune('a' + i%26))
			tr.StartTrigger(id, "packet-in")
			tr.StartSpan(id, "exec", "C1")
			clock.advance(time.Duration(i+1) * time.Microsecond)
			tr.EndSpan(id, "exec", "C1", "")
			tr.EndTrigger(id, "valid", "none")
		}
		var b strings.Builder
		if err := tr.WriteJSONL(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	if render() != render() {
		t.Fatal("identical span programs rendered different JSONL")
	}
}

func TestUsec(t *testing.T) {
	cases := []struct {
		ns   int64
		want string
	}{
		{0, "0.000"},
		{1, "0.001"},
		{999, "0.999"},
		{1000, "1.000"},
		{1500, "1.500"},
		{2_000_001, "2000.001"},
		{-1500, "-1.500"},
	}
	for _, c := range cases {
		if got := usec(c.ns); got != c.want {
			t.Errorf("usec(%d) = %q, want %q", c.ns, got, c.want)
		}
	}
}

// TestDroppedSpansCounter asserts MaxSpans drops surface on the
// instrumented registry as jury_trace_spans_dropped_total.
func TestDroppedSpansCounter(t *testing.T) {
	tr, _ := newFakeTracer()
	tr.MaxSpans = 2
	reg := NewRegistry()
	tr.InstrumentMetrics(reg)
	for i := 0; i < 5; i++ {
		id := string(rune('a' + i))
		tr.StartTrigger(id, "")
		tr.EndTrigger(id, "valid", "none")
	}
	if tr.Dropped() != 3 {
		t.Fatalf("dropped = %d, want 3", tr.Dropped())
	}
	if got := reg.Counter("jury_trace_spans_dropped_total", "").Value(); got != 3 {
		t.Fatalf("jury_trace_spans_dropped_total = %d, want 3", got)
	}
}

// TestInstrumentMetricsNilSafe asserts instrumenting a nil tracer or a
// nil registry is inert.
func TestInstrumentMetricsNilSafe(t *testing.T) {
	var tr *Tracer
	tr.InstrumentMetrics(NewRegistry())
	tr2, _ := newFakeTracer()
	tr2.InstrumentMetrics(nil)
	tr2.StartTrigger("τ", "")
	tr2.EndTrigger("τ", "valid", "none")
}
