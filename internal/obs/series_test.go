package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// TestSeriesSampleAndSchema asserts rows carry one value per column in
// column order, stamped with the virtual sampling instant.
func TestSeriesSampleAndSchema(t *testing.T) {
	var decided, pending float64
	s := NewSeries(
		SeriesColumn{Name: "decided", Fn: func() float64 { return decided }},
		SeriesColumn{Name: "pending", Fn: func() float64 { return pending }},
	)
	decided, pending = 3, 1
	s.Sample(10 * time.Millisecond)
	decided, pending = 7, 0
	s.Sample(20 * time.Millisecond)
	if s.Len() != 2 {
		t.Fatalf("len = %d, want 2", s.Len())
	}
	if got := s.Columns(); len(got) != 2 || got[0] != "decided" || got[1] != "pending" {
		t.Fatalf("columns = %v", got)
	}
	rows := s.Rows()
	if rows[0].AtNS != int64(10*time.Millisecond) || rows[1].AtNS != int64(20*time.Millisecond) {
		t.Fatalf("timestamps = %d, %d", rows[0].AtNS, rows[1].AtNS)
	}
	if rows[0].V[0] != 3 || rows[0].V[1] != 1 || rows[1].V[0] != 7 || rows[1].V[1] != 0 {
		t.Fatalf("values = %v, %v", rows[0].V, rows[1].V)
	}
}

// TestSeriesWriteJSONLDeterministic asserts the columnar dump is
// byte-identical across writes: header naming the columns, then one row
// per sample.
func TestSeriesWriteJSONLDeterministic(t *testing.T) {
	s := NewSeries(
		SeriesColumn{Name: "events", Fn: func() float64 { return 42 }},
	)
	s.Sample(5 * time.Millisecond)
	var a, b bytes.Buffer
	if err := s.WriteJSONL(&a); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("series dump not deterministic:\n%s\nvs\n%s", a.String(), b.String())
	}
	lines := strings.Split(strings.TrimSpace(a.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("dump has %d lines, want header + 1 row", len(lines))
	}
	if lines[0] != `{"series":["events"]}` {
		t.Fatalf("header = %s", lines[0])
	}
	if lines[1] != `{"at_ns":5000000,"v":[42]}` {
		t.Fatalf("row = %s", lines[1])
	}
}
