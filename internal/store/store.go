// Package store implements the distributed data store substrate that gives
// the controller cluster its logically centralized view (§II-A1). It stands
// in for Hazelcast (ONOS) and Infinispan (ODL): every controller node holds
// a replica of a set of named caches, writes propagate to all replicas in
// origin order, and listeners observe every cache event applied at a node —
// the hook JURY uses to intercept internal triggers (§IV-A(2)).
//
// Two consistency engines are provided:
//
//   - Eventual (Hazelcast-like): the origin applies locally at once and
//     replicates asynchronously via multicast; remote replicas converge
//     after the replication latency. Cheap writes, n-independent cost.
//   - Strong (Infinispan-like): writes serialize through a cluster-wide
//     commit order and complete only after every replica acknowledges,
//     making per-write cost grow with cluster size — the cause of ODL's
//     throughput collapse in Fig. 4g.
package store

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"time"

	"github.com/jurysdn/jury/internal/obs"
	"github.com/jurysdn/jury/internal/simnet"
)

// CacheName identifies a controller-wide cache (Table 2 of the paper).
type CacheName string

// The caches maintained by the reproduced controllers.
const (
	SwitchDB CacheName = "SwitchDB"
	LinksDB  CacheName = "LinksDB"
	EdgesDB  CacheName = "EdgesDB"
	HostDB   CacheName = "HostDB"
	ArpDB    CacheName = "ArpDB"
	FlowsDB  CacheName = "FlowsDB"
)

// Op is a cache operation.
type Op uint8

// Cache operations.
const (
	OpCreate Op = iota + 1
	OpUpdate
	OpDelete
)

// String returns the lowercase operation name used in policies.
func (o Op) String() string {
	switch o {
	case OpCreate:
		return "create"
	case OpUpdate:
		return "update"
	case OpDelete:
		return "delete"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// ParseOp converts a policy-file operation name to an Op.
func ParseOp(s string) (Op, error) {
	switch s {
	case "create":
		return OpCreate, nil
	case "update":
		return OpUpdate, nil
	case "delete":
		return OpDelete, nil
	default:
		return 0, fmt.Errorf("store: unknown operation %q", s)
	}
}

// NodeID identifies a controller node in the cluster.
type NodeID int

// Event is one cache mutation, attributed to its origin node with a
// per-origin sequence number (the data distribution platforms provide
// origin authentication, which JURY relies on for attribution, §IV-A(2)).
type Event struct {
	Origin NodeID
	Seq    uint64
	Cache  CacheName
	Op     Op
	Key    string
	Value  string
	// Tag carries the trigger identity (τ) the write is attributed to,
	// threaded through the store so every replica applying the event can
	// relay it to the validator with precise attribution (§IV-B(2)).
	Tag string
	// Prev/PrevOK report the entry's value at this replica immediately
	// before the event applied — the per-entry state snapshot JURY's
	// validator compares for equivalent-view consensus (§IV-C A).
	Prev   string
	PrevOK bool
	At     time.Duration
}

// WireSize estimates the replication message size in bytes for network
// overhead accounting (§VII-B2). The 640-byte base models the data
// distribution platform's envelope — serialization headers, backup acks and
// amortized heartbeat/anti-entropy chatter — which is what makes
// inter-controller traffic dominate in the paper's measurements (142 Mbps
// of Hazelcast traffic at a 5.5K PACKET_IN/s load).
func (e Event) WireSize() int { return 640 + len(e.Cache) + len(e.Key) + len(e.Value) + len(e.Tag) }

// String renders the event compactly.
func (e Event) String() string {
	return fmt.Sprintf("C%d#%d %s %s[%s]=%s", e.Origin, e.Seq, e.Op, e.Cache, e.Key, e.Value)
}

// Listener observes a cache event as it is applied at a node's replica.
// local is true at the origin node, false at remote replicas.
type Listener func(node NodeID, ev Event, local bool)

// Consistency selects the replication engine.
type Consistency uint8

// Consistency models.
const (
	// Eventual is the Hazelcast-like asynchronous model (ONOS).
	Eventual Consistency = iota + 1
	// Strong is the Infinispan-like synchronous model (ODL).
	Strong
)

// String names the consistency model.
func (c Consistency) String() string {
	switch c {
	case Eventual:
		return "eventual"
	case Strong:
		return "strong"
	default:
		return fmt.Sprintf("consistency(%d)", uint8(c))
	}
}

// Config parameterizes a store cluster.
type Config struct {
	Consistency Consistency
	// ReplicationLatency is the one-way latency for a replicated event to
	// reach a remote replica (eventual) or the per-replica ack RTT
	// contribution (strong).
	ReplicationLatency time.Duration
	// ReplicationJitter randomizes delivery per replica.
	ReplicationJitter time.Duration
	// CommitBase is the fixed commit cost of a strong write.
	CommitBase time.Duration
	// FlowBusService, for the eventual model, serializes FlowsDB writes
	// through a shared backup bus when the cluster has more than one
	// node — the Hazelcast flow-rule-backup bottleneck the paper's
	// footnote 4 describes. Zero disables the bus.
	FlowBusService time.Duration
	// Metrics receives the replication traffic counters; nil falls back
	// to a private registry.
	Metrics *obs.Registry
	// Tracer records a "store-repl" span per tagged event delivered to a
	// remote replica; nil disables tracing.
	Tracer *obs.Tracer
}

// DefaultConfig returns the calibrated configuration for a consistency
// model (see DESIGN.md, calibration to Figs. 4f/4g).
func DefaultConfig(c Consistency) Config {
	switch c {
	case Strong:
		return Config{
			Consistency:        Strong,
			ReplicationLatency: time.Millisecond,
			ReplicationJitter:  200 * time.Microsecond,
			CommitBase:         500 * time.Microsecond,
		}
	default:
		return Config{
			Consistency:        Eventual,
			ReplicationLatency: 1200 * time.Microsecond,
			ReplicationJitter:  600 * time.Microsecond,
		}
	}
}

// Cluster is a set of cache replicas, one per controller node.
type Cluster struct {
	eng   *simnet.Engine
	cfg   Config
	nodes map[NodeID]*Node

	// strong-mode global commit order
	commitBusyUntil time.Duration
	// eventual-mode FlowsDB backup bus
	busBusyUntil time.Duration

	tracer *obs.Tracer
	// Counters live in the obs registry; the accessor methods below are
	// thin reads over the same instances.
	replBytes *obs.Counter
	replMsgs  *obs.Counter
}

// NewCluster creates a store cluster on the engine.
func NewCluster(eng *simnet.Engine, cfg Config) *Cluster {
	if cfg.Consistency == 0 {
		def := DefaultConfig(Eventual)
		def.Metrics = cfg.Metrics
		def.Tracer = cfg.Tracer
		cfg = def
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	return &Cluster{
		eng:    eng,
		cfg:    cfg,
		nodes:  make(map[NodeID]*Node),
		tracer: cfg.Tracer,
		replBytes: reg.Counter("jury_store_replication_bytes_total",
			"Inter-controller store replication traffic in bytes (§VII-B2)."),
		replMsgs: reg.Counter("jury_store_replication_messages_total",
			"Store replication messages sent to remote replicas."),
	}
}

// AddNode creates the replica for a controller node.
func (c *Cluster) AddNode(id NodeID) *Node {
	n := &Node{
		id:      id,
		cluster: c,
		caches:  make(map[CacheName]map[string]string),
	}
	c.nodes[id] = n
	return n
}

// Node returns the replica for id, if present.
func (c *Cluster) Node(id NodeID) (*Node, bool) {
	n, ok := c.nodes[id]
	return n, ok
}

// RemoveNode detaches a node (crash); replication to it stops.
func (c *Cluster) RemoveNode(id NodeID) { delete(c.nodes, id) }

// Size returns the number of replicas.
func (c *Cluster) Size() int { return len(c.nodes) }

// Consistency returns the configured model.
func (c *Cluster) Consistency() Consistency { return c.cfg.Consistency }

// ReplicationBytes returns total inter-controller replication traffic.
func (c *Cluster) ReplicationBytes() int64 { return c.replBytes.Value() }

// ReplicationMessages returns total replication message count.
func (c *Cluster) ReplicationMessages() int64 { return c.replMsgs.Value() }

// write performs a mutation originated at node n. done (optional) fires
// when the write is durable per the consistency model: immediately after
// local apply for eventual, after all replicas acknowledge for strong.
func (c *Cluster) write(n *Node, cache CacheName, op Op, key, value, tag string, done func()) {
	n.seq++
	ev := Event{
		Origin: n.id,
		Seq:    n.seq,
		Cache:  cache,
		Op:     op,
		Key:    key,
		Value:  value,
		Tag:    tag,
		At:     c.eng.Now(),
	}
	switch c.cfg.Consistency {
	case Strong:
		c.strongWrite(n, ev, done)
	default:
		c.eventualWrite(n, ev, done)
	}
}

func (c *Cluster) eventualWrite(n *Node, ev Event, done func()) {
	if c.cfg.FlowBusService > 0 && ev.Cache == FlowsDB && len(c.nodes) > 1 {
		// Flow-rule backup serializes through a shared bus; the write
		// becomes visible (and the FLOW_MOD can be issued) only when its
		// bus slot completes.
		start := c.eng.Now()
		if c.busBusyUntil > start {
			start = c.busBusyUntil
		}
		commit := start + c.cfg.FlowBusService
		c.busBusyUntil = commit
		c.eng.At(commit, func() {
			if _, ok := c.nodes[n.id]; !ok {
				return // origin crashed before the bus slot
			}
			c.applyAndFanOut(n, ev, done)
		})
		return
	}
	c.applyAndFanOut(n, ev, done)
}

func (c *Cluster) applyAndFanOut(n *Node, ev Event, done func()) {
	n.apply(ev, true)
	for _, id := range c.nodeIDs() {
		if id == n.id {
			continue
		}
		c.replicate(c.nodes[id], ev)
	}
	if done != nil {
		done()
	}
}

// nodeIDs returns the replica IDs in sorted order so replication fan-out
// schedules engine events deterministically.
func (c *Cluster) nodeIDs() []NodeID {
	ids := make([]NodeID, 0, len(c.nodes))
	for id := range c.nodes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func (c *Cluster) strongWrite(n *Node, ev Event, done func()) {
	// Writes serialize through a cluster-wide commit order; each commit
	// costs the base plus one replication latency per remote replica
	// (synchronous acks), which is what throttles ODL as n grows.
	cost := c.cfg.CommitBase + time.Duration(len(c.nodes)-1)*c.cfg.ReplicationLatency
	start := c.eng.Now()
	if c.commitBusyUntil > start {
		start = c.commitBusyUntil
	}
	commit := start + cost
	c.commitBusyUntil = commit
	c.eng.At(commit, func() {
		if _, ok := c.nodes[n.id]; !ok {
			return // origin crashed before commit
		}
		n.apply(ev, true)
		for _, id := range c.nodeIDs() {
			if id == n.id {
				continue
			}
			c.replicate(c.nodes[id], ev)
		}
		if done != nil {
			done()
		}
	})
}

func (c *Cluster) replicate(peer *Node, ev Event) {
	size := ev.WireSize()
	c.replBytes.Add(int64(size))
	c.replMsgs.Inc()
	delay := c.cfg.ReplicationLatency
	if c.cfg.ReplicationJitter > 0 {
		delay += time.Duration(c.eng.Rand().Int63n(int64(c.cfg.ReplicationJitter)))
	}
	if c.cfg.Consistency == Strong {
		// Replicas were already synchronized during commit; delivery to
		// the replica cache is immediate at commit time.
		delay = 0
	}
	id := peer.id
	if c.tracer != nil && ev.Tag != "" {
		// The store fan-out interval for a tainted write: send at the
		// origin to in-order apply at the replica.
		start := c.eng.Now()
		c.tracer.Emit(ev.Tag, "store-repl", "store/C"+strconv.Itoa(int(id)),
			start, start+delay, string(ev.Cache))
	}
	c.eng.Schedule(delay, func() {
		if p, ok := c.nodes[id]; ok {
			p.applyInOrder(ev)
		}
	})
}

// Node is one controller's replica of the cluster caches.
type Node struct {
	id      NodeID
	cluster *Cluster
	caches  map[CacheName]map[string]string
	seq     uint64

	listeners []Listener

	// in-order delivery per origin (TCP preserves update order, §IV-C)
	expected map[NodeID]uint64
	held     map[NodeID][]Event

	applied uint64
	digest  uint64
}

// ID returns the node's identifier.
func (n *Node) ID() NodeID { return n.id }

// Subscribe registers a listener for every event applied at this replica.
func (n *Node) Subscribe(l Listener) { n.listeners = append(n.listeners, l) }

// Write mutates a cache; done fires when the write is durable per the
// cluster's consistency model (may be nil).
func (n *Node) Write(cache CacheName, op Op, key, value string, done func()) {
	n.cluster.write(n, cache, op, key, value, "", done)
}

// WriteTagged mutates a cache like Write, additionally attributing the
// event to a trigger via tag.
func (n *Node) WriteTagged(cache CacheName, op Op, key, value, tag string, done func()) {
	n.cluster.write(n, cache, op, key, value, tag, done)
}

// Get reads a key from this replica's view.
func (n *Node) Get(cache CacheName, key string) (string, bool) {
	m, ok := n.caches[cache]
	if !ok {
		return "", false
	}
	v, ok := m[key]
	return v, ok
}

// Len returns the number of entries in a cache at this replica.
func (n *Node) Len(cache CacheName) int { return len(n.caches[cache]) }

// Keys returns the keys of a cache at this replica in sorted order, so
// module code iterating a cache visits entries deterministically.
func (n *Node) Keys(cache CacheName) []string {
	m := n.caches[cache]
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Applied returns the count of events applied at this replica.
func (n *Node) Applied() uint64 { return n.applied }

// Digest returns an order-insensitive digest of the set of events applied
// at this replica — the succinct per-controller state the validator
// snapshots for state-aware consensus (§IV-C). Replicas that have applied
// the same set of events report equal digests even if cross-origin
// interleaving differed.
func (n *Node) Digest() uint64 { return n.digest }

// applyInOrder delivers a replicated event, holding back out-of-order
// arrivals per origin so replicas observe each origin's updates in the
// order they occurred.
func (n *Node) applyInOrder(ev Event) {
	if n.expected == nil {
		n.expected = make(map[NodeID]uint64)
		n.held = make(map[NodeID][]Event)
	}
	want := n.expected[ev.Origin] + 1
	if ev.Seq != want {
		n.held[ev.Origin] = append(n.held[ev.Origin], ev)
		return
	}
	n.apply(ev, false)
	n.expected[ev.Origin] = ev.Seq
	// Release any held successors.
	for {
		released := false
		held := n.held[ev.Origin]
		for i, h := range held {
			if h.Seq == n.expected[ev.Origin]+1 {
				n.apply(h, false)
				n.expected[ev.Origin] = h.Seq
				n.held[ev.Origin] = append(held[:i], held[i+1:]...)
				released = true
				break
			}
		}
		if !released {
			return
		}
	}
}

func (n *Node) apply(ev Event, local bool) {
	m, ok := n.caches[ev.Cache]
	if !ok {
		m = make(map[string]string)
		n.caches[ev.Cache] = m
	}
	ev.Prev, ev.PrevOK = m[ev.Key]
	switch ev.Op {
	case OpDelete:
		delete(m, ev.Key)
	default:
		m[ev.Key] = ev.Value
	}
	if local {
		if n.expected == nil {
			n.expected = make(map[NodeID]uint64)
			n.held = make(map[NodeID][]Event)
		}
		n.expected[ev.Origin] = ev.Seq
	}
	n.applied++
	n.digest ^= eventDigest(ev)
	for _, l := range n.listeners {
		l(n.id, ev, local)
	}
}

// EventDigest hashes one event; node digests XOR-fold these so the digest
// depends on the set of applied events, not their interleaving. Because
// the fold is XOR, digest^EventDigest(ev) recovers the pre-apply digest.
func EventDigest(ev Event) uint64 {
	return eventDigest(ev)
}

// eventDigest hashes one event; node digests XOR-fold these so the digest
// depends on the set of applied events, not their interleaving.
func eventDigest(ev Event) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%d|%s|%d|%s|%s", ev.Origin, ev.Seq, ev.Cache, ev.Op, ev.Key, ev.Value)
	return h.Sum64()
}
