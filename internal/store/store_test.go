package store

import (
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"github.com/jurysdn/jury/internal/simnet"
)

func newEventualCluster(t *testing.T, n int) (*simnet.Engine, *Cluster, []*Node) {
	t.Helper()
	eng := simnet.NewEngine(1)
	c := NewCluster(eng, DefaultConfig(Eventual))
	var nodes []*Node
	for i := 1; i <= n; i++ {
		nodes = append(nodes, c.AddNode(NodeID(i)))
	}
	return eng, c, nodes
}

func TestEventualLocalApplyImmediate(t *testing.T) {
	_, _, nodes := newEventualCluster(t, 3)
	done := false
	nodes[0].Write(HostDB, OpCreate, "k", "v", func() { done = true })
	if !done {
		t.Fatal("eventual write done callback must fire immediately")
	}
	if v, ok := nodes[0].Get(HostDB, "k"); !ok || v != "v" {
		t.Fatal("local apply missing")
	}
	if _, ok := nodes[1].Get(HostDB, "k"); ok {
		t.Fatal("remote replica applied without delay")
	}
}

func TestEventualConvergence(t *testing.T) {
	eng, _, nodes := newEventualCluster(t, 5)
	for i := 0; i < 50; i++ {
		nodes[i%5].Write(HostDB, OpCreate, fmt.Sprintf("k%d", i), "v", nil)
	}
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	for _, n := range nodes {
		if n.Len(HostDB) != 50 {
			t.Fatalf("node %d has %d entries, want 50", n.ID(), n.Len(HostDB))
		}
	}
	// Digests converge (order-insensitive).
	for _, n := range nodes[1:] {
		if n.Digest() != nodes[0].Digest() {
			t.Fatalf("digest mismatch: %x vs %x", n.Digest(), nodes[0].Digest())
		}
	}
}

func TestEventualPerOriginOrder(t *testing.T) {
	eng, _, nodes := newEventualCluster(t, 2)
	var got []string
	nodes[1].Subscribe(func(_ NodeID, ev Event, local bool) {
		if !local {
			got = append(got, ev.Value)
		}
	})
	for i := 0; i < 20; i++ {
		nodes[0].Write(HostDB, OpUpdate, "k", fmt.Sprintf("v%d", i), nil)
	}
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != fmt.Sprintf("v%d", i) {
			t.Fatalf("out of order at %d: %v", i, got)
		}
	}
	if v, _ := nodes[1].Get(HostDB, "k"); v != "v19" {
		t.Fatalf("final value = %s", v)
	}
}

func TestDeleteRemovesKey(t *testing.T) {
	eng, _, nodes := newEventualCluster(t, 2)
	nodes[0].Write(FlowsDB, OpCreate, "k", "v", nil)
	nodes[0].Write(FlowsDB, OpDelete, "k", "", nil)
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	for _, n := range nodes {
		if _, ok := n.Get(FlowsDB, "k"); ok {
			t.Fatalf("node %d still has deleted key", n.ID())
		}
	}
}

func TestStrongWriteSynchronous(t *testing.T) {
	eng := simnet.NewEngine(1)
	c := NewCluster(eng, DefaultConfig(Strong))
	n1 := c.AddNode(1)
	n2 := c.AddNode(2)
	n3 := c.AddNode(3)
	var doneAt time.Duration
	n1.Write(HostDB, OpCreate, "k", "v", func() { doneAt = eng.Now() })
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	// Commit cost = base + 2 × replication latency = 0.5ms + 2ms.
	want := 2500 * time.Microsecond
	if doneAt != want {
		t.Fatalf("commit at %v, want %v", doneAt, want)
	}
	for _, n := range []*Node{n1, n2, n3} {
		if _, ok := n.Get(HostDB, "k"); !ok {
			t.Fatalf("node %d missing entry after commit", n.ID())
		}
	}
}

func TestStrongWritesSerialize(t *testing.T) {
	eng := simnet.NewEngine(1)
	c := NewCluster(eng, DefaultConfig(Strong))
	n1 := c.AddNode(1)
	c.AddNode(2)
	var times []time.Duration
	for i := 0; i < 3; i++ {
		n1.Write(HostDB, OpCreate, fmt.Sprintf("k%d", i), "v", func() {
			times = append(times, eng.Now())
		})
	}
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	per := 1500 * time.Microsecond // base 0.5ms + 1 replica × 1ms
	for i, at := range times {
		want := time.Duration(i+1) * per
		if at != want {
			t.Fatalf("commit %d at %v, want %v", i, at, want)
		}
	}
}

func TestStrongCommitCostGrowsWithN(t *testing.T) {
	rate := func(n int) float64 {
		eng := simnet.NewEngine(1)
		c := NewCluster(eng, DefaultConfig(Strong))
		var nodes []*Node
		for i := 1; i <= n; i++ {
			nodes = append(nodes, c.AddNode(NodeID(i)))
		}
		count := 0
		for i := 0; i < 100; i++ {
			nodes[0].Write(FlowsDB, OpCreate, fmt.Sprintf("k%d", i), "v", func() { count++ })
		}
		if err := eng.RunUntilIdle(); err != nil {
			t.Fatal(err)
		}
		return float64(count) / eng.Now().Seconds()
	}
	r1, r7 := rate(1), rate(7)
	if r7 >= r1/3 {
		t.Fatalf("strong writes must slow with n: n=1 %.0f/s vs n=7 %.0f/s", r1, r7)
	}
}

func TestFlowBusSerializesFlowsDBOnly(t *testing.T) {
	eng := simnet.NewEngine(1)
	cfg := DefaultConfig(Eventual)
	cfg.FlowBusService = time.Millisecond
	c := NewCluster(eng, cfg)
	n1 := c.AddNode(1)
	c.AddNode(2)
	// Non-FlowsDB writes bypass the bus: done fires immediately.
	immediate := false
	n1.Write(HostDB, OpCreate, "h", "v", func() { immediate = true })
	if !immediate {
		t.Fatal("HostDB write should bypass the flow bus")
	}
	var times []time.Duration
	for i := 0; i < 3; i++ {
		n1.Write(FlowsDB, OpCreate, fmt.Sprintf("k%d", i), "v", func() {
			times = append(times, eng.Now())
		})
	}
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	for i, at := range times {
		want := time.Duration(i+1) * time.Millisecond
		if at != want {
			t.Fatalf("bus commit %d at %v, want %v", i, at, want)
		}
	}
}

func TestFlowBusDisabledAtN1(t *testing.T) {
	eng := simnet.NewEngine(1)
	cfg := DefaultConfig(Eventual)
	cfg.FlowBusService = time.Millisecond
	c := NewCluster(eng, cfg)
	n1 := c.AddNode(1)
	done := false
	n1.Write(FlowsDB, OpCreate, "k", "v", func() { done = true })
	if !done {
		t.Fatal("single-node cluster must not pay the backup bus")
	}
}

func TestListenersSeeLocalAndRemote(t *testing.T) {
	eng, _, nodes := newEventualCluster(t, 2)
	var locals, remotes int
	nodes[0].Subscribe(func(_ NodeID, _ Event, local bool) {
		if local {
			locals++
		} else {
			remotes++
		}
	})
	nodes[0].Write(HostDB, OpCreate, "a", "1", nil)
	nodes[1].Write(HostDB, OpCreate, "b", "2", nil)
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if locals != 1 || remotes != 1 {
		t.Fatalf("locals=%d remotes=%d", locals, remotes)
	}
}

func TestEventTagPropagates(t *testing.T) {
	eng, _, nodes := newEventualCluster(t, 2)
	var gotTag string
	nodes[1].Subscribe(func(_ NodeID, ev Event, _ bool) { gotTag = ev.Tag })
	nodes[0].WriteTagged(FlowsDB, OpCreate, "k", "v", "trigger-42", nil)
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if gotTag != "trigger-42" {
		t.Fatalf("tag = %q", gotTag)
	}
}

func TestRemoveNodeStopsReplication(t *testing.T) {
	eng, c, nodes := newEventualCluster(t, 3)
	c.RemoveNode(3)
	nodes[0].Write(HostDB, OpCreate, "k", "v", nil)
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if _, ok := nodes[2].Get(HostDB, "k"); ok {
		t.Fatal("removed node received replication")
	}
	if c.Size() != 2 {
		t.Fatalf("size = %d", c.Size())
	}
}

func TestReplicationAccounting(t *testing.T) {
	eng, c, nodes := newEventualCluster(t, 3)
	nodes[0].Write(HostDB, OpCreate, "key", "value", nil)
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if c.ReplicationMessages() != 2 {
		t.Fatalf("messages = %d, want 2", c.ReplicationMessages())
	}
	if c.ReplicationBytes() <= 0 {
		t.Fatal("no bytes accounted")
	}
}

func TestDigestOrderInsensitive(t *testing.T) {
	evA := Event{Origin: 1, Seq: 1, Cache: HostDB, Op: OpCreate, Key: "a", Value: "1"}
	evB := Event{Origin: 2, Seq: 1, Cache: HostDB, Op: OpCreate, Key: "b", Value: "2"}
	d1 := EventDigest(evA) ^ EventDigest(evB)
	d2 := EventDigest(evB) ^ EventDigest(evA)
	if d1 != d2 {
		t.Fatal("XOR fold must be order-insensitive")
	}
}

func TestOpStrings(t *testing.T) {
	tests := []struct {
		op   Op
		want string
	}{
		{OpCreate, "create"},
		{OpUpdate, "update"},
		{OpDelete, "delete"},
	}
	for _, tt := range tests {
		if tt.op.String() != tt.want {
			t.Fatalf("%v != %s", tt.op, tt.want)
		}
		back, err := ParseOp(tt.want)
		if err != nil || back != tt.op {
			t.Fatalf("ParseOp(%s) = %v, %v", tt.want, back, err)
		}
	}
	if _, err := ParseOp("truncate"); err == nil {
		t.Fatal("expected parse error")
	}
}

func TestConsistencyStrings(t *testing.T) {
	if Eventual.String() != "eventual" || Strong.String() != "strong" {
		t.Fatal("consistency names wrong")
	}
}

func TestEventualDigestsConvergeProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		eng := simnet.NewEngine(11)
		c := NewCluster(eng, DefaultConfig(Eventual))
		var nodes []*Node
		for i := 1; i <= 3; i++ {
			nodes = append(nodes, c.AddNode(NodeID(i)))
		}
		for i, op := range ops {
			n := nodes[int(op)%3]
			switch (op / 3) % 3 {
			case 0:
				n.Write(HostDB, OpCreate, fmt.Sprintf("k%d", i%7), "v", nil)
			case 1:
				n.Write(HostDB, OpUpdate, fmt.Sprintf("k%d", i%7), fmt.Sprintf("v%d", i), nil)
			case 2:
				n.Write(HostDB, OpDelete, fmt.Sprintf("k%d", i%7), "", nil)
			}
		}
		if err := eng.RunUntilIdle(); err != nil {
			return false
		}
		// Digests converge (same applied set). Map contents may differ
		// when independent origins race on one key: replicas apply in
		// arrival order (last-arrival-wins, like an unversioned
		// Hazelcast map), which is exactly the inconsistency JURY's
		// state-aware consensus has to tolerate.
		for _, n := range nodes[1:] {
			if n.Digest() != nodes[0].Digest() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCrashedOriginDoesNotCommitStrongWrite(t *testing.T) {
	eng := simnet.NewEngine(1)
	c := NewCluster(eng, DefaultConfig(Strong))
	n1 := c.AddNode(1)
	n2 := c.AddNode(2)
	fired := false
	n1.Write(HostDB, OpCreate, "k", "v", func() { fired = true })
	c.RemoveNode(1) // crash before commit completes
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("crashed origin's write committed")
	}
	if _, ok := n2.Get(HostDB, "k"); ok {
		t.Fatal("replica applied write from crashed origin")
	}
}
