package simnet

import (
	"time"
)

// Server models a work-conserving service station with a fixed number of
// parallel workers, a bounded ingress queue, and a per-job service time
// supplied by the caller. It is the queueing core of the controller
// pipeline model: the ONOS profile is a fast Server, the ODL profile a slow
// one, and Fig. 4e's collapse emerges from the bounded queue plus
// backlog-dependent service inflation.
type Server struct {
	eng     *Engine
	workers int
	busy    int
	queue   *Queue

	// InflateAt is the backlog size beyond which service times inflate
	// linearly (modeling memory bloat / GC pressure in an overwhelmed
	// JVM controller, §VII-B1). Zero disables inflation.
	InflateAt int
	// InflateSlope is the added service-time fraction per queued job
	// beyond InflateAt (e.g. 0.01 adds 1% per excess job).
	InflateSlope float64

	completed int64
}

type serverJob struct {
	service func() time.Duration
	done    func()
}

// NewServer creates a server with the given parallelism and ingress queue
// capacity (<=0 for unbounded).
func NewServer(eng *Engine, workers, queueCap int) *Server {
	if workers < 1 {
		workers = 1
	}
	return &Server{eng: eng, workers: workers, queue: NewQueue(queueCap)}
}

// Submit offers a job with the given base service time; done runs when the
// job completes. Submit reports false if the ingress queue rejected the job.
func (s *Server) Submit(service time.Duration, done func()) bool {
	return s.SubmitFunc(func() time.Duration { return service }, done)
}

// SubmitFunc offers a job whose service time is evaluated when the job
// starts (not when it is queued), so state-dependent costs like GC-pause
// stalls apply at execution time.
func (s *Server) SubmitFunc(service func() time.Duration, done func()) bool {
	job := &serverJob{service: service, done: done}
	if s.busy < s.workers {
		s.start(job)
		return true
	}
	return s.queue.Offer(job)
}

// Backlog returns the number of jobs waiting (not in service).
func (s *Server) Backlog() int { return s.queue.Len() }

// Busy returns the number of jobs in service.
func (s *Server) Busy() int { return s.busy }

// Completed returns the number of jobs finished.
func (s *Server) Completed() int64 { return s.completed }

// Drops returns the number of jobs rejected by the ingress queue.
func (s *Server) Drops() int64 { return s.queue.Drops() }

// Saturated reports whether all workers are busy and the queue is nonempty.
func (s *Server) Saturated() bool { return s.busy == s.workers && s.queue.Len() > 0 }

func (s *Server) start(job *serverJob) {
	s.busy++
	service := job.service()
	if s.InflateAt > 0 && s.queue.Len() > s.InflateAt {
		excess := float64(s.queue.Len() - s.InflateAt)
		service += time.Duration(float64(service) * s.InflateSlope * excess)
	}
	s.eng.Schedule(service, func() {
		s.busy--
		s.completed++
		if job.done != nil {
			job.done()
		}
		if next, ok := s.queue.Poll(); ok {
			if nj, ok := next.(*serverJob); ok {
				s.start(nj)
			}
		}
	})
}
