package simnet

import (
	"testing"
	"time"
)

func TestEngineOrdersByTime(t *testing.T) {
	eng := NewEngine(1)
	var got []int
	eng.Schedule(30*time.Millisecond, func() { got = append(got, 3) })
	eng.Schedule(10*time.Millisecond, func() { got = append(got, 1) })
	eng.Schedule(20*time.Millisecond, func() { got = append(got, 2) })
	if err := eng.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3}
	for i, v := range want {
		if got[i] != v {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestEngineFIFOAtSameTime(t *testing.T) {
	eng := NewEngine(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		eng.Schedule(5*time.Millisecond, func() { got = append(got, i) })
	}
	if err := eng.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("same-time events not FIFO: %v", got)
		}
	}
}

func TestEngineClockAdvances(t *testing.T) {
	eng := NewEngine(1)
	var at time.Duration
	eng.Schedule(42*time.Millisecond, func() { at = eng.Now() })
	if err := eng.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if at != 42*time.Millisecond {
		t.Fatalf("event time = %v, want 42ms", at)
	}
	if eng.Now() != time.Second {
		t.Fatalf("clock after run = %v, want horizon 1s", eng.Now())
	}
}

func TestEngineNegativeDelayFiresNow(t *testing.T) {
	eng := NewEngine(1)
	fired := false
	eng.Schedule(10*time.Millisecond, func() {
		eng.Schedule(-5*time.Millisecond, func() { fired = true })
	})
	if err := eng.Run(20 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("negative-delay event did not fire")
	}
}

func TestEngineCancel(t *testing.T) {
	eng := NewEngine(1)
	fired := false
	ev := eng.Schedule(10*time.Millisecond, func() { fired = true })
	ev.Cancel()
	if err := eng.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("cancelled event fired")
	}
	if !ev.Cancelled() {
		t.Fatal("Cancelled() = false after Cancel")
	}
}

func TestEngineHorizonStopsEarly(t *testing.T) {
	eng := NewEngine(1)
	fired := false
	eng.Schedule(2*time.Second, func() { fired = true })
	if err := eng.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("event beyond horizon fired")
	}
	if eng.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", eng.Pending())
	}
	if err := eng.Run(3 * time.Second); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("event not fired after extending horizon")
	}
}

func TestEngineStop(t *testing.T) {
	eng := NewEngine(1)
	count := 0
	for i := 1; i <= 5; i++ {
		eng.Schedule(time.Duration(i)*time.Millisecond, func() {
			count++
			if count == 2 {
				eng.Stop()
			}
		})
	}
	err := eng.Run(time.Second)
	if err != ErrStopped {
		t.Fatalf("err = %v, want ErrStopped", err)
	}
	if count != 2 {
		t.Fatalf("processed %d events, want 2", count)
	}
}

func TestEngineMaxEvents(t *testing.T) {
	eng := NewEngine(1)
	eng.MaxEvents = 10
	var tick func()
	tick = func() { eng.Schedule(time.Microsecond, tick) }
	tick()
	if err := eng.Run(time.Hour); err == nil {
		t.Fatal("expected MaxEvents error")
	}
}

func TestEngineRunUntilIdle(t *testing.T) {
	eng := NewEngine(1)
	count := 0
	eng.Schedule(time.Hour, func() { count++ })
	eng.Schedule(time.Minute, func() { count++ })
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if count != 2 {
		t.Fatalf("count = %d, want 2", count)
	}
	if eng.Now() != time.Hour {
		t.Fatalf("clock = %v, want 1h", eng.Now())
	}
}

func TestEngineDeterminism(t *testing.T) {
	run := func() []time.Duration {
		eng := NewEngine(99)
		var times []time.Duration
		var tick func()
		n := 0
		tick = func() {
			times = append(times, eng.Now())
			n++
			if n < 50 {
				eng.Schedule(time.Duration(eng.Rand().Intn(1000))*time.Microsecond, tick)
			}
		}
		eng.Schedule(0, tick)
		if err := eng.RunUntilIdle(); err != nil {
			t.Fatal(err)
		}
		return times
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestLinkDeliversInOrder(t *testing.T) {
	eng := NewEngine(7)
	var got []int
	link := NewLink(eng, time.Millisecond, 0, func(msg any, _ int) {
		if v, ok := msg.(int); ok {
			got = append(got, v)
		}
	})
	link.Jitter = 500 * time.Microsecond
	for i := 0; i < 100; i++ {
		link.Send(i, 100)
	}
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 100 {
		t.Fatalf("delivered %d, want 100", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("out of order at %d: %v", i, got[:i+1])
		}
	}
}

func TestLinkBandwidthSerialization(t *testing.T) {
	eng := NewEngine(1)
	var arrivals []time.Duration
	link := NewLink(eng, 0, 1000 /* 1KB/s */, func(any, int) {
		arrivals = append(arrivals, eng.Now())
	})
	link.Send("a", 500) // 0.5s serialization
	link.Send("b", 500) // queued behind a
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if arrivals[0] != 500*time.Millisecond {
		t.Fatalf("first arrival = %v, want 500ms", arrivals[0])
	}
	if arrivals[1] != time.Second {
		t.Fatalf("second arrival = %v, want 1s", arrivals[1])
	}
}

func TestLinkDownDrops(t *testing.T) {
	eng := NewEngine(1)
	delivered := 0
	link := NewLink(eng, time.Millisecond, 0, func(any, int) { delivered++ })
	link.Send("a", 10)
	link.SetDown(true)
	link.Send("b", 10)
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if delivered != 0 {
		t.Fatalf("delivered %d, want 0 (in-flight dropped on down link)", delivered)
	}
	link.SetDown(false)
	link.Send("c", 10)
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if delivered != 1 {
		t.Fatalf("delivered %d after restore, want 1", delivered)
	}
}

func TestLinkCounters(t *testing.T) {
	eng := NewEngine(1)
	link := NewLink(eng, 0, 0, func(any, int) {})
	link.Send("a", 100)
	link.Send("b", 50)
	if link.BytesSent() != 150 {
		t.Fatalf("bytes = %d, want 150", link.BytesSent())
	}
	if link.MessagesSent() != 2 {
		t.Fatalf("messages = %d, want 2", link.MessagesSent())
	}
}

func TestQueueBounds(t *testing.T) {
	q := NewQueue(2)
	if !q.Offer(1) || !q.Offer(2) {
		t.Fatal("offers under capacity rejected")
	}
	if q.Offer(3) {
		t.Fatal("offer over capacity accepted")
	}
	if q.Drops() != 1 {
		t.Fatalf("drops = %d, want 1", q.Drops())
	}
	v, ok := q.Poll()
	if !ok || v != 1 {
		t.Fatalf("poll = %v,%v want 1,true", v, ok)
	}
	if q.Len() != 1 {
		t.Fatalf("len = %d, want 1", q.Len())
	}
}

func TestQueueUnbounded(t *testing.T) {
	q := NewQueue(0)
	for i := 0; i < 10000; i++ {
		if !q.Offer(i) {
			t.Fatal("unbounded queue rejected offer")
		}
	}
	if q.Len() != 10000 {
		t.Fatalf("len = %d", q.Len())
	}
}

func TestServerParallelism(t *testing.T) {
	eng := NewEngine(1)
	srv := NewServer(eng, 2, 0)
	var done []time.Duration
	for i := 0; i < 4; i++ {
		srv.Submit(100*time.Millisecond, func() { done = append(done, eng.Now()) })
	}
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	// 2 workers: jobs finish at 100,100,200,200ms.
	want := []time.Duration{100 * time.Millisecond, 100 * time.Millisecond, 200 * time.Millisecond, 200 * time.Millisecond}
	for i, w := range want {
		if done[i] != w {
			t.Fatalf("completion %d = %v, want %v (all: %v)", i, done[i], w, done)
		}
	}
	if srv.Completed() != 4 {
		t.Fatalf("completed = %d", srv.Completed())
	}
}

func TestServerQueueRejects(t *testing.T) {
	eng := NewEngine(1)
	srv := NewServer(eng, 1, 1)
	ok1 := srv.Submit(time.Millisecond, nil) // in service
	ok2 := srv.Submit(time.Millisecond, nil) // queued
	ok3 := srv.Submit(time.Millisecond, nil) // rejected
	if !ok1 || !ok2 || ok3 {
		t.Fatalf("submits = %v,%v,%v want true,true,false", ok1, ok2, ok3)
	}
	if srv.Drops() != 1 {
		t.Fatalf("drops = %d", srv.Drops())
	}
}

func TestServerInflation(t *testing.T) {
	eng := NewEngine(1)
	srv := NewServer(eng, 1, 0)
	srv.InflateAt = 1
	srv.InflateSlope = 1.0 // +100% per excess queued job
	var last time.Duration
	for i := 0; i < 4; i++ {
		srv.Submit(10*time.Millisecond, func() { last = eng.Now() })
	}
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	// Without inflation: 40ms. With backlog-dependent inflation it must
	// take strictly longer.
	if last <= 40*time.Millisecond {
		t.Fatalf("no inflation observed: finished at %v", last)
	}
}

func TestServerSaturated(t *testing.T) {
	eng := NewEngine(1)
	srv := NewServer(eng, 1, 10)
	srv.Submit(time.Second, nil)
	if srv.Saturated() {
		t.Fatal("saturated with empty queue")
	}
	srv.Submit(time.Second, nil)
	if !srv.Saturated() {
		t.Fatal("not saturated with busy worker + backlog")
	}
}
