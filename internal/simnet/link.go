package simnet

import (
	"time"
)

// Link models a reliable, in-order, point-to-point channel (a TCP
// connection in the modeled deployment). Messages experience a propagation
// latency plus a serialization delay proportional to their size, and are
// delivered strictly in send order. Byte counters support the network
// overhead accounting of §VII-B2.
type Link struct {
	eng *Engine
	// Latency is the one-way propagation delay.
	Latency time.Duration
	// Bandwidth in bytes per second; zero means infinite.
	Bandwidth float64
	// Jitter adds a uniformly distributed extra delay in [0, Jitter).
	Jitter time.Duration

	deliver func(msg any, size int)

	// busyUntil tracks when the sender side finishes serializing the
	// previous message, enforcing FIFO ordering and bandwidth limits.
	busyUntil time.Duration
	// lastArrival enforces in-order delivery even with jitter.
	lastArrival time.Duration

	bytesSent int64
	msgsSent  int64
	down      bool
}

// NewLink creates a link delivering messages to deliver. The callback runs
// as an engine event at the arrival time.
func NewLink(eng *Engine, latency time.Duration, bandwidth float64, deliver func(msg any, size int)) *Link {
	return &Link{eng: eng, Latency: latency, Bandwidth: bandwidth, deliver: deliver}
}

// Send enqueues msg of the given size in bytes. Sends on a down link are
// silently dropped (the peer observes an omission, as with a failed TCP
// connection before the application notices).
func (l *Link) Send(msg any, size int) {
	if l.down {
		return
	}
	now := l.eng.Now()
	start := now
	if l.busyUntil > start {
		start = l.busyUntil
	}
	var ser time.Duration
	if l.Bandwidth > 0 && size > 0 {
		ser = time.Duration(float64(size) / l.Bandwidth * float64(time.Second))
	}
	l.busyUntil = start + ser
	arrival := l.busyUntil + l.Latency
	if l.Jitter > 0 {
		arrival += time.Duration(l.eng.Rand().Int63n(int64(l.Jitter)))
	}
	if arrival < l.lastArrival {
		arrival = l.lastArrival
	}
	l.lastArrival = arrival
	l.bytesSent += int64(size)
	l.msgsSent++
	l.eng.At(arrival, func() {
		if !l.down {
			l.deliver(msg, size)
		}
	})
}

// SetDown marks the link as failed (true) or restored (false). Messages in
// flight when the link goes down are dropped at delivery time.
func (l *Link) SetDown(down bool) { l.down = down }

// Down reports whether the link is failed.
func (l *Link) Down() bool { return l.down }

// BytesSent returns the number of bytes accepted for transmission.
func (l *Link) BytesSent() int64 { return l.bytesSent }

// MessagesSent returns the number of messages accepted for transmission.
func (l *Link) MessagesSent() int64 { return l.msgsSent }

// Queue models a bounded FIFO ingress queue in front of a server (e.g. a
// controller's socket buffer). When the queue is full, Offer reports false,
// modeling TCP zero-window back-pressure.
type Queue struct {
	items []any
	cap   int
	drops int64
}

// NewQueue returns a queue with the given capacity; capacity <= 0 means
// unbounded.
func NewQueue(capacity int) *Queue {
	return &Queue{cap: capacity}
}

// Offer appends item, reporting false (and counting a drop) when full.
func (q *Queue) Offer(item any) bool {
	if q.cap > 0 && len(q.items) >= q.cap {
		q.drops++
		return false
	}
	q.items = append(q.items, item)
	return true
}

// Poll removes and returns the head, or (nil, false) when empty.
func (q *Queue) Poll() (any, bool) {
	if len(q.items) == 0 {
		return nil, false
	}
	item := q.items[0]
	q.items[0] = nil
	q.items = q.items[1:]
	return item, true
}

// Len returns the number of queued items.
func (q *Queue) Len() int { return len(q.items) }

// Drops returns the number of rejected offers.
func (q *Queue) Drops() int64 { return q.drops }
