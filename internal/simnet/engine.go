// Package simnet provides a deterministic discrete-event simulation engine
// used as the substrate for the JURY reproduction. All controllers, switches,
// stores and JURY components run as event handlers scheduled on a virtual
// clock, which makes detection-time distributions and throughput curves
// reproducible and fast to regenerate.
package simnet

import (
	"container/heap"
	"errors"
	"fmt"
	"math/rand"
	"time"
)

// ErrStopped is returned by Run when the engine was stopped explicitly
// before the horizon was reached.
var ErrStopped = errors.New("simnet: engine stopped")

// Event is a scheduled callback. Events with equal times fire in scheduling
// order, which keeps runs deterministic.
type Event struct {
	at   time.Duration
	seq  uint64
	fn   func()
	dead bool
	idx  int
}

// Cancel prevents a pending event from firing. Cancelling an already-fired
// or already-cancelled event is a no-op.
func (e *Event) Cancel() {
	if e != nil {
		e.dead = true
	}
}

// Cancelled reports whether the event has been cancelled.
func (e *Event) Cancelled() bool { return e == nil || e.dead }

// At returns the virtual time the event is scheduled for.
func (e *Event) At() time.Duration { return e.at }

// Engine is a single-threaded discrete-event simulator. It is not safe for
// concurrent use; all model code runs inside event callbacks on one
// goroutine.
type Engine struct {
	now     time.Duration
	seq     uint64
	queue   eventQueue
	rng     *rand.Rand
	stopped bool
	// processed counts events executed, useful for runaway detection.
	processed uint64
	// MaxEvents aborts the run when exceeded (0 = unlimited).
	MaxEvents uint64
}

// NewEngine creates an engine with a deterministic RNG seeded by seed.
func NewEngine(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Rand returns the engine's deterministic random source.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Processed returns the number of events executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Schedule runs fn after delay of virtual time. A negative delay is treated
// as zero. The returned Event may be cancelled.
func (e *Engine) Schedule(delay time.Duration, fn func()) *Event {
	if delay < 0 {
		delay = 0
	}
	return e.At(e.now+delay, fn)
}

// At runs fn at absolute virtual time t. Times in the past fire "now".
func (e *Engine) At(t time.Duration, fn func()) *Event {
	if t < e.now {
		t = e.now
	}
	ev := &Event{at: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// Stop halts the run after the current event completes.
func (e *Engine) Stop() { e.stopped = true }

// Step executes the next pending event, if any, and reports whether one ran.
func (e *Engine) Step() bool {
	for e.queue.Len() > 0 {
		ev, ok := heap.Pop(&e.queue).(*Event)
		if !ok {
			return false
		}
		if ev.dead {
			continue
		}
		e.now = ev.at
		e.processed++
		ev.fn()
		return true
	}
	return false
}

// Run executes events until the horizon is reached, the queue drains, or
// Stop is called. The clock is advanced to horizon when the queue drains
// early so measurements over a fixed window remain well-defined.
func (e *Engine) Run(horizon time.Duration) error {
	e.stopped = false
	for e.queue.Len() > 0 {
		if e.stopped {
			return ErrStopped
		}
		if e.MaxEvents > 0 && e.processed >= e.MaxEvents {
			return fmt.Errorf("simnet: exceeded %d events at t=%v", e.MaxEvents, e.now)
		}
		next := e.queue[0]
		if next.dead {
			// Discard cancelled events here rather than letting Step skip
			// them: Step would pop past the dead entry and execute the
			// next live event even when it lies beyond the horizon,
			// overshooting the clock (a decided trigger's cancelled timer
			// at t≤horizon must not pull its grace event at t+grace into
			// this run).
			heap.Pop(&e.queue)
			continue
		}
		if next.at > horizon {
			break
		}
		e.Step()
	}
	if e.now < horizon {
		e.now = horizon
	}
	return nil
}

// RunUntilIdle executes all pending events regardless of time.
func (e *Engine) RunUntilIdle() error {
	e.stopped = false
	for e.Step() {
		if e.stopped {
			return ErrStopped
		}
		if e.MaxEvents > 0 && e.processed >= e.MaxEvents {
			return fmt.Errorf("simnet: exceeded %d events at t=%v", e.MaxEvents, e.now)
		}
	}
	return nil
}

// Pending reports the number of queued (possibly cancelled) events.
func (e *Engine) Pending() int { return e.queue.Len() }

// eventQueue is a min-heap ordered by (time, seq).
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].idx = i
	q[j].idx = j
}

func (q *eventQueue) Push(x any) {
	ev, ok := x.(*Event)
	if !ok {
		return
	}
	ev.idx = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}
