package faults

import (
	"math/rand"
	"testing"
	"time"

	"github.com/jurysdn/jury/internal/cluster"
	"github.com/jurysdn/jury/internal/controller"
	"github.com/jurysdn/jury/internal/dataplane"
	"github.com/jurysdn/jury/internal/openflow"
	"github.com/jurysdn/jury/internal/simnet"
	"github.com/jurysdn/jury/internal/store"
	"github.com/jurysdn/jury/internal/topo"
	"github.com/jurysdn/jury/internal/trigger"
)

func newCtrl(t *testing.T) (*simnet.Engine, *controller.Controller, *[]controller.EgressWrite) {
	t.Helper()
	eng := simnet.NewEngine(1)
	sc := store.NewCluster(eng, store.DefaultConfig(store.Eventual))
	members := cluster.NewMembership(cluster.AnyControllerOneMaster,
		[]store.NodeID{1}, []topo.DPID{1})
	p := controller.ONOSProfile()
	p.PausePeriod = 0
	p.LLDPPeriod = 0
	c := controller.New(eng, 1, p, sc.AddNode(1), members)
	var sent []controller.EgressWrite
	c.AddEgressHook(func(_ *controller.Controller, w *controller.EgressWrite) controller.HookAction {
		sent = append(sent, *w)
		return controller.Proceed
	})
	c.ConnectSwitch(1, func(openflow.Message) {})
	return eng, c, &sent
}

func TestScenariosCatalogComplete(t *testing.T) {
	scenarios := Scenarios()
	if len(scenarios) != 14 {
		t.Fatalf("catalog = %d entries, want 14", len(scenarios))
	}
	classes := map[Class]int{}
	real := 0
	for _, s := range scenarios {
		if s.Description == "" {
			t.Fatalf("%s has no description", s.Kind)
		}
		classes[s.Class]++
		if s.Real {
			real++
		}
	}
	if classes[ClassT1] != 5 || classes[ClassT2] != 4 || classes[ClassT3] != 2 {
		t.Fatalf("class counts = %v", classes)
	}
	if real != 8 {
		t.Fatalf("real faults = %d, want 8", real)
	}
}

func TestDatabaseLockingSuppressesSwitchDB(t *testing.T) {
	eng, c, _ := newCtrl(t)
	f := InjectDatabaseLocking(c)
	c.WriteCache(store.SwitchDB, store.OpCreate, "k", "v", nil, nil)
	c.WriteCache(store.HostDB, store.OpCreate, "h", "v", nil, nil)
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Node().Get(store.SwitchDB, "k"); ok {
		t.Fatal("SwitchDB write not suppressed")
	}
	if _, ok := c.Node().Get(store.HostDB, "h"); !ok {
		t.Fatal("unrelated write suppressed")
	}
	if f.Injections() != 1 {
		t.Fatalf("injections = %d", f.Injections())
	}
	f.Deactivate()
	c.WriteCache(store.SwitchDB, store.OpCreate, "k2", "v", nil, nil)
	if _, ok := c.Node().Get(store.SwitchDB, "k2"); !ok {
		t.Fatal("deactivated fault still suppresses")
	}
}

func TestLinkFailureFlipsValue(t *testing.T) {
	eng, c, _ := newCtrl(t)
	f := InjectLinkFailure(c)
	ctx := &trigger.Context{ID: "τ", Kind: trigger.External, Primary: 1}
	c.WriteCache(store.LinksDB, store.OpCreate, "1:1->2:2", "up", ctx, nil)
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if v, _ := c.Node().Get(store.LinksDB, "1:1->2:2"); v != "down" {
		t.Fatalf("value = %q, want flipped to down", v)
	}
	if f.Injections() != 1 {
		t.Fatal("injection not counted")
	}
}

func TestFlowModDropEveryNth(t *testing.T) {
	eng, c, sent := newCtrl(t)
	InjectFlowModDrop(c, 2) // drop every 2nd
	for i := 0; i < 4; i++ {
		rule := controller.FlowRule{DPID: 1, Match: openflow.ExactDst(topo.HostMAC(i + 1)), Priority: 10,
			Actions: []openflow.Action{openflow.Output(1)}, Command: uint16(openflow.FlowAdd), Origin: 1}
		c.Node().Write(store.FlowsDB, store.OpCreate, rule.Key(), rule.Encode(), nil)
	}
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	flowMods := 0
	for _, w := range *sent {
		if _, ok := w.Msg.(*openflow.FlowMod); ok {
			flowMods++
		}
	}
	if flowMods != 2 {
		t.Fatalf("flow mods sent = %d, want 2 of 4", flowMods)
	}
}

func TestUndesirableFlowModRewritesActions(t *testing.T) {
	eng, c, sent := newCtrl(t)
	InjectUndesirableFlowMod(c)
	rule := controller.FlowRule{DPID: 1, Match: openflow.ExactDst(topo.HostMAC(1)), Priority: 10,
		Actions: []openflow.Action{openflow.Output(1)}, Command: uint16(openflow.FlowAdd), Origin: 1}
	c.Node().Write(store.FlowsDB, store.OpCreate, rule.Key(), rule.Encode(), nil)
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	for _, w := range *sent {
		if fm, ok := w.Msg.(*openflow.FlowMod); ok {
			if len(fm.Actions) != 0 {
				t.Fatalf("actions = %v, want drop-all", fm.Actions)
			}
			return
		}
	}
	t.Fatal("no FLOW_MOD observed")
}

func TestIncorrectFlowModFire(t *testing.T) {
	eng, c, _ := newCtrl(t)
	sw := dataplane.NewSwitch(eng, 1)
	sw.SetPorts([]uint16{1})
	f := InjectIncorrectFlowMod(c, sw)
	if !sw.AcceptInvalidMatch {
		t.Fatal("switch not made permissive")
	}
	f.Fire()
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if f.Injections() != 1 {
		t.Fatal("fire not counted")
	}
	keys := c.Node().Keys(store.FlowsDB)
	if len(keys) != 1 {
		t.Fatalf("FlowsDB = %d", len(keys))
	}
	v, _ := c.Node().Get(store.FlowsDB, keys[0])
	rule, err := controller.DecodeFlowRule(v)
	if err != nil {
		t.Fatal(err)
	}
	if rule.Match.HierarchyValid() {
		t.Fatal("installed rule should violate the match hierarchy")
	}
}

func TestFlowDeletionFailure(t *testing.T) {
	eng, c, _ := newCtrl(t)
	InjectFlowDeletionFailure(c)
	rule := controller.FlowRule{DPID: 1, Match: openflow.MatchAll(), Priority: 1}
	c.Node().Write(store.FlowsDB, store.OpCreate, rule.Key(), rule.Encode(), nil)
	ctx := &trigger.Context{ID: "rest", Kind: trigger.External, Primary: 1}
	c.WriteCache(store.FlowsDB, store.OpDelete, rule.Key(), "", ctx, nil)
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if c.Node().Len(store.FlowsDB) != 1 {
		t.Fatal("delete was not dropped")
	}
}

func TestLinkDetectionInconsistentDropsSome(t *testing.T) {
	eng, c, _ := newCtrl(t)
	rng := rand.New(rand.NewSource(5))
	f := InjectLinkDetectionInconsistent(c, rng, 50)
	for i := 0; i < 100; i++ {
		c.WriteCache(store.LinksDB, store.OpUpdate, "k", "up", nil, nil)
	}
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if f.Injections() == 0 || f.Injections() == 100 {
		t.Fatalf("drops = %d, want some but not all", f.Injections())
	}
}

func TestCrashFault(t *testing.T) {
	_, c, _ := newCtrl(t)
	f := InjectCrash(c)
	if c.Crashed() {
		t.Fatal("crashed before fire")
	}
	f.Fire()
	if !c.Crashed() {
		t.Fatal("fire did not crash")
	}
}

func TestTimingDelayFault(t *testing.T) {
	eng, c, _ := newCtrl(t)
	InjectTimingDelay(c, 30*time.Millisecond, 0)
	var at time.Duration
	c.OnProcessed = func(topo.DPID, openflow.Message, *trigger.Context) { at = eng.Now() }
	c.HandleSouthbound(1, &openflow.Hello{}, &trigger.Context{ID: "τ", Primary: 1})
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if at < 30*time.Millisecond {
		t.Fatalf("processed at %v", at)
	}
}

func TestByzantineCorruption(t *testing.T) {
	eng, c, _ := newCtrl(t)
	rng := rand.New(rand.NewSource(5))
	f := InjectByzantineCorruption(c, rng, 100)
	c.WriteCache(store.HostDB, store.OpCreate, "k", "clean", nil, nil)
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if v, _ := c.Node().Get(store.HostDB, "k"); v == "clean" {
		t.Fatal("value not corrupted at 100%")
	}
	if f.Injections() != 1 {
		t.Fatal("not counted")
	}
}

func TestPendingAddFault(t *testing.T) {
	eng, c, _ := newCtrl(t)
	sw := dataplane.NewSwitch(eng, 1)
	InjectPendingAdd(c, sw)
	if !sw.HoldPendingAdd {
		t.Fatal("switch flag not set")
	}
}

func TestMasterElectionOverride(t *testing.T) {
	_, c, _ := newCtrl(t)
	f := InjectMasterElection(c)
	if c.LivenessIDOverride != store.NodeID(-1) {
		t.Fatal("override not set")
	}
	f.Deactivate()
	f.Fire()
	if c.LivenessIDOverride != 0 {
		t.Fatal("deactivated fault did not clear override")
	}
}

func TestFaultStringAndActivation(t *testing.T) {
	_, c, _ := newCtrl(t)
	f := InjectDatabaseLocking(c)
	if f.String() == "" {
		t.Fatal("empty description")
	}
	f.Deactivate()
	if f.Active() {
		t.Fatal("still active")
	}
	f.Activate()
	if !f.Active() {
		t.Fatal("not reactivated")
	}
}
