// Package faults implements the fault catalog of the paper: the four real
// controller faults of §III-B, the three synthetic faults of §VII-A1, the
// four appendix faults, and generic crash / omission / timing / byzantine
// failures. Faults are injected through the controller's cache-write and
// egress hook seams, exactly where the paper's bugs manifest, so JURY
// validates the faulty behaviour instead of masking it.
package faults

import (
	"fmt"
	"time"

	"github.com/jurysdn/jury/internal/controller"
	"github.com/jurysdn/jury/internal/dataplane"
	"github.com/jurysdn/jury/internal/openflow"
	"github.com/jurysdn/jury/internal/store"
	"github.com/jurysdn/jury/internal/topo"
)

// Kind identifies a fault scenario.
type Kind string

// The fault catalog.
const (
	// Real faults demonstrated in §III-B.
	ONOSDatabaseLocking Kind = "onos-database-locking"
	ONOSMasterElection  Kind = "onos-master-election"
	ODLFlowModDrop      Kind = "odl-flowmod-drop"
	ODLIncorrectFlowMod Kind = "odl-incorrect-flowmod"

	// Synthetic faults of §VII-A1.
	LinkFailure           Kind = "link-failure"
	UndesirableFlowMod    Kind = "undesirable-flowmod"
	FaultyProactiveAction Kind = "faulty-proactive-action"

	// Appendix faults.
	FlowDeletionFailure       Kind = "flow-deletion-failure"
	LinkDetectionInconsistent Kind = "link-detection-inconsistent"
	FlowInstantiationFailure  Kind = "flow-instantiation-failure"
	PendingAdd                Kind = "pending-add"

	// Generic distributed-system failures (§III-B preamble).
	Crash               Kind = "crash"
	TimingDelay         Kind = "timing-delay"
	ByzantineCorruption Kind = "byzantine-corruption"
)

// Class is the paper's fault taxonomy (Table 1).
type Class string

// Fault classes.
const (
	ClassT1     Class = "T1" // reactive: incorrect cache and/or network writes
	ClassT2     Class = "T2" // proactive: cache and network inconsistent
	ClassT3     Class = "T3" // proactive: cache and network consistent but wrong
	ClassCrash  Class = "crash"
	ClassTiming Class = "timing"
	ClassByz    Class = "byzantine"
)

// Scenario describes one catalog entry.
type Scenario struct {
	Kind        Kind
	Class       Class
	Real        bool // documented in a real controller vs synthetic
	Description string
}

// Scenarios returns the full catalog.
func Scenarios() []Scenario {
	return []Scenario{
		{ONOSDatabaseLocking, ClassT1, true, "clustered ONOS rejects a switch connect with a 'failed to obtain lock' error; the SwitchDB write is omitted"},
		{ONOSMasterElection, ClassT1, true, "after the liveness master reboots with a lower ID, neither governor tracks a cross-governed link's liveness"},
		{ODLFlowModDrop, ClassT2, true, "FLOW_MODs written to MD-SAL are sporadically lost before reaching the network"},
		{ODLIncorrectFlowMod, ClassT3, true, "the switch silently accepts a FLOW_MOD whose match violates the OpenFlow 1.0 field hierarchy"},
		{LinkFailure, ClassT1, false, "an LLDP trigger is answered with an incorrect LinksDB update disabling a critical link"},
		{UndesirableFlowMod, ClassT2, false, "the cache holds the correct rule but the emitted FLOW_MOD drops all packets"},
		{FaultyProactiveAction, ClassT3, false, "an administrator/application consistently writes a bad LinksDB entry bringing a link down"},
		{FlowDeletionFailure, ClassT1, true, "a REST-initiated flow deletion is silently dropped by the controller"},
		{LinkDetectionInconsistent, ClassT1, true, "threading conflicts make link detection non-deterministic across runs"},
		{FlowInstantiationFailure, ClassT2, true, "restconf reports success but no FLOW_MOD ever reaches the switch"},
		{PendingAdd, ClassT2, true, "flow rules stay in PENDING_ADD because switch and store disagree"},
		{Crash, ClassCrash, false, "fail-stop of a controller node; reported as response omissions"},
		{TimingDelay, ClassTiming, false, "a slow replica violating timing expectations"},
		{ByzantineCorruption, ClassByz, false, "random corruption of cache writes"},
	}
}

// Fault is an armed fault instance.
type Fault struct {
	Kind        Kind
	Target      *controller.Controller
	description string
	active      bool
	injections  int

	// fire performs the proactive action for T2/T3 scenarios (nil for
	// reactive faults, which the workload triggers).
	fire func()
}

// Active reports whether the fault currently manifests.
func (f *Fault) Active() bool { return f.active }

// Activate (re-)enables the fault.
func (f *Fault) Activate() { f.active = true }

// Deactivate stops the fault from manifesting (hooks stay installed but
// pass everything through).
func (f *Fault) Deactivate() { f.active = false }

// Injections returns how many operations the fault has perturbed.
func (f *Fault) Injections() int { return f.injections }

// Fire performs the fault's proactive action, if any (T2/T3 faults whose
// trigger is an administrator or application).
func (f *Fault) Fire() {
	if f.fire != nil {
		f.fire()
	}
}

// String describes the fault.
func (f *Fault) String() string {
	return fmt.Sprintf("%s on C%d: %s", f.Kind, f.Target.ID(), f.description)
}

// InjectDatabaseLocking arms the ONOS database-locking fault: the target
// controller's SwitchDB writes for switch connects fail (lock error), so
// the primary omits its response while secondaries do not.
func InjectDatabaseLocking(target *controller.Controller) *Fault {
	f := &Fault{Kind: ONOSDatabaseLocking, Target: target, active: true,
		description: "SwitchDB writes fail with a database lock error"}
	target.PrependCacheHook(func(_ *controller.Controller, w *controller.CacheWrite) controller.HookAction {
		if !f.active || w.Ctx.Tainted() || w.Cache != store.SwitchDB {
			return controller.Proceed
		}
		f.injections++
		return controller.Suppress
	})
	return f
}

// InjectMasterElection arms the ONOS master-election fault: the target
// (previously the higher-ID liveness master, now reboots with a lower ID)
// stops tracking liveness for cross-governed links, believing it lost the
// election — while the other governor also believes it is not responsible.
func InjectMasterElection(target *controller.Controller) *Fault {
	f := &Fault{Kind: ONOSMasterElection, Target: target, active: true,
		description: "rebooted liveness master uses a lower election ID"}
	target.LivenessIDOverride = store.NodeID(-1)
	f.fire = func() {
		if f.active {
			target.LivenessIDOverride = store.NodeID(-1)
		} else {
			target.LivenessIDOverride = 0
		}
	}
	return f
}

// InjectFlowModDrop arms the ODL FLOW_MOD-drop fault: FLOW_MODs leaving
// the target controller are sporadically lost between the data store and
// the network (every dropNth message; 1 drops all).
func InjectFlowModDrop(target *controller.Controller, dropNth int) *Fault {
	if dropNth < 1 {
		dropNth = 1
	}
	f := &Fault{Kind: ODLFlowModDrop, Target: target, active: true,
		description: "FLOW_MODs lost between MD-SAL and the network"}
	count := 0
	target.PrependEgressHook(func(_ *controller.Controller, w *controller.EgressWrite) controller.HookAction {
		if !f.active || w.Ctx.Tainted() {
			return controller.Proceed
		}
		if _, ok := w.Msg.(*openflow.FlowMod); !ok {
			return controller.Proceed
		}
		count++
		if count%dropNth == 0 {
			f.injections++
			return controller.Suppress
		}
		return controller.Proceed
	})
	return f
}

// InjectIncorrectFlowMod arms the ODL incorrect-FLOW_MOD fault (T3): the
// administrator installs, via an internal trigger, a flow whose match
// violates the OpenFlow 1.0 field hierarchy; the permissive switch installs
// it after discarding fields, so cache and switch state silently diverge.
// Fire performs the installation.
func InjectIncorrectFlowMod(target *controller.Controller, sw *dataplane.Switch) *Fault {
	sw.AcceptInvalidMatch = true
	f := &Fault{Kind: ODLIncorrectFlowMod, Target: target, active: true,
		description: "FLOW_MOD with invalid match-field hierarchy"}
	f.fire = func() {
		if !f.active {
			return
		}
		f.injections++
		target.InstallFlowInternal(InvalidHierarchyRule(sw.DPID()))
	}
	return f
}

// InvalidHierarchyRule builds a flow rule whose match sets L4 ports
// without constraining nw_proto — the hierarchy violation of the
// incorrect-FLOW_MOD fault.
func InvalidHierarchyRule(dpid topo.DPID) controller.FlowRule {
	m := openflow.MatchAll()
	m.Wildcards &^= openflow.WildcardTPDst // tp_dst set, nw_proto not
	m.TPDst = 80
	return controller.FlowRule{
		DPID:     dpid,
		Match:    m,
		Priority: 42,
		Actions:  []openflow.Action{openflow.Output(1)},
		Command:  uint16(openflow.FlowAdd),
	}
}

// InjectLinkFailure arms the synthetic T1 link-failure fault: the target
// responds to LLDP triggers by incorrectly writing LinksDB entries as
// "down", disabling links.
func InjectLinkFailure(target *controller.Controller) *Fault {
	f := &Fault{Kind: LinkFailure, Target: target, active: true,
		description: "LinksDB updates flipped to down on external triggers"}
	target.PrependCacheHook(func(_ *controller.Controller, w *controller.CacheWrite) controller.HookAction {
		if !f.active || w.Ctx.Tainted() || w.Cache != store.LinksDB {
			return controller.Proceed
		}
		if w.Value == "up" {
			f.injections++
			w.Value = "down"
		}
		return controller.Proceed
	})
	return f
}

// InjectUndesirableFlowMod arms the synthetic T2 fault: the cache receives
// the correct rule, but the FLOW_MOD emitted on the wire is rewritten to
// drop all packets at the destination switch.
func InjectUndesirableFlowMod(target *controller.Controller) *Fault {
	f := &Fault{Kind: UndesirableFlowMod, Target: target, active: true,
		description: "emitted FLOW_MODs rewritten to drop-all"}
	target.PrependEgressHook(func(_ *controller.Controller, w *controller.EgressWrite) controller.HookAction {
		if !f.active || w.Ctx.Tainted() {
			return controller.Proceed
		}
		fm, ok := w.Msg.(*openflow.FlowMod)
		if !ok {
			return controller.Proceed
		}
		f.injections++
		bad := *fm
		bad.Actions = nil // empty action list drops all matching packets
		w.Msg = &bad
		return controller.Proceed
	})
	return f
}

// InjectFaultyProactiveAction arms the synthetic T3 fault: an internal
// trigger (administrator/application) writes a consistent but wrong
// LinksDB entry that brings a critical link down. Fire performs the write.
// Only a policy can catch this class (§VII-A1(3)).
func InjectFaultyProactiveAction(target *controller.Controller, linkKey string) *Fault {
	f := &Fault{Kind: FaultyProactiveAction, Target: target, active: true,
		description: "proactive LinksDB update brings a critical link down"}
	f.fire = func() {
		if !f.active {
			return
		}
		f.injections++
		target.AdminWriteCache(store.LinksDB, store.OpUpdate, linkKey, "down")
	}
	return f
}

// InjectFlowDeletionFailure arms the appendix T1 fault: REST-initiated
// FlowsDB deletions are silently dropped at the target (the controller
// "locks up" on deletes).
func InjectFlowDeletionFailure(target *controller.Controller) *Fault {
	f := &Fault{Kind: FlowDeletionFailure, Target: target, active: true,
		description: "REST flow deletions silently dropped"}
	target.PrependCacheHook(func(_ *controller.Controller, w *controller.CacheWrite) controller.HookAction {
		if !f.active || w.Ctx.Tainted() {
			return controller.Proceed
		}
		if w.Cache == store.FlowsDB && w.Op == store.OpDelete {
			f.injections++
			return controller.Suppress
		}
		return controller.Proceed
	})
	return f
}

// InjectLinkDetectionInconsistent arms the appendix T1 fault: the target
// non-deterministically drops a fraction of its LinksDB writes (threading
// conflicts), so detected links vary run to run. dropPercent in [0,100].
func InjectLinkDetectionInconsistent(target *controller.Controller, eng interface{ Intn(int) int }, dropPercent int) *Fault {
	f := &Fault{Kind: LinkDetectionInconsistent, Target: target, active: true,
		description: "LinksDB writes dropped non-deterministically"}
	target.PrependCacheHook(func(_ *controller.Controller, w *controller.CacheWrite) controller.HookAction {
		if !f.active || w.Ctx.Tainted() || w.Cache != store.LinksDB {
			return controller.Proceed
		}
		if eng.Intn(100) < dropPercent {
			f.injections++
			return controller.Suppress
		}
		return controller.Proceed
	})
	return f
}

// InjectFlowInstantiationFailure arms the appendix T2 fault: restconf
// reports success and the data store is updated, but no FLOW_MOD leaves
// the controller.
func InjectFlowInstantiationFailure(target *controller.Controller) *Fault {
	f := &Fault{Kind: FlowInstantiationFailure, Target: target, active: true,
		description: "restconf succeeds but FLOW_MODs never leave the controller"}
	target.PrependEgressHook(func(_ *controller.Controller, w *controller.EgressWrite) controller.HookAction {
		if !f.active || w.Ctx.Tainted() {
			return controller.Proceed
		}
		if _, ok := w.Msg.(*openflow.FlowMod); ok {
			f.injections++
			return controller.Suppress
		}
		return controller.Proceed
	})
	return f
}

// InjectPendingAdd arms the appendix T2 fault at the data plane: the
// switch accepts FLOW_MODs but leaves entries in PENDING_ADD, so the
// store's view (ADDED) disagrees with the switch.
func InjectPendingAdd(target *controller.Controller, sw *dataplane.Switch) *Fault {
	sw.HoldPendingAdd = true
	return &Fault{Kind: PendingAdd, Target: target, active: true,
		description: "switch holds flow entries in PENDING_ADD"}
}

// InjectCrash fail-stops the target when fired.
func InjectCrash(target *controller.Controller) *Fault {
	f := &Fault{Kind: Crash, Target: target, active: true,
		description: "fail-stop crash"}
	f.fire = func() {
		if f.active {
			f.injections++
			target.Crash()
		}
	}
	return f
}

// InjectTimingDelay arms a timing fault: the target processes every
// trigger delay (+ up to jitter) slower than its peers — the "faulty
// replica" model of the m>0 detection experiments (§VII-A).
func InjectTimingDelay(target *controller.Controller, delay, jitter time.Duration) *Fault {
	target.SetExtraDelay(delay, jitter)
	f := &Fault{Kind: TimingDelay, Target: target, active: true,
		description: fmt.Sprintf("all processing slowed by %v (+%v jitter)", delay, jitter)}
	return f
}

// InjectByzantineCorruption arms random corruption: a percentage of the
// target's cache writes have their values corrupted.
func InjectByzantineCorruption(target *controller.Controller, eng interface{ Intn(int) int }, percent int) *Fault {
	f := &Fault{Kind: ByzantineCorruption, Target: target, active: true,
		description: "cache write values randomly corrupted"}
	target.PrependCacheHook(func(_ *controller.Controller, w *controller.CacheWrite) controller.HookAction {
		if !f.active || w.Ctx.Tainted() {
			return controller.Proceed
		}
		if eng.Intn(100) < percent {
			f.injections++
			w.Value = w.Value + "|corrupted"
		}
		return controller.Proceed
	})
	return f
}
