package cluster

import (
	"testing"

	"github.com/jurysdn/jury/internal/store"
	"github.com/jurysdn/jury/internal/topo"
)

func ids(n int) []store.NodeID {
	var out []store.NodeID
	for i := 1; i <= n; i++ {
		out = append(out, store.NodeID(i))
	}
	return out
}

func dpids(n int) []topo.DPID {
	var out []topo.DPID
	for i := 1; i <= n; i++ {
		out = append(out, topo.DPID(i))
	}
	return out
}

func TestRoundRobinMastership(t *testing.T) {
	m := NewMembership(AnyControllerOneMaster, ids(3), dpids(6))
	counts := map[store.NodeID]int{}
	for _, d := range dpids(6) {
		master, ok := m.Master(d)
		if !ok {
			t.Fatalf("switch %v has no master", d)
		}
		counts[master]++
	}
	for id, c := range counts {
		if c != 2 {
			t.Fatalf("controller %d masters %d switches, want 2", id, c)
		}
	}
}

func TestActivePassiveSingleMaster(t *testing.T) {
	m := NewMembership(ActivePassive, ids(3), dpids(4))
	for _, d := range dpids(4) {
		if master, _ := m.Master(d); master != 1 {
			t.Fatalf("active-passive master = %d, want 1", master)
		}
	}
}

func TestGoverned(t *testing.T) {
	m := NewMembership(AnyControllerOneMaster, ids(2), dpids(4))
	g1 := m.Governed(1)
	g2 := m.Governed(2)
	if len(g1)+len(g2) != 4 {
		t.Fatalf("governance does not cover all switches: %v %v", g1, g2)
	}
	for _, d := range g1 {
		if !m.IsMaster(1, d) {
			t.Fatal("IsMaster disagrees with Governed")
		}
	}
}

func TestFailover(t *testing.T) {
	m := NewMembership(AnyControllerOneMaster, ids(3), dpids(6))
	var changed []topo.DPID
	m.Observe(func(d topo.DPID, _ store.NodeID) { changed = append(changed, d) })
	before := m.Governed(2)
	m.MarkDead(2)
	if m.IsAlive(2) {
		t.Fatal("dead controller still alive")
	}
	if len(m.Governed(2)) != 0 {
		t.Fatal("dead controller still masters switches")
	}
	if len(changed) != len(before) {
		t.Fatalf("observer saw %d changes, want %d", len(changed), len(before))
	}
	for _, d := range before {
		master, _ := m.Master(d)
		if master == 2 || !m.IsAlive(master) {
			t.Fatalf("switch %v failed over to %d", d, master)
		}
	}
}

func TestMarkAliveRejoin(t *testing.T) {
	m := NewMembership(AnyControllerOneMaster, ids(3), dpids(3))
	m.MarkDead(3)
	m.MarkAlive(3)
	if !m.IsAlive(3) {
		t.Fatal("rejoin failed")
	}
	if got := len(m.Alive()); got != 3 {
		t.Fatalf("alive = %d", got)
	}
}

func TestAllDeadNoPanic(t *testing.T) {
	m := NewMembership(AnyControllerOneMaster, ids(2), dpids(2))
	m.MarkDead(1)
	m.MarkDead(2)
	if len(m.Alive()) != 0 {
		t.Fatal("alive should be empty")
	}
}

func TestLinkLivenessMasterIsHigherID(t *testing.T) {
	m := NewMembership(AnyControllerOneMaster, ids(3), dpids(6))
	// Switch 1 → C1, switch 2 → C2 (round robin).
	master, ok := m.LinkLivenessMaster(1, 2)
	if !ok || master != 2 {
		t.Fatalf("liveness master = %d, want 2 (higher id)", master)
	}
	// Symmetric.
	if back, _ := m.LinkLivenessMaster(2, 1); back != master {
		t.Fatal("liveness election not symmetric")
	}
}

func TestSetMasterNotifiesObservers(t *testing.T) {
	m := NewMembership(SingleController, ids(2), dpids(2))
	var gotDPID topo.DPID
	var gotID store.NodeID
	m.Observe(func(d topo.DPID, id store.NodeID) { gotDPID, gotID = d, id })
	m.SetMaster(1, 2)
	if gotDPID != 1 || gotID != 2 {
		t.Fatalf("observer got %v/%d", gotDPID, gotID)
	}
	if !m.IsMaster(2, 1) {
		t.Fatal("SetMaster did not take effect")
	}
}

func TestModeStrings(t *testing.T) {
	if AnyControllerOneMaster.String() != "ANY_CONTROLLER_ONE_MASTER" {
		t.Fatal(AnyControllerOneMaster.String())
	}
	if SingleController.String() != "SINGLE_CONTROLLER" {
		t.Fatal(SingleController.String())
	}
	if ActivePassive.String() != "ACTIVE_PASSIVE" {
		t.Fatal(ActivePassive.String())
	}
}

func TestMembersSorted(t *testing.T) {
	m := NewMembership(AnyControllerOneMaster, []store.NodeID{3, 1, 2}, dpids(1))
	got := m.Members()
	for i := 1; i < len(got); i++ {
		if got[i-1] >= got[i] {
			t.Fatalf("members unsorted: %v", got)
		}
	}
}
