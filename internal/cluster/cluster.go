// Package cluster tracks controller cluster membership and switch
// mastership. It models the HA connection-management configurations the
// paper experiments with (§VI): ANY_CONTROLLER_ONE_MASTER for ONOS,
// SINGLE_CONTROLLER for ODL, and ACTIVE_PASSIVE.
package cluster

import (
	"fmt"
	"sort"

	"github.com/jurysdn/jury/internal/obs"
	"github.com/jurysdn/jury/internal/store"
	"github.com/jurysdn/jury/internal/topo"
)

// Mode is the HA connection-management configuration.
type Mode uint8

// Connection-management modes.
const (
	// AnyControllerOneMaster connects every switch to every controller
	// with exactly one master per switch (the ONOS setup).
	AnyControllerOneMaster Mode = iota + 1
	// SingleController connects each switch to one controller (the ODL
	// setup).
	SingleController
	// ActivePassive directs all switches to a single active controller;
	// the rest are passive replicas.
	ActivePassive
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case AnyControllerOneMaster:
		return "ANY_CONTROLLER_ONE_MASTER"
	case SingleController:
		return "SINGLE_CONTROLLER"
	case ActivePassive:
		return "ACTIVE_PASSIVE"
	default:
		return fmt.Sprintf("mode(%d)", uint8(m))
	}
}

// Membership tracks live controllers and per-switch mastership.
type Membership struct {
	mode    Mode
	members map[store.NodeID]bool // true = alive
	masters map[topo.DPID]store.NodeID

	// observers are notified when mastership changes.
	observers []func(dpid topo.DPID, master store.NodeID)

	// Churn counters; standalone until InstrumentMetrics re-homes them in
	// a registry for exposition.
	masterChanges *obs.Counter
	deaths        *obs.Counter
	rejoins       *obs.Counter
}

// NewMembership creates a membership with the given mode and members, and
// assigns initial mastership for the given switches: round-robin across
// controllers for AnyControllerOneMaster/SingleController, all switches to
// the lowest controller ID for ActivePassive.
func NewMembership(mode Mode, members []store.NodeID, switches []topo.DPID) *Membership {
	m := &Membership{
		mode:          mode,
		members:       make(map[store.NodeID]bool, len(members)),
		masters:       make(map[topo.DPID]store.NodeID, len(switches)),
		masterChanges: &obs.Counter{},
		deaths:        &obs.Counter{},
		rejoins:       &obs.Counter{},
	}
	sorted := append([]store.NodeID(nil), members...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for _, id := range sorted {
		m.members[id] = true
	}
	for i, dpid := range switches {
		switch mode {
		case ActivePassive:
			if len(sorted) > 0 {
				m.masters[dpid] = sorted[0]
			}
		default:
			if len(sorted) > 0 {
				m.masters[dpid] = sorted[i%len(sorted)]
			}
		}
	}
	return m
}

// Mode returns the connection-management mode.
func (m *Membership) Mode() Mode { return m.mode }

// InstrumentMetrics re-homes the churn counters in reg so they appear on
// /metrics, and exposes the live-member count as a gauge. Call it at
// wiring time, before any churn occurs.
func (m *Membership) InstrumentMetrics(reg *obs.Registry) {
	m.masterChanges = reg.Counter("jury_cluster_mastership_changes_total",
		"Switch mastership reassignments (failovers and rebalances).")
	m.deaths = reg.Counter("jury_cluster_member_deaths_total",
		"Controllers marked dead.")
	m.rejoins = reg.Counter("jury_cluster_member_rejoins_total",
		"Controllers marked alive again after a death.")
	reg.GaugeFunc("jury_cluster_members_alive", "Live controllers.",
		func() float64 { return float64(len(m.Alive())) })
}

// MastershipChanges returns the number of mastership reassignments.
func (m *Membership) MastershipChanges() int64 { return m.masterChanges.Value() }

// Deaths returns the number of controllers marked dead.
func (m *Membership) Deaths() int64 { return m.deaths.Value() }

// Rejoins returns the number of controllers that rejoined after a death.
func (m *Membership) Rejoins() int64 { return m.rejoins.Value() }

// Members returns all known controller IDs in order.
func (m *Membership) Members() []store.NodeID {
	out := make([]store.NodeID, 0, len(m.members))
	for id := range m.members {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Alive returns the live controller IDs in order.
func (m *Membership) Alive() []store.NodeID {
	out := make([]store.NodeID, 0, len(m.members))
	//jurylint:allow maprange -- filtered keys are sorted before return
	for id, alive := range m.members {
		if alive {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// IsAlive reports whether a controller is alive.
func (m *Membership) IsAlive(id store.NodeID) bool { return m.members[id] }

// Master returns the master controller for a switch.
func (m *Membership) Master(dpid topo.DPID) (store.NodeID, bool) {
	id, ok := m.masters[dpid]
	return id, ok
}

// IsMaster reports whether id masters dpid.
func (m *Membership) IsMaster(id store.NodeID, dpid topo.DPID) bool {
	master, ok := m.masters[dpid]
	return ok && master == id
}

// Governed returns the switches mastered by id, sorted.
func (m *Membership) Governed(id store.NodeID) []topo.DPID {
	var out []topo.DPID
	//jurylint:allow maprange -- filtered keys are sorted before return
	for dpid, master := range m.masters {
		if master == id {
			out = append(out, dpid)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Observe registers a mastership-change callback.
func (m *Membership) Observe(fn func(dpid topo.DPID, master store.NodeID)) {
	m.observers = append(m.observers, fn)
}

// SetMaster reassigns mastership of a switch.
func (m *Membership) SetMaster(dpid topo.DPID, id store.NodeID) {
	m.masters[dpid] = id
	m.masterChanges.Inc()
	for _, fn := range m.observers {
		fn(dpid, id)
	}
}

// MarkDead marks a controller as failed and re-elects masters for its
// switches (lowest-ID live controller wins, the usual bully outcome).
func (m *Membership) MarkDead(id store.NodeID) {
	wasAlive, ok := m.members[id]
	if !ok {
		return
	}
	if wasAlive {
		m.deaths.Inc()
	}
	m.members[id] = false
	alive := m.Alive()
	if len(alive) == 0 {
		return
	}
	// Governed returns the orphaned switches sorted, so the reassignment
	// round-robin is deterministic (a map range here would hand different
	// switches to different survivors on every run).
	for i, dpid := range m.Governed(id) {
		m.SetMaster(dpid, alive[i%len(alive)])
	}
}

// MarkAlive marks a controller as (re)joined. Mastership is not rebalanced
// automatically, matching controllers that require explicit rebalance.
func (m *Membership) MarkAlive(id store.NodeID) {
	if alive, known := m.members[id]; known && !alive {
		m.rejoins.Inc()
	}
	m.members[id] = true
}

// LinkLivenessMaster returns the controller responsible for tracking
// liveness of a link between two switches: per the (buggy) election the
// paper describes for older ONOS (§III-B), the governing controller with
// the higher ID wins.
func (m *Membership) LinkLivenessMaster(a, b topo.DPID) (store.NodeID, bool) {
	ma, oka := m.masters[a]
	mb, okb := m.masters[b]
	if !oka || !okb {
		return 0, false
	}
	if ma >= mb {
		return ma, true
	}
	return mb, true
}
