package core

import (
	"testing"
	"time"

	"github.com/jurysdn/jury/internal/cluster"
	"github.com/jurysdn/jury/internal/controller"
	"github.com/jurysdn/jury/internal/openflow"
	"github.com/jurysdn/jury/internal/simnet"
	"github.com/jurysdn/jury/internal/store"
	"github.com/jurysdn/jury/internal/topo"
	"github.com/jurysdn/jury/internal/trigger"
)

// coreRig wires n controllers with JURY modules and a validator.
type coreRig struct {
	eng     *simnet.Engine
	members *cluster.Membership
	sys     *System
	ctrls   []*controller.Controller
}

func quietProfile() controller.Profile {
	p := controller.ONOSProfile()
	p.PausePeriod = 0
	p.LLDPPeriod = 0
	return p
}

func newCoreRig(t *testing.T, n, k int, mode ReplicationMode) *coreRig {
	t.Helper()
	eng := simnet.NewEngine(1)
	var (
		ids []store.NodeID
		ds  []topo.DPID
	)
	for i := 1; i <= n; i++ {
		ids = append(ids, store.NodeID(i))
	}
	for i := 1; i <= n; i++ {
		ds = append(ds, topo.DPID(i))
	}
	members := cluster.NewMembership(cluster.AnyControllerOneMaster, ids, ds)
	sc := store.NewCluster(eng, store.DefaultConfig(store.Eventual))
	sys := NewSystem(eng, members, SystemConfig{
		K:    k,
		Mode: mode,
		Validator: ValidatorConfig{
			Timeout: 100 * time.Millisecond,
		},
	})
	r := &coreRig{eng: eng, members: members, sys: sys}
	profile := quietProfile()
	for _, id := range ids {
		node := sc.AddNode(id)
		ctrl := controller.New(eng, id, profile, node, members)
		sys.AttachController(ctrl)
		r.ctrls = append(r.ctrls, ctrl)
	}
	return r
}

func (r *coreRig) run(t *testing.T) {
	t.Helper()
	if err := r.eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
}

func TestModuleSuppressesSecondarySideEffects(t *testing.T) {
	r := newCoreRig(t, 3, 2, ProxyMode)
	c2 := r.ctrls[1]
	// Replicated FEATURES_REPLY at a secondary: the SwitchDB write must
	// be captured and never reach the store.
	ctx := (&trigger.Context{ID: "τ", Kind: trigger.External, Primary: 1}).ReplicaOf()
	mod, _ := r.sys.Module(2)
	mod.HandleReplicated(1, &openflow.FeaturesReply{DatapathID: 1, Ports: []uint16{1}}, ctx, nil)
	r.run(t)
	if c2.Node().Len(store.SwitchDB) != 0 {
		t.Fatal("secondary side-effect reached the store")
	}
	v := r.sys.Validator()
	if v.Decided() == 0 {
		t.Fatal("validator decided nothing")
	}
}

func TestModuleEmitsExecDoneForNoOp(t *testing.T) {
	r := newCoreRig(t, 3, 2, ProxyMode)
	mod, _ := r.sys.Module(2)
	var got []Response
	// Intercept by wrapping validator OnResult? Instead drive a no-op
	// trigger (Hello) and inspect counters through the validator path:
	// attach a probe validator hook via OnTimeoutResponses.
	r.sys.Validator().OnTimeoutResponses = func(_ trigger.ID, rs []Response) { got = rs }
	ctx := (&trigger.Context{ID: "τ", Kind: trigger.External, Primary: 1}).ReplicaOf()
	mod.HandleReplicated(1, &openflow.Hello{}, ctx, nil)
	r.run(t)
	found := false
	for _, resp := range got {
		if resp.Kind == ExecDone && resp.Controller == 2 {
			found = true
		}
	}
	if !found {
		t.Fatalf("no ExecDone observed: %+v", got)
	}
}

func TestModuleDecapsulatesEncapMode(t *testing.T) {
	r := newCoreRig(t, 3, 2, EncapMode)
	mod, _ := r.sys.Module(2)
	inner := &openflow.PacketIn{
		InPort: 1,
		Data:   openflow.ARPPacket(openflow.ARPRequest, topo.HostMAC(1), topo.HostIP(1), openflow.MAC{}, topo.HostIP(2)),
	}
	frame := openflow.EncapsulatePacketIn(inner, openflow.MAC{0xEE})
	ctx := (&trigger.Context{ID: "τ", Kind: trigger.External, Primary: 1}).ReplicaOf()
	mod.HandleReplicated(1, nil, ctx, frame)
	r.run(t)
	if mod.DecapTimes.Count() != 1 {
		t.Fatalf("decap overhead samples = %d", mod.DecapTimes.Count())
	}
	if mod.DecapTimes.Max() <= 0 {
		t.Fatal("decap overhead not modeled")
	}
}

func TestModuleRelaySamplingBoundsResponses(t *testing.T) {
	// n=7, k=2: each cache event must be relayed by exactly k+1 modules.
	r := newCoreRig(t, 7, 2, ProxyMode)
	var cacheRelays int
	r.sys.Validator().OnResult = func(Result) {}
	// Count relays by summing validator messages of kind CacheUpdate:
	// intercept via a wrapper on Submit is not exposed, so count through
	// module byte accounting instead: issue one write and count modules
	// whose validator traffic grew.
	before := make(map[store.NodeID]int64)
	for i := 1; i <= 7; i++ {
		mod, _ := r.sys.Module(store.NodeID(i))
		before[store.NodeID(i)] = mod.ValidatorMessages()
	}
	r.ctrls[0].Node().WriteTagged(store.HostDB, store.OpCreate, "k", "v", "τ9", nil)
	r.run(t)
	for i := 1; i <= 7; i++ {
		mod, _ := r.sys.Module(store.NodeID(i))
		if mod.ValidatorMessages() > before[store.NodeID(i)] {
			cacheRelays++
		}
	}
	if cacheRelays != 3 { // k+1
		t.Fatalf("relaying modules = %d, want k+1 = 3", cacheRelays)
	}
}

func TestModuleRelayAll(t *testing.T) {
	eng := simnet.NewEngine(1)
	ids := []store.NodeID{1, 2, 3, 4}
	members := cluster.NewMembership(cluster.AnyControllerOneMaster, ids, []topo.DPID{1})
	sc := store.NewCluster(eng, store.DefaultConfig(store.Eventual))
	sys := NewSystem(eng, members, SystemConfig{K: 1, RelayAll: true,
		Validator: ValidatorConfig{Timeout: 50 * time.Millisecond}})
	var ctrls []*controller.Controller
	for _, id := range ids {
		ctrl := controller.New(eng, id, quietProfile(), sc.AddNode(id), members)
		sys.AttachController(ctrl)
		ctrls = append(ctrls, ctrl)
	}
	ctrls[0].Node().WriteTagged(store.HostDB, store.OpCreate, "k", "v", "τ", nil)
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	relaying := 0
	for _, id := range ids {
		mod, _ := sys.Module(id)
		if mod.ValidatorMessages() > 0 {
			relaying++
		}
	}
	if relaying != 4 {
		t.Fatalf("relayAll modules = %d, want 4", relaying)
	}
}

func TestReplicatorRoutesPrimaryAndSecondaries(t *testing.T) {
	r := newCoreRig(t, 5, 2, ProxyMode)
	var primaryGot []store.NodeID
	rep := NewReplicator(r.eng, 1, r.members, moduleMap(r.sys, 5),
		func(id store.NodeID, _ topo.DPID, _ openflow.Message, ctx *trigger.Context) {
			if ctx.Replica {
				t.Fatal("primary delivery tainted")
			}
			primaryGot = append(primaryGot, id)
		}, ReplicatorConfig{K: 2, Mode: ProxyMode})
	pin := &openflow.PacketIn{InPort: 1, Data: openflow.TCPPacket(topo.HostMAC(1), topo.HostMAC(2), topo.HostIP(1), topo.HostIP(2), 1, 2, 0, 0)}
	rep.HandleFromSwitch(pin)
	r.run(t)
	master, _ := r.members.Master(1)
	if len(primaryGot) != 1 || primaryGot[0] != master {
		t.Fatalf("primary delivery = %v, want [%d]", primaryGot, master)
	}
	if rep.Triggers() != 1 {
		t.Fatalf("triggers = %d", rep.Triggers())
	}
	if rep.ReplicatedBytes() <= 0 {
		t.Fatal("no replication bytes accounted")
	}
}

func moduleMap(sys *System, n int) map[store.NodeID]*Module {
	out := make(map[store.NodeID]*Module)
	for i := 1; i <= n; i++ {
		if m, ok := sys.Module(store.NodeID(i)); ok {
			out[store.NodeID(i)] = m
		}
	}
	return out
}

func TestReplicatorPicksKRandomSecondaries(t *testing.T) {
	r := newCoreRig(t, 7, 3, ProxyMode)
	rep := NewReplicator(r.eng, 1, r.members, moduleMap(r.sys, 7),
		func(store.NodeID, topo.DPID, openflow.Message, *trigger.Context) {},
		ReplicatorConfig{K: 3})
	primary, _ := r.members.Master(1)
	seen := make(map[store.NodeID]bool)
	for i := 0; i < 50; i++ {
		for _, id := range rep.pickSecondaries(primary) {
			if id == primary {
				t.Fatal("primary picked as secondary")
			}
			seen[id] = true
		}
	}
	if len(seen) != 6 {
		t.Fatalf("random selection covered %d controllers, want all 6 non-primaries", len(seen))
	}
}

func TestReplicatorSkipsDeadSecondaries(t *testing.T) {
	r := newCoreRig(t, 4, 3, ProxyMode)
	r.members.MarkDead(4)
	rep := NewReplicator(r.eng, 1, r.members, moduleMap(r.sys, 4),
		func(store.NodeID, topo.DPID, openflow.Message, *trigger.Context) {},
		ReplicatorConfig{K: 3})
	primary, _ := r.members.Master(1)
	for _, id := range rep.pickSecondaries(primary) {
		if id == 4 {
			t.Fatal("dead controller selected")
		}
	}
}

func TestReplicatorEncapsulatesPacketInsOnly(t *testing.T) {
	r := newCoreRig(t, 3, 2, EncapMode)
	rep := NewReplicator(r.eng, 1, r.members, moduleMap(r.sys, 3),
		func(store.NodeID, topo.DPID, openflow.Message, *trigger.Context) {},
		ReplicatorConfig{K: 2, Mode: EncapMode})
	// PACKET_IN: encapsulated replica; decap overhead recorded.
	pin := &openflow.PacketIn{InPort: 1, Data: openflow.ARPPacket(openflow.ARPRequest, topo.HostMAC(1), topo.HostIP(1), openflow.MAC{}, topo.HostIP(2))}
	rep.HandleFromSwitch(pin)
	r.run(t)
	total := 0
	for i := 1; i <= 3; i++ {
		mod, _ := r.sys.Module(store.NodeID(i))
		total += mod.DecapTimes.Count()
	}
	if total != 2 {
		t.Fatalf("decapsulations = %d, want k=2", total)
	}
}

func TestReplicateREST(t *testing.T) {
	r := newCoreRig(t, 3, 2, ProxyMode)
	rep := NewReplicator(r.eng, 1, r.members, moduleMap(r.sys, 3),
		func(store.NodeID, topo.DPID, openflow.Message, *trigger.Context) {},
		ReplicatorConfig{K: 2})
	var installs []struct {
		id      store.NodeID
		replica bool
	}
	rule := controller.FlowRule{DPID: 1, Match: openflow.MatchAll(), Priority: 1}
	rep.ReplicateREST(1, rule, func(id store.NodeID, _ controller.FlowRule, ctx *trigger.Context) {
		installs = append(installs, struct {
			id      store.NodeID
			replica bool
		}{id, ctx.Replica})
	})
	r.run(t)
	if len(installs) != 3 {
		t.Fatalf("installs = %d, want primary + 2 secondaries", len(installs))
	}
	replicas := 0
	for _, in := range installs {
		if in.replica {
			replicas++
		} else if in.id != 1 {
			t.Fatalf("untainted install at C%d", in.id)
		}
	}
	if replicas != 2 {
		t.Fatalf("replicas = %d", replicas)
	}
}

func TestSystemRequiresControllersBeforeSwitches(t *testing.T) {
	eng := simnet.NewEngine(1)
	members := cluster.NewMembership(cluster.AnyControllerOneMaster, []store.NodeID{1}, []topo.DPID{1})
	sys := NewSystem(eng, members, SystemConfig{K: 0})
	if _, err := sys.AttachSwitch(nil); err == nil {
		t.Fatal("expected error attaching switch before controllers")
	}
}
