package core

import (
	"fmt"
	"sort"
	"strconv"
	"time"

	"github.com/jurysdn/jury/internal/cluster"
	"github.com/jurysdn/jury/internal/controller"
	"github.com/jurysdn/jury/internal/metrics"
	"github.com/jurysdn/jury/internal/obs"
	"github.com/jurysdn/jury/internal/openflow"
	"github.com/jurysdn/jury/internal/simnet"
	"github.com/jurysdn/jury/internal/store"
	"github.com/jurysdn/jury/internal/topo"
	"github.com/jurysdn/jury/internal/trigger"
)

// Verdict is the validator's decision for one trigger.
type Verdict uint8

// Verdicts.
const (
	VerdictValid Verdict = iota + 1
	VerdictFault
	// VerdictNonDeterministic labels triggers whose responses were all
	// pairwise distinct — non-deterministic application logic, treated
	// as non-faulty (§IV-C B).
	VerdictNonDeterministic
)

// String names the verdict.
func (v Verdict) String() string {
	switch v {
	case VerdictValid:
		return "valid"
	case VerdictFault:
		return "fault"
	case VerdictNonDeterministic:
		return "non-deterministic"
	default:
		return fmt.Sprintf("verdict(%d)", uint8(v))
	}
}

// FaultClass categorizes a detected fault.
type FaultClass uint8

// Fault classes raised by the validator.
const (
	FaultNone FaultClass = iota
	// FaultOmission: the primary produced no response before the
	// validation timeout (crash / response-omission / timing fault).
	FaultOmission
	// FaultValue: the primary's response conflicts with the consensus of
	// same-state secondaries (T1).
	FaultValue
	// FaultInconsistent: the primary's network write disagrees with the
	// replicated cache state (T2).
	FaultInconsistent
	// FaultMissingNetwork: cache updates exist but the expected network
	// write never appeared (T2, e.g. ODL FLOW_MOD drop).
	FaultMissingNetwork
	// FaultNetworkOnly: a FLOW_MOD appeared with no corresponding cache
	// update (§II-A3: network-only side-effects indicate misbehaviour).
	FaultNetworkOnly
	// FaultPolicy: an administrator policy was violated (T3).
	FaultPolicy
)

// String names the fault class.
func (f FaultClass) String() string {
	switch f {
	case FaultNone:
		return "none"
	case FaultOmission:
		return "omission"
	case FaultValue:
		return "value"
	case FaultInconsistent:
		return "inconsistent"
	case FaultMissingNetwork:
		return "missing-network"
	case FaultNetworkOnly:
		return "network-only"
	case FaultPolicy:
		return "policy"
	default:
		return fmt.Sprintf("fault(%d)", uint8(f))
	}
}

// Result is the validator's output Oτ for one trigger.
type Result struct {
	Trigger   trigger.ID
	Kind      trigger.Kind
	Verdict   Verdict
	Fault     FaultClass
	Offender  store.NodeID
	Reason    string
	Responses int
	// DetectionTime is the interval from the first response (θτ start)
	// to the decision.
	DetectionTime time.Duration // vclock:wire -- protocol time base is virtual ns
	DecidedAt     time.Duration // vclock:wire -- protocol time base is virtual ns
	TimedOut      bool
	// Evidence carries the responses behind a fault verdict (bounded),
	// the diagnostics the paper presents to the administrator (§V).
	Evidence []Response `json:"evidence,omitempty"`
}

// PolicyFunc evaluates administrator policies against one primary response
// (POLICY_CHECK in Algorithm 1). It returns the name of a violated policy.
type PolicyFunc func(kind trigger.Kind, primary store.NodeID, r Response) (violation string, violated bool)

// ValidatorConfig parameterizes the validator.
type ValidatorConfig struct {
	// K is the replication factor.
	K int
	// Timeout is the per-trigger validation deadline θτ (§IV-C C). The
	// paper determines it empirically as the 95th percentile of
	// consensus time for the deployment's (k, m).
	Timeout time.Duration
	// Adaptive enables the EWMA-based adaptive timeout the paper leaves
	// as future work (§VIII-1): the deadline tracks recent consensus
	// latency as mean + AdaptiveFactor·deviation.
	Adaptive       bool
	AdaptiveFactor float64
	// MaxAlarms bounds the retained alarm list.
	MaxAlarms int
	// Shards partitions validator state by trigger taint-ID across this
	// many shards (default 1, the paper's single decision loop). Each
	// shard owns the pending map, Ψ table, adaptive-timeout estimator and
	// timers of the triggers FNV-hashed onto it; untainted ψ updates are
	// broadcast so every shard sees the same controller state. Because
	// triggers partition disjointly and the broadcast preserves
	// submission order, verdicts, traces and aggregate counters are
	// identical at any shard count for a fixed seed (with Adaptive on,
	// each shard tracks its own trigger population's latency, so adaptive
	// deadlines may legitimately differ across shard counts).
	Shards int
	// NoStateAware disables the state-aware consensus refinements
	// (§IV-C A) — an ablation knob: all conflicting replicas count
	// toward conviction regardless of their snapshots, and omission
	// exemptions are skipped. Expect higher false-positive rates under
	// eventually-consistent churn.
	NoStateAware bool
	// Metrics receives the validator's counters and detection-time
	// distributions; nil falls back to a private registry so the accessor
	// methods keep working with nothing scraped.
	Metrics *obs.Registry
	// Tracer records a "validate" span per trigger and closes the root
	// span with the verdict; nil disables tracing at zero hot-path cost.
	Tracer *obs.Tracer
	// Recorder is the always-on flight recorder: every submit, response
	// arrival, ψ update, timer expiry and verdict lands in its fixed ring
	// for post-mortem dumps. nil disables recording at zero hot-path
	// cost; with a recorder set the Submit path stays allocation-free
	// (TestSubmitRecorderBoundedAlloc pins it).
	Recorder *obs.Recorder
}

// Validator is JURY's out-of-band response validator (Algorithm 1),
// refactored into a thin dispatch plane over per-taint state shards: the
// consensus/sanity/policy cascade itself is unchanged, but every mutable
// structure (pending map, Ψ, timers, EWMA) lives on exactly one vshard.
// Aggregate accessors merge shard state through atomics and immutable
// snapshots, so they are safe to call while another goroutine owns the
// decision loop (the live wire service and the parallel shard plane both
// do).
type Validator struct {
	eng     *simnet.Engine
	cfg     ValidatorConfig
	members *cluster.Membership
	reg     *obs.Registry
	tracer  *obs.Tracer
	rec     *obs.Recorder

	// Policy is the optional POLICY_CHECK hook.
	Policy PolicyFunc
	// NonDetExempt, when set, marks responses from applications known to
	// be non-deterministic: conflicting slots whose primary response is
	// exempt are labeled non-deterministic instead of faulty. This
	// implements the mitigation the paper leaves as future work
	// (§VIII-2: "identify actions from non-deterministic applications").
	NonDetExempt func(Response) bool
	// OnTimeoutResponses, when set, observes the response set of every
	// trigger decided by timer expiry (diagnostics).
	OnTimeoutResponses func(id trigger.ID, responses []Response)
	// OnResult observes every decision.
	OnResult func(Result)

	// shards are the per-taint state partitions; Submit dispatches by
	// FNV over the trigger ID.
	shards []*vshard

	// Aggregates. The counters live in the obs registry so a live
	// /metrics endpoint can scrape them; the accessors below are thin
	// reads over the same instances.
	Detections metrics.Distribution // detection time per decided trigger
	// DetectionsExternal records detection time for external triggers
	// only (the population of Figs. 4a-4d).
	DetectionsExternal metrics.Distribution
	totalDecided       *obs.Counter
	totalValid         *obs.Counter
	totalFaults        *obs.Counter
	totalNonDet        *obs.Counter
	totalTimeouts      *obs.Counter
	lateResponses      *obs.Counter
	// pendingG counts open pending entries across shards; an atomic
	// gauge, so Pending() is safe under concurrent Submit.
	pendingG *obs.Gauge
	// alarms retains fault results as a single-writer snapshot log, so
	// Alarms() is safe under concurrent Submit.
	alarms obs.Log[Result]
}

// NewValidator creates a validator. members provides governance information
// for destination and sanity checks.
func NewValidator(eng *simnet.Engine, members *cluster.Membership, cfg ValidatorConfig) *Validator {
	if cfg.Timeout <= 0 {
		cfg.Timeout = 250 * time.Millisecond
	}
	if cfg.MaxAlarms <= 0 {
		cfg.MaxAlarms = 16384
	}
	if cfg.AdaptiveFactor <= 0 {
		cfg.AdaptiveFactor = 4
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	v := &Validator{
		eng:     eng,
		cfg:     cfg,
		members: members,
		reg:     reg,
		tracer:  cfg.Tracer,
		rec:     cfg.Recorder,
	}
	v.totalDecided = reg.Counter("jury_validator_decided_total", "Triggers decided.")
	v.totalValid = reg.Counter("jury_validator_valid_total", "Triggers judged valid.")
	v.totalFaults = reg.Counter("jury_validator_faults_total", "Alarms raised (fault verdicts).")
	v.totalNonDet = reg.Counter("jury_validator_nondeterministic_total", "Triggers labeled non-deterministic.")
	v.totalTimeouts = reg.Counter("jury_validator_timeouts_total", "Decisions forced by timer expiry.")
	v.lateResponses = reg.Counter("jury_validator_late_responses_total", "Responses arriving after the verdict.")
	v.pendingG = reg.Gauge("jury_validator_pending", "Triggers awaiting decision.")
	reg.Histogram("jury_validator_detection_seconds", "Detection time per decided trigger.", &v.Detections)
	reg.Histogram("jury_validator_detection_external_seconds", "Detection time for external triggers (Figs. 4a-4d).", &v.DetectionsExternal)
	v.shards = make([]*vshard, cfg.Shards)
	for i := range v.shards {
		s := &vshard{
			v:       v,
			id:      i,
			psi:     make(map[store.NodeID]psiState),
			pending: make(map[trigger.ID]*pendingTrigger),
		}
		if cfg.Shards > 1 {
			// Per-shard children of the validator families; the
			// unlabeled aggregates above keep their PR 4 identity.
			l := obs.L("shard", strconv.Itoa(i))
			s.pendingG = reg.Gauge("jury_validator_shard_pending", "Triggers awaiting decision, per shard.", l)
			s.decidedC = reg.Counter("jury_validator_shard_decided_total", "Triggers decided, per shard.", l)
			s.faultsC = reg.Counter("jury_validator_shard_faults_total", "Alarms raised, per shard.", l)
		} else {
			// Unregistered zero-value instances keep the hot path free
			// of nil checks without polluting single-shard /metrics.
			s.pendingG = &obs.Gauge{}
			s.decidedC = &obs.Counter{}
			s.faultsC = &obs.Counter{}
		}
		v.shards[i] = s
	}
	return v
}

// Metrics returns the registry holding the validator's counters, for
// exposition.
func (v *Validator) Metrics() *obs.Registry { return v.reg }

// Recorder returns the flight recorder (nil when recording is disabled).
func (v *Validator) Recorder() *obs.Recorder { return v.rec }

// Config returns the validator configuration.
func (v *Validator) Config() ValidatorConfig { return v.cfg }

// Decided returns the number of triggers decided.
func (v *Validator) Decided() int64 { return v.totalDecided.Value() }

// Valid returns the number of triggers judged valid.
func (v *Validator) Valid() int64 { return v.totalValid.Value() }

// Faults returns the number of alarms raised.
func (v *Validator) Faults() int64 { return v.totalFaults.Value() }

// NonDeterministic returns the number of triggers labeled non-deterministic.
func (v *Validator) NonDeterministic() int64 { return v.totalNonDet.Value() }

// Timeouts returns the number of decisions forced by timer expiry.
func (v *Validator) Timeouts() int64 { return v.totalTimeouts.Value() }

// FalsePositiveRate returns alarms / decisions — meaningful on benign runs.
func (v *Validator) FalsePositiveRate() float64 {
	decided := v.totalDecided.Value()
	if decided == 0 {
		return 0
	}
	return float64(v.totalFaults.Value()) / float64(decided)
}

// evaluate implements the consensus core. When final is false it only
// reports conclusive early outcomes; at expiry (final=true) it always
// returns a result.
func (v *Validator) evaluate(p *pendingTrigger, final bool) (Result, bool) {
	kind := trigger.Internal
	if p.tainted || p.responses > v.cfg.K+2 {
		kind = trigger.External
	}
	res := Result{Kind: kind, Verdict: VerdictValid}

	primaryID := p.primary
	primary := v.primaryResponses(p, primaryID)

	if len(primary) == 0 {
		if !final {
			// No-op consensus: every one of the k replicated executions
			// completed without side-effects, so the expected primary
			// behaviour is silence; nothing further to wait for.
			if kind == trigger.External && v.taintedResponders(p) >= v.cfg.K &&
				v.secondariesWithEffects(p) == 0 {
				return res, true
			}
			return Result{}, false
		}
		if kind == trigger.External && p.tainted {
			// A primary producing no side-effects is indistinguishable
			// from one that never responded — unless the secondaries'
			// replicated executions were also side-effect-free, in which
			// case the consensus is a legitimate no-op. A single
			// secondary with side-effects may simply have replayed from
			// stale state, so conviction requires a quorum of
			// secondaries agreeing that action was required, at least
			// one of them executing from the primary's last known state
			// (state-aware omission, §IV-C A).
			if v.secondariesWithEffects(p) < quorumOf(v.cfg.K) {
				return res, true
			}
			// State-aware mitigation (§IV-C A), applied to network-only
			// evidence: deliveries (PACKET_OUTs) depend on lookups that
			// race with store replication, so they convict only when
			// some effect-producing secondary executed from the
			// primary's last known state (Ψ[primary] at trigger open).
			// Cache-write evidence is the deterministic, state-logged
			// action class the paper validates and convicts directly.
			if !v.cfg.NoStateAware && !v.cacheEffectsPresent(p) &&
				p.primaryPsiSet && p.primaryPsi.seen &&
				!v.effectFromState(p, p.primaryPsi.digest) {
				return res, true
			}
			// Secondaries produced side-effects; the primary never did:
			// response omission or timing fault; the lack of taint
			// identifies the offender (§VII-A1(1)).
			res.Verdict = VerdictFault
			res.Fault = FaultOmission
			res.Offender = primaryID
			res.Reason = "no primary response before validation timeout"
			return res, true
		}
		// Internal trigger with no responses should not happen (the
		// trigger exists because a response arrived); treat as valid.
		return res, true
	}

	quorum := quorumOf(v.cfg.K)

	switch kind {
	case trigger.External:
		// The paper's validator waits for responses from all replicas
		// before checking for controllers with equivalent network view
		// (§VII-A): an early decision therefore requires the full
		// complement of k replicated executions, which is what makes
		// detection time grow with k and with slow (faulty) replicas.
		if !final && v.taintedResponders(p) < v.cfg.K {
			return Result{}, false
		}
		r, conclusive := v.consensusExternal(p, primary, primaryID, quorum, final)
		if !conclusive {
			return Result{}, false
		}
		res = r
	default:
		r, conclusive := v.consensusInternal(p, primary, primaryID, quorum, final)
		if !conclusive {
			return Result{}, false
		}
		res = r
	}
	if res.Verdict == VerdictFault {
		res.Kind = kind
		return res, true
	}

	// SANITY_CHECK: network writes must be consistent with cache state.
	sres, bad, complete := v.sanityCheck(p, primary, final)
	if bad {
		sres.Kind = kind
		return sres, true
	}
	if !final && !complete {
		return Result{}, false
	}

	// POLICY_CHECK on the primary's responses.
	if v.Policy != nil {
		for _, pr := range primary {
			if name, violated := v.Policy(kind, primaryID, pr); violated {
				return Result{
					Kind:     kind,
					Verdict:  VerdictFault,
					Fault:    FaultPolicy,
					Offender: primaryID,
					Reason:   "policy violation: " + name,
				}, true
			}
		}
	}
	res.Kind = kind
	return res, true
}

// primaryResponses collects the primary controller's own (untainted)
// responses.
func (v *Validator) primaryResponses(p *pendingTrigger, primaryID store.NodeID) []Response {
	var out []Response
	for _, r := range p.byController[primaryID] {
		if !r.Tainted {
			out = append(out, r)
		}
	}
	// Untainted responses from other controllers (e.g. the master of a
	// remote switch materializing the primary's FlowsDB write) also count
	// as authoritative cluster actions for this trigger. Controllers are
	// visited in ID order: the collected responses feed the sanity check,
	// whose first-mismatch verdict depends on their order.
	for _, id := range controllerIDs(p) {
		if id == primaryID {
			continue
		}
		for _, r := range p.byController[id] {
			if !r.Tainted && r.Kind == NetworkWrite {
				out = append(out, r)
			}
		}
	}
	return out
}

// controllerIDs returns the trigger's responders in sorted order so
// order-sensitive consumers visit controllers deterministically.
func controllerIDs(p *pendingTrigger) []store.NodeID {
	ids := make([]store.NodeID, 0, len(p.byController))
	for id := range p.byController {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// sortedKeys returns a response map's keys in sorted order; per-slot
// verdict loops report the first faulting slot, so evaluation order must
// not depend on map iteration.
func sortedKeys(m map[string]Response) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// consensusExternal validates the primary's side-effects against the
// independent replicated executions of the secondaries, slot by slot.
func (v *Validator) consensusExternal(p *pendingTrigger, primary []Response, primaryID store.NodeID, quorum int, final bool) (Result, bool) {
	slots := make(map[string]Response)
	for _, r := range primary {
		if r.Kind == NetworkWrite && r.MsgType == openflow.TypeFlowMod {
			// FLOW_MODs materialize from the flow cache, which
			// secondaries never write (side-effect suppression), so no
			// replicated execution can vouch for this slot directly:
			// it is validated against the replicated cache copies by
			// SANITY_CHECK instead.
			continue
		}
		if r.Kind == CacheUpdate || r.Kind == NetworkWrite {
			slots[r.Slot()] = r
		}
	}
	if len(slots) == 0 {
		// Primary reported only no-ops; nothing to validate.
		return Result{Verdict: VerdictValid}, final
	}
	allAgreed := true
	for _, slot := range sortedKeys(slots) {
		pr := slots[slot]
		agree, sameStateConflicts, _ := v.tally(p, pr, slot, primaryID)
		// A conflicting quorum is reached either by secondaries sharing
		// the primary's pre-trigger state, or by a group of secondaries
		// with equivalent views among themselves that independently
		// computed the same different answer.
		if g := v.conflictGroup(p, pr, slot, primaryID); g > sameStateConflicts {
			sameStateConflicts = g
		}
		if sameStateConflicts >= quorum {
			// Known non-deterministic applications are exempt from
			// conviction (§VIII-2 future work).
			if v.NonDetExempt != nil && v.NonDetExempt(pr) {
				return Result{Verdict: VerdictNonDeterministic}, true
			}
			// Non-determinism check (§IV-C B): when every response on
			// the slot is pairwise distinct, the application logic is
			// non-deterministic and the action is labeled non-faulty
			// rather than convicted.
			if v.allDistinct(p, slot) {
				return Result{Verdict: VerdictNonDeterministic}, true
			}
			return Result{
				Verdict:  VerdictFault,
				Fault:    FaultValue,
				Offender: primaryID,
				Reason:   fmt.Sprintf("slot %s: %d same-state replicas contradict the primary", slot, sameStateConflicts),
			}, true
		}
		if agree+1 < quorum { // +1 for the primary itself
			allAgreed = false
			if final {
				// Non-determinism check (§IV-C B): all responses on this
				// slot pairwise distinct → non-deterministic app logic.
				if v.allDistinct(p, slot) {
					return Result{Verdict: VerdictNonDeterministic}, true
				}
				// Only same-state counter-evidence convicts: replicas
				// whose snapshot differed from the primary's are
				// excluded to avert false positives from transient
				// state asynchrony (§IV-C A).
				counter := sameStateConflicts + v.sameStateNoops(p, pr)
				if g := v.conflictGroup(p, pr, slot, primaryID); g > counter {
					counter = g
				}
				if counter >= quorum {
					return Result{
						Verdict:  VerdictFault,
						Fault:    FaultValue,
						Offender: primaryID,
						Reason:   fmt.Sprintf("slot %s: majority of same-state replicas disagree with the primary", slot),
					}, true
				}
				// Insufficient counter-evidence: accept.
			}
		}
	}
	if !allAgreed && !final {
		return Result{}, false
	}
	return Result{Verdict: VerdictValid}, true
}

// consensusInternal validates internal triggers: the k+1 cache-update
// copies must agree (they are replicas of one event, so disagreement means
// corruption in flight or at a replica).
func (v *Validator) consensusInternal(p *pendingTrigger, primary []Response, primaryID store.NodeID, quorum int, final bool) (Result, bool) {
	slots := make(map[string]Response)
	for _, r := range primary {
		if r.Kind == CacheUpdate {
			slots[r.Slot()] = r
		}
	}
	for _, slot := range sortedKeys(slots) {
		pr := slots[slot]
		conflicts := 0
		//jurylint:allow maprange -- commutative conflict count; visit order cannot change it
		for id, rs := range p.byController {
			if id == primaryID {
				continue
			}
			for _, r := range rs {
				if r.Kind != CacheUpdate || r.Slot() != slot {
					continue
				}
				if r.Body() != pr.Body() {
					conflicts++
				}
			}
		}
		if conflicts > 0 {
			return Result{
				Verdict:  VerdictFault,
				Fault:    FaultValue,
				Offender: primaryID,
				Reason:   fmt.Sprintf("slot %s: replica cache copies diverge", slot),
			}, true
		}
	}
	// An internal trigger's response complement is not knowable up
	// front (more cache writes may still arrive), so a clean verdict
	// waits for the timer (Algorithm 1 decides internal triggers at
	// expiry).
	if !final {
		return Result{}, false
	}
	_ = quorum
	return Result{Verdict: VerdictValid}, true
}

// tally counts, for one slot, secondaries agreeing with the primary's body
// and conflicting responses (split by state equivalence, §IV-C A).
func (v *Validator) tally(p *pendingTrigger, pr Response, slot string, primaryID store.NodeID) (agree, sameStateConflicts, anyConflicts int) {
	want := pr.Body()
	//jurylint:allow maprange -- commutative tally; per-controller counts do not depend on visit order
	for id, rs := range p.byController {
		if id == primaryID {
			continue
		}
		matched := false
		conflicted := false
		sameState := false
		for _, r := range rs {
			if r.Slot() != slot || r.Kind == ExecDone {
				continue
			}
			if r.Body() == want {
				matched = true
				continue
			}
			conflicted = true
			if v.cfg.NoStateAware || equivState(r, pr) {
				sameState = true
			}
		}
		switch {
		case matched:
			agree++
		case conflicted:
			anyConflicts++
			if sameState {
				sameStateConflicts++
			}
		}
	}
	return agree, sameStateConflicts, anyConflicts
}

// conflictGroup returns the size of the largest set of secondaries that
// disagree with the primary on a slot while agreeing with each other on
// both the response body and their own state snapshot — an
// equivalent-view consensus contradicting the primary.
func (v *Validator) conflictGroup(p *pendingTrigger, pr Response, slot string, primaryID store.NodeID) int {
	want := pr.Body()
	groups := make(map[string]map[store.NodeID]bool)
	//jurylint:allow maprange -- commutative grouping; membership sets do not depend on visit order
	for id, rs := range p.byController {
		if id == primaryID {
			continue
		}
		for _, r := range rs {
			if r.Slot() != slot || r.Kind == ExecDone {
				continue
			}
			body := r.Body()
			if body == want {
				continue
			}
			// Group conviction applies to cache slots, where the
			// per-entry prior value pins the view the group acted from;
			// network responses (deliveries) depend on racy lookups and
			// only count when their whole-store snapshot matches the
			// primary's (handled by the per-replica tally).
			if !r.IsCache() && !v.cfg.NoStateAware && !equivState(r, pr) {
				continue
			}
			// A group of replicas that is *behind* the primary (fewer
			// events applied at replay time) merely replayed from stale
			// state; only groups at least as current as the primary can
			// contradict it.
			if !v.cfg.NoStateAware && r.StateApplied < pr.StateApplied {
				continue
			}
			key := fmt.Sprintf("%s|%s", stateKey(r), body)
			set := groups[key]
			if set == nil {
				set = make(map[store.NodeID]bool)
				groups[key] = set
			}
			set[id] = true
		}
	}
	best := 0
	//jurylint:allow maprange -- commutative max; visit order cannot change the largest size
	for _, set := range groups {
		if len(set) > best {
			best = len(set)
		}
	}
	return best
}

// equivState reports whether two responses were produced from equivalent
// views: for cache writes, both responders saw the same prior value of the
// acted-on entry (the per-entry refinement of Ψ's "latest update"); for
// other responses, the whole-store snapshot digests must match.
func equivState(a, b Response) bool {
	if a.IsCache() && b.IsCache() {
		return a.PrevOK == b.PrevOK && a.Prev == b.Prev
	}
	return a.StateDigest == b.StateDigest
}

// stateKey renders the comparable view of a response for grouping.
func stateKey(r Response) string {
	if r.IsCache() {
		if !r.PrevOK {
			return "absent"
		}
		return "prev:" + r.Prev
	}
	return fmt.Sprintf("digest:%x", r.StateDigest)
}

// sameStateNoops counts secondaries that reported a no-op execution from
// the same pre-trigger state as the primary's response.
func (v *Validator) sameStateNoops(p *pendingTrigger, pr Response) int {
	count := 0
	for _, r := range p.all {
		if r.Kind == ExecDone && r.StateDigest == pr.StateDigest {
			count++
		}
	}
	return count
}

// quorumOf returns the majority threshold over the k+1 participants.
func quorumOf(k int) int { return k/2 + 1 }

// taintedResponders counts distinct controllers that reported replicated
// execution (side-effects or ExecDone) for the trigger.
func (v *Validator) taintedResponders(p *pendingTrigger) int {
	count := 0
	//jurylint:allow maprange -- commutative count of distinct responders
	for id, rs := range p.byController {
		_ = id
		for _, r := range rs {
			if r.Tainted {
				count++
				break
			}
		}
	}
	return count
}

// cacheEffectsPresent reports whether any replicated execution produced a
// cache-write side-effect.
func (v *Validator) cacheEffectsPresent(p *pendingTrigger) bool {
	for _, r := range p.all {
		if r.Tainted && r.Kind != ExecDone && r.IsCache() {
			return true
		}
	}
	return false
}

// effectFromState reports whether some side-effect-producing secondary
// executed from the given state snapshot.
func (v *Validator) effectFromState(p *pendingTrigger, digest uint64) bool {
	for _, r := range p.all {
		if r.Tainted && r.Kind != ExecDone && r.StateDigest == digest {
			return true
		}
	}
	return false
}

// secondariesWithEffects counts distinct secondaries whose replicated
// execution produced at least one side-effect.
func (v *Validator) secondariesWithEffects(p *pendingTrigger) int {
	seen := make(map[store.NodeID]bool)
	for _, r := range p.all {
		if r.Tainted && r.Kind != ExecDone {
			seen[r.Controller] = true
		}
	}
	return len(seen)
}

// allDistinct reports whether every response on a slot has a unique body.
func (v *Validator) allDistinct(p *pendingTrigger, slot string) bool {
	seen := make(map[string]bool)
	for _, r := range p.all {
		if r.Slot() != slot || r.Kind == ExecDone {
			continue
		}
		if seen[r.Body()] {
			return false
		}
		seen[r.Body()] = true
	}
	return len(seen) > 1
}

// sanityCheck asserts cache/network consistency for the primary's
// responses: every non-delete FlowsDB cache write must be matched by an
// equivalent FLOW_MOD on the network, and every FLOW_MOD must be backed by
// a cache write (§II-A3).
func (v *Validator) sanityCheck(p *pendingTrigger, primary []Response, final bool) (res Result, bad, complete bool) {
	var (
		cacheRules = make(map[string]Response) // canonical net body -> cache response
		netWrites  []Response
	)
	for _, r := range primary {
		switch r.Kind {
		case CacheUpdate:
			if r.Cache == store.FlowsDB && r.Op != store.OpDelete {
				if body, dpid, ok := expectedNetBody(r); ok {
					cacheRules["net|"+dpid.String()+"|FLOW_MOD|"+body] = r
				}
			}
		case NetworkWrite:
			if r.MsgType == openflow.TypeFlowMod {
				netWrites = append(netWrites, r)
			}
		}
	}
	// Every FLOW_MOD must correspond to a cache rule.
	for _, nw := range netWrites {
		key := "net|" + nw.DPID.String() + "|FLOW_MOD|" + nw.MsgBody
		if _, ok := cacheRules[key]; ok {
			delete(cacheRules, key)
			continue
		}
		if len(cacheRules) > 0 {
			// A cache rule exists but the network write differs: the
			// network write is inconsistent with the replicated cache
			// state (T2, e.g. the undesirable-FLOW_MOD fault).
			return Result{
				Verdict:  VerdictFault,
				Fault:    FaultInconsistent,
				Offender: nw.Controller,
				Reason:   fmt.Sprintf("FLOW_MOD to %s disagrees with FlowsDB state", nw.DPID),
			}, true, true
		}
		return Result{
			Verdict:  VerdictFault,
			Fault:    FaultNetworkOnly,
			Offender: nw.Controller,
			Reason:   fmt.Sprintf("FLOW_MOD to %s without any cache update", nw.DPID),
		}, true, true
	}
	// Remaining cache rules lack their FLOW_MOD. Before the timeout this
	// just means we must keep waiting; at expiry it is a T2 fault when the
	// target switch has a live master that should have acted.
	if len(cacheRules) > 0 {
		if !final {
			return Result{}, false, false
		}
		// Sorted so the same orphaned rule is convicted on every run.
		for _, key := range sortedKeys(cacheRules) {
			cr := cacheRules[key]
			if rule, err := controller.DecodeFlowRule(cr.Value); err == nil {
				if master, ok := v.members.Master(rule.DPID); ok && v.members.IsAlive(master) {
					return Result{
						Verdict:  VerdictFault,
						Fault:    FaultMissingNetwork,
						Offender: master,
						Reason:   fmt.Sprintf("FlowsDB rule for %s never written to the network", rule.DPID),
					}, true, true
				}
			}
		}
	}
	return Result{}, false, true
}

// expectedNetBody derives the canonical FLOW_MOD body a FlowsDB cache
// entry should produce on the wire.
func expectedNetBody(r Response) (body string, dpid topo.DPID, ok bool) {
	rule, err := controller.DecodeFlowRule(r.Value)
	if err != nil {
		return "", 0, false
	}
	return CanonicalMessage(rule.FlowMod(0)), rule.DPID, true
}
