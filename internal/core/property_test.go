package core

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"github.com/jurysdn/jury/internal/cluster"
	"github.com/jurysdn/jury/internal/simnet"
	"github.com/jurysdn/jury/internal/store"
	"github.com/jurysdn/jury/internal/topo"
	"github.com/jurysdn/jury/internal/trigger"
)

// TestPropertyAgreementNeverConvicts: any trigger where the primary and all
// secondaries produce identical bodies from identical states must be
// decided valid, whatever the ordering of arrivals.
func TestPropertyAgreementNeverConvicts(t *testing.T) {
	f := func(orderSeed int64, value uint8, digest uint64) bool {
		eng, v := propValidator(2)
		var res *Result
		v.OnResult = func(r Result) { res = &r }
		body := fmt.Sprintf("v%d", value)
		responses := []Response{
			cacheResp(1, 1, "τ", "k", body, digest),
			execResp(2, 1, "τ", "k", body, digest),
			execResp(3, 1, "τ", "k", body, digest),
		}
		rng := rand.New(rand.NewSource(orderSeed))
		rng.Shuffle(len(responses), func(i, j int) {
			responses[i], responses[j] = responses[j], responses[i]
		})
		for _, r := range responses {
			v.Submit(r)
		}
		if err := eng.RunUntilIdle(); err != nil {
			return false
		}
		return res != nil && res.Verdict == VerdictValid
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyConvictionNeedsQuorum: fewer than quorum conflicting
// secondaries must never convict the primary on a value fault.
func TestPropertyConvictionNeedsQuorum(t *testing.T) {
	f := func(k8 uint8, digest uint64) bool {
		k := int(k8%5) + 2 // k in [2,6]
		eng, v := propValidator(k)
		var res *Result
		v.OnResult = func(r Result) { res = &r }
		v.Submit(cacheResp(1, 1, "τ", "key", "primary-answer", digest))
		// quorum-1 same-state conflicts, the rest agree.
		quorum := k/2 + 1
		id := store.NodeID(2)
		for i := 0; i < quorum-1; i++ {
			v.Submit(execResp(id, 1, "τ", "key", "other-answer", digest))
			id++
		}
		for int(id) <= k+1 {
			v.Submit(execResp(id, 1, "τ", "key", "primary-answer", digest))
			id++
		}
		if err := eng.RunUntilIdle(); err != nil {
			return false
		}
		return res != nil && res.Verdict != VerdictFault
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyEveryTriggerDecidesExactlyOnce: whatever mix of responses
// arrives, each trigger id decides exactly once and the validator holds no
// permanently pending state.
func TestPropertyEveryTriggerDecidesExactlyOnce(t *testing.T) {
	f := func(raw []uint8) bool {
		eng, v := propValidator(2)
		decided := make(map[trigger.ID]int)
		v.OnResult = func(r Result) { decided[r.Trigger]++ }
		triggers := make(map[trigger.ID]bool)
		for i, b := range raw {
			trig := trigger.ID(fmt.Sprintf("τ%d", b%16))
			triggers[trig] = true
			ctrl := store.NodeID(b%3 + 1)
			var r Response
			switch (b / 16) % 4 {
			case 0:
				r = cacheResp(ctrl, 1, string(trig), "k", fmt.Sprintf("v%d", i%3), uint64(b))
			case 1:
				r = execResp(ctrl, 1, string(trig), "k", fmt.Sprintf("v%d", i%2), uint64(b))
			case 2:
				r = doneResp(ctrl, 1, string(trig), uint64(b))
			case 3:
				r = Response{Controller: ctrl, Primary: 1, Trigger: trig, Kind: NetworkWrite, DPID: 1, MsgType: 13, MsgBody: "packetout"}
			}
			v.Submit(r)
			// Occasionally advance time so some triggers expire mid-stream.
			if i%7 == 0 {
				_ = eng.Run(eng.Now() + 30*time.Millisecond)
			}
		}
		if err := eng.RunUntilIdle(); err != nil {
			return false
		}
		for trig := range triggers {
			if decided[trig] != 1 {
				return false
			}
		}
		// Grace-period entries may remain briefly but must all be decided.
		return int(v.Decided()) == len(triggers)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyDetectionWithinTimeout: no decision can take longer than the
// configured validation timeout (plus zero slack — the timer is the hard
// deadline of §IV-C C).
func TestPropertyDetectionWithinTimeout(t *testing.T) {
	f := func(raw []uint8) bool {
		eng, v := propValidator(2)
		ok := true
		v.OnResult = func(r Result) {
			if r.DetectionTime > v.Config().Timeout {
				ok = false
			}
		}
		for i, b := range raw {
			trig := fmt.Sprintf("τ%d", b%8)
			v.Submit(cacheResp(store.NodeID(b%3+1), 1, trig, "k", fmt.Sprintf("v%d", i%4), uint64(b%5)))
			if i%5 == 0 {
				_ = eng.Run(eng.Now() + 20*time.Millisecond)
			}
		}
		if err := eng.RunUntilIdle(); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func propValidator(k int) (*simnet.Engine, *Validator) {
	eng := simnet.NewEngine(1)
	var ids []store.NodeID
	for i := 1; i <= k+1; i++ {
		ids = append(ids, store.NodeID(i))
	}
	members := cluster.NewMembership(cluster.AnyControllerOneMaster, ids, []topo.DPID{1})
	return eng, NewValidator(eng, members, ValidatorConfig{K: k, Timeout: 100 * time.Millisecond})
}

func TestNonDetExemptHook(t *testing.T) {
	_, v := newValidator(t, 2)
	v.NonDetExempt = func(r Response) bool { return r.Cache == store.LinksDB }
	var res *Result
	v.OnResult = func(r Result) { res = &r }
	// Same-state quorum contradiction, but the slot is exempt.
	v.Submit(cacheResp(1, 1, "τ", "k", "down", 7))
	v.Submit(execResp(2, 1, "τ", "k", "up", 7))
	v.Submit(execResp(3, 1, "τ", "k", "up", 7))
	if res == nil || res.Verdict != VerdictNonDeterministic {
		t.Fatalf("res = %+v, want non-deterministic exemption", res)
	}
}
