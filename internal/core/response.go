// Package core implements JURY itself (§IV): the replicator that
// intercepts and replicates external triggers to k random secondary
// controllers, the per-controller module that taints replicated triggers,
// suppresses secondary side-effects and intercepts cache/network writes,
// and the out-of-band validator that runs Algorithm 1 — state-aware
// consensus, sanity checks between cache and network side-effects, and
// policy checks — raising alarms with precise action attribution.
package core

import (
	"fmt"
	"strings"
	"time"

	"github.com/jurysdn/jury/internal/controller"
	"github.com/jurysdn/jury/internal/openflow"
	"github.com/jurysdn/jury/internal/store"
	"github.com/jurysdn/jury/internal/topo"
	"github.com/jurysdn/jury/internal/trigger"
)

// ResponseKind classifies a controller response delivered to the validator.
type ResponseKind uint8

// Response kinds.
const (
	// CacheUpdate is a cache event applied at a controller's replica
	// (flows 3c in Fig. 2).
	CacheUpdate ResponseKind = iota + 1
	// NetworkWrite is an outgoing southbound message from a primary
	// controller (flow 4c).
	NetworkWrite
	// SecondaryExec is a captured (and suppressed) side-effect from the
	// replicated execution at a secondary controller (flow 1c).
	SecondaryExec
	// ExecDone marks the completion of a replicated execution that
	// produced no side-effects, letting the validator distinguish
	// no-op consensus from response omission.
	ExecDone
)

// String names the kind.
func (k ResponseKind) String() string {
	switch k {
	case CacheUpdate:
		return "cache"
	case NetworkWrite:
		return "network"
	case SecondaryExec:
		return "exec"
	case ExecDone:
		return "done"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Response is one entry ρ = (id, τ, entry) of Algorithm 1, extended with
// the self-reported state snapshot used for state-aware consensus
// (§IV-C A).
type Response struct {
	Controller store.NodeID
	Trigger    trigger.ID
	Kind       ResponseKind
	// Tainted marks responses from replicated execution (§IV-B(1)).
	Tainted bool
	// Primary identifies the controller that received the original
	// trigger (attribution, §IV-B).
	Primary store.NodeID

	// Cache-entry body (CacheUpdate, or SecondaryExec of a cache write).
	Cache store.CacheName
	Op    store.Op
	Key   string
	Value string

	// Network-write body (NetworkWrite, or SecondaryExec of an egress).
	DPID    topo.DPID
	MsgType openflow.MsgType
	// MsgBody is the canonical form of the network message for
	// comparison and policy evaluation.
	MsgBody string
	// WireLen is the encoded message size, for overhead accounting.
	WireLen int

	// State snapshot of the responding controller (order-insensitive
	// digest plus applied-event count).
	StateDigest  uint64
	StateApplied uint64
	// Prev/PrevOK report the acted-on entry's value at the responder
	// immediately before the write — the per-entry refinement of Ψ's
	// "copy of the latest update" used for equivalent-view comparison.
	Prev   string
	PrevOK bool

	// At is the virtual submission timestamp. It crosses the wire as-is:
	// the protocol's documented time base is virtual nanoseconds since
	// simulation/service start on both ends.
	At time.Duration // vclock:wire -- protocol time base is virtual ns

	// free marks responses that ride an existing replication stream
	// (cache updates) and therefore cost no additional network traffic.
	free bool
}

// IsCache reports whether the response body is a cache entry.
func (r Response) IsCache() bool {
	return r.Kind == CacheUpdate || (r.Kind == SecondaryExec && r.Cache != "")
}

// Body returns the canonical response body used for consensus comparison:
// identical side-effects produce identical bodies regardless of which
// controller produced them.
func (r Response) Body() string {
	if r.Kind == ExecDone {
		return "done"
	}
	if r.IsCache() {
		return "cache|" + string(r.Cache) + "|" + r.Op.String() + "|" + r.Key + "|" + normalizeValue(r.Cache, r.Value)
	}
	return "net|" + r.DPID.String() + "|" + r.MsgType.String() + "|" + r.MsgBody
}

// Slot returns the comparison slot within a trigger: triggers may elicit
// several side-effects (one flow rule per path switch), and consensus is
// evaluated per slot.
func (r Response) Slot() string {
	if r.Kind == ExecDone {
		return "done"
	}
	if r.IsCache() {
		return "cache|" + string(r.Cache) + "|" + r.Key
	}
	return "net|" + r.DPID.String() + "|" + r.MsgType.String()
}

// Size estimates the validator-bound wire size in bytes. Replicated
// execution responses cross the wire as body digests plus the slot key —
// consensus only needs equality, and the primary's full entries reach the
// validator through the tapped cache-replication stream — while primary
// network writes carry their canonical form for the sanity check.
func (r Response) Size() int {
	if r.Kind == ExecDone {
		return 40
	}
	if r.Tainted {
		return 48 + len(r.Key)/4
	}
	return 64 + len(r.MsgBody)/2
}

// normalizeValue strips per-controller attribution (origin, trigger taint)
// from FlowsDB values so that the same rule computed by different replicas
// compares equal.
func normalizeValue(cache store.CacheName, value string) string {
	if cache != store.FlowsDB {
		return value
	}
	rule, err := controller.DecodeFlowRule(value)
	if err != nil {
		return value
	}
	rule.Origin = 0
	rule.Trigger = ""
	rule.State = ""
	return rule.Encode()
}

// CanonicalMessage renders a southbound message for comparison: FLOW_MODs
// by their rule semantics, PACKET_OUTs by their action and payload class.
func CanonicalMessage(msg openflow.Message) string {
	switch m := msg.(type) {
	case *openflow.FlowMod:
		var b strings.Builder
		fmt.Fprintf(&b, "flowmod|%s|prio=%d|%s|", m.Command, m.Priority, m.Match.String())
		for _, a := range m.Actions {
			fmt.Fprintf(&b, "out:%d,", a.Port)
		}
		fmt.Fprintf(&b, "|idle=%d|hard=%d", m.IdleTimeout, m.HardTimeout)
		return b.String()
	case *openflow.PacketOut:
		var b strings.Builder
		b.WriteString("packetout|")
		for _, a := range m.Actions {
			fmt.Fprintf(&b, "out:%d,", a.Port)
		}
		pf, err := openflow.ParsePacket(m.Data, 0)
		if err == nil {
			fmt.Fprintf(&b, "|eth=0x%04x|src=%s|dst=%s", pf.EthType, pf.EthSrc, pf.EthDst)
		}
		return b.String()
	default:
		return strings.ToLower(msg.Type().String())
	}
}
