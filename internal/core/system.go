package core

import (
	"fmt"
	"time"

	"github.com/jurysdn/jury/internal/cluster"
	"github.com/jurysdn/jury/internal/controller"
	"github.com/jurysdn/jury/internal/dataplane"
	"github.com/jurysdn/jury/internal/obs"
	"github.com/jurysdn/jury/internal/openflow"
	"github.com/jurysdn/jury/internal/simnet"
	"github.com/jurysdn/jury/internal/store"
	"github.com/jurysdn/jury/internal/topo"
	"github.com/jurysdn/jury/internal/trigger"
)

// SystemConfig parameterizes a JURY deployment across a cluster.
type SystemConfig struct {
	// K is the replication factor.
	K int
	// Mode is the trigger replication mode (proxy for ONOS, encap for
	// ODL).
	Mode ReplicationMode
	// ReplicatorLatency is the replicator-to-controller one-way delay.
	ReplicatorLatency time.Duration
	// ValidatorLatency is the module-to-validator one-way delay.
	ValidatorLatency time.Duration
	// Validator carries the validator parameters (timeout etc.).
	Validator ValidatorConfig
	// RelayAll disables k+1 sampling of cache-update relays.
	RelayAll bool
	// DecapMean overrides the modeled decapsulation overhead mean for
	// EncapMode.
	DecapMean time.Duration
	// Metrics is the registry shared by the validator, modules and
	// replicators; nil creates one per system.
	Metrics *obs.Registry
	// Tracer records the per-trigger span tree across the whole pipeline;
	// nil disables tracing.
	Tracer *obs.Tracer
	// Recorder is the validator's flight recorder; nil disables flight
	// recording.
	Recorder *obs.Recorder
}

// System assembles a JURY deployment: one module per controller, one
// replicator per switch, and the out-of-band validator.
type System struct {
	eng       *simnet.Engine
	cfg       SystemConfig
	members   *cluster.Membership
	validator *Validator

	modules     map[store.NodeID]*Module
	controllers map[store.NodeID]*controller.Controller
	replicators map[topo.DPID]*Replicator
}

// NewSystem creates a JURY system for the given membership.
func NewSystem(eng *simnet.Engine, members *cluster.Membership, cfg SystemConfig) *System {
	cfg.Validator.K = cfg.K
	if cfg.Metrics == nil {
		cfg.Metrics = obs.NewRegistry()
	}
	cfg.Validator.Metrics = cfg.Metrics
	cfg.Validator.Tracer = cfg.Tracer
	cfg.Validator.Recorder = cfg.Recorder
	return &System{
		eng:         eng,
		cfg:         cfg,
		members:     members,
		validator:   NewValidator(eng, members, cfg.Validator),
		modules:     make(map[store.NodeID]*Module),
		controllers: make(map[store.NodeID]*controller.Controller),
		replicators: make(map[topo.DPID]*Replicator),
	}
}

// Validator returns the out-of-band validator.
func (s *System) Validator() *Validator { return s.validator }

// Metrics returns the registry shared across the deployment's components.
func (s *System) Metrics() *obs.Registry { return s.cfg.Metrics }

// Tracer returns the system tracer (nil when tracing is disabled).
func (s *System) Tracer() *obs.Tracer { return s.cfg.Tracer }

// AttachController instruments a controller with a JURY module.
func (s *System) AttachController(ctrl *controller.Controller) *Module {
	mcfg := ModuleConfig{
		K:                s.cfg.K,
		ValidatorLatency: s.cfg.ValidatorLatency,
		RelayAll:         s.cfg.RelayAll,
		Tracer:           s.cfg.Tracer,
	}
	if s.cfg.Mode == EncapMode {
		mcfg.DecapMean = s.cfg.DecapMean
	}
	m := NewModule(s.eng, ctrl, s.validator, mcfg)
	s.modules[ctrl.ID()] = m
	s.controllers[ctrl.ID()] = ctrl
	return m
}

// Module returns the module attached to a controller.
func (s *System) Module(id store.NodeID) (*Module, bool) {
	m, ok := s.modules[id]
	return m, ok
}

// AttachSwitch interposes a replicator on a switch's southbound channel.
// Controllers must be attached first.
func (s *System) AttachSwitch(sw *dataplane.Switch) (*Replicator, error) {
	if len(s.modules) == 0 {
		return nil, fmt.Errorf("core: attach controllers before switches")
	}
	rep := NewReplicator(s.eng, sw.DPID(), s.members, s.modules, s.deliverPrimary, ReplicatorConfig{
		K:       s.cfg.K,
		Mode:    s.cfg.Mode,
		Latency: s.cfg.ReplicatorLatency,
		Metrics: s.cfg.Metrics,
		Tracer:  s.cfg.Tracer,
	})
	sw.SetSendUp(rep.HandleFromSwitch)
	s.replicators[sw.DPID()] = rep
	return rep, nil
}

// Replicator returns the replicator interposed on a switch.
func (s *System) Replicator(dpid topo.DPID) (*Replicator, bool) {
	r, ok := s.replicators[dpid]
	return r, ok
}

// InstallFlowREST submits a northbound flow-install to the target
// controller through JURY's northbound interception.
func (s *System) InstallFlowREST(target store.NodeID, dpid topo.DPID, rule controller.FlowRule) error {
	rep, ok := s.replicators[dpid]
	if !ok {
		return fmt.Errorf("core: no replicator for switch %v", dpid)
	}
	rep.ReplicateREST(target, rule, func(id store.NodeID, rule controller.FlowRule, ctx *trigger.Context) {
		if ctrl, ok := s.controllers[id]; ok {
			ctrl.InstallFlowREST(rule, ctx)
		}
	})
	return nil
}

func (s *System) deliverPrimary(id store.NodeID, dpid topo.DPID, msg openflow.Message, ctx *trigger.Context) {
	if ctrl, ok := s.controllers[id]; ok {
		ctrl.HandleSouthbound(dpid, msg, ctx)
	}
}

// ReplicationBytes totals trigger-replication traffic across replicators.
func (s *System) ReplicationBytes() int64 {
	var total int64
	//jurylint:allow maprange -- commutative sum; visit order cannot change the total
	for _, r := range s.replicators {
		total += r.ReplicatedBytes()
	}
	return total
}

// ValidatorBytes totals module-to-validator traffic.
func (s *System) ValidatorBytes() int64 {
	var total int64
	//jurylint:allow maprange -- commutative sum; visit order cannot change the total
	for _, m := range s.modules {
		total += m.ValidatorBytes()
	}
	return total
}
