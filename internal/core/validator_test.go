package core

import (
	"fmt"
	"testing"
	"time"

	"github.com/jurysdn/jury/internal/cluster"
	"github.com/jurysdn/jury/internal/controller"
	"github.com/jurysdn/jury/internal/openflow"
	"github.com/jurysdn/jury/internal/simnet"
	"github.com/jurysdn/jury/internal/store"
	"github.com/jurysdn/jury/internal/topo"
	"github.com/jurysdn/jury/internal/trigger"
)

func newValidator(t *testing.T, k int) (*simnet.Engine, *Validator) {
	t.Helper()
	eng := simnet.NewEngine(1)
	var ids []store.NodeID
	for i := 1; i <= k+1; i++ {
		ids = append(ids, store.NodeID(i))
	}
	members := cluster.NewMembership(cluster.AnyControllerOneMaster, ids, []topo.DPID{1, 2})
	v := NewValidator(eng, members, ValidatorConfig{K: k, Timeout: 100 * time.Millisecond})
	return eng, v
}

func cacheResp(ctrl, primary store.NodeID, trig string, key, value string, digest uint64) Response {
	return Response{
		Controller:  ctrl,
		Primary:     primary,
		Trigger:     trigger.ID(trig),
		Kind:        CacheUpdate,
		Cache:       store.LinksDB,
		Op:          store.OpCreate,
		Key:         key,
		Value:       value,
		StateDigest: digest,
	}
}

func execResp(ctrl, primary store.NodeID, trig string, key, value string, digest uint64) Response {
	r := cacheResp(ctrl, primary, trig, key, value, digest)
	r.Kind = SecondaryExec
	r.Tainted = true
	return r
}

func doneResp(ctrl, primary store.NodeID, trig string, digest uint64) Response {
	return Response{
		Controller:  ctrl,
		Primary:     primary,
		Trigger:     trigger.ID(trig),
		Kind:        ExecDone,
		Tainted:     true,
		StateDigest: digest,
	}
}

func TestValidatorAgreementIsValid(t *testing.T) {
	eng, v := newValidator(t, 2)
	var results []Result
	v.OnResult = func(r Result) { results = append(results, r) }
	v.Submit(cacheResp(1, 1, "τ", "k", "up", 7))
	v.Submit(execResp(2, 1, "τ", "k", "up", 7))
	v.Submit(execResp(3, 1, "τ", "k", "up", 7))
	if len(results) != 1 {
		t.Fatalf("decided %d times, want early decision", len(results))
	}
	if results[0].Verdict != VerdictValid {
		t.Fatalf("verdict = %v (%s)", results[0].Verdict, results[0].Reason)
	}
	if results[0].TimedOut {
		t.Fatal("should not be a timeout decision")
	}
	_ = eng
}

func TestValidatorExternalClassification(t *testing.T) {
	_, v := newValidator(t, 2)
	var res Result
	v.OnResult = func(r Result) { res = r }
	v.Submit(cacheResp(1, 1, "τ", "k", "up", 7))
	v.Submit(execResp(2, 1, "τ", "k", "up", 7))
	v.Submit(execResp(3, 1, "τ", "k", "up", 7))
	if res.Kind != trigger.External {
		t.Fatalf("kind = %v, want external (tainted responses present)", res.Kind)
	}
}

func TestValidatorSameStateConflictIsFault(t *testing.T) {
	_, v := newValidator(t, 2)
	var res Result
	v.OnResult = func(r Result) { res = r }
	v.Submit(cacheResp(1, 1, "τ", "k", "down", 7)) // primary wrote "down"
	v.Submit(execResp(2, 1, "τ", "k", "up", 7))    // same state, disagree
	v.Submit(execResp(3, 1, "τ", "k", "up", 7))
	if res.Verdict != VerdictFault || res.Fault != FaultValue {
		t.Fatalf("verdict = %v/%v (%s)", res.Verdict, res.Fault, res.Reason)
	}
	if res.Offender != 1 {
		t.Fatalf("offender = C%d", res.Offender)
	}
}

func TestValidatorDifferentStateConflictExcluded(t *testing.T) {
	eng, v := newValidator(t, 2)
	var res *Result
	v.OnResult = func(r Result) { res = &r }
	v.Submit(cacheResp(1, 1, "τ", "k", "down", 7))
	// The secondaries replayed from a different view of the entry (they
	// had already seen a prior value the primary had not) and from
	// mutually different views, so neither the primary-relative nor the
	// group rule reaches a same-state quorum.
	a := execResp(2, 1, "τ", "k", "up", 8)
	a.Prev, a.PrevOK = "stale-a", true
	b := execResp(3, 1, "τ", "k", "up", 9)
	b.Prev, b.PrevOK = "stale-b", true
	v.Submit(a)
	v.Submit(b)
	if res != nil && res.Verdict == VerdictFault {
		t.Fatal("different-state conflicts must not convict early")
	}
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if res == nil {
		t.Fatal("no decision at timeout")
	}
	// At expiry the same-state count is still 0 < quorum: no conviction.
	if res.Verdict == VerdictFault {
		t.Fatalf("transient asynchrony convicted: %s", res.Reason)
	}
}

func TestValidatorOmissionDetected(t *testing.T) {
	eng, v := newValidator(t, 2)
	var res Result
	v.OnResult = func(r Result) { res = r }
	// Secondaries act from the primary's last known state; primary silent.
	v.Submit(Response{Controller: 1, Primary: 1, Trigger: "warm", Kind: CacheUpdate,
		Cache: store.HostDB, Key: "x", Value: "1", StateDigest: 7})
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	v.Submit(execResp(2, 1, "τ", "k", "up", 7))
	v.Submit(execResp(3, 1, "τ", "k", "up", 7))
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if res.Trigger != "τ" {
		t.Fatalf("last decision for %s", res.Trigger)
	}
	if res.Verdict != VerdictFault || res.Fault != FaultOmission || res.Offender != 1 {
		t.Fatalf("res = %+v", res)
	}
}

func TestValidatorNoOpConsensusValid(t *testing.T) {
	_, v := newValidator(t, 2)
	var res *Result
	v.OnResult = func(r Result) { res = &r }
	v.Submit(doneResp(2, 1, "τ", 7))
	v.Submit(doneResp(3, 1, "τ", 7))
	if res == nil {
		t.Fatal("no-op consensus should decide early")
	}
	if res.Verdict != VerdictValid {
		t.Fatalf("verdict = %v", res.Verdict)
	}
}

func TestValidatorSingleLaggardDoesNotConvict(t *testing.T) {
	eng, v := newValidator(t, 2)
	var res Result
	v.OnResult = func(r Result) { res = r }
	// Only one secondary produced effects (< quorum of 2): stale replay.
	v.Submit(execResp(2, 1, "τ", "k", "up", 7))
	v.Submit(doneResp(3, 1, "τ", 8))
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if res.Verdict == VerdictFault {
		t.Fatalf("single laggard convicted the primary: %s", res.Reason)
	}
}

func TestValidatorNonDeterminism(t *testing.T) {
	eng, v := newValidator(t, 2)
	var res Result
	v.OnResult = func(r Result) { res = r }
	v.Submit(cacheResp(1, 1, "τ", "k", "a", 7))
	v.Submit(execResp(2, 1, "τ", "k", "b", 7))
	v.Submit(execResp(3, 1, "τ", "k", "c", 7))
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if res.Verdict != VerdictNonDeterministic {
		t.Fatalf("verdict = %v (%s)", res.Verdict, res.Reason)
	}
}

func ruleFor(dpid topo.DPID, trig string, origin store.NodeID) controller.FlowRule {
	return controller.FlowRule{
		DPID:     dpid,
		Match:    openflow.ExactDst(topo.HostMAC(2)),
		Priority: 10,
		Actions:  []openflow.Action{openflow.Output(2)},
		Command:  uint16(openflow.FlowAdd),
		Trigger:  trigger.ID(trig),
		Origin:   origin,
	}
}

func flowCacheResp(ctrl, primary store.NodeID, trig string, rule controller.FlowRule, digest uint64) Response {
	return Response{
		Controller:  ctrl,
		Primary:     primary,
		Trigger:     trigger.ID(trig),
		Kind:        CacheUpdate,
		Cache:       store.FlowsDB,
		Op:          store.OpCreate,
		Key:         rule.Key(),
		Value:       rule.Encode(),
		StateDigest: digest,
	}
}

func flowExecResp(ctrl, primary store.NodeID, trig string, rule controller.FlowRule, digest uint64) Response {
	r := flowCacheResp(ctrl, primary, trig, rule, digest)
	r.Kind = SecondaryExec
	r.Tainted = true
	// Secondaries compute the rule themselves: origin differs but the
	// canonical body must match after normalization.
	return r
}

func netResp(ctrl, primary store.NodeID, trig string, rule controller.FlowRule) Response {
	return Response{
		Controller: ctrl,
		Primary:    primary,
		Trigger:    trigger.ID(trig),
		Kind:       NetworkWrite,
		DPID:       rule.DPID,
		MsgType:    openflow.TypeFlowMod,
		MsgBody:    CanonicalMessage(rule.FlowMod(0)),
	}
}

func TestValidatorSanityMatchedFlowMod(t *testing.T) {
	_, v := newValidator(t, 2)
	var res *Result
	v.OnResult = func(r Result) { res = &r }
	rule := ruleFor(1, "τ", 1)
	v.Submit(flowCacheResp(1, 1, "τ", rule, 7))
	v.Submit(flowExecResp(2, 1, "τ", rule, 7))
	v.Submit(flowExecResp(3, 1, "τ", rule, 7))
	if res != nil {
		t.Fatal("must wait for the FLOW_MOD before deciding")
	}
	v.Submit(netResp(1, 1, "τ", rule))
	if res == nil {
		t.Fatal("no decision after FLOW_MOD arrived")
	}
	if res.Verdict != VerdictValid {
		t.Fatalf("verdict = %v (%s)", res.Verdict, res.Reason)
	}
}

func TestValidatorMissingFlowModIsT2(t *testing.T) {
	eng, v := newValidator(t, 2)
	var res Result
	v.OnResult = func(r Result) { res = r }
	rule := ruleFor(1, "τ", 1)
	v.Submit(flowCacheResp(1, 1, "τ", rule, 7))
	v.Submit(flowExecResp(2, 1, "τ", rule, 7))
	v.Submit(flowExecResp(3, 1, "τ", rule, 7))
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if res.Verdict != VerdictFault || res.Fault != FaultMissingNetwork {
		t.Fatalf("res = %v/%v (%s)", res.Verdict, res.Fault, res.Reason)
	}
	// Offender is the master of the rule's switch.
	if res.Offender == 0 {
		t.Fatal("no offender attributed")
	}
}

func TestValidatorInconsistentFlowModIsT2(t *testing.T) {
	_, v := newValidator(t, 2)
	var res *Result
	v.OnResult = func(r Result) { res = &r }
	rule := ruleFor(1, "τ", 1)
	bad := rule
	bad.Actions = nil // drop-all on the wire
	v.Submit(flowCacheResp(1, 1, "τ", rule, 7))
	v.Submit(flowExecResp(2, 1, "τ", rule, 7))
	v.Submit(flowExecResp(3, 1, "τ", rule, 7))
	v.Submit(netResp(1, 1, "τ", bad))
	if res == nil {
		t.Fatal("no decision")
	}
	if res.Fault != FaultInconsistent {
		t.Fatalf("fault = %v (%s)", res.Fault, res.Reason)
	}
}

func TestValidatorFlowModWithoutCacheIsFault(t *testing.T) {
	eng, v := newValidator(t, 2)
	var res Result
	v.OnResult = func(r Result) { res = r }
	rule := ruleFor(1, "τ", 1)
	v.Submit(netResp(1, 1, "τ", rule))
	v.Submit(doneResp(2, 1, "τ", 7))
	v.Submit(doneResp(3, 1, "τ", 7))
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if res.Fault != FaultNetworkOnly {
		t.Fatalf("fault = %v (%s)", res.Fault, res.Reason)
	}
}

func TestValidatorInternalTriggerDecidesAtTimer(t *testing.T) {
	eng, v := newValidator(t, 2)
	var res *Result
	v.OnResult = func(r Result) { res = &r }
	// Internal trigger: k+1 identical cache copies, no taint.
	v.Submit(cacheResp(1, 1, "τi", "k", "up", 7))
	v.Submit(cacheResp(2, 1, "τi", "k", "up", 8))
	v.Submit(cacheResp(3, 1, "τi", "k", "up", 9))
	if res != nil {
		t.Fatal("internal triggers must decide at the timer")
	}
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if res == nil || res.Kind != trigger.Internal || res.Verdict != VerdictValid {
		t.Fatalf("res = %+v", res)
	}
}

func TestValidatorInternalCopyDivergenceIsFault(t *testing.T) {
	eng, v := newValidator(t, 2)
	var res Result
	v.OnResult = func(r Result) { res = r }
	v.Submit(cacheResp(1, 1, "τi", "k", "up", 7))
	v.Submit(cacheResp(2, 1, "τi", "k", "up|corrupted", 8))
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if res.Verdict != VerdictFault || res.Fault != FaultValue {
		t.Fatalf("res = %v/%v", res.Verdict, res.Fault)
	}
}

func TestValidatorPolicyCheckOnPrimary(t *testing.T) {
	_, v := newValidator(t, 2)
	v.Policy = func(kind trigger.Kind, primary store.NodeID, r Response) (string, bool) {
		if r.Cache == store.LinksDB && r.Value == "down" {
			return "no-downs", true
		}
		return "", false
	}
	var res *Result
	v.OnResult = func(r Result) { res = &r }
	v.Submit(cacheResp(1, 1, "τ", "k", "down", 7))
	v.Submit(execResp(2, 1, "τ", "k", "down", 7))
	v.Submit(execResp(3, 1, "τ", "k", "down", 7))
	if res == nil {
		t.Fatal("no decision")
	}
	if res.Fault != FaultPolicy || res.Reason != "policy violation: no-downs" {
		t.Fatalf("res = %+v", res)
	}
}

func TestValidatorLateResponsesAbsorbed(t *testing.T) {
	eng, v := newValidator(t, 2)
	count := 0
	v.OnResult = func(Result) { count++ }
	v.Submit(cacheResp(1, 1, "τ", "k", "up", 7))
	v.Submit(execResp(2, 1, "τ", "k", "up", 7))
	v.Submit(execResp(3, 1, "τ", "k", "up", 7))
	if count != 1 {
		t.Fatalf("decisions = %d", count)
	}
	// A straggler arrives afterwards: absorbed, no ghost trigger.
	v.Submit(cacheResp(2, 1, "τ", "k", "up", 7))
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if count != 1 {
		t.Fatalf("ghost decision: %d", count)
	}
	if v.lateResponses.Value() != 1 {
		t.Fatalf("late = %d", v.lateResponses.Value())
	}
}

func TestValidatorUnattributedResponsesIgnored(t *testing.T) {
	_, v := newValidator(t, 2)
	r := cacheResp(1, 1, "", "k", "v", 7)
	v.Submit(r)
	if v.Pending() != 0 {
		t.Fatal("unattributed response created a trigger")
	}
}

func TestValidatorCountersAndCDF(t *testing.T) {
	eng, v := newValidator(t, 2)
	for i := 0; i < 10; i++ {
		trig := fmt.Sprintf("τ%d", i)
		v.Submit(cacheResp(1, 1, trig, "k", "up", 7))
		v.Submit(execResp(2, 1, trig, "k", "up", 7))
		v.Submit(execResp(3, 1, trig, "k", "up", 7))
	}
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if v.Decided() != 10 || v.Valid() != 10 || v.Faults() != 0 {
		t.Fatalf("counters: %d/%d/%d", v.Decided(), v.Valid(), v.Faults())
	}
	if v.Detections.Count() != 10 || v.DetectionsExternal.Count() != 10 {
		t.Fatal("detection distributions not populated")
	}
	if v.FalsePositiveRate() != 0 {
		t.Fatal("fp rate wrong")
	}
}

func TestValidatorAdaptiveTimeoutShrinks(t *testing.T) {
	eng := simnet.NewEngine(1)
	members := cluster.NewMembership(cluster.AnyControllerOneMaster,
		[]store.NodeID{1, 2, 3}, []topo.DPID{1})
	v := NewValidator(eng, members, ValidatorConfig{K: 2, Timeout: time.Second, Adaptive: true})
	// Feed fast consensus rounds; the adaptive deadline must fall below
	// the configured maximum.
	for i := 0; i < 200; i++ {
		trig := fmt.Sprintf("τ%d", i)
		v.Submit(cacheResp(1, 1, trig, "k", "up", 7))
		v.Submit(execResp(2, 1, trig, "k", "up", 7))
		v.Submit(execResp(3, 1, trig, "k", "up", 7))
	}
	if got := v.shards[0].timeout(); got >= time.Second {
		t.Fatalf("adaptive timeout did not shrink: %v", got)
	}
	_ = eng
}

func TestQuorumOf(t *testing.T) {
	tests := []struct{ k, want int }{{2, 2}, {4, 3}, {6, 4}, {1, 1}}
	for _, tt := range tests {
		if got := quorumOf(tt.k); got != tt.want {
			t.Fatalf("quorumOf(%d) = %d, want %d", tt.k, got, tt.want)
		}
	}
}

func TestVerdictAndFaultStrings(t *testing.T) {
	if VerdictValid.String() != "valid" || VerdictFault.String() != "fault" {
		t.Fatal("verdict strings")
	}
	if FaultOmission.String() != "omission" || FaultPolicy.String() != "policy" {
		t.Fatal("fault strings")
	}
	if CacheUpdate.String() != "cache" || ExecDone.String() != "done" {
		t.Fatal("kind strings")
	}
}

func TestResponseBodyNormalizesAttribution(t *testing.T) {
	ruleA := ruleFor(1, "τ1", 1)
	ruleB := ruleFor(1, "τ1", 3) // same rule computed by another controller
	a := flowCacheResp(1, 1, "τ1", ruleA, 0)
	b := flowExecResp(3, 1, "τ1", ruleB, 0)
	if a.Body() != b.Body() {
		t.Fatalf("bodies differ:\n%s\n%s", a.Body(), b.Body())
	}
	if a.Slot() != b.Slot() {
		t.Fatal("slots differ")
	}
}

func TestCanonicalMessageFlowModAndPacketOut(t *testing.T) {
	fm := ruleFor(1, "τ", 1).FlowMod(1)
	s := CanonicalMessage(fm)
	if s == "" || s == CanonicalMessage(&openflow.Hello{}) {
		t.Fatal("flow mod canonical form broken")
	}
	po := &openflow.PacketOut{Actions: []openflow.Action{openflow.Output(3)},
		Data: openflow.ARPPacket(openflow.ARPRequest, topo.HostMAC(1), topo.HostIP(1), openflow.MAC{}, topo.HostIP(2))}
	if CanonicalMessage(po) == CanonicalMessage(fm) {
		t.Fatal("different messages share canonical form")
	}
}
