package core

import (
	"github.com/jurysdn/jury/internal/trigger"
)

// FNV-1a64 parameters — the same hash family internal/sweep uses for
// per-point seed derivation, inlined here so the dispatch hot path does
// not allocate a hash.Hash64 per response.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// ShardForTrigger maps a taint ID onto one of n shards: FNV-1a64 over the
// ID bytes, folded modulo the shard count. The assignment is pure — the
// same trigger always lands on the same shard at a given shard count —
// which is what makes per-trigger state single-writer and the whole plane
// deterministic: a shard's verdicts depend only on its own response
// subsequence plus the broadcast Ψ stream.
func ShardForTrigger(id trigger.ID, n int) int {
	if n <= 1 {
		return 0
	}
	h := uint64(fnvOffset64)
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= fnvPrime64
	}
	return int(h % uint64(n))
}

// Submit delivers one controller response ρ = (id, τ, entry) to the
// validator — the entry point of Algorithm 1. Untainted responses update
// Ψ on every shard (the broadcast keeps each shard's view of controller
// state identical to the global table); the per-trigger consensus state
// advances only on the shard the taint ID hashes onto. With Shards=1 this
// degenerates to the paper's single decision loop.
func (v *Validator) Submit(r Response) {
	if !r.Tainted {
		for _, s := range v.shards {
			s.observe(r)
		}
	}
	if r.Trigger == "" {
		return // unattributed traffic (handshakes) is not validated
	}
	v.shards[ShardForTrigger(r.Trigger, len(v.shards))].submit(r)
}

// ObserveState applies a response's Ψ update without advancing any
// per-trigger state. The parallel plane (internal/shard) uses it to
// broadcast untainted responses to non-owner shard validators; tainted
// responses carry no Ψ update and are ignored.
func (v *Validator) ObserveState(r Response) {
	if r.Tainted {
		return
	}
	for _, s := range v.shards {
		s.observe(r)
	}
}

// Shards returns the number of state shards the validator runs.
func (v *Validator) Shards() int { return len(v.shards) }

// Pending returns the number of triggers awaiting decision (including
// decided entries inside their late-response grace window), summed across
// shards. Backed by an atomic gauge, so it is safe to call from outside
// the goroutine that owns the decision loop.
func (v *Validator) Pending() int { return int(v.pendingG.Value()) }

// ShardPending returns one shard's pending-trigger count (atomic; safe
// from any goroutine).
func (v *Validator) ShardPending(i int) int {
	if i < 0 || i >= len(v.shards) {
		return 0
	}
	return int(v.shards[i].pendingG.Value())
}

// Alarms returns the retained alarm results in decision order. The list
// is an immutable snapshot published by the decision loop, so concurrent
// Submit traffic on the owning goroutine cannot race a reader.
func (v *Validator) Alarms() []Result {
	return v.alarms.Snapshot()
}
