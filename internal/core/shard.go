package core

import (
	"time"

	"github.com/jurysdn/jury/internal/obs"
	"github.com/jurysdn/jury/internal/simnet"
	"github.com/jurysdn/jury/internal/store"
	"github.com/jurysdn/jury/internal/trigger"
)

// psiState is one controller's Ψ entry: running count plus latest entry
// digest (§IV-B), extended with the self-reported state snapshot used to
// make omission conviction state-aware.
type psiState struct {
	count  uint64
	latest string
	// digest is the controller's last self-reported state snapshot.
	digest uint64
	seen   bool
	at     time.Duration
}

// pendingTrigger is the validator's open state for one trigger τ.
type pendingTrigger struct {
	id        trigger.ID
	firstAt   time.Duration
	timer     *simnet.Event
	tainted   bool
	decided   bool
	responses int

	// primaryPsi snapshots Ψ[primary] when the trigger opened, i.e. the
	// primary's last self-reported state close to when the secondaries
	// replayed the trigger.
	primaryPsi    psiState
	primaryPsiSet bool

	// Per-controller responses.
	byController map[store.NodeID][]Response
	// primary is learned from response attribution.
	primary store.NodeID
	// noops counts secondaries that reported a side-effect-free
	// replicated execution.
	noops map[store.NodeID]bool

	all []Response
}

// vshard is one shard of the validation plane: the Ψ table, pending map,
// adaptive-timeout estimator and timers for the triggers whose taint IDs
// hash onto it. Every mutable per-trigger structure lives on exactly one
// shard, so a shard is single-writer by construction: in the simulation
// all shards share the engine goroutine, and in the parallel plane
// (internal/shard) each worker goroutine owns its shard's Validator
// outright. Untainted ψ updates are broadcast to every shard by the
// dispatch layer, which keeps each shard's Ψ equal to the global table.
type vshard struct {
	v  *Validator
	id int

	// Ψ: per-controller state (running count + latest entry digest).
	psi map[store.NodeID]psiState

	pending map[trigger.ID]*pendingTrigger

	// Adaptive timeout state (EWMA of consensus time and deviation).
	// Deliberately shard-local: with Shards>1 and Adaptive on, each shard
	// tracks the consensus latency of its own trigger population.
	ewmaMean float64
	ewmaDev  float64
	ewmaInit bool

	// Per-shard observability (unregistered zero-value instances when the
	// validator runs single-sharded, so the hot path never branches).
	pendingG *obs.Gauge
	decidedC *obs.Counter
	faultsC  *obs.Counter
}

// observe applies an untainted response's Ψ update. The dispatch layer
// broadcasts these to every shard so state-aware omission checks see the
// same Ψ regardless of which shard owns the trigger.
func (s *vshard) observe(r Response) {
	st := s.psi[r.Controller]
	if r.IsCache() {
		st.count++
		st.latest = r.Body()
	}
	st.digest = r.StateDigest
	st.seen = true
	st.at = s.v.eng.Now()
	s.psi[r.Controller] = st
	if s.v.rec != nil {
		s.v.rec.Record(obs.Event{
			AtNS: int64(st.at), Kind: obs.EvPsi,
			Trigger: string(r.Trigger), Ctrl: int64(r.Controller),
		})
	}
}

// submit runs the per-trigger half of Algorithm 1 for a response whose
// taint ID hashes onto this shard. Ψ has already been updated (observe
// runs first for untainted responses).
func (s *vshard) submit(r Response) {
	v := s.v
	p, ok := s.pending[r.Trigger]
	if !ok {
		p = &pendingTrigger{
			id:           r.Trigger,
			firstAt:      v.eng.Now(),
			byController: make(map[store.NodeID][]Response),
			noops:        make(map[store.NodeID]bool),
		}
		to := s.timeout()
		p.timer = v.eng.Schedule(to, func() { s.expire(p) })
		s.pending[r.Trigger] = p
		v.pendingG.Add(1)
		s.pendingG.Add(1)
		if v.tracer != nil {
			id := string(r.Trigger)
			// Ensure a root exists (idempotent: the replicator's
			// replicate-time open wins for external triggers; internal
			// triggers open here).
			v.tracer.StartTrigger(id, "")
			v.tracer.StartSpan(id, "validate", "validator")
		}
		if v.rec != nil {
			v.rec.Record(obs.Event{
				AtNS: int64(p.firstAt), Kind: obs.EvSubmit,
				Trigger: string(r.Trigger), Arg: int64(to),
			})
		}
	}
	if p.decided {
		v.lateResponses.Inc()
		if v.rec != nil {
			v.rec.Record(obs.Event{
				AtNS: int64(v.eng.Now()), Kind: obs.EvResponse,
				Trigger: string(r.Trigger), Ctrl: int64(r.Controller),
				Detail: "late",
			})
		}
		return
	}
	if v.rec != nil {
		v.rec.Record(obs.Event{
			AtNS: int64(v.eng.Now()), Kind: obs.EvResponse,
			Trigger: string(r.Trigger), Ctrl: int64(r.Controller),
		})
	}
	p.responses++
	p.all = append(p.all, r)
	p.byController[r.Controller] = append(p.byController[r.Controller], r)
	if r.Tainted {
		p.tainted = true
	}
	if r.Kind == ExecDone {
		p.noops[r.Controller] = true
	}
	if r.Primary != 0 {
		p.primary = r.Primary
		if !p.primaryPsiSet {
			p.primaryPsi = s.psi[r.Primary]
			p.primaryPsiSet = true
		}
	}
	// Early decision once an unambiguous outcome exists (consensus
	// reached on every slot and sanity satisfied, or a quorum already
	// contradicts the primary).
	if res, conclusive := v.evaluate(p, false); conclusive {
		s.finish(p, res, false)
	}
}

func (s *vshard) timeout() time.Duration {
	if !s.v.cfg.Adaptive || !s.ewmaInit {
		return s.v.cfg.Timeout
	}
	t := time.Duration(s.ewmaMean + s.v.cfg.AdaptiveFactor*s.ewmaDev)
	if min := 2 * time.Millisecond; t < min {
		t = min
	}
	if t > s.v.cfg.Timeout {
		t = s.v.cfg.Timeout
	}
	return t
}

func (s *vshard) expire(p *pendingTrigger) {
	if p.decided {
		return
	}
	v := s.v
	v.totalTimeouts.Inc()
	if v.rec != nil {
		v.rec.Record(obs.Event{
			AtNS: int64(v.eng.Now()), Kind: obs.EvTimer,
			Trigger: string(p.id),
		})
	}
	if v.OnTimeoutResponses != nil {
		v.OnTimeoutResponses(p.id, p.all)
	}
	s.decide(p, true)
}

// decide runs the full CONSENSUS / SANITY_CHECK / POLICY_CHECK cascade and
// finishes the trigger.
func (s *vshard) decide(p *pendingTrigger, timedOut bool) {
	res, _ := s.v.evaluate(p, true)
	s.finish(p, res, timedOut)
}

func (s *vshard) finish(p *pendingTrigger, res Result, timedOut bool) {
	v := s.v
	p.decided = true
	p.timer.Cancel()
	// Retain the decided entry for a grace period so responses still in
	// flight are absorbed as late responses rather than resurrecting the
	// trigger as a ghost that would time out as a spurious omission.
	grace := 2 * v.cfg.Timeout
	if grace < time.Second {
		grace = time.Second
	}
	v.eng.Schedule(grace, func() {
		if _, ok := s.pending[p.id]; ok {
			delete(s.pending, p.id)
			v.pendingG.Add(-1)
			s.pendingG.Add(-1)
		}
	})
	res.Trigger = p.id
	res.Responses = p.responses
	res.DecidedAt = v.eng.Now()
	res.DetectionTime = res.DecidedAt - p.firstAt
	res.TimedOut = timedOut
	v.Detections.Add(res.DetectionTime)
	if res.Kind == trigger.External {
		v.DetectionsExternal.Add(res.DetectionTime)
	}
	s.updateAdaptive(res.DetectionTime)
	v.totalDecided.Inc()
	s.decidedC.Inc()
	switch res.Verdict {
	case VerdictValid:
		v.totalValid.Inc()
	case VerdictNonDeterministic:
		v.totalNonDet.Inc()
	case VerdictFault:
		v.totalFaults.Inc()
		s.faultsC.Inc()
		evidence := p.all
		if len(evidence) > 32 {
			evidence = evidence[:32]
		}
		res.Evidence = append([]Response(nil), evidence...)
		if v.alarms.Len() < v.cfg.MaxAlarms {
			v.alarms.Append(res)
		}
	}
	if v.tracer != nil {
		id := string(p.id)
		v.tracer.EndSpan(id, "validate", "validator", res.Reason)
		v.tracer.EndTrigger(id, res.Verdict.String(), res.Fault.String())
	}
	if v.rec != nil {
		v.rec.Record(obs.Event{
			AtNS: int64(res.DecidedAt), Kind: obs.EvVerdict,
			Trigger: string(p.id),
			Verdict: res.Verdict.String(), Fault: res.Fault.String(),
			Detail: res.Reason, Arg: int64(res.Responses),
		})
	}
	if v.OnResult != nil {
		v.OnResult(res)
	}
}

func (s *vshard) updateAdaptive(d time.Duration) {
	const alpha = 0.05
	x := float64(d)
	if !s.ewmaInit {
		s.ewmaMean = x
		s.ewmaInit = true
		return
	}
	dev := x - s.ewmaMean
	if dev < 0 {
		dev = -dev
	}
	s.ewmaMean = (1-alpha)*s.ewmaMean + alpha*x
	s.ewmaDev = (1-alpha)*s.ewmaDev + alpha*dev
}
