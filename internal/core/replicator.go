package core

import (
	"time"

	"github.com/jurysdn/jury/internal/cluster"
	"github.com/jurysdn/jury/internal/controller"
	"github.com/jurysdn/jury/internal/obs"
	"github.com/jurysdn/jury/internal/openflow"
	"github.com/jurysdn/jury/internal/simnet"
	"github.com/jurysdn/jury/internal/store"
	"github.com/jurysdn/jury/internal/topo"
	"github.com/jurysdn/jury/internal/trigger"
)

// ReplicationMode selects how the replicator (the programmable OVS of
// §VI-A) forwards triggers to secondary controllers.
type ReplicationMode uint8

// Replication modes.
const (
	// ProxyMode (ONOS): the OVS acts as a transparent proxy, forwarding
	// packets normally while mirroring a copy to each secondary.
	ProxyMode ReplicationMode = iota + 1
	// EncapMode (ODL): the OVS connects to secondaries in OpenFlow mode,
	// so mirrored PACKET_INs arrive doubly encapsulated and must be
	// stripped at the secondary (§VI-B, Fig. 4i).
	EncapMode
)

// String names the mode.
func (m ReplicationMode) String() string {
	if m == EncapMode {
		return "encap"
	}
	return "proxy"
}

// ReplicatorConfig parameterizes a per-switch replicator.
type ReplicatorConfig struct {
	// K is the number of secondary controllers per trigger.
	K int
	// Mode selects proxy (ONOS) or encapsulating (ODL) replication.
	Mode ReplicationMode
	// Latency is the one-way delay from the replicator to a controller.
	Latency time.Duration
	// Metrics receives the per-switch replication counters (labeled by
	// dpid); nil falls back to a private registry.
	Metrics *obs.Registry
	// Tracer opens the root span per intercepted trigger; nil disables
	// tracing at zero hot-path cost.
	Tracer *obs.Tracer
}

// Replicator intercepts every southbound message of one switch, forwards
// the original to the primary (the switch's master) and replicates a
// tainted copy to k randomly chosen secondaries over reliable in-order
// channels (§IV-A(1)). It runs outside the controller binary, so a faulty
// controller cannot tamper with replicated triggers.
type Replicator struct {
	eng     *simnet.Engine
	dpid    topo.DPID
	cfg     ReplicatorConfig
	members *cluster.Membership

	primaryDeliver func(id store.NodeID, dpid topo.DPID, msg openflow.Message, ctx *trigger.Context)
	modules        map[store.NodeID]*Module

	alloc  *trigger.IDAllocator
	mac    openflow.MAC
	tracer *obs.Tracer

	// Counters live in the obs registry (labeled by dpid); the accessor
	// methods below are thin reads over the same instances.
	replicatedBytes *obs.Counter
	replicatedMsgs  *obs.Counter
	triggers        *obs.Counter
}

// NewReplicator creates the replicator for one switch. modules maps every
// JURY-enabled controller; primaryDeliver injects the original message
// into a controller's pipeline.
func NewReplicator(
	eng *simnet.Engine,
	dpid topo.DPID,
	members *cluster.Membership,
	modules map[store.NodeID]*Module,
	primaryDeliver func(id store.NodeID, dpid topo.DPID, msg openflow.Message, ctx *trigger.Context),
	cfg ReplicatorConfig,
) *Replicator {
	if cfg.Latency == 0 {
		cfg.Latency = 150 * time.Microsecond
	}
	if cfg.Mode == 0 {
		cfg.Mode = ProxyMode
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	label := obs.L("dpid", dpid.String())
	return &Replicator{
		eng:            eng,
		dpid:           dpid,
		cfg:            cfg,
		members:        members,
		modules:        modules,
		primaryDeliver: primaryDeliver,
		alloc:          trigger.NewIDAllocator(dpid.String()),
		mac:            openflow.MAC{0x02, 0xEE, byte(dpid >> 24), byte(dpid >> 16), byte(dpid >> 8), byte(dpid)},
		tracer:         cfg.Tracer,
		replicatedBytes: reg.Counter("jury_replicator_replicated_bytes_total",
			"Bytes mirrored to secondary controllers (§VII-B2).", label),
		replicatedMsgs: reg.Counter("jury_replicator_replicated_messages_total",
			"Messages mirrored to secondary controllers.", label),
		triggers: reg.Counter("jury_replicator_triggers_total",
			"External triggers intercepted.", label),
	}
}

// ReplicatedBytes returns the bytes mirrored to secondary controllers
// (§VII-B2 overhead accounting).
func (r *Replicator) ReplicatedBytes() int64 { return r.replicatedBytes.Value() }

// Triggers returns the number of external triggers intercepted.
func (r *Replicator) Triggers() int64 { return r.triggers.Value() }

// HandleFromSwitch processes one southbound message emitted by the switch.
func (r *Replicator) HandleFromSwitch(msg openflow.Message) {
	primary, ok := r.members.Master(r.dpid)
	if !ok {
		return
	}
	r.triggers.Inc()
	ctx := &trigger.Context{
		ID:      r.alloc.Next(),
		Kind:    trigger.External,
		Primary: primary,
	}
	if r.tracer != nil {
		r.tracer.StartTrigger(string(ctx.ID), msg.Type().String())
	}
	dpid := r.dpid
	r.eng.Schedule(r.cfg.Latency, func() {
		r.primaryDeliver(primary, dpid, msg, ctx)
	})
	for _, id := range r.pickSecondaries(primary) {
		mod, ok := r.modules[id]
		if !ok {
			continue
		}
		replicaCtx := ctx.ReplicaOf()
		var (
			copyMsg openflow.Message
			frame   []byte
			size    int
		)
		if pin, isPin := msg.(*openflow.PacketIn); isPin && r.cfg.Mode == EncapMode {
			frame = openflow.EncapsulatePacketIn(pin, r.mac)
			size = len(frame) + openflow.HeaderLen + 10 // carried in a fresh PACKET_IN
		} else {
			copyMsg = msg
			size = openflow.WireLen(msg)
		}
		r.replicatedBytes.Add(int64(size))
		r.replicatedMsgs.Inc()
		m, f := mod, frame
		cm := copyMsg
		r.eng.Schedule(r.cfg.Latency, func() {
			m.HandleReplicated(dpid, cm, replicaCtx, f)
		})
	}
}

// ReplicateREST intercepts a northbound flow-install request: the original
// goes to the target controller, tainted copies to k secondaries (REST
// calls are external triggers, §II-A2).
func (r *Replicator) ReplicateREST(target store.NodeID, rule controller.FlowRule, install func(id store.NodeID, rule controller.FlowRule, ctx *trigger.Context)) {
	r.triggers.Inc()
	ctx := &trigger.Context{ID: r.alloc.Next(), Kind: trigger.External, Primary: target}
	if r.tracer != nil {
		r.tracer.StartTrigger(string(ctx.ID), "rest-install")
	}
	r.eng.Schedule(r.cfg.Latency, func() { install(target, rule, ctx) })
	for _, id := range r.pickSecondaries(target) {
		replicaCtx := ctx.ReplicaOf()
		sid := id
		r.replicatedBytes.Add(int64(len(rule.Encode()) + 64))
		r.replicatedMsgs.Inc()
		r.eng.Schedule(r.cfg.Latency, func() { install(sid, rule, replicaCtx) })
	}
}

// pickSecondaries chooses k random live controllers other than primary.
func (r *Replicator) pickSecondaries(primary store.NodeID) []store.NodeID {
	alive := r.members.Alive()
	var candidates []store.NodeID
	for _, id := range alive {
		if id != primary {
			candidates = append(candidates, id)
		}
	}
	if len(candidates) <= r.cfg.K {
		return candidates
	}
	rng := r.eng.Rand()
	rng.Shuffle(len(candidates), func(i, j int) {
		candidates[i], candidates[j] = candidates[j], candidates[i]
	})
	return candidates[:r.cfg.K]
}
