package core

import (
	"fmt"
	"testing"
	"time"

	"github.com/jurysdn/jury/internal/cluster"
	"github.com/jurysdn/jury/internal/obs"
	"github.com/jurysdn/jury/internal/simnet"
	"github.com/jurysdn/jury/internal/store"
	"github.com/jurysdn/jury/internal/topo"
)

// TestSubmitDisabledTracerZeroAlloc is the tentpole's hot-path guarantee:
// with tracing disabled (nil tracer), the steady-state Submit path — a
// response landing on an already-decided trigger, the most frequent case
// at high rates — performs zero allocations, so instrumentation costs
// nothing when off.
func TestSubmitDisabledTracerZeroAlloc(t *testing.T) {
	_, v := newValidator(t, 2)
	if v.Config().Tracer != nil {
		t.Fatal("validator unexpectedly has a tracer")
	}
	// Decide a trigger early via full agreement.
	v.Submit(cacheResp(1, 1, "τ", "k", "up", 7))
	v.Submit(execResp(2, 1, "τ", "k", "up", 7))
	v.Submit(execResp(3, 1, "τ", "k", "up", 7))
	if v.Decided() != 1 {
		t.Fatalf("decided = %d, want 1", v.Decided())
	}
	late := doneResp(2, 1, "τ", 7)
	allocs := testing.AllocsPerRun(1000, func() { v.Submit(late) })
	if allocs != 0 {
		t.Fatalf("disabled-tracer Submit allocated %v/op, want 0", allocs)
	}
	if v.lateResponses.Value() < 1000 {
		t.Fatalf("late responses = %d, loop did not hit the steady path", v.lateResponses.Value())
	}
}

// TestValidatorMetricsExposed asserts the migrated counters land in the
// registry under their Prometheus names and stay consistent with the
// accessor methods.
func TestValidatorMetricsExposed(t *testing.T) {
	eng := simnet.NewEngine(1)
	members := cluster.NewMembership(cluster.AnyControllerOneMaster,
		[]store.NodeID{1, 2, 3}, []topo.DPID{1, 2})
	reg := obs.NewRegistry()
	v := NewValidator(eng, members, ValidatorConfig{K: 2, Timeout: 100 * time.Millisecond, Metrics: reg})
	if v.Metrics() != reg {
		t.Fatal("validator did not adopt the injected registry")
	}
	v.Submit(cacheResp(1, 1, "τ", "k", "up", 7))
	v.Submit(execResp(2, 1, "τ", "k", "up", 7))
	v.Submit(execResp(3, 1, "τ", "k", "up", 7))
	if got := reg.Counter("jury_validator_decided_total", "").Value(); got != v.Decided() || got != 1 {
		t.Fatalf("registry decided = %d, accessor = %d, want 1", got, v.Decided())
	}
	if got := reg.Counter("jury_validator_valid_total", "").Value(); got != v.Valid() || got != 1 {
		t.Fatalf("registry valid = %d, accessor = %d, want 1", got, v.Valid())
	}
}

// TestValidatorTracedTrigger asserts the validate span and the root close
// with the verdict.
func TestValidatorTracedTrigger(t *testing.T) {
	eng := simnet.NewEngine(1)
	members := cluster.NewMembership(cluster.AnyControllerOneMaster,
		[]store.NodeID{1, 2, 3}, []topo.DPID{1, 2})
	tr := obs.NewTracer(eng.Now)
	v := NewValidator(eng, members, ValidatorConfig{K: 2, Timeout: 100 * time.Millisecond, Tracer: tr})
	v.Submit(cacheResp(1, 1, "τ9", "k", "up", 7))
	v.Submit(execResp(2, 1, "τ9", "k", "up", 7))
	v.Submit(execResp(3, 1, "τ9", "k", "up", 7))
	if tr.CompletedTriggers() != 1 {
		t.Fatalf("completed triggers = %d, want 1", tr.CompletedTriggers())
	}
	var sawRoot, sawValidate bool
	for _, s := range tr.Spans() {
		switch {
		case s.Name == "trigger" && s.Trigger == "τ9":
			sawRoot = true
			if s.Verdict != "valid" || s.Fault != "none" {
				t.Fatalf("root verdict/fault = %q/%q", s.Verdict, s.Fault)
			}
		case s.Name == "validate" && s.Node == "validator":
			sawValidate = true
		}
	}
	if !sawRoot || !sawValidate {
		t.Fatalf("trace missing spans: root=%v validate=%v", sawRoot, sawValidate)
	}
}

// benchSubmit drives one full trigger lifecycle (three responses → early
// decision) per iteration against a validator with the given tracer.
func benchSubmit(b *testing.B, tr *obs.Tracer) {
	eng := simnet.NewEngine(1)
	var ids []store.NodeID
	for i := 1; i <= 3; i++ {
		ids = append(ids, store.NodeID(i))
	}
	members := cluster.NewMembership(cluster.AnyControllerOneMaster, ids, []topo.DPID{1, 2})
	v := NewValidator(eng, members, ValidatorConfig{K: 2, Timeout: 100 * time.Millisecond, Tracer: tr})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := fmt.Sprintf("τ%d", i)
		v.Submit(cacheResp(1, 1, id, "k", "up", 7))
		v.Submit(execResp(2, 1, id, "k", "up", 7))
		v.Submit(execResp(3, 1, id, "k", "up", 7))
	}
	if int(v.Decided()) != b.N {
		b.Fatalf("decided %d of %d triggers", v.Decided(), b.N)
	}
}

// BenchmarkValidatorSubmitNoTracer is the obs-overhead baseline: the full
// validation path with tracing disabled.
func BenchmarkValidatorSubmitNoTracer(b *testing.B) {
	benchSubmit(b, nil)
}

// BenchmarkValidatorSubmitTraced measures the same path with an enabled
// tracer recording a root + validate span per trigger.
func BenchmarkValidatorSubmitTraced(b *testing.B) {
	eng := simnet.NewEngine(1)
	benchSubmit(b, obs.NewTracer(eng.Now))
}
