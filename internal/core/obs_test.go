package core

import (
	"fmt"
	"testing"
	"time"

	"github.com/jurysdn/jury/internal/cluster"
	"github.com/jurysdn/jury/internal/obs"
	"github.com/jurysdn/jury/internal/simnet"
	"github.com/jurysdn/jury/internal/store"
	"github.com/jurysdn/jury/internal/topo"
)

// TestSubmitDisabledTracerZeroAlloc is the tentpole's hot-path guarantee:
// with tracing disabled (nil tracer), the steady-state Submit path — a
// response landing on an already-decided trigger, the most frequent case
// at high rates — performs zero allocations, so instrumentation costs
// nothing when off.
func TestSubmitDisabledTracerZeroAlloc(t *testing.T) {
	_, v := newValidator(t, 2)
	if v.Config().Tracer != nil {
		t.Fatal("validator unexpectedly has a tracer")
	}
	// Decide a trigger early via full agreement.
	v.Submit(cacheResp(1, 1, "τ", "k", "up", 7))
	v.Submit(execResp(2, 1, "τ", "k", "up", 7))
	v.Submit(execResp(3, 1, "τ", "k", "up", 7))
	if v.Decided() != 1 {
		t.Fatalf("decided = %d, want 1", v.Decided())
	}
	late := doneResp(2, 1, "τ", 7)
	allocs := testing.AllocsPerRun(1000, func() { v.Submit(late) })
	if allocs != 0 {
		t.Fatalf("disabled-tracer Submit allocated %v/op, want 0", allocs)
	}
	if v.lateResponses.Value() < 1000 {
		t.Fatalf("late responses = %d, loop did not hit the steady path", v.lateResponses.Value())
	}
}

// TestValidatorMetricsExposed asserts the migrated counters land in the
// registry under their Prometheus names and stay consistent with the
// accessor methods.
func TestValidatorMetricsExposed(t *testing.T) {
	eng := simnet.NewEngine(1)
	members := cluster.NewMembership(cluster.AnyControllerOneMaster,
		[]store.NodeID{1, 2, 3}, []topo.DPID{1, 2})
	reg := obs.NewRegistry()
	v := NewValidator(eng, members, ValidatorConfig{K: 2, Timeout: 100 * time.Millisecond, Metrics: reg})
	if v.Metrics() != reg {
		t.Fatal("validator did not adopt the injected registry")
	}
	v.Submit(cacheResp(1, 1, "τ", "k", "up", 7))
	v.Submit(execResp(2, 1, "τ", "k", "up", 7))
	v.Submit(execResp(3, 1, "τ", "k", "up", 7))
	if got := reg.Counter("jury_validator_decided_total", "").Value(); got != v.Decided() || got != 1 {
		t.Fatalf("registry decided = %d, accessor = %d, want 1", got, v.Decided())
	}
	if got := reg.Counter("jury_validator_valid_total", "").Value(); got != v.Valid() || got != 1 {
		t.Fatalf("registry valid = %d, accessor = %d, want 1", got, v.Valid())
	}
}

// TestValidatorTracedTrigger asserts the validate span and the root close
// with the verdict.
func TestValidatorTracedTrigger(t *testing.T) {
	eng := simnet.NewEngine(1)
	members := cluster.NewMembership(cluster.AnyControllerOneMaster,
		[]store.NodeID{1, 2, 3}, []topo.DPID{1, 2})
	tr := obs.NewTracer(eng.Now)
	v := NewValidator(eng, members, ValidatorConfig{K: 2, Timeout: 100 * time.Millisecond, Tracer: tr})
	v.Submit(cacheResp(1, 1, "τ9", "k", "up", 7))
	v.Submit(execResp(2, 1, "τ9", "k", "up", 7))
	v.Submit(execResp(3, 1, "τ9", "k", "up", 7))
	if tr.CompletedTriggers() != 1 {
		t.Fatalf("completed triggers = %d, want 1", tr.CompletedTriggers())
	}
	var sawRoot, sawValidate bool
	for _, s := range tr.Spans() {
		switch {
		case s.Name == "trigger" && s.Trigger == "τ9":
			sawRoot = true
			if s.Verdict != "valid" || s.Fault != "none" {
				t.Fatalf("root verdict/fault = %q/%q", s.Verdict, s.Fault)
			}
		case s.Name == "validate" && s.Node == "validator":
			sawValidate = true
		}
	}
	if !sawRoot || !sawValidate {
		t.Fatalf("trace missing spans: root=%v validate=%v", sawRoot, sawValidate)
	}
}

// benchSubmit drives one full trigger lifecycle (three responses → early
// decision) per iteration against a validator with the given tracer.
func benchSubmit(b *testing.B, tr *obs.Tracer) {
	eng := simnet.NewEngine(1)
	var ids []store.NodeID
	for i := 1; i <= 3; i++ {
		ids = append(ids, store.NodeID(i))
	}
	members := cluster.NewMembership(cluster.AnyControllerOneMaster, ids, []topo.DPID{1, 2})
	v := NewValidator(eng, members, ValidatorConfig{K: 2, Timeout: 100 * time.Millisecond, Tracer: tr})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := fmt.Sprintf("τ%d", i)
		v.Submit(cacheResp(1, 1, id, "k", "up", 7))
		v.Submit(execResp(2, 1, id, "k", "up", 7))
		v.Submit(execResp(3, 1, id, "k", "up", 7))
	}
	if int(v.Decided()) != b.N {
		b.Fatalf("decided %d of %d triggers", v.Decided(), b.N)
	}
}

// BenchmarkValidatorSubmitNoTracer is the obs-overhead baseline: the full
// validation path with tracing disabled.
func BenchmarkValidatorSubmitNoTracer(b *testing.B) {
	benchSubmit(b, nil)
}

// BenchmarkValidatorSubmitTraced measures the same path with an enabled
// tracer recording a root + validate span per trigger.
func BenchmarkValidatorSubmitTraced(b *testing.B) {
	eng := simnet.NewEngine(1)
	benchSubmit(b, obs.NewTracer(eng.Now))
}

// newRecordedValidator builds a validator with a live flight recorder.
func newRecordedValidator(t *testing.T, k, ring int) (*simnet.Engine, *Validator, *obs.Recorder) {
	t.Helper()
	eng := simnet.NewEngine(1)
	var ids []store.NodeID
	for i := 1; i <= k+1; i++ {
		ids = append(ids, store.NodeID(i))
	}
	members := cluster.NewMembership(cluster.AnyControllerOneMaster, ids, []topo.DPID{1, 2})
	rec := obs.NewRecorder(ring)
	v := NewValidator(eng, members, ValidatorConfig{K: k, Timeout: 100 * time.Millisecond, Recorder: rec})
	return eng, v, rec
}

// TestSubmitRecorderBoundedAlloc is the flight recorder's hot-path
// guarantee: with an always-on recorder, the steady-state Submit path (a
// late response on a decided trigger) still performs zero allocations —
// recording is an in-place ring assignment.
func TestSubmitRecorderBoundedAlloc(t *testing.T) {
	_, v, rec := newRecordedValidator(t, 2, 64)
	v.Submit(cacheResp(1, 1, "τ", "k", "up", 7))
	v.Submit(execResp(2, 1, "τ", "k", "up", 7))
	v.Submit(execResp(3, 1, "τ", "k", "up", 7))
	if v.Decided() != 1 {
		t.Fatalf("decided = %d, want 1", v.Decided())
	}
	late := doneResp(2, 1, "τ", 7)
	allocs := testing.AllocsPerRun(1000, func() { v.Submit(late) })
	if allocs != 0 {
		t.Fatalf("recorded Submit allocated %v/op, want 0", allocs)
	}
	if v.lateResponses.Value() < 1000 {
		t.Fatalf("late responses = %d, loop did not hit the steady path", v.lateResponses.Value())
	}
	if rec.Total() < 1000 {
		t.Fatalf("recorder total = %d, late responses were not recorded", rec.Total())
	}
}

// TestValidatorRecorderLifecycle asserts a full trigger lifecycle lands
// every event kind in the ring, in trigger-lifecycle order.
func TestValidatorRecorderLifecycle(t *testing.T) {
	_, v, rec := newRecordedValidator(t, 2, 64)
	v.Submit(cacheResp(1, 1, "τ1", "k", "up", 7))
	v.Submit(execResp(2, 1, "τ1", "k", "up", 7))
	v.Submit(execResp(3, 1, "τ1", "k", "up", 7))
	if v.Decided() != 1 {
		t.Fatalf("decided = %d, want 1", v.Decided())
	}
	events := rec.Snapshot()
	kinds := make(map[obs.EventKind]int)
	for _, e := range events {
		kinds[e.Kind]++
		if e.Trigger != "τ1" && e.Kind != obs.EvPsi {
			t.Fatalf("event %v carries trigger %q, want τ1", e.Kind, e.Trigger)
		}
	}
	if kinds[obs.EvSubmit] != 1 {
		t.Fatalf("submit events = %d, want 1", kinds[obs.EvSubmit])
	}
	if kinds[obs.EvResponse] < 2 {
		t.Fatalf("response events = %d, want >= 2", kinds[obs.EvResponse])
	}
	if kinds[obs.EvVerdict] != 1 {
		t.Fatalf("verdict events = %d, want 1", kinds[obs.EvVerdict])
	}
	var verdict *obs.Event
	for i := range events {
		if events[i].Kind == obs.EvVerdict {
			verdict = &events[i]
		}
	}
	if verdict.Verdict != "valid" || verdict.Fault != "none" {
		t.Fatalf("verdict event = %q/%q, want valid/none", verdict.Verdict, verdict.Fault)
	}
}

// TestValidatorRecorderTimeout asserts the deadline path records EvTimer
// before the forced verdict.
func TestValidatorRecorderTimeout(t *testing.T) {
	eng, v, rec := newRecordedValidator(t, 2, 64)
	v.Submit(cacheResp(1, 1, "τt", "k", "up", 7))
	if err := eng.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if v.Timeouts() != 1 {
		t.Fatalf("timeouts = %d, want 1", v.Timeouts())
	}
	var sawTimer, sawVerdict bool
	for _, e := range rec.Snapshot() {
		switch e.Kind {
		case obs.EvTimer:
			sawTimer = true
			if sawVerdict {
				t.Fatal("timer recorded after verdict")
			}
		case obs.EvVerdict:
			sawVerdict = true
		}
	}
	if !sawTimer || !sawVerdict {
		t.Fatalf("timeout lifecycle missing events: timer=%v verdict=%v", sawTimer, sawVerdict)
	}
}

// BenchmarkValidatorSubmitRecorded measures the full validation path with
// an always-on flight recorder, against the NoTracer baseline.
func BenchmarkValidatorSubmitRecorded(b *testing.B) {
	eng := simnet.NewEngine(1)
	var ids []store.NodeID
	for i := 1; i <= 3; i++ {
		ids = append(ids, store.NodeID(i))
	}
	members := cluster.NewMembership(cluster.AnyControllerOneMaster, ids, []topo.DPID{1, 2})
	rec := obs.NewRecorder(obs.DefaultFlightRing)
	v := NewValidator(eng, members, ValidatorConfig{K: 2, Timeout: 100 * time.Millisecond, Recorder: rec})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := fmt.Sprintf("τ%d", i)
		v.Submit(cacheResp(1, 1, id, "k", "up", 7))
		v.Submit(execResp(2, 1, id, "k", "up", 7))
		v.Submit(execResp(3, 1, id, "k", "up", 7))
	}
	if int(v.Decided()) != b.N {
		b.Fatalf("decided %d of %d triggers", v.Decided(), b.N)
	}
}
