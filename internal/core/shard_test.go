package core

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"github.com/jurysdn/jury/internal/cluster"
	"github.com/jurysdn/jury/internal/simnet"
	"github.com/jurysdn/jury/internal/store"
	"github.com/jurysdn/jury/internal/topo"
	"github.com/jurysdn/jury/internal/trigger"
)

func TestShardForTriggerStableAndInRange(t *testing.T) {
	for _, n := range []int{1, 2, 3, 8} {
		counts := make([]int, n)
		for i := 0; i < 1000; i++ {
			id := trigger.ID(fmt.Sprintf("τ%d", i))
			s := ShardForTrigger(id, n)
			if s < 0 || s >= n {
				t.Fatalf("ShardForTrigger(%q, %d) = %d out of range", id, n, s)
			}
			if again := ShardForTrigger(id, n); again != s {
				t.Fatalf("assignment not stable: %d then %d", s, again)
			}
			counts[s]++
		}
		// FNV over distinct IDs must actually spread load: no shard may
		// end up empty at any width.
		for s, c := range counts {
			if c == 0 {
				t.Fatalf("n=%d: shard %d received no triggers", n, s)
			}
		}
	}
}

// shardScenario drives a deterministic mixed workload (early consensus,
// omission faults, no-op consensus, value conflicts) through a validator
// with the given shard count and returns the decision sequence.
func shardScenario(t *testing.T, shards int) ([]Result, *Validator) {
	t.Helper()
	eng := simnet.NewEngine(1)
	members := cluster.NewMembership(cluster.AnyControllerOneMaster,
		[]store.NodeID{1, 2, 3}, []topo.DPID{1, 2})
	v := NewValidator(eng, members, ValidatorConfig{
		K: 2, Timeout: 50 * time.Millisecond, Shards: shards,
	})
	var results []Result
	v.OnResult = func(r Result) { results = append(results, r) }
	for i := 0; i < 240; i++ {
		trig := fmt.Sprintf("τ%03d", i)
		at := time.Duration(i) * time.Millisecond
		submit := func(d time.Duration, r Response) {
			eng.At(at+d, func() { v.Submit(r) })
		}
		switch i % 4 {
		case 0: // full agreement, early valid decision
			submit(0, cacheResp(1, 1, trig, "k", "up", 7))
			submit(time.Millisecond, execResp(2, 1, trig, "k", "up", 7))
			submit(2*time.Millisecond, execResp(3, 1, trig, "k", "up", 7))
		case 1: // secondaries act, primary silent: omission at timeout
			submit(0, execResp(2, 1, trig, "k", "up", 9))
			submit(time.Millisecond, execResp(3, 1, trig, "k", "up", 9))
		case 2: // same-state conflict quorum: value fault
			submit(0, cacheResp(1, 1, trig, "k", "up", 7))
			submit(time.Millisecond, execResp(2, 1, trig, "k", "down", 7))
			submit(2*time.Millisecond, execResp(3, 1, trig, "k", "down", 7))
		default: // side-effect-free replicated executions: no-op consensus
			submit(0, doneResp(2, 1, trig, 7))
			submit(time.Millisecond, doneResp(3, 1, trig, 7))
		}
	}
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	return results, v
}

// TestShardCountInvariance is the inline-sharding determinism contract:
// for a fixed input, the full decision sequence — verdicts, fault
// classes, decision times, evidence — must be identical at any shard
// count, because triggers partition disjointly, ψ updates broadcast in
// order, and all shards share the engine's event order.
func TestShardCountInvariance(t *testing.T) {
	ref, vref := shardScenario(t, 1)
	if len(ref) == 0 {
		t.Fatal("scenario decided nothing")
	}
	if vref.Faults() == 0 {
		t.Fatal("scenario raised no alarms — too benign to prove invariance")
	}
	for _, shards := range []int{2, 8} {
		got, v := shardScenario(t, shards)
		if !reflect.DeepEqual(ref, got) {
			t.Fatalf("shards=%d: decision sequence diverges from single-shard reference (%d vs %d results)",
				shards, len(got), len(ref))
		}
		if v.Faults() != vref.Faults() || v.Decided() != vref.Decided() ||
			v.Timeouts() != vref.Timeouts() || v.NonDeterministic() != vref.NonDeterministic() {
			t.Fatalf("shards=%d: aggregate counters diverge", shards)
		}
		if !reflect.DeepEqual(vref.Alarms(), v.Alarms()) {
			t.Fatalf("shards=%d: alarm list diverges", shards)
		}
		if v.FalsePositiveRate() != vref.FalsePositiveRate() {
			t.Fatalf("shards=%d: false-positive rate diverges", shards)
		}
		if got := v.Shards(); got != shards {
			t.Fatalf("Shards() = %d, want %d", got, shards)
		}
	}
}

func TestShardPendingPartition(t *testing.T) {
	eng := simnet.NewEngine(1)
	members := cluster.NewMembership(cluster.AnyControllerOneMaster,
		[]store.NodeID{1, 2, 3}, []topo.DPID{1})
	v := NewValidator(eng, members, ValidatorConfig{K: 2, Timeout: time.Second, Shards: 4})
	for i := 0; i < 40; i++ {
		v.Submit(cacheResp(1, 1, fmt.Sprintf("τ%d", i), "k", "up", 7))
	}
	if got := v.Pending(); got != 40 {
		t.Fatalf("Pending() = %d, want 40", got)
	}
	sum := 0
	for i := 0; i < v.Shards(); i++ {
		sum += v.ShardPending(i)
	}
	if sum != 40 {
		t.Fatalf("per-shard pending sums to %d, want 40", sum)
	}
}

// TestAccessorsSafeUnderConcurrentSubmit exercises the satellite contract:
// Pending(), Alarms() and the counter accessors must be safe to call from
// live goroutines while the decision loop runs. The suite runs under
// -race in CI, so any unsynchronized read fails here.
func TestAccessorsSafeUnderConcurrentSubmit(t *testing.T) {
	eng := simnet.NewEngine(1)
	members := cluster.NewMembership(cluster.AnyControllerOneMaster,
		[]store.NodeID{1, 2, 3}, []topo.DPID{1, 2})
	v := NewValidator(eng, members, ValidatorConfig{K: 2, Timeout: 20 * time.Millisecond, Shards: 4})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_ = v.Pending()
				_ = v.Alarms()
				_ = v.Faults()
				_ = v.Decided()
				_ = v.FalsePositiveRate()
				for s := 0; s < v.Shards(); s++ {
					_ = v.ShardPending(s)
				}
			}
		}()
	}
	// The decision loop stays on this goroutine (the sim contract); the
	// readers race against Submit, timer expiry and alarm retention.
	for i := 0; i < 2000; i++ {
		trig := fmt.Sprintf("τ%d", i)
		at := time.Duration(i) * 100 * time.Microsecond
		eng.At(at, func() { v.Submit(execResp(2, 1, trig, "k", "up", 9)) })
		eng.At(at, func() { v.Submit(execResp(3, 1, trig, "k", "up", 9)) })
	}
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()
	if v.Faults() == 0 {
		t.Fatal("omission workload raised no alarms")
	}
	if v.Pending() != 0 {
		t.Fatalf("Pending() = %d after idle, want 0", v.Pending())
	}
}
