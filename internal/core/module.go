package core

import (
	"hash/fnv"
	"sort"
	"strconv"
	"time"

	"github.com/jurysdn/jury/internal/controller"
	"github.com/jurysdn/jury/internal/metrics"
	"github.com/jurysdn/jury/internal/obs"
	"github.com/jurysdn/jury/internal/openflow"
	"github.com/jurysdn/jury/internal/simnet"
	"github.com/jurysdn/jury/internal/store"
	"github.com/jurysdn/jury/internal/topo"
	"github.com/jurysdn/jury/internal/trigger"
)

// ModuleConfig parameterizes a JURY controller module.
type ModuleConfig struct {
	// K is the replication factor (number of secondary controllers).
	K int
	// ValidatorLatency is the one-way latency of the out-of-band channel
	// from the controller to the validator.
	ValidatorLatency time.Duration
	// RelayAll disables the k+1 sampling of cache-update relays; every
	// replica then relays every applied event (more validator traffic).
	RelayAll bool
	// DecapMean is the mean of the modeled PACKET_IN decapsulation
	// overhead on the ODL path (Fig. 4i); zero for the proxy (ONOS) path.
	DecapMean time.Duration
	// Tracer records per-controller "exec" and "decap" spans; nil
	// disables tracing at zero hot-path cost.
	Tracer *obs.Tracer
}

// Module is JURY's per-controller component (~250 LOC in ONOS, ~550 in ODL
// per §VI): it propagates taints, captures and suppresses secondary
// side-effects, relays cache updates, and intercepts outgoing network
// writes — streaming everything to the out-of-band validator.
type Module struct {
	eng       *simnet.Engine
	ctrl      *controller.Controller
	validator *Validator
	cfg       ModuleConfig

	// captured counts side-effects captured per tainted trigger, to emit
	// ExecDone for no-op executions.
	captured map[trigger.ID]int
	// snapshots holds the pre-trigger store digest recorded at pipeline
	// start, attached to every response of that trigger so primary and
	// secondary snapshots are directly comparable (§IV-C A).
	snapshots map[trigger.ID]uint64

	// DecapTimes records the modeled decapsulation overhead per packet.
	DecapTimes metrics.Distribution

	validatorBytes int64
	validatorMsgs  int64

	tracer *obs.Tracer
	// node is the controller's trace-node name ("C3"), precomputed so the
	// tracing hot path never formats.
	node string
}

// NewModule attaches a JURY module to a controller. The module registers
// its hooks last, so fault injectors installed before it act first (the
// module validates the faulty behaviour, it does not mask it).
func NewModule(eng *simnet.Engine, ctrl *controller.Controller, validator *Validator, cfg ModuleConfig) *Module {
	if cfg.ValidatorLatency == 0 {
		cfg.ValidatorLatency = 200 * time.Microsecond
	}
	m := &Module{
		eng:       eng,
		ctrl:      ctrl,
		validator: validator,
		cfg:       cfg,
		captured:  make(map[trigger.ID]int),
		snapshots: make(map[trigger.ID]uint64),
		tracer:    cfg.Tracer,
		node:      "C" + strconv.Itoa(int(ctrl.ID())),
	}
	ctrl.AddCacheHook(m.onCacheWrite)
	ctrl.AddEgressHook(m.onEgress)
	ctrl.OnProcessStart = m.onProcessStart
	ctrl.OnProcessed = m.onProcessed
	ctrl.SetJuryReplication(cfg.K)
	ctrl.Node().Subscribe(m.onStoreEvent)
	return m
}

// Controller returns the controller the module is attached to.
func (m *Module) Controller() *controller.Controller { return m.ctrl }

// ValidatorBytes returns the bytes this module sent to the validator over
// JURY's own out-of-band channel (cache updates ride the store replication
// stream and cost nothing extra).
func (m *Module) ValidatorBytes() int64 { return m.validatorBytes }

// ValidatorMessages returns the number of responses relayed, including
// cache updates tapped off the replication stream.
func (m *Module) ValidatorMessages() int64 { return m.validatorMsgs }

// onCacheWrite captures-and-suppresses cache writes from replicated
// execution (§IV-B(1)); untainted writes proceed to the store and are
// relayed from onStoreEvent.
func (m *Module) onCacheWrite(c *controller.Controller, w *controller.CacheWrite) controller.HookAction {
	if !w.Ctx.Tainted() {
		return controller.Proceed
	}
	m.captured[w.Ctx.ID]++
	prev, prevOK := c.Node().Get(w.Cache, w.Key)
	m.send(Response{
		Controller: c.ID(),
		Trigger:    w.Ctx.ID,
		Kind:       SecondaryExec,
		Tainted:    true,
		Primary:    w.Ctx.Primary,
		Cache:      w.Cache,
		Op:         w.Op,
		Key:        w.Key,
		Value:      w.Value,
		Prev:       prev,
		PrevOK:     prevOK,
	})
	return controller.Suppress
}

// onEgress captures-and-suppresses network writes from replicated
// execution and reports the primary's own FLOW_MOD / PACKET_OUT writes.
func (m *Module) onEgress(c *controller.Controller, w *controller.EgressWrite) controller.HookAction {
	if !reportableEgress(w.Msg) {
		return controller.Proceed
	}
	if w.Ctx.Tainted() {
		m.captured[w.Ctx.ID]++
		m.send(Response{
			Controller: c.ID(),
			Trigger:    w.Ctx.ID,
			Kind:       SecondaryExec,
			Tainted:    true,
			Primary:    w.Ctx.Primary,
			DPID:       w.DPID,
			MsgType:    w.Msg.Type(),
			MsgBody:    CanonicalMessage(w.Msg),
			WireLen:    openflow.WireLen(w.Msg),
		})
		return controller.Suppress
	}
	m.send(Response{
		Controller: c.ID(),
		Trigger:    ctxTrigger(w.Ctx),
		Kind:       NetworkWrite,
		Primary:    ctxPrimary(w.Ctx, c.ID()),
		DPID:       w.DPID,
		MsgType:    w.Msg.Type(),
		MsgBody:    CanonicalMessage(w.Msg),
		WireLen:    openflow.WireLen(w.Msg),
	})
	return controller.Proceed
}

// onProcessStart snapshots the pre-trigger store state; all responses for
// this trigger carry it, making primary and secondary snapshots
// comparable regardless of the side-effects the trigger itself produces.
func (m *Module) onProcessStart(ctx *trigger.Context) {
	m.snapshots[ctx.ID] = m.ctrl.Node().Digest()
	if m.tracer != nil {
		m.tracer.StartSpan(string(ctx.ID), "exec", m.node)
	}
}

// onProcessed reports no-op replicated executions so the validator can
// tell "nothing to do" apart from response omission, and releases the
// per-trigger snapshot.
func (m *Module) onProcessed(_ topo.DPID, _ openflow.Message, ctx *trigger.Context) {
	if m.tracer != nil {
		m.tracer.EndSpan(string(ctx.ID), "exec", m.node, "")
	}
	if ctx.Tainted() && m.captured[ctx.ID] == 0 {
		m.send(Response{
			Controller: m.ctrl.ID(),
			Trigger:    ctx.ID,
			Kind:       ExecDone,
			Tainted:    true,
			Primary:    ctx.Primary,
		})
	}
	delete(m.captured, ctx.ID)
	// Release the snapshot after in-flight relays (e.g. bus-delayed
	// FlowsDB applies) had a chance to use it.
	id := ctx.ID
	m.eng.Schedule(50*time.Millisecond, func() { delete(m.snapshots, id) })
}

// onStoreEvent relays cache updates applied at this replica. To keep the
// validator's per-trigger response count at k+1 (§IV-C), relays are
// sampled: the origin plus k deterministically chosen replicas relay each
// event; the rest stay silent.
func (m *Module) onStoreEvent(_ store.NodeID, ev store.Event, _ bool) {
	if !m.shouldRelay(ev) {
		return
	}
	r := Response{
		Controller: m.ctrl.ID(),
		Trigger:    trigger.ID(ev.Tag),
		Kind:       CacheUpdate,
		Primary:    ev.Origin,
		Cache:      ev.Cache,
		Op:         ev.Op,
		Key:        ev.Key,
		Value:      ev.Value,
		Prev:       ev.Prev,
		PrevOK:     ev.PrevOK,
		// Cache updates "are replicated automatically to all cache
		// instances and require no explicit propagation" (§IV-C): the
		// validator taps them off the existing replication stream, so
		// they do not count toward JURY's network overhead.
		free: true,
	}
	// Pre-apply digest fallback: the XOR fold makes the state before
	// this event recoverable, used when no pipeline snapshot exists
	// (e.g. bus-delayed applies, remote replicas).
	m.sendWithDigest(r, m.ctrl.Node().Digest()^store.EventDigest(ev))
}

func (m *Module) shouldRelay(ev store.Event) bool {
	if m.cfg.RelayAll {
		return true
	}
	self := m.ctrl.ID()
	if ev.Origin == self {
		return true
	}
	peers := m.ctrl.Membership().Alive()
	var others []store.NodeID
	for _, id := range peers {
		if id != ev.Origin {
			others = append(others, id)
		}
	}
	if len(others) <= m.cfg.K {
		for _, id := range others {
			if id == self {
				return true
			}
		}
		return false
	}
	// Deterministic sample seeded by the event identity so that every
	// module picks the same k relays.
	h := fnv.New64a()
	h.Write([]byte(ev.Tag))
	var buf [16]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(uint64(ev.Origin) >> (8 * i))
		buf[8+i] = byte(ev.Seq >> (8 * i))
	}
	h.Write(buf[:])
	seed := h.Sum64()
	sort.Slice(others, func(i, j int) bool {
		return mix(seed, others[i]) < mix(seed, others[j])
	})
	for i := 0; i < m.cfg.K && i < len(others); i++ {
		if others[i] == self {
			return true
		}
	}
	return false
}

func mix(seed uint64, id store.NodeID) uint64 {
	x := seed ^ (uint64(id) * 0x9E3779B97F4A7C15)
	x ^= x >> 33
	x *= 0xFF51AFD7ED558CCD
	x ^= x >> 33
	return x
}

// HandleReplicated is the secondary-side entry point for a replicated
// southbound message. On the ODL path the message arrives doubly
// encapsulated and is stripped here (§VI-B), paying the decapsulation
// overhead measured in Fig. 4i.
func (m *Module) HandleReplicated(dpid topo.DPID, msg openflow.Message, ctx *trigger.Context, encapsulated []byte) {
	deliver := func(msg openflow.Message) {
		m.ctrl.HandleSouthbound(dpid, msg, ctx)
	}
	if encapsulated == nil {
		deliver(msg)
		return
	}
	inner, err := openflow.DecapsulatePacketIn(encapsulated)
	if err != nil {
		return
	}
	overhead := m.decapOverhead()
	m.DecapTimes.Add(overhead)
	if m.tracer != nil {
		start := m.eng.Now()
		m.tracer.Emit(string(ctx.ID), "decap", m.node, start, start+overhead, "")
	}
	m.eng.Schedule(overhead, func() { deliver(inner) })
}

func (m *Module) decapOverhead() time.Duration {
	mean := m.cfg.DecapMean
	if mean <= 0 {
		mean = 85 * time.Microsecond
	}
	d := time.Duration(m.eng.Rand().ExpFloat64() * float64(mean))
	if max := 4 * mean; d > max {
		d = max
	}
	return d
}

// send relays a response to the out-of-band validator, using the trigger's
// pipeline snapshot as the state digest when available.
func (m *Module) send(r Response) {
	m.sendWithDigest(r, m.ctrl.Node().Digest())
}

func (m *Module) sendWithDigest(r Response, fallback uint64) {
	if digest, ok := m.snapshots[r.Trigger]; ok {
		r.StateDigest = digest
	} else {
		r.StateDigest = fallback
	}
	r.StateApplied = m.ctrl.Node().Applied()
	m.validatorMsgs++
	if !r.free {
		m.validatorBytes += int64(r.Size())
	}
	m.eng.Schedule(m.cfg.ValidatorLatency, func() {
		r.At = m.eng.Now()
		m.validator.Submit(r)
	})
}

// reportableEgress filters the southbound messages JURY validates:
// FLOW_MODs and PACKET_OUTs, excluding the controller's own LLDP discovery
// probes (well-known periodic traffic that by design has no cache
// side-effect).
func reportableEgress(msg openflow.Message) bool {
	switch m := msg.(type) {
	case *openflow.FlowMod:
		return true
	case *openflow.PacketOut:
		if pf, err := openflow.ParsePacket(m.Data, 0); err == nil && pf.EthType == openflow.EthTypeLLDP {
			return false
		}
		return true
	default:
		return false
	}
}

func ctxTrigger(ctx *trigger.Context) trigger.ID {
	if ctx == nil {
		return ""
	}
	return ctx.ID
}

func ctxPrimary(ctx *trigger.Context, fallback store.NodeID) store.NodeID {
	if ctx == nil || ctx.Primary == 0 {
		return fallback
	}
	return ctx.Primary
}
