package metrics

import (
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestDistributionPercentiles(t *testing.T) {
	var d Distribution
	for i := 1; i <= 100; i++ {
		d.Add(time.Duration(i) * time.Millisecond)
	}
	tests := []struct {
		p    float64
		want time.Duration
	}{
		{0, time.Millisecond},
		{100, 100 * time.Millisecond},
		{50, 50*time.Millisecond + 500*time.Microsecond},
	}
	for _, tt := range tests {
		if got := d.Percentile(tt.p); got != tt.want {
			t.Errorf("P%.0f = %v, want %v", tt.p, got, tt.want)
		}
	}
}

func TestDistributionEmpty(t *testing.T) {
	var d Distribution
	if d.Percentile(50) != 0 || d.Mean() != 0 || d.Max() != 0 || d.Min() != 0 {
		t.Fatal("empty distribution should return zeros")
	}
	if d.CDF(10) != nil {
		t.Fatal("empty CDF should be nil")
	}
}

func TestDistributionMeanMinMax(t *testing.T) {
	var d Distribution
	d.Add(10 * time.Millisecond)
	d.Add(20 * time.Millisecond)
	d.Add(30 * time.Millisecond)
	if d.Mean() != 20*time.Millisecond {
		t.Errorf("mean = %v", d.Mean())
	}
	if d.Min() != 10*time.Millisecond || d.Max() != 30*time.Millisecond {
		t.Errorf("min/max = %v/%v", d.Min(), d.Max())
	}
}

func TestDistributionFractionBelow(t *testing.T) {
	var d Distribution
	for i := 0; i < 10; i++ {
		d.Add(time.Duration(i) * time.Millisecond)
	}
	if got := d.FractionBelow(5 * time.Millisecond); got != 0.5 {
		t.Errorf("FractionBelow(5ms) = %v, want 0.5", got)
	}
	if got := d.FractionBelow(100 * time.Millisecond); got != 1.0 {
		t.Errorf("FractionBelow(100ms) = %v, want 1", got)
	}
}

func TestDistributionCDFMonotonic(t *testing.T) {
	var d Distribution
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 1000; i++ {
		d.Add(time.Duration(rng.Intn(1e6)))
	}
	cdf := d.CDF(50)
	if len(cdf) != 50 {
		t.Fatalf("points = %d", len(cdf))
	}
	for i := 1; i < len(cdf); i++ {
		if cdf[i].Value < cdf[i-1].Value || cdf[i].Fraction < cdf[i-1].Fraction {
			t.Fatalf("CDF not monotonic at %d", i)
		}
	}
	if cdf[0].Fraction != 0 || cdf[len(cdf)-1].Fraction != 1 {
		t.Fatal("CDF endpoints wrong")
	}
}

func TestDistributionPercentileMonotonicProperty(t *testing.T) {
	f := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		var d Distribution
		for _, v := range raw {
			d.Add(time.Duration(v % 1e9))
		}
		prev := time.Duration(-1)
		for p := 0.0; p <= 100; p += 7 {
			cur := d.Percentile(p)
			if cur < prev {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDistributionSamplesSorted(t *testing.T) {
	var d Distribution
	d.Add(3)
	d.Add(1)
	d.Add(2)
	s := d.Samples()
	if !sort.SliceIsSorted(s, func(i, j int) bool { return s[i] < s[j] }) {
		t.Fatalf("samples not sorted: %v", s)
	}
	// Returned slice must be a copy.
	s[0] = 999
	if d.Min() == 999 {
		t.Fatal("Samples leaked internal slice")
	}
}

func TestSeriesRates(t *testing.T) {
	s := NewSeries(time.Second)
	for i := 0; i < 10; i++ {
		s.Record(500 * time.Millisecond) // bin 0
	}
	for i := 0; i < 20; i++ {
		s.Record(1500 * time.Millisecond) // bin 1
	}
	if s.Total() != 30 {
		t.Fatalf("total = %d", s.Total())
	}
	if got := s.Rate(800 * time.Millisecond); got != 10 {
		t.Fatalf("rate bin0 = %v", got)
	}
	if got := s.Rate(time.Second + 1); got != 20 {
		t.Fatalf("rate bin1 = %v", got)
	}
	if got := s.Rate(10 * time.Second); got != 0 {
		t.Fatalf("rate empty bin = %v", got)
	}
}

func TestSeriesMeanRate(t *testing.T) {
	s := NewSeries(time.Second)
	for i := 0; i < 100; i++ {
		s.Record(time.Duration(i) * 100 * time.Millisecond) // 10s span
	}
	got := s.MeanRate(0, 10*time.Second)
	if got != 10 {
		t.Fatalf("mean rate = %v, want 10", got)
	}
}

func TestSeriesSteadyRateSkipsWarmup(t *testing.T) {
	s := NewSeries(time.Second)
	// Warmup burst in bin 0, steady 5/s in bins 1..9, partial bin 10.
	for i := 0; i < 1000; i++ {
		s.Record(100 * time.Millisecond)
	}
	for b := 1; b <= 9; b++ {
		for i := 0; i < 5; i++ {
			s.Record(time.Duration(b)*time.Second + time.Duration(i)*time.Millisecond)
		}
	}
	s.Record(10*time.Second + time.Millisecond)
	got := s.SteadyRate(time.Second)
	if got != 5 {
		t.Fatalf("steady rate = %v, want 5", got)
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	c.Add(5)
	c.Add(7)
	if c.Value() != 12 {
		t.Fatalf("counter = %d", c.Value())
	}
}

func TestFormatTableAligns(t *testing.T) {
	out := FormatTable([]string{"a", "long-header"}, [][]string{{"xx", "1"}, {"y", "22"}})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d", len(lines))
	}
	if len(lines[0]) != len(lines[1]) || len(lines[1]) != len(lines[2]) {
		t.Fatalf("rows not aligned:\n%s", out)
	}
}

func TestSnapshotFrozenAcrossAdds(t *testing.T) {
	var d Distribution
	d.Add(30 * time.Millisecond)
	d.Add(10 * time.Millisecond)
	d.Add(20 * time.Millisecond)
	snap := d.Snapshot()
	if snap.Count() != 3 || snap.Sum() != 60*time.Millisecond {
		t.Fatalf("snapshot = %d samples / %v sum", snap.Count(), snap.Sum())
	}
	if snap.Min() != 10*time.Millisecond || snap.Max() != 30*time.Millisecond {
		t.Fatalf("snapshot min/max = %v/%v", snap.Min(), snap.Max())
	}
	// Mutating the distribution must not disturb the view (copy-on-write).
	d.Add(5 * time.Millisecond)
	d.Add(40 * time.Millisecond)
	if snap.Count() != 3 || snap.Min() != 10*time.Millisecond || snap.Max() != 30*time.Millisecond {
		t.Fatalf("snapshot mutated by later Adds: %d samples, min %v, max %v",
			snap.Count(), snap.Min(), snap.Max())
	}
	if d.Count() != 5 || d.Min() != 5*time.Millisecond || d.Max() != 40*time.Millisecond {
		t.Fatalf("distribution lost samples after snapshot: %d / %v / %v",
			d.Count(), d.Min(), d.Max())
	}
	if got, want := snap.Percentile(50), 20*time.Millisecond; got != want {
		t.Fatalf("snapshot p50 = %v, want %v", got, want)
	}
}

func TestSnapshotEmpty(t *testing.T) {
	var d Distribution
	snap := d.Snapshot()
	if snap.Count() != 0 || snap.Sum() != 0 || snap.Mean() != 0 ||
		snap.Min() != 0 || snap.Max() != 0 || snap.Percentile(99) != 0 {
		t.Fatal("empty snapshot returned nonzero statistics")
	}
}

func TestSnapshotMatchesDistributionQueries(t *testing.T) {
	var d Distribution
	for i := 1; i <= 100; i++ {
		d.Add(time.Duration(i) * time.Millisecond)
	}
	snap := d.Snapshot()
	for _, p := range []float64{0, 25, 50, 90, 95, 99, 100} {
		if got, want := snap.Percentile(p), d.Percentile(p); got != want {
			t.Fatalf("p%v: snapshot %v != distribution %v", p, got, want)
		}
	}
	if snap.Mean() != d.Mean() {
		t.Fatalf("mean: snapshot %v != distribution %v", snap.Mean(), d.Mean())
	}
}

func TestSortCachedAcrossQueryBatch(t *testing.T) {
	var d Distribution
	for i := 0; i < 1000; i++ {
		d.Add(time.Duration(1000-i) * time.Microsecond)
	}
	// A batch of queries after a batch of Adds must not re-sort per call:
	// with the cache each query after the first is O(1)/O(log n).
	allocs := testing.AllocsPerRun(100, func() {
		_ = d.Percentile(50)
		_ = d.Max()
		_ = d.Min()
		_ = d.FractionBelow(500 * time.Microsecond)
	})
	if allocs != 0 {
		t.Fatalf("query batch allocated %v/op after sort cache, want 0", allocs)
	}
}
