// Package metrics provides the small statistics toolkit used by the JURY
// evaluation harness: latency distributions (CDFs, percentiles), rate
// counters and time-binned series matching the figures of the paper.
package metrics

import (
	"encoding/json"
	"fmt"
	"math"
	"slices"
	"sort"
	"strings"
	"time"
)

// Distribution accumulates duration samples and answers percentile and CDF
// queries. The zero value is ready to use.
//
// Percentile/Max/Min/FractionBelow sort lazily and cache the sorted state,
// so a batch of queries after a batch of Adds pays for one sort. Snapshot
// returns an immutable view sharing the sorted backing array (no copy per
// scrape); the next Add after a Snapshot clones the samples so the view
// stays frozen.
type Distribution struct {
	samples []time.Duration
	sum     time.Duration
	sorted  bool
	// shared marks the backing array as referenced by a Snapshot;
	// mutations must copy-on-write.
	shared bool
}

// Add records one sample.
func (d *Distribution) Add(v time.Duration) {
	if d.shared {
		d.samples = append([]time.Duration(nil), d.samples...)
		d.shared = false
	}
	d.samples = append(d.samples, v)
	d.sum += v
	d.sorted = false
}

// Count returns the number of samples.
func (d *Distribution) Count() int { return len(d.samples) }

// Sum returns the sum of all samples.
func (d *Distribution) Sum() time.Duration { return d.sum }

// Percentile returns the p-th percentile (p in [0,100]) using
// nearest-rank interpolation; it returns 0 for an empty distribution.
func (d *Distribution) Percentile(p float64) time.Duration {
	d.sort()
	return percentileSorted(d.samples, p)
}

// percentileSorted computes the interpolated percentile of an ascending
// sample slice.
func percentileSorted(samples []time.Duration, p float64) time.Duration {
	if len(samples) == 0 {
		return 0
	}
	if p <= 0 {
		return samples[0]
	}
	if p >= 100 {
		return samples[len(samples)-1]
	}
	rank := p / 100 * float64(len(samples)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return samples[lo]
	}
	frac := rank - float64(lo)
	return samples[lo] + time.Duration(frac*float64(samples[hi]-samples[lo]))
}

// Mean returns the arithmetic mean, or 0 if empty.
func (d *Distribution) Mean() time.Duration {
	if len(d.samples) == 0 {
		return 0
	}
	return d.sum / time.Duration(len(d.samples))
}

// Max returns the largest sample, or 0 if empty.
func (d *Distribution) Max() time.Duration {
	if len(d.samples) == 0 {
		return 0
	}
	d.sort()
	return d.samples[len(d.samples)-1]
}

// Min returns the smallest sample, or 0 if empty.
func (d *Distribution) Min() time.Duration {
	if len(d.samples) == 0 {
		return 0
	}
	d.sort()
	return d.samples[0]
}

// FractionBelow returns the fraction of samples strictly below limit.
func (d *Distribution) FractionBelow(limit time.Duration) float64 {
	if len(d.samples) == 0 {
		return 0
	}
	d.sort()
	idx := sort.Search(len(d.samples), func(i int) bool { return d.samples[i] >= limit })
	return float64(idx) / float64(len(d.samples))
}

// CDF returns (value, cumulative fraction) pairs at the given number of
// evenly spaced quantiles, suitable for plotting Figs. 4a-4d and 4i.
func (d *Distribution) CDF(points int) []CDFPoint {
	if len(d.samples) == 0 || points < 2 {
		return nil
	}
	d.sort()
	out := make([]CDFPoint, 0, points)
	for i := 0; i < points; i++ {
		frac := float64(i) / float64(points-1)
		idx := int(frac * float64(len(d.samples)-1))
		out = append(out, CDFPoint{Value: d.samples[idx], Fraction: frac})
	}
	return out
}

// Samples returns a copy of the recorded samples in sorted order.
func (d *Distribution) Samples() []time.Duration {
	d.sort()
	out := make([]time.Duration, len(d.samples))
	copy(out, d.samples)
	return out
}

func (d *Distribution) sort() {
	if d.sorted {
		return
	}
	slices.Sort(d.samples) // non-reflective sort: no per-query closure churn
	d.sorted = true
}

// Snapshot returns an immutable sorted view of the current samples. The
// view shares the distribution's backing array — no copy per scrape —
// and stays frozen: the next Add clones the samples before appending.
func (d *Distribution) Snapshot() Snapshot {
	d.sort()
	d.shared = true
	return Snapshot{samples: d.samples[:len(d.samples):len(d.samples)], sum: d.sum}
}

// Snapshot is an immutable sorted view of a Distribution, safe to query
// without further synchronization once taken.
type Snapshot struct {
	samples []time.Duration
	sum     time.Duration
}

// Count returns the number of samples in the view.
func (s Snapshot) Count() int { return len(s.samples) }

// Sum returns the sum of the samples in the view.
func (s Snapshot) Sum() time.Duration { return s.sum }

// Mean returns the arithmetic mean, or 0 if empty.
func (s Snapshot) Mean() time.Duration {
	if len(s.samples) == 0 {
		return 0
	}
	return s.sum / time.Duration(len(s.samples))
}

// Min returns the smallest sample, or 0 if empty.
func (s Snapshot) Min() time.Duration {
	if len(s.samples) == 0 {
		return 0
	}
	return s.samples[0]
}

// Max returns the largest sample, or 0 if empty.
func (s Snapshot) Max() time.Duration {
	if len(s.samples) == 0 {
		return 0
	}
	return s.samples[len(s.samples)-1]
}

// Percentile returns the p-th percentile with the same nearest-rank
// interpolation as Distribution.Percentile.
func (s Snapshot) Percentile(p float64) time.Duration {
	return percentileSorted(s.samples, p)
}

// MarshalJSON encodes the samples, sorted, as an array of nanosecond
// counts. Sorting makes the encoding canonical: two distributions with
// the same sample multiset encode identically no matter the insertion
// order, which is what lets sweep results be compared byte-for-byte and
// cached on disk.
func (d Distribution) MarshalJSON() ([]byte, error) {
	return json.Marshal(d.Samples()) //jurylint:allow vclockleak -- dump format is virtual ns by contract (canonical, cache-compared)
}

// UnmarshalJSON restores a distribution serialized by MarshalJSON.
func (d *Distribution) UnmarshalJSON(data []byte) error {
	var samples []time.Duration
	if err := json.Unmarshal(data, &samples); err != nil {
		return err
	}
	d.samples = samples
	d.sum = 0
	for _, v := range samples {
		d.sum += v
	}
	d.sorted = false
	d.shared = false
	return nil
}

// CDFPoint is one point of an empirical CDF.
type CDFPoint struct {
	Value    time.Duration `json:"value"`
	Fraction float64       `json:"fraction"`
}

// Series is a time-binned event counter: each recorded event increments the
// bin its timestamp falls into. It backs the throughput-over-time plots
// (Fig. 4e) and rate measurements (Figs. 4f-4h).
type Series struct {
	bin   time.Duration
	bins  []int64
	total int64
}

// NewSeries creates a series with the given bin width.
func NewSeries(bin time.Duration) *Series {
	if bin <= 0 {
		bin = time.Second
	}
	return &Series{bin: bin}
}

// Record counts one event at virtual time t.
func (s *Series) Record(t time.Duration) {
	idx := int(t / s.bin)
	for len(s.bins) <= idx {
		s.bins = append(s.bins, 0)
	}
	s.bins[idx]++
	s.total++
}

// Total returns the number of recorded events.
func (s *Series) Total() int64 { return s.total }

// Rate returns events per second in the bin containing t.
func (s *Series) Rate(t time.Duration) float64 {
	idx := int(t / s.bin)
	if idx < 0 || idx >= len(s.bins) {
		return 0
	}
	return float64(s.bins[idx]) / s.bin.Seconds()
}

// Rates returns the per-bin rates (events/second).
func (s *Series) Rates() []float64 {
	out := make([]float64, len(s.bins))
	for i, c := range s.bins {
		out[i] = float64(c) / s.bin.Seconds()
	}
	return out
}

// MeanRate returns the average rate over [from, to).
func (s *Series) MeanRate(from, to time.Duration) float64 {
	if to <= from {
		return 0
	}
	var count int64
	for i, c := range s.bins {
		start := time.Duration(i) * s.bin
		if start >= from && start < to {
			count += c
		}
	}
	return float64(count) / (to - from).Seconds()
}

// SteadyRate returns the mean rate after discarding the warmup prefix and
// the final (possibly partial) bin.
func (s *Series) SteadyRate(warmup time.Duration) float64 {
	end := time.Duration(len(s.bins)-1) * s.bin
	if end <= warmup {
		return s.MeanRate(0, time.Duration(len(s.bins))*s.bin)
	}
	return s.MeanRate(warmup, end)
}

// Counter is a simple monotonic counter with byte/message semantics.
type Counter struct {
	n int64
}

// Add increments the counter by delta.
func (c *Counter) Add(delta int64) { c.n += delta }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.n }

// FormatTable renders rows of labeled values as an aligned text table,
// used by cmd/juryfig and EXPERIMENTS.md generation.
func FormatTable(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}
