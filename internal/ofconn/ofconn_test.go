package ofconn

import (
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"github.com/jurysdn/jury/internal/cluster"
	"github.com/jurysdn/jury/internal/controller"
	"github.com/jurysdn/jury/internal/dataplane"
	"github.com/jurysdn/jury/internal/openflow"
	"github.com/jurysdn/jury/internal/simnet"
	"github.com/jurysdn/jury/internal/store"
	"github.com/jurysdn/jury/internal/topo"
	"github.com/jurysdn/jury/internal/wire/wiretest"
)

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("condition not met within deadline")
}

// TestLiveSwitchControllerBridge runs a real controller and a real switch
// in separate event domains connected by a real TCP socket: the switch's
// PACKET_IN crosses the wire, the controller's FLOW_MOD and PACKET_OUT
// come back, and the rule lands in the switch's table.
func TestLiveSwitchControllerBridge(t *testing.T) {
	// Controller domain.
	ctrlEng := simnet.NewEngine(1)
	ctrlPump := NewPump(ctrlEng, time.Millisecond)
	defer ctrlPump.Close()
	sc := store.NewCluster(ctrlEng, store.DefaultConfig(store.Eventual))
	members := cluster.NewMembership(cluster.SingleController, []store.NodeID{1}, []topo.DPID{1})
	profile := controller.ONOSProfile()
	profile.PausePeriod = 0
	profile.LLDPPeriod = 0
	var ctrl *controller.Controller
	ctrlPump.Do(func() {
		ctrl = controller.New(ctrlEng, 1, profile, sc.AddNode(1), members)
	})

	ce, err := ListenController("127.0.0.1:0", ctrlPump,
		func(dpid topo.DPID, msg openflow.Message, send func(openflow.Message)) {
			if _, ok := ctrl.Membership().Master(dpid); !ok {
				return
			}
			ctrl.HandleSouthbound(dpid, msg, nil)
			_ = send // downlink wired below via ConnectSwitch
		})
	if err != nil {
		t.Fatal(err)
	}
	defer ce.Close()

	// Switch domain.
	swEng := simnet.NewEngine(2)
	swPump := NewPump(swEng, time.Millisecond)
	defer swPump.Close()
	var (
		mu  sync.Mutex
		sw  *dataplane.Switch
		se  *SwitchEnd
		got []openflow.Message
	)
	swPump.Do(func() {
		sw = dataplane.NewSwitch(swEng, 1)
		sw.SetPorts([]uint16{1, 2})
	})
	se, err = DialSwitch(ce.Addr(), 1, swPump, func(msg openflow.Message) {
		mu.Lock()
		got = append(got, msg)
		mu.Unlock()
		sw.HandleControllerMessage(msg)
	})
	if err != nil {
		t.Fatal(err)
	}
	defer se.Close()
	swPump.Do(func() {
		sw.SetSendUp(func(msg openflow.Message) { _ = se.Send(msg) })
	})

	// Wire the controller's downlink through the live connection: the
	// ControllerEnd send closure isn't reachable here, so register the
	// downlink explicitly via ConnectSwitch using the session.
	ctrlPump.Do(func() {
		ctrl.ConnectSwitch(1, func(msg openflow.Message) {
			// Runs inside the controller pump: write without blocking it.
			m := msg
			go func() { _ = writeToSwitch(ce, m) }()
		})
	})
	_ = got

	// The handshake completes over the wire: the controller learns the
	// switch (SwitchDB) from the FEATURES_REPLY that crossed TCP.
	waitFor(t, func() bool {
		okCh := false
		ctrlPump.Do(func() {
			_, okCh = ctrl.Node().Get(store.SwitchDB, topo.DPID(1).String())
		})
		return okCh
	})

	// Teach the controller a host binding, then inject a packet at the
	// switch: PACKET_IN over TCP → reactive forwarding → FLOW_MOD +
	// PACKET_OUT over TCP → rule installed in the real switch table.
	h2 := topo.HostMAC(2)
	rec := `{"mac":"` + h2.String() + `","ip":"10.0.0.2","dpid":1,"port":2}`
	ctrlPump.Do(func() {
		ctrl.Node().Write(store.EdgesDB, store.OpCreate, h2.String(), rec, nil)
	})
	frame := openflow.TCPPacket(topo.HostMAC(1), h2, topo.HostIP(1), topo.HostIP(2), 1000, 80, 0x02, 0)
	swPump.Do(func() { sw.Inject(frame, 1) })

	waitFor(t, func() bool {
		n := 0
		swPump.Do(func() { n = len(sw.Table()) })
		return n == 1
	})
	var entry *dataplane.FlowEntry
	swPump.Do(func() { entry = sw.Table()[0] })
	if entry.Actions[0].Port != 2 {
		t.Fatalf("installed rule forwards to %d, want 2", entry.Actions[0].Port)
	}
}

// writeToSwitch sends a controller→switch message to the single bound
// session of the ControllerEnd (test helper: one switch connected).
func writeToSwitch(ce *ControllerEnd, msg openflow.Message) error {
	ce.mu.Lock()
	defer ce.mu.Unlock()
	for conn := range ce.conns {
		return openflow.WriteMessage(conn, msg)
	}
	return nil
}

func TestControllerEndRejectsUnboundTraffic(t *testing.T) {
	eng := simnet.NewEngine(1)
	pump := NewPump(eng, time.Millisecond)
	defer pump.Close()
	handled := 0
	ce, err := ListenController("127.0.0.1:0", pump,
		func(topo.DPID, openflow.Message, func(openflow.Message)) { handled++ })
	if err != nil {
		t.Fatal(err)
	}
	defer ce.Close()
	// A client that skips the HELLO binding gets dropped.
	se, err := DialSwitch(ce.Addr(), 42, pump, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer se.Close()
	// Proper binding works: a PACKET_IN reaches the handler.
	if err := se.Send(&openflow.PacketIn{InPort: 1, Data: openflow.TCPPacket(topo.HostMAC(1), topo.HostMAC(2), topo.HostIP(1), topo.HostIP(2), 1, 2, 0, 0)}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		n := 0
		pump.Do(func() { n = handled })
		return n == 1
	})
}

func TestPumpAdvancesVirtualTime(t *testing.T) {
	eng := simnet.NewEngine(1)
	pump := NewPump(eng, time.Millisecond)
	defer pump.Close()
	fired := false
	pump.Do(func() {
		eng.Schedule(5*time.Millisecond, func() { fired = true })
	})
	waitFor(t, func() bool {
		ok := false
		pump.Do(func() { ok = fired })
		return ok
	})
}

// TestPumpWithInjectedClock drives the bridge off a fake clock: virtual
// time advances exactly as far as the injected clock says, independent of
// the host clock.
func TestPumpWithInjectedClock(t *testing.T) {
	var (
		mu   sync.Mutex
		fake = time.Unix(1000, 0)
	)
	clock := func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return fake
	}
	eng := simnet.NewEngine(1)
	pump := NewPumpWithClock(eng, time.Millisecond, clock)
	defer pump.Close()

	fired := false
	pump.Do(func() {
		eng.Schedule(time.Hour, func() { fired = true })
	})
	pump.Do(func() {
		if fired {
			t.Fatal("event fired before the injected clock advanced")
		}
		if now := eng.Now(); now != 0 {
			t.Fatalf("virtual time moved to %v with a frozen clock", now)
		}
	})

	mu.Lock()
	fake = fake.Add(2 * time.Hour)
	mu.Unlock()
	pump.Do(func() {})
	pump.Do(func() {
		if !fired {
			t.Fatal("event did not fire after the injected clock advanced past it")
		}
		if now := eng.Now(); now != 2*time.Hour {
			t.Fatalf("virtual time = %v, want 2h", now)
		}
	})
}

// TestControllerEndAcceptBackoff scripts a burst of Accept failures and
// verifies the loop backs off on a doubling schedule (never hot-spins),
// recovers once accepts succeed again, and counts every failure.
func TestControllerEndAcceptBackoff(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fl := wiretest.WrapListener(ln)
	const failures = 4
	fl.FailAccepts(failures, errors.New("synthetic accept failure"))

	var (
		mu     sync.Mutex
		delays []time.Duration
	)
	sleep := func(d time.Duration, cancel <-chan struct{}) bool {
		mu.Lock()
		delays = append(delays, d)
		mu.Unlock()
		select {
		case <-cancel:
			return false
		default:
			return true
		}
	}
	eng := simnet.NewEngine(1)
	pump := NewPump(eng, time.Millisecond)
	defer pump.Close()
	handled := 0
	ce := newControllerEnd(fl, pump,
		func(topo.DPID, openflow.Message, func(openflow.Message)) { handled++ }, sleep)
	defer ce.Close()

	waitFor(t, func() bool { return ce.AcceptErrors() == failures })
	waitFor(t, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(delays) >= failures
	})
	mu.Lock()
	got := append([]time.Duration(nil), delays[:failures]...)
	mu.Unlock()
	want := acceptBackoffBase
	for i, d := range got {
		if d != want {
			t.Fatalf("delay %d = %v, want %v", i, d, want)
		}
		if want *= 2; want > acceptBackoffMax {
			want = acceptBackoffMax
		}
	}

	// The listener recovered: a real switch can still connect and bind.
	se, err := DialSwitch(ce.Addr(), 7, pump, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer se.Close()
	if err := se.Send(&openflow.PacketIn{InPort: 1, Data: openflow.TCPPacket(topo.HostMAC(1), topo.HostMAC(2), topo.HostIP(1), topo.HostIP(2), 1, 2, 0, 0)}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		n := 0
		pump.Do(func() { n = handled })
		return n == 1
	})
}

// TestControllerEndCloseUnderAcceptStorm closes the end while clients
// dial in a tight loop: Close must return promptly and no connection may
// be registered after its sweep.
func TestControllerEndCloseUnderAcceptStorm(t *testing.T) {
	eng := simnet.NewEngine(1)
	pump := NewPump(eng, time.Millisecond)
	defer pump.Close()
	ce, err := ListenController("127.0.0.1:0", pump,
		func(topo.DPID, openflow.Message, func(openflow.Message)) {})
	if err != nil {
		t.Fatal(err)
	}
	addr := ce.Addr()

	stop := make(chan struct{})
	var dialers sync.WaitGroup
	for i := 0; i < 4; i++ {
		dialers.Add(1)
		go func() {
			defer dialers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				conn, err := net.Dial("tcp", addr)
				if err != nil {
					continue
				}
				_ = conn.Close()
			}
		}()
	}
	time.Sleep(20 * time.Millisecond)

	closed := make(chan error, 1)
	go func() { closed <- ce.Close() }()
	select {
	case err := <-closed:
		if err != nil {
			t.Fatalf("close: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("ControllerEnd.Close did not return under accept storm")
	}
	close(stop)
	dialers.Wait()

	ce.mu.Lock()
	leaked := len(ce.conns)
	ce.mu.Unlock()
	if leaked != 0 {
		t.Fatalf("%d connections leaked past Close", leaked)
	}
	// Idempotent: a second Close is a no-op, not a panic.
	if err := ce.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}
