// Package ofconn carries OpenFlow 1.0 over real TCP connections, bridging
// the simulation-grade components (dataplane switches, controllers) across
// process or host boundaries: a ControllerEnd listens for switch
// connections and feeds a controller's southbound pipeline; a SwitchEnd
// dials out on behalf of a switch. Both ends pump their discrete-event
// engines with wall time, so the same event-driven components that run
// deterministically under simulation also run live.
package ofconn

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/jurysdn/jury/internal/openflow"
	"github.com/jurysdn/jury/internal/simnet"
	"github.com/jurysdn/jury/internal/topo"
)

// Accept-error backoff bounds: persistent failures (EMFILE, ECONNABORTED
// storms) retry on a doubling schedule instead of hot-spinning a core.
const (
	acceptBackoffBase = 5 * time.Millisecond
	acceptBackoffMax  = time.Second
)

// realSleep waits d or until cancel closes, reporting whether the full
// wait elapsed.
func realSleep(d time.Duration, cancel <-chan struct{}) bool {
	t := time.NewTimer(d) //jurylint:allow wallclock -- real-time backoff boundary
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-cancel:
		return false
	}
}

// Pump advances a discrete-event engine with wall-clock time, serializing
// all access to the event-driven components behind a mutex. Components
// created on the pumped engine must only be touched through Do.
type Pump struct {
	mu      sync.Mutex
	eng     *simnet.Engine // guarded by mu
	clock   func() time.Time
	started time.Time
	stop    chan struct{}
	done    sync.WaitGroup
}

// NewPump starts pumping eng every tick on the host clock.
func NewPump(eng *simnet.Engine, tick time.Duration) *Pump {
	return NewPumpWithClock(eng, tick, nil)
}

// NewPumpWithClock starts pumping eng every tick, reading elapsed real
// time from clock. A nil clock selects the host wall clock — the pump is
// the real-time boundary of the system; tests inject a fake clock to
// drive the bridge deterministically.
func NewPumpWithClock(eng *simnet.Engine, tick time.Duration, clock func() time.Time) *Pump {
	if tick <= 0 {
		tick = 2 * time.Millisecond
	}
	if clock == nil {
		clock = time.Now //jurylint:allow wallclock -- default clock at the real-time boundary
	}
	p := &Pump{eng: eng, clock: clock, started: clock(), stop: make(chan struct{})}
	p.done.Add(1)
	go func() {
		defer p.done.Done()
		ticker := time.NewTicker(tick) //jurylint:allow wallclock -- real-time pump cadence
		defer ticker.Stop()
		for {
			select {
			case <-p.stop:
				return
			case <-ticker.C:
				p.mu.Lock()
				p.advance()
				p.mu.Unlock()
			}
		}
	}()
	return p
}

// advance runs the engine up to the current elapsed clock time. Run's
// error is deliberately dropped: the only failures are ErrStopped and an
// event-budget overrun, both benign for a live pump that fires again on
// the next tick.
//
// Every call site holds p.mu (proven by the guardedby call graph).
//
//jurylint:allow errcrit -- benign Run errors for a live pump; see above
func (p *Pump) advance() {
	_ = p.eng.Run(p.clock().Sub(p.started))
}

// Do runs fn with exclusive access to the pumped engine's components,
// advancing virtual time to wall time first.
func (p *Pump) Do(fn func()) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.advance()
	fn()
}

// Close stops the pump.
func (p *Pump) Close() {
	close(p.stop)
	p.done.Wait()
}

// ControllerEnd accepts OpenFlow switch connections for a controller. The
// first message on each connection must be a HELLO whose XID carries the
// datapath id (a simple session-binding convention for this bridge).
type ControllerEnd struct {
	ln   net.Listener
	pump *Pump
	// handle feeds a southbound message into the controller; send
	// transmits a message back to the connected switch.
	handle func(dpid topo.DPID, msg openflow.Message, send func(openflow.Message))
	// sleep waits between Accept retries (injected by tests to pin the
	// backoff schedule).
	sleep func(d time.Duration, cancel <-chan struct{}) bool

	acceptErrs atomic.Int64

	mu     sync.Mutex
	conns  map[net.Conn]struct{} // guarded by mu
	closed bool                  // guarded by mu

	done      sync.WaitGroup
	stop      chan struct{}
	closeOnce sync.Once
}

// ListenController starts accepting switch connections on addr.
func ListenController(
	addr string,
	pump *Pump,
	handle func(dpid topo.DPID, msg openflow.Message, send func(openflow.Message)),
) (*ControllerEnd, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("ofconn: listen: %w", err)
	}
	return NewControllerEnd(ln, pump, handle), nil
}

// NewControllerEnd starts accepting switch connections on an existing
// listener, taking ownership of it. Tests use it to inject fault-wrapped
// listeners.
func NewControllerEnd(
	ln net.Listener,
	pump *Pump,
	handle func(dpid topo.DPID, msg openflow.Message, send func(openflow.Message)),
) *ControllerEnd {
	return newControllerEnd(ln, pump, handle, realSleep)
}

func newControllerEnd(
	ln net.Listener,
	pump *Pump,
	handle func(dpid topo.DPID, msg openflow.Message, send func(openflow.Message)),
	sleep func(d time.Duration, cancel <-chan struct{}) bool,
) *ControllerEnd {
	ce := &ControllerEnd{
		ln:     ln,
		pump:   pump,
		handle: handle,
		sleep:  sleep,
		conns:  make(map[net.Conn]struct{}),
		stop:   make(chan struct{}),
	}
	ce.done.Add(1)
	go ce.acceptLoop()
	return ce
}

// Addr returns the listen address.
func (ce *ControllerEnd) Addr() string { return ce.ln.Addr().String() }

// AcceptErrors returns the number of Accept failures retried so far.
func (ce *ControllerEnd) AcceptErrors() int64 { return ce.acceptErrs.Load() }

// Close stops the listener and all connections. Safe to call more than
// once. The closed flag flips under mu before the connection sweep, so a
// connection accepted concurrently can never be registered after the
// sweep and leak a blocked reader past Close.
func (ce *ControllerEnd) Close() error {
	var err error
	ce.closeOnce.Do(func() {
		ce.mu.Lock()
		ce.closed = true
		conns := make([]net.Conn, 0, len(ce.conns))
		for conn := range ce.conns {
			conns = append(conns, conn)
		}
		ce.mu.Unlock()
		close(ce.stop)
		err = ce.ln.Close()
		for _, conn := range conns {
			_ = conn.Close()
		}
	})
	ce.done.Wait()
	return err
}

func (ce *ControllerEnd) acceptLoop() {
	defer ce.done.Done()
	backoff := acceptBackoffBase
	for {
		conn, err := ce.ln.Accept()
		if err != nil {
			select {
			case <-ce.stop:
				return
			default:
			}
			if errors.Is(err, net.ErrClosed) {
				return
			}
			// Transient accept failure: back off instead of hot-spinning,
			// doubling up to the cap until the next success.
			ce.acceptErrs.Add(1)
			if !ce.sleep(backoff, ce.stop) {
				return
			}
			if backoff *= 2; backoff > acceptBackoffMax {
				backoff = acceptBackoffMax
			}
			continue
		}
		backoff = acceptBackoffBase
		ce.mu.Lock()
		if ce.closed {
			ce.mu.Unlock()
			_ = conn.Close()
			return
		}
		ce.conns[conn] = struct{}{}
		ce.mu.Unlock()
		ce.done.Add(1)
		go ce.serve(conn)
	}
}

func (ce *ControllerEnd) serve(conn net.Conn) {
	defer ce.done.Done()
	defer func() {
		ce.mu.Lock()
		delete(ce.conns, conn)
		ce.mu.Unlock()
		_ = conn.Close()
	}()
	var (
		writeMu sync.Mutex
		dpid    topo.DPID
		bound   bool
	)
	send := func(msg openflow.Message) {
		writeMu.Lock()
		defer writeMu.Unlock()
		_ = openflow.WriteMessage(conn, msg) //jurylint:allow errcrit -- best-effort push; a dead conn is reaped by the read loop
	}
	for {
		msg, err := openflow.ReadMessage(conn)
		if err != nil {
			return
		}
		if !bound {
			hello, ok := msg.(*openflow.Hello)
			if !ok {
				return // protocol violation: first message must bind
			}
			dpid = topo.DPID(hello.XID)
			bound = true
			send(&openflow.Hello{XID: hello.XID})
			continue
		}
		ce.pump.Do(func() { ce.handle(dpid, msg, send) })
	}
}

// SwitchEnd connects a switch to a remote controller over TCP.
type SwitchEnd struct {
	conn net.Conn
	pump *Pump
	// OnMessage receives controller-to-switch messages (run under the
	// pump's lock).
	OnMessage func(openflow.Message)

	writeMu sync.Mutex
	done    sync.WaitGroup
}

// DialSwitch connects to a controller end and binds the session to dpid.
func DialSwitch(addr string, dpid topo.DPID, pump *Pump, onMessage func(openflow.Message)) (*SwitchEnd, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("ofconn: dial: %w", err)
	}
	se := &SwitchEnd{conn: conn, pump: pump, OnMessage: onMessage}
	// Bind: HELLO with the dpid as XID.
	if err := openflow.WriteMessage(conn, &openflow.Hello{XID: uint32(dpid)}); err != nil {
		_ = conn.Close()
		return nil, fmt.Errorf("ofconn: bind: %w", err)
	}
	if _, err := openflow.ReadMessage(conn); err != nil { // HELLO reply
		_ = conn.Close()
		return nil, fmt.Errorf("ofconn: handshake: %w", err)
	}
	se.done.Add(1)
	go se.readLoop()
	return se, nil
}

// Send transmits a switch-to-controller message.
func (se *SwitchEnd) Send(msg openflow.Message) error {
	se.writeMu.Lock()
	defer se.writeMu.Unlock()
	return openflow.WriteMessage(se.conn, msg)
}

// Close closes the connection and waits for the reader.
func (se *SwitchEnd) Close() error {
	err := se.conn.Close()
	se.done.Wait()
	return err
}

func (se *SwitchEnd) readLoop() {
	defer se.done.Done()
	for {
		msg, err := openflow.ReadMessage(se.conn)
		if err != nil {
			return
		}
		se.pump.Do(func() {
			if se.OnMessage != nil {
				se.OnMessage(msg)
			}
		})
	}
}
