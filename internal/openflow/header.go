// Package openflow implements the subset of the OpenFlow 1.0 wire protocol
// needed by the JURY reproduction: message framing, PACKET_IN / PACKET_OUT /
// FLOW_MOD / FEATURES / ECHO / BARRIER messages, the ofp_match structure
// with wildcard semantics, output actions, and construction/parsing of the
// Ethernet, ARP, IPv4, TCP and LLDP packets that drive the control plane.
//
// All encodings follow the OpenFlow 1.0.0 specification byte layouts so the
// codec round-trips real message sizes; the network overhead accounting in
// the evaluation (§VII-B2) uses these sizes.
package openflow

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Version is the OpenFlow protocol version implemented (1.0).
const Version = 0x01

// HeaderLen is the length of the ofp_header in bytes.
const HeaderLen = 8

// MsgType identifies an OpenFlow 1.0 message type.
type MsgType uint8

// OpenFlow 1.0 message types (ofp_type).
const (
	TypeHello           MsgType = 0
	TypeError           MsgType = 1
	TypeEchoRequest     MsgType = 2
	TypeEchoReply       MsgType = 3
	TypeVendor          MsgType = 4
	TypeFeaturesRequest MsgType = 5
	TypeFeaturesReply   MsgType = 6
	TypePacketIn        MsgType = 10
	TypeFlowRemoved     MsgType = 11
	TypePortStatus      MsgType = 12
	TypePacketOut       MsgType = 13
	TypeFlowMod         MsgType = 14
	TypeBarrierRequest  MsgType = 18
	TypeBarrierReply    MsgType = 19
)

var msgTypeNames = map[MsgType]string{
	TypeHello:           "HELLO",
	TypeError:           "ERROR",
	TypeEchoRequest:     "ECHO_REQUEST",
	TypeEchoReply:       "ECHO_REPLY",
	TypeVendor:          "VENDOR",
	TypeFeaturesRequest: "FEATURES_REQUEST",
	TypeFeaturesReply:   "FEATURES_REPLY",
	TypePacketIn:        "PACKET_IN",
	TypeFlowRemoved:     "FLOW_REMOVED",
	TypePortStatus:      "PORT_STATUS",
	TypePacketOut:       "PACKET_OUT",
	TypeFlowMod:         "FLOW_MOD",
	TypeStatsRequest:    "STATS_REQUEST",
	TypeStatsReply:      "STATS_REPLY",
	TypeBarrierRequest:  "BARRIER_REQUEST",
	TypeBarrierReply:    "BARRIER_REPLY",
}

// String returns the OpenFlow spec name for the type.
func (t MsgType) String() string {
	if s, ok := msgTypeNames[t]; ok {
		return s
	}
	return fmt.Sprintf("OFPT(%d)", uint8(t))
}

// Errors returned by the codec.
var (
	ErrTruncated       = errors.New("openflow: truncated message")
	ErrBadVersion      = errors.New("openflow: unsupported protocol version")
	ErrUnknownType     = errors.New("openflow: unknown message type")
	ErrBadLength       = errors.New("openflow: header length mismatch")
	ErrNotEncapsulated = errors.New("openflow: packet is not an encapsulated PACKET_IN")
)

// Header is the common ofp_header.
type Header struct {
	Ver  uint8
	Type MsgType
	Len  uint16
	XID  uint32
}

func (h Header) put(b []byte) {
	b[0] = h.Ver
	b[1] = uint8(h.Type)
	binary.BigEndian.PutUint16(b[2:4], h.Len)
	binary.BigEndian.PutUint32(b[4:8], h.XID)
}

func parseHeader(b []byte) (Header, error) {
	if len(b) < HeaderLen {
		return Header{}, ErrTruncated
	}
	h := Header{
		Ver:  b[0],
		Type: MsgType(b[1]),
		Len:  binary.BigEndian.Uint16(b[2:4]),
		XID:  binary.BigEndian.Uint32(b[4:8]),
	}
	if h.Ver != Version {
		return Header{}, fmt.Errorf("%w: %d", ErrBadVersion, h.Ver)
	}
	if int(h.Len) < HeaderLen {
		return Header{}, ErrBadLength
	}
	return h, nil
}

// Message is an OpenFlow message that can be marshaled to its wire format.
type Message interface {
	// Type returns the OpenFlow message type.
	Type() MsgType
	// XID returns the transaction identifier.
	TransactionID() uint32
	// Marshal returns the full wire encoding including the header.
	Marshal() []byte
}

// WireLen returns the encoded size of msg in bytes.
func WireLen(msg Message) int { return len(msg.Marshal()) }

// Parse decodes one complete message from b. The slice must contain exactly
// one message (as produced by Marshal or extracted by a framer).
func Parse(b []byte) (Message, error) {
	h, err := parseHeader(b)
	if err != nil {
		return nil, err
	}
	if int(h.Len) > len(b) {
		return nil, ErrTruncated
	}
	body := b[HeaderLen:h.Len]
	switch h.Type {
	case TypeHello:
		return &Hello{XID: h.XID}, nil
	case TypeEchoRequest:
		return &EchoRequest{XID: h.XID, Data: cloneBytes(body)}, nil
	case TypeEchoReply:
		return &EchoReply{XID: h.XID, Data: cloneBytes(body)}, nil
	case TypeFeaturesRequest:
		return &FeaturesRequest{XID: h.XID}, nil
	case TypeFeaturesReply:
		return parseFeaturesReply(h, body)
	case TypePacketIn:
		return parsePacketIn(h, body)
	case TypePacketOut:
		return parsePacketOut(h, body)
	case TypeFlowMod:
		return parseFlowMod(h, body)
	case TypeFlowRemoved:
		return parseFlowRemoved(h, body)
	case TypeBarrierRequest:
		return &BarrierRequest{XID: h.XID}, nil
	case TypeBarrierReply:
		return &BarrierReply{XID: h.XID}, nil
	case TypeStatsRequest:
		return parseStatsRequest(h, body)
	case TypeStatsReply:
		return parseStatsReply(h, body)
	case TypePortStatus:
		return parsePortStatus(h, body)
	case TypeError:
		return parseErrorMsg(h, body)
	default:
		return nil, fmt.Errorf("%w: %v", ErrUnknownType, h.Type)
	}
}

// ReadMessage reads one length-delimited message from r.
func ReadMessage(r io.Reader) (Message, error) {
	var hdr [HeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	h, err := parseHeader(hdr[:])
	if err != nil {
		return nil, err
	}
	buf := make([]byte, h.Len)
	copy(buf, hdr[:])
	if _, err := io.ReadFull(r, buf[HeaderLen:]); err != nil {
		return nil, fmt.Errorf("openflow: read body: %w", err)
	}
	return Parse(buf)
}

// WriteMessage writes msg to w in wire format.
func WriteMessage(w io.Writer, msg Message) error {
	_, err := w.Write(msg.Marshal())
	return err
}

func cloneBytes(b []byte) []byte {
	if len(b) == 0 {
		return nil
	}
	out := make([]byte, len(b))
	copy(out, b)
	return out
}

func marshalWithBody(t MsgType, xid uint32, body []byte) []byte {
	buf := make([]byte, HeaderLen+len(body))
	Header{Ver: Version, Type: t, Len: uint16(len(buf)), XID: xid}.put(buf)
	copy(buf[HeaderLen:], body)
	return buf
}
