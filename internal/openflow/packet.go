package openflow

import (
	"encoding/binary"
	"fmt"
)

// Ethernet types.
const (
	EthTypeIPv4 uint16 = 0x0800
	EthTypeARP  uint16 = 0x0806
	EthTypeLLDP uint16 = 0x88CC
	// EthTypeJuryEncap is the experimenter ethertype used to carry a full
	// OpenFlow PACKET_IN inside a data-plane frame (the ODL replication
	// path of §VI-A produces doubly encapsulated PACKET_INs).
	EthTypeJuryEncap uint16 = 0x88B5
)

// IP protocol numbers.
const (
	IPProtoICMP uint8 = 1
	IPProtoTCP  uint8 = 6
	IPProtoUDP  uint8 = 17
)

// ARP opcodes.
const (
	ARPRequest uint16 = 1
	ARPReply   uint16 = 2
)

// BroadcastMAC is the Ethernet broadcast address.
var BroadcastMAC = MAC{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF}

const ethHeaderLen = 14

// PacketFields is the parsed header tuple a switch matches flow entries
// against (§II: the fields of ofp_match extracted from a frame).
type PacketFields struct {
	InPort  uint16
	EthSrc  MAC
	EthDst  MAC
	EthType uint16
	VLAN    uint16
	VLANPCP uint8
	IPSrc   IPv4
	IPDst   IPv4
	IPProto uint8
	IPTOS   uint8
	TPSrc   uint16
	TPDst   uint16
	// ARP fields, populated when EthType is ARP.
	ARPOp       uint16
	ARPSenderIP IPv4
	ARPTargetIP IPv4
	// LLDP fields, populated when EthType is LLDP.
	LLDPChassisID uint64
	LLDPPortID    uint16
}

// EthernetFrame builds a frame with the given payload.
func EthernetFrame(src, dst MAC, ethType uint16, payload []byte) []byte {
	frame := make([]byte, ethHeaderLen+len(payload))
	copy(frame[0:6], dst[:])
	copy(frame[6:12], src[:])
	binary.BigEndian.PutUint16(frame[12:14], ethType)
	copy(frame[14:], payload)
	return frame
}

// ARPPacket builds an Ethernet ARP request or reply.
func ARPPacket(op uint16, srcMAC MAC, srcIP IPv4, dstMAC MAC, dstIP IPv4) []byte {
	payload := make([]byte, 28)
	binary.BigEndian.PutUint16(payload[0:2], 1) // hardware type: Ethernet
	binary.BigEndian.PutUint16(payload[2:4], EthTypeIPv4)
	payload[4] = 6 // hlen
	payload[5] = 4 // plen
	binary.BigEndian.PutUint16(payload[6:8], op)
	copy(payload[8:14], srcMAC[:])
	copy(payload[14:18], srcIP[:])
	copy(payload[18:24], dstMAC[:])
	copy(payload[24:28], dstIP[:])
	ethDst := dstMAC
	if op == ARPRequest {
		ethDst = BroadcastMAC
	}
	return EthernetFrame(srcMAC, ethDst, EthTypeARP, payload)
}

// TCPPacket builds an Ethernet+IPv4+TCP frame (headers only; flag bits in
// flags, e.g. 0x02 for SYN). payloadLen pads the frame so size accounting
// is realistic without materializing payload bytes beyond zeros.
func TCPPacket(srcMAC, dstMAC MAC, srcIP, dstIP IPv4, srcPort, dstPort uint16, flags uint8, payloadLen int) []byte {
	const ipHeaderLen, tcpHeaderLen = 20, 20
	ip := make([]byte, ipHeaderLen+tcpHeaderLen+payloadLen)
	ip[0] = 0x45 // version 4, IHL 5
	binary.BigEndian.PutUint16(ip[2:4], uint16(len(ip)))
	ip[8] = 64 // TTL
	ip[9] = IPProtoTCP
	copy(ip[12:16], srcIP[:])
	copy(ip[16:20], dstIP[:])
	tcp := ip[ipHeaderLen:]
	binary.BigEndian.PutUint16(tcp[0:2], srcPort)
	binary.BigEndian.PutUint16(tcp[2:4], dstPort)
	tcp[12] = 5 << 4 // data offset
	tcp[13] = flags
	return EthernetFrame(srcMAC, dstMAC, EthTypeIPv4, ip)
}

// LLDPPacket builds the LLDP frame used for topology discovery: the chassis
// ID TLV carries the emitting switch's datapath ID and the port ID TLV the
// egress port (the encoding ONOS/ODL discovery providers use).
func LLDPPacket(srcMAC MAC, dpid uint64, port uint16) []byte {
	payload := make([]byte, 0, 32)
	// Chassis ID TLV (type 1): subtype 7 (locally assigned), 8-byte dpid.
	payload = appendTLV(payload, 1, append([]byte{7}, be64(dpid)...))
	// Port ID TLV (type 2): subtype 7, 2-byte port.
	payload = appendTLV(payload, 2, append([]byte{7}, be16(port)...))
	// TTL TLV (type 3).
	payload = appendTLV(payload, 3, be16(120))
	// End of LLDPDU TLV.
	payload = appendTLV(payload, 0, nil)
	dst := MAC{0x01, 0x80, 0xC2, 0x00, 0x00, 0x0E}
	return EthernetFrame(srcMAC, dst, EthTypeLLDP, payload)
}

func appendTLV(b []byte, tlvType uint8, value []byte) []byte {
	hdr := uint16(tlvType)<<9 | uint16(len(value))
	b = append(b, byte(hdr>>8), byte(hdr))
	return append(b, value...)
}

func be16(v uint16) []byte {
	b := make([]byte, 2)
	binary.BigEndian.PutUint16(b, v)
	return b
}

func be64(v uint64) []byte {
	b := make([]byte, 8)
	binary.BigEndian.PutUint64(b, v)
	return b
}

// ParsePacket extracts match fields from an Ethernet frame received on
// inPort.
func ParsePacket(frame []byte, inPort uint16) (PacketFields, error) {
	var pf PacketFields
	if len(frame) < ethHeaderLen {
		return pf, fmt.Errorf("openflow: frame too short (%d bytes)", len(frame))
	}
	pf.InPort = inPort
	copy(pf.EthDst[:], frame[0:6])
	copy(pf.EthSrc[:], frame[6:12])
	pf.EthType = binary.BigEndian.Uint16(frame[12:14])
	payload := frame[ethHeaderLen:]
	switch pf.EthType {
	case EthTypeARP:
		if len(payload) < 28 {
			return pf, fmt.Errorf("openflow: truncated ARP payload")
		}
		pf.ARPOp = binary.BigEndian.Uint16(payload[6:8])
		copy(pf.ARPSenderIP[:], payload[14:18])
		copy(pf.ARPTargetIP[:], payload[24:28])
		// OpenFlow 1.0 reuses nw_src/nw_dst/nw_proto for ARP fields.
		pf.IPSrc = pf.ARPSenderIP
		pf.IPDst = pf.ARPTargetIP
		pf.IPProto = uint8(pf.ARPOp)
	case EthTypeIPv4:
		if len(payload) < 20 {
			return pf, fmt.Errorf("openflow: truncated IPv4 header")
		}
		ihl := int(payload[0]&0x0F) * 4
		if ihl < 20 || len(payload) < ihl {
			return pf, fmt.Errorf("openflow: bad IPv4 IHL")
		}
		pf.IPTOS = payload[1]
		pf.IPProto = payload[9]
		copy(pf.IPSrc[:], payload[12:16])
		copy(pf.IPDst[:], payload[16:20])
		l4 := payload[ihl:]
		if (pf.IPProto == IPProtoTCP || pf.IPProto == IPProtoUDP) && len(l4) >= 4 {
			pf.TPSrc = binary.BigEndian.Uint16(l4[0:2])
			pf.TPDst = binary.BigEndian.Uint16(l4[2:4])
		}
	case EthTypeLLDP:
		tlvs := payload
		for len(tlvs) >= 2 {
			hdr := binary.BigEndian.Uint16(tlvs[0:2])
			tlvType := uint8(hdr >> 9)
			tlvLen := int(hdr & 0x1FF)
			if len(tlvs) < 2+tlvLen {
				break
			}
			value := tlvs[2 : 2+tlvLen]
			switch tlvType {
			case 0:
				tlvs = nil
				continue
			case 1:
				if len(value) == 9 && value[0] == 7 {
					pf.LLDPChassisID = binary.BigEndian.Uint64(value[1:9])
				}
			case 2:
				if len(value) == 3 && value[0] == 7 {
					pf.LLDPPortID = binary.BigEndian.Uint16(value[1:3])
				}
			}
			tlvs = tlvs[2+tlvLen:]
		}
	}
	return pf, nil
}

// EncapsulatePacketIn wraps a marshaled PACKET_IN inside a data-plane frame
// with the experimenter ethertype. This is what the OVS replication rules do
// on the ODL path (§VI-A): the secondary controller receives the original
// PACKET_IN as the payload of a fresh PACKET_IN and must strip one layer.
func EncapsulatePacketIn(pin *PacketIn, replicatorMAC MAC) []byte {
	return EthernetFrame(replicatorMAC, BroadcastMAC, EthTypeJuryEncap, pin.Marshal())
}

// DecapsulatePacketIn recovers the inner PACKET_IN from a frame produced by
// EncapsulatePacketIn. It returns ErrNotEncapsulated when the frame does not
// carry the experimenter ethertype.
func DecapsulatePacketIn(frame []byte) (*PacketIn, error) {
	if len(frame) < ethHeaderLen {
		return nil, ErrTruncated
	}
	if binary.BigEndian.Uint16(frame[12:14]) != EthTypeJuryEncap {
		return nil, ErrNotEncapsulated
	}
	msg, err := Parse(frame[ethHeaderLen:])
	if err != nil {
		return nil, fmt.Errorf("openflow: decapsulate: %w", err)
	}
	pin, ok := msg.(*PacketIn)
	if !ok {
		return nil, fmt.Errorf("openflow: decapsulate: inner message is %v, want PACKET_IN", msg.Type())
	}
	return pin, nil
}

// IsEncapsulated reports whether the frame carries an encapsulated
// PACKET_IN.
func IsEncapsulated(frame []byte) bool {
	return len(frame) >= ethHeaderLen && binary.BigEndian.Uint16(frame[12:14]) == EthTypeJuryEncap
}
