package openflow

import (
	"encoding/binary"
	"fmt"
	"strings"
)

// MatchLen is the encoded length of ofp_match (OpenFlow 1.0).
const MatchLen = 40

// Wildcard flag bits (ofp_flow_wildcards).
const (
	WildcardInPort     uint32 = 1 << 0
	WildcardDLVLAN     uint32 = 1 << 1
	WildcardDLSrc      uint32 = 1 << 2
	WildcardDLDst      uint32 = 1 << 3
	WildcardDLType     uint32 = 1 << 4
	WildcardNWProto    uint32 = 1 << 5
	WildcardTPSrc      uint32 = 1 << 6
	WildcardTPDst      uint32 = 1 << 7
	wildcardNWSrcShift        = 8
	wildcardNWDstShift        = 14
	WildcardDLVLANPCP  uint32 = 1 << 20
	WildcardNWTOS      uint32 = 1 << 21
	// WildcardAll wildcards every field.
	WildcardAll uint32 = 0x3FFFFF
)

// MAC is a 48-bit Ethernet address.
type MAC [6]byte

// String renders the address in colon-hex form.
func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// IsZero reports whether the address is all zeros.
func (m MAC) IsZero() bool { return m == MAC{} }

// IPv4 is a 32-bit IPv4 address in host-independent array form.
type IPv4 [4]byte

// String renders the address in dotted-quad form.
func (ip IPv4) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", ip[0], ip[1], ip[2], ip[3])
}

// Uint32 returns the address as a big-endian integer.
func (ip IPv4) Uint32() uint32 { return binary.BigEndian.Uint32(ip[:]) }

// IPv4FromUint32 converts a big-endian integer to an address.
func IPv4FromUint32(v uint32) IPv4 {
	var ip IPv4
	binary.BigEndian.PutUint32(ip[:], v)
	return ip
}

// Match is the OpenFlow 1.0 ofp_match. A set wildcard bit means the
// corresponding field is ignored when matching.
type Match struct {
	Wildcards uint32
	InPort    uint16
	DLSrc     MAC
	DLDst     MAC
	DLVLAN    uint16
	DLVLANPCP uint8
	DLType    uint16
	NWTOS     uint8
	NWProto   uint8
	NWSrc     IPv4
	NWDst     IPv4
	TPSrc     uint16
	TPDst     uint16
}

// MatchAll returns a match that wildcards every field.
func MatchAll() Match { return Match{Wildcards: WildcardAll} }

// NWSrcMaskBits returns the number of wildcarded low bits of NWSrc (0-32).
func (m Match) NWSrcMaskBits() uint32 {
	bits := (m.Wildcards >> wildcardNWSrcShift) & 0x3F
	if bits > 32 {
		bits = 32
	}
	return bits
}

// NWDstMaskBits returns the number of wildcarded low bits of NWDst (0-32).
func (m Match) NWDstMaskBits() uint32 {
	bits := (m.Wildcards >> wildcardNWDstShift) & 0x3F
	if bits > 32 {
		bits = 32
	}
	return bits
}

// WithNWSrcMask sets the NWSrc wildcard to ignore the given number of low
// bits and returns the updated match.
func (m Match) WithNWSrcMask(bits uint32) Match {
	if bits > 32 {
		bits = 32
	}
	m.Wildcards = (m.Wildcards &^ (0x3F << wildcardNWSrcShift)) | (bits << wildcardNWSrcShift)
	return m
}

// WithNWDstMask sets the NWDst wildcard to ignore the given number of low
// bits and returns the updated match.
func (m Match) WithNWDstMask(bits uint32) Match {
	if bits > 32 {
		bits = 32
	}
	m.Wildcards = (m.Wildcards &^ (0x3F << wildcardNWDstShift)) | (bits << wildcardNWDstShift)
	return m
}

// ExactSrcDst returns the reactive src-dst match the ONOS-style forwarding
// module installs: exact DL source/destination, everything else wildcarded.
func ExactSrcDst(src, dst MAC) Match {
	m := MatchAll()
	m.Wildcards &^= WildcardDLSrc | WildcardDLDst
	m.DLSrc = src
	m.DLDst = dst
	return m
}

// ExactDst returns the proactive destination-only match the ODL-style
// forwarding module installs.
func ExactDst(dst MAC) Match {
	m := MatchAll()
	m.Wildcards &^= WildcardDLDst
	m.DLDst = dst
	return m
}

// Covers reports whether packet fields pf satisfy the match.
func (m Match) Covers(pf PacketFields) bool {
	w := m.Wildcards
	if w&WildcardInPort == 0 && m.InPort != pf.InPort {
		return false
	}
	if w&WildcardDLSrc == 0 && m.DLSrc != pf.EthSrc {
		return false
	}
	if w&WildcardDLDst == 0 && m.DLDst != pf.EthDst {
		return false
	}
	if w&WildcardDLVLAN == 0 && m.DLVLAN != pf.VLAN {
		return false
	}
	if w&WildcardDLVLANPCP == 0 && m.DLVLANPCP != pf.VLANPCP {
		return false
	}
	if w&WildcardDLType == 0 && m.DLType != pf.EthType {
		return false
	}
	if w&WildcardNWTOS == 0 && m.NWTOS != pf.IPTOS {
		return false
	}
	if w&WildcardNWProto == 0 && m.NWProto != pf.IPProto {
		return false
	}
	if bits := m.NWSrcMaskBits(); bits < 32 {
		mask := ^uint32(0) << bits
		if m.NWSrc.Uint32()&mask != pf.IPSrc.Uint32()&mask {
			return false
		}
	}
	if bits := m.NWDstMaskBits(); bits < 32 {
		mask := ^uint32(0) << bits
		if m.NWDst.Uint32()&mask != pf.IPDst.Uint32()&mask {
			return false
		}
	}
	if w&WildcardTPSrc == 0 && m.TPSrc != pf.TPSrc {
		return false
	}
	if w&WildcardTPDst == 0 && m.TPDst != pf.TPDst {
		return false
	}
	return true
}

// HierarchyValid reports whether the match respects the OpenFlow 1.0 field
// prerequisite hierarchy: L3 fields require DLType to be set (IPv4/ARP),
// and L4 ports require NWProto to be set (TCP/UDP/ICMP). The "ODL incorrect
// FLOW_MOD" fault (§III-B T3) installs a match violating this hierarchy;
// the shipped match-hierarchy policy detects it via this predicate.
func (m Match) HierarchyValid() bool {
	w := m.Wildcards
	l3Constrained := m.NWSrcMaskBits() < 32 || m.NWDstMaskBits() < 32 ||
		w&WildcardNWProto == 0 || w&WildcardNWTOS == 0
	dlTypeSet := w&WildcardDLType == 0
	if l3Constrained && !dlTypeSet {
		return false
	}
	if l3Constrained && dlTypeSet && m.DLType != EthTypeIPv4 && m.DLType != EthTypeARP {
		return false
	}
	l4Constrained := w&WildcardTPSrc == 0 || w&WildcardTPDst == 0
	if l4Constrained {
		if w&WildcardNWProto != 0 {
			return false
		}
		if m.NWProto != IPProtoTCP && m.NWProto != IPProtoUDP && m.NWProto != IPProtoICMP {
			return false
		}
	}
	return true
}

// Equal reports whether two matches are identical after normalizing the
// values of wildcarded fields (a wildcarded field's value is irrelevant).
func (m Match) Equal(o Match) bool {
	return m.normalize() == o.normalize()
}

func (m Match) normalize() Match {
	w := m.Wildcards
	if w&WildcardInPort != 0 {
		m.InPort = 0
	}
	if w&WildcardDLSrc != 0 {
		m.DLSrc = MAC{}
	}
	if w&WildcardDLDst != 0 {
		m.DLDst = MAC{}
	}
	if w&WildcardDLVLAN != 0 {
		m.DLVLAN = 0
	}
	if w&WildcardDLVLANPCP != 0 {
		m.DLVLANPCP = 0
	}
	if w&WildcardDLType != 0 {
		m.DLType = 0
	}
	if w&WildcardNWTOS != 0 {
		m.NWTOS = 0
	}
	if w&WildcardNWProto != 0 {
		m.NWProto = 0
	}
	if bits := m.NWSrcMaskBits(); bits >= 32 {
		m.NWSrc = IPv4{}
	} else if bits > 0 {
		mask := ^uint32(0) << bits
		m.NWSrc = IPv4FromUint32(m.NWSrc.Uint32() & mask)
	}
	if bits := m.NWDstMaskBits(); bits >= 32 {
		m.NWDst = IPv4{}
	} else if bits > 0 {
		mask := ^uint32(0) << bits
		m.NWDst = IPv4FromUint32(m.NWDst.Uint32() & mask)
	}
	if w&WildcardTPSrc != 0 {
		m.TPSrc = 0
	}
	if w&WildcardTPDst != 0 {
		m.TPDst = 0
	}
	return m
}

// String renders the non-wildcarded fields.
func (m Match) String() string {
	var parts []string
	w := m.Wildcards
	if w&WildcardInPort == 0 {
		parts = append(parts, fmt.Sprintf("in_port=%d", m.InPort))
	}
	if w&WildcardDLSrc == 0 {
		parts = append(parts, "dl_src="+m.DLSrc.String())
	}
	if w&WildcardDLDst == 0 {
		parts = append(parts, "dl_dst="+m.DLDst.String())
	}
	if w&WildcardDLType == 0 {
		parts = append(parts, fmt.Sprintf("dl_type=0x%04x", m.DLType))
	}
	if w&WildcardNWProto == 0 {
		parts = append(parts, fmt.Sprintf("nw_proto=%d", m.NWProto))
	}
	if m.NWSrcMaskBits() < 32 {
		parts = append(parts, fmt.Sprintf("nw_src=%s/%d", m.NWSrc, 32-m.NWSrcMaskBits()))
	}
	if m.NWDstMaskBits() < 32 {
		parts = append(parts, fmt.Sprintf("nw_dst=%s/%d", m.NWDst, 32-m.NWDstMaskBits()))
	}
	if w&WildcardTPSrc == 0 {
		parts = append(parts, fmt.Sprintf("tp_src=%d", m.TPSrc))
	}
	if w&WildcardTPDst == 0 {
		parts = append(parts, fmt.Sprintf("tp_dst=%d", m.TPDst))
	}
	if len(parts) == 0 {
		return "match=*"
	}
	return strings.Join(parts, ",")
}

func (m Match) put(b []byte) {
	binary.BigEndian.PutUint32(b[0:4], m.Wildcards)
	binary.BigEndian.PutUint16(b[4:6], m.InPort)
	copy(b[6:12], m.DLSrc[:])
	copy(b[12:18], m.DLDst[:])
	binary.BigEndian.PutUint16(b[18:20], m.DLVLAN)
	b[20] = m.DLVLANPCP
	b[21] = 0 // pad
	binary.BigEndian.PutUint16(b[22:24], m.DLType)
	b[24] = m.NWTOS
	b[25] = m.NWProto
	b[26], b[27] = 0, 0 // pad
	copy(b[28:32], m.NWSrc[:])
	copy(b[32:36], m.NWDst[:])
	binary.BigEndian.PutUint16(b[36:38], m.TPSrc)
	binary.BigEndian.PutUint16(b[38:40], m.TPDst)
}

func parseMatch(b []byte) (Match, error) {
	if len(b) < MatchLen {
		return Match{}, ErrTruncated
	}
	var m Match
	m.Wildcards = binary.BigEndian.Uint32(b[0:4])
	m.InPort = binary.BigEndian.Uint16(b[4:6])
	copy(m.DLSrc[:], b[6:12])
	copy(m.DLDst[:], b[12:18])
	m.DLVLAN = binary.BigEndian.Uint16(b[18:20])
	m.DLVLANPCP = b[20]
	m.DLType = binary.BigEndian.Uint16(b[22:24])
	m.NWTOS = b[24]
	m.NWProto = b[25]
	copy(m.NWSrc[:], b[28:32])
	copy(m.NWDst[:], b[32:36])
	m.TPSrc = binary.BigEndian.Uint16(b[36:38])
	m.TPDst = binary.BigEndian.Uint16(b[38:40])
	return m, nil
}
