package openflow

import (
	"encoding/binary"
)

// Stats and port-status message types (OpenFlow 1.0).
const (
	TypeStatsRequest MsgType = 16
	TypeStatsReply   MsgType = 17
)

// StatsType is the ofp_stats_types family. Only flow stats are needed.
const (
	// StatsFlow requests per-entry flow statistics.
	StatsFlow uint16 = 1
)

// FlowStatsRequest is OFPT_STATS_REQUEST with an ofp_flow_stats_request
// body (match + table + out_port).
type FlowStatsRequest struct {
	XID     uint32
	Match   Match
	TableID uint8
	OutPort uint16
}

// Type implements Message.
func (m *FlowStatsRequest) Type() MsgType { return TypeStatsRequest }

// TransactionID implements Message.
func (m *FlowStatsRequest) TransactionID() uint32 { return m.XID }

// Marshal implements Message.
func (m *FlowStatsRequest) Marshal() []byte {
	body := make([]byte, 4+MatchLen+4)
	binary.BigEndian.PutUint16(body[0:2], StatsFlow)
	m.Match.put(body[4 : 4+MatchLen])
	body[4+MatchLen] = m.TableID
	binary.BigEndian.PutUint16(body[4+MatchLen+2:4+MatchLen+4], m.OutPort)
	return marshalWithBody(TypeStatsRequest, m.XID, body)
}

func parseStatsRequest(h Header, body []byte) (Message, error) {
	if len(body) < 4+MatchLen+4 {
		return nil, ErrTruncated
	}
	match, err := parseMatch(body[4 : 4+MatchLen])
	if err != nil {
		return nil, err
	}
	return &FlowStatsRequest{
		XID:     h.XID,
		Match:   match,
		TableID: body[4+MatchLen],
		OutPort: binary.BigEndian.Uint16(body[4+MatchLen+2 : 4+MatchLen+4]),
	}, nil
}

// FlowStat is one entry of a flow-stats reply.
type FlowStat struct {
	Match       Match
	Priority    uint16
	DurationSec uint32
	IdleTimeout uint16
	HardTimeout uint16
	Cookie      uint64
	PacketCount uint64
	ByteCount   uint64
}

const flowStatLen = 2 + 1 + 1 + MatchLen + 4 + 4 + 2 + 2 + 2 + 6 + 8 + 8 + 8

// FlowStatsReply is OFPT_STATS_REPLY carrying flow entries.
type FlowStatsReply struct {
	XID   uint32
	Flows []FlowStat
}

// Type implements Message.
func (m *FlowStatsReply) Type() MsgType { return TypeStatsReply }

// TransactionID implements Message.
func (m *FlowStatsReply) TransactionID() uint32 { return m.XID }

// Marshal implements Message.
func (m *FlowStatsReply) Marshal() []byte {
	body := make([]byte, 4+len(m.Flows)*flowStatLen)
	binary.BigEndian.PutUint16(body[0:2], StatsFlow)
	off := 4
	for _, f := range m.Flows {
		binary.BigEndian.PutUint16(body[off:off+2], uint16(flowStatLen))
		f.Match.put(body[off+4 : off+4+MatchLen])
		o := off + 4 + MatchLen
		binary.BigEndian.PutUint32(body[o:o+4], f.DurationSec)
		binary.BigEndian.PutUint16(body[o+8:o+10], f.Priority)
		binary.BigEndian.PutUint16(body[o+10:o+12], f.IdleTimeout)
		binary.BigEndian.PutUint16(body[o+12:o+14], f.HardTimeout)
		binary.BigEndian.PutUint64(body[o+20:o+28], f.Cookie)
		binary.BigEndian.PutUint64(body[o+28:o+36], f.PacketCount)
		binary.BigEndian.PutUint64(body[o+36:o+44], f.ByteCount)
		off += flowStatLen
	}
	return marshalWithBody(TypeStatsReply, m.XID, body)
}

func parseStatsReply(h Header, body []byte) (Message, error) {
	if len(body) < 4 {
		return nil, ErrTruncated
	}
	reply := &FlowStatsReply{XID: h.XID}
	rest := body[4:]
	for len(rest) >= flowStatLen {
		match, err := parseMatch(rest[4 : 4+MatchLen])
		if err != nil {
			return nil, err
		}
		o := 4 + MatchLen
		reply.Flows = append(reply.Flows, FlowStat{
			Match:       match,
			DurationSec: binary.BigEndian.Uint32(rest[o : o+4]),
			Priority:    binary.BigEndian.Uint16(rest[o+8 : o+10]),
			IdleTimeout: binary.BigEndian.Uint16(rest[o+10 : o+12]),
			HardTimeout: binary.BigEndian.Uint16(rest[o+12 : o+14]),
			Cookie:      binary.BigEndian.Uint64(rest[o+20 : o+28]),
			PacketCount: binary.BigEndian.Uint64(rest[o+28 : o+36]),
			ByteCount:   binary.BigEndian.Uint64(rest[o+36 : o+44]),
		})
		rest = rest[flowStatLen:]
	}
	return reply, nil
}

// PortStatus is OFPT_PORT_STATUS: the switch notifies the controller of a
// port's link going down or up.
type PortStatus struct {
	XID    uint32
	Reason PortReason
	Port   uint16
	// Down reports the link state carried in the port's config/state
	// bits (true = link down).
	Down bool
}

// PortReason is the ofp_port_reason.
type PortReason uint8

// Port status reasons.
const (
	PortAdd    PortReason = 0
	PortDelete PortReason = 1
	PortModify PortReason = 2
)

// Type implements Message.
func (m *PortStatus) Type() MsgType { return TypePortStatus }

// TransactionID implements Message.
func (m *PortStatus) TransactionID() uint32 { return m.XID }

// Marshal implements Message. A minimal ofp_phy_port carries the port
// number and the OFPPS_LINK_DOWN state bit.
func (m *PortStatus) Marshal() []byte {
	const physPortLen = 48
	body := make([]byte, 8+physPortLen)
	body[0] = uint8(m.Reason)
	binary.BigEndian.PutUint16(body[8:10], m.Port)
	if m.Down {
		binary.BigEndian.PutUint32(body[8+28:8+32], 1) // OFPPS_LINK_DOWN
	}
	return marshalWithBody(TypePortStatus, m.XID, body)
}

func parsePortStatus(h Header, body []byte) (Message, error) {
	if len(body) < 8+48 {
		return nil, ErrTruncated
	}
	return &PortStatus{
		XID:    h.XID,
		Reason: PortReason(body[0]),
		Port:   binary.BigEndian.Uint16(body[8:10]),
		Down:   binary.BigEndian.Uint32(body[8+28:8+32])&1 != 0,
	}, nil
}
