package openflow

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, msg Message) Message {
	t.Helper()
	wire := msg.Marshal()
	got, err := Parse(wire)
	if err != nil {
		t.Fatalf("Parse(%v): %v", msg.Type(), err)
	}
	return got
}

func TestHelloRoundTrip(t *testing.T) {
	got := roundTrip(t, &Hello{XID: 7})
	if got.(*Hello).XID != 7 {
		t.Fatalf("xid = %d", got.(*Hello).XID)
	}
}

func TestEchoRoundTrip(t *testing.T) {
	req := &EchoRequest{XID: 1, Data: []byte("ping")}
	got := roundTrip(t, req).(*EchoRequest)
	if !bytes.Equal(got.Data, req.Data) {
		t.Fatalf("data = %q", got.Data)
	}
	rep := &EchoReply{XID: 1, Data: []byte("pong")}
	got2 := roundTrip(t, rep).(*EchoReply)
	if !bytes.Equal(got2.Data, rep.Data) {
		t.Fatalf("reply data = %q", got2.Data)
	}
}

func TestFeaturesReplyRoundTrip(t *testing.T) {
	msg := &FeaturesReply{
		XID:          3,
		DatapathID:   0xABCDEF,
		NumBuffers:   256,
		NumTables:    2,
		Capabilities: 0xC7,
		Actions:      0xFFF,
		Ports:        []uint16{1, 2, 3},
	}
	got := roundTrip(t, msg).(*FeaturesReply)
	if !reflect.DeepEqual(got, msg) {
		t.Fatalf("got %+v, want %+v", got, msg)
	}
}

func TestPacketInRoundTrip(t *testing.T) {
	frame := ARPPacket(ARPRequest, MAC{1}, IPv4{10, 0, 0, 1}, MAC{}, IPv4{10, 0, 0, 2})
	msg := &PacketIn{XID: 9, BufferID: 0xFFFFFFFF, TotalLen: uint16(len(frame)), InPort: 4, Reason: ReasonNoMatch, Data: frame}
	got := roundTrip(t, msg).(*PacketIn)
	if !reflect.DeepEqual(got, msg) {
		t.Fatalf("got %+v, want %+v", got, msg)
	}
}

func TestPacketOutRoundTrip(t *testing.T) {
	msg := &PacketOut{
		XID:      11,
		BufferID: 0xFFFFFFFF,
		InPort:   2,
		Actions:  []Action{Output(3), Output(PortFlood)},
		Data:     []byte{1, 2, 3, 4},
	}
	got := roundTrip(t, msg).(*PacketOut)
	if !reflect.DeepEqual(got, msg) {
		t.Fatalf("got %+v, want %+v", got, msg)
	}
}

func TestFlowModRoundTrip(t *testing.T) {
	m := ExactSrcDst(MAC{1, 2, 3, 4, 5, 6}, MAC{6, 5, 4, 3, 2, 1})
	msg := &FlowMod{
		XID:         21,
		Match:       m,
		Cookie:      0xDEADBEEF,
		Command:     FlowAdd,
		IdleTimeout: 10,
		HardTimeout: 60,
		Priority:    100,
		BufferID:    0xFFFFFFFF,
		OutPort:     PortNone,
		Flags:       FlagSendFlowRem,
		Actions:     []Action{Output(7)},
	}
	got := roundTrip(t, msg).(*FlowMod)
	if !reflect.DeepEqual(got, msg) {
		t.Fatalf("got %+v, want %+v", got, msg)
	}
}

func TestFlowRemovedRoundTrip(t *testing.T) {
	msg := &FlowRemoved{
		XID:         5,
		Match:       ExactDst(MAC{9}),
		Cookie:      77,
		Priority:    10,
		Reason:      RemovedIdleTimeout,
		DurationSec: 12,
		PacketCount: 34,
		ByteCount:   56,
	}
	got := roundTrip(t, msg).(*FlowRemoved)
	if !reflect.DeepEqual(got, msg) {
		t.Fatalf("got %+v, want %+v", got, msg)
	}
}

func TestErrorMsgRoundTrip(t *testing.T) {
	msg := &ErrorMsg{XID: 1, ErrType: 3, Code: 2, Data: []byte{0xAA}}
	got := roundTrip(t, msg).(*ErrorMsg)
	if !reflect.DeepEqual(got, msg) {
		t.Fatalf("got %+v, want %+v", got, msg)
	}
}

func TestBarrierRoundTrip(t *testing.T) {
	roundTrip(t, &BarrierRequest{XID: 1})
	roundTrip(t, &BarrierReply{XID: 2})
}

func TestParseRejectsBadVersion(t *testing.T) {
	wire := (&Hello{}).Marshal()
	wire[0] = 0x04
	if _, err := Parse(wire); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("err = %v, want ErrBadVersion", err)
	}
}

func TestParseRejectsTruncated(t *testing.T) {
	wire := (&FlowMod{Match: MatchAll()}).Marshal()
	if _, err := Parse(wire[:HeaderLen+10]); err == nil {
		t.Fatal("expected error for truncated body")
	}
	if _, err := Parse(wire[:4]); !errors.Is(err, ErrTruncated) {
		t.Fatal("expected ErrTruncated for short header")
	}
}

func TestReadWriteMessageStream(t *testing.T) {
	var buf bytes.Buffer
	msgs := []Message{
		&Hello{XID: 1},
		&PacketIn{XID: 2, InPort: 3, Data: []byte{1, 2}},
		&FlowMod{XID: 3, Match: MatchAll(), Actions: []Action{Output(1)}},
	}
	for _, m := range msgs {
		if err := WriteMessage(&buf, m); err != nil {
			t.Fatal(err)
		}
	}
	for _, want := range msgs {
		got, err := ReadMessage(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if got.Type() != want.Type() || got.TransactionID() != want.TransactionID() {
			t.Fatalf("got %v/%d, want %v/%d", got.Type(), got.TransactionID(), want.Type(), want.TransactionID())
		}
	}
}

func TestMatchAllCoversEverything(t *testing.T) {
	m := MatchAll()
	pf := PacketFields{InPort: 9, EthSrc: MAC{1}, EthDst: MAC{2}, EthType: EthTypeIPv4, IPProto: IPProtoTCP, TPDst: 80}
	if !m.Covers(pf) {
		t.Fatal("wildcard-all match must cover any packet")
	}
}

func TestMatchExactSrcDst(t *testing.T) {
	src, dst := MAC{1, 1, 1, 1, 1, 1}, MAC{2, 2, 2, 2, 2, 2}
	m := ExactSrcDst(src, dst)
	if !m.Covers(PacketFields{EthSrc: src, EthDst: dst, EthType: EthTypeIPv4}) {
		t.Fatal("should cover matching src/dst")
	}
	if m.Covers(PacketFields{EthSrc: dst, EthDst: src}) {
		t.Fatal("should not cover swapped addresses")
	}
}

func TestMatchIPPrefix(t *testing.T) {
	m := MatchAll()
	m.NWDst = IPv4{10, 0, 0, 0}
	m = m.WithNWDstMask(8) // /24
	if m.NWDstMaskBits() != 8 {
		t.Fatalf("mask bits = %d", m.NWDstMaskBits())
	}
	if !m.Covers(PacketFields{IPDst: IPv4{10, 0, 0, 42}}) {
		t.Fatal("/24 should cover 10.0.0.42")
	}
	if m.Covers(PacketFields{IPDst: IPv4{10, 0, 1, 42}}) {
		t.Fatal("/24 should not cover 10.0.1.42")
	}
}

func TestMatchEqualNormalizesWildcardedFields(t *testing.T) {
	a := MatchAll()
	a.DLSrc = MAC{1, 2, 3, 4, 5, 6} // wildcarded garbage
	b := MatchAll()
	if !a.Equal(b) {
		t.Fatal("wildcarded field values must not affect equality")
	}
	c := ExactDst(MAC{9})
	if a.Equal(c) {
		t.Fatal("different matches compared equal")
	}
}

func TestMatchHierarchy(t *testing.T) {
	tests := []struct {
		name string
		make func() Match
		want bool
	}{
		{"wildcard-all", MatchAll, true},
		{"l4-without-proto", func() Match {
			m := MatchAll()
			m.Wildcards &^= WildcardTPDst
			m.TPDst = 80
			return m
		}, false},
		{"l4-with-tcp", func() Match {
			m := MatchAll()
			m.Wildcards &^= WildcardDLType | WildcardNWProto | WildcardTPDst
			m.DLType = EthTypeIPv4
			m.NWProto = IPProtoTCP
			m.TPDst = 80
			return m
		}, true},
		{"l3-without-dltype", func() Match {
			m := MatchAll().WithNWDstMask(0)
			m.NWDst = IPv4{10, 0, 0, 1}
			return m
		}, false},
		{"l3-with-ipv4", func() Match {
			m := MatchAll().WithNWDstMask(0)
			m.Wildcards &^= WildcardDLType
			m.DLType = EthTypeIPv4
			m.NWDst = IPv4{10, 0, 0, 1}
			return m
		}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.make().HierarchyValid(); got != tt.want {
				t.Fatalf("HierarchyValid = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestMatchRoundTripProperty(t *testing.T) {
	f := func(wc uint32, inPort uint16, src, dst [6]byte, dlType uint16, proto uint8, nwSrc, nwDst [4]byte, tpSrc, tpDst uint16) bool {
		m := Match{
			Wildcards: wc & WildcardAll,
			InPort:    inPort,
			DLSrc:     src,
			DLDst:     dst,
			DLType:    dlType,
			NWProto:   proto,
			NWSrc:     nwSrc,
			NWDst:     nwDst,
			TPSrc:     tpSrc,
			TPDst:     tpDst,
		}
		fm := &FlowMod{Match: m}
		parsed, err := Parse(fm.Marshal())
		if err != nil {
			return false
		}
		return parsed.(*FlowMod).Match == m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestARPPacketParse(t *testing.T) {
	src, dst := MAC{1, 1, 1, 1, 1, 1}, MAC{2, 2, 2, 2, 2, 2}
	sip, tip := IPv4{10, 0, 0, 1}, IPv4{10, 0, 0, 2}
	frame := ARPPacket(ARPRequest, src, sip, MAC{}, tip)
	pf, err := ParsePacket(frame, 3)
	if err != nil {
		t.Fatal(err)
	}
	if pf.EthType != EthTypeARP || pf.ARPOp != ARPRequest {
		t.Fatalf("type/op = %x/%d", pf.EthType, pf.ARPOp)
	}
	if pf.EthDst != BroadcastMAC {
		t.Fatal("ARP request must be broadcast")
	}
	if pf.ARPSenderIP != sip || pf.ARPTargetIP != tip {
		t.Fatalf("ips = %v/%v", pf.ARPSenderIP, pf.ARPTargetIP)
	}
	reply := ARPPacket(ARPReply, dst, tip, src, sip)
	rf, err := ParsePacket(reply, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rf.EthDst != src || rf.ARPOp != ARPReply {
		t.Fatal("ARP reply must be unicast to requester")
	}
}

func TestTCPPacketParse(t *testing.T) {
	frame := TCPPacket(MAC{1}, MAC{2}, IPv4{10, 0, 0, 1}, IPv4{10, 0, 0, 2}, 1234, 80, 0x02, 100)
	pf, err := ParsePacket(frame, 7)
	if err != nil {
		t.Fatal(err)
	}
	if pf.EthType != EthTypeIPv4 || pf.IPProto != IPProtoTCP {
		t.Fatalf("type/proto = %x/%d", pf.EthType, pf.IPProto)
	}
	if pf.TPSrc != 1234 || pf.TPDst != 80 {
		t.Fatalf("ports = %d/%d", pf.TPSrc, pf.TPDst)
	}
	if pf.InPort != 7 {
		t.Fatalf("inport = %d", pf.InPort)
	}
}

func TestLLDPPacketParse(t *testing.T) {
	frame := LLDPPacket(MAC{2}, 0x42, 3)
	pf, err := ParsePacket(frame, 9)
	if err != nil {
		t.Fatal(err)
	}
	if pf.EthType != EthTypeLLDP {
		t.Fatalf("type = %x", pf.EthType)
	}
	if pf.LLDPChassisID != 0x42 || pf.LLDPPortID != 3 {
		t.Fatalf("chassis/port = %x/%d", pf.LLDPChassisID, pf.LLDPPortID)
	}
}

func TestParsePacketRejectsShortFrames(t *testing.T) {
	if _, err := ParsePacket([]byte{1, 2, 3}, 0); err == nil {
		t.Fatal("short frame must error")
	}
}

func TestEncapsulateDecapsulate(t *testing.T) {
	inner := &PacketIn{XID: 5, InPort: 2, Data: TCPPacket(MAC{1}, MAC{2}, IPv4{}, IPv4{}, 1, 2, 0, 0)}
	frame := EncapsulatePacketIn(inner, MAC{0xEE})
	if !IsEncapsulated(frame) {
		t.Fatal("IsEncapsulated = false")
	}
	got, err := DecapsulatePacketIn(frame)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, inner) {
		t.Fatalf("inner mismatch: %+v vs %+v", got, inner)
	}
}

func TestDecapsulateRejectsPlainFrames(t *testing.T) {
	frame := TCPPacket(MAC{1}, MAC{2}, IPv4{}, IPv4{}, 1, 2, 0, 0)
	if _, err := DecapsulatePacketIn(frame); !errors.Is(err, ErrNotEncapsulated) {
		t.Fatalf("err = %v, want ErrNotEncapsulated", err)
	}
	if IsEncapsulated(frame) {
		t.Fatal("plain frame reported encapsulated")
	}
}

func TestMACString(t *testing.T) {
	m := MAC{0xDE, 0xAD, 0xBE, 0xEF, 0x00, 0x01}
	if m.String() != "de:ad:be:ef:00:01" {
		t.Fatalf("mac = %s", m)
	}
	if !(MAC{}).IsZero() || m.IsZero() {
		t.Fatal("IsZero wrong")
	}
}

func TestIPv4Conversions(t *testing.T) {
	ip := IPv4{10, 1, 2, 3}
	if ip.String() != "10.1.2.3" {
		t.Fatalf("string = %s", ip)
	}
	if IPv4FromUint32(ip.Uint32()) != ip {
		t.Fatal("uint32 round trip failed")
	}
}

func TestFuzzParseDoesNotPanic(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 5000; i++ {
		n := rng.Intn(120)
		buf := make([]byte, n)
		rng.Read(buf)
		if n > 0 {
			buf[0] = Version // pass version check sometimes
		}
		if n >= 4 && rng.Intn(2) == 0 {
			buf[2] = 0
			buf[3] = byte(n) // plausible length
		}
		_, _ = Parse(buf) // must not panic
		if n > 14 {
			_, _ = ParsePacket(buf, 0)
		}
	}
}

func TestMsgTypeString(t *testing.T) {
	if TypeFlowMod.String() != "FLOW_MOD" {
		t.Fatalf("got %s", TypeFlowMod)
	}
	if MsgType(200).String() != "OFPT(200)" {
		t.Fatalf("got %s", MsgType(200))
	}
}

func TestFlowModCommandString(t *testing.T) {
	if FlowAdd.String() != "ADD" || FlowDeleteStrict.String() != "DELETE_STRICT" {
		t.Fatal("command names wrong")
	}
}

func TestFlowStatsRequestRoundTrip(t *testing.T) {
	msg := &FlowStatsRequest{XID: 3, Match: ExactDst(MAC{5}), TableID: 0, OutPort: PortNone}
	got := roundTrip(t, msg).(*FlowStatsRequest)
	if !reflect.DeepEqual(got, msg) {
		t.Fatalf("got %+v, want %+v", got, msg)
	}
}

func TestFlowStatsReplyRoundTrip(t *testing.T) {
	msg := &FlowStatsReply{
		XID: 9,
		Flows: []FlowStat{
			{Match: ExactDst(MAC{1}), Priority: 10, DurationSec: 5, IdleTimeout: 10, Cookie: 7, PacketCount: 42, ByteCount: 4200},
			{Match: MatchAll(), Priority: 1},
		},
	}
	got := roundTrip(t, msg).(*FlowStatsReply)
	if !reflect.DeepEqual(got, msg) {
		t.Fatalf("got %+v, want %+v", got, msg)
	}
}

func TestPortStatusRoundTrip(t *testing.T) {
	for _, down := range []bool{true, false} {
		msg := &PortStatus{XID: 2, Reason: PortModify, Port: 7, Down: down}
		got := roundTrip(t, msg).(*PortStatus)
		if !reflect.DeepEqual(got, msg) {
			t.Fatalf("got %+v, want %+v", got, msg)
		}
	}
}
