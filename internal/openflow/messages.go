package openflow

import (
	"encoding/binary"
	"fmt"
)

// Special port numbers (ofp_port).
const (
	// PortFlood floods a packet out every port except the ingress port.
	PortFlood uint16 = 0xFFFB
	// PortController sends to the controller as a PACKET_IN.
	PortController uint16 = 0xFFFD
	// PortNone drops the packet / matches any out_port in deletes.
	PortNone uint16 = 0xFFFF
)

// FlowModCommand is the ofp_flow_mod command.
type FlowModCommand uint16

// Flow mod commands.
const (
	FlowAdd          FlowModCommand = 0
	FlowModify       FlowModCommand = 1
	FlowModifyStrict FlowModCommand = 2
	FlowDelete       FlowModCommand = 3
	FlowDeleteStrict FlowModCommand = 4
)

// String returns the spec name of the command.
func (c FlowModCommand) String() string {
	switch c {
	case FlowAdd:
		return "ADD"
	case FlowModify:
		return "MODIFY"
	case FlowModifyStrict:
		return "MODIFY_STRICT"
	case FlowDelete:
		return "DELETE"
	case FlowDeleteStrict:
		return "DELETE_STRICT"
	default:
		return fmt.Sprintf("CMD(%d)", uint16(c))
	}
}

// PacketInReason is the ofp_packet_in reason.
type PacketInReason uint8

// PACKET_IN reasons.
const (
	ReasonNoMatch PacketInReason = 0
	ReasonAction  PacketInReason = 1
)

// FlowRemovedReason is the ofp_flow_removed reason.
type FlowRemovedReason uint8

// FLOW_REMOVED reasons.
const (
	RemovedIdleTimeout FlowRemovedReason = 0
	RemovedHardTimeout FlowRemovedReason = 1
	RemovedDelete      FlowRemovedReason = 2
)

// Action is an OpenFlow action. Only output actions are needed by the
// reproduced controllers.
type Action struct {
	// Port is the output port (possibly PortFlood or PortController).
	Port uint16
	// MaxLen bounds bytes sent to the controller for PortController.
	MaxLen uint16
}

// Output returns an output-to-port action.
func Output(port uint16) Action { return Action{Port: port, MaxLen: 0xFFFF} }

const actionLen = 8

func marshalActions(actions []Action) []byte {
	buf := make([]byte, len(actions)*actionLen)
	for i, a := range actions {
		off := i * actionLen
		binary.BigEndian.PutUint16(buf[off:off+2], 0) // OFPAT_OUTPUT
		binary.BigEndian.PutUint16(buf[off+2:off+4], actionLen)
		binary.BigEndian.PutUint16(buf[off+4:off+6], a.Port)
		binary.BigEndian.PutUint16(buf[off+6:off+8], a.MaxLen)
	}
	return buf
}

func parseActions(b []byte) ([]Action, error) {
	var actions []Action
	for len(b) > 0 {
		if len(b) < 4 {
			return nil, ErrTruncated
		}
		atype := binary.BigEndian.Uint16(b[0:2])
		alen := int(binary.BigEndian.Uint16(b[2:4]))
		if alen < 4 || alen > len(b) {
			return nil, ErrTruncated
		}
		if atype == 0 { // OFPAT_OUTPUT
			if alen < actionLen {
				return nil, ErrTruncated
			}
			actions = append(actions, Action{
				Port:   binary.BigEndian.Uint16(b[4:6]),
				MaxLen: binary.BigEndian.Uint16(b[6:8]),
			})
		}
		b = b[alen:]
	}
	return actions, nil
}

// Hello is OFPT_HELLO.
type Hello struct{ XID uint32 }

// Type implements Message.
func (m *Hello) Type() MsgType { return TypeHello }

// TransactionID implements Message.
func (m *Hello) TransactionID() uint32 { return m.XID }

// Marshal implements Message.
func (m *Hello) Marshal() []byte { return marshalWithBody(TypeHello, m.XID, nil) }

// EchoRequest is OFPT_ECHO_REQUEST.
type EchoRequest struct {
	XID  uint32
	Data []byte
}

// Type implements Message.
func (m *EchoRequest) Type() MsgType { return TypeEchoRequest }

// TransactionID implements Message.
func (m *EchoRequest) TransactionID() uint32 { return m.XID }

// Marshal implements Message.
func (m *EchoRequest) Marshal() []byte { return marshalWithBody(TypeEchoRequest, m.XID, m.Data) }

// EchoReply is OFPT_ECHO_REPLY.
type EchoReply struct {
	XID  uint32
	Data []byte
}

// Type implements Message.
func (m *EchoReply) Type() MsgType { return TypeEchoReply }

// TransactionID implements Message.
func (m *EchoReply) TransactionID() uint32 { return m.XID }

// Marshal implements Message.
func (m *EchoReply) Marshal() []byte { return marshalWithBody(TypeEchoReply, m.XID, m.Data) }

// FeaturesRequest is OFPT_FEATURES_REQUEST.
type FeaturesRequest struct{ XID uint32 }

// Type implements Message.
func (m *FeaturesRequest) Type() MsgType { return TypeFeaturesRequest }

// TransactionID implements Message.
func (m *FeaturesRequest) TransactionID() uint32 { return m.XID }

// Marshal implements Message.
func (m *FeaturesRequest) Marshal() []byte { return marshalWithBody(TypeFeaturesRequest, m.XID, nil) }

// FeaturesReply is OFPT_FEATURES_REPLY (ports omitted beyond the count).
type FeaturesReply struct {
	XID          uint32
	DatapathID   uint64
	NumBuffers   uint32
	NumTables    uint8
	Capabilities uint32
	Actions      uint32
	Ports        []uint16
}

// Type implements Message.
func (m *FeaturesReply) Type() MsgType { return TypeFeaturesReply }

// TransactionID implements Message.
func (m *FeaturesReply) TransactionID() uint32 { return m.XID }

// Marshal implements Message. Each port is encoded as a minimal 48-byte
// ofp_phy_port carrying only the port number.
func (m *FeaturesReply) Marshal() []byte {
	const physPortLen = 48
	body := make([]byte, 24+len(m.Ports)*physPortLen)
	binary.BigEndian.PutUint64(body[0:8], m.DatapathID)
	binary.BigEndian.PutUint32(body[8:12], m.NumBuffers)
	body[12] = m.NumTables
	binary.BigEndian.PutUint32(body[16:20], m.Capabilities)
	binary.BigEndian.PutUint32(body[20:24], m.Actions)
	for i, p := range m.Ports {
		off := 24 + i*physPortLen
		binary.BigEndian.PutUint16(body[off:off+2], p)
	}
	return marshalWithBody(TypeFeaturesReply, m.XID, body)
}

func parseFeaturesReply(h Header, body []byte) (*FeaturesReply, error) {
	const physPortLen = 48
	if len(body) < 24 {
		return nil, ErrTruncated
	}
	m := &FeaturesReply{
		XID:          h.XID,
		DatapathID:   binary.BigEndian.Uint64(body[0:8]),
		NumBuffers:   binary.BigEndian.Uint32(body[8:12]),
		NumTables:    body[12],
		Capabilities: binary.BigEndian.Uint32(body[16:20]),
		Actions:      binary.BigEndian.Uint32(body[20:24]),
	}
	ports := body[24:]
	for len(ports) >= physPortLen {
		m.Ports = append(m.Ports, binary.BigEndian.Uint16(ports[0:2]))
		ports = ports[physPortLen:]
	}
	return m, nil
}

// PacketIn is OFPT_PACKET_IN.
type PacketIn struct {
	XID      uint32
	BufferID uint32
	TotalLen uint16
	InPort   uint16
	Reason   PacketInReason
	Data     []byte
}

// Type implements Message.
func (m *PacketIn) Type() MsgType { return TypePacketIn }

// TransactionID implements Message.
func (m *PacketIn) TransactionID() uint32 { return m.XID }

// Marshal implements Message.
func (m *PacketIn) Marshal() []byte {
	body := make([]byte, 10+len(m.Data))
	binary.BigEndian.PutUint32(body[0:4], m.BufferID)
	binary.BigEndian.PutUint16(body[4:6], m.TotalLen)
	binary.BigEndian.PutUint16(body[6:8], m.InPort)
	body[8] = uint8(m.Reason)
	copy(body[10:], m.Data)
	return marshalWithBody(TypePacketIn, m.XID, body)
}

func parsePacketIn(h Header, body []byte) (*PacketIn, error) {
	if len(body) < 10 {
		return nil, ErrTruncated
	}
	return &PacketIn{
		XID:      h.XID,
		BufferID: binary.BigEndian.Uint32(body[0:4]),
		TotalLen: binary.BigEndian.Uint16(body[4:6]),
		InPort:   binary.BigEndian.Uint16(body[6:8]),
		Reason:   PacketInReason(body[8]),
		Data:     cloneBytes(body[10:]),
	}, nil
}

// PacketOut is OFPT_PACKET_OUT.
type PacketOut struct {
	XID      uint32
	BufferID uint32
	InPort   uint16
	Actions  []Action
	Data     []byte
}

// Type implements Message.
func (m *PacketOut) Type() MsgType { return TypePacketOut }

// TransactionID implements Message.
func (m *PacketOut) TransactionID() uint32 { return m.XID }

// Marshal implements Message.
func (m *PacketOut) Marshal() []byte {
	acts := marshalActions(m.Actions)
	body := make([]byte, 8+len(acts)+len(m.Data))
	binary.BigEndian.PutUint32(body[0:4], m.BufferID)
	binary.BigEndian.PutUint16(body[4:6], m.InPort)
	binary.BigEndian.PutUint16(body[6:8], uint16(len(acts)))
	copy(body[8:], acts)
	copy(body[8+len(acts):], m.Data)
	return marshalWithBody(TypePacketOut, m.XID, body)
}

func parsePacketOut(h Header, body []byte) (*PacketOut, error) {
	if len(body) < 8 {
		return nil, ErrTruncated
	}
	actsLen := int(binary.BigEndian.Uint16(body[6:8]))
	if 8+actsLen > len(body) {
		return nil, ErrTruncated
	}
	actions, err := parseActions(body[8 : 8+actsLen])
	if err != nil {
		return nil, err
	}
	return &PacketOut{
		XID:      h.XID,
		BufferID: binary.BigEndian.Uint32(body[0:4]),
		InPort:   binary.BigEndian.Uint16(body[4:6]),
		Actions:  actions,
		Data:     cloneBytes(body[8+actsLen:]),
	}, nil
}

// FlowMod is OFPT_FLOW_MOD.
type FlowMod struct {
	XID         uint32
	Match       Match
	Cookie      uint64
	Command     FlowModCommand
	IdleTimeout uint16
	HardTimeout uint16
	Priority    uint16
	BufferID    uint32
	OutPort     uint16
	Flags       uint16
	Actions     []Action
}

// FlowMod flags.
const (
	// FlagSendFlowRem requests a FLOW_REMOVED on expiry.
	FlagSendFlowRem uint16 = 1 << 0
)

// Type implements Message.
func (m *FlowMod) Type() MsgType { return TypeFlowMod }

// TransactionID implements Message.
func (m *FlowMod) TransactionID() uint32 { return m.XID }

// Marshal implements Message.
func (m *FlowMod) Marshal() []byte {
	acts := marshalActions(m.Actions)
	body := make([]byte, MatchLen+24+len(acts))
	m.Match.put(body[0:MatchLen])
	off := MatchLen
	binary.BigEndian.PutUint64(body[off:off+8], m.Cookie)
	binary.BigEndian.PutUint16(body[off+8:off+10], uint16(m.Command))
	binary.BigEndian.PutUint16(body[off+10:off+12], m.IdleTimeout)
	binary.BigEndian.PutUint16(body[off+12:off+14], m.HardTimeout)
	binary.BigEndian.PutUint16(body[off+14:off+16], m.Priority)
	binary.BigEndian.PutUint32(body[off+16:off+20], m.BufferID)
	binary.BigEndian.PutUint16(body[off+20:off+22], m.OutPort)
	binary.BigEndian.PutUint16(body[off+22:off+24], m.Flags)
	copy(body[off+24:], acts)
	return marshalWithBody(TypeFlowMod, m.XID, body)
}

func parseFlowMod(h Header, body []byte) (*FlowMod, error) {
	if len(body) < MatchLen+24 {
		return nil, ErrTruncated
	}
	match, err := parseMatch(body[0:MatchLen])
	if err != nil {
		return nil, err
	}
	off := MatchLen
	actions, err := parseActions(body[off+24:])
	if err != nil {
		return nil, err
	}
	return &FlowMod{
		XID:         h.XID,
		Match:       match,
		Cookie:      binary.BigEndian.Uint64(body[off : off+8]),
		Command:     FlowModCommand(binary.BigEndian.Uint16(body[off+8 : off+10])),
		IdleTimeout: binary.BigEndian.Uint16(body[off+10 : off+12]),
		HardTimeout: binary.BigEndian.Uint16(body[off+12 : off+14]),
		Priority:    binary.BigEndian.Uint16(body[off+14 : off+16]),
		BufferID:    binary.BigEndian.Uint32(body[off+16 : off+20]),
		OutPort:     binary.BigEndian.Uint16(body[off+20 : off+22]),
		Flags:       binary.BigEndian.Uint16(body[off+22 : off+24]),
		Actions:     actions,
	}, nil
}

// FlowRemoved is OFPT_FLOW_REMOVED.
type FlowRemoved struct {
	XID         uint32
	Match       Match
	Cookie      uint64
	Priority    uint16
	Reason      FlowRemovedReason
	DurationSec uint32
	PacketCount uint64
	ByteCount   uint64
}

// Type implements Message.
func (m *FlowRemoved) Type() MsgType { return TypeFlowRemoved }

// TransactionID implements Message.
func (m *FlowRemoved) TransactionID() uint32 { return m.XID }

// Marshal implements Message.
func (m *FlowRemoved) Marshal() []byte {
	body := make([]byte, MatchLen+40)
	m.Match.put(body[0:MatchLen])
	off := MatchLen
	binary.BigEndian.PutUint64(body[off:off+8], m.Cookie)
	binary.BigEndian.PutUint16(body[off+8:off+10], m.Priority)
	body[off+10] = uint8(m.Reason)
	binary.BigEndian.PutUint32(body[off+12:off+16], m.DurationSec)
	binary.BigEndian.PutUint64(body[off+24:off+32], m.PacketCount)
	binary.BigEndian.PutUint64(body[off+32:off+40], m.ByteCount)
	return marshalWithBody(TypeFlowRemoved, m.XID, body)
}

func parseFlowRemoved(h Header, body []byte) (*FlowRemoved, error) {
	if len(body) < MatchLen+40 {
		return nil, ErrTruncated
	}
	match, err := parseMatch(body[0:MatchLen])
	if err != nil {
		return nil, err
	}
	off := MatchLen
	return &FlowRemoved{
		XID:         h.XID,
		Match:       match,
		Cookie:      binary.BigEndian.Uint64(body[off : off+8]),
		Priority:    binary.BigEndian.Uint16(body[off+8 : off+10]),
		Reason:      FlowRemovedReason(body[off+10]),
		DurationSec: binary.BigEndian.Uint32(body[off+12 : off+16]),
		PacketCount: binary.BigEndian.Uint64(body[off+24 : off+32]),
		ByteCount:   binary.BigEndian.Uint64(body[off+32 : off+40]),
	}, nil
}

// BarrierRequest is OFPT_BARRIER_REQUEST.
type BarrierRequest struct{ XID uint32 }

// Type implements Message.
func (m *BarrierRequest) Type() MsgType { return TypeBarrierRequest }

// TransactionID implements Message.
func (m *BarrierRequest) TransactionID() uint32 { return m.XID }

// Marshal implements Message.
func (m *BarrierRequest) Marshal() []byte { return marshalWithBody(TypeBarrierRequest, m.XID, nil) }

// BarrierReply is OFPT_BARRIER_REPLY.
type BarrierReply struct{ XID uint32 }

// Type implements Message.
func (m *BarrierReply) Type() MsgType { return TypeBarrierReply }

// TransactionID implements Message.
func (m *BarrierReply) TransactionID() uint32 { return m.XID }

// Marshal implements Message.
func (m *BarrierReply) Marshal() []byte { return marshalWithBody(TypeBarrierReply, m.XID, nil) }

// ErrorMsg is OFPT_ERROR.
type ErrorMsg struct {
	XID     uint32
	ErrType uint16
	Code    uint16
	Data    []byte
}

// Type implements Message.
func (m *ErrorMsg) Type() MsgType { return TypeError }

// TransactionID implements Message.
func (m *ErrorMsg) TransactionID() uint32 { return m.XID }

// Marshal implements Message.
func (m *ErrorMsg) Marshal() []byte {
	body := make([]byte, 4+len(m.Data))
	binary.BigEndian.PutUint16(body[0:2], m.ErrType)
	binary.BigEndian.PutUint16(body[2:4], m.Code)
	copy(body[4:], m.Data)
	return marshalWithBody(TypeError, m.XID, body)
}

func parseErrorMsg(h Header, body []byte) (*ErrorMsg, error) {
	if len(body) < 4 {
		return nil, ErrTruncated
	}
	return &ErrorMsg{
		XID:     h.XID,
		ErrType: binary.BigEndian.Uint16(body[0:2]),
		Code:    binary.BigEndian.Uint16(body[2:4]),
		Data:    cloneBytes(body[4:]),
	}, nil
}
