package topo

import (
	"fmt"
	"reflect"
	"testing"

	"github.com/jurysdn/jury/internal/openflow"
)

// checkWiring asserts the structural invariants every builder must hold:
// each (switch, port) endpoint is used by at most one link or host
// attachment, every link endpoint names a known switch, and the Links()
// order is deterministic across two independent builds.
func checkWiring(t *testing.T, build func() (*Topology, error)) *Topology {
	t.Helper()
	top, err := build()
	if err != nil {
		t.Fatal(err)
	}
	used := make(map[Port]string)
	claim := func(p Port, what string) {
		t.Helper()
		if prev, ok := used[p]; ok {
			t.Fatalf("port %v used twice: %s and %s", p, prev, what)
		}
		used[p] = what
	}
	for _, l := range top.Links() {
		if _, ok := top.Switch(l.Src.DPID); !ok {
			t.Fatalf("link %v from unknown switch", l)
		}
		if _, ok := top.Switch(l.Dst.DPID); !ok {
			t.Fatalf("link %v to unknown switch", l)
		}
		// Links() lists both directions; claim each endpoint once via
		// the canonical direction only.
		if l.Src.DPID < l.Dst.DPID || (l.Src.DPID == l.Dst.DPID && l.Src.Port < l.Dst.Port) {
			claim(l.Src, "link "+l.String())
			claim(l.Dst, "link "+l.String())
		}
	}
	for _, h := range top.Hosts() {
		claim(h.Attach, "host "+string(h.ID))
	}
	// Every registered switch port must back exactly one of the claims.
	ports := 0
	for _, sw := range top.Switches() {
		ports += len(sw.Ports)
		for _, p := range sw.Ports {
			if _, ok := used[Port{DPID: sw.DPID, Port: p}]; !ok {
				t.Fatalf("switch %v port %d registered but unused", sw.DPID, p)
			}
		}
	}
	if ports != len(used) {
		t.Fatalf("claimed %d endpoints but switches register %d ports", len(used), ports)
	}
	again, err := build()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(top.Links(), again.Links()) {
		t.Fatal("link order differs between two identical builds")
	}
	return top
}

func TestThreeTierWiringInvariants(t *testing.T) {
	for _, c := range []struct{ edges, aggs, cores, hostsPerEdge int }{
		{8, 4, 2, 2}, // the paper's physical testbed
		{4, 2, 1, 3},
		{1, 1, 1, 1},
	} {
		t.Run(fmt.Sprintf("%d-%d-%d-%d", c.edges, c.aggs, c.cores, c.hostsPerEdge), func(t *testing.T) {
			top := checkWiring(t, func() (*Topology, error) {
				return ThreeTier(c.edges, c.aggs, c.cores, c.hostsPerEdge)
			})
			if got, want := top.NumSwitches(), c.edges+c.aggs+c.cores; got != want {
				t.Fatalf("switches = %d, want %d", got, want)
			}
			if got, want := top.NumHosts(), c.edges*c.hostsPerEdge; got != want {
				t.Fatalf("hosts = %d, want %d", got, want)
			}
			if got, want := len(top.Links()), 2*(c.edges*c.aggs+c.aggs*c.cores); got != want {
				t.Fatalf("directed links = %d, want %d", got, want)
			}
		})
	}
}

func TestLinearWiringInvariants(t *testing.T) {
	checkWiring(t, func() (*Topology, error) { return Linear(24) })
}

func TestFatTreeShape(t *testing.T) {
	for _, c := range []struct{ k, switches, hosts, links int }{
		{4, 20, 16, 64},
		{8, 80, 128, 512}, // the scale campaign's default point
	} {
		t.Run(fmt.Sprintf("k=%d", c.k), func(t *testing.T) {
			top := checkWiring(t, func() (*Topology, error) { return FatTree(c.k) })
			if top.NumSwitches() != c.switches {
				t.Fatalf("switches = %d, want %d", top.NumSwitches(), c.switches)
			}
			if top.NumHosts() != c.hosts {
				t.Fatalf("hosts = %d, want %d", top.NumHosts(), c.hosts)
			}
			if got := len(top.Links()); got != c.links {
				t.Fatalf("directed links = %d, want %d", got, c.links)
			}
			var edges, aggs, cores int
			for _, sw := range top.Switches() {
				switch sw.Tier {
				case "edge":
					edges++
				case "aggregate":
					aggs++
				case "core":
					cores++
				}
			}
			half := c.k / 2
			if edges != c.k*half || aggs != c.k*half || cores != half*half {
				t.Fatalf("tiers = %d/%d/%d", edges, aggs, cores)
			}
		})
	}
}

func TestFatTreeRejectsBadK(t *testing.T) {
	for _, k := range []int{0, 1, 3, 7, -2} {
		if _, err := FatTree(k); err == nil {
			t.Fatalf("FatTree(%d) should fail", k)
		}
	}
}

func TestFatTreePathLengths(t *testing.T) {
	top, err := FatTree(4)
	if err != nil {
		t.Fatal(err)
	}
	// Same pod, different edge: edge → agg → edge.
	if p := top.ShortestPath(1, 2); len(p) != 3 {
		t.Fatalf("intra-pod path = %v", p)
	}
	// Cross pod: edge → agg → core → agg → edge.
	if p := top.ShortestPath(1, 8); len(p) != 5 {
		t.Fatalf("cross-pod path = %v", p)
	}
}

func TestFatTreeAttachMatchesBuilder(t *testing.T) {
	const k = 4
	top, err := FatTree(k)
	if err != nil {
		t.Fatal(err)
	}
	phys := uint64(top.NumHosts())
	for i := uint64(1); i <= phys; i++ {
		h, ok := top.Host(HostID(fmt.Sprintf("h%d", i)))
		if !ok {
			t.Fatalf("missing host %d", i)
		}
		if got := FatTreeAttach(k, i); got != h.Attach {
			t.Fatalf("FatTreeAttach(%d) = %v, builder says %v", i, got, h.Attach)
		}
	}
	// Virtual hosts beyond the physical ports wrap onto real edge ports.
	for _, i := range []uint64{phys + 1, 3*phys + 5, 1 << 30} {
		at := FatTreeAttach(k, i)
		sw, ok := top.Switch(at.DPID)
		if !ok || sw.Tier != "edge" {
			t.Fatalf("virtual host %d attaches to %v (tier %q)", i, at, sw.Tier)
		}
		if at.Port < 1 || int(at.Port) > k/2 {
			t.Fatalf("virtual host %d lands on non-host port %v", i, at)
		}
		if want := FatTreeAttach(k, (i-1)%phys+1); at != want {
			t.Fatalf("wrap mismatch: %v vs %v", at, want)
		}
	}
}

// TestHostAddressingWideNoCollisions is the regression for the 16-bit
// truncation bug: HostMAC/HostIP used to keep only the low 16 bits of the
// index, so host 65537 silently aliased host 1. The widened encodings must
// stay distinct to at least 2^24 hosts.
func TestHostAddressingWideNoCollisions(t *testing.T) {
	if HostMAC(1) == HostMAC(1<<16+1) {
		t.Fatal("HostMAC still truncates to 16 bits (65537 aliases 1)")
	}
	if HostIP(1) == HostIP(1<<16+1) {
		t.Fatal("HostIP still truncates to 16 bits (65537 aliases 1)")
	}
	// Probe a spread of indices across the 2^24 range, including the
	// old-collision pairs (i, i+65536) and byte-boundary edges.
	indices := []int{
		1, 2, 255, 256, 257, 65535, 65536, 65537, 65538,
		1 << 20, 1<<20 + 1, 1<<24 - 2, 1<<24 - 1, 1 << 24,
	}
	for step := 1; step < 1<<24; step *= 7 {
		indices = append(indices, step, step+65536)
	}
	macs := make(map[openflow.MAC]int)
	ips := make(map[openflow.IPv4]int)
	for _, i := range indices {
		if i > 1<<24 {
			continue
		}
		if prev, ok := macs[HostMAC(i)]; ok && prev != i {
			t.Fatalf("HostMAC collision: %d vs %d -> %v", prev, i, HostMAC(i))
		}
		macs[HostMAC(i)] = i
		if prev, ok := ips[HostIP(i)]; ok && prev != i {
			t.Fatalf("HostIP collision: %d vs %d -> %v", prev, i, HostIP(i))
		}
		ips[HostIP(i)] = i
	}
	// The widened layout must not collide with the workload generators'
	// spoofed-source MAC prefixes (00:aa, 00:bb, 00:cb sequences).
	for _, i := range []int{0xAA << 24, 0xBB << 24, 0xCB << 24} {
		if m := HostMAC(i); m[1] != 0x00 {
			t.Fatalf("HostMAC(%#x) = %v leaves the 00:00 host prefix", i, m)
		}
	}
}

// TestHostAddressingBackCompat pins that the widened encodings are
// identical to the historical 16-bit layout for indices below 2^16, so
// existing topologies and golden traces keep their addresses.
func TestHostAddressingBackCompat(t *testing.T) {
	for _, i := range []int{1, 2, 24, 255, 256, 4095, 65535} {
		wantMAC := openflow.MAC{0x00, 0x00, 0x00, 0x00, byte(i >> 8), byte(i)}
		if got := HostMAC(i); got != wantMAC {
			t.Fatalf("HostMAC(%d) = %v, want legacy %v", i, got, wantMAC)
		}
		wantIP := openflow.IPv4{10, 0, byte(i >> 8), byte(i)}
		if got := HostIP(i); got != wantIP {
			t.Fatalf("HostIP(%d) = %v, want legacy %v", i, got, wantIP)
		}
	}
}
