package topo

import (
	"fmt"

	"github.com/jurysdn/jury/internal/openflow"
)

// HostMAC returns the deterministic MAC assigned to host index i (1-based).
func HostMAC(i int) openflow.MAC {
	return openflow.MAC{0x00, 0x00, 0x00, 0x00, byte(i >> 8), byte(i)}
}

// HostIP returns the deterministic IP assigned to host index i (1-based).
func HostIP(i int) openflow.IPv4 {
	return openflow.IPv4{10, 0, byte(i >> 8), byte(i)}
}

// Linear builds the Mininet-style linear topology used throughout §VII:
// n switches in a chain, one host per switch. Port 1 of each switch faces
// its host; ports 2 and 3 face the previous and next switch.
func Linear(n int) (*Topology, error) {
	if n < 1 {
		return nil, fmt.Errorf("topo: linear topology needs >= 1 switch, got %d", n)
	}
	t := New()
	for i := 1; i <= n; i++ {
		t.AddSwitch(DPID(i), "")
	}
	for i := 1; i < n; i++ {
		link := Link{
			Src: Port{DPID: DPID(i), Port: 3},
			Dst: Port{DPID: DPID(i + 1), Port: 2},
		}
		if err := t.AddLink(link.Src, link.Dst); err != nil {
			return nil, err
		}
	}
	for i := 1; i <= n; i++ {
		h := Host{
			ID:     HostID(fmt.Sprintf("h%d", i)),
			MAC:    HostMAC(i),
			IP:     HostIP(i),
			Attach: Port{DPID: DPID(i), Port: 1},
		}
		if err := t.AddHost(h); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// ThreeTier builds the physical-testbed shape of §VII: edge switches fully
// meshed to aggregates, aggregates fully meshed to cores, with hostsPerEdge
// hosts per edge switch. The paper used 8 edge, 4 aggregate and 2 core
// switches.
func ThreeTier(edges, aggs, cores, hostsPerEdge int) (*Topology, error) {
	if edges < 1 || aggs < 1 || cores < 1 {
		return nil, fmt.Errorf("topo: three-tier needs at least one switch per tier")
	}
	t := New()
	var (
		edgeIDs = make([]DPID, edges)
		aggIDs  = make([]DPID, aggs)
		coreIDs = make([]DPID, cores)
	)
	next := DPID(1)
	for i := range edgeIDs {
		edgeIDs[i] = next
		t.AddSwitch(next, "edge")
		next++
	}
	for i := range aggIDs {
		aggIDs[i] = next
		t.AddSwitch(next, "aggregate")
		next++
	}
	for i := range coreIDs {
		coreIDs[i] = next
		t.AddSwitch(next, "core")
		next++
	}
	// Hosts occupy ports 1..hostsPerEdge on edge switches; uplinks follow.
	hostIdx := 1
	for _, e := range edgeIDs {
		for p := 1; p <= hostsPerEdge; p++ {
			h := Host{
				ID:     HostID(fmt.Sprintf("h%d", hostIdx)),
				MAC:    HostMAC(hostIdx),
				IP:     HostIP(hostIdx),
				Attach: Port{DPID: e, Port: uint16(p)},
			}
			if err := t.AddHost(h); err != nil {
				return nil, err
			}
			hostIdx++
		}
	}
	port := func(base, i int) uint16 { return uint16(base + i) }
	for ei, e := range edgeIDs {
		for ai, a := range aggIDs {
			src := Port{DPID: e, Port: port(hostsPerEdge, ai+1)}
			dst := Port{DPID: a, Port: port(0, ei+1)}
			if err := t.AddLink(src, dst); err != nil {
				return nil, err
			}
		}
	}
	for ai, a := range aggIDs {
		for ci, c := range coreIDs {
			src := Port{DPID: a, Port: port(edges, ci+1)}
			dst := Port{DPID: c, Port: port(0, ai+1)}
			if err := t.AddLink(src, dst); err != nil {
				return nil, err
			}
		}
	}
	return t, nil
}

// Single builds a one-switch topology with n hosts, the Cbench-style setup.
func Single(hosts int) (*Topology, error) {
	t := New()
	t.AddSwitch(1, "")
	for i := 1; i <= hosts; i++ {
		h := Host{
			ID:     HostID(fmt.Sprintf("h%d", i)),
			MAC:    HostMAC(i),
			IP:     HostIP(i),
			Attach: Port{DPID: 1, Port: uint16(i)},
		}
		if err := t.AddHost(h); err != nil {
			return nil, err
		}
	}
	return t, nil
}
