package topo

import (
	"fmt"

	"github.com/jurysdn/jury/internal/openflow"
)

// HostMAC returns the deterministic MAC assigned to host index i (1-based).
// The index occupies the low four octets, so addresses stay distinct up to
// 2^32 hosts; the 00:00 prefix keeps host MACs disjoint from the workload
// generators' spoofed-source prefixes (00:aa, 00:bb, 00:cb). For indices
// below 2^16 the encoding matches the historical 16-bit layout, so small
// topologies keep their addresses.
func HostMAC(i int) openflow.MAC {
	return openflow.MAC{0x00, 0x00, byte(i >> 24), byte(i >> 16), byte(i >> 8), byte(i)}
}

// HostIP returns the deterministic IP assigned to host index i (1-based).
// The index occupies the low three octets of 10/8, so addresses stay
// distinct up to 2^24 hosts (the widest the IPv4 scheme can carry without
// leaving the private range); below 2^16 the encoding matches the
// historical layout.
func HostIP(i int) openflow.IPv4 {
	return openflow.IPv4{10, byte(i >> 16), byte(i >> 8), byte(i)}
}

// Linear builds the Mininet-style linear topology used throughout §VII:
// n switches in a chain, one host per switch. Port 1 of each switch faces
// its host; ports 2 and 3 face the previous and next switch.
func Linear(n int) (*Topology, error) {
	if n < 1 {
		return nil, fmt.Errorf("topo: linear topology needs >= 1 switch, got %d", n)
	}
	t := New()
	for i := 1; i <= n; i++ {
		t.AddSwitch(DPID(i), "")
	}
	for i := 1; i < n; i++ {
		link := Link{
			Src: Port{DPID: DPID(i), Port: 3},
			Dst: Port{DPID: DPID(i + 1), Port: 2},
		}
		if err := t.AddLink(link.Src, link.Dst); err != nil {
			return nil, err
		}
	}
	for i := 1; i <= n; i++ {
		h := Host{
			ID:     HostID(fmt.Sprintf("h%d", i)),
			MAC:    HostMAC(i),
			IP:     HostIP(i),
			Attach: Port{DPID: DPID(i), Port: 1},
		}
		if err := t.AddHost(h); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// ThreeTier builds the physical-testbed shape of §VII: edge switches fully
// meshed to aggregates, aggregates fully meshed to cores, with hostsPerEdge
// hosts per edge switch. The paper used 8 edge, 4 aggregate and 2 core
// switches.
func ThreeTier(edges, aggs, cores, hostsPerEdge int) (*Topology, error) {
	if edges < 1 || aggs < 1 || cores < 1 {
		return nil, fmt.Errorf("topo: three-tier needs at least one switch per tier")
	}
	t := New()
	var (
		edgeIDs = make([]DPID, edges)
		aggIDs  = make([]DPID, aggs)
		coreIDs = make([]DPID, cores)
	)
	next := DPID(1)
	for i := range edgeIDs {
		edgeIDs[i] = next
		t.AddSwitch(next, "edge")
		next++
	}
	for i := range aggIDs {
		aggIDs[i] = next
		t.AddSwitch(next, "aggregate")
		next++
	}
	for i := range coreIDs {
		coreIDs[i] = next
		t.AddSwitch(next, "core")
		next++
	}
	// Hosts occupy ports 1..hostsPerEdge on edge switches; uplinks follow.
	hostIdx := 1
	for _, e := range edgeIDs {
		for p := 1; p <= hostsPerEdge; p++ {
			h := Host{
				ID:     HostID(fmt.Sprintf("h%d", hostIdx)),
				MAC:    HostMAC(hostIdx),
				IP:     HostIP(hostIdx),
				Attach: Port{DPID: e, Port: uint16(p)},
			}
			if err := t.AddHost(h); err != nil {
				return nil, err
			}
			hostIdx++
		}
	}
	port := func(base, i int) uint16 { return uint16(base + i) }
	for ei, e := range edgeIDs {
		for ai, a := range aggIDs {
			src := Port{DPID: e, Port: port(hostsPerEdge, ai+1)}
			dst := Port{DPID: a, Port: port(0, ei+1)}
			if err := t.AddLink(src, dst); err != nil {
				return nil, err
			}
		}
	}
	for ai, a := range aggIDs {
		for ci, c := range coreIDs {
			src := Port{DPID: a, Port: port(edges, ci+1)}
			dst := Port{DPID: c, Port: port(0, ai+1)}
			if err := t.AddLink(src, dst); err != nil {
				return nil, err
			}
		}
	}
	return t, nil
}

// FatTree builds the k-ary Clos fat-tree of Al-Fares et al.: k pods of
// k/2 edge and k/2 aggregation switches each, (k/2)^2 core switches, and
// k/2 hosts per edge switch — 5k²/4 switches and k³/4 hosts total, with
// full bisection bandwidth. k must be even. FatTree(8) is the scale
// campaign's default deployment (80 switches, 128 hosts); FatTree(30)
// passes 1k switches (1125), far beyond the paper's 24-switch testbed.
//
// DPIDs are deterministic: edge switches take 1..k²/2 (pod-major), then
// aggregates, then cores. Edge switch ports 1..k/2 face hosts and
// k/2+1..k face the pod's aggregates; aggregate ports 1..k/2 face the
// pod's edges and k/2+1..k face cores; core ports 1..k face pods in
// order. Aggregate j of every pod uplinks to cores j·(k/2)..(j+1)·(k/2)-1.
func FatTree(k int) (*Topology, error) {
	if k < 2 || k%2 != 0 {
		return nil, fmt.Errorf("topo: fat-tree needs an even k >= 2, got %d", k)
	}
	half := k / 2
	edges := k * half // k pods × k/2 edge switches
	aggs := k * half
	t := New()
	edgeID := func(pod, j int) DPID { return DPID(1 + pod*half + j) }
	aggID := func(pod, j int) DPID { return DPID(1 + edges + pod*half + j) }
	coreID := func(j, c int) DPID { return DPID(1 + edges + aggs + j*half + c) }
	for pod := 0; pod < k; pod++ {
		for j := 0; j < half; j++ {
			t.AddSwitch(edgeID(pod, j), "edge")
		}
	}
	for pod := 0; pod < k; pod++ {
		for j := 0; j < half; j++ {
			t.AddSwitch(aggID(pod, j), "aggregate")
		}
	}
	for j := 0; j < half; j++ {
		for c := 0; c < half; c++ {
			t.AddSwitch(coreID(j, c), "core")
		}
	}
	// Hosts: k/2 per edge switch on ports 1..k/2, indexed pod-major so
	// FatTreeAttach can recompute any attachment without the topology.
	hostIdx := 1
	for pod := 0; pod < k; pod++ {
		for j := 0; j < half; j++ {
			for p := 1; p <= half; p++ {
				h := Host{
					ID:     HostID(fmt.Sprintf("h%d", hostIdx)),
					MAC:    HostMAC(hostIdx),
					IP:     HostIP(hostIdx),
					Attach: Port{DPID: edgeID(pod, j), Port: uint16(p)},
				}
				if err := t.AddHost(h); err != nil {
					return nil, err
				}
				hostIdx++
			}
		}
	}
	// Edge ↔ aggregate: full mesh within each pod.
	for pod := 0; pod < k; pod++ {
		for j := 0; j < half; j++ {
			for a := 0; a < half; a++ {
				src := Port{DPID: edgeID(pod, j), Port: uint16(half + a + 1)}
				dst := Port{DPID: aggID(pod, a), Port: uint16(j + 1)}
				if err := t.AddLink(src, dst); err != nil {
					return nil, err
				}
			}
		}
	}
	// Aggregate ↔ core: aggregate j serves core group j.
	for pod := 0; pod < k; pod++ {
		for j := 0; j < half; j++ {
			for c := 0; c < half; c++ {
				src := Port{DPID: aggID(pod, j), Port: uint16(half + c + 1)}
				dst := Port{DPID: coreID(j, c), Port: uint16(pod + 1)}
				if err := t.AddLink(src, dst); err != nil {
					return nil, err
				}
			}
		}
	}
	return t, nil
}

// FatTreeAttach maps a (possibly virtual) 1-based host index onto a
// FatTree(k) edge port without touching the topology: indices wrap modulo
// the k³/4 physical host ports, so a streaming generator can model far
// more endpoints than the fabric has ports while every event still lands
// on a real attachment. For indices within the physical range the result
// matches the builder's Host.Attach exactly.
func FatTreeAttach(k int, host uint64) Port {
	half := uint64(k / 2)
	idx := (host - 1) % (uint64(k) * half * half)
	edge := idx / half        // 0-based global edge index, pod-major
	port := uint16(idx%half) + 1
	return Port{DPID: DPID(1 + edge), Port: port}
}

// Single builds a one-switch topology with n hosts, the Cbench-style setup.
func Single(hosts int) (*Topology, error) {
	t := New()
	t.AddSwitch(1, "")
	for i := 1; i <= hosts; i++ {
		h := Host{
			ID:     HostID(fmt.Sprintf("h%d", i)),
			MAC:    HostMAC(i),
			IP:     HostIP(i),
			Attach: Port{DPID: 1, Port: uint16(i)},
		}
		if err := t.AddHost(h); err != nil {
			return nil, err
		}
	}
	return t, nil
}
