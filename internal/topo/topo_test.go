package topo

import (
	"testing"
	"testing/quick"
)

func TestLinearTopology(t *testing.T) {
	top, err := Linear(24)
	if err != nil {
		t.Fatal(err)
	}
	if top.NumSwitches() != 24 || top.NumHosts() != 24 {
		t.Fatalf("switches=%d hosts=%d", top.NumSwitches(), top.NumHosts())
	}
	// 23 bidirectional links = 46 directed.
	if got := len(top.Links()); got != 46 {
		t.Fatalf("links = %d, want 46", got)
	}
	// Middle switches have 3 ports (host + two neighbors), ends have 2.
	sw, _ := top.Switch(1)
	if len(sw.Ports) != 2 {
		t.Fatalf("end switch ports = %v", sw.Ports)
	}
	sw, _ = top.Switch(12)
	if len(sw.Ports) != 3 {
		t.Fatalf("middle switch ports = %v", sw.Ports)
	}
}

func TestLinearRejectsZero(t *testing.T) {
	if _, err := Linear(0); err == nil {
		t.Fatal("expected error")
	}
}

func TestThreeTierTopology(t *testing.T) {
	top, err := ThreeTier(8, 4, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if top.NumSwitches() != 14 {
		t.Fatalf("switches = %d, want 14", top.NumSwitches())
	}
	if top.NumHosts() != 16 {
		t.Fatalf("hosts = %d, want 16", top.NumHosts())
	}
	// Edge-agg mesh: 8*4=32 + agg-core mesh: 4*2=8 → 40 bidirectional.
	if got := len(top.Links()); got != 80 {
		t.Fatalf("directed links = %d, want 80", got)
	}
	var edges, aggs, cores int
	for _, sw := range top.Switches() {
		switch sw.Tier {
		case "edge":
			edges++
		case "aggregate":
			aggs++
		case "core":
			cores++
		}
	}
	if edges != 8 || aggs != 4 || cores != 2 {
		t.Fatalf("tiers = %d/%d/%d", edges, aggs, cores)
	}
}

func TestSingleTopology(t *testing.T) {
	top, err := Single(24)
	if err != nil {
		t.Fatal(err)
	}
	if top.NumSwitches() != 1 || top.NumHosts() != 24 {
		t.Fatal("wrong single topology shape")
	}
	if len(top.Links()) != 0 {
		t.Fatal("single switch should have no links")
	}
}

func TestShortestPathLinear(t *testing.T) {
	top, _ := Linear(10)
	path := top.ShortestPath(1, 10)
	if len(path) != 10 {
		t.Fatalf("path length = %d, want 10", len(path))
	}
	for i, d := range path {
		if d != DPID(i+1) {
			t.Fatalf("path = %v", path)
		}
	}
	if p := top.ShortestPath(5, 5); len(p) != 1 || p[0] != 5 {
		t.Fatalf("self path = %v", p)
	}
}

func TestShortestPathThreeTierBounded(t *testing.T) {
	top, _ := ThreeTier(8, 4, 2, 1)
	// Any edge to any edge goes via one aggregate: length 3.
	path := top.ShortestPath(1, 8)
	if len(path) != 3 {
		t.Fatalf("edge-to-edge path = %v", path)
	}
}

func TestShortestPathUnreachable(t *testing.T) {
	top := New()
	top.AddSwitch(1, "")
	top.AddSwitch(2, "")
	if p := top.ShortestPath(1, 2); p != nil {
		t.Fatalf("expected nil path, got %v", p)
	}
}

func TestEgressPort(t *testing.T) {
	top, _ := Linear(3)
	port, ok := top.EgressPort(1, 2)
	if !ok || port != 3 {
		t.Fatalf("egress 1->2 = %d,%v", port, ok)
	}
	port, ok = top.EgressPort(2, 1)
	if !ok || port != 2 {
		t.Fatalf("egress 2->1 = %d,%v", port, ok)
	}
	if _, ok := top.EgressPort(1, 3); ok {
		t.Fatal("no direct link 1->3")
	}
}

func TestPeer(t *testing.T) {
	top, _ := Linear(3)
	peer, ok := top.Peer(Port{DPID: 1, Port: 3})
	if !ok || peer != (Port{DPID: 2, Port: 2}) {
		t.Fatalf("peer = %v,%v", peer, ok)
	}
	if _, ok := top.Peer(Port{DPID: 1, Port: 1}); ok {
		t.Fatal("host port should have no peer")
	}
}

func TestHostLookup(t *testing.T) {
	top, _ := Linear(5)
	h, ok := top.Host("h3")
	if !ok || h.Attach.DPID != 3 {
		t.Fatalf("h3 = %+v,%v", h, ok)
	}
	byMAC, ok := top.HostByMAC(HostMAC(3))
	if !ok || byMAC.ID != "h3" {
		t.Fatalf("by mac = %+v,%v", byMAC, ok)
	}
	if _, ok := top.Host("h99"); ok {
		t.Fatal("phantom host")
	}
}

func TestAddLinkUnknownSwitch(t *testing.T) {
	top := New()
	top.AddSwitch(1, "")
	err := top.AddLink(Port{DPID: 1, Port: 2}, Port{DPID: 9, Port: 1})
	if err == nil {
		t.Fatal("expected error for unknown switch")
	}
}

func TestAddHostUnknownSwitch(t *testing.T) {
	top := New()
	if err := top.AddHost(Host{ID: "h1", Attach: Port{DPID: 5, Port: 1}}); err == nil {
		t.Fatal("expected error")
	}
}

func TestDPIDString(t *testing.T) {
	if DPID(0x1A).String() != "of:000000000000001a" {
		t.Fatalf("got %s", DPID(0x1A))
	}
}

func TestLinkReverse(t *testing.T) {
	l := Link{Src: Port{1, 2}, Dst: Port{3, 4}}
	r := l.Reverse()
	if r.Src != l.Dst || r.Dst != l.Src {
		t.Fatal("reverse wrong")
	}
}

func TestShortestPathSymmetricProperty(t *testing.T) {
	top, _ := ThreeTier(4, 2, 1, 1)
	f := func(a, b uint8) bool {
		sa := DPID(a%7) + 1
		sb := DPID(b%7) + 1
		pa := top.ShortestPath(sa, sb)
		pb := top.ShortestPath(sb, sa)
		return len(pa) == len(pb) // symmetric lengths
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHostAddressing(t *testing.T) {
	if HostMAC(1) == HostMAC(2) {
		t.Fatal("host MACs collide")
	}
	if HostIP(300) == HostIP(301) {
		t.Fatal("host IPs collide")
	}
}
