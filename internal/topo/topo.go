// Package topo models the physical network graph the controllers govern:
// switches with numbered ports, hosts attached to edge ports, and
// inter-switch links. Builders reproduce the topologies used in the paper's
// evaluation: the 24-switch Mininet linear topology and the 8-edge /
// 4-aggregate / 2-core three-tier physical testbed.
package topo

import (
	"fmt"
	"sort"

	"github.com/jurysdn/jury/internal/openflow"
)

// DPID is a switch datapath identifier.
type DPID uint64

// String renders the DPID as the usual hex form.
func (d DPID) String() string { return fmt.Sprintf("of:%016x", uint64(d)) }

// HostID identifies a host.
type HostID string

// Port is one end of an attachment: a switch and a port number.
type Port struct {
	DPID DPID
	Port uint16
}

// String renders the port as "of:..../N".
func (p Port) String() string { return fmt.Sprintf("%s/%d", p.DPID, p.Port) }

// Link is a unidirectional switch-to-switch adjacency. Topologies store both
// directions.
type Link struct {
	Src Port
	Dst Port
}

// String renders the link endpoints.
func (l Link) String() string { return l.Src.String() + "->" + l.Dst.String() }

// Reverse returns the opposite direction of the link.
func (l Link) Reverse() Link { return Link{Src: l.Dst, Dst: l.Src} }

// Host is an end host attached to a switch port.
type Host struct {
	ID     HostID
	MAC    openflow.MAC
	IP     openflow.IPv4
	Attach Port
}

// Switch describes one switch and its ports.
type Switch struct {
	DPID  DPID
	Ports []uint16
	// Tier labels the switch's role in tiered topologies ("edge",
	// "aggregate", "core", or "" for flat topologies).
	Tier string
}

// Topology is an immutable network graph.
type Topology struct {
	switches  map[DPID]*Switch
	hosts     map[HostID]*Host
	hostByMAC map[openflow.MAC]*Host
	links     map[Port]Port // src -> dst
}

// New returns an empty topology.
func New() *Topology {
	return &Topology{
		switches:  make(map[DPID]*Switch),
		hosts:     make(map[HostID]*Host),
		hostByMAC: make(map[openflow.MAC]*Host),
		links:     make(map[Port]Port),
	}
}

// AddSwitch adds a switch with no ports yet.
func (t *Topology) AddSwitch(dpid DPID, tier string) *Switch {
	sw := &Switch{DPID: dpid, Tier: tier}
	t.switches[dpid] = sw
	return sw
}

// AddLink connects two switch ports bidirectionally, allocating the port
// numbers supplied.
func (t *Topology) AddLink(a, b Port) error {
	for _, p := range []Port{a, b} {
		if _, ok := t.switches[p.DPID]; !ok {
			return fmt.Errorf("topo: unknown switch %v", p.DPID)
		}
	}
	t.links[a] = b
	t.links[b] = a
	t.addPort(a)
	t.addPort(b)
	return nil
}

// AddHost attaches a host to a switch port.
func (t *Topology) AddHost(h Host) error {
	if _, ok := t.switches[h.Attach.DPID]; !ok {
		return fmt.Errorf("topo: unknown switch %v", h.Attach.DPID)
	}
	hc := h
	t.hosts[h.ID] = &hc
	t.hostByMAC[h.MAC] = &hc
	t.addPort(h.Attach)
	return nil
}

func (t *Topology) addPort(p Port) {
	sw := t.switches[p.DPID]
	for _, existing := range sw.Ports {
		if existing == p.Port {
			return
		}
	}
	sw.Ports = append(sw.Ports, p.Port)
	sort.Slice(sw.Ports, func(i, j int) bool { return sw.Ports[i] < sw.Ports[j] })
}

// Switches returns all switches in DPID order.
func (t *Topology) Switches() []*Switch {
	out := make([]*Switch, 0, len(t.switches))
	//jurylint:allow maprange -- collected values are sorted before return
	for _, sw := range t.switches {
		out = append(out, sw)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].DPID < out[j].DPID })
	return out
}

// Switch returns the switch with the given DPID, if present.
func (t *Topology) Switch(dpid DPID) (*Switch, bool) {
	sw, ok := t.switches[dpid]
	return sw, ok
}

// Hosts returns all hosts in ID order.
func (t *Topology) Hosts() []*Host {
	out := make([]*Host, 0, len(t.hosts))
	//jurylint:allow maprange -- collected values are sorted before return
	for _, h := range t.hosts {
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Host returns the host with the given ID, if present.
func (t *Topology) Host(id HostID) (*Host, bool) {
	h, ok := t.hosts[id]
	return h, ok
}

// HostByMAC returns the host with the given MAC address, if present.
func (t *Topology) HostByMAC(mac openflow.MAC) (*Host, bool) {
	h, ok := t.hostByMAC[mac]
	return h, ok
}

// Peer returns the far end of the link attached to p, if any.
func (t *Topology) Peer(p Port) (Port, bool) {
	d, ok := t.links[p]
	return d, ok
}

// Links returns every unidirectional link, sorted for determinism.
func (t *Topology) Links() []Link {
	out := make([]Link, 0, len(t.links))
	//jurylint:allow maprange -- collected links are sorted before return
	for src, dst := range t.links {
		out = append(out, Link{Src: src, Dst: dst})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Src.DPID != out[j].Src.DPID {
			return out[i].Src.DPID < out[j].Src.DPID
		}
		if out[i].Src.Port != out[j].Src.Port {
			return out[i].Src.Port < out[j].Src.Port
		}
		return out[i].Dst.DPID < out[j].Dst.DPID
	})
	return out
}

// NumSwitches returns the switch count.
func (t *Topology) NumSwitches() int { return len(t.switches) }

// NumHosts returns the host count.
func (t *Topology) NumHosts() int { return len(t.hosts) }

// ShortestPath returns the switch DPIDs on a shortest path from src to dst
// (inclusive) using BFS, or nil if unreachable.
func (t *Topology) ShortestPath(src, dst DPID) []DPID {
	if src == dst {
		return []DPID{src}
	}
	adj := t.adjacency()
	prev := map[DPID]DPID{src: src}
	queue := []DPID{src}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, next := range adj[cur] {
			if _, seen := prev[next]; seen {
				continue
			}
			prev[next] = cur
			if next == dst {
				return reconstruct(prev, src, dst)
			}
			queue = append(queue, next)
		}
	}
	return nil
}

// EgressPort returns the port on switch from that leads toward switch to
// over a direct link.
func (t *Topology) EgressPort(from, to DPID) (uint16, bool) {
	sw, ok := t.switches[from]
	if !ok {
		return 0, false
	}
	for _, p := range sw.Ports {
		if peer, ok := t.links[Port{DPID: from, Port: p}]; ok && peer.DPID == to {
			return p, true
		}
	}
	return 0, false
}

func (t *Topology) adjacency() map[DPID][]DPID {
	adj := make(map[DPID][]DPID, len(t.switches))
	for _, l := range t.Links() {
		adj[l.Src.DPID] = append(adj[l.Src.DPID], l.Dst.DPID)
	}
	return adj
}

func reconstruct(prev map[DPID]DPID, src, dst DPID) []DPID {
	var rev []DPID
	for cur := dst; ; cur = prev[cur] {
		rev = append(rev, cur)
		if cur == src {
			break
		}
	}
	out := make([]DPID, len(rev))
	for i, d := range rev {
		out[len(rev)-1-i] = d
	}
	return out
}
