package controller

import (
	"time"

	"github.com/jurysdn/jury/internal/store"
)

// Profile captures the performance and behaviour model of a controller
// implementation. Two calibrated profiles are shipped, standing in for the
// controllers the paper evaluates: ONOS v1.0.0 (eventually consistent,
// fast pipeline) and OpenDaylight Hydrogen (strongly consistent, slow
// pipeline). Constants are calibrated so the saturation points and
// detection-time scales of §VII emerge from queueing (see DESIGN.md).
type Profile struct {
	Name        string
	Consistency store.Consistency

	// Workers is the parallelism of the PACKET_IN processing pipeline.
	Workers int
	// QueueCap bounds the ingress queue; overflow models TCP
	// zero-window back-pressure (Fig. 4e).
	QueueCap int

	// Mean service times per trigger class (exponentially distributed).
	FlowSetupService time.Duration // IPv4 packets: path + FLOW_MOD pipeline
	ARPService       time.Duration // host tracking / proxy ARP (PACKET_OUT path)
	LLDPService      time.Duration // topology discovery
	HandshakeService time.Duration // HELLO/FEATURES/switch connect
	ReplicaService   time.Duration // replicated (tainted) trigger execution
	EgressService    time.Duration // southbound I/O cost per message

	// PerReplicaOverhead is added to FlowSetupService for each extra
	// cluster member (cheap async backup fan-out in the ONOS model).
	PerReplicaOverhead time.Duration
	// JuryPrimaryOverhead is added per secondary (k) on the primary when
	// JURY is enabled — the Hazelcast-update cost §VII-B1 attributes the
	// <11% throughput drop to.
	JuryPrimaryOverhead time.Duration

	// StoreBusService serializes eventual-mode cache writes cluster-wide
	// when n > 1 (the Hazelcast flow-backup bottleneck of footnote 4).
	StoreBusService time.Duration
	// JuryStoreOverhead is added to the backup-bus (or strong-commit)
	// cost per JURY secondary: the extra Hazelcast work the secondaries'
	// validation-related cache activity puts on the primary's store path
	// — the cause §VII-B1 gives for the <11% FLOW_MOD throughput drop.
	JuryStoreOverhead time.Duration

	// GC pause model: the JVM controller stalls its pipeline for
	// U(PauseMin, PauseMax) roughly every PausePeriod. Pauses produce the
	// heavy right tail of the detection-time CDFs.
	PausePeriod time.Duration
	PauseMin    time.Duration
	PauseMax    time.Duration

	// InflateAt / InflateSlope model the overload slowdown of an
	// overwhelmed controller (memory bloat): service inflates as the
	// backlog grows past InflateAt. Zero in the calibrated profiles
	// (graceful saturation, Figs. 4f/4g); the Cbench experiment
	// (Fig. 4e) enables it to reproduce the collapse.
	InflateAt    int
	InflateSlope float64

	// LLDPPeriod is the topology-discovery emission period.
	LLDPPeriod time.Duration
	// ReconcilePeriod enables the ONOS-style flow reconciliation loop:
	// the master polls its switches' flow stats and moves FlowsDB rules
	// from PENDING_ADD to ADDED when confirmed (or marks them stuck
	// after repeated misses, the appendix PENDING_ADD symptom). Zero
	// disables reconciliation; it roughly doubles FlowsDB write volume,
	// so the calibrated throughput profiles leave it off.
	ReconcilePeriod time.Duration
	// ProactiveForwarding selects ODL-style destination-based proactive
	// rule installation on host discovery instead of reactive src-dst
	// forwarding. The paper's JURY prototype replaced ODL's proactive
	// module with a reactive one (§VI-C), which is the default here.
	ProactiveForwarding bool
}

// ONOSProfile returns the calibrated ONOS-like profile.
func ONOSProfile() Profile {
	return Profile{
		Name:             "onos",
		Consistency:      store.Eventual,
		Workers:          8,
		QueueCap:         2048,
		FlowSetupService: 1550 * time.Microsecond, // ~5.2K FLOW_MOD/s with 8 workers
		ARPService:       35 * time.Microsecond,   // PACKET_OUT path ~220K/s
		LLDPService:      180 * time.Microsecond,
		HandshakeService: 250 * time.Microsecond,
		ReplicaService:   280 * time.Microsecond,
		EgressService:    25 * time.Microsecond,

		PerReplicaOverhead:  16 * time.Microsecond,
		JuryPrimaryOverhead: 28 * time.Microsecond,
		StoreBusService:     205 * time.Microsecond, // ~4.9K/s shared backup bus
		JuryStoreOverhead:   3400 * time.Nanosecond, // ~10% bus cost at k=6

		PausePeriod: 300 * time.Millisecond,
		PauseMin:    10 * time.Millisecond,
		PauseMax:    85 * time.Millisecond,

		LLDPPeriod: time.Second,
	}
}

// ODLProfile returns the calibrated OpenDaylight-like profile.
func ODLProfile() Profile {
	return Profile{
		Name:             "odl",
		Consistency:      store.Strong,
		Workers:          1,
		QueueCap:         1024,
		FlowSetupService: 1100 * time.Microsecond, // ~800 FLOW_MOD/s after GC duty
		ARPService:       120 * time.Microsecond,
		LLDPService:      400 * time.Microsecond,
		HandshakeService: 600 * time.Microsecond,
		ReplicaService:   900 * time.Microsecond,
		EgressService:    60 * time.Microsecond,

		PerReplicaOverhead:  0,
		JuryPrimaryOverhead: 60 * time.Microsecond,
		JuryStoreOverhead:   80 * time.Microsecond, // strong-commit share at k=6

		PausePeriod: 700 * time.Millisecond,
		PauseMin:    60 * time.Millisecond,
		PauseMax:    320 * time.Millisecond,

		LLDPPeriod: time.Second,
	}
}
