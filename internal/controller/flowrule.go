package controller

import (
	"encoding/json"
	"fmt"
	"hash/fnv"

	"github.com/jurysdn/jury/internal/openflow"
	"github.com/jurysdn/jury/internal/store"
	"github.com/jurysdn/jury/internal/topo"
	"github.com/jurysdn/jury/internal/trigger"
)

// FlowRule is the FlowsDB representation of a flow entry: controllers issue
// FLOW_MODs to local and remote switches by writing rules to the flow cache
// (§II-A1); the governing controller of the target switch observes the
// cache update and emits the actual FLOW_MOD.
type FlowRule struct {
	DPID        topo.DPID         `json:"dpid"`
	Match       openflow.Match    `json:"match"`
	Priority    uint16            `json:"priority"`
	Actions     []openflow.Action `json:"actions"`
	IdleTimeout uint16            `json:"idleTimeoutSec,omitempty"`
	HardTimeout uint16            `json:"hardTimeoutSec,omitempty"`
	Command     uint16            `json:"command"`

	// Trigger and Origin attribute the rule to the trigger and controller
	// that produced it, carrying JURY's taint through the cache.
	Trigger trigger.ID   `json:"trigger,omitempty"`
	Origin  store.NodeID `json:"origin"`
	// State tracks the ONOS-style entry lifecycle: empty = PENDING_ADD
	// (written, not yet confirmed on the switch), RuleAdded after the
	// reconciler sees it in the switch's flow stats, RuleStuck after
	// repeated confirmations failed (the appendix PENDING_ADD symptom).
	State string `json:"state,omitempty"`
}

// Flow rule lifecycle states (the ONOS PENDING_ADD/ADDED machine).
const (
	RuleAdded = "added"
	RuleStuck = "pending-add-stuck"
)

// Key returns the FlowsDB key for the rule: target switch plus a digest of
// the match and priority, so add/modify/delete address the same entry.
func (r FlowRule) Key() string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s|%d", r.DPID, r.Match.String(), r.Priority)
	return fmt.Sprintf("%s/%016x", r.DPID, h.Sum64())
}

// Encode serializes the rule for storage in FlowsDB.
func (r FlowRule) Encode() string {
	b, err := json.Marshal(r)
	if err != nil {
		// Marshal of this struct cannot fail; keep the API infallible.
		return "{}"
	}
	return string(b)
}

// DecodeFlowRule parses a FlowsDB value.
func DecodeFlowRule(s string) (FlowRule, error) {
	var r FlowRule
	if err := json.Unmarshal([]byte(s), &r); err != nil {
		return FlowRule{}, fmt.Errorf("controller: decode flow rule: %w", err)
	}
	return r, nil
}

// FlowMod converts the rule to its OpenFlow message.
func (r FlowRule) FlowMod(xid uint32) *openflow.FlowMod {
	return &openflow.FlowMod{
		XID:         xid,
		Match:       r.Match,
		Command:     openflow.FlowModCommand(r.Command),
		IdleTimeout: r.IdleTimeout,
		HardTimeout: r.HardTimeout,
		Priority:    r.Priority,
		BufferID:    0xFFFFFFFF,
		OutPort:     openflow.PortNone,
		Actions:     r.Actions,
	}
}

// hostRecord is the HostDB / EdgesDB value for a learned host.
type hostRecord struct {
	MAC  string    `json:"mac"`
	IP   string    `json:"ip"`
	DPID topo.DPID `json:"dpid"`
	Port uint16    `json:"port"`
}

func (h hostRecord) encode() string {
	b, err := json.Marshal(h)
	if err != nil {
		return "{}"
	}
	return string(b)
}

func decodeHostRecord(s string) (hostRecord, error) {
	var h hostRecord
	if err := json.Unmarshal([]byte(s), &h); err != nil {
		return hostRecord{}, fmt.Errorf("controller: decode host record: %w", err)
	}
	return h, nil
}

// LinkKey renders the LinksDB key for a unidirectional link.
func LinkKey(src, dst topo.Port) string {
	return fmt.Sprintf("%d:%d->%d:%d", src.DPID, src.Port, dst.DPID, dst.Port)
}

// linkKey is the internal alias of LinkKey.
func linkKey(src, dst topo.Port) string { return LinkKey(src, dst) }

// parseLinkKey is the inverse of linkKey.
func parseLinkKey(key string) (src, dst topo.Port, err error) {
	var s1, p1, s2, p2 uint64
	if _, err = fmt.Sscanf(key, "%d:%d->%d:%d", &s1, &p1, &s2, &p2); err != nil {
		return topo.Port{}, topo.Port{}, fmt.Errorf("controller: bad link key %q: %w", key, err)
	}
	return topo.Port{DPID: topo.DPID(s1), Port: uint16(p1)},
		topo.Port{DPID: topo.DPID(s2), Port: uint16(p2)}, nil
}
