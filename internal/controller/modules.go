package controller

import (
	"fmt"
	"sort"

	"github.com/jurysdn/jury/internal/openflow"
	"github.com/jurysdn/jury/internal/store"
	"github.com/jurysdn/jury/internal/topo"
	"github.com/jurysdn/jury/internal/trigger"
)

// controllerMAC is the source MAC used for controller-originated LLDP.
func controllerMAC(dpid topo.DPID) openflow.MAC {
	return openflow.MAC{0x02, 0x00, byte(dpid >> 24), byte(dpid >> 16), byte(dpid >> 8), byte(dpid)}
}

// lldpTick emits LLDP probes out of every port of every governed switch
// and sweeps stale links, then reschedules itself.
func (c *Controller) lldpTick() {
	if c.crashed {
		return
	}
	for _, dpid := range c.Governed() {
		ports := c.switchPorts[dpid]
		for _, p := range ports {
			frame := openflow.LLDPPacket(controllerMAC(dpid), uint64(dpid), p)
			c.xid++
			c.sendSouthbound(dpid, &openflow.PacketOut{
				XID:      c.xid,
				BufferID: 0xFFFFFFFF,
				InPort:   openflow.PortNone,
				Actions:  []openflow.Action{openflow.Output(p)},
				Data:     frame,
			}, &trigger.Context{ID: c.alloc.Next(), Kind: trigger.Internal, Primary: c.id})
		}
	}
	c.sweepStaleLinks()
	c.eng.Schedule(c.profile.LLDPPeriod, c.lldpTick)
}

// sweepStaleLinks marks links whose LLDP refresh is overdue as down.
// Stale keys are sorted before acting: each down-write allocates a
// trigger ID, so processing order must not depend on map iteration.
func (c *Controller) sweepStaleLinks() {
	deadline := 3 * c.profile.LLDPPeriod
	now := c.eng.Now()
	var stale []string
	//jurylint:allow maprange -- stale keys are sorted before processing
	for key, seen := range c.linkSeen {
		if now-seen > deadline {
			stale = append(stale, key)
		}
	}
	sort.Strings(stale)
	for _, key := range stale {
		delete(c.linkSeen, key)
		if v, ok := c.node.Get(store.LinksDB, key); ok && v == "up" {
			c.WriteCache(store.LinksDB, store.OpUpdate, key, "down",
				&trigger.Context{ID: c.alloc.Next(), Kind: trigger.Internal, Primary: c.id}, nil)
		}
	}
}

// handleLLDP implements topology discovery: an LLDP PACKET_IN at (dpid,
// inPort) reveals the link from the probe's origin to that ingress. Link
// liveness is tracked by the governing controller with the higher ID
// (the election the master-election fault of §III-B subverts).
func (c *Controller) handleLLDP(dpid topo.DPID, pf openflow.PacketFields, ctx *trigger.Context) {
	src := topo.Port{DPID: topo.DPID(pf.LLDPChassisID), Port: pf.LLDPPortID}
	dst := topo.Port{DPID: dpid, Port: pf.InPort}
	if src.DPID == 0 {
		return
	}
	// Replicated execution evaluates the election from the primary's
	// perspective so secondaries reproduce the primary's *intended*
	// control sequence (§IV-A(1)).
	self := c.id
	if ctx.Tainted() {
		self = ctx.Primary
	}
	srcMaster, okA := c.members.Master(src.DPID)
	dstMaster, okB := c.members.Master(dst.DPID)
	if okA && okB && srcMaster != dstMaster {
		// Cross-governed link: the governing controller with the higher
		// ID tracks liveness (the election of §III-B).
		myID := self
		if self == c.id && c.LivenessIDOverride != 0 {
			myID = c.LivenessIDOverride
		}
		other := srcMaster
		if other == self {
			other = dstMaster
		}
		if myID < other {
			return // not the liveness master; someone else will write
		}
	}
	// The liveness master records both directions of the symmetric link.
	for _, key := range []string{linkKey(src, dst), linkKey(dst, src)} {
		if !ctx.Tainted() {
			// Replicated execution must not feed the liveness sweep:
			// secondaries see each link only when randomly chosen, so
			// their freshness view would go stale and trigger bogus
			// "down" writes.
			c.linkSeen[key] = c.eng.Now()
		}
		prev, existed := c.node.Get(store.LinksDB, key)
		switch {
		case !existed:
			c.WriteCache(store.LinksDB, store.OpCreate, key, "up", ctx, nil)
		case prev != "up":
			c.WriteCache(store.LinksDB, store.OpUpdate, key, "up", ctx, nil)
		}
	}
}

// handleARP implements host tracking and proxy ARP. Host locations are
// learned only from edge ports: packets arriving on infrastructure ports
// (known link endpoints) are flood-propagated copies whose ingress says
// nothing about the sender's attachment point.
func (c *Controller) handleARP(dpid topo.DPID, pin *openflow.PacketIn, pf openflow.PacketFields, ctx *trigger.Context) {
	interior := c.isLinkPort(dpid, pin.InPort)
	if !interior {
		rec := hostRecord{
			MAC:  pf.EthSrc.String(),
			IP:   pf.ARPSenderIP.String(),
			DPID: dpid,
			Port: pin.InPort,
		}
		key := pf.EthSrc.String()
		encoded := rec.encode()
		newHost := false
		if prev, ok := c.node.Get(store.HostDB, key); !ok {
			newHost = true
			c.WriteCache(store.HostDB, store.OpCreate, key, encoded, ctx, nil)
			c.WriteCache(store.EdgesDB, store.OpCreate, key, encoded, ctx, nil)
		} else if prev != encoded {
			c.WriteCache(store.HostDB, store.OpUpdate, key, encoded, ctx, nil)
			c.WriteCache(store.EdgesDB, store.OpUpdate, key, encoded, ctx, nil)
		}
		if prev, ok := c.node.Get(store.ArpDB, pf.ARPSenderIP.String()); !ok {
			c.WriteCache(store.ArpDB, store.OpCreate, pf.ARPSenderIP.String(), pf.EthSrc.String(), ctx, nil)
		} else if prev != pf.EthSrc.String() {
			c.WriteCache(store.ArpDB, store.OpUpdate, pf.ARPSenderIP.String(), pf.EthSrc.String(), ctx, nil)
		}
		if newHost && c.profile.ProactiveForwarding {
			c.installProactiveRules(rec, ctx)
		}
	}
	switch pf.ARPOp {
	case openflow.ARPRequest:
		c.answerARP(dpid, pin, pf, ctx)
	case openflow.ARPReply:
		c.deliverToHost(pf.EthDst, pin.Data, ctx)
	}
}

// isLinkPort reports whether (dpid, port) is a known inter-switch link
// endpoint per this replica's LinksDB view.
func (c *Controller) isLinkPort(dpid topo.DPID, port uint16) bool {
	for _, key := range c.node.Keys(store.LinksDB) {
		s, d, err := parseLinkKey(key)
		if err != nil {
			continue
		}
		if (s.DPID == dpid && s.Port == port) || (d.DPID == dpid && d.Port == port) {
			return true
		}
	}
	return false
}

// answerARP proxies a reply when the binding is known, otherwise floods the
// request at the origin switch.
func (c *Controller) answerARP(dpid topo.DPID, pin *openflow.PacketIn, pf openflow.PacketFields, ctx *trigger.Context) {
	targetMACStr, ok := c.node.Get(store.ArpDB, pf.ARPTargetIP.String())
	if ok {
		targetMAC, err := ParseMAC(targetMACStr)
		if err == nil {
			reply := openflow.ARPPacket(openflow.ARPReply, targetMAC, pf.ARPTargetIP, pf.EthSrc, pf.ARPSenderIP)
			c.xid++
			c.sendSouthbound(dpid, &openflow.PacketOut{
				XID:      c.xid,
				BufferID: 0xFFFFFFFF,
				InPort:   openflow.PortNone,
				Actions:  []openflow.Action{openflow.Output(pin.InPort)},
				Data:     reply,
			}, ctx)
			return
		}
	}
	// Unknown binding: flood the request from the origin switch.
	c.xid++
	c.sendSouthbound(dpid, &openflow.PacketOut{
		XID:      c.xid,
		BufferID: 0xFFFFFFFF,
		InPort:   pin.InPort,
		Actions:  []openflow.Action{openflow.Output(openflow.PortFlood)},
		Data:     pin.Data,
	}, ctx)
}

// deliverToHost packet-outs a frame at the attachment point of dst.
func (c *Controller) deliverToHost(dst openflow.MAC, frame []byte, ctx *trigger.Context) {
	rec, ok := c.lookupHost(dst)
	if !ok {
		return
	}
	c.xid++
	c.sendSouthbound(rec.DPID, &openflow.PacketOut{
		XID:      c.xid,
		BufferID: 0xFFFFFFFF,
		InPort:   openflow.PortNone,
		Actions:  []openflow.Action{openflow.Output(rec.Port)},
		Data:     frame,
	}, ctx)
}

// handleForwarding is the reactive forwarding module (the ONOS behaviour,
// and the custom JURY forwarding module for ODL, §VI-C): it installs
// source-destination flow rules along the shortest path and delivers the
// triggering packet.
func (c *Controller) handleForwarding(dpid topo.DPID, pin *openflow.PacketIn, pf openflow.PacketFields, ctx *trigger.Context) {
	rec, ok := c.lookupHost(pf.EthDst)
	if !ok {
		// Destination unknown: flood and hope the reply teaches us.
		c.xid++
		c.sendSouthbound(dpid, &openflow.PacketOut{
			XID:      c.xid,
			BufferID: 0xFFFFFFFF,
			InPort:   pin.InPort,
			Actions:  []openflow.Action{openflow.Output(openflow.PortFlood)},
			Data:     pin.Data,
		}, ctx)
		return
	}
	path := c.pathFromLinksDB(dpid, rec.DPID)
	if path == nil {
		return
	}
	// Hop-by-hop reactive forwarding: install the rule at the switch that
	// missed and forward the packet one hop; downstream switches miss in
	// turn and install their own rules. FLOW_MOD volume therefore tracks
	// PACKET_IN volume one-to-one (Fig. 4f).
	var out uint16
	if len(path) == 1 {
		out = rec.Port
	} else {
		port, ok := c.egressFromLinksDB(dpid, path[1])
		if !ok {
			return
		}
		out = port
	}
	rule := FlowRule{
		DPID:        dpid,
		Match:       openflow.ExactSrcDst(pf.EthSrc, pf.EthDst),
		Priority:    10,
		Actions:     []openflow.Action{openflow.Output(out)},
		IdleTimeout: 10,
		Command:     uint16(openflow.FlowAdd),
		Trigger:     ctxID(ctx),
		Origin:      c.id,
	}
	c.WriteCache(store.FlowsDB, store.OpCreate, rule.Key(), rule.Encode(), ctx, nil)
	// Release the triggering packet along the installed hop.
	c.xid++
	c.sendSouthbound(dpid, &openflow.PacketOut{
		XID:      c.xid,
		BufferID: 0xFFFFFFFF,
		InPort:   pin.InPort,
		Actions:  []openflow.Action{openflow.Output(out)},
		Data:     pin.Data,
	}, ctx)
}

// installProactiveRules is the vanilla-ODL behaviour: upon discovering a
// host, install destination-based rules on every known switch (§VI-C).
func (c *Controller) installProactiveRules(rec hostRecord, ctx *trigger.Context) {
	dstMAC, err := ParseMAC(rec.MAC)
	if err != nil {
		return
	}
	match := openflow.ExactDst(dstMAC)
	for _, key := range c.node.Keys(store.SwitchDB) {
		var raw uint64
		if _, err := fmt.Sscanf(key, "of:%016x", &raw); err != nil {
			continue
		}
		sw := topo.DPID(raw)
		var out uint16
		if sw == rec.DPID {
			out = rec.Port
		} else {
			path := c.pathFromLinksDB(sw, rec.DPID)
			if len(path) < 2 {
				continue
			}
			port, ok := c.egressFromLinksDB(sw, path[1])
			if !ok {
				continue
			}
			out = port
		}
		rule := FlowRule{
			DPID:     sw,
			Match:    match,
			Priority: 5,
			Actions:  []openflow.Action{openflow.Output(out)},
			Command:  uint16(openflow.FlowAdd),
			Trigger:  ctxID(ctx),
			Origin:   c.id,
		}
		c.WriteCache(store.FlowsDB, store.OpCreate, rule.Key(), rule.Encode(), ctx, nil)
	}
}

// lookupHost reads a host's attachment from EdgesDB.
func (c *Controller) lookupHost(mac openflow.MAC) (hostRecord, bool) {
	v, ok := c.node.Get(store.EdgesDB, mac.String())
	if !ok {
		return hostRecord{}, false
	}
	rec, err := decodeHostRecord(v)
	if err != nil {
		return hostRecord{}, false
	}
	return rec, true
}

// pathFromLinksDB computes a shortest switch path using this replica's
// LinksDB view (only links marked "up").
func (c *Controller) pathFromLinksDB(src, dst topo.DPID) []topo.DPID {
	if src == dst {
		return []topo.DPID{src}
	}
	adj := make(map[topo.DPID][]topo.DPID)
	for _, key := range c.node.Keys(store.LinksDB) {
		if v, _ := c.node.Get(store.LinksDB, key); v != "up" {
			continue
		}
		s, d, err := parseLinkKey(key)
		if err != nil {
			continue
		}
		adj[s.DPID] = append(adj[s.DPID], d.DPID)
	}
	prev := map[topo.DPID]topo.DPID{src: src}
	queue := []topo.DPID{src}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, next := range adj[cur] {
			if _, seen := prev[next]; seen {
				continue
			}
			prev[next] = cur
			if next == dst {
				var rev []topo.DPID
				for at := dst; ; at = prev[at] {
					rev = append(rev, at)
					if at == src {
						break
					}
				}
				out := make([]topo.DPID, len(rev))
				for i, d := range rev {
					out[len(rev)-1-i] = d
				}
				return out
			}
			queue = append(queue, next)
		}
	}
	return nil
}

// egressFromLinksDB finds the port on from that reaches to, per LinksDB.
func (c *Controller) egressFromLinksDB(from, to topo.DPID) (uint16, bool) {
	for _, key := range c.node.Keys(store.LinksDB) {
		if v, _ := c.node.Get(store.LinksDB, key); v != "up" {
			continue
		}
		s, d, err := parseLinkKey(key)
		if err != nil {
			continue
		}
		if s.DPID == from && d.DPID == to {
			return s.Port, true
		}
	}
	return 0, false
}

func ctxID(ctx *trigger.Context) trigger.ID {
	if ctx == nil {
		return ""
	}
	return ctx.ID
}

// ParseMAC parses the colon-hex MAC form produced by MAC.String.
func ParseMAC(s string) (openflow.MAC, error) {
	var m openflow.MAC
	if len(s) != 17 {
		return openflow.MAC{}, fmt.Errorf("controller: bad MAC %q", s)
	}
	for i := 0; i < 6; i++ {
		hi, ok1 := hexNibble(s[i*3])
		lo, ok2 := hexNibble(s[i*3+1])
		if !ok1 || !ok2 || (i < 5 && s[i*3+2] != ':') {
			return openflow.MAC{}, fmt.Errorf("controller: bad MAC %q", s)
		}
		m[i] = hi<<4 | lo
	}
	return m, nil
}

func hexNibble(c byte) (byte, bool) {
	switch {
	case c >= '0' && c <= '9':
		return c - '0', true
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10, true
	case c >= 'A' && c <= 'F':
		return c - 'A' + 10, true
	default:
		return 0, false
	}
}

// reconcileTick polls governed switches' flow stats, the ONOS-style
// PENDING_ADD → ADDED reconciliation of the appendix.
func (c *Controller) reconcileTick() {
	if c.crashed {
		return
	}
	for _, dpid := range c.Governed() {
		c.xid++
		c.sendSouthbound(dpid, &openflow.FlowStatsRequest{
			XID:     c.xid,
			Match:   openflow.MatchAll(),
			OutPort: openflow.PortNone,
		}, &trigger.Context{ID: c.alloc.Next(), Kind: trigger.Internal, Primary: c.id})
	}
	c.eng.Schedule(c.profile.ReconcilePeriod, c.reconcileTick)
}

// handleFlowStats compares the switch's reported entries against FlowsDB:
// confirmed rules advance to ADDED; rules missing from three consecutive
// polls are marked stuck (the PENDING_ADD symptom an administrator policy
// can flag).
func (c *Controller) handleFlowStats(dpid topo.DPID, m *openflow.FlowStatsReply, ctx *trigger.Context) {
	if !c.members.IsMaster(c.id, dpid) {
		return
	}
	onSwitch := make(map[string]bool, len(m.Flows))
	for _, f := range m.Flows {
		probe := FlowRule{DPID: dpid, Match: f.Match, Priority: f.Priority}
		onSwitch[probe.Key()] = true
	}
	for _, key := range c.node.Keys(store.FlowsDB) {
		value, _ := c.node.Get(store.FlowsDB, key)
		rule, err := DecodeFlowRule(value)
		if err != nil || rule.DPID != dpid {
			continue
		}
		switch {
		case onSwitch[key]:
			delete(c.reconcileMisses, key)
			if rule.State != RuleAdded {
				rule.State = RuleAdded
				c.WriteCache(store.FlowsDB, store.OpUpdate, key, rule.Encode(), ctx, nil)
			}
		case rule.State != RuleStuck:
			c.reconcileMisses[key]++
			if c.reconcileMisses[key] >= 3 {
				rule.State = RuleStuck
				c.WriteCache(store.FlowsDB, store.OpUpdate, key, rule.Encode(), ctx, nil)
			}
		}
	}
}

// handlePortStatus reacts to a switch-reported link change: the master
// marks LinksDB entries touching the failed port as down immediately
// (faster than waiting for LLDP staleness).
func (c *Controller) handlePortStatus(dpid topo.DPID, m *openflow.PortStatus, ctx *trigger.Context) {
	if !m.Down {
		return // link restoration is confirmed by LLDP rediscovery
	}
	if !c.members.IsMaster(c.id, dpid) && !ctx.Tainted() {
		return
	}
	for _, key := range c.node.Keys(store.LinksDB) {
		src, dst, err := parseLinkKey(key)
		if err != nil {
			continue
		}
		touches := (src.DPID == dpid && src.Port == m.Port) || (dst.DPID == dpid && dst.Port == m.Port)
		if !touches {
			continue
		}
		if v, _ := c.node.Get(store.LinksDB, key); v == "up" {
			c.WriteCache(store.LinksDB, store.OpUpdate, key, "down", ctx, nil)
		}
	}
}
