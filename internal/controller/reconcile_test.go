package controller

import (
	"strings"
	"testing"
	"time"

	"github.com/jurysdn/jury/internal/openflow"
	"github.com/jurysdn/jury/internal/store"
	"github.com/jurysdn/jury/internal/topo"
	"github.com/jurysdn/jury/internal/trigger"
)

func TestReconcileConfirmsInstalledRule(t *testing.T) {
	r := newRig(t, 1, 1, quietProfile())
	c := r.ctrl(1)
	rule := FlowRule{DPID: 1, Match: openflow.ExactDst(topo.HostMAC(2)), Priority: 10,
		Actions: []openflow.Action{openflow.Output(1)}, Command: uint16(openflow.FlowAdd), Origin: 1}
	c.Node().Write(store.FlowsDB, store.OpCreate, rule.Key(), rule.Encode(), nil)
	r.run(t)
	// The switch reports the entry as installed.
	reply := &openflow.FlowStatsReply{Flows: []openflow.FlowStat{{Match: rule.Match, Priority: rule.Priority}}}
	c.HandleSouthbound(1, reply, &trigger.Context{ID: "rt", Kind: trigger.Internal, Primary: 1})
	r.run(t)
	v, _ := c.Node().Get(store.FlowsDB, rule.Key())
	got, err := DecodeFlowRule(v)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != RuleAdded {
		t.Fatalf("state = %q, want added", got.State)
	}
	// Re-confirmation must not rewrite.
	before := c.Node().Applied()
	c.HandleSouthbound(1, reply, &trigger.Context{ID: "rt2", Kind: trigger.Internal, Primary: 1})
	r.run(t)
	if c.Node().Applied() != before {
		t.Fatal("idempotent confirmation rewrote the rule")
	}
}

func TestReconcileMarksStuckAfterThreeMisses(t *testing.T) {
	r := newRig(t, 1, 1, quietProfile())
	c := r.ctrl(1)
	rule := FlowRule{DPID: 1, Match: openflow.ExactDst(topo.HostMAC(2)), Priority: 10, Origin: 1}
	c.Node().Write(store.FlowsDB, store.OpCreate, rule.Key(), rule.Encode(), nil)
	r.run(t)
	empty := &openflow.FlowStatsReply{}
	for i := 0; i < 3; i++ {
		c.HandleSouthbound(1, empty, &trigger.Context{ID: trigger.ID("r"), Kind: trigger.Internal, Primary: 1})
		r.run(t)
	}
	v, _ := c.Node().Get(store.FlowsDB, rule.Key())
	got, _ := DecodeFlowRule(v)
	if got.State != RuleStuck {
		t.Fatalf("state = %q, want %s", got.State, RuleStuck)
	}
}

func TestReconcileTickPollsGovernedSwitches(t *testing.T) {
	p := quietProfile()
	p.ReconcilePeriod = 100 * time.Millisecond
	r := newRig(t, 1, 2, p)
	c := r.ctrl(1)
	c.Start()
	if err := r.eng.Run(350 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	requests := 0
	for _, w := range r.sent[1] {
		if _, ok := w.Msg.(*openflow.FlowStatsRequest); ok {
			requests++
		}
	}
	// 3 ticks × 2 governed switches.
	if requests != 6 {
		t.Fatalf("stats requests = %d, want 6", requests)
	}
}

func TestPortStatusMarksLinkDown(t *testing.T) {
	r := newRig(t, 1, 2, quietProfile())
	c := r.ctrl(1)
	key := LinkKey(topo.Port{DPID: 1, Port: 3}, topo.Port{DPID: 2, Port: 2})
	rkey := LinkKey(topo.Port{DPID: 2, Port: 2}, topo.Port{DPID: 1, Port: 3})
	c.Node().Write(store.LinksDB, store.OpCreate, key, "up", nil)
	c.Node().Write(store.LinksDB, store.OpCreate, rkey, "up", nil)
	r.run(t)
	c.HandleSouthbound(1, &openflow.PortStatus{Port: 3, Down: true},
		&trigger.Context{ID: "ps", Kind: trigger.External, Primary: 1})
	r.run(t)
	for _, k := range []string{key, rkey} {
		if v, _ := c.Node().Get(store.LinksDB, k); v != "down" {
			t.Fatalf("LinksDB[%s] = %q after PORT_STATUS", k, v)
		}
	}
	// Link-up PORT_STATUS does not mark up (LLDP confirms instead).
	c.HandleSouthbound(1, &openflow.PortStatus{Port: 3, Down: false},
		&trigger.Context{ID: "ps2", Kind: trigger.External, Primary: 1})
	r.run(t)
	if v, _ := c.Node().Get(store.LinksDB, key); v != "down" {
		t.Fatal("PORT_STATUS up must not mark the link up")
	}
}

func TestRuleStateStrippedFromConsensusBody(t *testing.T) {
	// The lifecycle state is master-local bookkeeping and must not make
	// replicated copies of the same rule compare unequal.
	a := FlowRule{DPID: 1, Match: openflow.ExactDst(topo.HostMAC(1)), Priority: 1, Origin: 2, State: RuleAdded}
	b := FlowRule{DPID: 1, Match: openflow.ExactDst(topo.HostMAC(1)), Priority: 1, Origin: 3}
	if a.Key() != b.Key() {
		t.Fatal("keys differ")
	}
	if !strings.Contains(a.Encode(), RuleAdded) {
		t.Fatal("state not serialized at all")
	}
}
