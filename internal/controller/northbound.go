package controller

import (
	"time"

	"github.com/jurysdn/jury/internal/store"
	"github.com/jurysdn/jury/internal/trigger"
)

// Northbound and internal (proactive) trigger entry points (§II-A2).
//
// REST requests are *external* triggers: with JURY enabled, the replicator
// intercepts and replicates them to secondaries exactly like PACKET_INs.
// Administrator sessions and truly proactive applications are *internal*
// triggers: they cannot be intercepted on the wire, so JURY observes only
// their cache side-effects (§IV-A(2)).

// InstallFlowREST processes a northbound flow-install request. ctx carries
// the trigger identity assigned by the replicator (nil in vanilla
// deployments, in which case a local ID is minted).
func (c *Controller) InstallFlowREST(rule FlowRule, ctx *trigger.Context) {
	if c.crashed {
		return
	}
	if ctx == nil {
		ctx = &trigger.Context{ID: c.alloc.Next(), Kind: trigger.External, Primary: c.id}
	}
	c.server.SubmitFunc(func() time.Duration {
		return c.expDelay(c.profile.HandshakeService) + c.pauseDelay()
	}, func() {
		if c.OnProcessStart != nil {
			c.OnProcessStart(ctx)
		}
		rule.Trigger = ctx.ID
		rule.Origin = c.id
		op := store.OpCreate
		if rule.Command == 3 || rule.Command == 4 { // delete / delete-strict
			op = store.OpDelete
		}
		c.WriteCache(store.FlowsDB, op, rule.Key(), rule.Encode(), ctx, nil)
		if c.OnProcessed != nil {
			c.OnProcessed(rule.DPID, nil, ctx)
		}
	})
}

// InstallFlowInternal installs a flow on behalf of an administrator logged
// into the controller or a truly proactive application — an internal
// trigger (§II-A2).
func (c *Controller) InstallFlowInternal(rule FlowRule) {
	if c.crashed {
		return
	}
	ctx := &trigger.Context{ID: c.alloc.Next(), Kind: trigger.Internal, Primary: c.id}
	c.server.SubmitFunc(func() time.Duration {
		return c.expDelay(c.profile.HandshakeService) + c.pauseDelay()
	}, func() {
		rule.Trigger = ""
		rule.Origin = c.id
		c.WriteCache(store.FlowsDB, store.OpCreate, rule.Key(), rule.Encode(), ctx, nil)
	})
}

// AdminWriteCache performs a direct administrator/application write to a
// controller-wide cache — the proactive action class (T2/T3) JURY
// validates through cache-event interception and policies.
func (c *Controller) AdminWriteCache(cache store.CacheName, op store.Op, key, value string) {
	if c.crashed {
		return
	}
	ctx := &trigger.Context{ID: c.alloc.Next(), Kind: trigger.Internal, Primary: c.id}
	c.server.SubmitFunc(func() time.Duration {
		return c.expDelay(c.profile.HandshakeService) + c.pauseDelay()
	}, func() {
		c.WriteCache(cache, op, key, value, ctx, nil)
	})
}
