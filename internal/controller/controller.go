// Package controller implements the clustered SDN controller the paper
// validates: a profile-driven processing pipeline (ONOS-like and ODL-like),
// topology discovery via LLDP, host tracking via ARP, reactive and
// proactive forwarding, a northbound API, and the cache-write/egress seams
// that both the fault injector and JURY's controller module hook into.
package controller

import (
	"fmt"
	"time"

	"github.com/jurysdn/jury/internal/cluster"
	"github.com/jurysdn/jury/internal/openflow"
	"github.com/jurysdn/jury/internal/simnet"
	"github.com/jurysdn/jury/internal/store"
	"github.com/jurysdn/jury/internal/topo"
	"github.com/jurysdn/jury/internal/trigger"
)

// HookAction is the verdict of a cache or egress hook.
type HookAction uint8

// Hook verdicts.
const (
	// Proceed lets the operation continue (possibly mutated).
	Proceed HookAction = iota + 1
	// Suppress drops the operation after the hook observed it.
	Suppress
)

// CacheWrite is a pending controller-wide cache mutation presented to
// hooks. Hooks may mutate fields (fault injection) or suppress the write
// (JURY side-effect suppression at secondaries).
type CacheWrite struct {
	Cache store.CacheName
	Op    store.Op
	Key   string
	Value string
	Ctx   *trigger.Context
}

// CacheHook observes/mutates cache writes before they reach the store.
type CacheHook func(c *Controller, w *CacheWrite) HookAction

// EgressWrite is a pending southbound network write presented to hooks.
type EgressWrite struct {
	DPID topo.DPID
	Msg  openflow.Message
	Ctx  *trigger.Context
}

// EgressHook observes/mutates network writes before they leave the node.
type EgressHook func(c *Controller, w *EgressWrite) HookAction

// Controller is one node of the controller cluster.
type Controller struct {
	eng     *simnet.Engine
	id      store.NodeID
	profile Profile
	node    *store.Node
	members *cluster.Membership
	server  *simnet.Server

	downlinks   map[topo.DPID]func(msg openflow.Message)
	switchPorts map[topo.DPID][]uint16

	cacheHooks  []CacheHook
	egressHooks []EgressHook

	// OnEgress observes every message actually sent southbound.
	OnEgress func(dpid topo.DPID, msg openflow.Message, ctx *trigger.Context)

	// OnProcessStart fires when the pipeline begins processing a trigger
	// (non-nil ctx only); JURY's module snapshots the pre-trigger store
	// state here for state-aware consensus (§IV-C A).
	OnProcessStart func(ctx *trigger.Context)
	// OnProcessed fires after the pipeline finishes processing a trigger
	// (non-nil ctx only), letting JURY's module report no-op replicated
	// executions and release per-trigger state.
	OnProcessed func(dpid topo.DPID, msg openflow.Message, ctx *trigger.Context)

	alloc *trigger.IDAllocator

	// GC pause model state.
	pauseUntil  time.Duration
	nextPauseAt time.Duration

	// juryK is the number of secondaries when JURY is enabled (primary
	// overhead model); zero when JURY is off.
	juryK int

	// link freshness for liveness expiry
	linkSeen map[string]time.Duration
	// reconcileMisses counts consecutive flow-stats polls that failed to
	// confirm a FlowsDB rule on its switch.
	reconcileMisses map[string]int

	// LivenessIDOverride, when non-zero, replaces the controller's ID in
	// the link-liveness election — the knob the ONOS master-election
	// fault (§III-B) turns after the master reboots with a lower ID.
	LivenessIDOverride store.NodeID

	crashed bool

	// extraDelay/extraJitter model an injected timing fault: every job
	// is slowed by extraDelay plus U(0, extraJitter).
	extraDelay  time.Duration
	extraJitter time.Duration

	xid            uint32
	flowModsSent   uint64
	packetOutsSent uint64
	ingressDrops   uint64
	pausesTaken    uint64
}

// New creates a controller node backed by the given store replica.
func New(eng *simnet.Engine, id store.NodeID, profile Profile, node *store.Node, members *cluster.Membership) *Controller {
	c := &Controller{
		eng:             eng,
		id:              id,
		profile:         profile,
		node:            node,
		members:         members,
		server:          simnet.NewServer(eng, profile.Workers, profile.QueueCap),
		downlinks:       make(map[topo.DPID]func(openflow.Message)),
		switchPorts:     make(map[topo.DPID][]uint16),
		alloc:           trigger.NewIDAllocator(fmt.Sprintf("C%d", id)),
		linkSeen:        make(map[string]time.Duration),
		reconcileMisses: make(map[string]int),
	}
	c.server.InflateAt = profile.InflateAt
	c.server.InflateSlope = profile.InflateSlope
	c.nextPauseAt = c.expDelay(profile.PausePeriod)
	node.Subscribe(c.onStoreEvent)
	return c
}

// ID returns the controller's cluster identifier.
func (c *Controller) ID() store.NodeID { return c.id }

// Profile returns the controller's performance profile.
func (c *Controller) Profile() Profile { return c.profile }

// Node returns the controller's store replica.
func (c *Controller) Node() *store.Node { return c.node }

// Membership returns the cluster membership view.
func (c *Controller) Membership() *cluster.Membership { return c.members }

// AddCacheHook registers a hook on cache writes, appended to the chain.
// JURY's module registers here so it observes writes after any faults.
func (c *Controller) AddCacheHook(h CacheHook) { c.cacheHooks = append(c.cacheHooks, h) }

// PrependCacheHook registers a hook at the front of the chain. Fault
// injectors register here: the bug perturbs the write before JURY (or the
// store) sees it, so JURY validates the faulty behaviour instead of
// masking it.
func (c *Controller) PrependCacheHook(h CacheHook) {
	c.cacheHooks = append([]CacheHook{h}, c.cacheHooks...)
}

// AddEgressHook registers a hook on southbound network writes, appended to
// the chain (JURY's module observes what actually leaves the node).
func (c *Controller) AddEgressHook(h EgressHook) { c.egressHooks = append(c.egressHooks, h) }

// PrependEgressHook registers an egress hook at the front of the chain
// (fault injectors).
func (c *Controller) PrependEgressHook(h EgressHook) {
	c.egressHooks = append([]EgressHook{h}, c.egressHooks...)
}

// SetJuryReplication records the replication factor for the primary-side
// overhead model.
func (c *Controller) SetJuryReplication(k int) { c.juryK = k }

// FlowModsSent returns the count of FLOW_MODs emitted southbound.
func (c *Controller) FlowModsSent() uint64 { return c.flowModsSent }

// PacketOutsSent returns the count of PACKET_OUTs emitted southbound.
func (c *Controller) PacketOutsSent() uint64 { return c.packetOutsSent }

// IngressDrops returns PACKET_INs rejected by the full ingress queue.
func (c *Controller) IngressDrops() uint64 { return c.ingressDrops }

// Backlog returns the current pipeline backlog.
func (c *Controller) Backlog() int { return c.server.Backlog() }

// Crashed reports whether the controller has fail-stopped.
func (c *Controller) Crashed() bool { return c.crashed }

// Crash fail-stops the controller: it stops processing, mastership fails
// over, and its store replica detaches.
func (c *Controller) Crash() {
	if c.crashed {
		return
	}
	c.crashed = true
	c.members.MarkDead(c.id)
}

// ConnectSwitch registers the southbound channel to a switch and initiates
// the OpenFlow handshake (HELLO + FEATURES_REQUEST).
func (c *Controller) ConnectSwitch(dpid topo.DPID, downlink func(openflow.Message)) {
	c.downlinks[dpid] = downlink
	c.xid++
	c.sendSouthbound(dpid, &openflow.Hello{XID: c.xid}, nil)
	c.xid++
	c.sendSouthbound(dpid, &openflow.FeaturesRequest{XID: c.xid}, nil)
}

// Governed returns the switches this controller masters.
func (c *Controller) Governed() []topo.DPID { return c.members.Governed(c.id) }

// Start launches the controller's periodic activities: LLDP discovery,
// link-liveness sweeps, and (when enabled) flow reconciliation.
func (c *Controller) Start() {
	if c.profile.LLDPPeriod > 0 {
		c.eng.Schedule(c.profile.LLDPPeriod/4, c.lldpTick)
	}
	if c.profile.ReconcilePeriod > 0 {
		c.eng.Schedule(c.profile.ReconcilePeriod, c.reconcileTick)
	}
}

// HandleSouthbound is the ingress of the southbound pipeline. ctx is nil in
// vanilla deployments; with JURY, the replicator supplies a context whose
// Replica flag marks secondary (tainted) executions.
func (c *Controller) HandleSouthbound(dpid topo.DPID, msg openflow.Message, ctx *trigger.Context) {
	if c.crashed {
		return
	}
	submit := func() {
		if !c.server.SubmitFunc(
			func() time.Duration { return c.serviceTime(msg, ctx) },
			func() { c.process(dpid, msg, ctx) },
		) {
			c.ingressDrops++
		}
	}
	// An injected timing fault delays the trigger on ingress (a slow
	// replica still responds, just late) without consuming pipeline
	// capacity, matching the "slow replicas" model of §IV-C C.
	if c.extraDelay > 0 || c.extraJitter > 0 {
		delay := c.extraDelay
		if c.extraJitter > 0 {
			delay += time.Duration(c.eng.Rand().Int63n(int64(c.extraJitter)))
		}
		c.eng.Schedule(delay, submit)
		return
	}
	submit()
}

// serviceTime draws the pipeline service time for a message under the
// profile's class means, GC-pause schedule and clustering overheads.
func (c *Controller) serviceTime(msg openflow.Message, ctx *trigger.Context) time.Duration {
	var mean time.Duration
	if ctx.Tainted() {
		mean = c.profile.ReplicaService
	} else {
		switch m := msg.(type) {
		case *openflow.PacketIn:
			mean = c.classMean(m)
		case *openflow.FlowRemoved:
			mean = c.profile.LLDPService
		default:
			mean = c.profile.HandshakeService
		}
	}
	service := c.expDelay(mean)
	if !ctx.Tainted() {
		if n := c.members != nil; n {
			extra := len(c.members.Members()) - 1
			if extra > 0 {
				service += time.Duration(extra) * c.profile.PerReplicaOverhead
			}
		}
		if c.juryK > 0 {
			service += time.Duration(c.juryK) * c.profile.JuryPrimaryOverhead
		}
	}
	return service + c.pauseDelay()
}

// SetExtraDelay injects a timing fault: every trigger is delayed on
// ingress by delay plus U(0, jitter). Zero values clear the fault.
func (c *Controller) SetExtraDelay(delay, jitter time.Duration) {
	c.extraDelay = delay
	c.extraJitter = jitter
}

func (c *Controller) classMean(pin *openflow.PacketIn) time.Duration {
	pf, err := openflow.ParsePacket(pin.Data, pin.InPort)
	if err != nil {
		return c.profile.HandshakeService
	}
	switch pf.EthType {
	case openflow.EthTypeARP:
		return c.profile.ARPService
	case openflow.EthTypeLLDP:
		return c.profile.LLDPService
	default:
		return c.profile.FlowSetupService
	}
}

func (c *Controller) expDelay(mean time.Duration) time.Duration {
	if mean <= 0 {
		return 0
	}
	d := time.Duration(c.eng.Rand().ExpFloat64() * float64(mean))
	if max := 8 * mean; d > max {
		d = max
	}
	return d
}

// pauseDelay advances the GC-pause schedule and returns the stall a job
// starting now experiences.
func (c *Controller) pauseDelay() time.Duration {
	if c.profile.PausePeriod <= 0 {
		return 0
	}
	now := c.eng.Now()
	for now >= c.nextPauseAt {
		span := c.profile.PauseMax - c.profile.PauseMin
		dur := c.profile.PauseMin
		if span > 0 {
			dur += time.Duration(c.eng.Rand().Int63n(int64(span)))
		}
		start := c.nextPauseAt
		if c.pauseUntil > start {
			start = c.pauseUntil
		}
		c.pauseUntil = start + dur
		c.nextPauseAt = c.pauseUntil + c.expDelay(c.profile.PausePeriod)
		c.pausesTaken++
	}
	if now < c.pauseUntil {
		return c.pauseUntil - now
	}
	return 0
}

// process runs after the pipeline service delay.
func (c *Controller) process(dpid topo.DPID, msg openflow.Message, ctx *trigger.Context) {
	if c.crashed {
		return
	}
	if ctx != nil && c.OnProcessStart != nil {
		c.OnProcessStart(ctx)
	}
	switch m := msg.(type) {
	case *openflow.Hello:
		// handshake progress; nothing to record
	case *openflow.FeaturesReply:
		c.handleFeaturesReply(topo.DPID(m.DatapathID), m, ctx)
	case *openflow.EchoReply, *openflow.BarrierReply, *openflow.ErrorMsg:
		// liveness / ack traffic
	case *openflow.PacketIn:
		c.handlePacketIn(dpid, m, ctx)
	case *openflow.FlowRemoved:
		c.handleFlowRemoved(dpid, m, ctx)
	case *openflow.FlowStatsReply:
		c.handleFlowStats(dpid, m, ctx)
	case *openflow.PortStatus:
		c.handlePortStatus(dpid, m, ctx)
	}
	if ctx != nil && c.OnProcessed != nil {
		c.OnProcessed(dpid, msg, ctx)
	}
}

func (c *Controller) handlePacketIn(dpid topo.DPID, pin *openflow.PacketIn, ctx *trigger.Context) {
	pf, err := openflow.ParsePacket(pin.Data, pin.InPort)
	if err != nil {
		return
	}
	switch pf.EthType {
	case openflow.EthTypeLLDP:
		c.handleLLDP(dpid, pf, ctx)
	case openflow.EthTypeARP:
		c.handleARP(dpid, pin, pf, ctx)
	default:
		c.handleForwarding(dpid, pin, pf, ctx)
	}
}

// WriteCache routes a controller-wide cache mutation through the hook
// chain and, if allowed, into the distributed store. done (optional) fires
// when the write is durable.
func (c *Controller) WriteCache(cache store.CacheName, op store.Op, key, value string, ctx *trigger.Context, done func()) {
	w := &CacheWrite{Cache: cache, Op: op, Key: key, Value: value, Ctx: ctx}
	for _, h := range c.cacheHooks {
		if h(c, w) == Suppress {
			return
		}
	}
	var tag string
	if w.Ctx != nil {
		tag = string(w.Ctx.ID)
	}
	c.node.WriteTagged(w.Cache, w.Op, w.Key, w.Value, tag, done)
}

// sendSouthbound routes a network write through the hook chain and, if
// allowed, down the wire to the switch after the egress I/O delay.
func (c *Controller) sendSouthbound(dpid topo.DPID, msg openflow.Message, ctx *trigger.Context) {
	w := &EgressWrite{DPID: dpid, Msg: msg, Ctx: ctx}
	for _, h := range c.egressHooks {
		if h(c, w) == Suppress {
			return
		}
	}
	downlink, ok := c.downlinks[w.DPID]
	if !ok {
		return
	}
	switch w.Msg.(type) {
	case *openflow.FlowMod:
		c.flowModsSent++
	case *openflow.PacketOut:
		c.packetOutsSent++
	}
	if c.OnEgress != nil {
		c.OnEgress(w.DPID, w.Msg, w.Ctx)
	}
	msgOut := w.Msg
	c.eng.Schedule(c.profile.EgressService, func() {
		if !c.crashed {
			downlink(msgOut)
		}
	})
}

// onStoreEvent reacts to cache events applied at this replica: the master
// of a switch materializes FlowsDB entries into actual FLOW_MODs, which is
// how controllers program remote switches through the shared store
// (§II-A1).
func (c *Controller) onStoreEvent(_ store.NodeID, ev store.Event, _ bool) {
	if c.crashed || ev.Cache != store.FlowsDB {
		return
	}
	if ev.Op == store.OpDelete {
		return
	}
	rule, err := DecodeFlowRule(ev.Value)
	if err != nil {
		return
	}
	if !c.members.IsMaster(c.id, rule.DPID) {
		return
	}
	c.xid++
	// The event tag carries the trigger identity for both external
	// triggers (equal to the rule's taint) and internal ones (the
	// internal trigger id minted at the northbound entry point), so the
	// validator can correlate the FLOW_MOD either way.
	kind := trigger.External
	if rule.Trigger == "" {
		kind = trigger.Internal
	}
	ctx := &trigger.Context{ID: trigger.ID(ev.Tag), Kind: kind, Primary: rule.Origin}
	c.sendSouthbound(rule.DPID, rule.FlowMod(c.xid), ctx)
}

func (c *Controller) handleFeaturesReply(dpid topo.DPID, m *openflow.FeaturesReply, ctx *trigger.Context) {
	c.switchPorts[dpid] = append([]uint16(nil), m.Ports...)
	c.WriteCache(store.SwitchDB, store.OpCreate, dpid.String(),
		fmt.Sprintf("connected|ports=%d", len(m.Ports)), ctx, nil)
}

func (c *Controller) handleFlowRemoved(dpid topo.DPID, m *openflow.FlowRemoved, ctx *trigger.Context) {
	if !c.members.IsMaster(c.id, dpid) {
		return
	}
	rule := FlowRule{DPID: dpid, Match: m.Match, Priority: m.Priority}
	c.WriteCache(store.FlowsDB, store.OpDelete, rule.Key(), "", ctx, nil)
}
