package controller

import (
	"strings"
	"testing"
	"time"

	"github.com/jurysdn/jury/internal/cluster"
	"github.com/jurysdn/jury/internal/openflow"
	"github.com/jurysdn/jury/internal/simnet"
	"github.com/jurysdn/jury/internal/store"
	"github.com/jurysdn/jury/internal/topo"
	"github.com/jurysdn/jury/internal/trigger"
)

// rig is a minimal wired cluster for controller tests.
type rig struct {
	eng     *simnet.Engine
	cluster *store.Cluster
	members *cluster.Membership
	ctrls   []*Controller
	// sent captures southbound messages per controller id.
	sent map[store.NodeID][]EgressWrite
}

func newRig(t *testing.T, n int, switches int, profile Profile) *rig {
	t.Helper()
	eng := simnet.NewEngine(1)
	sc := store.NewCluster(eng, store.DefaultConfig(profile.Consistency))
	var (
		memberIDs []store.NodeID
		ds        []topo.DPID
	)
	for i := 1; i <= n; i++ {
		memberIDs = append(memberIDs, store.NodeID(i))
	}
	for i := 1; i <= switches; i++ {
		ds = append(ds, topo.DPID(i))
	}
	members := cluster.NewMembership(cluster.AnyControllerOneMaster, memberIDs, ds)
	r := &rig{eng: eng, cluster: sc, members: members, sent: make(map[store.NodeID][]EgressWrite)}
	for _, id := range memberIDs {
		node := sc.AddNode(id)
		c := New(eng, id, profile, node, members)
		id := id
		c.AddEgressHook(func(_ *Controller, w *EgressWrite) HookAction {
			r.sent[id] = append(r.sent[id], *w)
			return Proceed
		})
		for _, d := range ds {
			c.downlinks[d] = func(openflow.Message) {}
		}
		r.ctrls = append(r.ctrls, c)
	}
	return r
}

func quietProfile() Profile {
	p := ONOSProfile()
	p.PausePeriod = 0 // deterministic tests
	p.LLDPPeriod = 0
	return p
}

func (r *rig) run(t *testing.T) {
	t.Helper()
	if err := r.eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
}

func (r *rig) ctrl(id int) *Controller { return r.ctrls[id-1] }

func extCtx(id string, primary store.NodeID) *trigger.Context {
	return &trigger.Context{ID: trigger.ID(id), Kind: trigger.External, Primary: primary}
}

func TestFeaturesReplyWritesSwitchDB(t *testing.T) {
	r := newRig(t, 2, 2, quietProfile())
	c := r.ctrl(1)
	c.HandleSouthbound(1, &openflow.FeaturesReply{DatapathID: 1, Ports: []uint16{1, 2}}, extCtx("t1", 1))
	r.run(t)
	if v, ok := c.Node().Get(store.SwitchDB, topo.DPID(1).String()); !ok || !strings.Contains(v, "connected") {
		t.Fatalf("SwitchDB entry = %q, %v", v, ok)
	}
	if got := c.switchPorts[1]; len(got) != 2 {
		t.Fatalf("ports = %v", got)
	}
}

func TestLLDPWritesBothDirections(t *testing.T) {
	r := newRig(t, 2, 2, quietProfile())
	// Switch 1 → C1, switch 2 → C2; liveness master = C2 (higher id).
	c2 := r.ctrl(2)
	frame := openflow.LLDPPacket(controllerMAC(1), 1, 3)
	pin := &openflow.PacketIn{InPort: 2, Data: frame}
	c2.HandleSouthbound(2, pin, extCtx("t1", 2))
	r.run(t)
	for _, key := range []string{"1:3->2:2", "2:2->1:3"} {
		if v, ok := c2.Node().Get(store.LinksDB, key); !ok || v != "up" {
			t.Fatalf("LinksDB[%s] = %q, %v", key, v, ok)
		}
	}
}

func TestLLDPNonLivenessMasterSkips(t *testing.T) {
	r := newRig(t, 2, 2, quietProfile())
	// C1 (lower id) receives LLDP for cross-governed link: must not write.
	c1 := r.ctrl(1)
	frame := openflow.LLDPPacket(controllerMAC(2), 2, 2)
	c1.HandleSouthbound(1, &openflow.PacketIn{InPort: 3, Data: frame}, extCtx("t1", 1))
	r.run(t)
	if c1.Node().Len(store.LinksDB) != 0 {
		t.Fatal("non-liveness-master wrote LinksDB")
	}
}

func TestLLDPTaintedEvaluatesAsPrimary(t *testing.T) {
	r := newRig(t, 3, 3, quietProfile())
	// Link between switch 1 (C1) and switch 2 (C2): liveness master C2.
	// C3 replays the trigger as a secondary; it must produce C2's writes.
	c3 := r.ctrl(3)
	var captured []CacheWrite
	c3.AddCacheHook(func(_ *Controller, w *CacheWrite) HookAction {
		if w.Ctx.Tainted() {
			captured = append(captured, *w)
			return Suppress
		}
		return Proceed
	})
	frame := openflow.LLDPPacket(controllerMAC(1), 1, 3)
	ctx := extCtx("t1", 2).ReplicaOf()
	c3.HandleSouthbound(2, &openflow.PacketIn{InPort: 2, Data: frame}, ctx)
	r.run(t)
	if len(captured) != 2 {
		t.Fatalf("captured %d writes, want 2 (both directions)", len(captured))
	}
}

func TestLivenessOverrideSuppressesTracking(t *testing.T) {
	r := newRig(t, 2, 2, quietProfile())
	c2 := r.ctrl(2)
	c2.LivenessIDOverride = -1 // rebooted with lower election id
	frame := openflow.LLDPPacket(controllerMAC(1), 1, 3)
	c2.HandleSouthbound(2, &openflow.PacketIn{InPort: 2, Data: frame}, extCtx("t1", 2))
	r.run(t)
	if c2.Node().Len(store.LinksDB) != 0 {
		t.Fatal("overridden liveness master still wrote LinksDB")
	}
}

func TestARPLearnsHostOnEdgePort(t *testing.T) {
	r := newRig(t, 1, 1, quietProfile())
	c := r.ctrl(1)
	mac := topo.HostMAC(1)
	frame := openflow.ARPPacket(openflow.ARPRequest, mac, topo.HostIP(1), openflow.MAC{}, topo.HostIP(2))
	c.HandleSouthbound(1, &openflow.PacketIn{InPort: 1, Data: frame}, extCtx("t1", 1))
	r.run(t)
	if _, ok := c.Node().Get(store.HostDB, mac.String()); !ok {
		t.Fatal("host not learned")
	}
	if v, _ := c.Node().Get(store.ArpDB, topo.HostIP(1).String()); v != mac.String() {
		t.Fatalf("ArpDB = %q", v)
	}
	// Unknown binding: must flood the request.
	found := false
	for _, w := range r.sent[1] {
		if po, ok := w.Msg.(*openflow.PacketOut); ok && po.Actions[0].Port == openflow.PortFlood {
			found = true
		}
	}
	if !found {
		t.Fatal("unknown target not flooded")
	}
}

func TestARPInteriorPortDoesNotLearn(t *testing.T) {
	r := newRig(t, 1, 2, quietProfile())
	c := r.ctrl(1)
	// Teach the controller that (1,3) is a link endpoint.
	c.Node().Write(store.LinksDB, store.OpCreate, LinkKey(topo.Port{DPID: 1, Port: 3}, topo.Port{DPID: 2, Port: 2}), "up", nil)
	mac := topo.HostMAC(1)
	frame := openflow.ARPPacket(openflow.ARPRequest, mac, topo.HostIP(1), openflow.MAC{}, topo.HostIP(2))
	c.HandleSouthbound(1, &openflow.PacketIn{InPort: 3, Data: frame}, extCtx("t1", 1))
	r.run(t)
	if _, ok := c.Node().Get(store.HostDB, mac.String()); ok {
		t.Fatal("host learned from interior port")
	}
}

func TestProxyARPAnswersKnownBinding(t *testing.T) {
	r := newRig(t, 1, 1, quietProfile())
	c := r.ctrl(1)
	target := topo.HostMAC(2)
	c.Node().Write(store.ArpDB, store.OpCreate, topo.HostIP(2).String(), target.String(), nil)
	mac := topo.HostMAC(1)
	frame := openflow.ARPPacket(openflow.ARPRequest, mac, topo.HostIP(1), openflow.MAC{}, topo.HostIP(2))
	c.HandleSouthbound(1, &openflow.PacketIn{InPort: 1, Data: frame}, extCtx("t1", 1))
	r.run(t)
	var reply *openflow.PacketOut
	for _, w := range r.sent[1] {
		if po, ok := w.Msg.(*openflow.PacketOut); ok {
			if pf, err := openflow.ParsePacket(po.Data, 0); err == nil && pf.ARPOp == openflow.ARPReply {
				reply = po
			}
		}
	}
	if reply == nil {
		t.Fatal("no proxy ARP reply")
	}
	pf, _ := openflow.ParsePacket(reply.Data, 0)
	if pf.EthSrc != target || pf.EthDst != mac {
		t.Fatalf("reply addresses wrong: %v -> %v", pf.EthSrc, pf.EthDst)
	}
}

// seedTwoSwitchTopology gives every controller knowledge of hosts h1@1:1,
// h2@2:1 and the 1<->2 link.
func seedTwoSwitchTopology(r *rig) {
	link := LinkKey(topo.Port{DPID: 1, Port: 3}, topo.Port{DPID: 2, Port: 2})
	rlink := LinkKey(topo.Port{DPID: 2, Port: 2}, topo.Port{DPID: 1, Port: 3})
	h1 := hostRecord{MAC: topo.HostMAC(1).String(), IP: topo.HostIP(1).String(), DPID: 1, Port: 1}
	h2 := hostRecord{MAC: topo.HostMAC(2).String(), IP: topo.HostIP(2).String(), DPID: 2, Port: 1}
	n := r.ctrl(1).Node()
	n.Write(store.LinksDB, store.OpCreate, link, "up", nil)
	n.Write(store.LinksDB, store.OpCreate, rlink, "up", nil)
	n.Write(store.EdgesDB, store.OpCreate, h1.MAC, h1.encode(), nil)
	n.Write(store.EdgesDB, store.OpCreate, h2.MAC, h2.encode(), nil)
	r.eng.RunUntilIdle()
}

func TestReactiveForwardingInstallsHopRule(t *testing.T) {
	r := newRig(t, 2, 2, quietProfile())
	seedTwoSwitchTopology(r)
	c1 := r.ctrl(1)
	frame := openflow.TCPPacket(topo.HostMAC(1), topo.HostMAC(2), topo.HostIP(1), topo.HostIP(2), 1000, 80, 0x02, 0)
	c1.HandleSouthbound(1, &openflow.PacketIn{InPort: 1, Data: frame}, extCtx("t1", 1))
	r.run(t)
	// One rule in FlowsDB for switch 1 pointing at port 3 (toward sw2).
	keys := c1.Node().Keys(store.FlowsDB)
	if len(keys) != 1 {
		t.Fatalf("FlowsDB entries = %d, want 1 (hop-by-hop)", len(keys))
	}
	v, _ := c1.Node().Get(store.FlowsDB, keys[0])
	rule, err := DecodeFlowRule(v)
	if err != nil {
		t.Fatal(err)
	}
	if rule.DPID != 1 || rule.Actions[0].Port != 3 {
		t.Fatalf("rule = %+v", rule)
	}
	// The triggering packet was released via PACKET_OUT out port 3.
	var released bool
	for _, w := range r.sent[1] {
		if po, ok := w.Msg.(*openflow.PacketOut); ok && po.Actions[0].Port == 3 {
			released = true
		}
	}
	if !released {
		t.Fatal("triggering packet not released")
	}
}

func TestForwardingUnknownDstFloods(t *testing.T) {
	r := newRig(t, 1, 1, quietProfile())
	c := r.ctrl(1)
	frame := openflow.TCPPacket(topo.HostMAC(1), topo.HostMAC(9), topo.HostIP(1), topo.HostIP(9), 1, 2, 0, 0)
	c.HandleSouthbound(1, &openflow.PacketIn{InPort: 1, Data: frame}, extCtx("t1", 1))
	r.run(t)
	if c.Node().Len(store.FlowsDB) != 0 {
		t.Fatal("rule installed for unknown destination")
	}
	if len(r.sent[1]) != 1 {
		t.Fatalf("sent = %d", len(r.sent[1]))
	}
}

func TestMasterIssuesFlowModOnFlowsDBEvent(t *testing.T) {
	r := newRig(t, 2, 2, quietProfile())
	// C1 writes a rule for switch 2 (mastered by C2): C2 must emit the
	// FLOW_MOD (remote-switch programming via the shared store, §II-A1).
	rule := FlowRule{
		DPID:     2,
		Match:    openflow.ExactDst(topo.HostMAC(2)),
		Priority: 5,
		Actions:  []openflow.Action{openflow.Output(1)},
		Command:  uint16(openflow.FlowAdd),
		Trigger:  "t9",
		Origin:   1,
	}
	r.ctrl(1).Node().WriteTagged(store.FlowsDB, store.OpCreate, rule.Key(), rule.Encode(), "t9", nil)
	r.run(t)
	var c2FlowMods int
	for _, w := range r.sent[2] {
		if _, ok := w.Msg.(*openflow.FlowMod); ok {
			c2FlowMods++
			if w.Ctx == nil || w.Ctx.ID != "t9" {
				t.Fatalf("flow mod ctx = %+v", w.Ctx)
			}
		}
	}
	if c2FlowMods != 1 {
		t.Fatalf("C2 emitted %d FLOW_MODs, want 1", c2FlowMods)
	}
	for _, w := range r.sent[1] {
		if _, ok := w.Msg.(*openflow.FlowMod); ok {
			t.Fatal("non-master emitted FLOW_MOD")
		}
	}
}

func TestFlowRemovedDeletesCacheEntry(t *testing.T) {
	r := newRig(t, 1, 1, quietProfile())
	c := r.ctrl(1)
	rule := FlowRule{DPID: 1, Match: openflow.ExactDst(topo.HostMAC(2)), Priority: 5}
	c.Node().Write(store.FlowsDB, store.OpCreate, rule.Key(), rule.Encode(), nil)
	r.run(t)
	c.HandleSouthbound(1, &openflow.FlowRemoved{
		Match:    rule.Match,
		Priority: rule.Priority,
		Reason:   openflow.RemovedIdleTimeout,
	}, extCtx("t2", 1))
	r.run(t)
	if c.Node().Len(store.FlowsDB) != 0 {
		t.Fatal("expired rule not deleted from FlowsDB")
	}
}

func TestRESTInstallWritesTaggedRule(t *testing.T) {
	r := newRig(t, 1, 1, quietProfile())
	c := r.ctrl(1)
	rule := FlowRule{DPID: 1, Match: openflow.MatchAll(), Priority: 1, Actions: []openflow.Action{openflow.Output(1)}}
	c.InstallFlowREST(rule, extCtx("rest-1", 1))
	r.run(t)
	keys := c.Node().Keys(store.FlowsDB)
	if len(keys) != 1 {
		t.Fatalf("FlowsDB = %d entries", len(keys))
	}
	v, _ := c.Node().Get(store.FlowsDB, keys[0])
	got, _ := DecodeFlowRule(v)
	if got.Trigger != "rest-1" || got.Origin != 1 {
		t.Fatalf("attribution = %+v", got)
	}
}

func TestRESTDeleteMapsToCacheDelete(t *testing.T) {
	r := newRig(t, 1, 1, quietProfile())
	c := r.ctrl(1)
	rule := FlowRule{DPID: 1, Match: openflow.MatchAll(), Priority: 1}
	c.Node().Write(store.FlowsDB, store.OpCreate, rule.Key(), rule.Encode(), nil)
	r.run(t)
	del := rule
	del.Command = uint16(openflow.FlowDelete)
	c.InstallFlowREST(del, extCtx("rest-2", 1))
	r.run(t)
	if c.Node().Len(store.FlowsDB) != 0 {
		t.Fatal("REST delete did not remove the cache entry")
	}
}

func TestInternalInstallHasNoTriggerTag(t *testing.T) {
	r := newRig(t, 1, 1, quietProfile())
	c := r.ctrl(1)
	var tags []string
	c.Node().Subscribe(func(_ store.NodeID, ev store.Event, _ bool) { tags = append(tags, ev.Tag) })
	c.InstallFlowInternal(FlowRule{DPID: 1, Match: openflow.MatchAll(), Priority: 1})
	r.run(t)
	if len(tags) != 1 {
		t.Fatalf("events = %d", len(tags))
	}
	// Internal triggers carry the internal trigger id as the tag; the
	// rule itself is untainted (Trigger field empty).
	v, _ := c.Node().Get(store.FlowsDB, c.Node().Keys(store.FlowsDB)[0])
	rule, _ := DecodeFlowRule(v)
	if rule.Trigger != "" {
		t.Fatalf("internal rule carries trigger %q", rule.Trigger)
	}
}

func TestCacheHookCanMutateAndSuppress(t *testing.T) {
	r := newRig(t, 1, 1, quietProfile())
	c := r.ctrl(1)
	c.AddCacheHook(func(_ *Controller, w *CacheWrite) HookAction {
		if w.Cache == store.LinksDB {
			w.Value = "down"
		}
		if w.Cache == store.SwitchDB {
			return Suppress
		}
		return Proceed
	})
	c.WriteCache(store.LinksDB, store.OpCreate, "k", "up", nil, nil)
	c.WriteCache(store.SwitchDB, store.OpCreate, "s", "connected", nil, nil)
	r.run(t)
	if v, _ := c.Node().Get(store.LinksDB, "k"); v != "down" {
		t.Fatalf("mutation lost: %q", v)
	}
	if _, ok := c.Node().Get(store.SwitchDB, "s"); ok {
		t.Fatal("suppressed write reached the store")
	}
}

func TestPrependHookRunsFirst(t *testing.T) {
	r := newRig(t, 1, 1, quietProfile())
	c := r.ctrl(1)
	var order []string
	c.AddCacheHook(func(_ *Controller, _ *CacheWrite) HookAction {
		order = append(order, "module")
		return Proceed
	})
	c.PrependCacheHook(func(_ *Controller, _ *CacheWrite) HookAction {
		order = append(order, "fault")
		return Proceed
	})
	c.WriteCache(store.HostDB, store.OpCreate, "k", "v", nil, nil)
	if len(order) < 2 || order[0] != "fault" {
		t.Fatalf("hook order = %v", order)
	}
}

func TestCrashStopsProcessing(t *testing.T) {
	r := newRig(t, 2, 2, quietProfile())
	c := r.ctrl(1)
	c.Crash()
	if !c.Crashed() {
		t.Fatal("not crashed")
	}
	if r.members.IsAlive(1) {
		t.Fatal("membership not updated")
	}
	c.HandleSouthbound(1, &openflow.FeaturesReply{DatapathID: 1}, extCtx("t", 1))
	r.run(t)
	if c.Node().Len(store.SwitchDB) != 0 {
		t.Fatal("crashed controller processed a trigger")
	}
}

func TestTimingFaultDelaysProcessing(t *testing.T) {
	r := newRig(t, 1, 1, quietProfile())
	c := r.ctrl(1)
	c.SetExtraDelay(50*time.Millisecond, 0)
	var doneAt time.Duration
	c.OnProcessed = func(_ topo.DPID, _ openflow.Message, _ *trigger.Context) { doneAt = r.eng.Now() }
	c.HandleSouthbound(1, &openflow.FeaturesReply{DatapathID: 1}, extCtx("t", 1))
	r.run(t)
	if doneAt < 50*time.Millisecond {
		t.Fatalf("processed at %v, want >= 50ms", doneAt)
	}
}

func TestGCPauseStallsJobs(t *testing.T) {
	p := quietProfile()
	p.PausePeriod = 10 * time.Millisecond
	p.PauseMin = 5 * time.Millisecond
	p.PauseMax = 6 * time.Millisecond
	r := newRig(t, 1, 1, p)
	c := r.ctrl(1)
	stalled := 0
	for i := 0; i < 200; i++ {
		r.eng.Schedule(time.Duration(i)*time.Millisecond, func() {
			if c.pauseDelay() > 0 {
				stalled++
			}
		})
	}
	r.run(t)
	if stalled == 0 {
		t.Fatal("no pause stalls observed")
	}
}

func TestServiceClassSelection(t *testing.T) {
	r := newRig(t, 1, 1, quietProfile())
	c := r.ctrl(1)
	arp := &openflow.PacketIn{Data: openflow.ARPPacket(openflow.ARPRequest, topo.HostMAC(1), topo.HostIP(1), openflow.MAC{}, topo.HostIP(2))}
	ip := &openflow.PacketIn{Data: openflow.TCPPacket(topo.HostMAC(1), topo.HostMAC(2), topo.HostIP(1), topo.HostIP(2), 1, 2, 0, 0)}
	if got := c.classMean(arp); got != c.profile.ARPService {
		t.Fatalf("ARP class = %v", got)
	}
	if got := c.classMean(ip); got != c.profile.FlowSetupService {
		t.Fatalf("IPv4 class = %v", got)
	}
}

func TestFlowRuleRoundTrip(t *testing.T) {
	rule := FlowRule{
		DPID:        3,
		Match:       openflow.ExactSrcDst(topo.HostMAC(1), topo.HostMAC(2)),
		Priority:    10,
		Actions:     []openflow.Action{openflow.Output(4)},
		IdleTimeout: 10,
		Command:     uint16(openflow.FlowAdd),
		Trigger:     "τ1",
		Origin:      2,
	}
	got, err := DecodeFlowRule(rule.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Key() != rule.Key() {
		t.Fatal("key not stable across round trip")
	}
	fm := got.FlowMod(7)
	if fm.XID != 7 || fm.Priority != 10 || fm.Actions[0].Port != 4 {
		t.Fatalf("flow mod = %+v", fm)
	}
}

func TestDecodeFlowRuleRejectsGarbage(t *testing.T) {
	if _, err := DecodeFlowRule("not json"); err == nil {
		t.Fatal("expected error")
	}
}

func TestLinkKeyRoundTrip(t *testing.T) {
	src := topo.Port{DPID: 12, Port: 3}
	dst := topo.Port{DPID: 7, Port: 2}
	s, d, err := parseLinkKey(LinkKey(src, dst))
	if err != nil {
		t.Fatal(err)
	}
	if s != src || d != dst {
		t.Fatalf("round trip: %v %v", s, d)
	}
	if _, _, err := parseLinkKey("bogus"); err == nil {
		t.Fatal("expected parse error")
	}
}

func TestParseMAC(t *testing.T) {
	mac := topo.HostMAC(300)
	got, err := ParseMAC(mac.String())
	if err != nil || got != mac {
		t.Fatalf("got %v, %v", got, err)
	}
	for _, bad := range []string{"", "xx", "00:00:00:00:00", "zz:00:00:00:00:00", "00-00-00-00-00-00"} {
		if _, err := ParseMAC(bad); err == nil {
			t.Fatalf("ParseMAC(%q) succeeded", bad)
		}
	}
}

func TestProactiveForwardingInstallsDestRules(t *testing.T) {
	p := quietProfile()
	p.ProactiveForwarding = true
	r := newRig(t, 1, 2, p)
	c := r.ctrl(1)
	// The controller knows both switches and the link between them.
	c.Node().Write(store.SwitchDB, store.OpCreate, topo.DPID(1).String(), "connected", nil)
	c.Node().Write(store.SwitchDB, store.OpCreate, topo.DPID(2).String(), "connected", nil)
	c.Node().Write(store.LinksDB, store.OpCreate, LinkKey(topo.Port{DPID: 1, Port: 3}, topo.Port{DPID: 2, Port: 2}), "up", nil)
	c.Node().Write(store.LinksDB, store.OpCreate, LinkKey(topo.Port{DPID: 2, Port: 2}, topo.Port{DPID: 1, Port: 3}), "up", nil)
	r.run(t)
	// New host joins at switch 2 port 1.
	mac := topo.HostMAC(5)
	frame := openflow.ARPPacket(openflow.ARPRequest, mac, topo.HostIP(5), openflow.MAC{}, topo.HostIP(1))
	c.HandleSouthbound(2, &openflow.PacketIn{InPort: 1, Data: frame}, extCtx("t1", 1))
	r.run(t)
	// Dest-based rules for both switches.
	count := 0
	for _, key := range c.Node().Keys(store.FlowsDB) {
		v, _ := c.Node().Get(store.FlowsDB, key)
		rule, err := DecodeFlowRule(v)
		if err != nil {
			t.Fatal(err)
		}
		if rule.Match.Equal(openflow.ExactDst(mac)) {
			count++
		}
	}
	if count != 2 {
		t.Fatalf("proactive rules = %d, want 2", count)
	}
}
