package trigger

import (
	"strconv"

	"github.com/jurysdn/jury/internal/store"
)

// Context is the trigger metadata JURY threads through the controller
// pipeline. The original trigger delivered to the primary carries
// Replica=false; copies replicated to secondary controllers carry
// Replica=true — that flag is the taint of §IV-A(1): responses elicited
// under a Replica context must never externalize side-effects.
type Context struct {
	ID      ID
	Kind    Kind
	Primary store.NodeID
	Replica bool
}

// Tainted reports whether the context marks replicated (secondary)
// execution.
func (c *Context) Tainted() bool { return c != nil && c.Replica }

// ReplicaOf derives the tainted context for a secondary from the primary's
// context.
func (c Context) ReplicaOf() *Context {
	cp := c
	cp.Replica = true
	return &cp
}

// IDAllocator mints unique trigger IDs.
type IDAllocator struct {
	prefix string
	next   uint64
}

// NewIDAllocator creates an allocator whose IDs carry the given prefix.
func NewIDAllocator(prefix string) *IDAllocator {
	return &IDAllocator{prefix: prefix}
}

// Next returns a fresh trigger ID.
func (a *IDAllocator) Next() ID {
	a.next++
	return ID(a.prefix + "-" + strconv.FormatUint(a.next, 10))
}
