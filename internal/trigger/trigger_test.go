package trigger

import "testing"

func TestIDAllocatorUnique(t *testing.T) {
	a := NewIDAllocator("of:1")
	seen := make(map[ID]bool)
	for i := 0; i < 1000; i++ {
		id := a.Next()
		if seen[id] {
			t.Fatalf("duplicate id %s", id)
		}
		seen[id] = true
	}
}

func TestContextTaint(t *testing.T) {
	var nilCtx *Context
	if nilCtx.Tainted() {
		t.Fatal("nil context tainted")
	}
	ctx := Context{ID: "τ", Kind: External, Primary: 3}
	if ctx.Tainted() {
		t.Fatal("original context tainted")
	}
	replica := ctx.ReplicaOf()
	if !replica.Tainted() {
		t.Fatal("replica not tainted")
	}
	if replica.ID != ctx.ID || replica.Primary != ctx.Primary {
		t.Fatal("replica lost identity")
	}
	if ctx.Replica {
		t.Fatal("ReplicaOf mutated the original")
	}
}

func TestKindStrings(t *testing.T) {
	if External.String() != "external" || Internal.String() != "internal" {
		t.Fatal("kind strings wrong")
	}
	if Kind(9).String() == "" {
		t.Fatal("unknown kind empty")
	}
}

func TestTaintString(t *testing.T) {
	taint := Taint{Trigger: "of:1-5", Primary: 2}
	if taint.String() != "taint(of:1-5@C2)" {
		t.Fatalf("got %s", taint.String())
	}
}
