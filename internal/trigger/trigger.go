// Package trigger defines the trigger taxonomy of the paper (§II-A2): the
// identifiers and taints JURY attaches to triggers so that responses can be
// attributed to the trigger and controller that produced them (§IV-B).
package trigger

import (
	"fmt"

	"github.com/jurysdn/jury/internal/store"
)

// ID uniquely identifies a trigger (τ in Algorithm 1).
type ID string

// Kind classifies a trigger from the controller's perspective.
type Kind uint8

// Trigger kinds.
const (
	// External triggers arrive on the southbound (PACKET_IN) or
	// northbound (REST) interfaces.
	External Kind = iota + 1
	// Internal triggers originate within the controller: administrator
	// logins and truly proactive applications.
	Internal
)

// String names the kind as used in policy files.
func (k Kind) String() string {
	switch k {
	case External:
		return "external"
	case Internal:
		return "internal"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Taint marks a replicated trigger: it identifies the trigger and the
// primary controller that received the original. JURY propagates the taint
// through the processing pipeline and onto every elicited response
// (§IV-A(1)).
type Taint struct {
	Trigger ID
	// Primary is the controller that received the original trigger.
	Primary store.NodeID
}

// String renders the taint.
func (t Taint) String() string { return fmt.Sprintf("taint(%s@C%d)", t.Trigger, t.Primary) }
