package wire

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/jurysdn/jury/internal/core"
	"github.com/jurysdn/jury/internal/obs"
	"github.com/jurysdn/jury/internal/store"
	"github.com/jurysdn/jury/internal/topo"
)

// TestEnvelopeTraceContextCompat asserts the trace field is compat-safe:
// envelopes without it (old senders) decode clean, envelopes with it
// round-trip, and untraced envelopes don't emit it.
func TestEnvelopeTraceContextCompat(t *testing.T) {
	var legacy Envelope
	if err := json.Unmarshal([]byte(`{"type":"response"}`), &legacy); err != nil {
		t.Fatalf("legacy envelope rejected: %v", err)
	}
	if legacy.Trace != nil {
		t.Fatal("legacy envelope grew a trace context")
	}
	plain, err := json.Marshal(Envelope{Type: TypeResponse})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(plain), "trace") {
		t.Fatalf("untraced envelope leaks the trace field: %s", plain)
	}
	env := Envelope{Type: TypeResponse, Trace: &TraceContext{Origin: "jurylive", BaseNS: 1500}}
	b, err := json.Marshal(env)
	if err != nil {
		t.Fatal(err)
	}
	var back Envelope
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Trace == nil || back.Trace.Origin != "jurylive" || back.Trace.BaseNS != 1500 {
		t.Fatalf("trace context round-trip = %+v", back.Trace)
	}
}

// TestServerTraceShiftEstimation asserts a traced server learns each
// client origin's clock-base shift from the first stamped envelope and
// exports a stitchable span trace.
func TestServerTraceShiftEstimation(t *testing.T) {
	s, err := Serve("127.0.0.1:0", ServerConfig{
		Validator: core.ValidatorConfig{K: 2, Timeout: 500 * time.Millisecond},
		Members:   []store.NodeID{1, 2, 3},
		Switches:  []topo.DPID{1},
		Tick:      time.Millisecond,
		Tracing:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })
	var clock struct {
		mu  sync.Mutex
		now time.Duration
	}
	c, err := DialConfig(s.Addr(), ClientConfig{
		Trace: &TraceContext{Origin: "ctrl-A"},
		TraceNow: func() time.Duration {
			clock.mu.Lock()
			defer clock.mu.Unlock()
			return clock.now
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var (
		mu      sync.Mutex
		results int
	)
	c.OnResult = func(core.Result) { mu.Lock(); results++; mu.Unlock() }
	clock.mu.Lock()
	clock.now = 42 * time.Millisecond
	clock.mu.Unlock()
	_ = c.Send(resp(1, "τs", core.CacheUpdate, false, "up"))
	_ = c.Send(resp(2, "τs", core.SecondaryExec, true, "up"))
	_ = c.Send(resp(3, "τs", core.SecondaryExec, true, "up"))
	waitFor(t, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return results == 1
	})
	origins := s.TraceOrigins()
	if _, ok := origins["ctrl-A"]; !ok {
		t.Fatalf("trace origins = %v, want ctrl-A", origins)
	}
	var buf bytes.Buffer
	if err := s.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"name":"validate"`) {
		t.Fatalf("server trace has no validate span:\n%s", buf.String())
	}
}

// TestServerWriteTraceUntraced asserts WriteTrace fails loudly when
// tracing was never enabled, instead of writing an empty file.
func TestServerWriteTraceUntraced(t *testing.T) {
	s := newServer(t, 500*time.Millisecond)
	if err := s.WriteTrace(&bytes.Buffer{}); err == nil {
		t.Fatal("WriteTrace succeeded on an untraced server")
	}
}

// TestServerFlightDumpOnAlarm asserts a flight-armed server dumps its
// ring when a non-benign verdict broadcasts, and serves merged snapshots
// on demand.
func TestServerFlightDumpOnAlarm(t *testing.T) {
	var (
		mu      sync.Mutex
		reasons []string
		events  [][]obs.Event
	)
	s, err := Serve("127.0.0.1:0", ServerConfig{
		Validator:  core.ValidatorConfig{K: 2, Timeout: 500 * time.Millisecond},
		Members:    []store.NodeID{1, 2, 3},
		Switches:   []topo.DPID{1},
		Tick:       time.Millisecond,
		FlightRing: 64,
		OnFlightDump: func(reason string, evs []obs.Event) {
			mu.Lock()
			reasons = append(reasons, reason)
			events = append(events, evs)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_ = c.Send(resp(1, "τd", core.CacheUpdate, false, "down"))
	_ = c.Send(resp(2, "τd", core.SecondaryExec, true, "up"))
	_ = c.Send(resp(3, "τd", core.SecondaryExec, true, "up"))
	waitFor(t, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(reasons) > 0
	})
	mu.Lock()
	defer mu.Unlock()
	if !strings.HasPrefix(reasons[0], "verdict:") {
		t.Fatalf("dump reason = %q, want verdict predicate", reasons[0])
	}
	if len(events[0]) == 0 {
		t.Fatal("dump carried no events")
	}
	if snap := s.FlightSnapshot(); len(snap) == 0 {
		t.Fatal("FlightSnapshot empty on an armed server")
	}
}
