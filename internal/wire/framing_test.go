package wire

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
)

func TestLineReaderBasicLines(t *testing.T) {
	lr := NewLineReader(strings.NewReader("one\ntwo\r\n\nthree"), 64)
	want := []string{"one", "two", "", "three"}
	for _, w := range want {
		line, err := lr.ReadLine()
		if err != nil {
			t.Fatalf("ReadLine(%q): %v", w, err)
		}
		if string(line) != w {
			t.Fatalf("line = %q, want %q", line, w)
		}
	}
	if _, err := lr.ReadLine(); !errors.Is(err, io.EOF) {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func TestLineReaderOversizedLineIsSkippedNotFatal(t *testing.T) {
	big := strings.Repeat("x", 300)
	lr := NewLineReader(strings.NewReader("ok\n"+big+"\nafter\n"), 100)
	if line, err := lr.ReadLine(); err != nil || string(line) != "ok" {
		t.Fatalf("first = %q, %v", line, err)
	}
	if _, err := lr.ReadLine(); !errors.Is(err, ErrLineTooLong) {
		t.Fatalf("expected ErrLineTooLong, got %v", err)
	}
	// The stream continues at the next line: the oversized one was
	// consumed, not left to poison subsequent reads.
	if line, err := lr.ReadLine(); err != nil || string(line) != "after" {
		t.Fatalf("after = %q, %v", line, err)
	}
}

func TestLineReaderOversizedSpansManyBuffers(t *testing.T) {
	// Line far larger than the internal buffer: the discard loop must
	// walk multiple buffer fills.
	big := strings.Repeat("y", 1<<18)
	lr := NewLineReader(strings.NewReader(big+"\nnext\n"), 1024)
	if _, err := lr.ReadLine(); !errors.Is(err, ErrLineTooLong) {
		t.Fatalf("expected ErrLineTooLong, got %v", err)
	}
	if line, err := lr.ReadLine(); err != nil || string(line) != "next" {
		t.Fatalf("next = %q, %v", line, err)
	}
}

func TestLineReaderFinalUnterminatedLine(t *testing.T) {
	lr := NewLineReader(strings.NewReader("partial"), 64)
	line, err := lr.ReadLine()
	if err != nil || string(line) != "partial" {
		t.Fatalf("line = %q, %v", line, err)
	}
	if _, err := lr.ReadLine(); !errors.Is(err, io.EOF) {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func TestLineReaderExactCap(t *testing.T) {
	payload := strings.Repeat("z", 100)
	lr := NewLineReader(strings.NewReader(payload+"\n"), 100)
	line, err := lr.ReadLine()
	if err != nil || string(line) != payload {
		t.Fatalf("exact-cap line rejected: %q, %v", line, err)
	}
	lr = NewLineReader(strings.NewReader(payload+"q\n"), 100)
	if _, err := lr.ReadLine(); !errors.Is(err, ErrLineTooLong) {
		t.Fatalf("cap+1 accepted: %v", err)
	}
}

type errReader struct {
	data []byte
	err  error
}

func (r *errReader) Read(p []byte) (int, error) {
	if len(r.data) > 0 {
		n := copy(p, r.data)
		r.data = r.data[n:]
		return n, nil
	}
	return 0, r.err
}

func TestLineReaderSurfacesReadErrors(t *testing.T) {
	boom := errors.New("boom")
	lr := NewLineReader(&errReader{data: []byte("good\nbad"), err: boom}, 64)
	if line, err := lr.ReadLine(); err != nil || string(line) != "good" {
		t.Fatalf("good = %q, %v", line, err)
	}
	// The truncated tail is dropped (it cannot be a complete line) and
	// the underlying error surfaces — never a silent end of stream.
	if _, err := lr.ReadLine(); !errors.Is(err, boom) {
		t.Fatalf("expected boom, got %v", err)
	}
}

func TestLineReaderLargeLineWithinCap(t *testing.T) {
	// Larger than the 64KiB internal buffer but within the cap: must be
	// reassembled across buffer fills.
	payload := bytes.Repeat([]byte("a"), 200*1024)
	lr := NewLineReader(bytes.NewReader(append(payload, '\n')), DefaultMaxLineBytes)
	line, err := lr.ReadLine()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(line, payload) {
		t.Fatalf("reassembled line corrupted: len=%d want %d", len(line), len(payload))
	}
}
