package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"net"
	"reflect"
	"sync"
	"testing"
	"time"

	"github.com/jurysdn/jury/internal/core"
	"github.com/jurysdn/jury/internal/obs"
	"github.com/jurysdn/jury/internal/openflow"
	"github.com/jurysdn/jury/internal/store"
	"github.com/jurysdn/jury/internal/topo"
	"github.com/jurysdn/jury/internal/trigger"
	"github.com/jurysdn/jury/internal/wire/wiretest"
)

func TestParseCodec(t *testing.T) {
	cases := []struct {
		in   string
		want Codec
		ok   bool
	}{
		{"", CodecAuto, true},
		{"auto", CodecAuto, true},
		{"json", CodecJSON, true},
		{"binary", CodecBinary, true},
		{"protobuf", 0, false},
	}
	for _, tc := range cases {
		got, err := ParseCodec(tc.in)
		if tc.ok != (err == nil) || (tc.ok && got != tc.want) {
			t.Fatalf("ParseCodec(%q) = %v, %v; want %v, ok=%v", tc.in, got, err, tc.want, tc.ok)
		}
	}
	for _, c := range []Codec{CodecAuto, CodecJSON, CodecBinary} {
		if c.String() == "" {
			t.Fatalf("Codec(%d).String() empty", c)
		}
	}
}

// fullResponse exercises every Response field, including the ones the
// test helpers leave zero (DPID, MsgBody, Prev, negative At magnitudes).
func fullResponse(ctrl store.NodeID) core.Response {
	return core.Response{
		Controller:   ctrl,
		Trigger:      "τ-bin",
		Kind:         core.SecondaryExec,
		Tainted:      true,
		Primary:      1,
		Cache:        store.LinksDB,
		Op:           store.OpUpdate,
		Key:          "sw7/port3",
		Value:        "link-down",
		DPID:         topo.DPID(0xdeadbeefcafe),
		MsgType:      openflow.MsgType(14),
		MsgBody:      "flow_mod{out:3}",
		WireLen:      96,
		StateDigest:  0x8899aabbccddeeff,
		StateApplied: 42,
		Prev:         "link-up",
		PrevOK:       true,
		At:           137 * time.Millisecond,
	}
}

func TestEnvelopeBinaryRoundTrip(t *testing.T) {
	r1 := fullResponse(2)
	r2 := fullResponse(3)
	res := core.Result{
		Trigger:       "τ-res",
		Kind:          trigger.Kind(1),
		Verdict:       core.VerdictFault,
		Fault:         core.FaultValue,
		Offender:      1,
		Reason:        "primary disagrees with quorum",
		Responses:     3,
		DetectionTime: 250 * time.Millisecond,
		DecidedAt:     17 * time.Second,
		TimedOut:      true,
		Evidence:      []core.Response{r1, r2},
	}
	cases := []Envelope{
		{Type: TypeResponse, Response: &r1, Trace: &TraceContext{Origin: "jurylive", BaseNS: 123456789}},
		{Type: TypeResult, Result: &res},
		{Type: TypeResult, Result: &core.Result{Trigger: "τ-plain", Verdict: core.VerdictValid}},
		{Type: TypeStats, Stats: &Stats{Decided: 10, Valid: 8, Faults: 1, Timeouts: 1, Pending: 3}},
		{Type: TypePing},
		{Type: TypePong},
		// All optional bodies on one envelope: the flag bitmap carries them
		// in encode order regardless of the envelope type.
		{Type: TypeResponse, Response: &r1, Result: &res,
			Stats: &Stats{Decided: 1}, Trace: &TraceContext{Origin: "x", BaseNS: -5}},
	}
	var dec BinDecoder
	for i, want := range cases {
		frame := AppendEnvelope(nil, &want)
		n, pn := binary.Uvarint(frame)
		if pn <= 0 || int(n) != len(frame)-pn {
			t.Fatalf("case %d: bad length prefix (n=%d pn=%d len=%d)", i, n, pn, len(frame))
		}
		got, err := dec.Decode(frame[pn:])
		if err != nil {
			t.Fatalf("case %d: decode: %v", i, err)
		}
		if !reflect.DeepEqual(got, &want) {
			t.Fatalf("case %d: round trip mismatch:\n got %+v\nwant %+v", i, got, want)
		}
	}
}

func TestBinDecoderRejectsMalformed(t *testing.T) {
	r := fullResponse(1)
	valid := AppendEnvelope(nil, &Envelope{Type: TypeResponse, Response: &r})
	_, pn := binary.Uvarint(valid)
	payload := valid[pn:]

	resEnv := AppendEnvelope(nil, &Envelope{Type: TypeResult,
		Result: &core.Result{Trigger: "τe", Verdict: core.VerdictValid}})
	_, rpn := binary.Uvarint(resEnv)
	resPayload := resEnv[rpn:]
	// The evidence count is the result body's final varint; replace the
	// encoded zero with a count claiming ~268M responses.
	hostile := append(append([]byte{}, resPayload[:len(resPayload)-1]...), 0xFF, 0xFF, 0xFF, 0x7F)

	cases := map[string][]byte{
		"empty payload":          {},
		"unknown type":           {9, 0},
		"truncated":              payload[:len(payload)-1],
		"trailing junk":          append(append([]byte{}, payload...), 0x00),
		"hostile evidence count": hostile,
	}
	var dec BinDecoder
	for name, buf := range cases {
		if _, err := dec.Decode(buf); !errors.Is(err, ErrMalformedFrame) {
			t.Fatalf("%s: err = %v, want ErrMalformedFrame", name, err)
		}
	}
	// The decoder stays usable after rejecting garbage.
	if _, err := dec.Decode(payload); err != nil {
		t.Fatalf("decode after rejects: %v", err)
	}
}

var codecSink *Envelope // defeats dead-code elimination in the alloc test

// TestBinCodecZeroAllocSteadyState pins the hot path's contract: once the
// encode buffer and decoder scratch are warm, encoding and decoding an
// envelope (evidence included) allocates nothing.
func TestBinCodecZeroAllocSteadyState(t *testing.T) {
	r := fullResponse(2)
	env := Envelope{
		Type:   TypeResult,
		Result: &core.Result{Trigger: "τz", Verdict: core.VerdictFault, Fault: core.FaultValue, Reason: "r", Evidence: []core.Response{r, r}},
		Trace:  &TraceContext{Origin: "bench", BaseNS: 7},
	}
	buf := make([]byte, 0, 1024)
	var dec BinDecoder
	allocs := testing.AllocsPerRun(200, func() {
		buf = AppendEnvelope(buf[:0], &env)
		n, pn := binary.Uvarint(buf)
		got, err := dec.Decode(buf[pn : pn+int(n)])
		if err != nil {
			t.Fatal(err)
		}
		codecSink = got
	})
	if allocs != 0 {
		t.Fatalf("allocs per encode+decode = %v, want 0", allocs)
	}
}

// blockingSleep parks the writer's redial loop until the client closes,
// so tests can hold the outgoing ring full without a live connection.
func blockingSleep(_ time.Duration, cancel <-chan struct{}) bool {
	<-cancel
	return false
}

// TestQueueShedBoundedMemory is the ring-buffer regression test: the old
// slice queue advanced its head with queue[1:] and appended, so a client
// stuck behind a dead link regrew the backing array without bound on
// every shed/append cycle. The ring allocates once at Dial and never
// again — shedding overwrites in place.
func TestQueueShedBoundedMemory(t *testing.T) {
	clientEnd, serverEnd := net.Pipe()
	var (
		dialMu sync.Mutex
		dials  int
	)
	const queueSize = 8
	c, err := DialConfig("unused", ClientConfig{
		QueueSize: queueSize,
		Sleep:     blockingSleep,
		Dial: func() (net.Conn, error) {
			dialMu.Lock()
			defer dialMu.Unlock()
			dials++
			if dials == 1 {
				return clientEnd, nil
			}
			return nil, errors.New("synthetic dial failure")
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_ = serverEnd.Close()
	waitFor(t, func() bool { return !c.Connected() })

	env := Envelope{Type: TypeStats}
	for i := 0; i < queueSize; i++ {
		if err := c.enqueue(env); err != nil {
			t.Fatal(err)
		}
	}
	if c.Dropped() != 0 {
		t.Fatalf("dropped = %d before the queue filled", c.Dropped())
	}
	sent := 0
	allocs := testing.AllocsPerRun(1000, func() {
		sent++
		_ = c.enqueue(env)
	})
	if allocs != 0 {
		t.Fatalf("allocs per shed enqueue = %v, want 0 (queue must not regrow)", allocs)
	}
	if got := c.Dropped(); got != int64(sent) {
		t.Fatalf("dropped = %d, want %d (every shed accounted)", got, sent)
	}
	c.mu.Lock()
	capacity, live := cap(c.ring.buf), c.ring.len()
	c.mu.Unlock()
	if capacity != queueSize {
		t.Fatalf("ring capacity = %d after %d sheds, want fixed %d", capacity, sent, queueSize)
	}
	if live != queueSize {
		t.Fatalf("ring length = %d, want %d", live, queueSize)
	}
}

// TestFlapStormBackoffGrows is the proven-connection regression test: a
// server that accepts and immediately closes (crash loop) used to reset
// the redial backoff on every dial success, hammering it at the base
// interval forever. Now the schedule only resets after a connection
// carries traffic, so an accept-then-close flap pays the grown backoff.
func TestFlapStormBackoffGrows(t *testing.T) {
	const seed = 7
	rs := &recordingSleep{}
	var (
		dialMu sync.Mutex
		dials  int
	)
	healthy := make(chan net.Conn, 1)
	parked := make(chan net.Conn, 1)
	c, err := DialConfig("unused", ClientConfig{
		ReconnectBase: 10 * time.Millisecond,
		ReconnectMax:  time.Second,
		Seed:          seed,
		Sleep:         rs.sleep,
		Dial: func() (net.Conn, error) {
			dialMu.Lock()
			dials++
			n := dials
			dialMu.Unlock()
			switch {
			case n <= 4: // accept-then-close flap: dial "succeeds", link is dead
				cl, sv := net.Pipe()
				_ = sv.Close()
				return cl, nil
			case n == 5: // the connection that will prove itself
				cl, sv := net.Pipe()
				healthy <- sv
				return cl, nil
			case n == 6:
				return nil, errors.New("synthetic dial failure")
			default: // park the client on a quiet healthy link
				cl, sv := net.Pipe()
				select {
				case parked <- sv:
				default:
				}
				return cl, nil
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Four flaps, each a dial "success": the recorded redial delays must
	// follow the growing backoff schedule, not restart from base.
	var sv net.Conn
	select {
	case sv = <-healthy:
	case <-time.After(5 * time.Second):
		t.Fatal("healthy connection never dialed")
	}
	// Prove the connection: any received line counts as traffic.
	if _, err := sv.Write([]byte("\n")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		c.mu.Lock()
		defer c.mu.Unlock()
		return c.proven
	})
	// Drop the proven link: this redial starts from a reset schedule.
	_ = sv.Close()
	waitFor(t, func() bool { return len(rs.snapshot()) >= 5 })

	delays := rs.snapshot()[:5]
	want := NewBackoff(10*time.Millisecond, time.Second, seed)
	for i := 0; i < 4; i++ {
		if w := want.Next(); delays[i] != w {
			t.Fatalf("flap delay %d = %v, want %v (schedule must keep growing across accept-then-close flaps)", i, delays[i], w)
		}
	}
	want.Reset()
	if w := want.Next(); delays[4] != w {
		t.Fatalf("post-proven delay = %v, want %v (reset schedule)", delays[4], w)
	}
	if delays[4] >= delays[3] {
		t.Fatalf("post-proven delay %v did not shrink below flap delay %v", delays[4], delays[3])
	}
}

// TestPongDebtCapped is the heartbeat regression test: owed pongs are a
// bool, not a counter. A burst of pings arriving while the writer is
// wedged is answered with exactly one pong — a pong proves liveness
// idempotently — and owed pongs never inflate Backlog().
func TestPongDebtCapped(t *testing.T) {
	clientEnd, serverEnd := net.Pipe()
	var (
		dialMu  sync.Mutex
		dials   int
		statsCh = make(chan struct{}, 1)
	)
	c, err := DialConfig("unused", ClientConfig{
		Sleep: blockingSleep,
		Dial: func() (net.Conn, error) {
			dialMu.Lock()
			defer dialMu.Unlock()
			dials++
			if dials == 1 {
				return clientEnd, nil
			}
			return nil, errors.New("synthetic dial failure")
		},
		OnStats: func(Stats) {
			select {
			case statsCh <- struct{}{}:
			default:
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Wedge the writer: a queued response blocks mid-write because the
	// peer isn't reading yet (net.Pipe is synchronous).
	if err := c.Send(resp(1, "τpong", core.CacheUpdate, false, "up")); err != nil {
		t.Fatal(err)
	}
	// A burst of pings arrives while the writer is blocked; a trailing
	// stats reply proves (in-order) that all three were processed.
	for i := 0; i < 3; i++ {
		if _, err := serverEnd.Write([]byte("{\"type\":\"ping\"}\n")); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := serverEnd.Write([]byte("{\"type\":\"stats\",\"stats\":{\"decided\":1}}\n")); err != nil {
		t.Fatal(err)
	}
	select {
	case <-statsCh:
	case <-time.After(5 * time.Second):
		t.Fatal("stats reply never processed")
	}
	if got := c.Backlog(); got != 1 {
		t.Fatalf("backlog = %d, want 1 (owed pongs are liveness, not payload)", got)
	}

	// Release the writer and read what it sends: the wedged response,
	// exactly one pong, then silence.
	br := bufio.NewReader(serverEnd)
	first, err := br.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if want := "\"type\":\"response\""; !containsStr(first, want) {
		t.Fatalf("first line = %q, want a response", first)
	}
	second, err := br.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if want := "\"type\":\"pong\""; !containsStr(second, want) {
		t.Fatalf("second line = %q, want the single owed pong", second)
	}
	_ = serverEnd.SetReadDeadline(time.Now().Add(200 * time.Millisecond))
	if line, err := br.ReadString('\n'); err == nil {
		t.Fatalf("unexpected third line %q: ping burst must owe exactly one pong", line)
	} else if ne, ok := err.(net.Error); !ok || !ne.Timeout() {
		t.Fatalf("read after pong = %v, want timeout (idle writer)", err)
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// exerciseCodecPair runs the canonical validate + fault + stats flow over
// one server/client codec pairing and checks results (evidence strings
// included, which cross the binary borrow window) arrive intact.
func exerciseCodecPair(t *testing.T, serverCodec, clientCodec Codec) {
	t.Helper()
	reg := obs.NewRegistry()
	cfg := serverConfig(reg)
	cfg.Codec = serverCodec
	s, err := Serve("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	var (
		mu      sync.Mutex
		results []core.Result
		stats   []Stats
	)
	c, err := DialConfig(s.Addr(), ClientConfig{
		Codec: clientCodec,
		OnResult: func(r core.Result) {
			mu.Lock()
			results = append(results, r)
			mu.Unlock()
		},
		OnStats: func(st Stats) {
			mu.Lock()
			stats = append(stats, st)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// A clean trigger, then a value fault (whose result carries evidence).
	_ = c.Send(resp(1, "τok", core.CacheUpdate, false, "up"))
	_ = c.Send(resp(2, "τok", core.SecondaryExec, true, "up"))
	_ = c.Send(resp(3, "τok", core.SecondaryExec, true, "up"))
	_ = c.Send(resp(1, "τbad", core.CacheUpdate, false, "down"))
	_ = c.Send(resp(2, "τbad", core.SecondaryExec, true, "up"))
	_ = c.Send(resp(3, "τbad", core.SecondaryExec, true, "up"))
	waitFor(t, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(results) == 2
	})
	if err := c.RequestStats(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(stats) == 1
	})

	mu.Lock()
	defer mu.Unlock()
	var fault *core.Result
	for i := range results {
		if results[i].Verdict == core.VerdictFault {
			fault = &results[i]
		}
	}
	if fault == nil {
		t.Fatalf("no fault result in %+v", results)
	}
	if fault.Trigger != "τbad" || fault.Fault != core.FaultValue || fault.Offender != 1 {
		t.Fatalf("fault = %+v", fault)
	}
	if len(fault.Evidence) == 0 {
		t.Fatalf("fault carried no evidence")
	}
	for _, ev := range fault.Evidence {
		if ev.Trigger != "τbad" || ev.Key != "k" {
			t.Fatalf("evidence corrupted across the wire: %+v", ev)
		}
	}
	if stats[0].Decided != 2 || stats[0].Faults != 1 {
		t.Fatalf("stats = %+v, want decided=2 faults=1", stats[0])
	}
}

// TestCodecCompatMatrix proves the handshake's interoperability promises:
// a binary client against a default (auto) server, an old JSON client
// against a binary-stance server, and a binary client refused loudly by a
// strict-JSON server.
func TestCodecCompatMatrix(t *testing.T) {
	t.Run("binary-client/auto-server", func(t *testing.T) {
		exerciseCodecPair(t, CodecAuto, CodecBinary)
	})
	t.Run("json-client/binary-server", func(t *testing.T) {
		exerciseCodecPair(t, CodecBinary, CodecJSON)
	})
	t.Run("binary-client/binary-server", func(t *testing.T) {
		exerciseCodecPair(t, CodecBinary, CodecBinary)
	})
	t.Run("binary-client/strict-json-server", func(t *testing.T) {
		reg := obs.NewRegistry()
		cfg := serverConfig(reg)
		cfg.Codec = CodecJSON
		s, err := Serve("127.0.0.1:0", cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		c, err := DialConfig(s.Addr(), ClientConfig{Codec: CodecBinary, Sleep: fastSleep})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		rejected := reg.Counter("jury_wire_line_errors_total", "", obs.L("reason", "codec"))
		waitFor(t, func() bool { return rejected.Value() >= 1 })
		if got := reg.Counter("jury_wire_responses_total", "").Value(); got != 0 {
			t.Fatalf("responses = %d on a refused codec", got)
		}
	})
}

// TestServerSkipsBadBinaryFrames sends an oversized frame and a garbage
// frame ahead of a valid one on a single binary connection: both are
// counted per reason and neither kills the stream.
func TestServerSkipsBadBinaryFrames(t *testing.T) {
	reg := obs.NewRegistry()
	cfg := serverConfig(reg)
	cfg.MaxLineBytes = 256
	s, err := Serve("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	var stream []byte
	stream = append(stream, BinMagic)
	// Oversized: a frame declaring 1024 payload bytes against the 256 cap.
	stream = binary.AppendUvarint(stream, 1024)
	stream = append(stream, make([]byte, 1024)...)
	// Malformed: a well-framed 5-byte payload that is not an envelope.
	stream = append(stream, 5, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF)
	// Valid: one real response.
	r := resp(1, "τframe", core.CacheUpdate, false, "up")
	stream = AppendEnvelope(stream, &Envelope{Type: TypeResponse, Response: &r})
	if _, err := conn.Write(stream); err != nil {
		t.Fatal(err)
	}

	oversized := reg.Counter("jury_wire_line_errors_total", "", obs.L("reason", "oversize"))
	malformed := reg.Counter("jury_wire_line_errors_total", "", obs.L("reason", "malformed"))
	responses := reg.Counter("jury_wire_responses_total", "")
	waitFor(t, func() bool {
		return oversized.Value() == 1 && malformed.Value() == 1 && responses.Value() == 1
	})
	if open := reg.Gauge("jury_wire_conns_open", "").Value(); open != 1 {
		t.Fatalf("conns open = %v, want 1 (bad frames must not kill the stream)", open)
	}
}

// TestClientRetransmitsAfterMidFrameCut is the binary analog of the
// mid-line cut: the link dies partway through a frame batch, the server
// counts the torn read, and the retained batch is retransmitted on the
// next connection with nothing dropped.
func TestClientRetransmitsAfterMidFrameCut(t *testing.T) {
	reg := obs.NewRegistry()
	s, err := Serve("127.0.0.1:0", serverConfig(reg))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	addr := s.Addr()

	var (
		dialMu sync.Mutex
		dials  int
	)
	c, err := DialConfig(addr, ClientConfig{
		Codec: CodecBinary,
		Seed:  3,
		Sleep: fastSleep,
		Dial: func() (net.Conn, error) {
			inner, err := net.Dial("tcp", addr)
			if err != nil {
				return nil, err
			}
			dialMu.Lock()
			dials++
			first := dials == 1
			dialMu.Unlock()
			if first {
				fc := wiretest.Wrap(inner)
				fc.CutAfter(30) // handshake byte + a partial first frame
				return fc, nil
			}
			return inner, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	_ = c.Send(resp(1, "τcut", core.CacheUpdate, false, "up"))
	_ = c.Send(resp(2, "τcut", core.SecondaryExec, true, "up"))
	_ = c.Send(resp(3, "τcut", core.SecondaryExec, true, "up"))

	waitFor(t, func() bool { return s.Stats().Decided == 1 })
	if c.Dropped() != 0 {
		t.Fatalf("dropped = %d, want 0 (the in-flight batch must be retransmitted)", c.Dropped())
	}
	if c.Reconnects() != 1 {
		t.Fatalf("reconnects = %d, want 1", c.Reconnects())
	}
	// The torn frame surfaced as an unexpected-EOF read error, not a
	// silent close.
	readErrs := reg.Counter("jury_wire_line_errors_total", "", obs.L("reason", "read"))
	if readErrs.Value() != 1 {
		t.Fatalf("read errors = %d, want 1 (the cut frame)", readErrs.Value())
	}
}

// TestBinaryBatchCoalescing proves the write-coalescing contract: a
// backlog drains in batches of at most MaxBatch envelopes per socket
// write, and every envelope still arrives exactly once.
func TestBinaryBatchCoalescing(t *testing.T) {
	reg := obs.NewRegistry()
	s, err := Serve("127.0.0.1:0", serverConfig(reg))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	c, err := DialConfig(s.Addr(), ClientConfig{
		Codec:     CodecBinary,
		MaxBatch:  8,
		QueueSize: 4096,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const total = 300
	for i := 0; i < total; i++ {
		if err := c.Send(resp(1, trigID("τbatch", i), core.CacheUpdate, false, "up")); err != nil {
			t.Fatal(err)
		}
	}
	responses := reg.Counter("jury_wire_responses_total", "")
	waitFor(t, func() bool { return responses.Value() == total })
	if c.Dropped() != 0 {
		t.Fatalf("dropped = %d, want 0", c.Dropped())
	}
}
