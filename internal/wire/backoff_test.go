package wire

import (
	"testing"
	"time"
)

func TestBackoffDeterministicForSeed(t *testing.T) {
	a := NewBackoff(10*time.Millisecond, time.Second, 42)
	b := NewBackoff(10*time.Millisecond, time.Second, 42)
	for i := 0; i < 20; i++ {
		da, db := a.Next(), b.Next()
		if da != db {
			t.Fatalf("step %d: same seed diverged: %v vs %v", i, da, db)
		}
	}
}

func TestBackoffEnvelopeAndCap(t *testing.T) {
	base, max := 10*time.Millisecond, 160*time.Millisecond
	bo := NewBackoff(base, max, 7)
	env := base
	for i := 0; i < 12; i++ {
		d := bo.Next()
		if d < env/2 || d > env {
			t.Fatalf("step %d: delay %v outside [%v, %v]", i, d, env/2, env)
		}
		if env < max {
			env *= 2
			if env > max {
				env = max
			}
		}
	}
	// After many steps the envelope is pinned at Max.
	for i := 0; i < 5; i++ {
		if d := bo.Next(); d < max/2 || d > max {
			t.Fatalf("capped delay %v outside [%v, %v]", d, max/2, max)
		}
	}
}

func TestBackoffResetReturnsToBase(t *testing.T) {
	base := 8 * time.Millisecond
	bo := NewBackoff(base, time.Second, 3)
	for i := 0; i < 10; i++ {
		bo.Next()
	}
	bo.Reset()
	if d := bo.Next(); d < base/2 || d > base {
		t.Fatalf("post-reset delay %v outside [%v, %v]", d, base/2, base)
	}
}

func TestBackoffDegenerateInputs(t *testing.T) {
	bo := NewBackoff(0, 0, 1)
	if bo.Base <= 0 || bo.Max < bo.Base {
		t.Fatalf("defaults not applied: base=%v max=%v", bo.Base, bo.Max)
	}
	if d := bo.Next(); d <= 0 {
		t.Fatalf("degenerate schedule produced non-positive delay %v", d)
	}
}
