package wire

import (
	"fmt"
	"sync"
)

// Codec selects the wire encoding of one connection or one endpoint's
// stance toward it. The protocol self-describes per connection: a binary
// peer sends the single handshake byte BinMagic before its first frame,
// and a JSON peer's first byte is never BinMagic (JSON lines start with
// '{' or whitespace), so a server can mirror whichever codec each client
// speaks with no out-of-band configuration.
type Codec uint8

// Codec stances.
const (
	// CodecAuto is the zero-value compat default. On a server it means
	// "mirror each connection's first byte": a BinMagic handshake flips
	// the connection to binary frames, anything else keeps JSON lines,
	// and pushes sent before the first byte arrives use JSON. On a
	// client it is equivalent to CodecJSON.
	CodecAuto Codec = iota
	// CodecJSON is the newline-delimited JSON protocol (the original
	// codec, and what every pre-binary peer speaks). A server configured
	// CodecJSON is strict: it refuses the binary handshake (counted on
	// jury_wire_line_errors_total{reason="codec"}) instead of parsing
	// frames as garbled lines.
	CodecJSON
	// CodecBinary is the length-prefixed binary framing. A client sends
	// the handshake byte at connect and speaks frames both ways; a
	// server additionally speaks binary on pushes that race ahead of the
	// peer's first byte (JSON peers are still mirrored once they speak).
	CodecBinary
)

// BinMagic is the one-byte codec handshake a binary client writes before
// its first frame. It can never begin a JSON protocol line: encoding/json
// output starts with '{' (0x7B), so an old JSON-only peer is never
// mistaken for a binary one. Exported for protocol tooling (the
// cmd/benchwire raw-loopback harness); production peers never write it
// by hand — Client and Server speak the handshake automatically.
const BinMagic = 0xBF

// binHandshake is the handshake write, shared so every (re)connect does
// not allocate it.
var binHandshake = []byte{BinMagic}

// ParseCodec parses a -codec flag value: "auto", "json" or "binary".
func ParseCodec(s string) (Codec, error) {
	switch s {
	case "auto", "":
		return CodecAuto, nil
	case "json":
		return CodecJSON, nil
	case "binary":
		return CodecBinary, nil
	default:
		return CodecAuto, fmt.Errorf("wire: unknown codec %q (want auto, json or binary)", s)
	}
}

// String names the codec.
func (c Codec) String() string {
	switch c {
	case CodecJSON:
		return "json"
	case CodecBinary:
		return "binary"
	default:
		return "auto"
	}
}

// framePool recycles binary encode buffers across batches and
// connections, so the steady-state encode path allocates nothing: the
// client's writer takes one per batch and the pool keeps capacity warm
// across reconnects and across clients in one process.
var framePool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 4096)
		return &b
	},
}

// getFrameBuf leases an empty encode buffer from the pool.
func getFrameBuf() *[]byte {
	return framePool.Get().(*[]byte)
}

// putFrameBuf returns a buffer to the pool. Buffers that grew past a
// megabyte are dropped instead, so one oversized batch cannot pin its
// high-water mark forever.
func putFrameBuf(b *[]byte) {
	if cap(*b) > 1<<20 {
		return
	}
	*b = (*b)[:0]
	framePool.Put(b)
}
