package wire

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"github.com/jurysdn/jury/internal/core"
	"github.com/jurysdn/jury/internal/obs"
	"github.com/jurysdn/jury/internal/store"
	"github.com/jurysdn/jury/internal/topo"
	"github.com/jurysdn/jury/internal/wire/wiretest"
)

// fastSleep is an injected sleeper that honors cancellation but returns
// immediately, collapsing backoff schedules to zero wall time.
func fastSleep(_ time.Duration, cancel <-chan struct{}) bool {
	select {
	case <-cancel:
		return false
	default:
		return true
	}
}

// recordingSleep collects every requested delay (for schedule assertions)
// and returns immediately.
type recordingSleep struct {
	mu     sync.Mutex
	delays []time.Duration
}

func (rs *recordingSleep) sleep(d time.Duration, cancel <-chan struct{}) bool {
	rs.mu.Lock()
	rs.delays = append(rs.delays, d)
	rs.mu.Unlock()
	select {
	case <-cancel:
		return false
	default:
		return true
	}
}

func (rs *recordingSleep) snapshot() []time.Duration {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return append([]time.Duration(nil), rs.delays...)
}

func serverConfig(reg *obs.Registry) ServerConfig {
	return ServerConfig{
		Validator: core.ValidatorConfig{K: 2, Timeout: 500 * time.Millisecond},
		Members:   []store.NodeID{1, 2, 3},
		Switches:  []topo.DPID{1},
		Tick:      time.Millisecond,
		Metrics:   reg,
	}
}

// TestClientSurvivesServerRestart is the headline resilience scenario: a
// juryd restart mid-stream loses at most the bounded-queue backlog, the
// loss is visible on Dropped(), and the retained backlog is delivered to
// the restarted server.
func TestClientSurvivesServerRestart(t *testing.T) {
	reg1 := obs.NewRegistry()
	s1, err := Serve("127.0.0.1:0", serverConfig(reg1))
	if err != nil {
		t.Fatal(err)
	}
	addr := s1.Addr()

	const queueSize = 8
	c, err := DialConfig(addr, ClientConfig{
		QueueSize: queueSize,
		Seed:      7,
		Sleep:     fastSleep,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Phase 1: a full complement validates over the live link.
	if err := c.Send(resp(1, "τr", core.CacheUpdate, false, "up")); err != nil {
		t.Fatal(err)
	}
	if err := c.Send(resp(2, "τr", core.SecondaryExec, true, "up")); err != nil {
		t.Fatal(err)
	}
	if err := c.Send(resp(3, "τr", core.SecondaryExec, true, "up")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return s1.Stats().Decided == 1 })

	// Phase 2: the server dies mid-run.
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return !c.Connected() })

	// Sends during the outage never block and never fail; the bounded
	// queue sheds its oldest entries once full.
	const during = 20
	for i := 0; i < during; i++ {
		if err := c.Send(resp(1, trigID("τout", i), core.CacheUpdate, false, "up")); err != nil {
			t.Fatalf("send during outage: %v", err)
		}
	}
	wantDropped := int64(during - queueSize)
	waitFor(t, func() bool { return c.Dropped() == wantDropped })
	if got := c.Backlog(); got != queueSize {
		t.Fatalf("backlog = %d, want %d", got, queueSize)
	}

	// Phase 3: the server restarts on the same address; the client
	// reconnects transparently and delivers exactly the retained backlog.
	reg2 := obs.NewRegistry()
	s2 := restartServer(t, addr, reg2)
	defer s2.Close()
	delivered := reg2.Counter("jury_wire_responses_total", "")

	waitFor(t, func() bool { return c.Connected() })
	waitFor(t, func() bool { return delivered.Value() == queueSize })
	if c.Reconnects() < 1 {
		t.Fatalf("reconnects = %d, want >= 1", c.Reconnects())
	}
	if c.Dropped() != wantDropped {
		t.Fatalf("dropped moved after reconnect: %d, want %d", c.Dropped(), wantDropped)
	}
	// Total accounting: everything sent during the outage is either
	// delivered or counted dropped — loss is never silent.
	if delivered.Value()+c.Dropped() != during {
		t.Fatalf("delivered %d + dropped %d != sent %d",
			delivered.Value(), c.Dropped(), during)
	}
}

// restartServer rebinds addr, retrying briefly in case the old listener's
// port is still being released by the kernel.
func restartServer(t *testing.T, addr string, reg *obs.Registry) *Server {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		s, err := Serve(addr, serverConfig(reg))
		if err == nil {
			return s
		}
		if time.Now().After(deadline) {
			t.Fatalf("rebind %s: %v", addr, err)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func trigID(prefix string, i int) string { return fmt.Sprintf("%s-%d", prefix, i) }

// TestServerRejectsOversizedLineWithoutKillingConn sends a line over the
// configured cap followed by a valid complement on the same connection:
// the oversized line is counted and skipped, the connection survives, and
// validation proceeds.
func TestServerRejectsOversizedLineWithoutKillingConn(t *testing.T) {
	reg := obs.NewRegistry()
	cfg := serverConfig(reg)
	cfg.MaxLineBytes = 512
	s, err := Serve("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	big := make([]byte, 8*1024)
	for i := range big {
		big[i] = 'a'
	}
	big = append(big, '\n')
	if _, err := conn.Write(big); err != nil {
		t.Fatal(err)
	}
	oversized := reg.Counter("jury_wire_line_errors_total", "", obs.L("reason", "oversize"))
	waitFor(t, func() bool { return oversized.Value() == 1 })

	// Same connection, now well-formed traffic: it must still work.
	for i, r := range []core.Response{
		resp(1, "τo", core.CacheUpdate, false, "up"),
		resp(2, "τo", core.SecondaryExec, true, "up"),
		resp(3, "τo", core.SecondaryExec, true, "up"),
	} {
		line, err := json.Marshal(Envelope{Type: TypeResponse, Response: &r})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := conn.Write(append(line, '\n')); err != nil {
			t.Fatalf("write %d after oversize: %v", i, err)
		}
	}
	waitFor(t, func() bool { return s.Stats().Decided == 1 })
	if open := reg.Gauge("jury_wire_conns_open", "").Value(); open != 1 {
		t.Fatalf("conns open = %v, want 1 (conn must survive the oversize)", open)
	}
}

// TestServerCloseUnderAcceptStorm closes the server while clients dial in
// a tight loop: Close must return promptly, and no connection registered
// concurrently with the close may leak past it.
func TestServerCloseUnderAcceptStorm(t *testing.T) {
	reg := obs.NewRegistry()
	s, err := Serve("127.0.0.1:0", serverConfig(reg))
	if err != nil {
		t.Fatal(err)
	}
	addr := s.Addr()

	stop := make(chan struct{})
	var dialers sync.WaitGroup
	for i := 0; i < 4; i++ {
		dialers.Add(1)
		go func() {
			defer dialers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				conn, err := net.Dial("tcp", addr)
				if err != nil {
					continue // listener gone: keep storming until told to stop
				}
				_, _ = conn.Write([]byte("{\"type\":\"stats\"}\n"))
				_ = conn.Close()
			}
		}()
	}

	// Give the storm a moment to get conns in flight.
	time.Sleep(20 * time.Millisecond)

	closed := make(chan error, 1)
	go func() { closed <- s.Close() }()
	select {
	case err := <-closed:
		if err != nil {
			t.Fatalf("close: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Server.Close did not return under accept storm")
	}
	close(stop)
	dialers.Wait()

	s.mu.Lock()
	leaked := len(s.conns)
	s.mu.Unlock()
	if leaked != 0 {
		t.Fatalf("%d connections leaked past Close", leaked)
	}
	if open := reg.Gauge("jury_wire_conns_open", "").Value(); open != 0 {
		t.Fatalf("conns open after Close = %v", open)
	}
}

// TestClientRetransmitsAfterMidLineCut arms a fault that cuts the
// connection partway through the first envelope's bytes. The server sees
// a truncated fragment (counted malformed, never silent); the client
// retains the in-flight envelope, reconnects, and retransmits it, so the
// full complement still validates with zero envelopes lost.
func TestClientRetransmitsAfterMidLineCut(t *testing.T) {
	reg := obs.NewRegistry()
	s, err := Serve("127.0.0.1:0", serverConfig(reg))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	addr := s.Addr()

	var (
		dialMu sync.Mutex
		dials  int
	)
	c, err := DialConfig(addr, ClientConfig{
		Seed:  3,
		Sleep: fastSleep,
		Dial: func() (net.Conn, error) {
			inner, err := net.Dial("tcp", addr)
			if err != nil {
				return nil, err
			}
			dialMu.Lock()
			dials++
			first := dials == 1
			dialMu.Unlock()
			if first {
				fc := wiretest.Wrap(inner)
				fc.CutAfter(40) // mid-line: the first envelope is ~200 bytes
				return fc, nil
			}
			return inner, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	_ = c.Send(resp(1, "τc", core.CacheUpdate, false, "up"))
	_ = c.Send(resp(2, "τc", core.SecondaryExec, true, "up"))
	_ = c.Send(resp(3, "τc", core.SecondaryExec, true, "up"))

	waitFor(t, func() bool { return s.Stats().Decided == 1 })
	if c.Dropped() != 0 {
		t.Fatalf("dropped = %d, want 0 (in-flight envelope must be retransmitted)", c.Dropped())
	}
	if c.Reconnects() != 1 {
		t.Fatalf("reconnects = %d, want 1", c.Reconnects())
	}
	// The 40-byte fragment arrived without its newline and was counted as
	// a malformed line when the cut closed the connection.
	malformed := reg.Counter("jury_wire_line_errors_total", "", obs.L("reason", "malformed"))
	if malformed.Value() != 1 {
		t.Fatalf("malformed = %d, want 1 (the cut fragment)", malformed.Value())
	}
}

// TestConcurrentSendsUnderRace hammers one client from many goroutines —
// Send, RequestStats, and the heartbeat path all share the single writer —
// and verifies every envelope arrives exactly once. Run with -race this
// is the encoder-sharing regression test.
func TestConcurrentSendsUnderRace(t *testing.T) {
	reg := obs.NewRegistry()
	s, err := Serve("127.0.0.1:0", serverConfig(reg))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	var (
		statsMu sync.Mutex
		statsN  int
	)
	c, err := DialConfig(s.Addr(), ClientConfig{
		QueueSize: 4096, // roomy: this test asserts zero shedding
		OnStats: func(Stats) {
			statsMu.Lock()
			statsN++
			statsMu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const (
		goroutines = 8
		perG       = 50
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				r := resp(1, trigID(fmt.Sprintf("τg%d", g), i), core.CacheUpdate, false, "up")
				if err := c.Send(r); err != nil {
					t.Errorf("send: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			if err := c.RequestStats(); err != nil {
				t.Errorf("stats: %v", err)
				return
			}
		}
	}()
	wg.Wait()

	delivered := reg.Counter("jury_wire_responses_total", "")
	waitFor(t, func() bool { return delivered.Value() == goroutines*perG })
	waitFor(t, func() bool {
		statsMu.Lock()
		defer statsMu.Unlock()
		return statsN == 20
	})
	if c.Dropped() != 0 {
		t.Fatalf("dropped = %d, want 0", c.Dropped())
	}
}

// TestHeartbeatReapsHalfOpenPeer drives the heartbeat sweep with an
// injected clock: a raw peer that never answers pings is reaped at the
// idle horizon, while a wire.Client (which answers pings) survives the
// same horizon.
func TestHeartbeatReapsHalfOpenPeer(t *testing.T) {
	var (
		clockMu sync.Mutex
		fake    = time.Unix(9000, 0)
	)
	clock := func() time.Time {
		clockMu.Lock()
		defer clockMu.Unlock()
		return fake
	}
	advance := func(d time.Duration) {
		clockMu.Lock()
		fake = fake.Add(d)
		clockMu.Unlock()
	}

	reg := obs.NewRegistry()
	cfg := serverConfig(reg)
	cfg.Clock = clock
	cfg.HeartbeatEvery = 15 * time.Second
	cfg.IdleTimeout = 60 * time.Second
	s, err := Serve("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	open := reg.Gauge("jury_wire_conns_open", "")
	pings := reg.Counter("jury_wire_pings_sent_total", "")
	pongs := reg.Counter("jury_wire_pongs_received_total", "")
	reaped := reg.Counter("jury_wire_conns_reaped_idle_total", "")

	// A half-open peer: accepts pings into its socket buffer, never
	// replies, never reads.
	raw, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	// A well-behaved client that answers pings.
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	waitFor(t, func() bool { return open.Value() == 2 })

	// Past the heartbeat horizon: both idle conns get pinged; only the
	// wire client pongs back.
	advance(16 * time.Second)
	waitFor(t, func() bool { return pings.Value() >= 2 })
	waitFor(t, func() bool { return pongs.Value() >= 1 })

	// Past the idle horizon for the silent peer only (the client's pong
	// refreshed its liveness).
	advance(45 * time.Second)
	waitFor(t, func() bool { return reaped.Value() == 1 })
	waitFor(t, func() bool { return open.Value() == 1 })
	if !c.Connected() {
		t.Fatal("well-behaved client was reaped")
	}
	// The reaped peer's socket is actually closed.
	_ = raw.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 256)
	for {
		if _, err := raw.Read(buf); err != nil {
			break // EOF (or reset): the server really hung up
		}
	}
}

// TestAcceptBackoffSchedule scripts a burst of Accept failures through a
// fault listener and pins the resulting backoff delays to the seeded
// schedule — no hot spin, reset on the next success.
func TestAcceptBackoffSchedule(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fl := wiretest.WrapListener(ln)
	const failures = 5
	fl.FailAccepts(failures, errors.New("synthetic accept failure"))

	rs := &recordingSleep{}
	reg := obs.NewRegistry()
	cfg := serverConfig(reg)
	cfg.Sleep = rs.sleep
	s, err := ServeListener(fl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	acceptErrs := reg.Counter("jury_wire_accept_errors_total", "")
	waitFor(t, func() bool { return acceptErrs.Value() == failures })
	waitFor(t, func() bool { return len(rs.snapshot()) >= failures })

	// The schedule is exactly the seeded backoff's: deterministic, capped,
	// never zero (the hot-spin bug).
	want := NewBackoff(acceptBackoffBase, acceptBackoffMax, 1)
	got := rs.snapshot()[:failures]
	for i, d := range got {
		if w := want.Next(); d != w {
			t.Fatalf("delay %d = %v, want %v", i, d, w)
		}
		if d <= 0 {
			t.Fatalf("delay %d is %v: accept loop would hot-spin", i, d)
		}
	}

	// After the scripted failures the listener recovers and real clients
	// connect (the backoff reset on success).
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	waitFor(t, func() bool { return reg.Gauge("jury_wire_conns_open", "").Value() == 1 })
}

// TestClientRedialScheduleDeterministic pins the client's redial delays
// to the same-seed backoff schedule.
func TestClientRedialScheduleDeterministic(t *testing.T) {
	clientEnd, serverEnd := net.Pipe()
	var (
		dialMu sync.Mutex
		dials  int
	)
	rs := &recordingSleep{}
	const seed = 99
	c, err := DialConfig("unused", ClientConfig{
		ReconnectBase: 10 * time.Millisecond,
		ReconnectMax:  time.Second,
		Seed:          seed,
		Sleep:         rs.sleep,
		Dial: func() (net.Conn, error) {
			dialMu.Lock()
			defer dialMu.Unlock()
			dials++
			if dials == 1 {
				return clientEnd, nil
			}
			return nil, errors.New("synthetic dial failure")
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Kill the link: every redial now fails, each attempt backed off.
	_ = serverEnd.Close()
	const samples = 6
	waitFor(t, func() bool { return len(rs.snapshot()) >= samples })
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	want := NewBackoff(10*time.Millisecond, time.Second, seed)
	for i, d := range rs.snapshot()[:samples] {
		if w := want.Next(); d != w {
			t.Fatalf("redial delay %d = %v, want %v", i, d, w)
		}
	}
}

// TestClientCloseCountsUndeliveredBacklog: envelopes still queued when the
// client closes are accounted on Dropped(), not silently discarded.
func TestClientCloseCountsUndeliveredBacklog(t *testing.T) {
	s, err := Serve("127.0.0.1:0", serverConfig(obs.NewRegistry()))
	if err != nil {
		t.Fatal(err)
	}
	addr := s.Addr()
	c, err := DialConfig(addr, ClientConfig{Sleep: fastSleep})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return !c.Connected() })

	const backlog = 5
	for i := 0; i < backlog; i++ {
		if err := c.Send(resp(1, trigID("τz", i), core.CacheUpdate, false, "up")); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.Backlog(); got != backlog {
		t.Fatalf("backlog = %d, want %d", got, backlog)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if c.Dropped() != backlog {
		t.Fatalf("dropped = %d, want %d (undelivered backlog must be accounted)", c.Dropped(), backlog)
	}
	if err := c.Send(resp(1, "τpost", core.CacheUpdate, false, "up")); !errors.Is(err, ErrClientClosed) {
		t.Fatalf("send after close = %v, want ErrClientClosed", err)
	}
}

// TestServerToleratesInjectedGarbageMidStream interleaves garbage bytes
// into an otherwise healthy client link via the fault wrapper and checks
// the server keeps validating.
func TestServerToleratesInjectedGarbageMidStream(t *testing.T) {
	reg := obs.NewRegistry()
	s, err := Serve("127.0.0.1:0", serverConfig(reg))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	addr := s.Addr()

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	write := func(r core.Response) {
		t.Helper()
		line, err := json.Marshal(Envelope{Type: TypeResponse, Response: &r})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := conn.Write(append(line, '\n')); err != nil {
			t.Fatal(err)
		}
	}
	write(resp(1, "τm", core.CacheUpdate, false, "up"))
	if _, err := conn.Write([]byte("\x00\x01garbage{{{\n")); err != nil {
		t.Fatal(err)
	}
	write(resp(2, "τm", core.SecondaryExec, true, "up"))
	if _, err := conn.Write([]byte("not json either\n")); err != nil {
		t.Fatal(err)
	}
	write(resp(3, "τm", core.SecondaryExec, true, "up"))

	waitFor(t, func() bool { return s.Stats().Decided == 1 })
	malformed := reg.Counter("jury_wire_line_errors_total", "", obs.L("reason", "malformed"))
	if malformed.Value() != 2 {
		t.Fatalf("malformed = %d, want 2", malformed.Value())
	}
}
