package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"io"
	"strings"
	"time"
	"unsafe"

	"github.com/jurysdn/jury/internal/core"
	"github.com/jurysdn/jury/internal/openflow"
	"github.com/jurysdn/jury/internal/store"
	"github.com/jurysdn/jury/internal/topo"
	"github.com/jurysdn/jury/internal/trigger"
)

// Binary frame layout (codec v2; see the "Wire codec v2" section of
// DESIGN.md):
//
//	frame   := uvarint(len(payload)) payload
//	payload := type(1) flags(1) [response] [result] [stats] [trace]
//
// type is the envelope kind (binTypeResponse..binTypePong); flags is a
// presence bitmap (flagResponse..flagTrace) and bodies follow in flag
// order. Integers are varints (zig-zag for signed values, so the small
// magnitudes that dominate cost one byte), strings are length-prefixed
// byte runs, booleans one byte, and StateDigest is a fixed
// little-endian 8-byte word (digests are uniform 64-bit values, where a
// varint would average over nine bytes).

// ErrFrameTooLong reports a binary frame whose payload exceeded the
// reader's cap. Like ErrLineTooLong, the oversized frame is consumed so
// the stream stays usable: callers count the error and keep reading.
var ErrFrameTooLong = errors.New("wire: frame exceeds MaxLineBytes")

// ErrMalformedFrame reports a binary frame whose payload did not decode.
// The frame's bytes were fully consumed (the length prefix framed it),
// so the stream stays usable: callers count the error and keep reading.
var ErrMalformedFrame = errors.New("wire: malformed binary frame")

// Binary envelope type bytes (wire values; never renumber).
const (
	binTypeResponse = 1
	binTypeResult   = 2
	binTypeStats    = 3
	binTypePing     = 4
	binTypePong     = 5
)

// Presence flags for the envelope's optional bodies, in encode order.
const (
	flagResponse = 1 << iota
	flagResult
	flagStats
	flagTrace
)

// binType maps an envelope type to its wire byte (0 if unknown).
func binType(t MsgType) byte {
	switch t {
	case TypeResponse:
		return binTypeResponse
	case TypeResult:
		return binTypeResult
	case TypeStats:
		return binTypeStats
	case TypePing:
		return binTypePing
	case TypePong:
		return binTypePong
	default:
		return 0
	}
}

// typeFromBin maps a wire byte back to the envelope type.
func typeFromBin(b byte) (MsgType, bool) {
	switch b {
	case binTypeResponse:
		return TypeResponse, true
	case binTypeResult:
		return TypeResult, true
	case binTypeStats:
		return TypeStats, true
	case binTypePing:
		return TypePing, true
	case binTypePong:
		return TypePong, true
	default:
		return "", false
	}
}

// AppendEnvelope appends env as one length-prefixed binary frame to dst
// and returns the extended slice, append-style: a caller that reuses
// dst's capacity encodes with zero allocations. Frames concatenate, so a
// write batch is built by calling AppendEnvelope repeatedly on the same
// buffer.
func AppendEnvelope(dst []byte, env *Envelope) []byte {
	mark := len(dst)
	dst = appendPayload(dst, env)
	n := len(dst) - mark
	var pre [binary.MaxVarintLen64]byte
	pn := binary.PutUvarint(pre[:], uint64(n))
	// Make room for the prefix, shift the payload right (overlapping
	// copy is a memmove), then lay the prefix down in front of it.
	dst = append(dst, pre[:pn]...)
	copy(dst[mark+pn:], dst[mark:mark+n])
	copy(dst[mark:], pre[:pn])
	return dst
}

func appendPayload(dst []byte, env *Envelope) []byte {
	var flags byte
	if env.Response != nil {
		flags |= flagResponse
	}
	if env.Result != nil {
		flags |= flagResult
	}
	if env.Stats != nil {
		flags |= flagStats
	}
	if env.Trace != nil {
		flags |= flagTrace
	}
	dst = append(dst, binType(env.Type), flags)
	if env.Response != nil {
		dst = appendResponse(dst, env.Response)
	}
	if env.Result != nil {
		dst = appendResult(dst, env.Result)
	}
	if env.Stats != nil {
		st := env.Stats
		dst = binary.AppendVarint(dst, st.Decided)
		dst = binary.AppendVarint(dst, st.Valid)
		dst = binary.AppendVarint(dst, st.Faults)
		dst = binary.AppendVarint(dst, st.Timeouts)
		dst = binary.AppendVarint(dst, int64(st.Pending))
	}
	if env.Trace != nil {
		dst = appendStr(dst, env.Trace.Origin)
		dst = binary.AppendVarint(dst, env.Trace.BaseNS)
	}
	return dst
}

func appendStr(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func boolByte(b bool) byte {
	if b {
		return 1
	}
	return 0
}

func appendResponse(dst []byte, r *core.Response) []byte {
	dst = binary.AppendVarint(dst, int64(r.Controller))
	dst = appendStr(dst, string(r.Trigger))
	dst = append(dst, byte(r.Kind), boolByte(r.Tainted))
	dst = binary.AppendVarint(dst, int64(r.Primary))
	dst = appendStr(dst, string(r.Cache))
	dst = append(dst, byte(r.Op))
	dst = appendStr(dst, r.Key)
	dst = appendStr(dst, r.Value)
	dst = binary.AppendUvarint(dst, uint64(r.DPID))
	dst = append(dst, byte(r.MsgType))
	dst = appendStr(dst, r.MsgBody)
	dst = binary.AppendVarint(dst, int64(r.WireLen))
	dst = binary.LittleEndian.AppendUint64(dst, r.StateDigest)
	dst = binary.AppendUvarint(dst, r.StateApplied)
	dst = appendStr(dst, r.Prev)
	dst = append(dst, boolByte(r.PrevOK))
	dst = binary.AppendVarint(dst, int64(r.At))
	return dst
}

func appendResult(dst []byte, r *core.Result) []byte {
	dst = appendStr(dst, string(r.Trigger))
	dst = append(dst, byte(r.Kind), byte(r.Verdict), byte(r.Fault))
	dst = binary.AppendVarint(dst, int64(r.Offender))
	dst = appendStr(dst, r.Reason)
	dst = binary.AppendVarint(dst, int64(r.Responses))
	dst = binary.AppendVarint(dst, int64(r.DetectionTime))
	dst = binary.AppendVarint(dst, int64(r.DecidedAt))
	dst = append(dst, boolByte(r.TimedOut))
	dst = binary.AppendUvarint(dst, uint64(len(r.Evidence)))
	for i := range r.Evidence {
		dst = appendResponse(dst, &r.Evidence[i])
	}
	return dst
}

// binCursor walks one frame payload. Every accessor sets err and returns
// a zero value on underflow, so decode code reads fields linearly and
// checks err once at the end.
type binCursor struct {
	b   []byte
	off int
	err bool
}

func (c *binCursor) u8() byte {
	if c.off >= len(c.b) {
		c.err = true
		return 0
	}
	v := c.b[c.off]
	c.off++
	return v
}

func (c *binCursor) uvarint() uint64 {
	v, n := binary.Uvarint(c.b[c.off:])
	if n <= 0 {
		c.err = true
		return 0
	}
	c.off += n
	return v
}

func (c *binCursor) varint() int64 {
	v, n := binary.Varint(c.b[c.off:])
	if n <= 0 {
		c.err = true
		return 0
	}
	c.off += n
	return v
}

func (c *binCursor) fixed64() uint64 {
	if len(c.b)-c.off < 8 {
		c.err = true
		return 0
	}
	v := binary.LittleEndian.Uint64(c.b[c.off:])
	c.off += 8
	return v
}

func (c *binCursor) bool() bool { return c.u8() != 0 }

// str returns the next length-prefixed string BORROWED from the frame
// buffer via unsafe.String: no copy, no allocation, valid only as long
// as the buffer. BinDecoder's ownership contract covers the aliasing.
func (c *binCursor) str() string {
	n := c.uvarint()
	if c.err {
		return ""
	}
	if n > uint64(len(c.b)-c.off) {
		c.err = true
		return ""
	}
	if n == 0 {
		return ""
	}
	s := unsafe.String(&c.b[c.off], int(n))
	c.off += int(n)
	return s
}

// BinDecoder decodes binary frame payloads into a reusable envelope.
//
// Ownership contract: the returned envelope, its pointed-to bodies and
// every string in them BORROW from the decoder's scratch state and from
// the payload buffer passed to Decode. They are valid only until the
// next Decode call (or until the caller reuses the buffer). A caller
// that retains anything past that window — storing a Response in the
// validator, handing a Result to a callback — must deep-copy first with
// CloneResponse/CloneResult. In exchange the steady-state decode path
// allocates nothing.
type BinDecoder struct {
	env      Envelope
	resp     core.Response
	res      core.Result
	stats    Stats
	trace    TraceContext
	evidence []core.Response
}

// Decode parses one frame payload (the bytes after the length prefix).
// See the type comment for the borrow contract on the returned envelope.
func (d *BinDecoder) Decode(buf []byte) (*Envelope, error) {
	cur := binCursor{b: buf}
	t := cur.u8()
	flags := cur.u8()
	typ, ok := typeFromBin(t)
	if cur.err || !ok {
		return nil, ErrMalformedFrame
	}
	d.env = Envelope{Type: typ}
	if flags&flagResponse != 0 {
		decodeResponse(&cur, &d.resp)
		d.env.Response = &d.resp
	}
	if flags&flagResult != 0 {
		d.decodeResult(&cur)
		d.env.Result = &d.res
	}
	if flags&flagStats != 0 {
		d.stats = Stats{
			Decided:  cur.varint(),
			Valid:    cur.varint(),
			Faults:   cur.varint(),
			Timeouts: cur.varint(),
			Pending:  int(cur.varint()),
		}
		d.env.Stats = &d.stats
	}
	if flags&flagTrace != 0 {
		d.trace = TraceContext{Origin: cur.str(), BaseNS: cur.varint()}
		d.env.Trace = &d.trace
	}
	if cur.err || cur.off != len(cur.b) {
		return nil, ErrMalformedFrame
	}
	return &d.env, nil
}

func decodeResponse(cur *binCursor, r *core.Response) {
	*r = core.Response{
		Controller: store.NodeID(cur.varint()),
		Trigger:    trigger.ID(cur.str()),
		Kind:       core.ResponseKind(cur.u8()),
		Tainted:    cur.bool(),
		Primary:    store.NodeID(cur.varint()),
		Cache:      store.CacheName(cur.str()),
		Op:         store.Op(cur.u8()),
		Key:        cur.str(),
		Value:      cur.str(),
		DPID:       topo.DPID(cur.uvarint()),
		MsgType:    openflow.MsgType(cur.u8()),
		MsgBody:    cur.str(),
		WireLen:    int(cur.varint()),
	}
	r.StateDigest = cur.fixed64()
	r.StateApplied = cur.uvarint()
	r.Prev = cur.str()
	r.PrevOK = cur.bool()
	r.At = time.Duration(cur.varint())
}

func (d *BinDecoder) decodeResult(cur *binCursor) {
	d.res = core.Result{
		Trigger:       trigger.ID(cur.str()),
		Kind:          trigger.Kind(cur.u8()),
		Verdict:       core.Verdict(cur.u8()),
		Fault:         core.FaultClass(cur.u8()),
		Offender:      store.NodeID(cur.varint()),
		Reason:        cur.str(),
		Responses:     int(cur.varint()),
		DetectionTime: time.Duration(cur.varint()),
		DecidedAt:     time.Duration(cur.varint()),
		TimedOut:      cur.bool(),
	}
	n := cur.uvarint()
	// Each evidence response costs at least a dozen bytes; bounding the
	// claimed count by the remaining payload stops a hostile count from
	// sizing anything.
	if n > uint64(len(cur.b)-cur.off) {
		cur.err = true
		return
	}
	d.evidence = d.evidence[:0]
	for i := uint64(0); i < n && !cur.err; i++ {
		var r core.Response
		decodeResponse(cur, &r)
		d.evidence = append(d.evidence, r)
	}
	if len(d.evidence) > 0 {
		d.res.Evidence = d.evidence
	}
}

// BinReader frames length-prefixed binary envelopes off one connection
// with the same per-error discipline as LineReader: an oversized frame
// is discarded by its declared length and reported as ErrFrameTooLong, a
// frame whose payload does not decode is reported as ErrMalformedFrame,
// and both leave the stream positioned at the next frame. Any other
// error is fatal to the stream (a corrupt length prefix cannot be
// resynchronized).
//
// The envelope returned by ReadEnvelope borrows from the reader's frame
// buffer and decoder scratch — valid only until the next call; see
// BinDecoder for the contract.
type BinReader struct {
	r   *bufio.Reader
	max int
	buf []byte
	dec BinDecoder
}

// NewBinReader frames r with a max payload of max bytes per frame.
// max <= 0 selects DefaultMaxLineBytes. An r that is already a
// *bufio.Reader is used directly rather than double-buffered.
func NewBinReader(r io.Reader, max int) *BinReader {
	if max <= 0 {
		max = DefaultMaxLineBytes
	}
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReaderSize(r, 64*1024)
	}
	return &BinReader{r: br, max: max}
}

// ReadEnvelope returns the next envelope. Errors are per frame where the
// framing allows it: after ErrFrameTooLong or ErrMalformedFrame the
// reader is positioned at the next frame.
func (br *BinReader) ReadEnvelope() (*Envelope, error) {
	n, err := binary.ReadUvarint(br.r)
	if err != nil {
		// io.EOF at a frame boundary is a clean close; anything else
		// (mid-varint cut, varint overflow) is unrecoverable.
		return nil, err
	}
	if n > uint64(br.max) {
		if err := br.discard(n); err != nil {
			return nil, err
		}
		return nil, ErrFrameTooLong
	}
	if uint64(cap(br.buf)) < n {
		br.buf = make([]byte, n)
	}
	buf := br.buf[:n]
	if _, err := io.ReadFull(br.r, buf); err != nil {
		if errors.Is(err, io.EOF) {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return br.dec.Decode(buf)
}

// discard consumes an oversized frame's declared payload so the next
// ReadEnvelope starts cleanly.
func (br *BinReader) discard(n uint64) error {
	for n > 0 {
		chunk := n
		if chunk > 1<<20 {
			chunk = 1 << 20
		}
		if _, err := br.r.Discard(int(chunk)); err != nil {
			return err
		}
		n -= chunk
	}
	return nil
}

// CloneResponse deep-copies a decoded response so it can outlive the
// decoder's borrow window (BinDecoder's ownership contract): every
// string is re-allocated off the shared frame buffer.
func CloneResponse(r core.Response) core.Response {
	r.Trigger = trigger.ID(strings.Clone(string(r.Trigger)))
	r.Cache = store.CacheName(strings.Clone(string(r.Cache)))
	r.Key = strings.Clone(r.Key)
	r.Value = strings.Clone(r.Value)
	r.MsgBody = strings.Clone(r.MsgBody)
	r.Prev = strings.Clone(r.Prev)
	return r
}

// CloneResult deep-copies a decoded result (evidence included) past the
// decoder's borrow window.
func CloneResult(r core.Result) core.Result {
	r.Trigger = trigger.ID(strings.Clone(string(r.Trigger)))
	r.Reason = strings.Clone(r.Reason)
	if len(r.Evidence) > 0 {
		ev := make([]core.Response, len(r.Evidence))
		for i := range r.Evidence {
			ev[i] = CloneResponse(r.Evidence[i])
		}
		r.Evidence = ev
	}
	return r
}
