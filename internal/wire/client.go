package wire

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"github.com/jurysdn/jury/internal/core"
	"github.com/jurysdn/jury/internal/obs"
)

// ErrClientClosed reports a Send or RequestStats on a closed client.
var ErrClientClosed = errors.New("wire: client closed")

// ClientConfig parameterizes a validator client.
type ClientConfig struct {
	// MaxLineBytes caps one received protocol line (default
	// DefaultMaxLineBytes).
	MaxLineBytes int
	// QueueSize bounds the outgoing queue (default DefaultQueueSize).
	// When the queue is full the oldest entry is shed and counted on
	// Dropped() — backpressure never blocks the caller and loss is
	// never silent.
	QueueSize int
	// ReconnectBase/ReconnectMax bound the redial backoff envelope
	// (defaults DefaultReconnectBase/DefaultReconnectMax).
	ReconnectBase time.Duration
	ReconnectMax  time.Duration
	// Seed drives the backoff jitter RNG, so a seed fully determines
	// the redial schedule (default 1).
	Seed int64
	// Dial opens one connection to the service; nil selects plain TCP
	// to the address given to DialConfig. Tests wrap the returned conn
	// in wiretest fault injectors here.
	Dial func() (net.Conn, error)
	// Sleep waits between redial attempts; nil selects the real-time
	// sleeper. Tests inject one to record and collapse the schedule.
	Sleep func(d time.Duration, cancel <-chan struct{}) bool
	// WriteTimeout bounds one send so a stalled server surfaces as a
	// reconnect instead of a wedged writer (default DefaultWriteTimeout;
	// negative disables).
	WriteTimeout time.Duration
	// Metrics optionally publishes the jury_wire_client_* families.
	Metrics *obs.Registry
	// Trace, when set, is the span-context template stamped onto every
	// outgoing response envelope (Origin copied verbatim, BaseNS refreshed
	// from TraceNow at enqueue time) so the server can stitch this
	// client's trace against its own. Old servers ignore the field.
	Trace *TraceContext
	// TraceNow reads the sender's virtual clock for Trace.BaseNS; nil
	// freezes BaseNS at the template value. Called on the Send caller's
	// goroutine, so a single-goroutine clock (a simnet engine driven by
	// the same event loop that calls Send) is safe.
	TraceNow func() time.Duration
	// OnResult observes pushed validation results.
	OnResult func(core.Result)
	// OnStats observes stats replies.
	OnStats func(Stats)
}

func (cfg *ClientConfig) fillDefaults() {
	if cfg.MaxLineBytes == 0 {
		cfg.MaxLineBytes = DefaultMaxLineBytes
	}
	if cfg.QueueSize <= 0 {
		cfg.QueueSize = DefaultQueueSize
	}
	if cfg.ReconnectBase <= 0 {
		cfg.ReconnectBase = DefaultReconnectBase
	}
	if cfg.ReconnectMax <= 0 {
		cfg.ReconnectMax = DefaultReconnectMax
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Sleep == nil {
		cfg.Sleep = defaultSleep
	}
	if cfg.WriteTimeout == 0 {
		cfg.WriteTimeout = DefaultWriteTimeout
	}
}

// clientMetrics are the client-side lifecycle families.
type clientMetrics struct {
	dropped     *obs.Counter
	reconnects  *obs.Counter
	dialErrors  *obs.Counter
	disconnects *obs.Counter
	lineErrors  *obs.Counter
}

func newClientMetrics(reg *obs.Registry) *clientMetrics {
	if reg == nil {
		return &clientMetrics{
			dropped:     &obs.Counter{},
			reconnects:  &obs.Counter{},
			dialErrors:  &obs.Counter{},
			disconnects: &obs.Counter{},
			lineErrors:  &obs.Counter{},
		}
	}
	return &clientMetrics{
		dropped: reg.Counter("jury_wire_client_dropped_total",
			"Outgoing envelopes shed by the bounded queue or abandoned at Close."),
		reconnects: reg.Counter("jury_wire_client_reconnects_total",
			"Successful re-dials after a lost connection."),
		dialErrors: reg.Counter("jury_wire_client_dial_errors_total",
			"Failed dial attempts (each backed off)."),
		disconnects: reg.Counter("jury_wire_client_disconnects_total",
			"Established connections lost."),
		lineErrors: reg.Counter("jury_wire_client_line_errors_total",
			"Received lines rejected (oversized or malformed)."),
	}
}

// Client streams responses to a validator service and receives results.
// Sends enqueue into a bounded queue drained by a single writer
// goroutine that owns the connection: when the link drops, the writer
// re-dials with exponential backoff and seeded jitter, and the envelope
// being written when the link died is retransmitted first. A juryd
// restart mid-run therefore loses at most the bounded backlog, and every
// shed envelope is visible on Dropped().
type Client struct {
	cfg  ClientConfig
	addr string
	m    *clientMetrics

	// OnResult observes pushed validation results (set before the first
	// response can arrive; ClientConfig.OnResult takes precedence).
	OnResult func(core.Result)
	// OnStats observes stats replies (same setting discipline).
	OnStats func(Stats)

	mu        sync.Mutex
	queue     []Envelope    // guarded by mu
	inflight  *Envelope     // guarded by mu
	pongs     int           // guarded by mu
	conn      net.Conn      // guarded by mu
	enc       *json.Encoder // guarded by mu
	connected bool          // guarded by mu
	closed    bool          // guarded by mu

	kick chan struct{}
	stop chan struct{}
	done sync.WaitGroup
}

// Dial connects to a validator service with default resilience settings.
// The first dial is synchronous (a bad address fails fast); afterwards
// the client re-dials transparently whenever the link drops.
func Dial(addr string) (*Client, error) {
	return DialConfig(addr, ClientConfig{})
}

// DialConfig connects to a validator service. See Dial.
func DialConfig(addr string, cfg ClientConfig) (*Client, error) {
	cfg.fillDefaults()
	c := &Client{
		cfg:  cfg,
		addr: addr,
		m:    newClientMetrics(cfg.Metrics),
		kick: make(chan struct{}, 1),
		stop: make(chan struct{}),
	}
	conn, err := c.dial()
	if err != nil {
		return nil, fmt.Errorf("wire: dial: %w", err)
	}
	c.conn = conn
	c.enc = json.NewEncoder(conn)
	c.connected = true
	c.done.Add(2)
	go c.readLoop(conn)
	go c.writeLoop()
	return c, nil
}

func (c *Client) dial() (net.Conn, error) {
	if c.cfg.Dial != nil {
		return c.cfg.Dial()
	}
	return net.Dial("tcp", c.addr)
}

// Send streams one response to the validator. It never blocks on the
// network: the response is queued and the call only fails once the
// client is closed. A full queue sheds its oldest entry (counted on
// Dropped()).
func (c *Client) Send(r core.Response) error {
	env := Envelope{Type: TypeResponse, Response: &r}
	if c.cfg.Trace != nil {
		tc := *c.cfg.Trace
		if c.cfg.TraceNow != nil {
			tc.BaseNS = int64(c.cfg.TraceNow())
		}
		env.Trace = &tc
	}
	return c.enqueue(env)
}

// RequestStats asks the server for a stats snapshot (delivered to
// OnStats). Queued like Send.
func (c *Client) RequestStats() error {
	return c.enqueue(Envelope{Type: TypeStats})
}

func (c *Client) enqueue(env Envelope) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClientClosed
	}
	if len(c.queue) >= c.cfg.QueueSize {
		c.queue = c.queue[1:] // shed oldest: fresh state beats stale state
		c.m.dropped.Inc()
	}
	c.queue = append(c.queue, env)
	c.mu.Unlock()
	c.kickWriter()
	return nil
}

func (c *Client) kickWriter() {
	select {
	case c.kick <- struct{}{}:
	default:
	}
}

// Dropped returns the number of outgoing envelopes lost to queue
// shedding or abandoned unsent at Close — the client's loss is always
// accounted, never silent.
func (c *Client) Dropped() int64 { return c.m.dropped.Value() }

// Reconnects returns the number of successful re-dials after the
// initial connection.
func (c *Client) Reconnects() int64 { return c.m.reconnects.Value() }

// Connected reports whether the client currently holds an established
// connection.
func (c *Client) Connected() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.connected
}

// Backlog returns the number of envelopes queued but not yet written.
func (c *Client) Backlog() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := len(c.queue) + c.pongs
	if c.inflight != nil {
		n++
	}
	return n
}

// Close closes the connection, stops the writer and reader, and counts
// any still-undelivered envelopes as dropped. Safe to call more than
// once.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	conn := c.conn
	c.connected = false
	undelivered := int64(len(c.queue))
	if c.inflight != nil {
		undelivered++
	}
	c.queue = nil
	c.inflight = nil
	c.mu.Unlock()
	if undelivered > 0 {
		c.m.dropped.Add(undelivered)
	}
	close(c.stop)
	if conn != nil {
		_ = conn.Close()
	}
	c.done.Wait()
	return nil
}

// writeLoop is the single owner of the outgoing side: it drains the
// queue onto the current connection, and when the link is down it
// re-dials on the backoff schedule. Heartbeat pongs jump the queue so a
// backlogged client still proves liveness.
func (c *Client) writeLoop() {
	defer c.done.Done()
	bo := NewBackoff(c.cfg.ReconnectBase, c.cfg.ReconnectMax, c.cfg.Seed)
	for {
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			return
		}
		conn, enc := c.conn, c.enc
		var env *Envelope
		if conn != nil {
			env = c.takeLocked()
		}
		c.mu.Unlock()

		switch {
		case conn == nil:
			if !c.redial(bo) {
				return
			}
		case env == nil:
			select {
			case <-c.stop:
				return
			case <-c.kick:
			}
		default:
			armWriteDeadline(conn, c.cfg.WriteTimeout)
			if err := enc.Encode(*env); err != nil {
				// The in-flight envelope is retained and retried after
				// the reconnect; only queue shedding loses data.
				c.dropLink(conn)
				continue
			}
			c.mu.Lock()
			c.inflight = nil
			c.mu.Unlock()
		}
	}
}

// takeLocked picks the next envelope to write: a retained in-flight
// envelope first, then pending heartbeat pongs, then the queue head
// (which moves to in-flight until its write succeeds). Runs with c.mu
// held (proven by the guardedby call graph).
func (c *Client) takeLocked() *Envelope {
	if c.inflight != nil {
		return c.inflight
	}
	if c.pongs > 0 {
		c.pongs--
		return &Envelope{Type: TypePong}
	}
	if len(c.queue) > 0 {
		env := c.queue[0]
		c.queue = c.queue[1:]
		c.inflight = &env
		return c.inflight
	}
	return nil
}

// redial re-establishes the connection on the backoff schedule. Returns
// false once the client closes.
func (c *Client) redial(bo *Backoff) bool {
	for {
		select {
		case <-c.stop:
			return false
		default:
		}
		conn, err := c.dial()
		if err != nil {
			c.m.dialErrors.Inc()
			if !c.cfg.Sleep(bo.Next(), c.stop) {
				return false
			}
			continue
		}
		bo.Reset()
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			_ = conn.Close()
			return false
		}
		c.conn = conn
		c.enc = json.NewEncoder(conn)
		c.connected = true
		c.mu.Unlock()
		c.m.reconnects.Inc()
		c.done.Add(1)
		go c.readLoop(conn)
		return true
	}
}

// dropLink tears down one connection and, unless the client is closing,
// kicks the writer into its redial loop. Called by both the writer (on
// write errors) and the reader (on read errors), so a dead link is
// noticed even when nothing is being sent.
func (c *Client) dropLink(conn net.Conn) {
	_ = conn.Close()
	c.mu.Lock()
	lost := false
	if c.conn == conn {
		c.conn, c.enc = nil, nil
		c.connected = false
		lost = !c.closed
	}
	c.mu.Unlock()
	if lost {
		c.m.disconnects.Inc()
		c.kickWriter()
	}
}

// readLoop reads pushed results, stats replies and heartbeat pings from
// one connection until it dies.
func (c *Client) readLoop(conn net.Conn) {
	defer c.done.Done()
	defer c.dropLink(conn)
	lr := NewLineReader(conn, c.cfg.MaxLineBytes)
	for {
		line, err := lr.ReadLine()
		if err != nil {
			if errors.Is(err, ErrLineTooLong) {
				c.m.lineErrors.Inc()
				continue
			}
			return
		}
		if len(line) == 0 {
			continue
		}
		var env Envelope
		if err := json.Unmarshal(line, &env); err != nil {
			c.m.lineErrors.Inc()
			continue
		}
		switch env.Type {
		case TypeResult:
			if cb := c.onResult(); env.Result != nil && cb != nil {
				cb(*env.Result)
			}
		case TypeStats:
			if cb := c.onStats(); env.Stats != nil && cb != nil {
				cb(*env.Stats)
			}
		case TypePing:
			c.mu.Lock()
			c.pongs++
			c.mu.Unlock()
			c.kickWriter()
		}
	}
}

func (c *Client) onResult() func(core.Result) {
	if c.cfg.OnResult != nil {
		return c.cfg.OnResult
	}
	return c.OnResult
}

func (c *Client) onStats() func(Stats) {
	if c.cfg.OnStats != nil {
		return c.cfg.OnStats
	}
	return c.OnStats
}
