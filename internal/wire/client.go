package wire

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"github.com/jurysdn/jury/internal/core"
	"github.com/jurysdn/jury/internal/obs"
)

// ErrClientClosed reports a Send or RequestStats on a closed client.
var ErrClientClosed = errors.New("wire: client closed")

// ClientConfig parameterizes a validator client.
type ClientConfig struct {
	// Codec selects the wire encoding: CodecJSON (and CodecAuto, the
	// zero value) keeps the newline-delimited JSON protocol; CodecBinary
	// sends the one-byte handshake at connect and speaks length-prefixed
	// binary frames both ways, with writes coalesced into batches.
	Codec Codec
	// MaxLineBytes caps one received protocol line or binary frame
	// (default DefaultMaxLineBytes).
	MaxLineBytes int
	// QueueSize bounds the outgoing queue (default DefaultQueueSize).
	// When the queue is full the oldest entry is shed and counted on
	// Dropped() — backpressure never blocks the caller and loss is
	// never silent.
	QueueSize int
	// MaxBatch caps how many queued envelopes one binary write coalesces
	// into a single socket write (default DefaultMaxBatch). JSON writes
	// one line per envelope regardless.
	MaxBatch int
	// FlushIdle, with the binary codec, lets a batch smaller than
	// MaxBatch linger this long for more envelopes to coalesce before
	// the write goes out — trading bounded latency for fewer, fuller
	// writes. Zero (the default) flushes as soon as the queue drains.
	FlushIdle time.Duration
	// ReconnectBase/ReconnectMax bound the redial backoff envelope
	// (defaults DefaultReconnectBase/DefaultReconnectMax).
	ReconnectBase time.Duration
	ReconnectMax  time.Duration
	// Seed drives the backoff jitter RNG, so a seed fully determines
	// the redial schedule (default 1).
	Seed int64
	// Dial opens one connection to the service; nil selects plain TCP
	// to the address given to DialConfig. Tests wrap the returned conn
	// in wiretest fault injectors here.
	Dial func() (net.Conn, error)
	// Sleep waits between redial attempts; nil selects the real-time
	// sleeper. Tests inject one to record and collapse the schedule.
	Sleep func(d time.Duration, cancel <-chan struct{}) bool
	// WriteTimeout bounds one send so a stalled server surfaces as a
	// reconnect instead of a wedged writer (default DefaultWriteTimeout;
	// negative disables).
	WriteTimeout time.Duration
	// Metrics optionally publishes the jury_wire_client_* families.
	Metrics *obs.Registry
	// Trace, when set, is the span-context template stamped onto every
	// outgoing response envelope (Origin copied verbatim, BaseNS refreshed
	// from TraceNow at enqueue time) so the server can stitch this
	// client's trace against its own. Old servers ignore the field.
	Trace *TraceContext
	// TraceNow reads the sender's virtual clock for Trace.BaseNS; nil
	// freezes BaseNS at the template value. Called on the Send caller's
	// goroutine, so a single-goroutine clock (a simnet engine driven by
	// the same event loop that calls Send) is safe.
	TraceNow func() time.Duration
	// OnResult observes pushed validation results.
	OnResult func(core.Result)
	// OnStats observes stats replies.
	OnStats func(Stats)
}

// DefaultMaxBatch is the binary codec's write-coalescing cap: one socket
// write carries at most this many envelopes.
const DefaultMaxBatch = 64

func (cfg *ClientConfig) fillDefaults() {
	if cfg.Codec == CodecAuto {
		cfg.Codec = CodecJSON // a client has no peer byte to mirror
	}
	if cfg.MaxLineBytes == 0 {
		cfg.MaxLineBytes = DefaultMaxLineBytes
	}
	if cfg.QueueSize <= 0 {
		cfg.QueueSize = DefaultQueueSize
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = DefaultMaxBatch
	}
	if cfg.ReconnectBase <= 0 {
		cfg.ReconnectBase = DefaultReconnectBase
	}
	if cfg.ReconnectMax <= 0 {
		cfg.ReconnectMax = DefaultReconnectMax
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Sleep == nil {
		cfg.Sleep = defaultSleep
	}
	if cfg.WriteTimeout == 0 {
		cfg.WriteTimeout = DefaultWriteTimeout
	}
}

// clientMetrics are the client-side lifecycle families.
type clientMetrics struct {
	dropped     *obs.Counter
	reconnects  *obs.Counter
	dialErrors  *obs.Counter
	disconnects *obs.Counter
	lineErrors  *obs.Counter
}

func newClientMetrics(reg *obs.Registry) *clientMetrics {
	if reg == nil {
		return &clientMetrics{
			dropped:     &obs.Counter{},
			reconnects:  &obs.Counter{},
			dialErrors:  &obs.Counter{},
			disconnects: &obs.Counter{},
			lineErrors:  &obs.Counter{},
		}
	}
	return &clientMetrics{
		dropped: reg.Counter("jury_wire_client_dropped_total",
			"Outgoing envelopes shed by the bounded queue or abandoned at Close."),
		reconnects: reg.Counter("jury_wire_client_reconnects_total",
			"Successful re-dials after a lost connection."),
		dialErrors: reg.Counter("jury_wire_client_dial_errors_total",
			"Failed dial attempts (each backed off)."),
		disconnects: reg.Counter("jury_wire_client_disconnects_total",
			"Established connections lost."),
		lineErrors: reg.Counter("jury_wire_client_line_errors_total",
			"Received lines or frames rejected (oversized or malformed)."),
	}
}

// envRing is the client's bounded outgoing queue: a fixed-capacity ring
// whose backing array is allocated once and never grows. The previous
// slice queue advanced its head with queue[1:] and appended, so shed
// envelopes stayed referenced by the old backing array and sustained
// shed/append cycles regrew it without bound; the ring overwrites the
// oldest slot in place instead.
type envRing struct {
	buf  []Envelope
	head int // index of the oldest entry
	n    int // live entries
}

func (r *envRing) init(capacity int) { r.buf = make([]Envelope, capacity) }

// push appends env, shedding the oldest entry in place when full; it
// reports whether an entry was shed.
func (r *envRing) push(env Envelope) (shed bool) {
	if r.n == len(r.buf) {
		r.buf[r.head] = env // shed oldest: fresh state beats stale state
		r.head = (r.head + 1) % len(r.buf)
		return true
	}
	r.buf[(r.head+r.n)%len(r.buf)] = env
	r.n++
	return false
}

// pop removes and returns the oldest entry, zeroing its slot so popped
// envelopes do not pin their response bodies until overwritten.
func (r *envRing) pop() (Envelope, bool) {
	if r.n == 0 {
		return Envelope{}, false
	}
	env := r.buf[r.head]
	r.buf[r.head] = Envelope{}
	r.head = (r.head + 1) % len(r.buf)
	r.n--
	return env, true
}

func (r *envRing) len() int { return r.n }

// Client streams responses to a validator service and receives results.
// Sends enqueue into a bounded ring drained by a single writer goroutine
// that owns the connection: when the link drops, the writer re-dials
// with exponential backoff and seeded jitter, and the batch being
// written when the link died is retransmitted first. A juryd restart
// mid-run therefore loses at most the bounded backlog, and every shed
// envelope is visible on Dropped().
type Client struct {
	cfg  ClientConfig
	addr string
	m    *clientMetrics

	// OnResult observes pushed validation results (set before the first
	// response can arrive; ClientConfig.OnResult takes precedence).
	OnResult func(core.Result)
	// OnStats observes stats replies (same setting discipline).
	OnStats func(Stats)

	mu   sync.Mutex
	ring envRing // guarded by mu
	// inflight is the write unit taken but not yet acknowledged by a
	// successful socket write: one envelope under JSON, up to MaxBatch
	// under the binary codec. Retained across a reconnect and
	// retransmitted first.
	inflight []Envelope // guarded by mu
	// pongDebt records that a heartbeat ping arrived and a pong is owed.
	// It is a bool, not a counter: a pong proves liveness idempotently,
	// so a flapping link that delivers a burst of pings is answered
	// once instead of burning writes on stale pongs ahead of real data.
	pongDebt bool     // guarded by mu
	conn     net.Conn // guarded by mu
	// proven marks the current connection as having carried at least one
	// successful write or read. The redial backoff only resets after a
	// proven connection: a server that accepts and immediately drops
	// (crash loop) keeps the schedule growing instead of being re-dialed
	// at the base interval forever.
	proven    bool          // guarded by mu
	enc       *json.Encoder // guarded by mu
	connected bool          // guarded by mu
	closed    bool          // guarded by mu

	kick chan struct{}
	stop chan struct{}
	done sync.WaitGroup
}

// Dial connects to a validator service with default resilience settings.
// The first dial is synchronous (a bad address fails fast); afterwards
// the client re-dials transparently whenever the link drops.
func Dial(addr string) (*Client, error) {
	return DialConfig(addr, ClientConfig{})
}

// DialConfig connects to a validator service. See Dial.
func DialConfig(addr string, cfg ClientConfig) (*Client, error) {
	cfg.fillDefaults()
	c := &Client{
		cfg:  cfg,
		addr: addr,
		m:    newClientMetrics(cfg.Metrics),
		kick: make(chan struct{}, 1),
		stop: make(chan struct{}),
	}
	c.ring.init(cfg.QueueSize)
	conn, err := c.dial()
	if err != nil {
		return nil, fmt.Errorf("wire: dial: %w", err)
	}
	if err := c.handshake(conn); err != nil {
		_ = conn.Close()
		return nil, fmt.Errorf("wire: handshake: %w", err)
	}
	c.conn = conn
	c.enc = json.NewEncoder(conn)
	c.connected = true
	c.done.Add(2)
	go c.readLoop(conn)
	go c.writeLoop()
	return c, nil
}

func (c *Client) dial() (net.Conn, error) {
	if c.cfg.Dial != nil {
		return c.cfg.Dial()
	}
	return net.Dial("tcp", c.addr)
}

// handshake announces the binary codec with its magic byte before any
// frame; a JSON client writes nothing (its first '{' is the tell).
func (c *Client) handshake(conn net.Conn) error {
	if c.cfg.Codec != CodecBinary {
		return nil
	}
	armWriteDeadline(conn, c.cfg.WriteTimeout)
	_, err := conn.Write(binHandshake)
	return err
}

// Send streams one response to the validator. It never blocks on the
// network: the response is queued and the call only fails once the
// client is closed. A full queue sheds its oldest entry (counted on
// Dropped()).
func (c *Client) Send(r core.Response) error {
	env := Envelope{Type: TypeResponse, Response: &r}
	if c.cfg.Trace != nil {
		tc := *c.cfg.Trace
		if c.cfg.TraceNow != nil {
			tc.BaseNS = int64(c.cfg.TraceNow())
		}
		env.Trace = &tc
	}
	return c.enqueue(env)
}

// RequestStats asks the server for a stats snapshot (delivered to
// OnStats). Queued like Send.
func (c *Client) RequestStats() error {
	return c.enqueue(Envelope{Type: TypeStats})
}

func (c *Client) enqueue(env Envelope) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClientClosed
	}
	if c.ring.push(env) {
		c.m.dropped.Inc()
	}
	c.mu.Unlock()
	c.kickWriter()
	return nil
}

func (c *Client) kickWriter() {
	select {
	case c.kick <- struct{}{}:
	default:
	}
}

// Dropped returns the number of outgoing envelopes lost to queue
// shedding or abandoned unsent at Close — the client's loss is always
// accounted, never silent.
func (c *Client) Dropped() int64 { return c.m.dropped.Value() }

// Reconnects returns the number of successful re-dials after the
// initial connection.
func (c *Client) Reconnects() int64 { return c.m.reconnects.Value() }

// Connected reports whether the client currently holds an established
// connection.
func (c *Client) Connected() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.connected
}

// Backlog returns the number of envelopes queued or in flight but not
// yet written. Owed heartbeat pongs are liveness state, not payload, and
// are not counted.
func (c *Client) Backlog() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ring.len() + len(c.inflight)
}

// Close closes the connection, stops the writer and reader, and counts
// any still-undelivered envelopes as dropped. Safe to call more than
// once.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	conn := c.conn
	c.connected = false
	undelivered := int64(c.ring.len() + len(c.inflight))
	c.ring = envRing{}
	c.inflight = nil
	c.mu.Unlock()
	if undelivered > 0 {
		c.m.dropped.Add(undelivered)
	}
	close(c.stop)
	if conn != nil {
		_ = conn.Close()
	}
	c.done.Wait()
	return nil
}

// writeLoop is the single owner of the outgoing side: it drains the
// queue onto the current connection, and when the link is down it
// re-dials on the backoff schedule. Heartbeat pongs jump the queue so a
// backlogged client still proves liveness. Under the binary codec,
// queued envelopes coalesce into one socket write of up to MaxBatch
// frames (lingering FlushIdle for more when the queue drained early),
// and the whole batch is the retransmit unit across a reconnect.
func (c *Client) writeLoop() {
	defer c.done.Done()
	bo := NewBackoff(c.cfg.ReconnectBase, c.cfg.ReconnectMax, c.cfg.Seed)
	for {
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			return
		}
		conn, enc := c.conn, c.enc
		var batch []Envelope
		if conn != nil {
			batch = c.takeBatchLocked()
		}
		c.mu.Unlock()

		switch {
		case conn == nil:
			if !c.redial(bo) {
				return
			}
		case len(batch) == 0:
			select {
			case <-c.stop:
				return
			case <-c.kick:
			}
		default:
			if c.cfg.Codec == CodecBinary {
				batch = c.linger(batch)
				if batch == nil {
					return // closed during the linger
				}
				bufp := getFrameBuf()
				buf := *bufp
				for i := range batch {
					buf = AppendEnvelope(buf, &batch[i])
				}
				armWriteDeadline(conn, c.cfg.WriteTimeout)
				_, err := conn.Write(buf)
				*bufp = buf[:0]
				putFrameBuf(bufp)
				if err != nil {
					// The in-flight batch is retained and retried after
					// the reconnect; only queue shedding loses data.
					c.dropLink(conn)
					continue
				}
			} else {
				armWriteDeadline(conn, c.cfg.WriteTimeout)
				if err := enc.Encode(batch[0]); err != nil {
					c.dropLink(conn)
					continue
				}
			}
			c.mu.Lock()
			c.inflight = c.inflight[:0]
			c.proven = true // first delivered write proves the connection
			c.mu.Unlock()
		}
	}
}

// takeBatchLocked picks the next write unit: the retained in-flight
// batch first, then an owed heartbeat pong, then queued envelopes — one
// under JSON (a line per envelope), up to MaxBatch under the binary
// codec. The returned slice is c.inflight, retained until its write
// succeeds. Runs with c.mu held (proven by the guardedby call graph).
func (c *Client) takeBatchLocked() []Envelope {
	if len(c.inflight) > 0 {
		return c.inflight
	}
	if c.pongDebt {
		c.pongDebt = false
		c.inflight = append(c.inflight[:0], Envelope{Type: TypePong})
		return c.inflight
	}
	c.fillFromRingLocked()
	return c.inflight
}

// fillFromRingLocked tops the in-flight batch up from the ring to the
// codec's batch cap. Runs with c.mu held.
func (c *Client) fillFromRingLocked() {
	max := 1
	if c.cfg.Codec == CodecBinary {
		max = c.cfg.MaxBatch
	}
	for len(c.inflight) < max {
		env, ok := c.ring.pop()
		if !ok {
			return
		}
		c.inflight = append(c.inflight, env)
	}
}

// linger implements flush-on-idle for the binary codec: a batch that
// stopped short of MaxBatch (the queue drained) waits FlushIdle for more
// envelopes to coalesce, then tops up once and flushes. Returns nil only
// when the client closed during the wait.
func (c *Client) linger(batch []Envelope) []Envelope {
	if c.cfg.FlushIdle <= 0 || len(batch) >= c.cfg.MaxBatch || batch[0].Type == TypePong {
		return batch
	}
	if !c.cfg.Sleep(c.cfg.FlushIdle, c.stop) {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.fillFromRingLocked()
	return c.inflight
}

// redial re-establishes the connection on the backoff schedule. The
// schedule only resets after a proven connection (one that carried a
// successful write or read): an accept-then-close flap therefore pays
// the grown backoff before the next dial instead of hot-looping at the
// base interval. Returns false once the client closes.
func (c *Client) redial(bo *Backoff) bool {
	c.mu.Lock()
	proven := c.proven
	c.mu.Unlock()
	if proven {
		bo.Reset()
	} else if !c.cfg.Sleep(bo.Next(), c.stop) {
		return false
	}
	for {
		select {
		case <-c.stop:
			return false
		default:
		}
		conn, err := c.dial()
		if err == nil {
			err = c.handshake(conn)
			if err != nil {
				_ = conn.Close()
			}
		}
		if err != nil {
			c.m.dialErrors.Inc()
			if !c.cfg.Sleep(bo.Next(), c.stop) {
				return false
			}
			continue
		}
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			_ = conn.Close()
			return false
		}
		c.conn = conn
		c.enc = json.NewEncoder(conn)
		c.connected = true
		c.proven = false // health is proven by traffic, not by the dial
		c.mu.Unlock()
		c.m.reconnects.Inc()
		c.done.Add(1)
		go c.readLoop(conn)
		return true
	}
}

// dropLink tears down one connection and, unless the client is closing,
// kicks the writer into its redial loop. Called by both the writer (on
// write errors) and the reader (on read errors), so a dead link is
// noticed even when nothing is being sent.
func (c *Client) dropLink(conn net.Conn) {
	_ = conn.Close()
	c.mu.Lock()
	lost := false
	if c.conn == conn {
		c.conn, c.enc = nil, nil
		c.connected = false
		lost = !c.closed
	}
	c.mu.Unlock()
	if lost {
		c.m.disconnects.Inc()
		c.kickWriter()
	}
}

// markProven records that conn carried at least one successful read, so
// the next redial starts from a reset backoff schedule.
func (c *Client) markProven(conn net.Conn) {
	c.mu.Lock()
	if c.conn == conn {
		c.proven = true
	}
	c.mu.Unlock()
}

// readLoop reads pushed results, stats replies and heartbeat pings from
// one connection until it dies.
func (c *Client) readLoop(conn net.Conn) {
	defer c.done.Done()
	defer c.dropLink(conn)
	if c.cfg.Codec == CodecBinary {
		c.readFrames(conn)
		return
	}
	c.readLines(conn)
}

// readLines is the JSON read side: newline-delimited envelopes.
func (c *Client) readLines(conn net.Conn) {
	lr := NewLineReader(conn, c.cfg.MaxLineBytes)
	proved := false
	for {
		line, err := lr.ReadLine()
		if err != nil {
			if errors.Is(err, ErrLineTooLong) {
				c.m.lineErrors.Inc()
				continue
			}
			return
		}
		if !proved {
			proved = true
			c.markProven(conn)
		}
		if len(line) == 0 {
			continue
		}
		var env Envelope
		if err := json.Unmarshal(line, &env); err != nil {
			c.m.lineErrors.Inc()
			continue
		}
		c.handleEnvelope(&env, false)
	}
}

// readFrames is the binary read side: length-prefixed frames decoded
// into borrowed envelopes.
func (c *Client) readFrames(conn net.Conn) {
	br := NewBinReader(conn, c.cfg.MaxLineBytes)
	proved := false
	for {
		env, err := br.ReadEnvelope()
		if err != nil {
			if errors.Is(err, ErrFrameTooLong) || errors.Is(err, ErrMalformedFrame) {
				c.m.lineErrors.Inc()
				continue
			}
			return
		}
		if !proved {
			proved = true
			c.markProven(conn)
		}
		c.handleEnvelope(env, true)
	}
}

// handleEnvelope dispatches one received envelope. borrowed marks
// envelopes decoded into the binary reader's scratch (BinDecoder's
// ownership contract): anything handed to a callback, which may retain
// it, is deep-copied first.
func (c *Client) handleEnvelope(env *Envelope, borrowed bool) {
	switch env.Type {
	case TypeResult:
		if cb := c.onResult(); env.Result != nil && cb != nil {
			r := *env.Result
			if borrowed {
				r = CloneResult(r)
			}
			cb(r)
		}
	case TypeStats:
		if cb := c.onStats(); env.Stats != nil && cb != nil {
			cb(*env.Stats) // value copy; Stats holds no strings
		}
	case TypePing:
		c.mu.Lock()
		c.pongDebt = true // capped at one: a pong is idempotent liveness
		c.mu.Unlock()
		c.kickWriter()
	}
}

func (c *Client) onResult() func(core.Result) {
	if c.cfg.OnResult != nil {
		return c.cfg.OnResult
	}
	return c.OnResult
}

func (c *Client) onStats() func(Stats) {
	if c.cfg.OnStats != nil {
		return c.cfg.OnStats
	}
	return c.OnStats
}
