// Package wiretest provides fault-injecting net.Conn and net.Listener
// wrappers for exercising the wire bridge's failure paths under the race
// detector: partial writes, mid-line disconnects, stalls, injected
// garbage bytes, and Accept-error storms. Everything is driven by
// explicit calls — no timers, no randomness — so failure schedules are
// deterministic.
package wiretest

import (
	"errors"
	"io"
	"net"
	"sync"
	"time"
)

// ErrCut reports a write that hit an injected disconnect: the allowed
// prefix went out on the real connection (possibly mid-line) and the
// connection was closed underneath the writer.
var ErrCut = errors.New("wiretest: connection cut by fault injection")

// Conn wraps a net.Conn with injectable faults. The zero configuration
// is transparent; faults are armed by the methods below and may be armed
// mid-stream from another goroutine.
type Conn struct {
	inner net.Conn

	mu       sync.Mutex
	cutAfter int64         // guarded by mu; bytes until forced disconnect (<0: unarmed)
	partial  int           // guarded by mu; max bytes per Write (0: unlimited)
	stall    chan struct{} // guarded by mu; non-nil blocks IO until closed
	garbage  []byte        // guarded by mu; bytes prepended to the read stream
}

// Wrap returns a transparent fault wrapper around inner.
func Wrap(inner net.Conn) *Conn {
	return &Conn{inner: inner, cutAfter: -1}
}

// CutAfter arms a mid-line disconnect: after n more written bytes the
// underlying connection closes and writes fail with ErrCut. n=0 cuts on
// the next write.
func (c *Conn) CutAfter(n int64) {
	c.mu.Lock()
	c.cutAfter = n
	c.mu.Unlock()
}

// PartialWrites caps every Write at max bytes, forcing callers through
// short-write handling. max <= 0 removes the cap.
func (c *Conn) PartialWrites(max int) {
	c.mu.Lock()
	c.partial = max
	c.mu.Unlock()
}

// Stall blocks subsequent reads and writes until the returned release
// function is called. Release is idempotent.
func (c *Conn) Stall() (release func()) {
	ch := make(chan struct{})
	c.mu.Lock()
	c.stall = ch
	c.mu.Unlock()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(ch)
			c.mu.Lock()
			if c.stall == ch {
				c.stall = nil
			}
			c.mu.Unlock()
		})
	}
}

// InjectGarbage prepends b to the read stream, as if the peer had sent
// junk bytes before its next real data.
func (c *Conn) InjectGarbage(b []byte) {
	c.mu.Lock()
	c.garbage = append(c.garbage, b...)
	c.mu.Unlock()
}

func (c *Conn) waitStall() {
	c.mu.Lock()
	ch := c.stall
	c.mu.Unlock()
	if ch != nil {
		<-ch
	}
}

// Read implements net.Conn.
func (c *Conn) Read(p []byte) (int, error) {
	c.waitStall()
	c.mu.Lock()
	if len(c.garbage) > 0 {
		n := copy(p, c.garbage)
		c.garbage = c.garbage[n:]
		c.mu.Unlock()
		return n, nil
	}
	c.mu.Unlock()
	return c.inner.Read(p)
}

// Write implements net.Conn, honoring the armed faults: a partial-write
// cap truncates each call, and a cut budget closes the connection
// mid-stream once exhausted.
func (c *Conn) Write(p []byte) (int, error) {
	c.waitStall()
	c.mu.Lock()
	cut := c.cutAfter
	partial := c.partial
	c.mu.Unlock()

	if cut == 0 {
		_ = c.inner.Close()
		return 0, ErrCut
	}
	limit := len(p)
	if cut > 0 && int64(limit) > cut {
		limit = int(cut)
	}
	if partial > 0 && limit > partial {
		limit = partial
	}
	n, err := c.inner.Write(p[:limit])
	if cut > 0 {
		c.mu.Lock()
		c.cutAfter -= int64(n)
		cutNow := c.cutAfter <= 0
		c.mu.Unlock()
		if cutNow {
			_ = c.inner.Close()
			return n, ErrCut
		}
	}
	if err != nil {
		return n, err
	}
	if n < len(p) {
		// A truncated flush surfaces as io.ErrShortWrite (the io.Writer
		// contract: short writes must carry an error), modeling a peer
		// that took part of a line before the path failed.
		return n, io.ErrShortWrite
	}
	return n, nil
}

// Close implements net.Conn.
func (c *Conn) Close() error { return c.inner.Close() }

// LocalAddr implements net.Conn.
func (c *Conn) LocalAddr() net.Addr { return c.inner.LocalAddr() }

// RemoteAddr implements net.Conn.
func (c *Conn) RemoteAddr() net.Addr { return c.inner.RemoteAddr() }

// SetDeadline implements net.Conn.
func (c *Conn) SetDeadline(t time.Time) error { return c.inner.SetDeadline(t) }

// SetReadDeadline implements net.Conn.
func (c *Conn) SetReadDeadline(t time.Time) error { return c.inner.SetReadDeadline(t) }

// SetWriteDeadline implements net.Conn.
func (c *Conn) SetWriteDeadline(t time.Time) error { return c.inner.SetWriteDeadline(t) }

// Listener wraps a net.Listener and fails a scripted number of Accept
// calls before delegating, for accept-backoff tests.
type Listener struct {
	net.Listener

	mu       sync.Mutex
	failures int   // guarded by mu; Accepts left to fail
	err      error // guarded by mu
	accepts  int   // guarded by mu; total Accept calls observed
}

// FailAccepts arms the next n Accept calls to return err.
func (l *Listener) FailAccepts(n int, err error) {
	l.mu.Lock()
	l.failures = n
	l.err = err
	l.mu.Unlock()
}

// Accepts returns the number of Accept calls observed so far.
func (l *Listener) Accepts() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.accepts
}

// Accept implements net.Listener.
func (l *Listener) Accept() (net.Conn, error) {
	l.mu.Lock()
	l.accepts++
	if l.failures > 0 {
		l.failures--
		err := l.err
		l.mu.Unlock()
		return nil, err
	}
	l.mu.Unlock()
	return l.Listener.Accept()
}

// WrapListener returns a fault wrapper around inner.
func WrapListener(inner net.Listener) *Listener {
	return &Listener{Listener: inner}
}
