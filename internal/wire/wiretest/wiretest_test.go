package wiretest

import (
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

func pipePair() (*Conn, net.Conn) {
	a, b := net.Pipe()
	return Wrap(a), b
}

func TestWrapIsTransparent(t *testing.T) {
	fc, peer := pipePair()
	defer fc.Close()
	defer peer.Close()
	go func() { _, _ = fc.Write([]byte("hello")) }()
	buf := make([]byte, 16)
	n, err := peer.Read(buf)
	if err != nil || string(buf[:n]) != "hello" {
		t.Fatalf("read = %q, %v", buf[:n], err)
	}
}

func TestCutAfterSplitsMidWrite(t *testing.T) {
	fc, peer := pipePair()
	defer peer.Close()
	fc.CutAfter(3)
	got := make(chan []byte, 1)
	go func() {
		buf := make([]byte, 16)
		n, _ := peer.Read(buf)
		got <- buf[:n]
	}()
	n, err := fc.Write([]byte("abcdef"))
	if n != 3 || !errors.Is(err, ErrCut) {
		t.Fatalf("write = %d, %v; want 3, ErrCut", n, err)
	}
	if prefix := <-got; string(prefix) != "abc" {
		t.Fatalf("peer saw %q, want %q", prefix, "abc")
	}
	// The connection is dead afterwards.
	if _, err := fc.Write([]byte("more")); !errors.Is(err, ErrCut) {
		t.Fatalf("post-cut write = %v, want ErrCut", err)
	}
}

func TestPartialWritesShortWrite(t *testing.T) {
	fc, peer := pipePair()
	defer fc.Close()
	defer peer.Close()
	fc.PartialWrites(2)
	go func() {
		buf := make([]byte, 16)
		_, _ = io.ReadFull(peer, buf[:2])
	}()
	n, err := fc.Write([]byte("abcd"))
	if n != 2 || !errors.Is(err, io.ErrShortWrite) {
		t.Fatalf("write = %d, %v; want 2, io.ErrShortWrite", n, err)
	}
}

func TestInjectGarbagePrependsToReads(t *testing.T) {
	fc, peer := pipePair()
	defer fc.Close()
	defer peer.Close()
	fc.InjectGarbage([]byte("junk"))
	buf := make([]byte, 4)
	if _, err := io.ReadFull(fc, buf); err != nil || string(buf) != "junk" {
		t.Fatalf("read = %q, %v", buf, err)
	}
	go func() { _, _ = peer.Write([]byte("real")) }()
	if _, err := io.ReadFull(fc, buf); err != nil || string(buf) != "real" {
		t.Fatalf("read = %q, %v", buf, err)
	}
}

func TestStallBlocksUntilRelease(t *testing.T) {
	fc, peer := pipePair()
	defer fc.Close()
	defer peer.Close()
	release := fc.Stall()
	wrote := make(chan struct{})
	go func() {
		_, _ = fc.Write([]byte("x"))
		close(wrote)
	}()
	select {
	case <-wrote:
		t.Fatal("write completed while stalled")
	case <-time.After(20 * time.Millisecond):
	}
	go func() {
		buf := make([]byte, 1)
		_, _ = peer.Read(buf)
	}()
	release()
	release() // idempotent
	select {
	case <-wrote:
	case <-time.After(5 * time.Second):
		t.Fatal("write never completed after release")
	}
}

func TestListenerFailAccepts(t *testing.T) {
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fl := WrapListener(inner)
	defer fl.Close()
	boom := errors.New("boom")
	fl.FailAccepts(2, boom)
	for i := 0; i < 2; i++ {
		if _, err := fl.Accept(); !errors.Is(err, boom) {
			t.Fatalf("accept %d = %v, want boom", i, err)
		}
	}
	// Scripted failures exhausted: Accept delegates to the real listener.
	go func() {
		conn, err := net.Dial("tcp", fl.Addr().String())
		if err == nil {
			_ = conn.Close()
		}
	}()
	conn, err := fl.Accept()
	if err != nil {
		t.Fatalf("accept after failures: %v", err)
	}
	_ = conn.Close()
	if fl.Accepts() != 3 {
		t.Fatalf("accepts = %d, want 3", fl.Accepts())
	}
}
