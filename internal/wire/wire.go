// Package wire runs JURY's out-of-band validator as a real network
// service: controller modules stream responses as JSON lines over TCP, and
// the validator pushes alarms back to every connected client. This is the
// deployment shape of Fig. 2 — the validator on a separate host reachable
// over an out-of-band network — whereas the simulation embeds the
// validator in-process.
package wire

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"github.com/jurysdn/jury/internal/cluster"
	"github.com/jurysdn/jury/internal/core"
	"github.com/jurysdn/jury/internal/simnet"
	"github.com/jurysdn/jury/internal/store"
	"github.com/jurysdn/jury/internal/topo"
)

// MsgType discriminates protocol envelopes.
type MsgType string

// Protocol message types.
const (
	// TypeResponse carries one controller response toward the validator.
	TypeResponse MsgType = "response"
	// TypeResult carries one validation result back to clients.
	TypeResult MsgType = "result"
	// TypeStats carries aggregate counters on request.
	TypeStats MsgType = "stats"
)

// Envelope is one JSON line on the wire.
type Envelope struct {
	Type     MsgType        `json:"type"`
	Response *core.Response `json:"response,omitempty"`
	Result   *core.Result   `json:"result,omitempty"`
	Stats    *Stats         `json:"stats,omitempty"`
}

// Stats summarizes the validator state.
type Stats struct {
	Decided  int64 `json:"decided"`
	Valid    int64 `json:"valid"`
	Faults   int64 `json:"faults"`
	Timeouts int64 `json:"timeouts"`
	Pending  int   `json:"pending"`
}

// ServerConfig parameterizes a validator service.
type ServerConfig struct {
	// Validator carries K, timeout, adaptive settings.
	Validator core.ValidatorConfig
	// Members lists the controller IDs of the deployment; mastership is
	// not tracked over the wire, so sanity checks fall back to "any
	// alive controller" semantics.
	Members []store.NodeID
	// Switches lists known datapaths for the membership map.
	Switches []topo.DPID
	// AlarmsOnly pushes only fault results to clients (default: all
	// results are pushed).
	AlarmsOnly bool
	// Tick is the wall-clock granularity at which validator timers fire
	// (default 5ms).
	Tick time.Duration
	// Clock supplies real time for the tick loop; nil selects the host
	// wall clock. Tests inject a fake clock to drive the service
	// deterministically.
	Clock func() time.Time
}

// Server hosts a validator behind a TCP listener.
type Server struct {
	ln  net.Listener
	cfg ServerConfig

	mu        sync.Mutex
	eng       *simnet.Engine  // guarded by mu
	validator *core.Validator // guarded by mu
	started   time.Time
	conns     map[net.Conn]*json.Encoder // guarded by mu

	stop chan struct{}
	done sync.WaitGroup
}

// Serve starts a validator service on addr ("127.0.0.1:0" for an ephemeral
// port). The returned server owns background goroutines; call Close.
func Serve(addr string, cfg ServerConfig) (*Server, error) {
	if cfg.Tick <= 0 {
		cfg.Tick = 5 * time.Millisecond
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now //jurylint:allow wallclock -- default clock at the real-time boundary
	}
	if len(cfg.Members) == 0 {
		return nil, fmt.Errorf("wire: no cluster members configured")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("wire: listen: %w", err)
	}
	eng := simnet.NewEngine(0)
	members := cluster.NewMembership(cluster.AnyControllerOneMaster, cfg.Members, cfg.Switches)
	s := &Server{
		ln:        ln,
		cfg:       cfg,
		eng:       eng,
		validator: core.NewValidator(eng, members, cfg.Validator),
		started:   cfg.Clock(),
		conns:     make(map[net.Conn]*json.Encoder),
		stop:      make(chan struct{}),
	}
	s.validator.OnResult = s.broadcast //jurylint:allow guardedby -- construction: s is not shared yet
	s.done.Add(2)
	go s.acceptLoop()
	go s.tickLoop()
	return s, nil
}

// Addr returns the listener address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Stats returns a snapshot of the validator counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Decided:  s.validator.Decided(),
		Valid:    s.validator.Valid(),
		Faults:   s.validator.Faults(),
		Timeouts: s.validator.Timeouts(),
		Pending:  s.validator.Pending(),
	}
}

// WriteMetrics renders the validator's metrics registry in Prometheus
// text format under the server lock, serializing the scrape against the
// event loop (the registry wraps distributions the validator mutates, so
// an unlocked scrape would race with decisions). Pass it as the Write
// hook of an obs exposition endpoint.
func (s *Server) WriteMetrics(w io.Writer) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.validator.Metrics().WritePrometheus(w)
}

// Alarms returns the validator's retained alarms.
func (s *Server) Alarms() []core.Result {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.validator.Alarms()
}

// Close stops the service and waits for its goroutines.
func (s *Server) Close() error {
	close(s.stop)
	err := s.ln.Close()
	s.mu.Lock()
	for conn := range s.conns {
		_ = conn.Close()
	}
	s.mu.Unlock()
	s.done.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.done.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.stop:
				return
			default:
				continue
			}
		}
		s.mu.Lock()
		s.conns[conn] = json.NewEncoder(conn)
		s.mu.Unlock()
		s.done.Add(1)
		go s.serveConn(conn)
	}
}

// tickLoop advances the validator's virtual clock with wall time so
// per-trigger timers expire.
func (s *Server) tickLoop() {
	defer s.done.Done()
	ticker := time.NewTicker(s.cfg.Tick) //jurylint:allow wallclock -- real-time service cadence
	defer ticker.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-ticker.C:
			s.mu.Lock()
			s.advance()
			s.mu.Unlock()
		}
	}
}

// advance runs the validator engine up to the current elapsed clock time.
// Run's error is deliberately dropped: ErrStopped and event-budget
// overruns are benign for a live service that ticks again shortly.
//
//jurylint:allow guardedby,errcrit -- runs with s.mu held; see above
func (s *Server) advance() {
	_ = s.eng.Run(s.cfg.Clock().Sub(s.started))
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.done.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		_ = conn.Close()
	}()
	scanner := bufio.NewScanner(conn)
	scanner.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for scanner.Scan() {
		var env Envelope
		if err := json.Unmarshal(scanner.Bytes(), &env); err != nil {
			continue // tolerate malformed lines from misbehaving peers
		}
		switch env.Type {
		case TypeResponse:
			if env.Response == nil {
				continue
			}
			s.mu.Lock()
			s.advance()
			s.validator.Submit(*env.Response)
			s.mu.Unlock()
		case TypeStats:
			st := s.Stats()
			s.mu.Lock()
			if enc, ok := s.conns[conn]; ok {
				_ = enc.Encode(Envelope{Type: TypeStats, Stats: &st})
			}
			s.mu.Unlock()
		}
	}
}

// broadcast pushes a result to every connected client. Runs with s.mu held
// (validator decisions happen inside Submit/tick).
//
//jurylint:allow guardedby -- caller holds s.mu; see above
func (s *Server) broadcast(r core.Result) {
	if s.cfg.AlarmsOnly && r.Verdict != core.VerdictFault {
		return
	}
	env := Envelope{Type: TypeResult, Result: &r}
	for conn, enc := range s.conns {
		if err := enc.Encode(env); err != nil {
			_ = conn.Close()
		}
	}
}

// Client streams responses to a validator service and receives results.
type Client struct {
	conn net.Conn
	enc  *json.Encoder

	// OnResult observes pushed validation results (set before Run).
	OnResult func(core.Result)
	// OnStats observes stats replies.
	OnStats func(Stats)

	done sync.WaitGroup
}

// Dial connects to a validator service.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("wire: dial: %w", err)
	}
	c := &Client{conn: conn, enc: json.NewEncoder(conn)}
	c.done.Add(1)
	go c.readLoop()
	return c, nil
}

// Send streams one response to the validator.
func (c *Client) Send(r core.Response) error {
	return c.enc.Encode(Envelope{Type: TypeResponse, Response: &r})
}

// RequestStats asks the server for a stats snapshot (delivered to OnStats).
func (c *Client) RequestStats() error {
	return c.enc.Encode(Envelope{Type: TypeStats})
}

// Close closes the connection and waits for the reader.
func (c *Client) Close() error {
	err := c.conn.Close()
	c.done.Wait()
	return err
}

func (c *Client) readLoop() {
	defer c.done.Done()
	scanner := bufio.NewScanner(c.conn)
	scanner.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for scanner.Scan() {
		var env Envelope
		if err := json.Unmarshal(scanner.Bytes(), &env); err != nil {
			continue
		}
		switch env.Type {
		case TypeResult:
			if env.Result != nil && c.OnResult != nil {
				c.OnResult(*env.Result)
			}
		case TypeStats:
			if env.Stats != nil && c.OnStats != nil {
				c.OnStats(*env.Stats)
			}
		}
	}
}
