// Package wire runs JURY's out-of-band validator as a real network
// service: controller modules stream responses over TCP, and the
// validator pushes alarms back to every connected client. This is the
// deployment shape of Fig. 2 — the validator on a separate host reachable
// over an out-of-band network — whereas the simulation embeds the
// validator in-process.
//
// Two codecs share the socket, selected per connection by a one-byte
// compat handshake (see Codec): the original newline-delimited JSON
// protocol, and a length-prefixed binary framing (AppendEnvelope /
// BinReader) whose hot path allocates nothing — pooled encode buffers,
// batched write coalescing in the client, and decode that borrows from
// the connection's read buffer. Old JSON-only peers interoperate with
// binary-capable ones with no configuration.
//
// The bridge is built to degrade loudly, never silently, when the network
// misbehaves:
//
//   - Framing is explicit: lines are read through a LineReader (frames
//     through a BinReader) with a configurable MaxLineBytes cap. An
//     oversized or malformed line or frame is rejected and counted (per
//     reason, on the obs registry) without killing the connection;
//     genuine read errors are counted before the connection dies.
//   - The Client reconnects: sends go through a bounded outgoing queue
//     with shed-oldest backpressure and a Dropped() counter, and a single
//     writer goroutine re-dials with exponential backoff and seeded
//     jitter whenever the link drops, so a validator restart mid-run
//     loses at most the bounded backlog — and that loss is visible.
//   - The Server backs off on persistent Accept errors, refuses to leak
//     connections past Close, and reaps half-open peers with
//     TypePing/TypePong heartbeats on idle connections.
//
// Wall-clock reads are confined to annotated boundary code (the default
// ServerConfig.Clock, the default backoff sleeper, and socket write
// deadlines); tests inject clocks, sleepers and dialers so every failure
// schedule is deterministic. Package wiretest provides fault-injecting
// net.Conn wrappers to prove the above under the race detector.
package wire

import (
	"time"

	"github.com/jurysdn/jury/internal/core"
)

// MsgType discriminates protocol envelopes.
type MsgType string

// Protocol message types.
const (
	// TypeResponse carries one controller response toward the validator.
	TypeResponse MsgType = "response"
	// TypeResult carries one validation result back to clients.
	TypeResult MsgType = "result"
	// TypeStats carries aggregate counters on request.
	TypeStats MsgType = "stats"
	// TypePing is a server-initiated heartbeat probe on an idle
	// connection; peers answer with TypePong. Any received line counts
	// as liveness, so a busy connection is never probed.
	TypePing MsgType = "ping"
	// TypePong answers a TypePing.
	TypePong MsgType = "pong"
)

// Envelope is one JSON line on the wire.
type Envelope struct {
	Type     MsgType        `json:"type"`
	Response *core.Response `json:"response,omitempty"`
	Result   *core.Result   `json:"result,omitempty"`
	Stats    *Stats         `json:"stats,omitempty"`
	// Trace carries the sender's span context for cross-process trace
	// stitching. Optional and compat-safe: old peers omit it and ignore
	// it; nothing in the validation path depends on it.
	Trace *TraceContext `json:"trace,omitempty"`
}

// TraceContext is the span context a client stamps on its envelopes so
// the validator can align the two processes' virtual clocks and a
// stitcher (obs.Stitch*) can merge their JSONL traces onto one timeline.
type TraceContext struct {
	// Origin names the sending process ("jurylive"); it becomes the
	// Chrome-trace process row after stitching.
	Origin string `json:"origin"`
	// BaseNS is the sender's virtual clock at send time. The receiver
	// pairs it with its own elapsed time on arrival to estimate the
	// clock-base shift between the two processes (wire.Server.TraceOrigins
	// reports the estimate per origin).
	BaseNS int64 `json:"base_ns"` // vclock:wire -- sender virtual clock at send time
}

// Stats summarizes the validator state.
type Stats struct {
	Decided  int64 `json:"decided"`
	Valid    int64 `json:"valid"`
	Faults   int64 `json:"faults"`
	Timeouts int64 `json:"timeouts"`
	Pending  int   `json:"pending"`
}

// Tunables shared by both ends of the bridge. Zero values in the configs
// select these defaults; negative values disable the knob where
// disabling is meaningful.
const (
	// DefaultMaxLineBytes caps one protocol line (payload, excluding the
	// newline).
	DefaultMaxLineBytes = 1 << 20
	// DefaultHeartbeatEvery is how long a server connection may sit idle
	// before it is probed with a TypePing.
	DefaultHeartbeatEvery = 15 * time.Second
	// DefaultIdleTimeout is how long a server connection may sit idle
	// (no lines received, pings unanswered) before it is reaped.
	DefaultIdleTimeout = 60 * time.Second
	// DefaultWriteTimeout bounds one result/ping/stats write so a
	// stalled peer cannot wedge the event loop.
	DefaultWriteTimeout = 10 * time.Second
	// DefaultQueueSize is the client's bounded outgoing queue length.
	DefaultQueueSize = 1024
	// DefaultReconnectBase seeds the client's redial backoff.
	DefaultReconnectBase = 50 * time.Millisecond
	// DefaultReconnectMax caps the client's redial backoff.
	DefaultReconnectMax = 5 * time.Second

	// acceptBackoffBase/Max bound the server's Accept-error backoff
	// (e.g. EMFILE storms must not peg a core).
	acceptBackoffBase = 5 * time.Millisecond
	acceptBackoffMax  = time.Second
)

// sleepFunc waits for d or until cancel closes; it reports false when
// cancelled. Both Server and Client take one so tests can collapse every
// backoff schedule to zero wall time while recording it.
type sleepFunc func(d time.Duration, cancel <-chan struct{}) bool

// defaultSleep is the real-time sleeper.
func defaultSleep(d time.Duration, cancel <-chan struct{}) bool {
	t := time.NewTimer(d) //jurylint:allow wallclock -- real-time backoff boundary
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-cancel:
		return false
	}
}
