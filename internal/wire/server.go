package wire

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"github.com/jurysdn/jury/internal/cluster"
	"github.com/jurysdn/jury/internal/core"
	"github.com/jurysdn/jury/internal/obs"
	"github.com/jurysdn/jury/internal/simnet"
	"github.com/jurysdn/jury/internal/store"
	"github.com/jurysdn/jury/internal/topo"
)

// ServerConfig parameterizes a validator service.
type ServerConfig struct {
	// Validator carries K, timeout, adaptive settings.
	Validator core.ValidatorConfig
	// Members lists the controller IDs of the deployment; mastership is
	// not tracked over the wire, so sanity checks fall back to "any
	// alive controller" semantics.
	Members []store.NodeID
	// Switches lists known datapaths for the membership map.
	Switches []topo.DPID
	// AlarmsOnly pushes only fault results to clients (default: all
	// results are pushed).
	AlarmsOnly bool
	// Tick is the wall-clock granularity at which validator timers fire
	// (default 5ms).
	Tick time.Duration
	// Clock supplies real time for the tick loop and heartbeat
	// bookkeeping; nil selects the host wall clock. Tests inject a fake
	// clock to drive the service deterministically.
	Clock func() time.Time

	// MaxLineBytes caps one protocol line (default DefaultMaxLineBytes).
	// Oversized lines are rejected and counted without killing the
	// connection.
	MaxLineBytes int
	// HeartbeatEvery probes idle connections with TypePing (default
	// DefaultHeartbeatEvery; negative disables heartbeats and reaping).
	HeartbeatEvery time.Duration
	// IdleTimeout reaps connections idle past this horizon — half-open
	// TCP peers that answer no pings (default DefaultIdleTimeout;
	// negative disables reaping).
	IdleTimeout time.Duration
	// WriteTimeout bounds one push write so a stalled peer cannot wedge
	// the event loop (default DefaultWriteTimeout; negative disables).
	WriteTimeout time.Duration
	// Metrics is the registry for the connection-lifecycle metric
	// families (jury_wire_*); nil shares the validator's registry, so
	// juryd's /metrics page carries them with no extra wiring.
	Metrics *obs.Registry
	// Sleep waits between Accept retries; nil selects the real-time
	// sleeper. Tests inject one to pin the backoff schedule.
	Sleep func(d time.Duration, cancel <-chan struct{}) bool
}

func (cfg *ServerConfig) fillDefaults() {
	if cfg.Tick <= 0 {
		cfg.Tick = 5 * time.Millisecond
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now //jurylint:allow wallclock -- default clock at the real-time boundary
	}
	if cfg.MaxLineBytes == 0 {
		cfg.MaxLineBytes = DefaultMaxLineBytes
	}
	if cfg.HeartbeatEvery == 0 {
		cfg.HeartbeatEvery = DefaultHeartbeatEvery
	}
	if cfg.IdleTimeout == 0 {
		cfg.IdleTimeout = DefaultIdleTimeout
	}
	if cfg.WriteTimeout == 0 {
		cfg.WriteTimeout = DefaultWriteTimeout
	}
	if cfg.Sleep == nil {
		cfg.Sleep = defaultSleep
	}
}

// serverMetrics are the connection-lifecycle families the server
// publishes. Counters and gauges are atomics, so the exposition
// goroutine can scrape them while connections churn.
type serverMetrics struct {
	open          *obs.Gauge
	accepted      *obs.Counter
	acceptErrors  *obs.Counter
	responses     *obs.Counter
	oversized     *obs.Counter
	malformed     *obs.Counter
	readErrors    *obs.Counter
	pushErrors    *obs.Counter
	reapedIdle    *obs.Counter
	pingsSent     *obs.Counter
	pongsReceived *obs.Counter
}

func newServerMetrics(reg *obs.Registry) *serverMetrics {
	lineErr := func(reason string) *obs.Counter {
		return reg.Counter("jury_wire_line_errors_total",
			"Protocol lines rejected or connections lost, by reason.",
			obs.L("reason", reason))
	}
	return &serverMetrics{
		open: reg.Gauge("jury_wire_conns_open",
			"Client connections currently registered."),
		accepted: reg.Counter("jury_wire_conns_accepted_total",
			"Client connections accepted."),
		acceptErrors: reg.Counter("jury_wire_accept_errors_total",
			"Accept failures (backed off, never hot-spun)."),
		responses: reg.Counter("jury_wire_responses_total",
			"Controller responses received over the wire."),
		oversized:  lineErr("oversize"),
		malformed:  lineErr("malformed"),
		readErrors: lineErr("read"),
		pushErrors: reg.Counter("jury_wire_push_errors_total",
			"Result/ping/stats writes that failed and dropped the connection."),
		reapedIdle: reg.Counter("jury_wire_conns_reaped_idle_total",
			"Half-open connections reaped by the idle-timeout heartbeat."),
		pingsSent: reg.Counter("jury_wire_pings_sent_total",
			"Heartbeat pings sent to idle connections."),
		pongsReceived: reg.Counter("jury_wire_pongs_received_total",
			"Heartbeat pongs received."),
	}
}

// srvConn is one registered client connection.
type srvConn struct {
	conn net.Conn
	enc  *json.Encoder
	// lastSeen is the clock reading of the last received line; lastPing
	// is when the last heartbeat probe went out. Both are protected by
	// the server's mu.
	lastSeen time.Time // guarded by mu
	lastPing time.Time // guarded by mu
}

// Server hosts a validator behind a TCP listener.
type Server struct {
	ln  net.Listener
	cfg ServerConfig
	m   *serverMetrics

	mu        sync.Mutex
	eng       *simnet.Engine  // guarded by mu
	validator *core.Validator // guarded by mu
	started   time.Time
	conns     map[net.Conn]*srvConn // guarded by mu
	closed    bool                  // guarded by mu

	stop      chan struct{}
	closeOnce sync.Once
	done      sync.WaitGroup
}

// Serve starts a validator service on addr ("127.0.0.1:0" for an ephemeral
// port). The returned server owns background goroutines; call Close.
func Serve(addr string, cfg ServerConfig) (*Server, error) {
	if len(cfg.Members) == 0 {
		return nil, fmt.Errorf("wire: no cluster members configured")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("wire: listen: %w", err)
	}
	return ServeListener(ln, cfg)
}

// ServeListener starts a validator service on an existing listener,
// taking ownership of it. Tests use it to inject fault-wrapped
// listeners.
func ServeListener(ln net.Listener, cfg ServerConfig) (*Server, error) {
	cfg.fillDefaults()
	if len(cfg.Members) == 0 {
		return nil, fmt.Errorf("wire: no cluster members configured")
	}
	eng := simnet.NewEngine(0)
	members := cluster.NewMembership(cluster.AnyControllerOneMaster, cfg.Members, cfg.Switches)
	s := &Server{
		ln:        ln,
		cfg:       cfg,
		eng:       eng,
		validator: core.NewValidator(eng, members, cfg.Validator),
		started:   cfg.Clock(),
		conns:     make(map[net.Conn]*srvConn),
		stop:      make(chan struct{}),
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = s.validator.Metrics()
	}
	s.m = newServerMetrics(reg)
	s.validator.OnResult = s.broadcast
	s.done.Add(2)
	go s.acceptLoop()
	go s.tickLoop()
	return s, nil
}

// Addr returns the listener address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Stats returns a snapshot of the validator counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Decided:  s.validator.Decided(),
		Valid:    s.validator.Valid(),
		Faults:   s.validator.Faults(),
		Timeouts: s.validator.Timeouts(),
		Pending:  s.validator.Pending(),
	}
}

// WriteMetrics renders the validator's metrics registry in Prometheus
// text format under the server lock, serializing the scrape against the
// event loop (the registry wraps distributions the validator mutates, so
// an unlocked scrape would race with decisions). Pass it as the Write
// hook of an obs exposition endpoint. When ServerConfig.Metrics was nil,
// the page includes the jury_wire_* connection-lifecycle families.
func (s *Server) WriteMetrics(w io.Writer) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.validator.Metrics().WritePrometheus(w)
}

// Alarms returns the validator's retained alarms.
func (s *Server) Alarms() []core.Result {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.validator.Alarms()
}

// Close stops the service and waits for its goroutines. Safe to call
// more than once. The closed flag flips under mu before the connection
// sweep, so a connection accepted concurrently can never be registered
// after the sweep and leak a blocked reader past Close.
func (s *Server) Close() error {
	var err error
	s.closeOnce.Do(func() {
		s.mu.Lock()
		s.closed = true
		conns := make([]net.Conn, 0, len(s.conns))
		for conn := range s.conns {
			conns = append(conns, conn)
		}
		s.mu.Unlock()
		close(s.stop)
		err = s.ln.Close()
		for _, conn := range conns {
			_ = conn.Close()
		}
		s.done.Wait()
	})
	return err
}

// acceptLoop accepts connections until the listener closes. Persistent
// Accept errors (EMFILE, ENFILE, ECONNABORTED storms) back off on a
// capped exponential schedule that resets on the next success, instead
// of hot-spinning on a core.
func (s *Server) acceptLoop() {
	defer s.done.Done()
	bo := NewBackoff(acceptBackoffBase, acceptBackoffMax, 1)
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.stop:
				return
			default:
			}
			if errors.Is(err, net.ErrClosed) {
				return
			}
			s.m.acceptErrors.Inc()
			if !s.cfg.Sleep(bo.Next(), s.stop) {
				return
			}
			continue
		}
		bo.Reset()
		sc := &srvConn{conn: conn, enc: json.NewEncoder(conn)}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		now := s.cfg.Clock()
		sc.lastSeen = now
		sc.lastPing = now
		s.conns[conn] = sc
		s.mu.Unlock()
		s.m.accepted.Inc()
		s.m.open.Add(1)
		s.done.Add(1)
		go s.serveConn(sc)
	}
}

// tickLoop advances the validator's virtual clock with wall time so
// per-trigger timers expire, and runs the heartbeat sweep.
func (s *Server) tickLoop() {
	defer s.done.Done()
	ticker := time.NewTicker(s.cfg.Tick) //jurylint:allow wallclock -- real-time service cadence
	defer ticker.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-ticker.C:
			s.mu.Lock()
			s.advance()
			s.heartbeatSweep()
			s.mu.Unlock()
		}
	}
}

// advance runs the validator engine up to the current elapsed clock time.
// Run's error is deliberately dropped: ErrStopped and event-budget
// overruns are benign for a live service that ticks again shortly.
// Every call site holds s.mu (proven by the guardedby call graph).
//
//jurylint:allow errcrit -- benign Run errors for a live service; see above
func (s *Server) advance() {
	_ = s.eng.Run(s.cfg.Clock().Sub(s.started))
}

// heartbeatSweep pings idle connections and reaps half-open peers whose
// idle time passed IdleTimeout (a dead TCP peer never answers, so its
// lastSeen stops moving). Runs with s.mu held from the tick loop.
func (s *Server) heartbeatSweep() {
	if s.cfg.HeartbeatEvery <= 0 {
		return
	}
	now := s.cfg.Clock()
	for conn, sc := range s.conns {
		idle := now.Sub(sc.lastSeen)
		if s.cfg.IdleTimeout > 0 && idle >= s.cfg.IdleTimeout {
			s.m.reapedIdle.Inc()
			s.dropConnLocked(conn)
			continue
		}
		if idle >= s.cfg.HeartbeatEvery && now.Sub(sc.lastPing) >= s.cfg.HeartbeatEvery {
			sc.lastPing = now
			s.m.pingsSent.Inc()
			s.pushLocked(conn, sc, Envelope{Type: TypePing})
		}
	}
}

// pushLocked encodes one envelope to a registered connection under a
// write deadline; a failed or timed-out write drops the connection. Runs
// with s.mu held.
func (s *Server) pushLocked(conn net.Conn, sc *srvConn, env Envelope) {
	armWriteDeadline(conn, s.cfg.WriteTimeout)
	if err := sc.enc.Encode(env); err != nil {
		s.m.pushErrors.Inc()
		s.dropConnLocked(conn)
	}
}

// dropConnLocked closes and unregisters one connection. Runs with s.mu
// held; the connection's reader observes the close and exits.
func (s *Server) dropConnLocked(conn net.Conn) {
	if _, ok := s.conns[conn]; !ok {
		return
	}
	delete(s.conns, conn)
	s.m.open.Add(-1)
	_ = conn.Close()
}

// serveConn reads protocol lines until the connection dies. Framing and
// decode failures are counted per reason and never silent: an oversized
// line is skipped, a malformed line is tolerated, and a genuine read
// error surfaces in jury_wire_line_errors_total{reason="read"} before
// the connection is torn down.
func (s *Server) serveConn(sc *srvConn) {
	defer s.done.Done()
	defer func() {
		s.mu.Lock()
		s.dropConnLocked(sc.conn)
		s.mu.Unlock()
	}()
	lr := NewLineReader(sc.conn, s.cfg.MaxLineBytes)
	for {
		line, err := lr.ReadLine()
		if err != nil {
			switch {
			case errors.Is(err, ErrLineTooLong):
				s.m.oversized.Inc()
				s.touch(sc)
				continue
			case errors.Is(err, io.EOF), errors.Is(err, net.ErrClosed):
				return // clean close, or dropped by Close/sweep
			default:
				s.m.readErrors.Inc()
				return
			}
		}
		s.touch(sc)
		if len(line) == 0 {
			continue
		}
		var env Envelope
		if err := json.Unmarshal(line, &env); err != nil {
			s.m.malformed.Inc()
			continue // tolerate malformed lines from misbehaving peers
		}
		switch env.Type {
		case TypeResponse:
			if env.Response == nil {
				continue
			}
			s.m.responses.Inc()
			s.mu.Lock()
			s.advance()
			s.validator.Submit(*env.Response)
			s.mu.Unlock()
		case TypeStats:
			st := s.Stats()
			s.mu.Lock()
			if cur, ok := s.conns[sc.conn]; ok {
				s.pushLocked(sc.conn, cur, Envelope{Type: TypeStats, Stats: &st})
			}
			s.mu.Unlock()
		case TypePing:
			s.mu.Lock()
			if cur, ok := s.conns[sc.conn]; ok {
				s.pushLocked(sc.conn, cur, Envelope{Type: TypePong})
			}
			s.mu.Unlock()
		case TypePong:
			s.m.pongsReceived.Inc()
		}
	}
}

// touch records liveness for the heartbeat sweep.
func (s *Server) touch(sc *srvConn) {
	s.mu.Lock()
	sc.lastSeen = s.cfg.Clock()
	s.mu.Unlock()
}

// broadcast pushes a result to every connected client; a client whose
// write fails is dropped from the registry so later broadcasts stop
// encoding to a dead peer. Installed as the validator's OnResult hook, so
// no call graph can prove its entry lock-set (validator decisions happen
// inside Submit/tick, under s.mu).
//
//jurylint:holds mu -- invoked via OnResult from Submit/advance under s.mu
func (s *Server) broadcast(r core.Result) {
	if s.cfg.AlarmsOnly && r.Verdict != core.VerdictFault {
		return
	}
	env := Envelope{Type: TypeResult, Result: &r}
	for conn, sc := range s.conns {
		s.pushLocked(conn, sc, env)
	}
}

// armWriteDeadline bounds the next write on conn. Socket deadlines are
// kernel-absolute, so this is a real-time boundary even when the service
// clock is injected.
//
//jurylint:allow wallclock -- socket deadlines are inherently wall-clock
func armWriteDeadline(conn net.Conn, d time.Duration) {
	if d > 0 {
		_ = conn.SetWriteDeadline(time.Now().Add(d))
	}
}
