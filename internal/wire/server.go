package wire

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"time"

	"github.com/jurysdn/jury/internal/cluster"
	"github.com/jurysdn/jury/internal/core"
	"github.com/jurysdn/jury/internal/obs"
	"github.com/jurysdn/jury/internal/shard"
	"github.com/jurysdn/jury/internal/simnet"
	"github.com/jurysdn/jury/internal/store"
	"github.com/jurysdn/jury/internal/topo"
)

// ServerConfig parameterizes a validator service.
type ServerConfig struct {
	// Codec is the service's codec stance. CodecAuto (the default)
	// mirrors each connection's first byte — a BinMagic handshake
	// switches that connection to binary frames, anything else keeps
	// JSON lines — so old JSON-only clients interoperate with no
	// configuration. CodecJSON is strict: a binary handshake is refused
	// and counted (jury_wire_line_errors_total{reason="codec"}).
	// CodecBinary additionally speaks binary on pushes that race ahead
	// of a peer's first byte (heartbeats to a silent client); JSON peers
	// are still mirrored once they speak.
	Codec Codec
	// Validator carries K, timeout, adaptive settings.
	Validator core.ValidatorConfig
	// Members lists the controller IDs of the deployment; mastership is
	// not tracked over the wire, so sanity checks fall back to "any
	// alive controller" semantics.
	Members []store.NodeID
	// Switches lists known datapaths for the membership map.
	Switches []topo.DPID
	// AlarmsOnly pushes only fault results to clients (default: all
	// results are pushed).
	AlarmsOnly bool
	// Shards runs the validator as a parallel shard plane
	// (internal/shard) with this many worker goroutines, responses
	// dispatched by FNV over the trigger taint ID. Zero or one keeps the
	// single engine+validator under the server lock — today's behavior.
	// The plane cannot carry a per-trigger span tracer (the obs tracer is
	// single-goroutine by contract), so Shards > 1 with Validator.Tracer
	// set is rejected at Serve time rather than silently dropping spans.
	Shards int
	// QueueDepth bounds each shard's intake queue (default
	// shard.DefaultQueueDepth); only meaningful with Shards > 1.
	// Deployments tune it through ValidatorServiceConfig.QueueDepth
	// (juryd -queue-depth).
	QueueDepth int
	// Tick is the wall-clock granularity at which validator timers fire
	// (default 5ms).
	Tick time.Duration
	// Clock supplies real time for the tick loop and heartbeat
	// bookkeeping; nil selects the host wall clock. Tests inject a fake
	// clock to drive the service deterministically.
	Clock func() time.Time

	// MaxLineBytes caps one protocol line (default DefaultMaxLineBytes).
	// Oversized lines are rejected and counted without killing the
	// connection.
	MaxLineBytes int
	// HeartbeatEvery probes idle connections with TypePing (default
	// DefaultHeartbeatEvery; negative disables heartbeats and reaping).
	HeartbeatEvery time.Duration
	// IdleTimeout reaps connections idle past this horizon — half-open
	// TCP peers that answer no pings (default DefaultIdleTimeout;
	// negative disables reaping).
	IdleTimeout time.Duration
	// WriteTimeout bounds one push write so a stalled peer cannot wedge
	// the event loop (default DefaultWriteTimeout; negative disables).
	WriteTimeout time.Duration
	// Tracing arms a per-trigger span tracer on the service's virtual
	// clock; the trace is read back with WriteTrace. Only the single
	// engine+validator mode can trace (the obs tracer is single-goroutine
	// by contract), so Tracing with Shards > 1 is rejected at Serve time.
	Tracing bool
	// FlightRing, when positive, arms a flight recorder of that capacity
	// on the validator (per-shard rings when Shards > 1): the last N
	// trigger lifecycle events are always on hand, and a fault verdict
	// dumps them to OnFlightDump. FlightSnapshot reads the ring on demand
	// (juryd's shutdown dump and -flight-dump flag).
	FlightRing int
	// OnFlightDump receives each dump-on-alarm flight snapshot (merged
	// oldest-first) with the reason that fired it. Calls are serialized
	// and rate-limited to one dump per newly recorded event. The hook
	// must not call back into the server.
	OnFlightDump func(reason string, events []obs.Event)
	// Metrics is the registry for the connection-lifecycle metric
	// families (jury_wire_*); nil shares the validator's registry, so
	// juryd's /metrics page carries them with no extra wiring.
	Metrics *obs.Registry
	// Sleep waits between Accept retries; nil selects the real-time
	// sleeper. Tests inject one to pin the backoff schedule.
	Sleep func(d time.Duration, cancel <-chan struct{}) bool
}

func (cfg *ServerConfig) fillDefaults() {
	if cfg.Tick <= 0 {
		cfg.Tick = 5 * time.Millisecond
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now //jurylint:allow wallclock -- default clock at the real-time boundary
	}
	if cfg.MaxLineBytes == 0 {
		cfg.MaxLineBytes = DefaultMaxLineBytes
	}
	if cfg.HeartbeatEvery == 0 {
		cfg.HeartbeatEvery = DefaultHeartbeatEvery
	}
	if cfg.IdleTimeout == 0 {
		cfg.IdleTimeout = DefaultIdleTimeout
	}
	if cfg.WriteTimeout == 0 {
		cfg.WriteTimeout = DefaultWriteTimeout
	}
	if cfg.Sleep == nil {
		cfg.Sleep = defaultSleep
	}
}

// serverMetrics are the connection-lifecycle families the server
// publishes. Counters and gauges are atomics, so the exposition
// goroutine can scrape them while connections churn.
type serverMetrics struct {
	open          *obs.Gauge
	accepted      *obs.Counter
	acceptErrors  *obs.Counter
	responses     *obs.Counter
	oversized     *obs.Counter
	malformed     *obs.Counter
	readErrors    *obs.Counter
	codecRejected *obs.Counter
	pushErrors    *obs.Counter
	reapedIdle    *obs.Counter
	pingsSent     *obs.Counter
	pongsReceived *obs.Counter
}

func newServerMetrics(reg *obs.Registry) *serverMetrics {
	lineErr := func(reason string) *obs.Counter {
		return reg.Counter("jury_wire_line_errors_total",
			"Protocol lines rejected or connections lost, by reason.",
			obs.L("reason", reason))
	}
	return &serverMetrics{
		open: reg.Gauge("jury_wire_conns_open",
			"Client connections currently registered."),
		accepted: reg.Counter("jury_wire_conns_accepted_total",
			"Client connections accepted."),
		acceptErrors: reg.Counter("jury_wire_accept_errors_total",
			"Accept failures (backed off, never hot-spun)."),
		responses: reg.Counter("jury_wire_responses_total",
			"Controller responses received over the wire."),
		oversized:     lineErr("oversize"),
		malformed:     lineErr("malformed"),
		readErrors:    lineErr("read"),
		codecRejected: lineErr("codec"),
		pushErrors: reg.Counter("jury_wire_push_errors_total",
			"Result/ping/stats writes that failed and dropped the connection."),
		reapedIdle: reg.Counter("jury_wire_conns_reaped_idle_total",
			"Half-open connections reaped by the idle-timeout heartbeat."),
		pingsSent: reg.Counter("jury_wire_pings_sent_total",
			"Heartbeat pings sent to idle connections."),
		pongsReceived: reg.Counter("jury_wire_pongs_received_total",
			"Heartbeat pongs received."),
	}
}

// srvConn is one registered client connection.
type srvConn struct {
	conn net.Conn
	enc  *json.Encoder
	// codec is the connection's resolved wire encoding. It starts from
	// the server's stance (binary only under CodecBinary) and is
	// overwritten by the codec the peer's first byte announces, so
	// pushes always mirror what the client speaks once it has spoken.
	codec Codec // guarded by connsMu
	// wbuf is the binary push scratch, reused across pushes so the
	// steady-state encode path allocates nothing.
	wbuf []byte // guarded by connsMu
	// lastSeen is the clock reading of the last received line; lastPing
	// is when the last heartbeat probe went out. Both are protected by
	// the server's connsMu.
	lastSeen time.Time // guarded by connsMu
	lastPing time.Time // guarded by connsMu
}

// Server hosts a validator behind a TCP listener.
//
// Two locks split the server. mu serializes the dispatch side: the
// engine/validator calls, and the plane's Submit/Advance (whose contract
// requires one dispatcher). connsMu guards the connection registry and
// every socket write, including the result broadcast. The only permitted
// nesting is mu → connsMu (a single-engine validator decides inside
// Submit and broadcasts synchronously); connsMu holders never dispatch
// into the plane and only do deadline-bounded work. That asymmetry is
// load-bearing: a shard worker delivering a result must not wait on mu,
// because the dispatcher may hold mu while blocked on that same worker's
// full intake queue (backpressure) — broadcast under mu would deadlock
// the whole server.
type Server struct {
	ln  net.Listener
	cfg ServerConfig
	m   *serverMetrics

	mu        sync.Mutex
	eng       *simnet.Engine  // guarded by mu
	validator *core.Validator // guarded by mu
	// tracer is the single-engine mode's span tracer (nil unless
	// ServerConfig.Tracing); single-goroutine, so every touch is under mu.
	tracer *obs.Tracer // guarded by mu
	// traceShifts maps each client origin to the estimated clock-base
	// shift (receiver elapsed − sender BaseNS at first sight), the ShiftNS
	// obs.Stitch needs to align that origin's trace onto this server's
	// timeline.
	traceShifts map[string]int64 // guarded by mu
	// rec is the single-engine mode's flight recorder (nil unless
	// ServerConfig.FlightRing > 0; the plane owns its own rings instead).
	// The recorder is internally locked, so snapshots need no mu.
	rec *obs.Recorder

	// dumpMu guards dumpSeen, the recorded-event total at the last
	// dump-on-alarm — the same rate limiter the shard plane uses.
	dumpMu   sync.Mutex
	dumpSeen uint64
	// plane replaces eng+validator when cfg.Shards > 1. The pointer is
	// immutable after construction; its dispatch calls (Submit/Advance)
	// still run under mu because the plane's dispatch side must be
	// serialized, while its stats side is lock-free by contract.
	plane   *shard.Plane
	started time.Time

	connsMu sync.Mutex
	conns   map[net.Conn]*srvConn // guarded by connsMu
	closed  bool                  // guarded by connsMu

	stop      chan struct{}
	closeOnce sync.Once
	done      sync.WaitGroup
}

// Serve starts a validator service on addr ("127.0.0.1:0" for an ephemeral
// port). The returned server owns background goroutines; call Close.
func Serve(addr string, cfg ServerConfig) (*Server, error) {
	if len(cfg.Members) == 0 {
		return nil, fmt.Errorf("wire: no cluster members configured")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("wire: listen: %w", err)
	}
	return ServeListener(ln, cfg)
}

// ServeListener starts a validator service on an existing listener,
// taking ownership of it. Tests use it to inject fault-wrapped
// listeners.
func ServeListener(ln net.Listener, cfg ServerConfig) (*Server, error) {
	cfg.fillDefaults()
	if len(cfg.Members) == 0 {
		return nil, fmt.Errorf("wire: no cluster members configured")
	}
	members := cluster.NewMembership(cluster.AnyControllerOneMaster, cfg.Members, cfg.Switches)
	var (
		eng       *simnet.Engine
		validator *core.Validator
		plane     *shard.Plane
		reg       *obs.Registry
	)
	var tracer *obs.Tracer
	var rec *obs.Recorder
	if cfg.Shards > 1 {
		if cfg.Validator.Tracer != nil || cfg.Tracing {
			_ = ln.Close()
			return nil, fmt.Errorf("wire: per-trigger tracing is single-goroutine and cannot cross the shard plane; unset Validator.Tracer/Tracing or run with Shards <= 1")
		}
		var err error
		plane, err = shard.New(shard.Config{
			Shards:       cfg.Shards,
			QueueDepth:   cfg.QueueDepth,
			Validator:    cfg.Validator,
			Members:      members,
			Metrics:      cfg.Metrics,
			FlightRing:   cfg.FlightRing,
			OnFlightDump: cfg.OnFlightDump,
		})
		if err != nil {
			_ = ln.Close()
			return nil, fmt.Errorf("wire: shard plane: %w", err)
		}
		reg = plane.Metrics()
	} else {
		eng = simnet.NewEngine(0)
		if cfg.Tracing && cfg.Validator.Tracer == nil {
			cfg.Validator.Tracer = obs.NewTracer(eng.Now)
		}
		tracer = cfg.Validator.Tracer
		if cfg.FlightRing > 0 {
			rec = obs.NewRecorder(cfg.FlightRing)
			cfg.Validator.Recorder = rec
		}
		validator = core.NewValidator(eng, members, cfg.Validator)
		reg = cfg.Metrics
		if reg == nil {
			reg = validator.Metrics()
		}
		tracer.InstrumentMetrics(reg)
	}
	s := &Server{
		ln:          ln,
		cfg:         cfg,
		eng:         eng,
		validator:   validator,
		tracer:      tracer,
		rec:         rec,
		traceShifts: make(map[string]int64),
		plane:       plane,
		started:     cfg.Clock(),
		conns:       make(map[net.Conn]*srvConn),
		stop:        make(chan struct{}),
	}
	s.m = newServerMetrics(reg)
	// broadcast takes only connsMu, never mu: plane decisions land on
	// worker goroutines, and a worker waiting on the dispatch lock while
	// the dispatcher holds it blocked on that worker's full intake queue
	// would freeze the server permanently.
	if plane != nil {
		plane.SetOnResult(s.broadcast)
	} else {
		validator.OnResult = s.broadcast
	}
	s.done.Add(2)
	go s.acceptLoop()
	go s.tickLoop()
	return s, nil
}

// Addr returns the listener address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Stats returns a snapshot of the validator counters.
func (s *Server) Stats() Stats {
	if s.plane != nil {
		// Plane stats are atomic aggregates; no lock needed.
		return Stats{
			Decided:  s.plane.Decided(),
			Valid:    s.plane.Valid(),
			Faults:   s.plane.Faults(),
			Timeouts: s.plane.Timeouts(),
			Pending:  s.plane.Pending(),
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Decided:  s.validator.Decided(),
		Valid:    s.validator.Valid(),
		Faults:   s.validator.Faults(),
		Timeouts: s.validator.Timeouts(),
		Pending:  s.validator.Pending(),
	}
}

// WriteMetrics renders the validator's metrics registry in Prometheus
// text format under the server lock, serializing the scrape against the
// event loop (the registry wraps distributions the validator mutates, so
// an unlocked scrape would race with decisions). Pass it as the Write
// hook of an obs exposition endpoint. When ServerConfig.Metrics was nil,
// the page includes the jury_wire_* connection-lifecycle families.
func (s *Server) WriteMetrics(w io.Writer) error {
	if s.plane != nil {
		// The plane's families are atomics and gauge funcs over atomics;
		// the scrape needs no serialization against the workers.
		return s.plane.Metrics().WritePrometheus(w)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.validator.Metrics().WritePrometheus(w)
}

// TraceOrigins returns the estimated clock-base shift for every client
// origin that has stamped a TraceContext, keyed by origin name. Feed a
// shift as StitchInput.ShiftNS to align that origin's JSONL trace onto
// this server's timeline.
func (s *Server) TraceOrigins() map[string]int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]int64, len(s.traceShifts))
	for k, v := range s.traceShifts {
		out[k] = v
	}
	return out
}

// WriteTrace writes the service's span trace as JSONL (the obs.Stitch
// input format), serialized against the event loop. Errors unless the
// server was started with Tracing (or an injected Validator.Tracer).
func (s *Server) WriteTrace(w io.Writer) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.tracer == nil {
		return fmt.Errorf("wire: server has no tracer; start it with ServerConfig.Tracing")
	}
	return s.tracer.WriteJSONL(w)
}

// FlightSnapshot returns the flight recorder's merged ring (oldest
// first), or nil when ServerConfig.FlightRing was zero. Safe from any
// goroutine.
func (s *Server) FlightSnapshot() []obs.Event {
	if s.plane != nil {
		return s.plane.FlightSnapshot()
	}
	return s.rec.Snapshot()
}

// Alarms returns the validator's retained alarms.
func (s *Server) Alarms() []core.Result {
	if s.plane != nil {
		return s.plane.Alarms() // merged immutable snapshots; lock-free
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.validator.Alarms()
}

// Close stops the service and waits for its goroutines. Safe to call
// more than once. The closed flag flips under connsMu before the
// connection sweep, so a connection accepted concurrently can never be
// registered after the sweep and leak a blocked reader past Close.
func (s *Server) Close() error {
	var err error
	s.closeOnce.Do(func() {
		s.connsMu.Lock()
		s.closed = true
		conns := make([]net.Conn, 0, len(s.conns))
		for conn := range s.conns {
			conns = append(conns, conn)
		}
		s.connsMu.Unlock()
		close(s.stop)
		err = s.ln.Close()
		for _, conn := range conns {
			_ = conn.Close()
		}
		s.done.Wait()
		if s.plane != nil {
			// All dispatchers (reader goroutines, tick loop) are gone;
			// this is the plane's final serialized dispatch call.
			s.plane.Close()
		}
	})
	return err
}

// acceptLoop accepts connections until the listener closes. Persistent
// Accept errors (EMFILE, ENFILE, ECONNABORTED storms) back off on a
// capped exponential schedule that resets on the next success, instead
// of hot-spinning on a core.
func (s *Server) acceptLoop() {
	defer s.done.Done()
	bo := NewBackoff(acceptBackoffBase, acceptBackoffMax, 1)
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.stop:
				return
			default:
			}
			if errors.Is(err, net.ErrClosed) {
				return
			}
			s.m.acceptErrors.Inc()
			if !s.cfg.Sleep(bo.Next(), s.stop) {
				return
			}
			continue
		}
		bo.Reset()
		sc := &srvConn{conn: conn, enc: json.NewEncoder(conn), codec: s.preHandshakeCodec()}
		s.connsMu.Lock()
		if s.closed {
			s.connsMu.Unlock()
			_ = conn.Close()
			return
		}
		now := s.cfg.Clock()
		sc.lastSeen = now
		sc.lastPing = now
		s.conns[conn] = sc
		s.connsMu.Unlock()
		s.m.accepted.Inc()
		s.m.open.Add(1)
		s.done.Add(1)
		go s.serveConn(sc)
	}
}

// tickLoop advances the validator's virtual clock with wall time so
// per-trigger timers expire, and runs the heartbeat sweep.
func (s *Server) tickLoop() {
	defer s.done.Done()
	ticker := time.NewTicker(s.cfg.Tick) //jurylint:allow wallclock -- real-time service cadence
	defer ticker.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-ticker.C:
			s.mu.Lock()
			s.advance()
			s.mu.Unlock()
			s.connsMu.Lock()
			s.heartbeatSweep()
			s.connsMu.Unlock()
		}
	}
}

// advance runs the validator engine up to the current elapsed clock time.
// Run's error is deliberately dropped: ErrStopped and event-budget
// overruns are benign for a live service that ticks again shortly.
// Every call site holds s.mu (proven by the guardedby call graph).
//
//jurylint:allow errcrit -- benign Run errors for a live service; see above
func (s *Server) advance() {
	elapsed := s.cfg.Clock().Sub(s.started)
	if s.plane != nil {
		s.plane.Advance(elapsed)
		return
	}
	_ = s.eng.Run(elapsed)
}

// heartbeatSweep pings idle connections and reaps half-open peers whose
// idle time passed IdleTimeout (a dead TCP peer never answers, so its
// lastSeen stops moving). Runs with s.connsMu held from the tick loop.
func (s *Server) heartbeatSweep() {
	if s.cfg.HeartbeatEvery <= 0 {
		return
	}
	now := s.cfg.Clock()
	for conn, sc := range s.conns {
		idle := now.Sub(sc.lastSeen)
		if s.cfg.IdleTimeout > 0 && idle >= s.cfg.IdleTimeout {
			s.m.reapedIdle.Inc()
			s.dropConnLocked(conn)
			continue
		}
		if idle >= s.cfg.HeartbeatEvery && now.Sub(sc.lastPing) >= s.cfg.HeartbeatEvery {
			sc.lastPing = now
			s.m.pingsSent.Inc()
			s.pushLocked(conn, sc, Envelope{Type: TypePing})
		}
	}
}

// preHandshakeCodec is the codec a fresh connection is pushed with
// before its first byte resolves what it actually speaks: JSON unless
// the server is configured binary-first.
func (s *Server) preHandshakeCodec() Codec {
	if s.cfg.Codec == CodecBinary {
		return CodecBinary
	}
	return CodecJSON
}

// pushLocked encodes one envelope to a registered connection under a
// write deadline, in the connection's resolved codec; a failed or
// timed-out write drops the connection. Runs with s.connsMu held.
func (s *Server) pushLocked(conn net.Conn, sc *srvConn, env Envelope) {
	armWriteDeadline(conn, s.cfg.WriteTimeout)
	var err error
	if sc.codec == CodecBinary {
		sc.wbuf = AppendEnvelope(sc.wbuf[:0], &env)
		_, err = conn.Write(sc.wbuf)
	} else {
		err = sc.enc.Encode(env)
	}
	if err != nil {
		s.m.pushErrors.Inc()
		s.dropConnLocked(conn)
	}
}

// dropConnLocked closes and unregisters one connection. Runs with
// s.connsMu held; the connection's reader observes the close and exits.
func (s *Server) dropConnLocked(conn net.Conn) {
	if _, ok := s.conns[conn]; !ok {
		return
	}
	delete(s.conns, conn)
	s.m.open.Add(-1)
	_ = conn.Close()
}

// serveConn resolves the connection's codec from its first byte (the
// compat handshake: BinMagic announces binary frames, anything else is a
// JSON line) and reads protocol envelopes until the connection dies.
// Framing and decode failures are counted per reason and never silent:
// an oversized line or frame is skipped, a malformed one is tolerated,
// and a genuine read error surfaces in
// jury_wire_line_errors_total{reason="read"} before the connection is
// torn down.
func (s *Server) serveConn(sc *srvConn) {
	defer s.done.Done()
	defer func() {
		s.connsMu.Lock()
		s.dropConnLocked(sc.conn)
		s.connsMu.Unlock()
	}()
	br := bufio.NewReaderSize(sc.conn, 64*1024)
	first, err := br.Peek(1)
	if err != nil {
		if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
			s.m.readErrors.Inc()
		}
		return
	}
	if first[0] == BinMagic {
		if s.cfg.Codec == CodecJSON {
			// A strict-JSON deployment refuses the binary handshake
			// loudly instead of scanning frames as garbled lines.
			s.m.codecRejected.Inc()
			return
		}
		_, _ = br.Discard(1)
		s.setConnCodec(sc, CodecBinary)
		s.serveFrames(sc, br)
		return
	}
	s.setConnCodec(sc, CodecJSON)
	s.serveLines(sc, br)
}

// setConnCodec records the codec the peer's first byte announced, so
// pushes mirror it from here on.
func (s *Server) setConnCodec(sc *srvConn, codec Codec) {
	s.connsMu.Lock()
	sc.codec = codec
	s.connsMu.Unlock()
}

// serveLines is the JSON read side: newline-delimited envelopes.
func (s *Server) serveLines(sc *srvConn, r *bufio.Reader) {
	lr := NewLineReader(r, s.cfg.MaxLineBytes)
	for {
		line, err := lr.ReadLine()
		if err != nil {
			switch {
			case errors.Is(err, ErrLineTooLong):
				s.m.oversized.Inc()
				s.touch(sc)
				continue
			case errors.Is(err, io.EOF), errors.Is(err, net.ErrClosed):
				return // clean close, or dropped by Close/sweep
			default:
				s.m.readErrors.Inc()
				return
			}
		}
		s.touch(sc)
		if len(line) == 0 {
			continue
		}
		var env Envelope
		if err := json.Unmarshal(line, &env); err != nil {
			s.m.malformed.Inc()
			continue // tolerate malformed lines from misbehaving peers
		}
		s.handleEnvelope(sc, &env, false)
	}
}

// serveFrames is the binary read side: length-prefixed frames decoded
// into borrowed envelopes (BinDecoder's ownership contract — anything
// the dispatch retains is cloned in handleEnvelope).
func (s *Server) serveFrames(sc *srvConn, r *bufio.Reader) {
	br := NewBinReader(r, s.cfg.MaxLineBytes)
	for {
		env, err := br.ReadEnvelope()
		if err != nil {
			switch {
			case errors.Is(err, ErrFrameTooLong):
				s.m.oversized.Inc()
				s.touch(sc)
				continue
			case errors.Is(err, ErrMalformedFrame):
				s.m.malformed.Inc()
				s.touch(sc)
				continue
			case errors.Is(err, io.EOF), errors.Is(err, net.ErrClosed):
				return
			default:
				s.m.readErrors.Inc()
				return
			}
		}
		s.touch(sc)
		s.handleEnvelope(sc, env, true)
	}
}

// handleEnvelope dispatches one received envelope. borrowed marks
// envelopes whose strings alias the binary reader's frame buffer: the
// validator retains submitted responses and the shift map retains origin
// keys, so those are deep-copied before crossing the borrow window.
func (s *Server) handleEnvelope(sc *srvConn, env *Envelope, borrowed bool) {
	switch env.Type {
	case TypeResponse:
		if env.Response == nil {
			return
		}
		s.m.responses.Inc()
		resp := *env.Response
		if borrowed {
			resp = CloneResponse(resp)
		}
		s.mu.Lock()
		s.advance()
		if tc := env.Trace; tc != nil && tc.Origin != "" {
			// First sight of an origin fixes its clock-base shift:
			// our elapsed time minus the sender's virtual clock at
			// send time. One sample suffices — both clocks advance
			// at the same rate, only their bases differ.
			if _, ok := s.traceShifts[tc.Origin]; !ok {
				elapsed := s.cfg.Clock().Sub(s.started)
				s.traceShifts[strings.Clone(tc.Origin)] = int64(elapsed) - tc.BaseNS
			}
		}
		if s.plane != nil {
			s.plane.Submit(resp)
		} else {
			s.validator.Submit(resp)
		}
		s.mu.Unlock()
	case TypeStats:
		st := s.Stats()
		s.connsMu.Lock()
		if cur, ok := s.conns[sc.conn]; ok {
			s.pushLocked(sc.conn, cur, Envelope{Type: TypeStats, Stats: &st})
		}
		s.connsMu.Unlock()
	case TypePing:
		s.connsMu.Lock()
		if cur, ok := s.conns[sc.conn]; ok {
			s.pushLocked(sc.conn, cur, Envelope{Type: TypePong})
		}
		s.connsMu.Unlock()
	case TypePong:
		s.m.pongsReceived.Inc()
	}
}

// touch records liveness for the heartbeat sweep.
func (s *Server) touch(sc *srvConn) {
	s.connsMu.Lock()
	sc.lastSeen = s.cfg.Clock()
	s.connsMu.Unlock()
}

// broadcast pushes a result to every connected client; a client whose
// write fails is dropped from the registry so later broadcasts stop
// encoding to a dead peer. It is the result hook of both modes: a
// single-engine validator invokes it synchronously inside Submit/advance
// (mu held — the permitted mu → connsMu nesting), the shard plane
// invokes it from worker goroutines with no server lock held. It takes
// only connsMu and never calls into the dispatch side, so a worker
// delivering a result cannot deadlock against a dispatcher blocked on
// that worker's full intake queue.
func (s *Server) broadcast(r core.Result) {
	if r.Verdict == core.VerdictFault && s.rec != nil && s.cfg.OnFlightDump != nil {
		// Single-engine dump-on-alarm (the plane runs its own). Reading
		// the ring takes only the recorder's internal lock, so this holds
		// no server lock and cannot deadlock either mode.
		s.dumpMu.Lock()
		if total := s.rec.Total(); total != s.dumpSeen {
			s.dumpSeen = total
			s.cfg.OnFlightDump("verdict:"+r.Fault.String(), s.rec.Snapshot())
		}
		s.dumpMu.Unlock()
	}
	if s.cfg.AlarmsOnly && r.Verdict != core.VerdictFault {
		return
	}
	env := Envelope{Type: TypeResult, Result: &r}
	s.connsMu.Lock()
	defer s.connsMu.Unlock()
	for conn, sc := range s.conns {
		s.pushLocked(conn, sc, env)
	}
}

// armWriteDeadline bounds the next write on conn. Socket deadlines are
// kernel-absolute, so this is a real-time boundary even when the service
// clock is injected.
//
//jurylint:allow wallclock -- socket deadlines are inherently wall-clock
func armWriteDeadline(conn net.Conn, d time.Duration) {
	if d > 0 {
		_ = conn.SetWriteDeadline(time.Now().Add(d))
	}
}
