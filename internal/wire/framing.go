package wire

import (
	"bufio"
	"bytes"
	"errors"
	"io"
)

// ErrLineTooLong reports a protocol line whose payload exceeded the
// reader's MaxLineBytes cap. The oversized line is consumed, so the
// stream stays usable: callers count the error and keep reading.
var ErrLineTooLong = errors.New("wire: line exceeds MaxLineBytes")

// LineReader frames newline-delimited protocol lines with an explicit
// size cap. It replaces the bare bufio.Scanner loop whose buffer
// overflow (or any read error) silently ended the stream: here every
// failure surfaces as a distinct error per call.
//
//   - A line within the cap is returned with its trailing newline (and
//     optional carriage return) stripped.
//   - A line over the cap is discarded up to its newline and reported as
//     ErrLineTooLong; the next call continues with the following line.
//   - A final unterminated line at EOF is returned as a normal line; the
//     next call reports io.EOF.
type LineReader struct {
	r   *bufio.Reader
	max int
}

// NewLineReader frames r with a max payload of max bytes per line
// (excluding the line terminator). max <= 0 selects DefaultMaxLineBytes.
// An r that is already an adequately sized *bufio.Reader is used
// directly (the codec handshake peeks through one) rather than
// double-buffered.
func NewLineReader(r io.Reader, max int) *LineReader {
	if max <= 0 {
		max = DefaultMaxLineBytes
	}
	size := 64 * 1024
	if max < size {
		size = max + 1
	}
	if size < 16 {
		size = 16
	}
	if br, ok := r.(*bufio.Reader); ok && br.Size() >= size {
		return &LineReader{r: br, max: max}
	}
	return &LineReader{r: bufio.NewReaderSize(r, size), max: max}
}

// ReadLine returns the next line. Errors are per line, not per stream:
// after ErrLineTooLong the reader is positioned at the next line.
func (lr *LineReader) ReadLine() ([]byte, error) {
	var line []byte
	for {
		chunk, err := lr.r.ReadSlice('\n')
		line = append(line, chunk...)
		switch {
		case err == nil:
			if len(trimEOL(line)) > lr.max {
				return nil, ErrLineTooLong
			}
			return trimEOL(line), nil
		case errors.Is(err, bufio.ErrBufferFull):
			if len(line) > lr.max {
				return nil, lr.discardRest()
			}
		case errors.Is(err, io.EOF) && len(line) > 0:
			// Final unterminated line: deliver it; EOF surfaces on the
			// next call.
			if len(trimEOL(line)) > lr.max {
				return nil, ErrLineTooLong
			}
			return trimEOL(line), nil
		default:
			return nil, err
		}
	}
}

// discardRest consumes the remainder of an oversized line so the next
// ReadLine starts cleanly, then reports ErrLineTooLong. A read error
// while discarding is deferred to the next call.
func (lr *LineReader) discardRest() error {
	for {
		_, err := lr.r.ReadSlice('\n')
		switch {
		case err == nil, errors.Is(err, io.EOF):
			return ErrLineTooLong
		case errors.Is(err, bufio.ErrBufferFull):
			continue
		default:
			return ErrLineTooLong
		}
	}
}

// trimEOL strips one trailing "\n" or "\r\n".
func trimEOL(line []byte) []byte {
	line = bytes.TrimSuffix(line, []byte("\n"))
	return bytes.TrimSuffix(line, []byte("\r"))
}
