package wire

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/jurysdn/jury/internal/core"
	"github.com/jurysdn/jury/internal/obs"
	"github.com/jurysdn/jury/internal/store"
	"github.com/jurysdn/jury/internal/topo"
	"github.com/jurysdn/jury/internal/trigger"
)

func newServer(t *testing.T, timeout time.Duration) *Server {
	t.Helper()
	s, err := Serve("127.0.0.1:0", ServerConfig{
		Validator: core.ValidatorConfig{K: 2, Timeout: timeout},
		Members:   []store.NodeID{1, 2, 3},
		Switches:  []topo.DPID{1},
		Tick:      time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })
	return s
}

func resp(ctrl store.NodeID, trig string, kind core.ResponseKind, tainted bool, value string) core.Response {
	return core.Response{
		Controller:  ctrl,
		Primary:     1,
		Trigger:     trigger.ID(trig),
		Kind:        kind,
		Tainted:     tainted,
		Cache:       store.LinksDB,
		Op:          store.OpCreate,
		Key:         "k",
		Value:       value,
		StateDigest: 7,
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("condition not met within deadline")
}

func TestServerValidatesOverTCP(t *testing.T) {
	s := newServer(t, 500*time.Millisecond)
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var (
		mu      sync.Mutex
		results []core.Result
	)
	c.OnResult = func(r core.Result) {
		mu.Lock()
		results = append(results, r)
		mu.Unlock()
	}
	// A clean external trigger: primary cache write + 2 agreeing execs.
	if err := c.Send(resp(1, "τ1", core.CacheUpdate, false, "up")); err != nil {
		t.Fatal(err)
	}
	if err := c.Send(resp(2, "τ1", core.SecondaryExec, true, "up")); err != nil {
		t.Fatal(err)
	}
	if err := c.Send(resp(3, "τ1", core.SecondaryExec, true, "up")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(results) == 1
	})
	mu.Lock()
	defer mu.Unlock()
	if results[0].Verdict != core.VerdictValid {
		t.Fatalf("verdict = %v", results[0].Verdict)
	}
}

func TestServerDetectsFaultOverTCP(t *testing.T) {
	s := newServer(t, 500*time.Millisecond)
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var (
		mu    sync.Mutex
		fault *core.Result
	)
	c.OnResult = func(r core.Result) {
		if r.Verdict == core.VerdictFault {
			mu.Lock()
			fault = &r
			mu.Unlock()
		}
	}
	// Primary disagrees with two same-state secondaries.
	_ = c.Send(resp(1, "τ2", core.CacheUpdate, false, "down"))
	_ = c.Send(resp(2, "τ2", core.SecondaryExec, true, "up"))
	_ = c.Send(resp(3, "τ2", core.SecondaryExec, true, "up"))
	waitFor(t, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return fault != nil
	})
	mu.Lock()
	defer mu.Unlock()
	if fault.Fault != core.FaultValue || fault.Offender != 1 {
		t.Fatalf("fault = %+v", fault)
	}
	if len(s.Alarms()) != 1 {
		t.Fatalf("server alarms = %d", len(s.Alarms()))
	}
}

func TestServerTimerExpiryOverWallClock(t *testing.T) {
	s := newServer(t, 30*time.Millisecond)
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Internal trigger decides only at timer expiry, driven by the
	// wall-clock tick loop.
	_ = c.Send(resp(1, "τ3", core.CacheUpdate, false, "up"))
	waitFor(t, func() bool { return s.Stats().Decided == 1 })
	if s.Stats().Timeouts != 1 {
		t.Fatalf("timeouts = %d", s.Stats().Timeouts)
	}
}

func TestStatsRequest(t *testing.T) {
	s := newServer(t, 100*time.Millisecond)
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var (
		mu  sync.Mutex
		got *Stats
	)
	c.OnStats = func(st Stats) {
		mu.Lock()
		got = &st
		mu.Unlock()
	}
	if err := c.RequestStats(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return got != nil
	})
}

func TestServerToleratesGarbageLines(t *testing.T) {
	s := newServer(t, 100*time.Millisecond)
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.mu.Lock()
	conn := c.conn
	c.mu.Unlock()
	if _, err := conn.Write([]byte("this is not json\n{\"type\":\"bogus\"}\n")); err != nil {
		t.Fatal(err)
	}
	// Still functional afterwards.
	_ = c.Send(resp(1, "τ4", core.CacheUpdate, false, "up"))
	waitFor(t, func() bool { return s.Stats().Decided >= 1 })
}

func TestMultipleClients(t *testing.T) {
	s := newServer(t, 400*time.Millisecond)
	c1, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	c2, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	var (
		mu       sync.Mutex
		received int
	)
	count := func(core.Result) {
		mu.Lock()
		received++
		mu.Unlock()
	}
	c1.OnResult = count
	c2.OnResult = count
	// Responses split across clients (modules on different hosts).
	_ = c1.Send(resp(1, "τ5", core.CacheUpdate, false, "up"))
	_ = c2.Send(resp(2, "τ5", core.SecondaryExec, true, "up"))
	_ = c1.Send(resp(3, "τ5", core.SecondaryExec, true, "up"))
	waitFor(t, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return received == 2 // broadcast to both clients
	})
}

func TestServeRejectsEmptyMembership(t *testing.T) {
	if _, err := Serve("127.0.0.1:0", ServerConfig{}); err == nil {
		t.Fatal("expected error")
	}
}

// TestServerWithInjectedClock freezes the service clock: a pending
// trigger must not time out on wall time, then must time out as soon as
// the injected clock jumps past the validation timeout.
func TestServerWithInjectedClock(t *testing.T) {
	var (
		mu   sync.Mutex
		fake = time.Unix(5000, 0)
	)
	clock := func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return fake
	}
	s, err := Serve("127.0.0.1:0", ServerConfig{
		Validator: core.ValidatorConfig{K: 2, Timeout: 50 * time.Millisecond},
		Members:   []store.NodeID{1, 2, 3},
		Switches:  []topo.DPID{1},
		Tick:      time.Millisecond,
		Clock:     clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// One lonely primary response: with a live clock this would time out
	// after 50ms; with the clock frozen it must stay pending.
	if err := c.Send(resp(1, "τf", core.CacheUpdate, false, "up")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return s.Stats().Pending == 1 })
	time.Sleep(100 * time.Millisecond) // far beyond the 50ms timeout
	if st := s.Stats(); st.Timeouts != 0 || st.Pending != 1 {
		t.Fatalf("frozen clock still produced decisions: %+v", st)
	}

	mu.Lock()
	fake = fake.Add(time.Second)
	mu.Unlock()
	waitFor(t, func() bool { return s.Stats().Timeouts == 1 })
}

// TestServerShardPlaneBroadcastUnderBackpressure is the regression test
// for the plane-mode broadcast deadlock: with depth-1 shard queues, a
// connected client receiving every result, and a sustained submit
// stream, workers deliver results while the dispatcher is blocked on
// their full intake queues. Result delivery must never wait on the
// dispatch lock — under the old locking (broadcast re-acquiring s.mu
// from worker goroutines) this test wedged the server permanently.
func TestServerShardPlaneBroadcastUnderBackpressure(t *testing.T) {
	s, err := Serve("127.0.0.1:0", ServerConfig{
		Validator:  core.ValidatorConfig{K: 2, Timeout: 500 * time.Millisecond},
		Members:    []store.NodeID{1, 2, 3},
		Switches:   []topo.DPID{1},
		Tick:       time.Millisecond,
		Shards:     2,
		QueueDepth: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var (
		rmu     sync.Mutex
		results int
	)
	c.OnResult = func(core.Result) {
		rmu.Lock()
		results++
		rmu.Unlock()
	}
	const triggers = 200
	for i := 0; i < triggers; i++ {
		trig := fmt.Sprintf("τ%d", i)
		if err := c.Send(resp(1, trig, core.CacheUpdate, false, "up")); err != nil {
			t.Fatal(err)
		}
		if err := c.Send(resp(2, trig, core.SecondaryExec, true, "up")); err != nil {
			t.Fatal(err)
		}
		if err := c.Send(resp(3, trig, core.SecondaryExec, true, "up")); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, func() bool {
		rmu.Lock()
		defer rmu.Unlock()
		return results == triggers
	})
	if st := s.Stats(); st.Decided != triggers || st.Valid != triggers {
		t.Fatalf("stats = %+v, want %d valid decisions", st, triggers)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close after backpressure load: %v", err)
	}
}

// TestServeRejectsTracerWithShardPlane pins the tracing limitation as an
// explicit configuration error: the per-trigger span tracer is
// single-goroutine and cannot cross the shard plane, so enabling both
// must fail loudly instead of silently dropping spans.
func TestServeRejectsTracerWithShardPlane(t *testing.T) {
	_, err := Serve("127.0.0.1:0", ServerConfig{
		Validator: core.ValidatorConfig{
			K:       2,
			Timeout: 100 * time.Millisecond,
			Tracer:  obs.NewTracer(func() time.Duration { return 0 }),
		},
		Members:  []store.NodeID{1, 2, 3},
		Switches: []topo.DPID{1},
		Shards:   2,
	})
	if err == nil {
		t.Fatal("Serve accepted Tracer together with Shards > 1")
	}
}
