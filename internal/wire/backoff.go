package wire

import (
	"math/rand"
	"time"
)

// Backoff produces a capped exponential retry schedule with jitter from
// an explicitly seeded RNG, so a given seed always yields the same
// schedule (the wallclock rule: no global RNG, no hidden entropy). Not
// safe for concurrent use; each retry loop owns one.
type Backoff struct {
	// Base is the first delay envelope; Max caps the envelope.
	Base, Max time.Duration

	rng *rand.Rand
	cur time.Duration
}

// NewBackoff returns a schedule that starts at base, doubles up to max,
// and jitters every delay uniformly within [envelope/2, envelope].
func NewBackoff(base, max time.Duration, seed int64) *Backoff {
	if base <= 0 {
		base = time.Millisecond
	}
	if max < base {
		max = base
	}
	return &Backoff{
		Base: base,
		Max:  max,
		rng:  rand.New(rand.NewSource(seed)),
		cur:  base,
	}
}

// Next returns the next delay and advances the schedule.
func (b *Backoff) Next() time.Duration {
	env := b.cur
	if b.cur < b.Max/2 {
		b.cur *= 2
	} else {
		b.cur = b.Max
	}
	half := env / 2
	return half + time.Duration(b.rng.Int63n(int64(env-half)+1))
}

// Reset returns the schedule to its base envelope after a success.
func (b *Backoff) Reset() { b.cur = b.Base }
