package analysis

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/golden.txt from current output")

// TestDriverGolden runs the full default suite over the seeded mini
// module and compares the formatted driver output against the golden
// file, pinning both the diagnostics and their file:line rendering.
func TestDriverGolden(t *testing.T) {
	root, err := filepath.Abs(fixtureDir("golden"))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := LoadModule(root)
	if err != nil {
		t.Fatalf("load golden module: %v", err)
	}
	diags := RunAnalyzers(pkgs, DefaultSuite("example.com/golden"))
	got := Format(root, diags)

	goldenPath := filepath.Join("testdata", "golden.txt")
	if *updateGolden {
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden file (run `go test -run Golden -update ./internal/analysis` to create it): %v", err)
	}
	if got != string(want) {
		t.Errorf("driver output mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestRepoIsLintClean asserts the real module passes its own suite: the
// tier-1 verify gate (`go run ./cmd/jurylint ./...`) must exit 0.
func TestRepoIsLintClean(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	modPath, err := ModulePath(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := LoadModule(root)
	if err != nil {
		t.Fatalf("load module: %v", err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("loader found only %d packages; module discovery is broken", len(pkgs))
	}
	diags := RunAnalyzers(pkgs, DefaultSuite(modPath))
	for _, d := range diags {
		t.Errorf("repo not lint-clean: %s", d)
	}
}
