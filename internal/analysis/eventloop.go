package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// NewEventloop returns the analyzer that keeps single-threaded
// event-handler packages inside the simnet contract: all model code runs
// as callbacks on one engine goroutine, so spawning goroutines, touching
// channels, or taking sync locks inside those packages either breaks
// determinism or hides a design error. Real-time bridge packages
// (ofconn, wire) are intentionally outside this list.
func NewEventloop(packages []string) *Analyzer {
	return &Analyzer{
		Name:     "eventloop",
		Doc:      "forbids goroutines, channel operations and sync locking in single-threaded event-loop packages",
		Packages: packages,
		Run:      runEventloop,
	}
}

func runEventloop(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				pass.Reportf(n.Pos(), "goroutine spawned in single-threaded event-loop package; schedule an engine event instead")
			case *ast.SendStmt:
				pass.Reportf(n.Pos(), "channel send in single-threaded event-loop package")
			case *ast.UnaryExpr:
				if n.Op == token.ARROW {
					pass.Reportf(n.Pos(), "channel receive in single-threaded event-loop package")
				}
			case *ast.SelectStmt:
				pass.Reportf(n.Pos(), "select statement in single-threaded event-loop package")
			case *ast.RangeStmt:
				if tv, ok := pass.Info.Types[n.X]; ok {
					if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
						pass.Reportf(n.Pos(), "range over channel in single-threaded event-loop package")
					}
				}
			case *ast.CallExpr:
				reportEventloopCall(pass, n)
			case *ast.SelectorExpr:
				if obj, ok := pass.Info.Uses[n.Sel]; ok && obj.Pkg() != nil {
					path := obj.Pkg().Path()
					if path == "sync" || strings.HasPrefix(path, "sync/") {
						pass.Reportf(n.Pos(), "use of %s.%s in single-threaded event-loop package; the engine serializes all model code",
							path, obj.Name())
					}
				}
			}
			return true
		})
	}
}

func reportEventloopCall(pass *Pass, call *ast.CallExpr) {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return
	}
	if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); !isBuiltin {
		return
	}
	switch id.Name {
	case "make":
		if len(call.Args) > 0 {
			if _, ok := call.Args[0].(*ast.ChanType); ok {
				pass.Reportf(call.Pos(), "channel created in single-threaded event-loop package")
			}
		}
	case "close":
		if len(call.Args) == 1 {
			if tv, ok := pass.Info.Types[call.Args[0]]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					pass.Reportf(call.Pos(), "channel closed in single-threaded event-loop package")
				}
			}
		}
	}
}
