package analysis

import "testing"

func TestGuardedByFixture(t *testing.T) {
	runFixture(t, fixtureDir("guardedby", "guardfix"), "guardfix",
		NewGuardedBy(nil))
}
