package analysis

import "testing"

func TestVClockLeakFixture(t *testing.T) {
	runFixture(t, fixtureDir("vclockleak", "vclockfix"), "vclockfix",
		NewVClockLeak(nil, VClockConfig{
			Sources: []string{"(*vclockfix.Engine).Now"},
		}))
}
