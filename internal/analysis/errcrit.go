package analysis

import (
	"go/ast"
	"go/types"
)

// NewErrCrit returns the analyzer that flags discarded error returns
// from critical APIs — engine runs, REST installs, validator wire paths —
// where a swallowed error silently invalidates an experiment. critical
// lists fully qualified function names as produced by
// (*types.Func).FullName on the generic origin, e.g.
//
//	(*github.com/jurysdn/jury/internal/simnet.Engine).Run
//	(*github.com/jurysdn/jury/internal/sweep.Sweep[P, R]).Run
//	github.com/jurysdn/jury/internal/openflow.WriteMessage
//
// Methods on instantiated generic types render their FullName with the
// concrete type arguments filled in, so matching goes through
// (*types.Func).Origin to recover the `[P, R]` form above.
//
// Both bare call statements and blank-identifier assignments (`_ = f()`)
// count as discards; deliberate best-effort call sites carry a
// //jurylint:allow errcrit annotation with a justification.
func NewErrCrit(critical []string) *Analyzer {
	set := make(map[string]bool, len(critical))
	for _, name := range critical {
		set[name] = true
	}
	return &Analyzer{
		Name: "errcrit",
		Doc:  "flags discarded error returns from critical engine/store/validator APIs",
		Run:  func(pass *Pass) { runErrCrit(pass, set) },
	}
}

func runErrCrit(pass *Pass, critical map[string]bool) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					checkDiscard(pass, critical, call)
				}
			case *ast.AssignStmt:
				// `_ = f()` or `a, _ := f()` with the error position blank.
				if len(n.Rhs) != 1 {
					return true
				}
				call, ok := n.Rhs[0].(*ast.CallExpr)
				if !ok || len(n.Lhs) == 0 {
					return true
				}
				if isBlank(n.Lhs[len(n.Lhs)-1]) {
					checkDiscard(pass, critical, call)
				}
			}
			return true
		})
	}
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

func checkDiscard(pass *Pass, critical map[string]bool, call *ast.CallExpr) {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return
	}
	fn, ok := pass.Info.Uses[id].(*types.Func)
	if !ok {
		return
	}
	fn = fn.Origin()
	if !critical[fn.FullName()] {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || !lastResultIsError(sig) {
		return
	}
	pass.Reportf(call.Pos(), "error returned by %s is discarded; handle it or annotate the deliberate discard", fn.FullName())
}

func lastResultIsError(sig *types.Signature) bool {
	res := sig.Results()
	if res.Len() == 0 {
		return false
	}
	named, ok := res.At(res.Len() - 1).Type().(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}
