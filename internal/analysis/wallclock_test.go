package analysis

import "testing"

func TestWallclockFixture(t *testing.T) {
	runFixture(t, fixtureDir("wallclock", "simfix"), "simfix",
		NewWallclock([]string{"simfix"}))
}

// TestWallclockScope checks the analyzer stays silent on packages outside
// its configured list even when they read the wall clock.
func TestWallclockScope(t *testing.T) {
	pkg, err := LoadDir(fixtureDir("wallclock", "simfix"), "simfix")
	if err != nil {
		t.Fatal(err)
	}
	diags := RunAnalyzers([]*Package{pkg}, []*Analyzer{NewWallclock([]string{"othername"})})
	if len(diags) != 0 {
		t.Fatalf("analyzer scoped to other packages reported %d diagnostics: %v", len(diags), diags)
	}
}
