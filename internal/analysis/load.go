package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package of the module under
// analysis.
type Package struct {
	Path  string // import path
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// FindModuleRoot walks upward from dir to the nearest directory holding a
// go.mod file.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("analysis: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// ModulePath reads the module path from root/go.mod.
func ModulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("analysis: no module directive in %s/go.mod", root)
}

// LoadModule parses and type-checks every non-test package under the
// module rooted at root. Test files are skipped: the contract applies to
// model and bridge code, and tests legitimately use wall time, goroutines
// and ad-hoc randomness. Imports inside the module resolve to the freshly
// checked packages; everything else resolves through the standard
// library's offline source importer.
func LoadModule(root string) ([]*Package, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := ModulePath(root)
	if err != nil {
		return nil, err
	}

	dirs, err := packageDirs(root)
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	var pkgs []*parsedPkg
	byPath := make(map[string]*parsedPkg)
	for _, dir := range dirs {
		files, err := parseDir(fset, dir)
		if err != nil {
			return nil, err
		}
		if len(files) == 0 {
			continue
		}
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return nil, err
		}
		path := modPath
		if rel != "." {
			path = modPath + "/" + filepath.ToSlash(rel)
		}
		p := &parsedPkg{path: path, dir: dir, files: files}
		for _, f := range files {
			for _, imp := range f.Imports {
				ip := strings.Trim(imp.Path.Value, `"`)
				if ip == modPath || strings.HasPrefix(ip, modPath+"/") {
					p.imports = append(p.imports, ip)
				}
			}
		}
		pkgs = append(pkgs, p)
		byPath[path] = p
	}

	order, err := topoSort(pkgs, byPath)
	if err != nil {
		return nil, err
	}

	imp := &moduleImporter{
		mod: make(map[string]*types.Package),
		std: importer.ForCompiler(fset, "source", nil),
	}
	conf := types.Config{Importer: imp, FakeImportC: true}
	var out []*Package
	for _, p := range order {
		info := newInfo()
		tpkg, err := conf.Check(p.path, fset, p.files, info)
		if err != nil {
			return nil, fmt.Errorf("analysis: type-check %s: %w", p.path, err)
		}
		imp.mod[p.path] = tpkg
		out = append(out, &Package{
			Path:  p.path,
			Dir:   p.dir,
			Fset:  fset,
			Files: p.files,
			Types: tpkg,
			Info:  info,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// LoadDir parses and type-checks a single directory as a standalone
// package under the given import path. Used by fixture tests.
func LoadDir(dir, path string) (*Package, error) {
	fset := token.NewFileSet()
	files, err := parseDir(fset, dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	conf := types.Config{
		Importer:    importer.ForCompiler(fset, "source", nil),
		FakeImportC: true,
	}
	info := newInfo()
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-check %s: %w", path, err)
	}
	return &Package{Path: path, Dir: dir, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
}

// packageDirs lists directories under root that hold non-test Go files,
// skipping vendor, testdata and hidden/underscore directories.
func packageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "vendor" || name == "testdata" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		entries, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range entries {
			if !e.IsDir() && isSourceFile(e.Name()) {
				dirs = append(dirs, path)
				break
			}
		}
		return nil
	})
	return dirs, err
}

func isSourceFile(name string) bool {
	return strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go")
}

func parseDir(fset *token.FileSet, dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !isSourceFile(e.Name()) {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// parsedPkg is a package that has been parsed but not yet type-checked.
type parsedPkg struct {
	path    string
	dir     string
	files   []*ast.File
	imports []string // module-internal imports only
}

// topoSort orders packages so every module-internal import is checked
// before its importers.
func topoSort(pkgs []*parsedPkg, byPath map[string]*parsedPkg) ([]*parsedPkg, error) {
	const (
		unvisited = 0
		visiting  = 1
		done      = 2
	)
	state := make(map[string]int)
	var order []*parsedPkg
	var visit func(p *parsedPkg) error
	visit = func(p *parsedPkg) error {
		switch state[p.path] {
		case done:
			return nil
		case visiting:
			return fmt.Errorf("analysis: import cycle through %s", p.path)
		}
		state[p.path] = visiting
		for _, ip := range p.imports {
			if dep, ok := byPath[ip]; ok {
				if err := visit(dep); err != nil {
					return err
				}
			}
		}
		state[p.path] = done
		order = append(order, p)
		return nil
	}
	// Deterministic traversal order.
	sorted := append([]*parsedPkg(nil), pkgs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].path < sorted[j].path })
	for _, p := range sorted {
		if err := visit(p); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// moduleImporter resolves module-internal imports from already checked
// packages and defers everything else to the offline source importer.
type moduleImporter struct {
	mod map[string]*types.Package
	std types.Importer
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := m.mod[path]; ok {
		return pkg, nil
	}
	return m.std.Import(path)
}
