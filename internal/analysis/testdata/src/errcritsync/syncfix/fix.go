// Package syncfix seeds errcritsync drift in both directions: an
// exported error-returning API that is in neither the curated nor the
// waived list, and a curated entry that matches no API.
package syncfix

import "errors"

// criticalList stands in for the CriticalAPIs declaration in suite.go:
// the fixture config anchors stale-entry diagnostics here. The entry
// "syncfix.Gone" matches nothing and must be reported as stale.
var criticalList = []string{ // want errcritsync "entry syncfix.Gone matches no exported error-returning API"
	"(*syncfix.Engine).Run",
	"syncfix.Gone",
}

// Engine mimics an audited engine type.
type Engine struct{}

// Run is curated in the fixture config: no diagnostic.
func (e *Engine) Run() error { return errors.New("horizon") }

// Flush is exported, returns an error, and is in no list.
func (e *Engine) Flush() error { return nil } // want errcritsync "API (*syncfix.Engine).Flush is not in the errcrit critical list"

// reset is unexported: not a candidate.
func (e *Engine) reset() error { return nil }

// Helper is waived in the fixture config: no diagnostic.
func Helper() error { return nil }

// Pure returns no error: not a candidate.
func Pure() int { return len(criticalList) }

// hidden is an unexported type, so its exported methods are not
// reachable API and are not candidates.
type hidden struct{}

// Close would be a candidate were hidden exported.
func (h hidden) Close() error { return h.hide() }

func (h hidden) hide() error { return nil }
