// Package guardfix seeds guardedby violations: a field annotated
// `// guarded by mu` accessed with and without the lock.
package guardfix

import "sync"

// Box is a shared structure with one guarded and one free field.
type Box struct {
	mu    sync.Mutex
	count int // guarded by mu
	name  string
}

// Good locks before touching count.
func (b *Box) Good() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.count
}

// GoodDeferred touches count inside a function literal while the
// enclosing function locks: the heuristic is function-scoped.
func (b *Box) GoodDeferred() {
	b.mu.Lock()
	defer func() {
		b.count++
		b.mu.Unlock()
	}()
}

// Bad reads count without the lock.
func (b *Box) Bad() int {
	return b.count // want guardedby "guarded by mu"
}

// BadWrite writes count without the lock.
func (b *Box) BadWrite() {
	b.count = 7 // want guardedby "guarded by mu"
}

// Name touches only the unguarded field.
func (b *Box) Name() string { return b.name }

// Held runs with b.mu already held by the caller.
//
//jurylint:allow guardedby -- fixture: caller holds b.mu
func (b *Box) Held() int { return b.count }

// New constructs a Box; composite-literal initialization is not an
// access because the value is not shared yet.
func New() *Box { return &Box{count: 1, name: "box"} }
