package guardfix

import "sync"

// --- interprocedural proof: caller-holds helpers need no annotation ---

// Inc locks and delegates to a helper; the call graph proves the helper's
// entry lock-set.
func (b *Box) Inc() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.incLocked()
}

// incLocked is documented nowhere and allow-listed nowhere: every call
// site holds b.mu, so the fixed point proves it.
func (b *Box) incLocked() {
	b.count++
}

// Drain exercises mutual recursion: evenStep and oddStep call each other
// and both inherit the lock from Drain's call site. The fixed point must
// terminate.
func (b *Box) Drain(n int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.evenStep(n)
}

func (b *Box) evenStep(n int) {
	if n <= 0 {
		return
	}
	b.count--
	b.oddStep(n - 1)
}

func (b *Box) oddStep(n int) {
	if n <= 0 {
		return
	}
	b.count++
	b.evenStep(n - 1)
}

// --- release tracking: Unlock before the access drops the lock ---

// Racy releases the lock and then touches the guarded field again; v1's
// whole-function heuristic missed this.
func (b *Box) Racy() int {
	b.mu.Lock()
	n := b.count
	b.mu.Unlock()
	return n + b.count // want guardedby "guarded by mu"
}

// MaybeLocked only locks on one branch, so the merge after the if holds
// nothing.
func (b *Box) MaybeLocked(cond bool) int {
	if cond {
		b.mu.Lock()
		defer b.mu.Unlock()
	}
	return b.count // want guardedby "guarded by mu"
}

// --- function literals ---

// Stored returns a closure over the guarded field: it runs at an unknown
// time, with no locks.
func (b *Box) Stored() func() int {
	return func() int { return b.count } // want guardedby "guarded by mu"
}

// Immediate invokes the literal in place, so it inherits the lock-set at
// the call site.
func (b *Box) Immediate() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return func() int { return b.count }()
}

// Spawn launches goroutines: the first touches the field bare, the
// second takes the lock itself.
func (b *Box) Spawn() {
	go func() { b.count++ }() // want guardedby "guarded by mu"
	go func() {
		b.mu.Lock()
		b.count--
		b.mu.Unlock()
	}()
}

// --- caller-holds assertion for stored callbacks ---

// onEvent is registered as a callback value, so no call graph can prove
// its entry lock-set; the holds assertion states the contract instead of
// silencing the check.
//
//jurylint:holds mu -- registered on Box with mu held by the dispatcher
func (b *Box) onEvent() {
	b.count++
}

// Register stores onEvent as a value (which otherwise forces an empty
// entry lock-set).
func (b *Box) Register(fns *[]func()) {
	*fns = append(*fns, b.onEvent)
}

// --- read/write lock modes ---

// RBox guards a field with an RWMutex: reads need at least RLock, writes
// need the write lock.
type RBox struct {
	rw   sync.RWMutex
	hits int // guarded by rw
}

// Peek reads under RLock.
func (r *RBox) Peek() int {
	r.rw.RLock()
	defer r.rw.RUnlock()
	return r.hits
}

// BadBump writes under only RLock.
func (r *RBox) BadBump() {
	r.rw.RLock()
	defer r.rw.RUnlock()
	r.hits++ // want guardedby "under rw.RLock"
}

// Bump writes under the write lock.
func (r *RBox) Bump() {
	r.rw.Lock()
	defer r.rw.Unlock()
	r.hits++
}

// Expired reads after the deferred RUnlock's critical section ended via
// an explicit early release.
func (r *RBox) Expired() int {
	r.rw.RLock()
	n := r.hits
	r.rw.RUnlock()
	return n + r.hits // want guardedby "guarded by rw"
}

// --- generics: one proof covers every instantiation ---

// Cell is a generic guarded container.
type Cell[T any] struct {
	mu  sync.Mutex
	val T // guarded by mu
}

// Set locks and delegates; setLocked is proven through the call graph at
// the generic origin, covering every instantiation.
func (c *Cell[T]) Set(v T) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.setLocked(v)
}

func (c *Cell[T]) setLocked(v T) {
	c.val = v
}

// Get reads bare at the generic origin.
func (c *Cell[T]) Get() T {
	return c.val // want guardedby "guarded by mu"
}

// UseCells instantiates Cell at two types so the analysis sees
// instantiated method objects that must resolve to their origins.
func UseCells() {
	a := &Cell[int]{}
	a.Set(1)
	s := &Cell[string]{}
	s.Set("x")
}

// --- construction exemption ---

// Fresh initializes a just-built Box before sharing it: construction
// code owns the value exclusively.
func Fresh() *Box {
	b := &Box{}
	b.count = 1
	return b
}
