// Package loopfix seeds eventloop violations: goroutines, channel
// operations and sync locking inside what is declared to be
// single-threaded event-handler code.
package loopfix

import "sync"

var mu sync.Mutex // want eventloop "sync.Mutex"

// Spawn escapes the event loop.
func Spawn() {
	go func() {}() // want eventloop "goroutine"
}

// Chans runs the full channel lifecycle.
func Chans() {
	ch := make(chan int, 1) // want eventloop "channel created"
	ch <- 1                 // want eventloop "channel send"
	<-ch                    // want eventloop "channel receive"
	close(ch)               // want eventloop "channel closed"
	select {}               // want eventloop "select statement"
}

// Drain ranges over a channel.
func Drain(ch chan int) {
	for range ch { // want eventloop "range over channel"
	}
}

// Locks takes a sync lock.
func Locks() {
	mu.Lock() // want eventloop "sync.Lock"
}

// ok is legal: plain slices, maps and function calls stay inside the
// event-loop contract.
func ok() {
	xs := make([]int, 0, 4)
	xs = append(xs, 1)
	m := map[string]int{"a": 1}
	_ = m["a"]
	_ = len(xs)
}
