// Package simfix seeds wallclock violations: every forbidden wall-clock
// read and global-RNG call, next to the legal forms that must stay quiet.
package simfix

import (
	"math/rand"
	"time"
)

// Clocky exercises the forbidden time functions.
func Clocky() {
	_ = time.Now()                      // want wallclock "time.Now"
	_ = time.Since(time.Time{})         // want wallclock "time.Since"
	time.Sleep(time.Millisecond)        // want wallclock "time.Sleep"
	_ = time.After(time.Second)         // want wallclock "time.After"
	_ = time.NewTicker(time.Second)     // want wallclock "time.NewTicker"
	_ = time.NewTimer(time.Second)      // want wallclock "time.NewTimer"
	_ = time.AfterFunc(time.Second, ok) // want wallclock "time.AfterFunc"
}

// Randy exercises the global RNG.
func Randy() {
	_ = rand.Intn(4)     // want wallclock "global RNG"
	_ = rand.Float64()   // want wallclock "global RNG"
	rand.Shuffle(0, nil) // want wallclock "global RNG"
}

// ok is legal: duration arithmetic and explicitly seeded sources never
// touch the host clock or shared RNG state.
func ok() {
	d := 5 * time.Millisecond
	_ = d + time.Second
	r := rand.New(rand.NewSource(42))
	_ = r.Intn(4)
}

// Boundary reads wall time under a doc-scope suppression.
//
//jurylint:allow wallclock -- fixture: documented real-time boundary
func Boundary() time.Time {
	return time.Now()
}

// BoundaryLine reads wall time under a line-scope suppression.
func BoundaryLine() time.Time {
	return time.Now() //jurylint:allow wallclock -- fixture: line suppression
}
