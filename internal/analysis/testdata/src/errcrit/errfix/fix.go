// Package errfix seeds errcrit violations: critical error returns
// discarded as bare statements and blank assignments, next to properly
// handled and deliberately annotated call sites.
package errfix

import "errors"

// Engine mimics the simnet engine's error-returning run API.
type Engine struct{}

// Run pretends to advance the engine.
func (e *Engine) Run() error { return errors.New("boom") }

// Commit pretends to commit a store write.
func Commit() error { return nil }

// Pair returns a value and an error.
func Pair() (int, error) { return 0, nil }

// Harmless returns an error but is not on the critical list.
func Harmless() error { return nil }

func discardStmt(e *Engine) {
	e.Run() // want errcrit "discarded"
}

func discardBlank(e *Engine) {
	_ = e.Run() // want errcrit "discarded"
}

func discardPair() {
	n, _ := Pair() // want errcrit "discarded"
	_ = n
}

func discardCommit() {
	Commit() // want errcrit "discarded"
}

func handled(e *Engine) error {
	if err := e.Run(); err != nil {
		return err
	}
	return Commit()
}

func notCritical() {
	Harmless()
	_ = Harmless()
}

func deliberate(e *Engine) {
	_ = e.Run() //jurylint:allow errcrit -- fixture: deliberate best-effort run
}
