// Package obs mimics the observability bridge with one discarded trace
// export error for the driver golden test.
package obs

import "io"

// Tracer records spans for export.
type Tracer struct {
	lines []string
}

// WriteJSONL exports the recorded spans; a swallowed error means a
// silently truncated trace.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	for _, l := range t.lines {
		if _, err := io.WriteString(w, l+"\n"); err != nil {
			return err
		}
	}
	return nil
}

// Dump is deliberately wrong: it drops the export error.
func Dump(t *Tracer, w io.Writer) {
	t.WriteJSONL(w)
}
