// Package experiment drives the miniature engine and discards a
// critical error for the driver golden test.
package experiment

import (
	"time"

	"example.com/golden/internal/simnet"
)

// Sweep runs one engine and ignores the horizon error.
func Sweep() {
	var e simnet.Engine
	e.Run(time.Second)
}

// Rates leaks map iteration order into its result slice.
func Rates(m map[string]float64) []float64 {
	var out []float64
	for _, v := range m {
		out = append(out, v)
	}
	return out
}
