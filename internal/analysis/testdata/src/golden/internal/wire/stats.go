package wire

import (
	"encoding/json"
	"io"
	"time"
)

// Stats is the hub's stats page; At deliberately carries raw virtual
// time onto the wire for the driver golden test.
type Stats struct {
	Subs int           `json:"subs"`
	At   time.Duration `json:"at"`
}

// WriteStats is deliberately wrong twice: it serializes a virtual-time
// Duration without a boundary conversion (vclockleak), and it is an
// exported error-returning wire API in neither the curated list nor the
// waiver table (errcritsync). The lock discipline, by contrast, is
// correct: the guarded read happens between Lock and Unlock.
func (h *Hub) WriteStats(w io.Writer) error {
	h.mu.Lock()
	n := len(h.subs)
	h.mu.Unlock()
	return json.NewEncoder(w).Encode(Stats{Subs: n, At: time.Second})
}
