// Package wire mimics the concurrent bridge layer with one mutex
// discipline violation for the driver golden test.
package wire

import "sync"

// Hub fans results out to subscribers.
type Hub struct {
	mu   sync.Mutex
	subs []string // guarded by mu
}

// Add registers a subscriber under the lock.
func (h *Hub) Add(s string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.subs = append(h.subs, s)
}

// Len is deliberately wrong: it reads subs without the lock.
func (h *Hub) Len() int { return len(h.subs) }
