// Package simnet is a miniature stand-in for the real engine, seeded
// with deliberate contract violations for the driver golden test.
package simnet

import (
	"math/rand"
	"time"
)

// Engine is a tiny deterministic-engine facade.
type Engine struct {
	now time.Duration
}

// Run advances the engine to the horizon.
func (e *Engine) Run(horizon time.Duration) error {
	e.now = horizon
	return nil
}

// Jitter is deliberately wrong three ways: it spawns a goroutine, reads
// the wall clock, and draws from the global RNG.
func (e *Engine) Jitter() time.Duration {
	go func() {}()
	_ = time.Now()
	return time.Duration(rand.Intn(10))
}
