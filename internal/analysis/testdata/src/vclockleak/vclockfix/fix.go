// Package vclockfix seeds vclockleak violations: virtual-clock values
// (engine timestamps, injected-clock reads, Duration fields and
// parameters) flowing into JSON marshalling and json-tagged struct
// fields, plus the vclock:wire annotation that waives a deliberate
// boundary.
package vclockfix

import (
	"encoding/json"
	"time"
)

// Engine mimics the simnet clock owner.
type Engine struct {
	now time.Duration
}

// Now reads the virtual clock (a configured source).
func (e *Engine) Now() time.Duration { return e.now }

// Report is a serialized result record: Elapsed ties its JSON form to a
// clock's time base, AtNS only leaks when tainted values flow in.
type Report struct {
	Name    string        `json:"name"`
	AtNS    int64         `json:"at_ns"`
	Elapsed time.Duration `json:"elapsed"`
	skew    time.Duration // unexported: encoding/json never sees it
}

// Stamp carries virtual nanoseconds by protocol contract.
type Stamp struct {
	AtNS int64 `json:"at_ns"` // vclock:wire -- virtual ns by protocol contract
}

// ShapeLeak marshals a struct with a reachable Duration field.
func ShapeLeak(r Report) ([]byte, error) {
	return json.Marshal(r) // want vclockleak "leaks virtual-time field Report.Elapsed"
}

// DirectLeak marshals a Duration-typed value outright.
func DirectLeak(e *Engine) ([]byte, error) {
	return json.Marshal(e.now) // want vclockleak "value of type time.Duration"
}

// CompositeLeak writes a clock read into a json-tagged field.
func CompositeLeak(e *Engine) Report {
	return Report{AtNS: int64(e.Now())} // want vclockleak "flows into serialized field Report.AtNS"
}

// AssignLeak flows a stored clock read through a local into the field.
func AssignLeak(e *Engine) Report {
	var r Report
	d := e.Now()
	r.AtNS = int64(d) // want vclockleak "flows into serialized field Report.AtNS"
	return r
}

// ParamLeak receives virtual time as a parameter (the injected-clock
// idiom hands timestamps down the call chain).
func ParamLeak(start time.Duration) Report {
	return Report{AtNS: int64(start)} // want vclockleak "flows into serialized field Report.AtNS"
}

// FuncValueLeak reads a stored clock function.
type clocked struct {
	clock func() time.Duration
}

func (c *clocked) Snapshot() Report {
	return Report{AtNS: int64(c.clock())} // want vclockleak "flows into serialized field Report.AtNS"
}

// TaintedMarshal passes a tainted non-Duration value to Marshal.
func TaintedMarshal(e *Engine) ([]byte, error) {
	ns := int64(e.Now())
	return json.Marshal(ns) // want vclockleak "passed to json Marshal"
}

// Waived writes the clock into an annotated boundary field: virtual
// nanoseconds are the documented contract.
func Waived(e *Engine) Stamp {
	return Stamp{AtNS: int64(e.Now())}
}

// Laundered routes virtual time through a call: taint tracking is
// intra-procedural, so an ordinary call boundary converts responsibility.
func Laundered(e *Engine) Report {
	return Report{AtNS: scale(e.Now())}
}

func scale(d time.Duration) int64 { return int64(d / time.Millisecond) }

// CleanMarshal marshals a record with no time-typed reachable fields.
type counts struct {
	Decided int64 `json:"decided"`
}

func CleanMarshal(c counts) ([]byte, error) {
	return json.Marshal(c)
}
