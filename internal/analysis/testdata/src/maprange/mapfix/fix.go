// Package mapfix seeds maprange violations: order-sensitive map
// iteration in simulation-driven code, alongside the sorted-keys idiom
// and annotated order-insensitive loops that must stay clean.
package mapfix

import "sort"

// Leak appends values in randomized visit order.
func Leak(m map[string]int) []int {
	var out []int
	for _, v := range m { // want maprange "iteration order is randomized"
		out = append(out, v)
	}
	return out
}

// FirstWins lets visit order pick the survivor.
func FirstWins(m map[string]int) string {
	for k := range m { // want maprange "iteration order is randomized"
		return k
	}
	return ""
}

// KeyValuePairs collects both halves, so the body is not the pure
// key-collection idiom even though the keys get sorted later.
func KeyValuePairs(m map[string]int) []string {
	var keys []string
	for k, v := range m { // want maprange "iteration order is randomized"
		_ = v
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// UnsortedKeys collects keys but never orders them.
func UnsortedKeys(m map[string]int) []string {
	var keys []string
	for k := range m { // want maprange "iteration order is randomized"
		keys = append(keys, k)
	}
	return keys
}

// SortedKeys is the canonical deterministic idiom and stays clean.
func SortedKeys(m map[string]int) []int {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]int, 0, len(keys))
	for _, k := range keys {
		out = append(out, m[k])
	}
	return out
}

// SortedSlice uses sort.Slice instead of sort.Strings; still clean.
func SortedSlice(m map[int]int) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// Sum is order-insensitive and says so.
func Sum(m map[string]int) int {
	total := 0
	//jurylint:allow maprange -- commutative aggregation; visit order cannot change the sum
	for _, v := range m {
		total += v
	}
	return total
}

// NotAMap ranges over a slice and is out of scope.
func NotAMap(xs []int) int {
	n := 0
	for range xs {
		n++
	}
	return n
}
