package analysis

import "testing"

func TestErrCritFixture(t *testing.T) {
	runFixture(t, fixtureDir("errcrit", "errfix"), "errfix",
		NewErrCrit([]string{
			"(*errfix.Engine).Run",
			"errfix.Commit",
			"errfix.Pair",
		}))
}
