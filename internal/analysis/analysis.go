// Package analysis is a self-contained static-analysis framework built on
// the standard library (go/parser, go/types, go/importer) only, so it runs
// in offline build environments. It exists to enforce the determinism and
// concurrency contract that the simnet substrate depends on: model code
// must not read the wall clock, must not use the global RNG, and must not
// escape the single-threaded event loop. See DESIGN.md "Determinism
// contract & lint rules".
//
// Violations can be suppressed with an annotation comment:
//
//	//jurylint:allow <rule>[,<rule>...] -- justification
//
// The annotation applies to diagnostics on the comment's own line, on the
// line directly below it, or — when it appears in a function's doc
// comment — anywhere inside that function.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// Diagnostic is one rule violation at a source position.
type Diagnostic struct {
	Pos     token.Position
	Rule    string
	Message string
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Message)
}

// Pass carries one type-checked package through one analyzer run.
type Pass struct {
	Fset  *token.FileSet
	Files []*ast.File
	Path  string // import path
	Pkg   *types.Package
	Info  *types.Info

	rule   string
	report func(Diagnostic)
}

// Reportf records a diagnostic at pos under the running analyzer's rule
// name.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:     p.Fset.Position(pos),
		Rule:    p.rule,
		Message: fmt.Sprintf(format, args...),
	})
}

// Analyzer is one lint rule. Run inspects a package and reports
// diagnostics through the pass.
type Analyzer struct {
	Name string
	Doc  string
	// Packages restricts the analyzer to packages whose import path, or
	// final path element, matches an entry. Empty means every package.
	Packages []string
	Run      func(*Pass)
	// Init, when set, runs once per RunAnalyzers call with every loaded
	// package before the per-package Run passes. Analyzers use it to
	// build module-wide indexes (cross-package field annotations,
	// exported-API candidate sets) and to report module-level
	// diagnostics that have no single home package.
	Init func(*ModuleContext)
}

// ModuleContext carries the whole loaded module through an analyzer's
// Init hook.
type ModuleContext struct {
	Pkgs []*Package

	rule   string
	report func(Diagnostic)
}

// Reportf records a module-level diagnostic at pos. Positions resolve
// through the fileset of the package that declares them; LoadModule
// shares one fileset across the module, so any loaded package's
// positions work.
func (m *ModuleContext) Reportf(fset *token.FileSet, pos token.Pos, format string, args ...any) {
	m.report(Diagnostic{
		Pos:     fset.Position(pos),
		Rule:    m.rule,
		Message: fmt.Sprintf(format, args...),
	})
}

func (a *Analyzer) appliesTo(path string) bool {
	if len(a.Packages) == 0 {
		return true
	}
	for _, p := range a.Packages {
		if path == p || strings.HasSuffix(path, "/"+p) {
			return true
		}
	}
	return false
}

// RunAnalyzers applies every analyzer to every package it matches,
// filters out diagnostics suppressed by //jurylint:allow annotations, and
// returns the rest sorted by position then rule.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	allows := make([]*allowIndex, len(pkgs))
	for i, pkg := range pkgs {
		allows[i] = buildAllowIndex(pkg.Fset, pkg.Files)
	}
	allowedAnywhere := func(rule string, pos token.Position) bool {
		for _, idx := range allows {
			if idx.allowed(rule, pos) {
				return true
			}
		}
		return false
	}
	for _, a := range analyzers {
		if a.Init == nil {
			continue
		}
		a.Init(&ModuleContext{
			Pkgs: pkgs,
			rule: a.Name,
			report: func(d Diagnostic) {
				if !allowedAnywhere(d.Rule, d.Pos) {
					diags = append(diags, d)
				}
			},
		})
	}
	for i, pkg := range pkgs {
		allow := allows[i]
		for _, a := range analyzers {
			if a.Run == nil || !a.appliesTo(pkg.Path) {
				continue
			}
			pass := &Pass{
				Fset:  pkg.Fset,
				Files: pkg.Files,
				Path:  pkg.Path,
				Pkg:   pkg.Types,
				Info:  pkg.Info,
				rule:  a.Name,
				report: func(d Diagnostic) {
					if !allow.allowed(d.Rule, d.Pos) {
						diags = append(diags, d)
					}
				},
			}
			a.Run(pass)
		}
	}
	SortDiagnostics(diags)
	return diags
}

// SortDiagnostics orders diagnostics by position then rule — the
// canonical driver output order. Exposed so drivers that run analyzers
// one at a time (per-analyzer timing) can merge their outputs back into
// the same order RunAnalyzers produces.
func SortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
}

// Format renders diagnostics one per line with filenames relative to
// root, which keeps driver output and golden files machine-independent.
func Format(root string, diags []Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		name := d.Pos.Filename
		if rel, err := filepath.Rel(root, name); err == nil && !strings.HasPrefix(rel, "..") {
			name = filepath.ToSlash(rel)
		}
		fmt.Fprintf(&b, "%s:%d:%d: %s: %s\n", name, d.Pos.Line, d.Pos.Column, d.Rule, d.Message)
	}
	return b.String()
}

var allowRe = regexp.MustCompile(`^//jurylint:allow\s+([a-zA-Z0-9_,-]+)`)

// allowIndex records, per rule, the source lines and function bodies
// covered by //jurylint:allow annotations in one package.
type allowIndex struct {
	// lines maps rule -> "file:line" keys where diagnostics are allowed.
	lines map[string]map[string]bool
	// spans maps rule -> file ranges (whole annotated functions).
	spans map[string][]span
}

type span struct {
	file       string
	start, end int // line range, inclusive
}

func buildAllowIndex(fset *token.FileSet, files []*ast.File) *allowIndex {
	idx := &allowIndex{
		lines: make(map[string]map[string]bool),
		spans: make(map[string][]span),
	}
	addLine := func(rule, file string, line int) {
		m := idx.lines[rule]
		if m == nil {
			m = make(map[string]bool)
			idx.lines[rule] = m
		}
		m[fmt.Sprintf("%s:%d", file, line)] = true
	}
	for _, f := range files {
		// Doc-comment annotations cover the whole function.
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil || fd.Body == nil {
				continue
			}
			for _, c := range fd.Doc.List {
				for _, rule := range allowRules(c.Text) {
					start := fset.Position(fd.Pos())
					end := fset.Position(fd.Body.End())
					idx.spans[rule] = append(idx.spans[rule], span{
						file:  start.Filename,
						start: start.Line,
						end:   end.Line,
					})
				}
			}
		}
		// Every annotation also covers its own line and the next one,
		// handling both trailing and preceding comment placement.
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				for _, rule := range allowRules(c.Text) {
					pos := fset.Position(c.Pos())
					addLine(rule, pos.Filename, pos.Line)
					addLine(rule, pos.Filename, pos.Line+1)
				}
			}
		}
	}
	return idx
}

func allowRules(comment string) []string {
	m := allowRe.FindStringSubmatch(comment)
	if m == nil {
		return nil
	}
	var rules []string
	for _, r := range strings.Split(m[1], ",") {
		if r = strings.TrimSpace(r); r != "" {
			rules = append(rules, r)
		}
	}
	return rules
}

func (idx *allowIndex) allowed(rule string, pos token.Position) bool {
	if idx.lines[rule][fmt.Sprintf("%s:%d", pos.Filename, pos.Line)] {
		return true
	}
	for _, s := range idx.spans[rule] {
		if s.file == pos.Filename && pos.Line >= s.start && pos.Line <= s.end {
			return true
		}
	}
	return false
}
