package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// forbiddenTimeFuncs are the package-level time functions that read or
// depend on the host clock. time.Duration arithmetic and constants stay
// legal: only reading wall time breaks determinism.
var forbiddenTimeFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"Tick":      true,
	"NewTicker": true,
	"NewTimer":  true,
	"AfterFunc": true,
}

// allowedRandFuncs are the math/rand package-level functions that merely
// construct explicitly seeded sources; everything else at package level
// goes through the shared global RNG and is forbidden. Methods on
// *rand.Rand are always fine — simulation code gets its RNG from
// simnet.Engine.Rand.
var allowedRandFuncs = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true,
}

// NewWallclock returns the analyzer that forbids wall-clock reads
// (time.Now, time.Since, time.Sleep, timers, tickers) and global
// math/rand use in the given packages. Simulation-driven code must take
// time from the engine's virtual clock and randomness from the engine's
// seeded RNG, otherwise detection-time distributions stop being
// reproducible.
func NewWallclock(packages []string) *Analyzer {
	return &Analyzer{
		Name:     "wallclock",
		Doc:      "forbids wall-clock and global-RNG use in simulation-driven packages",
		Packages: packages,
		Run:      runWallclock,
	}
}

func runWallclock(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			// Only package-level functions: methods (e.g. on a
			// *rand.Rand obtained from the engine) are legal.
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true
			}
			switch path := fn.Pkg().Path(); {
			case path == "time":
				if forbiddenTimeFuncs[fn.Name()] {
					pass.Reportf(sel.Pos(),
						"call to time.%s reads the wall clock; use the engine's virtual clock (simnet.Engine.Now/Schedule)",
						fn.Name())
				}
			case path == "math/rand" || strings.HasPrefix(path, "math/rand/"):
				if !allowedRandFuncs[fn.Name()] {
					pass.Reportf(sel.Pos(),
						"call to %s.%s uses the global RNG; use the engine's seeded source (simnet.Engine.Rand)",
						path, fn.Name())
				}
			}
			return true
		})
	}
}
