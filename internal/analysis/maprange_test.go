package analysis

import "testing"

func TestMaprangeFixture(t *testing.T) {
	runFixture(t, fixtureDir("maprange", "mapfix"), "mapfix",
		NewMaprange([]string{"mapfix"}))
}
