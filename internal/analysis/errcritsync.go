package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// ErrCritSyncConfig configures the errcritsync pass, which keeps the
// curated errcrit critical-API list honest: every exported error-returning
// API in the audited packages must either appear in the curated list
// (errcrit then enforces its call sites) or carry an explicit waiver with
// a justification. The list can therefore never silently rot as APIs are
// added, renamed or removed.
type ErrCritSyncConfig struct {
	// Packages lists the import paths whose exported error-returning
	// functions and methods are candidates. Matching follows the same
	// rule as Analyzer.Packages: exact path or final path element.
	Packages []string
	// Curated is the enforced critical list (normally CriticalAPIs).
	// Entries use (*types.Func).FullName origin form.
	Curated []string
	// Waived maps FullNames to a one-line justification for APIs that are
	// deliberately not enforced (best-effort closers, constructors whose
	// errors are always propagated by inspection, etc.).
	Waived map[string]string
	// Anchor names the declaration ("pkg/path.DeclName") where stale
	// curated or waived entries — entries matching no exported API — are
	// reported. When the anchor does not resolve in the loaded packages
	// (fixture modules without a suite.go), stale entries are not
	// reported.
	Anchor string
}

// NewErrCritSync returns the analyzer that mechanically derives the
// critical-API candidate set (exported error-returning functions and
// methods of exported types in the audited packages) and diffs it against
// the curated errcrit list plus the explicit waiver table. Drift fails the
// run in both directions: a candidate in neither list must be added or
// explicitly waived, and a curated or waived entry matching no API must be
// removed.
func NewErrCritSync(cfg ErrCritSyncConfig) *Analyzer {
	return &Analyzer{
		Name: "errcritsync",
		Doc:  "keeps the errcrit critical-API list in sync with the module's exported error-returning APIs",
		Init: func(m *ModuleContext) { runErrCritSync(m, cfg) },
	}
}

type errCritCandidate struct {
	fullName string
	fset     *token.FileSet
	pos      token.Pos
}

func runErrCritSync(m *ModuleContext, cfg ErrCritSyncConfig) {
	candidates := collectErrCritCandidates(m, cfg.Packages)

	known := make(map[string]bool, len(cfg.Curated)+len(cfg.Waived))
	for _, name := range cfg.Curated {
		known[name] = true
	}
	for name := range cfg.Waived {
		known[name] = true
	}

	// Missing: an exported error-returning API in neither list. Reported
	// at the API's own declaration so the fix is one hop away.
	for _, c := range candidates {
		if known[c.fullName] {
			continue
		}
		m.Reportf(c.fset, c.pos,
			"exported error-returning API %s is not in the errcrit critical list; add it to CriticalAPIs or explicitly waive it in ErrcritWaived (internal/analysis/suite.go)",
			c.fullName)
	}

	// Stale: a curated or waived entry matching no candidate. Reported at
	// the anchor declaration (the curated list itself) when it resolves.
	anchorFset, anchorPos, ok := resolveAnchor(m, cfg.Anchor)
	if !ok {
		return
	}
	have := make(map[string]bool, len(candidates))
	for _, c := range candidates {
		have[c.fullName] = true
	}
	var stale []string
	for _, name := range cfg.Curated {
		if !have[name] {
			stale = append(stale, name)
		}
	}
	for name := range cfg.Waived {
		if !have[name] {
			stale = append(stale, name)
		}
	}
	sort.Strings(stale)
	for _, name := range stale {
		m.Reportf(anchorFset, anchorPos,
			"errcrit list entry %s matches no exported error-returning API in the audited packages; remove it or fix the name",
			name)
	}
}

// collectErrCritCandidates walks every audited package and returns the
// exported error-returning functions and methods (receiver type must be
// exported too), sorted by FullName for deterministic report order.
func collectErrCritCandidates(m *ModuleContext, pkgPaths []string) []errCritCandidate {
	matches := func(path string) bool {
		for _, p := range pkgPaths {
			if path == p || strings.HasSuffix(path, "/"+p) {
				return true
			}
		}
		return false
	}
	var out []errCritCandidate
	for _, pkg := range m.Pkgs {
		if !matches(pkg.Path) {
			continue
		}
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || !fd.Name.IsExported() {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				sig, ok := fn.Type().(*types.Signature)
				if !ok || !lastResultIsError(sig) {
					continue
				}
				if recv := sig.Recv(); recv != nil {
					named, ok := deref(recv.Type()).(*types.Named)
					if !ok || !named.Obj().Exported() {
						continue
					}
				}
				out = append(out, errCritCandidate{
					fullName: fn.Origin().FullName(),
					fset:     pkg.Fset,
					pos:      fd.Name.Pos(),
				})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].fullName < out[j].fullName })
	return out
}

// resolveAnchor finds the top-level declaration named by
// "pkg/path.DeclName" among the loaded packages: a function declaration or
// a var/const/type spec with that name.
func resolveAnchor(m *ModuleContext, anchor string) (*token.FileSet, token.Pos, bool) {
	dot := strings.LastIndex(anchor, ".")
	if dot <= 0 || dot == len(anchor)-1 {
		return nil, token.NoPos, false
	}
	pkgPath, name := anchor[:dot], anchor[dot+1:]
	for _, pkg := range m.Pkgs {
		if pkg.Path != pkgPath {
			continue
		}
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if d.Recv == nil && d.Name.Name == name {
						return pkg.Fset, d.Name.Pos(), true
					}
				case *ast.GenDecl:
					for _, spec := range d.Specs {
						switch s := spec.(type) {
						case *ast.ValueSpec:
							for _, id := range s.Names {
								if id.Name == name {
									return pkg.Fset, id.Pos(), true
								}
							}
						case *ast.TypeSpec:
							if s.Name.Name == name {
								return pkg.Fset, s.Name.Pos(), true
							}
						}
					}
				}
			}
		}
	}
	return nil, token.NoPos, false
}
