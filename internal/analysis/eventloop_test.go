package analysis

import "testing"

func TestEventloopFixture(t *testing.T) {
	runFixture(t, fixtureDir("eventloop", "loopfix"), "loopfix",
		NewEventloop([]string{"loopfix"}))
}
