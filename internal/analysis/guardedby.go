package analysis

import (
	"go/ast"
	"go/types"
	"regexp"
)

var guardedByRe = regexp.MustCompile(`guarded by (\w+)`)

// NewGuardedBy returns the analyzer that checks mutex discipline in the
// genuinely concurrent packages (the ofconn/wire real-time bridges).
// Struct fields annotated with a `// guarded by <mu>` comment may only be
// accessed inside functions that lock that mutex. The heuristic is
// deliberately conservative and method-scoped: the enclosing function (or
// a function literal within it) must contain a <mu>.Lock or <mu>.RLock
// call; lock ordering and caller-held locks are not tracked, so functions
// documented to run with the lock held carry a //jurylint:allow guardedby
// annotation. Composite-literal construction does not count as an access:
// the object is not shared yet.
func NewGuardedBy(packages []string) *Analyzer {
	return &Analyzer{
		Name:     "guardedby",
		Doc:      "checks that fields annotated `// guarded by <mu>` are accessed under that mutex",
		Packages: packages,
		Run:      runGuardedBy,
	}
}

func runGuardedBy(pass *Pass) {
	guarded := collectGuardedFields(pass)
	if len(guarded) == 0 {
		return
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			locked := lockedMutexes(fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				selection, ok := pass.Info.Selections[sel]
				if !ok || selection.Kind() != types.FieldVal {
					return true
				}
				fieldVar, ok := selection.Obj().(*types.Var)
				if !ok {
					return true
				}
				mu, ok := guarded[fieldVar]
				if !ok || locked[mu] {
					return true
				}
				pass.Reportf(sel.Sel.Pos(),
					"field %q (guarded by %s) accessed in %s without %s.Lock",
					fieldVar.Name(), mu, fd.Name.Name, mu)
				return true
			})
		}
	}
}

// collectGuardedFields maps each annotated struct field object to the
// name of its guarding mutex.
func collectGuardedFields(pass *Pass) map[*types.Var]string {
	guarded := make(map[*types.Var]string)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				mu := guardAnnotation(field)
				if mu == "" {
					continue
				}
				for _, name := range field.Names {
					if v, ok := pass.Info.Defs[name].(*types.Var); ok {
						guarded[v] = mu
					}
				}
			}
			return true
		})
	}
	return guarded
}

func guardAnnotation(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedByRe.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

// lockedMutexes returns the set of mutex names on which body contains a
// Lock or RLock call (on any receiver chain ending in that name).
func lockedMutexes(body *ast.BlockStmt) map[string]bool {
	locked := make(map[string]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		switch x := sel.X.(type) {
		case *ast.Ident:
			locked[x.Name] = true
		case *ast.SelectorExpr:
			locked[x.Sel.Name] = true
		}
		return true
	})
	return locked
}
