package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

var guardedByRe = regexp.MustCompile(`guarded by (\w+)`)

// holdsRe matches the caller-holds assertion in a function's doc comment:
//
//	//jurylint:holds <mu>[,<mu>...] -- justification
//
// The assertion seeds the function's entry lock-set (write mode) instead
// of silencing diagnostics wholesale the way //jurylint:allow guardedby
// does: accesses to fields guarded by other mutexes, and writes under a
// read lock, are still checked, and call sites inside the function
// propagate the asserted locks to callees. It is the escape hatch for
// the one case the package-local call graph cannot prove — functions
// invoked through stored function values (callbacks) with a lock held.
var holdsRe = regexp.MustCompile(`^//jurylint:holds\s+([\w.,]+)`)

// NewGuardedBy returns the analyzer that checks mutex discipline in the
// genuinely concurrent packages (the ofconn/wire real-time bridges and
// the sweep/obs orchestration bridges). Struct fields annotated with a
// `// guarded by <mu>` comment may only be accessed while that mutex is
// held.
//
// The v2 analysis is interprocedural within the package: it computes
// flow-sensitive lock-sets per function (Lock/RLock acquire, Unlock/
// RUnlock release, `defer mu.Unlock()` holds to function exit, branches
// merge by must-intersection), builds the package call graph, and infers
// each unexported function's entry lock-set as the intersection of the
// lock-sets its callers prove at every call site — a fixed point that
// terminates on mutual recursion because entry sets only shrink. Helpers
// documented as "caller holds mu" are therefore proven rather than
// allow-listed. Additional rules:
//
//   - A write (assignment, ++/--, delete, &-escape) to a guarded field
//     under only RLock is reported: read locks do not license writes.
//   - Objects freshly constructed in the current function (assigned from
//     a composite literal or new()) are exempt until they escape —
//     construction code owns the object exclusively.
//   - Function literals inherit the lock-set at their use site when
//     invoked immediately or deferred; literals that escape (go
//     statements, stored callbacks, arguments) are analyzed with an
//     empty lock-set, since nothing constrains when they run.
//   - Exported functions and functions referenced as values start with
//     an empty entry lock-set; `//jurylint:holds <mu>` asserts one.
func NewGuardedBy(packages []string) *Analyzer {
	return &Analyzer{
		Name:     "guardedby",
		Doc:      "checks that fields annotated `// guarded by <mu>` are accessed under that mutex",
		Packages: packages,
		Run:      runGuardedBy,
	}
}

type lockMode uint8

const (
	modeRead  lockMode = 1
	modeWrite lockMode = 2
)

// lockKey identifies one mutex as seen from the current function: the
// object of the leftmost identifier of the receiver chain, the textual
// chain ("s", "s.prog", "" for a bare variable), and the mutex name.
type lockKey struct {
	base  types.Object
	chain string
	name  string
}

type lockSet map[lockKey]lockMode

func (s lockSet) clone() lockSet {
	out := make(lockSet, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

// heldMode returns the strongest mode among held locks with the given
// terminal name (guard annotations are name-based).
func (s lockSet) heldMode(name string) lockMode {
	var m lockMode
	for k, v := range s {
		if k.name == name && v > m {
			m = v
		}
	}
	return m
}

// flowState is the walker state at one program point.
type flowState struct {
	held       lockSet
	terminated bool
}

func (st *flowState) clone() *flowState {
	return &flowState{held: st.held.clone(), terminated: st.terminated}
}

// mergeStates is the must-intersection join: a lock is held after a
// branch only if every non-terminated path holds it. Terminated paths
// (return, break, panic) do not constrain the merge.
func mergeStates(a, b *flowState) *flowState {
	if a.terminated && b.terminated {
		return &flowState{held: lockSet{}, terminated: true}
	}
	if a.terminated {
		return b
	}
	if b.terminated {
		return a
	}
	out := lockSet{}
	for k, v := range a.held {
		if w, ok := b.held[k]; ok {
			if w < v {
				v = w
			}
			out[k] = v
		}
	}
	return &flowState{held: out}
}

// entryState is a function's inferred entry lock-set, with mutex names
// relative to its receiver. top is the optimistic starting point of the
// fixed-point iteration ("held at every call site seen so far").
type entryState struct {
	top   bool
	locks map[string]lockMode
}

func (e *entryState) intersect(site map[string]lockMode) bool {
	if e.top {
		e.top = false
		e.locks = make(map[string]lockMode, len(site))
		for k, v := range site {
			e.locks[k] = v
		}
		return true
	}
	changed := false
	for k, v := range e.locks {
		w, ok := site[k]
		if !ok {
			delete(e.locks, k)
			changed = true
			continue
		}
		if w < v {
			e.locks[k] = w
			changed = true
		}
	}
	return changed
}

type guardAnalysis struct {
	pass    *Pass
	guarded map[*types.Var]string

	decls     map[*types.Func]*ast.FuncDecl
	parents   map[ast.Node]ast.Node
	valueUsed map[*types.Func]bool
	holds     map[*types.Func][]string
	entry     map[*types.Func]*entryState
	// sites accumulates, per callee, the receiver-relative lock-sets
	// proven at each call site during one fixed-point iteration.
	sites map[*types.Func][]map[string]lockMode

	reporting bool
}

func runGuardedBy(pass *Pass) {
	g := &guardAnalysis{
		pass:      pass,
		guarded:   collectGuardedFields(pass),
		decls:     map[*types.Func]*ast.FuncDecl{},
		parents:   map[ast.Node]ast.Node{},
		valueUsed: map[*types.Func]bool{},
		holds:     map[*types.Func][]string{},
		entry:     map[*types.Func]*entryState{},
	}
	if len(g.guarded) == 0 {
		return
	}
	g.index()
	g.initEntries()

	// Fixed point over entry lock-sets: walk every function, record the
	// proven lock-set at each intra-package call site, and shrink callee
	// entries to the intersection. Entries start at top (all guarded
	// mutexes held) and only shrink, so the iteration terminates even
	// through mutual recursion; the bound is the lattice height.
	for iter := 0; iter <= len(g.decls)+len(g.guarded)+2; iter++ {
		g.sites = map[*types.Func][]map[string]lockMode{}
		for fn, fd := range g.decls {
			g.walkFunc(fn, fd)
		}
		changed := false
		for fn, e := range g.entry {
			if fixed := g.holds[fn]; fixed != nil {
				continue
			}
			sites, ok := g.sites[fn]
			if !ok {
				// No static call site in the package: nothing proven.
				if e.top || len(e.locks) > 0 {
					g.entry[fn] = &entryState{locks: map[string]lockMode{}}
					changed = true
				}
				continue
			}
			for _, site := range sites {
				if e.intersect(site) {
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}

	g.reporting = true
	// Deterministic report order: walk declarations in file/position order.
	ordered := make([]*types.Func, 0, len(g.decls))
	for fn := range g.decls {
		ordered = append(ordered, fn)
	}
	sort.Slice(ordered, func(i, j int) bool {
		return g.decls[ordered[i]].Pos() < g.decls[ordered[j]].Pos()
	})
	for _, fn := range ordered {
		g.walkFunc(fn, g.decls[fn])
	}
}

// index builds the declaration table, the parent map, the set of
// functions referenced as values, and the //jurylint:holds assertions.
func (g *guardAnalysis) index() {
	for _, file := range g.pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			if n == nil {
				return false
			}
			for _, c := range childNodes(n) {
				g.parents[c] = n
			}
			return true
		})
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := g.pass.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			g.decls[fn] = fd
			if fd.Doc != nil {
				for _, c := range fd.Doc.List {
					if m := holdsRe.FindStringSubmatch(c.Text); m != nil {
						for _, name := range strings.Split(m[1], ",") {
							name = strings.TrimSpace(name)
							if i := strings.LastIndex(name, "."); i >= 0 {
								name = name[i+1:]
							}
							if name != "" {
								g.holds[fn] = append(g.holds[fn], name)
							}
						}
					}
				}
			}
		}
	}
	// A function identifier used outside of call position means the
	// function escapes as a value: anyone may invoke it at any time, so
	// no entry lock-set can be inferred for it.
	for _, file := range g.pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			fn, ok := g.pass.Info.Uses[id].(*types.Func)
			if !ok {
				return true
			}
			fn = fn.Origin()
			if _, local := g.decls[fn]; !local {
				return true
			}
			if !g.isCallPosition(id) {
				g.valueUsed[fn] = true
			}
			return true
		})
	}
}

func childNodes(n ast.Node) []ast.Node {
	var out []ast.Node
	ast.Inspect(n, func(c ast.Node) bool {
		if c == nil || c == n {
			return c == n
		}
		out = append(out, c)
		return false
	})
	return out
}

// isCallPosition reports whether id appears as the operand of a direct
// call (`f()` or `x.f()`), as opposed to a method/function value.
func (g *guardAnalysis) isCallPosition(id *ast.Ident) bool {
	p := g.parents[id]
	if sel, ok := p.(*ast.SelectorExpr); ok && sel.Sel == id {
		if call, ok := g.parents[sel].(*ast.CallExpr); ok && call.Fun == sel {
			return true
		}
		return false
	}
	if call, ok := p.(*ast.CallExpr); ok && call.Fun == id {
		return true
	}
	return false
}

func (g *guardAnalysis) initEntries() {
	for fn := range g.decls {
		switch {
		case g.holds[fn] != nil:
			locks := map[string]lockMode{}
			for _, name := range g.holds[fn] {
				locks[name] = modeWrite
			}
			g.entry[fn] = &entryState{locks: locks}
		case fn.Exported() || g.valueUsed[fn]:
			// Callable from outside the package (or through a stored
			// value): nothing can be assumed at entry.
			g.entry[fn] = &entryState{locks: map[string]lockMode{}}
		default:
			g.entry[fn] = &entryState{top: true}
		}
	}
}

// funcWalker carries the per-function walk: the function under analysis,
// its freshly-constructed (not yet escaped) objects, and its body (for
// locating releases that follow a defer site).
type funcWalker struct {
	g      *guardAnalysis
	fn     *types.Func
	fd     *ast.FuncDecl
	fnName string
	fresh  map[types.Object]bool
	// pendingEscapes defers freshness retirement to the end of the
	// statement: in `s.field = s.method`, the stored method value shares
	// s, but the same statement's accesses still happen pre-share.
	pendingEscapes []types.Object
}

func (g *guardAnalysis) walkFunc(fn *types.Func, fd *ast.FuncDecl) {
	w := &funcWalker{g: g, fn: fn, fd: fd, fnName: fd.Name.Name, fresh: map[types.Object]bool{}}
	st := &flowState{held: lockSet{}}
	// Seed the entry lock-set, naming locks relative to the receiver. A
	// top entry (fixed-point starting point) optimistically holds every
	// guarded mutex; the iteration shrinks it to what call sites prove.
	if e := g.entry[fn]; e != nil {
		seed := e.locks
		if e.top {
			seed = map[string]lockMode{}
			for _, mu := range g.guarded {
				seed[mu] = modeWrite
			}
		}
		var recvObj types.Object
		recvChain := ""
		if fd.Recv != nil && len(fd.Recv.List) > 0 && len(fd.Recv.List[0].Names) > 0 {
			name := fd.Recv.List[0].Names[0]
			recvObj = g.pass.Info.Defs[name]
			recvChain = name.Name
		}
		for name, mode := range seed {
			st.held[lockKey{base: recvObj, chain: recvChain, name: name}] = mode
		}
	}
	w.walkStmt(fd.Body, st)
}

func (w *funcWalker) walkStmt(s ast.Stmt, st *flowState) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		for _, stmt := range s.List {
			w.walkStmt(stmt, st)
		}
	case *ast.ExprStmt:
		w.scanStep(st, s.X)
		if isPanicCall(s.X) {
			st.terminated = true
		}
	case *ast.AssignStmt:
		exprs := append(append([]ast.Expr{}, s.Rhs...), s.Lhs...)
		w.scanStep(st, exprs...)
		w.updateFresh(s)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					w.scanStep(st, vs.Values...)
					w.markFreshSpec(vs)
				}
			}
		}
	case *ast.IncDecStmt:
		w.scanStep(st, s.X)
	case *ast.SendStmt:
		w.scanStep(st, s.Chan, s.Value)
	case *ast.ReturnStmt:
		w.scanStep(st, s.Results...)
		st.terminated = true
	case *ast.BranchStmt:
		// break/continue/goto leave the linear flow; conservatively treat
		// the fall-through as unreachable.
		st.terminated = true
	case *ast.DeferStmt:
		w.walkDefer(s, st)
	case *ast.GoStmt:
		w.walkGo(s, st)
	case *ast.IfStmt:
		w.walkStmt(s.Init, st)
		w.scanStep(st, s.Cond)
		thenSt := st.clone()
		w.walkStmt(s.Body, thenSt)
		elseSt := st.clone()
		w.walkStmt(s.Else, elseSt)
		*st = *mergeStates(thenSt, elseSt)
	case *ast.ForStmt:
		w.walkStmt(s.Init, st)
		w.scanStep(st, s.Cond)
		w.walkLoopBody(s.Body, st, s.Post)
	case *ast.RangeStmt:
		w.scanStep(st, s.X)
		w.walkLoopBody(s.Body, st, nil)
	case *ast.SwitchStmt:
		w.walkStmt(s.Init, st)
		w.scanStep(st, s.Tag)
		w.walkClauses(st, s.Body, true)
	case *ast.TypeSwitchStmt:
		w.walkStmt(s.Init, st)
		w.walkStmt(s.Assign, st)
		w.walkClauses(st, s.Body, true)
	case *ast.SelectStmt:
		w.walkClauses(st, s.Body, false)
	case *ast.LabeledStmt:
		w.walkStmt(s.Stmt, st)
	case *ast.EmptyStmt:
	default:
		// Remaining statement kinds carry no expressions we track.
	}
}

// walkLoopBody walks a loop body twice: a silent probe from the incoming
// state computes the state a second iteration would start from, then the
// real walk runs from the must-intersection of both — so a lock released
// inside the body is not considered held on the next iteration.
func (w *funcWalker) walkLoopBody(body *ast.BlockStmt, st *flowState, post ast.Stmt) {
	probe := st.clone()
	savedReport := w.g.reporting
	w.g.reporting = false
	w.walkStmt(body, probe)
	w.walkStmt(post, probe)
	w.g.reporting = savedReport

	entry := mergeStates(st.clone(), probe)
	entry.terminated = false
	w.walkStmt(body, entry)
	w.walkStmt(post, entry)
	after := mergeStates(st.clone(), entry)
	after.terminated = false
	*st = *after
}

// walkClauses walks each case/comm clause from a copy of the incoming
// state and joins the exits. When the construct may run no clause at all
// (a switch without default), the incoming state joins too.
func (w *funcWalker) walkClauses(st *flowState, body *ast.BlockStmt, switchLike bool) {
	var exits []*flowState
	hasDefault := false
	for _, clause := range body.List {
		cst := st.clone()
		switch c := clause.(type) {
		case *ast.CaseClause:
			if c.List == nil {
				hasDefault = true
			}
			w.scanStep(cst, c.List...)
			for _, stmt := range c.Body {
				w.walkStmt(stmt, cst)
			}
		case *ast.CommClause:
			if c.Comm == nil {
				hasDefault = true
			}
			w.walkStmt(c.Comm, cst)
			for _, stmt := range c.Body {
				w.walkStmt(stmt, cst)
			}
		}
		exits = append(exits, cst)
	}
	if len(exits) == 0 {
		return
	}
	if switchLike && !hasDefault {
		exits = append(exits, st.clone())
	}
	out := exits[0]
	for _, e := range exits[1:] {
		out = mergeStates(out, e)
	}
	*st = *out
}

// walkDefer handles `defer f(...)`: a deferred mutex Unlock keeps the
// lock held for the rest of the function; a deferred literal or helper
// call runs at exit, with the defer-site locks minus any released later
// in the function body.
func (w *funcWalker) walkDefer(s *ast.DeferStmt, st *flowState) {
	w.scanStep(st, s.Call.Args...)
	if key, op, ok := w.lockOp(s.Call); ok {
		_, _ = key, op
		// Deferred Unlock/RUnlock releases at return: the lock stays held
		// for the remainder of the walk. Deferred Lock is nonsense; skip.
		return
	}
	deferSt := st.clone()
	for name := range w.releasedAfter(s.Pos()) {
		for k := range deferSt.held {
			if k.name == name {
				delete(deferSt.held, k)
			}
		}
	}
	deferSt.terminated = false
	if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
		w.walkStmt(lit.Body, deferSt)
		return
	}
	w.scanCall(s.Call, deferSt)
}

// walkGo handles `go f(...)`: the spawned code runs concurrently, so its
// body (literal) or callee is analyzed with no locks held.
func (w *funcWalker) walkGo(s *ast.GoStmt, st *flowState) {
	w.scanStep(st, s.Call.Args...)
	empty := &flowState{held: lockSet{}}
	if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
		w.walkStmt(lit.Body, empty)
		return
	}
	w.scanCall(s.Call, empty)
	// The receiver escapes into another goroutine.
	w.escapeIdents(s.Call.Fun)
}

// releasedAfter collects the mutex names with a non-deferred Unlock or
// RUnlock call positioned after pos in the function body (outside nested
// function literals): locks a deferred closure cannot rely on.
func (w *funcWalker) releasedAfter(pos token.Pos) map[string]bool {
	out := map[string]bool{}
	var visit func(n ast.Node, inDefer bool)
	visit = func(n ast.Node, inDefer bool) {
		ast.Inspect(n, func(c ast.Node) bool {
			switch c := c.(type) {
			case *ast.FuncLit:
				return false
			case *ast.DeferStmt:
				return false
			case *ast.CallExpr:
				if c.Pos() <= pos {
					return true
				}
				if key, op, ok := w.lockOp(c); ok && (op == "Unlock" || op == "RUnlock") {
					out[key.name] = true
				}
			}
			return true
		})
	}
	visit(w.fd.Body, false)
	return out
}

// scanStep checks one statement's expressions against the current state,
// records call sites, walks function literals, and then applies the
// statement's lock acquire/release effects and freshness escapes.
func (w *funcWalker) scanStep(st *flowState, exprs ...ast.Expr) {
	for _, e := range exprs {
		w.scanExpr(e, st)
	}
	for _, obj := range w.pendingEscapes {
		delete(w.fresh, obj)
	}
	w.pendingEscapes = w.pendingEscapes[:0]
	for _, e := range exprs {
		w.applyEffects(e, st)
	}
}

// scanExpr reports guarded-field accesses, records intra-package call
// sites, and dispatches function literals. It does not descend into
// literals in the normal flow (they get their own state).
func (w *funcWalker) scanExpr(e ast.Expr, st *flowState) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			w.walkFuncLit(n, st)
			return false
		case *ast.SelectorExpr:
			w.checkAccess(n, st)
		case *ast.CallExpr:
			w.scanCall(n, st)
		case *ast.Ident:
			w.maybeEscape(n)
		}
		return true
	})
}

// walkFuncLit analyzes a function literal with the state its execution
// context justifies: immediate invocations share the current state;
// anything else (stored, passed, returned) runs at an unknown time, with
// an empty lock-set. go/defer literals are handled by their statements.
func (w *funcWalker) walkFuncLit(lit *ast.FuncLit, st *flowState) {
	if call, ok := w.g.parents[lit].(*ast.CallExpr); ok && call.Fun == lit {
		switch w.g.parents[call].(type) {
		case *ast.GoStmt, *ast.DeferStmt:
			// Already handled by walkGo/walkDefer.
			return
		default:
			w.walkStmt(lit.Body, st)
			return
		}
	}
	empty := &flowState{held: lockSet{}}
	w.walkStmt(lit.Body, empty)
}

// scanCall records the proven lock-set at an intra-package call site,
// translated into the callee's receiver-relative frame.
func (w *funcWalker) scanCall(call *ast.CallExpr, st *flowState) {
	if w.g.reporting {
		return
	}
	var id *ast.Ident
	var recv ast.Expr
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
		recv = fun.X
	default:
		return
	}
	fn, ok := w.g.pass.Info.Uses[id].(*types.Func)
	if !ok {
		return
	}
	fn = fn.Origin()
	if _, local := w.g.decls[fn]; !local {
		return
	}
	site := map[string]lockMode{}
	if recv != nil {
		recvChain := chainString(recv)
		if recvChain != "" {
			// Skip construction-time call sites: the caller owns the
			// object exclusively, so they must not constrain the entry
			// set helpers need on the shared path.
			if obj := leftmostIdentObj(w.g.pass.Info, recv); obj != nil && w.fresh[obj] {
				return
			}
			for k, mode := range st.held {
				if k.chain == recvChain {
					site[k.name] = mode
				}
			}
		}
	}
	w.g.sites[fn] = append(w.g.sites[fn], site)
}

// checkAccess reports a guarded-field access the current lock-set does
// not license.
func (w *funcWalker) checkAccess(sel *ast.SelectorExpr, st *flowState) {
	if !w.g.reporting {
		return
	}
	selection, ok := w.g.pass.Info.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return
	}
	fieldVar, ok := selection.Obj().(*types.Var)
	if !ok {
		return
	}
	fieldVar = fieldVar.Origin()
	mu, ok := w.g.guarded[fieldVar]
	if !ok {
		return
	}
	if obj := leftmostIdentObj(w.g.pass.Info, sel); obj != nil && w.fresh[obj] {
		return
	}
	mode := st.held.heldMode(mu)
	write := w.isWriteTarget(sel)
	switch {
	case mode == 0:
		w.g.pass.Reportf(sel.Sel.Pos(),
			"field %q (guarded by %s) accessed in %s without %s.Lock",
			fieldVar.Name(), mu, w.fnName, mu)
	case write && mode == modeRead:
		w.g.pass.Reportf(sel.Sel.Pos(),
			"field %q (guarded by %s) written in %s under %s.RLock; writes need %s.Lock",
			fieldVar.Name(), mu, w.fnName, mu, mu)
	}
}

// isWriteTarget reports whether sel is mutated: an assignment target
// (possibly through index/star/paren), ++/--, delete(), or &-escape.
func (w *funcWalker) isWriteTarget(sel *ast.SelectorExpr) bool {
	var n ast.Node = sel
	for {
		p := w.g.parents[n]
		switch p := p.(type) {
		case *ast.IndexExpr:
			if p.X != n.(ast.Expr) {
				return false
			}
			n = p
		case *ast.ParenExpr, *ast.StarExpr:
			n = p.(ast.Node)
		case *ast.AssignStmt:
			for _, lhs := range p.Lhs {
				if lhs == n {
					return true
				}
			}
			return false
		case *ast.IncDecStmt:
			return p.X == n
		case *ast.UnaryExpr:
			return p.Op == token.AND
		case *ast.CallExpr:
			if id, ok := p.Fun.(*ast.Ident); ok && id.Name == "delete" {
				if _, isBuiltin := w.g.pass.Info.Uses[id].(*types.Builtin); isBuiltin {
					return len(p.Args) > 0 && p.Args[0] == n
				}
			}
			return false
		default:
			return false
		}
	}
}

// applyEffects applies Lock/RLock/Unlock/RUnlock calls found in e
// (outside function literals) to the state.
func (w *funcWalker) applyEffects(e ast.Expr, st *flowState) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		key, op, ok := w.lockOp(call)
		if !ok {
			return true
		}
		switch op {
		case "Lock":
			st.held[key] = modeWrite
		case "RLock":
			if st.held[key] < modeRead {
				st.held[key] = modeRead
			}
		case "Unlock", "RUnlock":
			if _, ok := st.held[key]; ok {
				delete(st.held, key)
			} else {
				// Unlock through a different path expression: release
				// conservatively by name so a dropped lock is never
				// still considered held.
				for k := range st.held {
					if k.name == key.name {
						delete(st.held, k)
					}
				}
			}
		}
		return true
	})
}

// lockOp recognizes a sync mutex operation and resolves the mutex key.
func (w *funcWalker) lockOp(call *ast.CallExpr) (lockKey, string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return lockKey{}, "", false
	}
	op := sel.Sel.Name
	switch op {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return lockKey{}, "", false
	}
	fn, ok := w.g.pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return lockKey{}, "", false
	}
	key, ok := w.mutexKey(sel.X)
	if !ok {
		return lockKey{}, "", false
	}
	return key, op, true
}

// mutexKey builds the lock key for a mutex expression: `mu`, `s.mu`,
// `s.prog.mu`, …
func (w *funcWalker) mutexKey(e ast.Expr) (lockKey, bool) {
	e = unparen(e)
	switch x := e.(type) {
	case *ast.Ident:
		return lockKey{base: identObj(w.g.pass.Info, x), chain: "", name: x.Name}, true
	case *ast.SelectorExpr:
		return lockKey{
			base:  leftmostIdentObj(w.g.pass.Info, x),
			chain: chainString(x.X),
			name:  x.Sel.Name,
		}, true
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			return w.mutexKey(x.X)
		}
	}
	return lockKey{}, false
}

// --- freshness (construction exemption) ---

// updateFresh processes one assignment statement: escapes already
// happened during the scan; here new freshly-constructed objects are
// registered and overwritten ones retired.
func (w *funcWalker) updateFresh(s *ast.AssignStmt) {
	if len(s.Lhs) != len(s.Rhs) {
		return
	}
	for i, lhs := range s.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok {
			continue
		}
		obj := identObj(w.g.pass.Info, id)
		if obj == nil {
			continue
		}
		if isFreshConstruction(s.Rhs[i]) {
			w.fresh[obj] = true
		} else {
			delete(w.fresh, obj)
		}
	}
}

func (w *funcWalker) markFreshSpec(vs *ast.ValueSpec) {
	if len(vs.Names) != len(vs.Values) {
		return
	}
	for i, name := range vs.Names {
		if obj := w.g.pass.Info.Defs[name]; obj != nil && isFreshConstruction(vs.Values[i]) {
			w.fresh[obj] = true
		}
	}
}

func isFreshConstruction(e ast.Expr) bool {
	switch x := unparen(e).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			_, ok := unparen(x.X).(*ast.CompositeLit)
			return ok
		}
	case *ast.CallExpr:
		if id, ok := x.Fun.(*ast.Ident); ok && id.Name == "new" {
			return true
		}
	}
	return false
}

// maybeEscape retires a fresh object when its identifier is used in a
// position that shares it: anything but a field access or the receiver
// of a direct (non-go, non-defer) method call.
func (w *funcWalker) maybeEscape(id *ast.Ident) {
	obj := identObj(w.g.pass.Info, id)
	if obj == nil || !w.fresh[obj] {
		return
	}
	if sel, ok := w.g.parents[id].(*ast.SelectorExpr); ok && sel.X == id {
		if selection, ok := w.g.pass.Info.Selections[sel]; ok && selection.Kind() == types.FieldVal {
			return // field access on the fresh object
		}
		if call, ok := w.g.parents[sel].(*ast.CallExpr); ok && call.Fun == sel {
			switch w.g.parents[call].(type) {
			case *ast.GoStmt, *ast.DeferStmt:
				// The receiver escapes into deferred/concurrent code.
			default:
				return // synchronous method call on the fresh object
			}
		}
	}
	w.pendingEscapes = append(w.pendingEscapes, obj)
}

// escapeIdents retires every fresh object referenced in e.
func (w *funcWalker) escapeIdents(e ast.Expr) {
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := identObj(w.g.pass.Info, id); obj != nil {
				delete(w.fresh, obj)
			}
		}
		return true
	})
}

// --- shared helpers ---

func identObj(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Uses[id]; obj != nil {
		return obj
	}
	return info.Defs[id]
}

// leftmostIdentObj resolves the leftmost identifier of a selector chain
// (`s` in `s.prog.mu`), or nil when the chain is rooted elsewhere.
func leftmostIdentObj(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := unparen(e).(type) {
		case *ast.Ident:
			return identObj(info, x)
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// chainString renders a receiver chain ("s", "s.prog") textually; ""
// when the expression is not a pure identifier/selector chain.
func chainString(e ast.Expr) string {
	switch x := unparen(e).(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		base := chainString(x.X)
		if base == "" {
			return ""
		}
		return base + "." + x.Sel.Name
	case *ast.StarExpr:
		return chainString(x.X)
	}
	return ""
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

func isPanicCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}

// collectGuardedFields maps each annotated struct field object to the
// name of its guarding mutex.
func collectGuardedFields(pass *Pass) map[*types.Var]string {
	guarded := make(map[*types.Var]string)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				mu := guardAnnotation(field)
				if mu == "" {
					continue
				}
				for _, name := range field.Names {
					if v, ok := pass.Info.Defs[name].(*types.Var); ok {
						guarded[v] = mu
					}
				}
			}
			return true
		})
	}
	return guarded
}

func guardAnnotation(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedByRe.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}
