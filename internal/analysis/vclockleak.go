package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"reflect"
	"regexp"
	"strings"
)

// vclockWireRe matches the boundary annotation on a struct field:
//
//	// vclock:wire -- justification
//
// It marks a field that deliberately carries virtual time (simnet
// nanoseconds) across a serialization boundary: the wire protocol or an
// on-disk format whose documented time base is the virtual clock. The
// vclockleak pass skips annotated fields.
var vclockWireRe = regexp.MustCompile(`vclock:wire`)

// VClockConfig parameterizes the vclockleak pass.
type VClockConfig struct {
	// Sources are FullNames of calls that produce virtual-clock values,
	// e.g. "(*mod/internal/simnet.Engine).Now". Calls through values of
	// type func() time.Duration (the injected-clock idiom) are sources
	// implicitly, as are reads of module-declared time.Duration fields
	// and time.Duration parameters.
	Sources []string
	// Boundaries are FullNames of conversion helpers that launder
	// virtual time into a wall-anchored or unit-explicit representation;
	// their results are not tainted. (Ordinary function calls launder
	// implicitly — taint tracking is intra-procedural — so boundaries
	// exist to make deliberate conversions self-documenting.)
	Boundaries []string
}

// NewVClockLeak returns the analyzer that keeps virtual-clock values out
// of serialized formats. The simnet engine's clock counts nanoseconds
// since simulation start: writing such a value into a wire envelope or
// an on-disk struct silently changes meaning between runs and between
// virtual- and wall-clocked deployments. Two checks:
//
//   - Shape: at every json.Marshal / json.MarshalIndent /
//     (*json.Encoder).Encode call, the static type of the argument is
//     walked; any reachable time.Duration or time.Time field declared in
//     this module — and any argument directly of those types — is
//     reported unless the field carries a `vclock:wire` annotation.
//   - Taint: inside each function, virtual-time values (source calls,
//     func() time.Duration clock calls, Duration fields and parameters)
//     are tracked through assignments, arithmetic and conversions; a
//     tainted value flowing into a json-tagged struct field or a marshal
//     argument is reported unless the field is annotated.
//
// The type-shape walk cannot see through interface{} or type parameters
// (sweep's generic cache values marshal opaquely); those boundaries rely
// on the taint check at the construction site.
func NewVClockLeak(packages []string, cfg VClockConfig) *Analyzer {
	v := &vclockAnalysis{
		cfg:    cfg,
		waived: map[*types.Var]bool{},
		tags:   map[*types.Var]string{},
		module: map[string]bool{},
	}
	return &Analyzer{
		Name:     "vclockleak",
		Doc:      "checks that virtual-clock values do not leak into serialized formats without a vclock:wire boundary annotation",
		Packages: packages,
		Init:     v.init,
		Run:      v.run,
	}
}

type vclockAnalysis struct {
	cfg VClockConfig
	// waived marks fields annotated vclock:wire; tags carries every
	// struct field's raw tag. Both are module-wide: LoadModule shares
	// one importer, so field objects are identical across packages.
	waived map[*types.Var]bool
	tags   map[*types.Var]string
	// module is the set of loaded package paths — "declared in this
	// module" for the shape walk.
	module map[string]bool
}

// init indexes vclock:wire annotations and struct tags across the whole
// module, so a wire-package marshal site can honor an annotation on a
// core-package field.
func (v *vclockAnalysis) init(m *ModuleContext) {
	for _, pkg := range m.Pkgs {
		v.module[pkg.Path] = true
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				st, ok := n.(*ast.StructType)
				if !ok {
					return true
				}
				for _, field := range st.Fields.List {
					waived := false
					for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
						if cg != nil && vclockWireRe.MatchString(cg.Text()) {
							waived = true
						}
					}
					tag := ""
					if field.Tag != nil {
						tag = strings.Trim(field.Tag.Value, "`")
					}
					for _, name := range field.Names {
						fv, ok := pkg.Info.Defs[name].(*types.Var)
						if !ok {
							continue
						}
						if waived {
							v.waived[fv] = true
						}
						if tag != "" {
							v.tags[fv] = tag
						}
					}
				}
				return true
			})
		}
	}
}

func (v *vclockAnalysis) run(pass *Pass) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			v.checkFunc(pass, fd)
		}
	}
}

// vclockFunc is the per-function taint state.
type vclockFunc struct {
	v    *vclockAnalysis
	pass *Pass
	// tainted holds locals and parameters carrying virtual time.
	tainted map[types.Object]bool
	// reported de-duplicates shape-vs-taint reports per call position.
	reported map[ast.Node]bool
}

func (v *vclockAnalysis) checkFunc(pass *Pass, fd *ast.FuncDecl) {
	f := &vclockFunc{
		v:        v,
		pass:     pass,
		tainted:  map[types.Object]bool{},
		reported: map[ast.Node]bool{},
	}
	// Seed: time.Duration parameters carry virtual time in analyzed
	// packages (the injected-clock idiom passes engine timestamps down).
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			for _, name := range field.Names {
				if obj := pass.Info.Defs[name]; obj != nil && isVirtualTimeType(obj.Type(), false) {
					f.tainted[obj] = true
				}
			}
		}
	}
	// Two forward passes: the first propagates taint through straight-
	// line assignments, the second catches simple backward references
	// (a loop body using a variable tainted later in the body).
	f.walk(fd.Body, false)
	f.walk(fd.Body, true)
}

// walk propagates taint through the body; when report is set it also
// fires the sink checks.
func (f *vclockFunc) walk(body ast.Node, report bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			f.propagateAssign(n)
			if report {
				f.checkFieldAssign(n)
			}
		case *ast.ValueSpec:
			if len(n.Names) == len(n.Values) {
				for i, name := range n.Names {
					if obj := f.pass.Info.Defs[name]; obj != nil && f.taintedExpr(n.Values[i]) {
						f.tainted[obj] = true
					}
				}
			}
		case *ast.CompositeLit:
			if report {
				f.checkComposite(n)
			}
		case *ast.CallExpr:
			if report {
				f.checkMarshalCall(n)
			}
		}
		return true
	})
}

func (f *vclockFunc) propagateAssign(a *ast.AssignStmt) {
	if len(a.Lhs) != len(a.Rhs) {
		return
	}
	for i, lhs := range a.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok {
			continue
		}
		obj := identObj(f.pass.Info, id)
		if obj == nil {
			continue
		}
		if f.taintedExpr(a.Rhs[i]) {
			f.tainted[obj] = true
		}
	}
}

// taintedExpr reports whether e carries a virtual-time value.
func (f *vclockFunc) taintedExpr(e ast.Expr) bool {
	switch e := unparen(e).(type) {
	case *ast.Ident:
		if obj := identObj(f.pass.Info, e); obj != nil {
			return f.tainted[obj]
		}
	case *ast.BinaryExpr:
		return f.taintedExpr(e.X) || f.taintedExpr(e.Y)
	case *ast.UnaryExpr:
		return f.taintedExpr(e.X)
	case *ast.SelectorExpr:
		// Reading a module-declared Duration field yields virtual time
		// (engine timestamps live in such fields).
		if sel, ok := f.pass.Info.Selections[e]; ok && sel.Kind() == types.FieldVal {
			if fv, ok := sel.Obj().(*types.Var); ok {
				fv = fv.Origin()
				if f.v.moduleField(fv) && isVirtualTimeType(fv.Type(), false) {
					return true
				}
			}
		}
	case *ast.CallExpr:
		return f.taintedCall(e)
	}
	return false
}

func (f *vclockFunc) taintedCall(call *ast.CallExpr) bool {
	// A type conversion propagates taint: int64(d) is still virtual ns.
	if tv, ok := f.pass.Info.Types[call.Fun]; ok && tv.IsType() {
		return len(call.Args) == 1 && f.taintedExpr(call.Args[0])
	}
	if name := calleeFullName(f.pass.Info, call); name != "" {
		for _, b := range f.v.cfg.Boundaries {
			if name == b {
				return false
			}
		}
		for _, s := range f.v.cfg.Sources {
			if name == s {
				return true
			}
		}
	}
	// The injected-clock idiom: calling a stored func() time.Duration
	// reads the virtual clock.
	if tv, ok := f.pass.Info.Types[call.Fun]; ok {
		if sig, ok := tv.Type.Underlying().(*types.Signature); ok {
			if sig.Params().Len() == 0 && sig.Results().Len() == 1 &&
				isVirtualTimeType(sig.Results().At(0).Type(), false) {
				// Only clock *values* count: a declared function
				// returning a Duration (an ETA estimate, a backoff
				// step) launders like any other call.
				switch fun := unparen(call.Fun).(type) {
				case *ast.Ident:
					if _, isFunc := identObj(f.pass.Info, fun).(*types.Func); !isFunc {
						return true
					}
				case *ast.SelectorExpr:
					if sel, ok := f.pass.Info.Selections[fun]; ok && sel.Kind() == types.FieldVal {
						return true
					}
				}
			}
		}
	}
	return false
}

// checkFieldAssign fires on `x.Field = tainted` when Field is
// json-tagged and not annotated.
func (f *vclockFunc) checkFieldAssign(a *ast.AssignStmt) {
	if len(a.Lhs) != len(a.Rhs) {
		return
	}
	for i, lhs := range a.Lhs {
		sel, ok := unparen(lhs).(*ast.SelectorExpr)
		if !ok || !f.taintedExpr(a.Rhs[i]) {
			continue
		}
		selection, ok := f.pass.Info.Selections[sel]
		if !ok || selection.Kind() != types.FieldVal {
			continue
		}
		if fv, ok := selection.Obj().(*types.Var); ok {
			f.reportSink(sel.Sel.Pos(), fv.Origin(), typeShortName(selection.Recv()))
		}
	}
}

// checkComposite fires on `T{Field: tainted}` for json-tagged fields.
func (f *vclockFunc) checkComposite(lit *ast.CompositeLit) {
	tv, ok := f.pass.Info.Types[lit]
	if !ok {
		return
	}
	st, ok := deref(tv.Type).Underlying().(*types.Struct)
	if !ok {
		return
	}
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok || !f.taintedExpr(kv.Value) {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			if fv := st.Field(i); fv.Name() == key.Name {
				f.reportSink(kv.Pos(), fv.Origin(), typeShortName(tv.Type))
				break
			}
		}
	}
}

// reportSink reports taint reaching a serialized field, unless the field
// is unserialized (no json tag) or annotated vclock:wire.
func (f *vclockFunc) reportSink(pos token.Pos, fv *types.Var, owner string) {
	tag, ok := f.v.tags[fv]
	if !ok {
		return
	}
	jsonName := reflect.StructTag(tag).Get("json")
	if jsonName == "-" || jsonName == "" {
		return
	}
	if f.v.waived[fv] {
		return
	}
	f.pass.Reportf(pos,
		"virtual-time value flows into serialized field %s.%s (json:%q); convert at a boundary or annotate vclock:wire",
		owner, fv.Name(), strings.Split(jsonName, ",")[0])
}

// typeShortName renders a type's bare name (no package, no pointer).
func typeShortName(t types.Type) string {
	if named, ok := deref(t).(*types.Named); ok {
		return named.Obj().Name()
	}
	return types.TypeString(t, shortQualifier)
}

// marshalFuncs are the serialization entry points the shape check guards.
var marshalFuncs = map[string]bool{
	"encoding/json.Marshal":           true,
	"encoding/json.MarshalIndent":     true,
	"(*encoding/json.Encoder).Encode": true,
}

// checkMarshalCall runs both the static type-shape walk and the tainted-
// argument check at one marshal call site.
func (f *vclockFunc) checkMarshalCall(call *ast.CallExpr) {
	name := calleeFullName(f.pass.Info, call)
	if !marshalFuncs[name] || len(call.Args) == 0 {
		return
	}
	arg := call.Args[0]
	tv, ok := f.pass.Info.Types[arg]
	if !ok {
		return
	}
	short := name[strings.LastIndex(name, ".")+1:]
	for _, leak := range f.shapeLeaks(tv.Type) {
		f.reported[call] = true
		f.pass.Reportf(arg.Pos(),
			"json %s of %s leaks virtual-time %s; convert at a boundary or annotate vclock:wire",
			short, types.TypeString(tv.Type, shortQualifier), leak)
	}
	if !f.reported[call] && f.taintedExpr(arg) {
		f.pass.Reportf(arg.Pos(),
			"virtual-time value passed to json %s; convert at a boundary or annotate vclock:wire", short)
	}
}

// shapeLeaks walks t and returns a description of every reachable
// unannotated virtual-time component: the type itself, or field paths of
// module-declared structs.
func (f *vclockFunc) shapeLeaks(t types.Type) []string {
	var leaks []string
	seen := map[types.Type]bool{}
	var walk func(t types.Type, path string, depth int)
	walk = func(t types.Type, path string, depth int) {
		if depth > 8 || seen[t] {
			return
		}
		seen[t] = true
		if isVirtualTimeType(t, true) {
			if path == "" {
				leaks = append(leaks, "value of type "+types.TypeString(t, shortQualifier))
			} else {
				leaks = append(leaks, "field "+path)
			}
			return
		}
		switch u := t.(type) {
		case *types.Pointer:
			walk(u.Elem(), path, depth+1)
			return
		case *types.Slice:
			walk(u.Elem(), path, depth+1)
			return
		case *types.Array:
			walk(u.Elem(), path, depth+1)
			return
		case *types.Map:
			walk(u.Elem(), path, depth+1)
			return
		}
		// Recurse into named structs declared inside this module only;
		// external types serialize under their own contract.
		named, ok := t.(*types.Named)
		if !ok || named.Obj().Pkg() == nil || !f.v.module[named.Obj().Pkg().Path()] {
			return
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			// A module-declared named non-struct (e.g. a Duration alias)
			// was already handled by isVirtualTimeType above.
			return
		}
		for i := 0; i < st.NumFields(); i++ {
			fv := st.Field(i)
			if !fv.Exported() {
				continue // encoding/json skips unexported fields
			}
			if reflect.StructTag(st.Tag(i)).Get("json") == "-" {
				continue
			}
			if f.v.waived[fv.Origin()] {
				continue
			}
			fieldPath := named.Obj().Name() + "." + fv.Name()
			if path != "" {
				fieldPath = path + "." + fv.Name()
			}
			walk(fv.Type(), fieldPath, depth+1)
		}
	}
	walk(t, "", 0)
	return leaks
}

// moduleField reports whether fv is declared in a loaded module package.
func (v *vclockAnalysis) moduleField(fv *types.Var) bool {
	return fv.Pkg() != nil && v.module[fv.Pkg().Path()]
}

// isVirtualTimeType recognizes time.Duration (and, for the shape walk,
// time.Time: serializing either ties the format to a clock's time base).
func isVirtualTimeType(t types.Type, includeTime bool) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "time" {
		return false
	}
	return obj.Name() == "Duration" || (includeTime && obj.Name() == "Time")
}

// calleeFullName resolves a call's callee to its types.Func FullName
// ("pkg.F" or "(*pkg.T).M"), or "" for literals, conversions and
// builtins.
func calleeFullName(info *types.Info, call *ast.CallExpr) string {
	var id *ast.Ident
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return ""
	}
	fn, ok := info.Uses[id].(*types.Func)
	if !ok {
		return ""
	}
	return fn.Origin().FullName()
}

func shortQualifier(p *types.Package) string { return p.Name() }

func deref(t types.Type) types.Type {
	if p, ok := t.(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}
