package analysis

// SimPackages are the simulation-driven packages: everything in them runs
// as event handlers on the single simnet engine goroutine, so the full
// contract applies — no wall clock, no global RNG, no goroutines,
// channels or locks. metrics and openflow are pure computation consumed
// by event handlers and are held to the same contract.
var SimPackages = []string{
	"simnet", "core", "controller", "dataplane", "store", "cluster",
	"faults", "workload", "trigger", "topo", "policy", "experiment",
	"metrics", "openflow",
}

// BridgePackages carry event-driven components across real TCP and
// threads. They are allowed concurrency (checked by guardedby instead of
// eventloop), but wall-clock reads must stay confined to annotated
// real-time boundary code. sweep is the experiment-orchestration bridge:
// it fans whole simulations across a worker pool, so it owns goroutines
// and channels but must stay deterministic from the outside. obs is the
// observability bridge: its tracer runs on the engine goroutine against
// virtual time, but its registry is scraped by a live exposition server
// that owns goroutines and reads the wall clock at one annotated boundary.
// wiretest is the wire bridge's fault-injection harness: its conn and
// listener wrappers run on real sockets from test goroutines, but their
// fault schedules are explicit calls — no timers, no randomness — so it
// is held to the same wall-clock discipline as the bridge it exercises.
// shard is the parallel validation plane: it multiplies the sim-contract
// validator core across worker goroutines with bounded channels, so it
// owns concurrency, but takes all timestamps from the workers' virtual
// engines — no wall-clock reads at all.
// loadgen is the streaming-workload bridge: its Source is single-
// goroutine on the virtual clock (it reads no wall clock anywhere), but
// its obs instruments are scraped by exporter goroutines and its
// campaign driver dispatches points through sweep's worker pool, so it
// is held to the bridge contract rather than the eventloop rule.
var BridgePackages = []string{"ofconn", "wire", "wire/wiretest", "sweep", "obs", "shard", "loadgen"}

// CmdPackages are the command-line drivers under cmd/. They are held to
// the bridge contract, not the sim contract: they own goroutines and
// channels freely (no eventloop pass), but wall-clock reads must stay in
// annotated boundary functions, mutex annotations are enforced by
// guardedby, and serialized output is screened by vclockleak — a live
// driver that leaks virtual nanoseconds into its wire output corrupts
// the protocol's time base just as badly as a bridge package would.
var CmdPackages = []string{
	"juryd", "jurylive", "jurysim", "juryfig", "jurylint", "benchjson",
	"juryload", "jurytrace", "benchwire",
}

// CriticalAPIs returns the FullName list of error-returning calls whose
// results must not be silently discarded, for a module rooted at
// modulePath: engine runs (a swallowed horizon error invalidates every
// measurement after it), REST flow installs, and the validator wire path.
func CriticalAPIs(modulePath string) []string {
	return []string{
		"(*" + modulePath + "/internal/simnet.Engine).Run",
		"(*" + modulePath + "/internal/simnet.Engine).RunUntilIdle",
		"(*" + modulePath + ".Simulation).Run",
		"(*" + modulePath + ".Simulation).InstallFlowREST",
		modulePath + ".ServeValidator",
		"(*" + modulePath + "/internal/core.System).InstallFlowREST",
		"(*" + modulePath + "/internal/wire.Client).Send",
		modulePath + "/internal/wire.Serve",
		modulePath + "/internal/wire.ServeListener",
		"(*" + modulePath + "/internal/wire.Server).WriteMetrics",
		modulePath + "/internal/openflow.WriteMessage",
		// Sweep orchestration: a dropped campaign error means figures are
		// silently missing points. Generic methods are listed in their
		// origin form (errcrit matches through (*types.Func).Origin).
		"(*" + modulePath + "/internal/sweep.Sweep[P, R]).Run",
		"(*" + modulePath + "/internal/sweep.Sweep[P, R]).Results",
		modulePath + "/internal/sweep.Run",
		// Observability exports: a swallowed write error means a trace or
		// metrics page silently truncated on disk or on the wire.
		"(*" + modulePath + "/internal/obs.Tracer).WriteJSONL",
		"(*" + modulePath + "/internal/obs.Tracer).WriteChromeTrace",
		"(*" + modulePath + "/internal/obs.Registry).WritePrometheus",
		modulePath + "/internal/obs.ServeExpo",
		// Observability v2: flight dumps, series and stitched traces are
		// evidence files — a swallowed write error loses the black box.
		modulePath + "/internal/obs.WriteEventsJSONL",
		"(*" + modulePath + "/internal/obs.Series).WriteJSONL",
		modulePath + "/internal/obs.StitchJSONL",
		modulePath + "/internal/obs.StitchChromeTrace",
		"(*" + modulePath + "/internal/wire.Server).WriteTrace",
		// Scale campaigns: a dropped campaign error means BENCH_load rows
		// are silently missing points, same stakes as sweep.Run.
		modulePath + "/internal/loadgen.RunCampaign",
	}
}

// ErrcritPackages returns the import paths audited by errcritsync for a
// module rooted at modulePath: the packages whose exported error-returning
// APIs gate experiment validity — the engine, the validator core, the
// store, the wire path, protocol encode/decode, sweep orchestration and
// observability exports — plus the root facade.
func ErrcritPackages(modulePath string) []string {
	return []string{
		modulePath,
		modulePath + "/internal/simnet",
		modulePath + "/internal/core",
		modulePath + "/internal/store",
		modulePath + "/internal/wire",
		modulePath + "/internal/openflow",
		modulePath + "/internal/sweep",
		modulePath + "/internal/obs",
		modulePath + "/internal/shard",
		modulePath + "/internal/loadgen",
	}
}

// ErrcritWaived maps exported error-returning APIs in the audited
// packages that are deliberately NOT errcrit-enforced to a one-line
// justification. errcritsync fails the build when an API is in neither
// this table nor CriticalAPIs, so every waiver here is an explicit,
// reviewed decision rather than silence.
func ErrcritWaived(modulePath string) map[string]string {
	return map[string]string{
		// Constructors and setup-path APIs: their errors abort before any
		// measurement exists, and call sites cannot proceed on failure.
		modulePath + ".New": "constructor; a config error aborts before the engine runs",
		"(*" + modulePath + "/internal/core.System).AttachSwitch": "topology wiring; fails setup before any trigger flows",
		modulePath + "/internal/obs.NewExpoHandler":               "constructor; a nil handler fails the server loudly",
		modulePath + "/internal/sweep.New":                        "constructor; a bad campaign config aborts before any run",
		modulePath + "/internal/sweep.NewCache":                   "constructor; a cache open error disables caching, not results",
		modulePath + "/internal/shard.New":                        "constructor; a config error aborts before any worker starts",
		modulePath + "/internal/loadgen.NewSource":                "constructor; a config error aborts before any event is generated",
		modulePath + "/internal/wire.Dial":                        "connection setup; failure is the result the caller observes",
		modulePath + "/internal/wire.DialConfig":                  "connection setup; failure is the result the caller observes",

		// Decode/validation APIs: returning the error on malformed input
		// is the function's contract, and handling it is the caller's
		// control flow rather than an experiment-validity gate.
		modulePath + "/internal/openflow.Parse":                      "frame validation; malformed input is expected protocol flow",
		modulePath + "/internal/openflow.ParsePacket":                "frame validation; malformed input is expected protocol flow",
		modulePath + "/internal/openflow.ReadMessage":                "read-loop control flow; io.EOF terminates the loop",
		modulePath + "/internal/openflow.DecapsulatePacketIn":        "frame validation; malformed input is expected protocol flow",
		modulePath + "/internal/store.ParseOp":                       "input validation; returning the error is the contract",
		"(" + modulePath + "/internal/obs.EventKind).MarshalJSON":    "json.Marshaler contract; encoding/json surfaces the error",
		"(*" + modulePath + "/internal/obs.EventKind).UnmarshalJSON": "json.Unmarshaler contract; encoding/json surfaces the error",
		modulePath + "/internal/sweep.PointKey":                      "key derivation; unmarshalable params surface at campaign setup",
		"(*" + modulePath + "/internal/wire.LineReader).ReadLine":    "read-loop control flow; io.EOF terminates the loop",
		"(*" + modulePath + "/internal/wire.BinReader).ReadEnvelope": "read-loop control flow; io.EOF terminates the loop",
		"(*" + modulePath + "/internal/wire.BinDecoder).Decode":      "frame validation; malformed input is expected protocol flow",
		modulePath + "/internal/wire.ParseCodec":                     "flag validation; a bad -codec value aborts before any connection",

		// Best-effort paths: a failure costs a retry or a diagnostic, not
		// result correctness.
		"(*" + modulePath + "/internal/sweep.Cache).Get":          "cache miss or read error falls back to recompute by design",
		"(*" + modulePath + "/internal/sweep.Cache).Put":          "best-effort write-behind; a failed put costs recompute only",
		"(*" + modulePath + "/internal/sweep.Cache).Len":          "diagnostic accessor",
		"(*" + modulePath + "/internal/wire.Client).RequestStats": "best-effort stats poll over a reconnecting link",
		"(*" + modulePath + "/internal/wire.Client).Close":        "best-effort shutdown",
		"(*" + modulePath + "/internal/wire.Server).Close":        "best-effort shutdown",
		"(*" + modulePath + "/internal/obs.Expo).Close":           "best-effort shutdown",
	}
}

// DefaultVClockConfig returns the vclockleak source configuration for a
// module rooted at modulePath: the simnet engine clock is the canonical
// virtual-time source (func() time.Duration clock values, Duration field
// reads and Duration parameters are sources implicitly).
func DefaultVClockConfig(modulePath string) VClockConfig {
	return VClockConfig{
		Sources: []string{
			"(*" + modulePath + "/internal/simnet.Engine).Now",
		},
	}
}

// DefaultSuite is the analyzer configuration enforced by cmd/jurylint and
// the tier-1 verify gate for the module rooted at modulePath. The root
// facade package (modulePath itself) is simulation-driven too: it wires
// and runs everything on the engine, so it joins the sim lists.
func DefaultSuite(modulePath string) []*Analyzer {
	sim := append(append([]string{}, SimPackages...), modulePath)
	wallclockPkgs := append(append([]string{}, sim...), BridgePackages...)
	wallclockPkgs = append(wallclockPkgs, CmdPackages...)
	return []*Analyzer{
		NewWallclock(wallclockPkgs),
		NewEventloop(sim),
		NewGuardedBy(nil), // acts only where `// guarded by` annotations exist
		NewErrCrit(CriticalAPIs(modulePath)),
		NewMaprange(sim),
		NewVClockLeak(nil, DefaultVClockConfig(modulePath)),
		NewErrCritSync(ErrCritSyncConfig{
			Packages: ErrcritPackages(modulePath),
			Curated:  CriticalAPIs(modulePath),
			Waived:   ErrcritWaived(modulePath),
			Anchor:   modulePath + "/internal/analysis.CriticalAPIs",
		}),
	}
}
