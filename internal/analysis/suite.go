package analysis

// SimPackages are the simulation-driven packages: everything in them runs
// as event handlers on the single simnet engine goroutine, so the full
// contract applies — no wall clock, no global RNG, no goroutines,
// channels or locks. metrics and openflow are pure computation consumed
// by event handlers and are held to the same contract.
var SimPackages = []string{
	"simnet", "core", "controller", "dataplane", "store", "cluster",
	"faults", "workload", "trigger", "topo", "policy", "experiment",
	"metrics", "openflow",
}

// BridgePackages carry event-driven components across real TCP and
// threads. They are allowed concurrency (checked by guardedby instead of
// eventloop), but wall-clock reads must stay confined to annotated
// real-time boundary code. sweep is the experiment-orchestration bridge:
// it fans whole simulations across a worker pool, so it owns goroutines
// and channels but must stay deterministic from the outside. obs is the
// observability bridge: its tracer runs on the engine goroutine against
// virtual time, but its registry is scraped by a live exposition server
// that owns goroutines and reads the wall clock at one annotated boundary.
// wiretest is the wire bridge's fault-injection harness: its conn and
// listener wrappers run on real sockets from test goroutines, but their
// fault schedules are explicit calls — no timers, no randomness — so it
// is held to the same wall-clock discipline as the bridge it exercises.
var BridgePackages = []string{"ofconn", "wire", "wire/wiretest", "sweep", "obs"}

// CriticalAPIs returns the FullName list of error-returning calls whose
// results must not be silently discarded, for a module rooted at
// modulePath: engine runs (a swallowed horizon error invalidates every
// measurement after it), REST flow installs, and the validator wire path.
func CriticalAPIs(modulePath string) []string {
	return []string{
		"(*" + modulePath + "/internal/simnet.Engine).Run",
		"(*" + modulePath + "/internal/simnet.Engine).RunUntilIdle",
		"(*" + modulePath + ".Simulation).Run",
		"(*" + modulePath + ".Simulation).InstallFlowREST",
		"(*" + modulePath + "/internal/core.System).InstallFlowREST",
		"(*" + modulePath + "/internal/wire.Client).Send",
		modulePath + "/internal/openflow.WriteMessage",
		// Sweep orchestration: a dropped campaign error means figures are
		// silently missing points. Generic methods are listed in their
		// origin form (errcrit matches through (*types.Func).Origin).
		"(*" + modulePath + "/internal/sweep.Sweep[P, R]).Run",
		"(*" + modulePath + "/internal/sweep.Sweep[P, R]).Results",
		modulePath + "/internal/sweep.Run",
		// Observability exports: a swallowed write error means a trace or
		// metrics page silently truncated on disk or on the wire.
		"(*" + modulePath + "/internal/obs.Tracer).WriteJSONL",
		"(*" + modulePath + "/internal/obs.Tracer).WriteChromeTrace",
		"(*" + modulePath + "/internal/obs.Registry).WritePrometheus",
		modulePath + "/internal/obs.ServeExpo",
	}
}

// DefaultSuite is the analyzer configuration enforced by cmd/jurylint and
// the tier-1 verify gate for the module rooted at modulePath. The root
// facade package (modulePath itself) is simulation-driven too: it wires
// and runs everything on the engine, so it joins the sim lists.
func DefaultSuite(modulePath string) []*Analyzer {
	sim := append(append([]string{}, SimPackages...), modulePath)
	wallclockPkgs := append(append([]string{}, sim...), BridgePackages...)
	return []*Analyzer{
		NewWallclock(wallclockPkgs),
		NewEventloop(sim),
		NewGuardedBy(nil), // acts only where `// guarded by` annotations exist
		NewErrCrit(CriticalAPIs(modulePath)),
		NewMaprange(sim),
	}
}
