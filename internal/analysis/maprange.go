package analysis

import (
	"go/ast"
	"go/types"
)

// NewMaprange returns the analyzer that flags iteration over maps in
// simulation-driven packages. Go randomizes map iteration order per
// process, so any map range whose effect depends on visit order breaks
// the bit-identical determinism the simnet substrate guarantees — and it
// does so silently, surfacing later as an unreproducible figure.
//
// The canonical deterministic idiom — collect the keys, sort them,
// iterate the sorted slice — is recognized and exempt: a range whose
// body only appends the range key to a slice that is passed to a
// sort/slices sorting call in the same function does not trip the rule.
// Genuinely order-insensitive loops (commutative aggregation such as
// counting, summation, or min/max) carry a //jurylint:allow maprange
// annotation with a justification.
func NewMaprange(packages []string) *Analyzer {
	return &Analyzer{
		Name:     "maprange",
		Doc:      "flags order-sensitive map iteration in simulation-driven packages",
		Packages: packages,
		Run:      runMaprange,
	}
}

func runMaprange(pass *Pass) {
	for _, file := range pass.Files {
		// Walk declaration by declaration so the sorted-keys exemption
		// can search the whole enclosing function for the sort call.
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkMapRanges(pass, fd.Body)
		}
	}
}

func checkMapRanges(pass *Pass, fnBody *ast.BlockStmt) {
	ast.Inspect(fnBody, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := pass.Info.Types[rng.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		if isSortedKeyCollection(pass, fnBody, rng) {
			return true
		}
		pass.Reportf(rng.Pos(), "map iteration order is randomized; sort the keys first, or annotate a provably order-insensitive loop")
		return true
	})
}

// isSortedKeyCollection reports whether rng is the collection half of the
// sorted-keys idiom: `for k := range m { keys = append(keys, k) }` with
// keys later handed to a sorting call in the same function.
func isSortedKeyCollection(pass *Pass, fnBody *ast.BlockStmt, rng *ast.RangeStmt) bool {
	key, ok := rng.Key.(*ast.Ident)
	if !ok || key.Name == "_" {
		return false
	}
	if rng.Value != nil && !isBlank(rng.Value) {
		return false
	}
	if len(rng.Body.List) != 1 {
		return false
	}
	asn, ok := rng.Body.List[0].(*ast.AssignStmt)
	if !ok || len(asn.Lhs) != 1 || len(asn.Rhs) != 1 {
		return false
	}
	dst, ok := asn.Lhs[0].(*ast.Ident)
	if !ok {
		return false
	}
	call, ok := asn.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) != 2 {
		return false
	}
	fun, ok := call.Fun.(*ast.Ident)
	if !ok || fun.Name != "append" {
		return false
	}
	if _, isBuiltin := pass.Info.Uses[fun].(*types.Builtin); !isBuiltin {
		return false
	}
	if base, ok := call.Args[0].(*ast.Ident); !ok || base.Name != dst.Name {
		return false
	}
	arg, ok := call.Args[1].(*ast.Ident)
	if !ok || pass.Info.Uses[arg] != pass.Info.Defs[key] {
		return false
	}
	dstObj := pass.Info.Uses[dst]
	if dstObj == nil {
		dstObj = pass.Info.Defs[dst]
	}
	return dstObj != nil && sliceIsSorted(pass, fnBody, dstObj)
}

// sortCalls are the sort and slices functions accepted as establishing a
// deterministic order for a collected key slice.
var sortCalls = map[string]bool{
	"Sort": true, "SortFunc": true, "SortStableFunc": true, "Stable": true,
	"Slice": true, "SliceStable": true,
	"Strings": true, "Ints": true, "Float64s": true,
}

func sliceIsSorted(pass *Pass, fnBody *ast.BlockStmt, obj types.Object) bool {
	found := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return true
		}
		if path := fn.Pkg().Path(); path != "sort" && path != "slices" {
			return true
		}
		if !sortCalls[fn.Name()] {
			return true
		}
		for _, a := range call.Args {
			if id, ok := a.(*ast.Ident); ok && pass.Info.Uses[id] == obj {
				found = true
			}
		}
		return true
	})
	return found
}
