package analysis

import (
	"go/token"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// wantRe matches expected-diagnostic comments in fixture files:
//
//	// want <rule> "<message substring>"
var wantRe = regexp.MustCompile(`want\s+([a-zA-Z0-9_-]+)\s+"([^"]+)"`)

type expectation struct {
	file    string
	line    int
	rule    string
	substr  string
	matched bool
}

// runFixture loads dir as a standalone package under importPath, runs the
// analyzers, and cross-checks the diagnostics against the fixture's
// `// want` comments: every want must be hit by exactly one diagnostic on
// its line, and every diagnostic must be claimed by a want.
func runFixture(t *testing.T, dir, importPath string, analyzers ...*Analyzer) {
	t.Helper()
	pkg, err := LoadDir(dir, importPath)
	if err != nil {
		t.Fatalf("load fixture %s: %v", dir, err)
	}
	wants := collectWants(pkg.Fset, pkg)
	if len(wants) == 0 {
		t.Fatalf("fixture %s declares no `// want` expectations", dir)
	}
	diags := RunAnalyzers([]*Package{pkg}, analyzers)
	for _, d := range diags {
		if !claim(wants, d.Pos.Filename, d.Pos.Line, d.Rule, d.Message) {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected %s diagnostic matching %q, got none",
				filepath.Base(w.file), w.line, w.rule, w.substr)
		}
	}
}

func collectWants(fset *token.FileSet, pkg *Package) []*expectation {
	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				for _, m := range wantRe.FindAllStringSubmatch(c.Text, -1) {
					pos := fset.Position(c.Pos())
					wants = append(wants, &expectation{
						file:   pos.Filename,
						line:   pos.Line,
						rule:   m[1],
						substr: m[2],
					})
				}
			}
		}
	}
	return wants
}

func claim(wants []*expectation, file string, line int, rule, msg string) bool {
	for _, w := range wants {
		if !w.matched && w.file == file && w.line == line && w.rule == rule &&
			strings.Contains(msg, w.substr) {
			w.matched = true
			return true
		}
	}
	return false
}

// fixtureDir builds the path to a fixture package and asserts the
// reported diagnostics carry usable positions (file:line, per the
// acceptance criteria).
func fixtureDir(parts ...string) string {
	return filepath.Join(append([]string{"testdata", "src"}, parts...)...)
}

func TestDiagnosticStringHasFileAndLine(t *testing.T) {
	d := Diagnostic{
		Pos:     token.Position{Filename: "x.go", Line: 3, Column: 7},
		Rule:    "wallclock",
		Message: "m",
	}
	if got, want := d.String(), "x.go:3:7: wallclock: m"; got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}

func TestAllowRules(t *testing.T) {
	cases := []struct {
		comment string
		want    string
	}{
		{"//jurylint:allow wallclock -- reason", "wallclock"},
		{"//jurylint:allow guardedby,errcrit -- reason", "guardedby,errcrit"},
		{"// plain comment", ""},
		{"//jurylint:allowwallclock", ""},
	}
	for _, c := range cases {
		got := strings.Join(allowRules(c.comment), ",")
		if got != c.want {
			t.Errorf("allowRules(%q) = %q, want %q", c.comment, got, c.want)
		}
	}
}

func TestAnalyzerAppliesTo(t *testing.T) {
	a := &Analyzer{Name: "x", Packages: []string{"simnet", "core"}}
	for path, want := range map[string]bool{
		"github.com/jurysdn/jury/internal/simnet": true,
		"github.com/jurysdn/jury/internal/core":   true,
		"github.com/jurysdn/jury/internal/wire":   false,
		"simnet":                                  true,
		"github.com/other/notsimnet":              false,
	} {
		if got := a.appliesTo(path); got != want {
			t.Errorf("appliesTo(%q) = %v, want %v", path, got, want)
		}
	}
	all := &Analyzer{Name: "y"}
	if !all.appliesTo("anything/at/all") {
		t.Error("empty Packages should match every path")
	}
}

func TestModulePathErrors(t *testing.T) {
	if _, err := ModulePath(t.TempDir()); err == nil {
		t.Fatal("ModulePath on empty dir should fail")
	}
	if _, err := FindModuleRoot(string(filepath.Separator)); err == nil {
		t.Fatal("FindModuleRoot at filesystem root should fail")
	}
}
