package analysis

import "testing"

func TestErrCritSyncFixture(t *testing.T) {
	runFixture(t, fixtureDir("errcritsync", "syncfix"), "syncfix",
		NewErrCritSync(ErrCritSyncConfig{
			Packages: []string{"syncfix"},
			Curated:  []string{"(*syncfix.Engine).Run", "syncfix.Gone"},
			Waived:   map[string]string{"syncfix.Helper": "fixture waiver"},
			Anchor:   "syncfix.criticalList",
		}))
}

// TestErrCritSyncAnchorAbsent pins the fixture-module behavior: when the
// anchor declaration does not resolve in the loaded packages, stale
// entries are not reported (only missing APIs are).
func TestErrCritSyncAnchorAbsent(t *testing.T) {
	pkg, err := LoadDir(fixtureDir("errcritsync", "syncfix"), "syncfix")
	if err != nil {
		t.Fatal(err)
	}
	diags := RunAnalyzers([]*Package{pkg}, []*Analyzer{
		NewErrCritSync(ErrCritSyncConfig{
			Packages: []string{"syncfix"},
			Curated:  []string{"(*syncfix.Engine).Run", "syncfix.Gone"},
			Waived: map[string]string{
				"(*syncfix.Engine).Flush": "quiet the missing report",
				"syncfix.Helper":          "fixture waiver",
			},
			Anchor: "some/other/pkg.CriticalAPIs",
		}),
	})
	if len(diags) != 0 {
		t.Fatalf("expected no diagnostics with unresolvable anchor, got %v", diags)
	}
}
