// Package sweep is the experiment-orchestration subsystem: it fans
// independent simulation runs across a bounded worker pool while keeping
// every result bit-identical to a sequential execution.
//
// Every figure of the paper's evaluation (§VII) is a sweep over
// independent parameter points — (k, m), rates, cluster sizes, traces,
// faults — and each point boots its own simnet engine, so points are
// embarrassingly parallel. What makes naive parallelism dangerous is
// seeding: if a point's seed depended on execution order, concurrent and
// sequential campaigns would diverge. sweep therefore derives each
// point's seed from the campaign root seed and a stable key (the
// canonical JSON encoding of the point's parameters), so the schedule
// cannot reach the results:
//
//	seed(point) = FNV-1a64(rootSeed || key)   (interpreted as int64)
//
// The package is a concurrent bridge in the jurylint suite: it is exempt
// from the eventloop rule (worker pools are its whole point) but held to
// guardedby mutex discipline, the wallclock rule (the ETA clock is
// injected, defaulting to time.Now only at the annotated boundary), and
// errcrit on its Run/Results error returns.
package sweep

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"runtime"
	"sync"
	"time"
)

// Point is one parameter point of a sweep with its stable identity.
type Point[P any] struct {
	// Index is the point's position in the input slice; results are
	// aggregated in this order regardless of completion order.
	Index int `json:"index"`
	// Params are the caller's parameters, exactly as passed in.
	Params P `json:"params"`
	// Key is the canonical JSON encoding of Params. It identifies the
	// point across runs: seeds and cache entries are derived from it.
	Key string `json:"key"`
	// Seed is derived from the root seed and Key; it is independent of
	// Index, scheduling and parallelism.
	Seed int64 `json:"seed"`
}

// Result pairs a point with its outcome.
type Result[P, R any] struct {
	Point Point[P] `json:"point"`
	Value R        `json:"value"`
	// Err is the point's failure, nil on success. Not serialized: cache
	// entries exist only for successful points.
	Err error `json:"-"`
	// Elapsed is the wall-clock execution time of the point (zero for
	// cache hits and skipped points).
	Elapsed time.Duration `json:"-"`
	// Cached reports that Value was loaded from the result cache.
	Cached bool `json:"-"`
}

// Runner executes one point. It must derive all randomness from
// pt.Seed; it runs concurrently with other points and must not share
// mutable state with them.
type Runner[P, R any] func(ctx context.Context, pt Point[P]) (R, error)

// Config parameterizes a sweep.
type Config struct {
	// RootSeed is the campaign seed every point seed is derived from.
	RootSeed int64
	// Parallelism bounds the worker pool; 0 means runtime.GOMAXPROCS(0).
	Parallelism int
	// FailFast cancels the remaining points on the first point error.
	// The default (collect-all) records per-point errors and keeps going.
	FailFast bool
	// Cache, when non-nil, skips points whose results are already on
	// disk and persists fresh results, making campaigns resumable.
	Cache *Cache
	// Progress, when non-nil, receives serialized progress events.
	// Callbacks run on worker goroutines under an internal lock: keep
	// them fast and do not call Sweep methods from them.
	Progress ProgressFunc
	// Clock supplies wall time for Elapsed/ETA accounting. Nil defaults
	// to time.Now at the real-time boundary; tests inject fakes.
	Clock func() time.Time
}

// ErrNotRun marks points never executed because the sweep was cancelled
// or a fail-fast sibling error stopped the campaign.
var ErrNotRun = errors.New("sweep: point not executed")

var errAlreadyRun = errors.New("sweep: Run called twice")
var errNotStarted = errors.New("sweep: Results called before Run")

// Sweep executes a set of parameter points through a runner. Build one
// with New, execute with Run, collect with Results.
type Sweep[P, R any] struct {
	cfg    Config
	points []Point[P]
	run    Runner[P, R]

	mu sync.Mutex
	// results holds one slot per point, in input order. guarded by mu.
	results []Result[P, R]
	// state is idle → running → done. guarded by mu.
	state int

	prog *progress
}

const (
	stateIdle = iota
	stateRunning
	stateDone
)

// New derives every point's key and seed and prepares a sweep. It fails
// if any parameter point cannot be canonically encoded.
func New[P, R any](cfg Config, params []P, run Runner[P, R]) (*Sweep[P, R], error) {
	if run == nil {
		return nil, errors.New("sweep: nil runner")
	}
	if cfg.Parallelism <= 0 {
		cfg.Parallelism = runtime.GOMAXPROCS(0)
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now //jurylint:allow wallclock -- default clock at the real-time boundary (ETA/Elapsed accounting only)
	}
	points := make([]Point[P], len(params))
	for i, p := range params {
		key, err := PointKey(p)
		if err != nil {
			return nil, fmt.Errorf("sweep: encode point %d: %w", i, err)
		}
		points[i] = Point[P]{
			Index:  i,
			Params: p,
			Key:    key,
			Seed:   DeriveSeed(cfg.RootSeed, key),
		}
	}
	return &Sweep[P, R]{
		cfg:    cfg,
		points: points,
		run:    run,
		prog:   newProgress(len(points), cfg.Parallelism, cfg.Progress),
	}, nil
}

// Points returns the derived points (indices, keys, seeds) in input
// order. The slice is shared; callers must not mutate it.
func (s *Sweep[P, R]) Points() []Point[P] { return s.points }

// Run executes the sweep. It returns the context error on cancellation
// and, in fail-fast mode, the first point error; in collect-all mode
// point errors are reported by Results instead. Run can be called once.
func (s *Sweep[P, R]) Run(ctx context.Context) error {
	s.mu.Lock()
	if s.state != stateIdle {
		s.mu.Unlock()
		return errAlreadyRun
	}
	s.state = stateRunning
	s.results = make([]Result[P, R], len(s.points))
	for i := range s.results {
		s.results[i] = Result[P, R]{Point: s.points[i], Err: ErrNotRun}
	}
	s.mu.Unlock()

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		failMu   sync.Mutex
		failErr  error // guarded by failMu
		failOnce bool  // guarded by failMu
	)
	fail := func(i int, err error) {
		failMu.Lock()
		if !failOnce {
			failOnce = true
			failErr = fmt.Errorf("sweep: point %d (%s): %w", i, s.points[i].Key, err)
		}
		failMu.Unlock()
		cancel()
	}

	indices := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < s.cfg.Parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range indices {
				if ctx.Err() != nil {
					continue // drain without running
				}
				res := s.runPoint(ctx, i)
				s.mu.Lock()
				s.results[i] = res
				s.mu.Unlock()
				s.prog.done(res.Point.Index, res.Point.Key, res.Err, res.Cached, res.Elapsed)
				if res.Err != nil && s.cfg.FailFast {
					fail(i, res.Err)
				}
			}
		}()
	}
feed:
	for i := range s.points {
		select {
		case indices <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(indices)
	wg.Wait()

	s.mu.Lock()
	s.state = stateDone
	s.mu.Unlock()

	failMu.Lock()
	err := failErr
	failMu.Unlock()
	if err != nil {
		return err
	}
	return context.Cause(ctx)
}

// runPoint executes one point: cache probe, runner, cache fill.
func (s *Sweep[P, R]) runPoint(ctx context.Context, i int) Result[P, R] {
	pt := s.points[i]
	res := Result[P, R]{Point: pt}
	if s.cfg.Cache != nil {
		hit, err := s.cfg.Cache.Get(pt.Key, &res.Value)
		if err != nil {
			res.Err = fmt.Errorf("sweep: cache read for point %d: %w", i, err)
			return res
		}
		if hit {
			res.Cached = true
			return res
		}
	}
	s.prog.started(pt.Index, pt.Key)
	start := s.cfg.Clock()
	res.Value, res.Err = s.run(ctx, pt)
	res.Elapsed = s.cfg.Clock().Sub(start)
	if res.Err == nil && s.cfg.Cache != nil {
		if err := s.cfg.Cache.Put(pt.Key, res.Value); err != nil {
			res.Err = fmt.Errorf("sweep: cache write for point %d: %w", i, err)
		}
	}
	return res
}

// Results returns the per-point outcomes in input order, plus the
// aggregate of all point errors (nil when every point succeeded). It is
// an error to collect results before Run has completed.
func (s *Sweep[P, R]) Results() ([]Result[P, R], error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.state != stateDone {
		return nil, errNotStarted
	}
	out := make([]Result[P, R], len(s.results))
	copy(out, s.results)
	var errs []error
	for _, r := range out {
		if r.Err != nil {
			errs = append(errs, fmt.Errorf("point %d (%s): %w", r.Point.Index, r.Point.Key, r.Err))
		}
	}
	return out, errors.Join(errs...)
}

// Run is the convenience one-shot: New + (*Sweep).Run + Results. In
// collect-all mode the returned results are complete even when the
// returned error aggregates point failures.
func Run[P, R any](ctx context.Context, cfg Config, params []P, run Runner[P, R]) ([]Result[P, R], error) {
	s, err := New(cfg, params, run)
	if err != nil {
		return nil, err
	}
	if err := s.Run(ctx); err != nil {
		// Partial results still exist (cancellation, fail-fast); return
		// what completed alongside the run error.
		res, _ := s.Results() //jurylint:allow errcrit -- run error supersedes the aggregate; per-point errors stay readable on the results
		return res, err
	}
	return s.Results()
}

// PointKey returns the canonical JSON encoding of params — the stable
// identity that seeds and cache entries are derived from. Maps encode
// with sorted keys and struct fields in declaration order, so the key is
// deterministic across processes.
func PointKey(params any) (string, error) {
	b, err := json.Marshal(params)
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// DeriveSeed derives a point seed from the campaign root seed and the
// point key: FNV-1a64 over the root seed's big-endian bytes followed by
// the key bytes. The derivation is pure, so parallel and sequential
// sweeps — and sweeps over permuted point slices — give every point the
// same seed.
func DeriveSeed(root int64, key string) int64 {
	h := fnv.New64a()
	var rb [8]byte
	binary.BigEndian.PutUint64(rb[:], uint64(root))
	h.Write(rb[:])
	h.Write([]byte(key))
	return int64(h.Sum64())
}
