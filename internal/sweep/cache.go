package sweep

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
)

// Cache is the on-disk result cache: one JSON file per completed point,
// named by SHA-256 of the version salt and the point key. A campaign
// interrupted halfway resumes by skipping every point whose file exists;
// changing the salt (or the key scheme) orphans old entries rather than
// serving stale results.
//
// Entries are written atomically (temp file + rename), so a crash never
// leaves a partial entry behind, and concurrent sweeps sharing a
// directory at worst redo a point. Files are self-describing — they
// carry the salt and key alongside the value — and Get verifies both, so
// a hash collision or a hand-edited file surfaces as an error instead of
// a silently wrong figure.
type Cache struct {
	dir  string
	salt string
}

// cacheEntry is the JSON schema of one cache file.
type cacheEntry struct {
	Salt  string          `json:"salt"`
	Key   string          `json:"key"`
	Value json.RawMessage `json:"value"`
}

// NewCache opens (creating if needed) a cache directory. salt is the
// code-version discriminator: results are only served back to sweeps
// using the same salt, so bumping it invalidates the whole cache without
// touching the directory.
func NewCache(dir, salt string) (*Cache, error) {
	if dir == "" {
		return nil, errors.New("sweep: empty cache directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("sweep: create cache dir: %w", err)
	}
	return &Cache{dir: dir, salt: salt}, nil
}

// Dir returns the cache directory.
func (c *Cache) Dir() string { return c.dir }

// path maps a point key to its entry file.
func (c *Cache) path(key string) string {
	sum := sha256.Sum256([]byte(c.salt + "\x00" + key))
	return filepath.Join(c.dir, hex.EncodeToString(sum[:])+".json")
}

// Get loads the cached value for key into out (a pointer), reporting
// whether an entry existed. A missing file is a miss; a present but
// undecodable or mismatched entry is an error.
func (c *Cache) Get(key string, out any) (bool, error) {
	data, err := os.ReadFile(c.path(key))
	if errors.Is(err, fs.ErrNotExist) {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	var ent cacheEntry
	if err := json.Unmarshal(data, &ent); err != nil {
		return false, fmt.Errorf("decode cache entry for %s: %w", key, err)
	}
	if ent.Salt != c.salt || ent.Key != key {
		return false, fmt.Errorf("cache entry mismatch: file claims salt=%q key=%q, want salt=%q key=%q",
			ent.Salt, ent.Key, c.salt, key)
	}
	if err := json.Unmarshal(ent.Value, out); err != nil {
		return false, fmt.Errorf("decode cached value for %s: %w", key, err)
	}
	return true, nil
}

// Put persists the value for key atomically.
func (c *Cache) Put(key string, v any) error {
	raw, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("encode value for %s: %w", key, err)
	}
	data, err := json.Marshal(cacheEntry{Salt: c.salt, Key: key, Value: raw})
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(c.dir, "entry-*.tmp")
	if err != nil {
		return err
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return errors.Join(werr, cerr)
	}
	if err := os.Rename(tmp.Name(), c.path(key)); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// Len counts the entries currently on disk (for tests and -progress
// reporting).
func (c *Cache) Len() (int, error) {
	entries, err := os.ReadDir(c.dir)
	if err != nil {
		return 0, err
	}
	n := 0
	for _, e := range entries {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".json" {
			n++
		}
	}
	return n, nil
}
