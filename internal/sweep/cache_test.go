package sweep

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
)

func TestCacheRoundTrip(t *testing.T) {
	c, err := NewCache(filepath.Join(t.TempDir(), "cache"), "v1")
	if err != nil {
		t.Fatal(err)
	}
	var out int64
	hit, err := c.Get(`{"k":1}`, &out)
	if err != nil || hit {
		t.Fatalf("empty cache: hit=%v err=%v", hit, err)
	}
	if err := c.Put(`{"k":1}`, int64(99)); err != nil {
		t.Fatal(err)
	}
	hit, err = c.Get(`{"k":1}`, &out)
	if err != nil || !hit || out != 99 {
		t.Fatalf("round trip: hit=%v out=%d err=%v", hit, out, err)
	}
	if n, err := c.Len(); err != nil || n != 1 {
		t.Fatalf("Len = %d, %v", n, err)
	}
}

func TestCacheSaltInvalidates(t *testing.T) {
	dir := t.TempDir()
	c1, err := NewCache(dir, "v1")
	if err != nil {
		t.Fatal(err)
	}
	if err := c1.Put("key", 1); err != nil {
		t.Fatal(err)
	}
	c2, err := NewCache(dir, "v2")
	if err != nil {
		t.Fatal(err)
	}
	var out int
	hit, err := c2.Get("key", &out)
	if err != nil || hit {
		t.Fatalf("salted-out entry served: hit=%v err=%v", hit, err)
	}
}

func TestCacheCorruptEntrySurfaces(t *testing.T) {
	c, err := NewCache(t.TempDir(), "v1")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(c.path("key"), []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out int
	if _, err := c.Get("key", &out); err == nil {
		t.Fatal("corrupt entry did not surface")
	}
}

func TestCacheMismatchedEntrySurfaces(t *testing.T) {
	c, err := NewCache(t.TempDir(), "v1")
	if err != nil {
		t.Fatal(err)
	}
	// A file at key A's path claiming to be key B (hash collision or
	// hand-edit) must error, not silently serve B's value.
	if err := c.Put("other", 7); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(c.path("other"), c.path("key")); err != nil {
		t.Fatal(err)
	}
	var out int
	if _, err := c.Get("key", &out); err == nil {
		t.Fatal("mismatched entry did not surface")
	}
}

func TestSweepResumesFromWarmCache(t *testing.T) {
	cache, err := NewCache(t.TempDir(), "v1")
	if err != nil {
		t.Fatal(err)
	}
	pts := grid(9)
	var executions atomic.Int64
	runner := func(_ context.Context, pt Point[params]) (int64, error) {
		executions.Add(1)
		return pt.Seed, nil
	}
	cfg := Config{RootSeed: 5, Parallelism: 3, Cache: cache}
	cold, err := Run[params, int64](context.Background(), cfg, pts, runner)
	if err != nil {
		t.Fatal(err)
	}
	if n := executions.Load(); n != 9 {
		t.Fatalf("cold run executed %d points", n)
	}
	warm, err := Run[params, int64](context.Background(), cfg, pts, runner)
	if err != nil {
		t.Fatal(err)
	}
	if n := executions.Load(); n != 9 {
		t.Fatalf("warm run re-executed: %d total executions", n)
	}
	for i := range warm {
		if !warm[i].Cached {
			t.Fatalf("point %d not served from cache", i)
		}
		if warm[i].Value != cold[i].Value {
			t.Fatalf("point %d cache changed value: %d vs %d", i, warm[i].Value, cold[i].Value)
		}
	}
}

func TestSweepResumesAfterInterruption(t *testing.T) {
	cache, err := NewCache(t.TempDir(), "v1")
	if err != nil {
		t.Fatal(err)
	}
	pts := grid(10)
	boom := errors.New("interrupted")
	// First campaign dies at point 6 in fail-fast mode.
	_, err = Run[params, int64](context.Background(),
		Config{RootSeed: 5, Parallelism: 1, FailFast: true, Cache: cache}, pts,
		func(_ context.Context, pt Point[params]) (int64, error) {
			if pt.Index == 6 {
				return 0, boom
			}
			return pt.Seed, nil
		})
	if !errors.Is(err, boom) {
		t.Fatalf("first campaign: %v", err)
	}
	if n, err := cache.Len(); err != nil || n != 6 {
		t.Fatalf("cache holds %d entries after interruption (err=%v), want 6", n, err)
	}
	// Resume: only the failed point and the never-started tail execute.
	var executions atomic.Int64
	res, err := Run[params, int64](context.Background(),
		Config{RootSeed: 5, Parallelism: 1, Cache: cache}, pts,
		func(_ context.Context, pt Point[params]) (int64, error) {
			executions.Add(1)
			return pt.Seed, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if n := executions.Load(); n != 4 {
		t.Fatalf("resume executed %d points, want 4", n)
	}
	for i, r := range res {
		if r.Value != r.Point.Seed {
			t.Fatalf("point %d value %d != seed %d", i, r.Value, r.Point.Seed)
		}
		if wantCached := i < 6; r.Cached != wantCached {
			t.Fatalf("point %d cached=%v, want %v", i, r.Cached, wantCached)
		}
	}
}

func TestNewCacheValidation(t *testing.T) {
	if _, err := NewCache("", "v1"); err == nil {
		t.Fatal("empty dir accepted")
	}
}
