package sweep

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

type params struct {
	K    int     `json:"k"`
	Rate float64 `json:"rate"`
}

func grid(n int) []params {
	out := make([]params, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, params{K: i % 7, Rate: float64(100 * (i + 1))})
	}
	return out
}

// pureRunner derives its output from the point seed only, so any
// schedule must produce identical results.
func pureRunner(_ context.Context, pt Point[params]) (int64, error) {
	return pt.Seed*31 + int64(pt.Params.K), nil
}

func TestDeriveSeedStable(t *testing.T) {
	a := DeriveSeed(7, `{"k":2}`)
	b := DeriveSeed(7, `{"k":2}`)
	if a != b {
		t.Fatalf("same root+key gave %d and %d", a, b)
	}
	if DeriveSeed(7, `{"k":3}`) == a {
		t.Fatal("different keys collided")
	}
	if DeriveSeed(8, `{"k":2}`) == a {
		t.Fatal("different roots collided")
	}
}

func TestPointKeyCanonical(t *testing.T) {
	// Map keys sort in encoding/json, so logically equal maps agree.
	k1, err := PointKey(map[string]int{"b": 2, "a": 1})
	if err != nil {
		t.Fatal(err)
	}
	k2, err := PointKey(map[string]int{"a": 1, "b": 2})
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Fatalf("map keys not canonical: %q vs %q", k1, k2)
	}
	if _, err := PointKey(func() {}); err == nil {
		t.Fatal("unencodable params accepted")
	}
}

func TestSeedsIndependentOfPosition(t *testing.T) {
	pts := grid(8)
	s1, err := New[params, int64](Config{RootSeed: 7}, pts, pureRunner)
	if err != nil {
		t.Fatal(err)
	}
	// The same parameter point at a different index keeps its seed.
	rev := make([]params, len(pts))
	for i, p := range pts {
		rev[len(pts)-1-i] = p
	}
	s2, err := New[params, int64](Config{RootSeed: 7}, rev, pureRunner)
	if err != nil {
		t.Fatal(err)
	}
	byKey := make(map[string]int64)
	for _, p := range s1.Points() {
		byKey[p.Key] = p.Seed
	}
	for _, p := range s2.Points() {
		if byKey[p.Key] != p.Seed {
			t.Fatalf("seed for %s changed with position: %d vs %d", p.Key, byKey[p.Key], p.Seed)
		}
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	run := func(parallelism int) []byte {
		res, err := Run[params, int64](context.Background(),
			Config{RootSeed: 42, Parallelism: parallelism}, grid(23), pureRunner)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	seq := run(1)
	par := run(8)
	if string(seq) != string(par) {
		t.Fatalf("parallel sweep diverged from sequential:\nseq: %s\npar: %s", seq, par)
	}
}

func TestResultsOrderedByIndex(t *testing.T) {
	res, err := Run[params, int64](context.Background(),
		Config{RootSeed: 1, Parallelism: 4}, grid(17), pureRunner)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 17 {
		t.Fatalf("got %d results", len(res))
	}
	for i, r := range res {
		if r.Point.Index != i {
			t.Fatalf("result %d carries index %d", i, r.Point.Index)
		}
		if r.Err != nil {
			t.Fatalf("point %d: %v", i, r.Err)
		}
	}
}

func TestCollectAllCapturesErrors(t *testing.T) {
	boom := errors.New("boom")
	res, err := Run[params, int64](context.Background(),
		Config{RootSeed: 1, Parallelism: 4}, grid(10),
		func(_ context.Context, pt Point[params]) (int64, error) {
			if pt.Index%3 == 0 {
				return 0, boom
			}
			return 1, nil
		})
	if err == nil {
		t.Fatal("aggregate error missing")
	}
	if !errors.Is(err, boom) {
		t.Fatalf("aggregate error does not wrap the point error: %v", err)
	}
	failed := 0
	for _, r := range res {
		if r.Point.Index%3 == 0 {
			if !errors.Is(r.Err, boom) {
				t.Fatalf("point %d error = %v", r.Point.Index, r.Err)
			}
			failed++
		} else if r.Err != nil {
			t.Fatalf("healthy point %d failed: %v", r.Point.Index, r.Err)
		}
	}
	if failed != 4 {
		t.Fatalf("expected 4 failures, saw %d", failed)
	}
}

func TestFailFastStopsEarly(t *testing.T) {
	boom := errors.New("boom")
	var executed atomic.Int64
	s, err := New[params, int64](Config{RootSeed: 1, Parallelism: 1, FailFast: true}, grid(20),
		func(_ context.Context, pt Point[params]) (int64, error) {
			executed.Add(1)
			if pt.Index == 2 {
				return 0, boom
			}
			return 1, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	runErr := s.Run(context.Background())
	if !errors.Is(runErr, boom) {
		t.Fatalf("Run returned %v, want the point error", runErr)
	}
	if n := executed.Load(); n > 4 {
		t.Fatalf("fail-fast still executed %d points", n)
	}
	res, resErr := s.Results()
	if resErr == nil {
		t.Fatal("Results should aggregate the failure")
	}
	if !errors.Is(res[19].Err, ErrNotRun) {
		t.Fatalf("tail point error = %v, want ErrNotRun", res[19].Err)
	}
}

func TestContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{}, 1)
	s, err := New[params, int64](Config{RootSeed: 1, Parallelism: 1}, grid(50),
		func(ctx context.Context, pt Point[params]) (int64, error) {
			select {
			case started <- struct{}{}:
			default:
			}
			<-ctx.Done()
			return 0, ctx.Err()
		})
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		<-started
		cancel()
	}()
	if err := s.Run(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Run returned %v, want context.Canceled", err)
	}
	res, resErr := s.Results()
	if resErr == nil {
		t.Fatal("cancelled sweep should report point errors")
	}
	notRun := 0
	for _, r := range res {
		if errors.Is(r.Err, ErrNotRun) {
			notRun++
		}
	}
	if notRun == 0 {
		t.Fatal("no points left unexecuted after cancellation")
	}
}

func TestRunAndResultsStateErrors(t *testing.T) {
	s, err := New[params, int64](Config{}, grid(1), pureRunner)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Results(); err == nil {
		t.Fatal("Results before Run succeeded")
	}
	if err := s.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(context.Background()); err == nil {
		t.Fatal("second Run succeeded")
	}
}

func TestProgressEventsAndETA(t *testing.T) {
	var now time.Time
	var clockMu sync.Mutex
	clock := func() time.Time {
		clockMu.Lock()
		defer clockMu.Unlock()
		now = now.Add(time.Second) // every clock read advances 1s
		return now
	}
	var mu sync.Mutex
	var events []Event
	res, err := Run[params, int64](context.Background(),
		Config{RootSeed: 3, Parallelism: 1, Clock: clock, Progress: func(ev Event) {
			mu.Lock()
			events = append(events, ev)
			mu.Unlock()
		}}, grid(4), pureRunner)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		if r.Elapsed <= 0 {
			t.Fatalf("point %d has no elapsed time", r.Point.Index)
		}
	}
	var startedN, doneN int
	var lastDone Event
	for _, ev := range events {
		switch ev.Type {
		case PointStarted:
			startedN++
		case PointDone:
			doneN++
			lastDone = ev
			if ev.Done < 1 || ev.Done > 4 {
				t.Fatalf("done count %d out of range", ev.Done)
			}
		}
	}
	if startedN != 4 || doneN != 4 {
		t.Fatalf("saw %d started / %d done events, want 4/4", startedN, doneN)
	}
	if lastDone.Done != 4 || lastDone.Total != 4 {
		t.Fatalf("final event counts %d/%d", lastDone.Done, lastDone.Total)
	}
	if lastDone.ETA != 0 {
		t.Fatalf("final ETA = %v, want 0", lastDone.ETA)
	}
	// Mid-sweep events must estimate from completed durations.
	sawETA := false
	for _, ev := range events {
		if ev.Type == PointDone && ev.Done < ev.Total && ev.ETA > 0 {
			sawETA = true
		}
	}
	if !sawETA {
		t.Fatal("no mid-sweep ETA estimate")
	}
}

func TestParallelismActuallyConcurrent(t *testing.T) {
	const workers = 4
	var cur, peak atomic.Int64
	gate := make(chan struct{})
	var once sync.Once
	res, err := Run[params, int64](context.Background(),
		Config{RootSeed: 1, Parallelism: workers}, grid(workers),
		func(_ context.Context, pt Point[params]) (int64, error) {
			n := cur.Add(1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			if n == workers {
				once.Do(func() { close(gate) })
			}
			<-gate // hold every worker until all are in flight
			cur.Add(-1)
			return 0, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != workers {
		t.Fatalf("got %d results", len(res))
	}
	if p := peak.Load(); p != workers {
		t.Fatalf("peak concurrency %d, want %d", p, workers)
	}
}

func TestRunRejectsNilRunner(t *testing.T) {
	if _, err := New[params, int64](Config{}, grid(1), nil); err == nil {
		t.Fatal("nil runner accepted")
	}
}

func TestPointKeysDistinguishPoints(t *testing.T) {
	pts := grid(30)
	s, err := New[params, int64](Config{}, pts, pureRunner)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[string]bool)
	for _, p := range s.Points() {
		if seen[p.Key] {
			t.Fatalf("duplicate key %s", p.Key)
		}
		seen[p.Key] = true
		if !strings.Contains(p.Key, fmt.Sprintf(`"k":%d`, p.Params.K)) {
			t.Fatalf("key %q does not encode params", p.Key)
		}
	}
}
