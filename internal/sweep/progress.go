package sweep

import (
	"sync"
	"time"
)

// EventType classifies progress events.
type EventType int

const (
	// PointStarted fires when a worker begins executing a point (cache
	// hits never start).
	PointStarted EventType = iota
	// PointDone fires when a point completes — executed, cache-served or
	// failed.
	PointDone
)

// Event is one serialized progress notification.
type Event struct {
	Type EventType
	// Index and Key identify the point.
	Index int
	Key   string
	// Err is the point's failure (PointDone only).
	Err error
	// Cached reports a cache-served completion (PointDone only).
	Cached bool
	// Elapsed is the point's execution time (PointDone, executed points).
	Elapsed time.Duration
	// Done and Total count completed and overall points.
	Done, Total int
	// ETA estimates the remaining wall time from the mean duration of
	// executed points and the worker-pool width; zero until the first
	// executed point completes.
	ETA time.Duration
}

// ProgressFunc receives progress events. Events are serialized by an
// internal lock, so implementations need no synchronization of their
// own, but they run on worker goroutines: keep them fast and do not call
// Sweep methods from them.
type ProgressFunc func(Event)

// progress tracks completion counts and duration statistics and fans
// events to the configured callback.
type progress struct {
	total       int
	parallelism int
	fn          ProgressFunc

	mu sync.Mutex
	// completed counts finished points. guarded by mu.
	completed int
	// execCount and execSum aggregate executed (non-cached) point
	// durations for the ETA estimate. guarded by mu.
	execCount int
	execSum   time.Duration
}

func newProgress(total, parallelism int, fn ProgressFunc) *progress {
	return &progress{total: total, parallelism: parallelism, fn: fn}
}

func (p *progress) started(index int, key string) {
	if p.fn == nil {
		return
	}
	p.mu.Lock()
	ev := Event{Type: PointStarted, Index: index, Key: key, Done: p.completed, Total: p.total}
	p.fn(ev)
	p.mu.Unlock()
}

func (p *progress) done(index int, key string, err error, cached bool, elapsed time.Duration) {
	p.mu.Lock()
	p.completed++
	if !cached && err == nil {
		p.execCount++
		p.execSum += elapsed
	}
	if p.fn != nil {
		ev := Event{
			Type:    PointDone,
			Index:   index,
			Key:     key,
			Err:     err,
			Cached:  cached,
			Elapsed: elapsed,
			Done:    p.completed,
			Total:   p.total,
			ETA:     p.etaLocked(),
		}
		p.fn(ev)
	}
	p.mu.Unlock()
}

// etaLocked estimates remaining wall time: mean executed-point duration
// times remaining points, divided by the pool width. Callers hold mu
// (proven by the guardedby call graph).
func (p *progress) etaLocked() time.Duration {
	remaining := p.total - p.completed
	if remaining <= 0 || p.execCount == 0 {
		return 0
	}
	mean := p.execSum / time.Duration(p.execCount)
	eta := mean * time.Duration(remaining) / time.Duration(p.parallelism)
	return eta
}
