package workload

import (
	"testing"
	"time"
)

// TestRateProfileEdgeCases pins the boundary behavior of the rate
// profiles: non-positive periods degrade to the base rate, and duty
// cycles clamp into [0, 1] instead of producing negative phases.
func TestRateProfileEdgeCases(t *testing.T) {
	cases := []struct {
		name string
		p    RateProfile
		at   time.Duration
		want float64
	}{
		{"square zero period yields base", SquareBurst(5, 50, 0, 0.5), 0, 5},
		{"square zero period yields base late", SquareBurst(5, 50, 0, 0.5), time.Hour, 5},
		{"square negative period yields base", SquareBurst(5, 50, -time.Second, 0.5), 300 * time.Millisecond, 5},
		{"square negative duty clamps to always-base", SquareBurst(5, 50, time.Second, -0.7), 0, 5},
		{"square negative duty clamps mid-period", SquareBurst(5, 50, time.Second, -0.7), 500 * time.Millisecond, 5},
		{"square duty above one clamps to always-peak", SquareBurst(5, 50, time.Second, 1.5), 0, 50},
		{"square duty above one clamps late phase", SquareBurst(5, 50, time.Second, 1.5), 999 * time.Millisecond, 50},
		{"square zero duty never peaks", SquareBurst(5, 50, time.Second, 0), 0, 5},
		{"square full duty always peaks", SquareBurst(5, 50, time.Second, 1), 900 * time.Millisecond, 50},
		{"sine zero period yields base", SineRate(3, 9, 0), 0, 3},
		{"sine zero period yields base late", SineRate(3, 9, 0), time.Hour, 3},
		{"sine negative period yields base", SineRate(3, 9, -time.Minute), 42 * time.Second, 3},
		{"sine phase zero starts midway", SineRate(4, 8, time.Second), 0, 6},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := c.p(c.at); got != c.want {
				t.Fatalf("profile(%v) = %v, want %v", c.at, got, c.want)
			}
		})
	}
}

// TestTraceSpecProfileBoundaries pins TraceSpec.Profile's duty-cycle
// boundaries: duty outside (0, 1) collapses to a constant mean-rate
// profile, and a burst factor large enough to drive the computed base
// negative clamps the base at zero rather than going negative.
func TestTraceSpecProfileBoundaries(t *testing.T) {
	base := TraceSpec{MeanFlowRate: 100, BurstFactor: 2, BurstPeriod: time.Second}

	for _, duty := range []float64{0, -0.5, 1, 1.5} {
		spec := base
		spec.BurstDuty = duty
		p := spec.Profile()
		for _, at := range []time.Duration{0, 250 * time.Millisecond, 990 * time.Millisecond} {
			if got := p(at); got != spec.MeanFlowRate {
				t.Fatalf("duty=%v: profile(%v) = %v, want constant %v", duty, at, got, spec.MeanFlowRate)
			}
		}
	}

	// peak = 100·10 = 1000, base = (100 - 1000·0.5)/0.5 = -800 → clamp 0.
	hot := base
	hot.BurstFactor = 10
	hot.BurstDuty = 0.5
	p := hot.Profile()
	if got := p(250 * time.Millisecond); got != 1000 {
		t.Fatalf("peak phase = %v, want 1000", got)
	}
	if got := p(750 * time.Millisecond); got != 0 {
		t.Fatalf("off phase = %v, want clamped 0 (not negative)", got)
	}

	// A zero burst period with an in-range duty still never divides by
	// zero: SquareBurst degrades to base, which the clamp set to
	// (mean - peak·duty)/(1-duty).
	flat := base
	flat.BurstDuty = 0.25
	flat.BurstPeriod = 0
	want := (flat.MeanFlowRate - flat.MeanFlowRate*flat.BurstFactor*0.25) / 0.75
	if got := flat.Profile()(time.Hour); got != want {
		t.Fatalf("zero-period trace profile = %v, want base %v", got, want)
	}
}
