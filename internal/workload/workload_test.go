package workload

import (
	"math"
	"testing"
	"time"

	"github.com/jurysdn/jury/internal/dataplane"
	"github.com/jurysdn/jury/internal/openflow"
	"github.com/jurysdn/jury/internal/simnet"
	"github.com/jurysdn/jury/internal/topo"
)

func newFabric(t *testing.T, n int) (*simnet.Engine, *dataplane.Fabric) {
	t.Helper()
	eng := simnet.NewEngine(3)
	top, err := topo.Linear(n)
	if err != nil {
		t.Fatal(err)
	}
	return eng, dataplane.NewFabric(eng, top)
}

func TestConstantRateArrivals(t *testing.T) {
	eng, fabric := newFabric(t, 4)
	d := NewDriver(eng, fabric)
	d.Start(ConstantRate(1000), 10*time.Second)
	if err := eng.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	got := float64(d.Flows()) / 10
	if math.Abs(got-1000) > 100 {
		t.Fatalf("rate = %.0f/s, want ~1000", got)
	}
}

func TestStopHaltsArrivals(t *testing.T) {
	eng, fabric := newFabric(t, 2)
	d := NewDriver(eng, fabric)
	d.Start(ConstantRate(1000), time.Hour)
	if err := eng.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	n := d.Flows()
	d.Stop()
	if err := eng.Run(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if d.Flows() != n {
		t.Fatalf("flows grew after Stop: %d -> %d", n, d.Flows())
	}
}

func TestSquareBurstProfile(t *testing.T) {
	p := SquareBurst(100, 1000, time.Second, 0.25)
	if got := p(100 * time.Millisecond); got != 1000 {
		t.Fatalf("peak phase = %v", got)
	}
	if got := p(800 * time.Millisecond); got != 100 {
		t.Fatalf("base phase = %v", got)
	}
	// Duty cycle out of range is clamped.
	if got := SquareBurst(5, 10, time.Second, 2)(0); got != 10 {
		t.Fatalf("clamped duty = %v", got)
	}
}

func TestSineRateBounds(t *testing.T) {
	p := SineRate(100, 500, time.Second)
	for i := 0; i < 100; i++ {
		v := p(time.Duration(i) * 10 * time.Millisecond)
		if v < 99.999 || v > 500.001 {
			t.Fatalf("sine rate out of bounds: %v", v)
		}
	}
}

func TestSpoofedSourcesAreUnique(t *testing.T) {
	eng, fabric := newFabric(t, 2)
	d := NewDriver(eng, fabric)
	sw, _ := fabric.Switch(1)
	seen := make(map[openflow.MAC]bool)
	sw.SetSendUp(func(m openflow.Message) {
		if pin, ok := m.(*openflow.PacketIn); ok {
			if pf, err := openflow.ParsePacket(pin.Data, pin.InPort); err == nil {
				if seen[pf.EthSrc] {
					t.Fatalf("duplicate spoofed source %v", pf.EthSrc)
				}
				seen[pf.EthSrc] = true
			}
		}
	})
	sw2, _ := fabric.Switch(2)
	sw2.SetSendUp(func(openflow.Message) {})
	d.LocalPairs = false
	for i := 0; i < 100; i++ {
		d.InjectFlow()
	}
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
}

func TestLocalPairsInjectAtDestinationSwitch(t *testing.T) {
	eng, fabric := newFabric(t, 3)
	d := NewDriver(eng, fabric)
	d.LocalPairs = true
	counts := make(map[topo.DPID]int)
	for _, sw := range fabric.Switches() {
		sw := sw
		sw.SetSendUp(func(m openflow.Message) {
			if pin, ok := m.(*openflow.PacketIn); ok {
				pf, _ := openflow.ParsePacket(pin.Data, pin.InPort)
				// The destination must be the host on this switch.
				h, ok := fabric.Topology().HostByMAC(pf.EthDst)
				if !ok || h.Attach.DPID != sw.DPID() {
					t.Errorf("flow at %v targets %v", sw.DPID(), pf.EthDst)
				}
				counts[sw.DPID()]++
			}
		})
	}
	for i := 0; i < 60; i++ {
		d.InjectFlow()
	}
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if len(counts) < 2 {
		t.Fatalf("flows concentrated: %v", counts)
	}
}

func TestWarmupSendsARPs(t *testing.T) {
	eng, fabric := newFabric(t, 4)
	d := NewDriver(eng, fabric)
	arps := 0
	for _, sw := range fabric.Switches() {
		sw.SetSendUp(func(m openflow.Message) {
			if pin, ok := m.(*openflow.PacketIn); ok {
				if pf, err := openflow.ParsePacket(pin.Data, pin.InPort); err == nil && pf.EthType == openflow.EthTypeARP {
					arps++
				}
			}
		})
	}
	d.Warmup()
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if arps != 4 {
		t.Fatalf("warmup ARPs = %d, want one per host", arps)
	}
}

func TestHostJoinUsesFreshAddress(t *testing.T) {
	eng, fabric := newFabric(t, 2)
	d := NewDriver(eng, fabric)
	var srcs []openflow.MAC
	for _, sw := range fabric.Switches() {
		sw.SetSendUp(func(m openflow.Message) {
			if pin, ok := m.(*openflow.PacketIn); ok {
				if pf, err := openflow.ParsePacket(pin.Data, pin.InPort); err == nil {
					srcs = append(srcs, pf.EthSrc)
				}
			}
		})
	}
	d.InjectHostJoin()
	d.InjectHostJoin()
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if len(srcs) != 2 || srcs[0] == srcs[1] {
		t.Fatalf("joins = %v", srcs)
	}
	for _, h := range fabric.Topology().Hosts() {
		if h.MAC == srcs[0] {
			t.Fatal("join reused an existing host MAC")
		}
	}
}

func TestChurnFlapsLinks(t *testing.T) {
	eng, fabric := newFabric(t, 4)
	d := NewDriver(eng, fabric)
	d.StartChurn(0, time.Second, 5*time.Second)
	flapped := false
	for i := 1; i <= 50; i++ {
		eng.Schedule(time.Duration(i)*100*time.Millisecond, func() {
			for _, l := range fabric.Topology().Links() {
				if fabric.LinkDown(l.Src) {
					flapped = true
				}
			}
		})
	}
	if err := eng.Run(6 * time.Second); err != nil {
		t.Fatal(err)
	}
	if !flapped {
		t.Fatal("no link flap observed")
	}
	// All links restored at the end.
	for _, l := range fabric.Topology().Links() {
		if fabric.LinkDown(l.Src) {
			t.Fatal("link left down after churn window")
		}
	}
}

func TestCbenchBursts(t *testing.T) {
	eng, fabric := newFabric(t, 2)
	c := NewCbench(eng, fabric)
	c.BurstSize = 100
	c.Period = time.Second
	pins := 0
	for _, sw := range fabric.Switches() {
		sw.SetSendUp(func(m openflow.Message) {
			if _, ok := m.(*openflow.PacketIn); ok {
				pins++
			}
		})
	}
	c.Start(2500 * time.Millisecond)
	if err := eng.Run(3 * time.Second); err != nil {
		t.Fatal(err)
	}
	if c.Packets() != 300 {
		t.Fatalf("packets = %d, want 3 bursts × 100", c.Packets())
	}
	if pins == 0 {
		t.Fatal("no PACKET_INs generated")
	}
	c.Stop()
}

func TestTraceSpecsPreserveMeanRate(t *testing.T) {
	for _, spec := range Traces() {
		p := spec.Profile()
		// Integrate the profile over several periods.
		var sum float64
		samples := 10000
		span := 10 * spec.BurstPeriod
		if span == 0 {
			span = time.Second
		}
		for i := 0; i < samples; i++ {
			sum += p(time.Duration(i) * span / time.Duration(samples))
		}
		mean := sum / float64(samples)
		if math.Abs(mean-spec.MeanFlowRate)/spec.MeanFlowRate > 0.05 {
			t.Errorf("%s: profile mean %.1f, spec mean %.1f", spec.Name, mean, spec.MeanFlowRate)
		}
	}
}

func TestTracesDistinct(t *testing.T) {
	traces := Traces()
	if len(traces) != 3 {
		t.Fatalf("traces = %d", len(traces))
	}
	names := map[string]bool{}
	for _, tr := range traces {
		names[tr.Name] = true
	}
	if !names["LBNL"] || !names["UNIV"] || !names["SMIA"] {
		t.Fatalf("names = %v", names)
	}
}

func TestNonSpoofedSourcesReuseRules(t *testing.T) {
	eng, fabric := newFabric(t, 2)
	d := NewDriver(eng, fabric)
	d.SpoofSources = false
	d.LocalPairs = true
	pins := 0
	for _, sw := range fabric.Switches() {
		sw.SetSendUp(func(m openflow.Message) {
			if _, ok := m.(*openflow.PacketIn); ok {
				pins++
			}
		})
	}
	// Without spoofing, the source is the destination host's own MAC (the
	// generator reuses real host identities), so repeated local flows to
	// the same host reuse the same (src,dst) pair.
	for i := 0; i < 10; i++ {
		d.InjectFlow()
	}
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	// Every injection still misses (no controller installs rules here),
	// but the sources must repeat.
	if pins != 10 {
		t.Fatalf("packet-ins = %d", pins)
	}
}
