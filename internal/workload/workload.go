// Package workload generates the traffic that drives the evaluation: an
// open-loop new-flow generator with arbitrary rate profiles (the
// tcpreplay-style load of §VII-B1), a Cbench-style closed-burst generator
// (Fig. 4e), statistical models of the three benign traces of Fig. 4d
// (LBNL enterprise, UNIV university, SMIA cyber-defense exercise), and the
// host-join / link-teardown churn of the detection experiments (§VII-A).
package workload

import (
	"math"
	"time"

	"github.com/jurysdn/jury/internal/dataplane"
	"github.com/jurysdn/jury/internal/openflow"
	"github.com/jurysdn/jury/internal/simnet"
	"github.com/jurysdn/jury/internal/topo"
)

// RateProfile returns the target new-flow injection rate (flows/second) at
// virtual time t.
type RateProfile func(t time.Duration) float64

// ConstantRate returns a flat profile.
func ConstantRate(perSecond float64) RateProfile {
	return func(time.Duration) float64 { return perSecond }
}

// SquareBurst alternates between base and peak: each period spends
// duty·period at peak. The detection experiments use this to reach the
// paper's "peak PACKET_IN rate" while keeping the time-average stable.
func SquareBurst(base, peak float64, period time.Duration, duty float64) RateProfile {
	if duty < 0 {
		duty = 0
	}
	if duty > 1 {
		duty = 1
	}
	return func(t time.Duration) float64 {
		if period <= 0 {
			return base
		}
		phase := float64(t%period) / float64(period)
		if phase < duty {
			return peak
		}
		return base
	}
}

// SineRate oscillates between base and peak with the given period.
func SineRate(base, peak float64, period time.Duration) RateProfile {
	return func(t time.Duration) float64 {
		if period <= 0 {
			return base
		}
		phase := 2 * math.Pi * float64(t%period) / float64(period)
		return base + (peak-base)*(0.5+0.5*math.Sin(phase))
	}
}

// Driver injects synthetic traffic into a fabric. Each "flow" is a TCP SYN
// from a fresh spoofed source MAC/IP toward a real host, so every packet
// misses the TCAM and elicits a PACKET_IN (as with Cbench and the paper's
// tcpreplay methodology).
type Driver struct {
	eng    *simnet.Engine
	fabric *dataplane.Fabric
	hosts  []*dataplane.Host

	// PayloadBytes pads each injected frame.
	PayloadBytes int
	// SpoofSources uses a fresh source MAC per flow (every packet
	// misses). When false, flows reuse the real host MACs, so repeat
	// pairs hit installed rules.
	SpoofSources bool
	// LocalPairs injects each flow at the destination host's own edge
	// switch, so every flow costs exactly one PACKET_IN and elicits
	// exactly one FLOW_MOD — the clean per-switch load of the
	// throughput experiments (Figs. 4f-4h). When false, flows enter at
	// a random edge switch and miss hop-by-hop along the path.
	LocalPairs bool

	flowSeq   uint64
	joinSeq   uint64
	flows     int64
	stopped   bool
	arrivalEv *simnet.Event
}

// NewDriver creates a traffic driver over the fabric's hosts.
func NewDriver(eng *simnet.Engine, fabric *dataplane.Fabric) *Driver {
	return &Driver{
		eng:          eng,
		fabric:       fabric,
		hosts:        fabric.Hosts(),
		PayloadBytes: 64,
		SpoofSources: true,
	}
}

// Flows returns the number of flows injected.
func (d *Driver) Flows() int64 { return d.flows }

// Warmup makes every real host ARP for its successor so the controllers
// learn all attachment points before measurement starts.
func (d *Driver) Warmup() {
	for i, h := range d.hosts {
		next := d.hosts[(i+1)%len(d.hosts)]
		_ = h.SendARPRequest(next.Info().IP)
	}
}

// Start begins flow arrivals following profile until until (absolute
// virtual time). Arrivals are a non-homogeneous Poisson process.
func (d *Driver) Start(profile RateProfile, until time.Duration) {
	d.stopped = false
	d.scheduleNext(profile, until)
}

// Stop cancels future arrivals.
func (d *Driver) Stop() {
	d.stopped = true
	d.arrivalEv.Cancel()
}

func (d *Driver) scheduleNext(profile RateProfile, until time.Duration) {
	if d.stopped {
		return
	}
	now := d.eng.Now()
	if now >= until {
		return
	}
	rate := profile(now)
	if rate <= 0 {
		// Idle: re-check shortly.
		d.arrivalEv = d.eng.Schedule(10*time.Millisecond, func() { d.scheduleNext(profile, until) })
		return
	}
	gap := time.Duration(d.eng.Rand().ExpFloat64() / rate * float64(time.Second))
	if gap < time.Microsecond {
		gap = time.Microsecond
	}
	d.arrivalEv = d.eng.Schedule(gap, func() {
		d.InjectFlow()
		d.scheduleNext(profile, until)
	})
}

// InjectFlow injects one new TCP flow toward a random real host.
func (d *Driver) InjectFlow() {
	if len(d.hosts) == 0 {
		return
	}
	rng := d.eng.Rand()
	dst := d.hosts[rng.Intn(len(d.hosts))]
	ingress := dst
	if !d.LocalPairs {
		ingress = d.hosts[rng.Intn(len(d.hosts))]
	}
	d.flowSeq++
	d.flows++
	var (
		srcMAC openflow.MAC
		srcIP  openflow.IPv4
	)
	if d.SpoofSources {
		srcMAC = openflow.MAC{0x00, 0xAA, byte(d.flowSeq >> 24), byte(d.flowSeq >> 16), byte(d.flowSeq >> 8), byte(d.flowSeq)}
		srcIP = openflow.IPv4{172, 16, byte(d.flowSeq >> 8), byte(d.flowSeq)}
	} else {
		srcMAC = ingress.Info().MAC
		srcIP = ingress.Info().IP
	}
	frame := openflow.TCPPacket(
		srcMAC, dst.Info().MAC, srcIP, dst.Info().IP,
		uint16(10000+d.flowSeq%50000), 80, 0x02 /* SYN */, d.PayloadBytes)
	_ = d.fabric.InjectAtSwitch(ingress.Info().Attach, frame)
}

// InjectHostJoin simulates a new host joining: a gratuitous ARP request
// from a fresh MAC/IP at a random edge port.
func (d *Driver) InjectHostJoin() {
	if len(d.hosts) == 0 {
		return
	}
	rng := d.eng.Rand()
	at := d.hosts[rng.Intn(len(d.hosts))].Info().Attach
	d.joinSeq++
	mac := openflow.MAC{0x00, 0xBB, byte(d.joinSeq >> 24), byte(d.joinSeq >> 16), byte(d.joinSeq >> 8), byte(d.joinSeq)}
	ip := openflow.IPv4{192, 168, byte(d.joinSeq >> 8), byte(d.joinSeq)}
	frame := openflow.ARPPacket(openflow.ARPRequest, mac, ip, openflow.MAC{}, openflow.IPv4{192, 168, 0, 1})
	_ = d.fabric.InjectAtSwitch(at, frame)
}

// StartChurn schedules periodic host joins and link flaps until until.
// Either period may be zero to disable that churn class.
func (d *Driver) StartChurn(joinEvery, flapEvery time.Duration, until time.Duration) {
	if joinEvery > 0 {
		var tick func()
		tick = func() {
			if d.stopped || d.eng.Now() >= until {
				return
			}
			d.InjectHostJoin()
			d.eng.Schedule(joinEvery, tick)
		}
		d.eng.Schedule(joinEvery, tick)
	}
	if flapEvery > 0 {
		links := d.fabric.Topology().Links()
		if len(links) == 0 {
			return
		}
		var flap func()
		flap = func() {
			if d.stopped || d.eng.Now() >= until {
				return
			}
			l := links[d.eng.Rand().Intn(len(links))]
			d.fabric.SetLinkDown(l.Src, true)
			// Restore after a short outage so the topology heals.
			src := l.Src
			d.eng.Schedule(flapEvery/2, func() { d.fabric.SetLinkDown(src, false) })
			d.eng.Schedule(flapEvery, flap)
		}
		d.eng.Schedule(flapEvery, flap)
	}
}

// Cbench drives closed bursts at one switch: every period it injects a
// burst of unique-source packets back to back, reproducing the bursty
// PACKET_IN pattern that overwhelms the controller in Fig. 4e.
type Cbench struct {
	eng    *simnet.Engine
	fabric *dataplane.Fabric
	at     topo.Port
	dst    *dataplane.Host

	// BurstSize packets are injected each period.
	BurstSize int
	// Period between bursts.
	Period time.Duration
	// Spread is the window over which a burst's packets are injected.
	Spread time.Duration

	seq     uint64
	packets int64
	stopped bool
}

// NewCbench creates a burst generator injecting at the first host port of
// the fabric, targeting the first host.
func NewCbench(eng *simnet.Engine, fabric *dataplane.Fabric) *Cbench {
	hosts := fabric.Hosts()
	var (
		at  topo.Port
		dst *dataplane.Host
	)
	if len(hosts) > 0 {
		at = hosts[0].Info().Attach
		dst = hosts[len(hosts)-1]
	}
	return &Cbench{
		eng:    eng,
		fabric: fabric,
		at:     at,
		dst:    dst,

		BurstSize: 4096,
		Period:    time.Second,
		Spread:    100 * time.Millisecond,
	}
}

// Packets returns the number of packets injected.
func (c *Cbench) Packets() int64 { return c.packets }

// Start begins bursting until until.
func (c *Cbench) Start(until time.Duration) {
	c.stopped = false
	var burst func()
	burst = func() {
		if c.stopped || c.eng.Now() >= until || c.dst == nil {
			return
		}
		gap := c.Spread / time.Duration(c.BurstSize)
		for i := 0; i < c.BurstSize; i++ {
			c.seq++
			seq := c.seq
			c.eng.Schedule(time.Duration(i)*gap, func() { c.inject(seq) })
		}
		c.eng.Schedule(c.Period, burst)
	}
	burst()
}

// Stop halts bursting.
func (c *Cbench) Stop() { c.stopped = true }

func (c *Cbench) inject(seq uint64) {
	c.packets++
	srcMAC := openflow.MAC{0x00, 0xCB, byte(seq >> 24), byte(seq >> 16), byte(seq >> 8), byte(seq)}
	srcIP := openflow.IPv4{172, 20, byte(seq >> 8), byte(seq)}
	frame := openflow.TCPPacket(srcMAC, c.dst.Info().MAC, srcIP, c.dst.Info().IP,
		uint16(10000+seq%50000), 80, 0x02, 0)
	_ = c.fabric.InjectAtSwitch(c.at, frame)
}

// TraceSpec is a statistical model of a benign packet trace.
type TraceSpec struct {
	Name string
	// MeanFlowRate is the average new-flow rate (flows/second).
	MeanFlowRate float64
	// BurstFactor is the peak-to-mean ratio of the rate process.
	BurstFactor float64
	// BurstPeriod and BurstDuty shape the ON/OFF burst pattern.
	BurstPeriod time.Duration
	BurstDuty   float64
	// JoinEvery / FlapEvery are host-join and link-flap periods (0=off).
	JoinEvery time.Duration
	FlapEvery time.Duration
}

// Profile derives the trace's rate profile.
func (t TraceSpec) Profile() RateProfile {
	duty := t.BurstDuty
	if duty <= 0 || duty >= 1 {
		return ConstantRate(t.MeanFlowRate)
	}
	peak := t.MeanFlowRate * t.BurstFactor
	base := (t.MeanFlowRate - peak*duty) / (1 - duty)
	if base < 0 {
		base = 0
	}
	return SquareBurst(base, peak, t.BurstPeriod, duty)
}

// The three benign traces of Fig. 4d, modeled statistically: LBNL is an
// enterprise trace (moderate, smooth), UNIV a university data-center trace
// (heavier, bursty), SMIA a cyber-defense exercise (scan-heavy, extremely
// bursty with host churn).
func LBNLTrace() TraceSpec {
	return TraceSpec{
		Name:         "LBNL",
		MeanFlowRate: 220,
		BurstFactor:  2.0,
		BurstPeriod:  2 * time.Second,
		BurstDuty:    0.25,
		JoinEvery:    5 * time.Second,
	}
}

// UNIVTrace models the IMC-2010 university data-center trace.
func UNIVTrace() TraceSpec {
	return TraceSpec{
		Name:         "UNIV",
		MeanFlowRate: 420,
		BurstFactor:  2.6,
		BurstPeriod:  1500 * time.Millisecond,
		BurstDuty:    0.2,
		JoinEvery:    4 * time.Second,
	}
}

// SMIATrace models the FOI cyber-defense-exercise trace.
func SMIATrace() TraceSpec {
	return TraceSpec{
		Name:         "SMIA",
		MeanFlowRate: 340,
		BurstFactor:  3.5,
		BurstPeriod:  time.Second,
		BurstDuty:    0.12,
		JoinEvery:    2 * time.Second,
		FlapEvery:    0,
	}
}

// Traces returns the three benign trace models.
func Traces() []TraceSpec {
	return []TraceSpec{LBNLTrace(), UNIVTrace(), SMIATrace()}
}
