package shard

import (
	"fmt"
	"io"
	"reflect"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/jurysdn/jury/internal/cluster"
	"github.com/jurysdn/jury/internal/core"
	"github.com/jurysdn/jury/internal/obs"
	"github.com/jurysdn/jury/internal/store"
	"github.com/jurysdn/jury/internal/topo"
	"github.com/jurysdn/jury/internal/trigger"
)

func members3() *cluster.Membership {
	return cluster.NewMembership(cluster.AnyControllerOneMaster,
		[]store.NodeID{1, 2, 3}, []topo.DPID{1, 2})
}

func cacheAt(ctrl, primary store.NodeID, trig, key, value string, digest uint64, at time.Duration) core.Response {
	return core.Response{
		Controller:  ctrl,
		Primary:     primary,
		Trigger:     trigger.ID(trig),
		Kind:        core.CacheUpdate,
		Cache:       store.LinksDB,
		Op:          store.OpCreate,
		Key:         key,
		Value:       value,
		StateDigest: digest,
		At:          at,
	}
}

func execAt(ctrl, primary store.NodeID, trig, key, value string, digest uint64, at time.Duration) core.Response {
	r := cacheAt(ctrl, primary, trig, key, value, digest, at)
	r.Kind = core.SecondaryExec
	r.Tainted = true
	return r
}

func doneAt(ctrl, primary store.NodeID, trig string, digest uint64, at time.Duration) core.Response {
	return core.Response{
		Controller:  ctrl,
		Primary:     primary,
		Trigger:     trigger.ID(trig),
		Kind:        core.ExecDone,
		Tainted:     true,
		StateDigest: digest,
		At:          at,
	}
}

// mixedWorkload returns the test corpus in global submission order: 240
// triggers spaced 1ms apart mixing early-valid consensus, omission faults,
// same-state value conflicts and no-op agreement, each response stamped
// with its virtual submission time.
func mixedWorkload() []core.Response {
	var out []core.Response
	for i := 0; i < 240; i++ {
		trig := fmt.Sprintf("τ%03d", i)
		at := time.Duration(i) * time.Millisecond
		switch i % 4 {
		case 0: // full agreement, early valid decision
			out = append(out,
				cacheAt(1, 1, trig, "k", "up", 7, at),
				execAt(2, 1, trig, "k", "up", 7, at+time.Millisecond),
				execAt(3, 1, trig, "k", "up", 7, at+2*time.Millisecond))
		case 1: // secondaries act, primary silent: omission at timeout
			out = append(out,
				execAt(2, 1, trig, "k", "up", 9, at),
				execAt(3, 1, trig, "k", "up", 9, at+time.Millisecond))
		case 2: // same-state conflict quorum: value fault
			out = append(out,
				cacheAt(1, 1, trig, "k", "up", 7, at),
				execAt(2, 1, trig, "k", "down", 7, at+time.Millisecond),
				execAt(3, 1, trig, "k", "down", 7, at+2*time.Millisecond))
		default: // side-effect-free replicated executions: no-op consensus
			out = append(out,
				doneAt(2, 1, trig, 7, at),
				doneAt(3, 1, trig, 7, at+time.Millisecond))
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// runPlane pushes the workload through a fresh plane of the given width in
// deterministic mode and returns every decision keyed by trigger.
func runPlane(t *testing.T, shards int, load []core.Response) (map[trigger.ID]core.Result, *Plane) {
	t.Helper()
	results := make(map[trigger.ID]core.Result)
	p, err := New(Config{
		Shards:            shards,
		Validator:         core.ValidatorConfig{K: 2, Timeout: 50 * time.Millisecond},
		Members:           members3(),
		TimeFromResponses: true,
		OnResult: func(r core.Result) {
			if prev, dup := results[r.Trigger]; dup {
				t.Errorf("trigger %s decided twice: %+v then %+v", r.Trigger, prev, r)
			}
			results[r.Trigger] = r
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range load {
		p.Submit(r)
	}
	p.Close()
	return results, p
}

// TestPlaneWidthInvariance is the parallel-plane determinism contract: for
// a fixed input stream, every trigger's verdict, fault class, decision time
// and evidence — and the merged alarm list — must be identical at any
// shard count. Wall-clock worker interleaving must be invisible in output.
func TestPlaneWidthInvariance(t *testing.T) {
	load := mixedWorkload()
	ref, pref := runPlane(t, 1, load)
	if len(ref) != 240 {
		t.Fatalf("reference plane decided %d triggers, want 240", len(ref))
	}
	if pref.Faults() == 0 {
		t.Fatal("workload raised no alarms — too benign to prove invariance")
	}
	for _, shards := range []int{2, 8} {
		got, p := runPlane(t, shards, load)
		if !reflect.DeepEqual(ref, got) {
			for id, r := range ref {
				if !reflect.DeepEqual(r, got[id]) {
					t.Fatalf("shards=%d: trigger %s diverges:\n  1 shard: %+v\n  %d shards: %+v",
						shards, id, r, shards, got[id])
				}
			}
			t.Fatalf("shards=%d: decision set diverges (%d vs %d triggers)", shards, len(got), len(ref))
		}
		if p.Decided() != pref.Decided() || p.Valid() != pref.Valid() ||
			p.Faults() != pref.Faults() || p.NonDeterministic() != pref.NonDeterministic() ||
			p.Timeouts() != pref.Timeouts() {
			t.Fatalf("shards=%d: aggregate counters diverge", shards)
		}
		if !reflect.DeepEqual(pref.Alarms(), p.Alarms()) {
			t.Fatalf("shards=%d: merged alarm list diverges", shards)
		}
		if p.FalsePositiveRate() != pref.FalsePositiveRate() {
			t.Fatalf("shards=%d: false-positive rate diverges", shards)
		}
	}
}

// TestPlaneKillAdoptsBacklog models a shard crash under load: the victim's
// queued responses must be adopted by a live successor and every submitted
// trigger must still decide — queue drained or alarmed, never silently
// dropped.
func TestPlaneKillAdoptsBacklog(t *testing.T) {
	const shards = 4
	p, err := New(Config{
		Shards:            shards,
		Validator:         core.ValidatorConfig{K: 2, Timeout: 20 * time.Millisecond},
		Members:           members3(),
		TimeFromResponses: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	// Find trigger IDs homed on the victim shard.
	const victim = 1
	var owned []string
	for i := 0; len(owned) < 8; i++ {
		id := fmt.Sprintf("κ%d", i)
		if core.ShardForTrigger(trigger.ID(id), shards) == victim {
			owned = append(owned, id)
		}
	}

	// Stall the victim behind a gate, then queue an omission burst it owns:
	// tainted-only responses, so no other shard holds a copy.
	gate := make(chan struct{})
	p.enqueue(p.workers[victim], item{kind: itemStall, gate: gate})
	burst := 0
	for i, id := range owned {
		at := time.Duration(i) * time.Millisecond
		p.Submit(execAt(2, 1, id, "k", "up", 9, at))
		p.Submit(execAt(3, 1, id, "k", "up", 9, at+time.Millisecond))
		burst += 2
	}

	// Declare the shard dead before releasing it so it provably processes
	// nothing, then run the crash handshake.
	p.workers[victim].dead.Store(true)
	close(gate)
	adopted := p.Kill(victim)
	if adopted != burst {
		t.Fatalf("Kill adopted %d responses, want the full burst of %d", adopted, burst)
	}
	if got := p.Steals(); got != int64(burst) {
		t.Fatalf("Steals() = %d, want %d", got, burst)
	}
	if got := p.ShardDecided(victim); got != 0 {
		t.Fatalf("dead shard decided %d triggers, want 0", got)
	}

	p.Drain()
	if got := p.Decided(); got != int64(len(owned)) {
		t.Fatalf("Decided() = %d after drain, want %d — responses were dropped", got, len(owned))
	}
	if got := p.Faults(); got != int64(len(owned)) {
		t.Fatalf("Faults() = %d, want %d omission alarms", got, len(owned))
	}
	if got := p.Pending(); got != 0 {
		t.Fatalf("Pending() = %d after drain, want 0", got)
	}

	// The crash surface is bounded: re-killing is a no-op and the last
	// shard alive cannot be killed.
	if got := p.Kill(victim); got != -1 {
		t.Fatalf("second Kill(%d) = %d, want -1", victim, got)
	}
	survivors := 0
	for i := 0; i < shards; i++ {
		if i != victim && p.Kill(i) >= 0 {
			survivors++
		}
	}
	if survivors != shards-2 {
		t.Fatalf("killed %d more shards, want %d", survivors, shards-2)
	}
	for i := 0; i < shards; i++ {
		if p.alive[i] {
			if got := p.Kill(i); got != -1 {
				t.Fatalf("Kill of last live shard = %d, want -1", got)
			}
		}
	}
}

// TestPlaneKillSplitTrigger pins the documented duplicate-decision
// semantics of a crash that splits one trigger: the victim already
// processed the first response while the second sits in its backlog, so
// the victim's die-flush decides the trigger from the half it saw (timer
// expiry), and the successor re-opens the same trigger ID from the
// adopted remainder and decides it again. Nothing is silently dropped —
// the fail-safe cost is exactly one duplicate result, which consumers
// must dedupe per trigger ID (see the Kill contract).
func TestPlaneKillSplitTrigger(t *testing.T) {
	const shards = 4
	var (
		rmu     sync.Mutex
		perTrig = map[trigger.ID]int{}
	)
	p, err := New(Config{
		Shards:            shards,
		Validator:         core.ValidatorConfig{K: 2, Timeout: 20 * time.Millisecond},
		Members:           members3(),
		TimeFromResponses: true,
		OnResult: func(r core.Result) {
			if !r.TimedOut {
				t.Errorf("split trigger decided without timer expiry: %+v", r)
			}
			rmu.Lock()
			perTrig[r.Trigger]++
			rmu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	// Find a trigger homed on the victim shard.
	const victim = 1
	var id trigger.ID
	for i := 0; ; i++ {
		id = trigger.ID(fmt.Sprintf("σ%d", i))
		if core.ShardForTrigger(id, shards) == victim {
			break
		}
	}

	// First half: the live victim processes one tainted exec and opens the
	// trigger (pending, deadline armed, far from expiry).
	p.Submit(execAt(2, 1, string(id), "k", "up", 9, 0))
	for p.Pending() != 1 {
		time.Sleep(100 * time.Microsecond) // wallclock:boundary -- wait for the victim to open the trigger
	}

	// Second half: parked in the victim's backlog behind a stall gate.
	gate := make(chan struct{})
	p.enqueue(p.workers[victim], item{kind: itemStall, gate: gate})
	p.Submit(execAt(3, 1, string(id), "k", "up", 9, time.Millisecond))

	p.workers[victim].dead.Store(true)
	close(gate)
	if adopted := p.Kill(victim); adopted != 1 {
		t.Fatalf("Kill adopted %d responses, want 1", adopted)
	}
	if got := p.Steals(); got != 1 {
		t.Fatalf("Steals() = %d, want 1", got)
	}

	p.Drain()
	rmu.Lock()
	dups := perTrig[id]
	rmu.Unlock()
	if dups != 2 {
		t.Fatalf("split trigger decided %d times, want exactly 2 (victim flush + successor re-open)", dups)
	}
	// Each half alone is below the omission quorum, so both decisions are
	// timed-out valids; the counters count decisions, not triggers.
	if got := p.Decided(); got != 2 {
		t.Fatalf("Decided() = %d, want 2", got)
	}
	if got := p.Timeouts(); got != 2 {
		t.Fatalf("Timeouts() = %d, want 2", got)
	}
	if got := p.Faults(); got != 0 {
		t.Fatalf("Faults() = %d, want 0", got)
	}
	if got := p.Pending(); got != 0 {
		t.Fatalf("Pending() = %d after drain, want 0", got)
	}
}

// TestPlaneAccessorsSafeUnderLoad races the stats side against a live
// dispatch side: every accessor and the Prometheus scrape must be callable
// from arbitrary goroutines while workers decide. The suite runs under
// -race in CI, so any unsynchronized read fails here.
func TestPlaneAccessorsSafeUnderLoad(t *testing.T) {
	p, err := New(Config{
		Shards:            4,
		Validator:         core.ValidatorConfig{K: 2, Timeout: 5 * time.Millisecond},
		Members:           members3(),
		TimeFromResponses: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_ = p.Pending()
				_ = p.Alarms()
				_ = p.Decided()
				_ = p.Valid()
				_ = p.Faults()
				_ = p.NonDeterministic()
				_ = p.Timeouts()
				_ = p.Steals()
				_ = p.FalsePositiveRate()
				for s := 0; s < p.Shards(); s++ {
					_ = p.ShardDecided(s)
				}
				if err := p.Metrics().WritePrometheus(io.Discard); err != nil {
					t.Errorf("WritePrometheus: %v", err)
					return
				}
			}
		}()
	}
	for i := 0; i < 1500; i++ {
		trig := fmt.Sprintf("τ%d", i)
		at := time.Duration(i) * 100 * time.Microsecond
		p.Submit(execAt(2, 1, trig, "k", "up", 9, at))
		p.Submit(execAt(3, 1, trig, "k", "up", 9, at+50*time.Microsecond))
	}
	p.Close()
	close(stop)
	wg.Wait()
	if p.Faults() == 0 {
		t.Fatal("omission workload raised no alarms")
	}
	if got := p.Decided(); got != 1500 {
		t.Fatalf("Decided() = %d, want 1500", got)
	}
	if got := p.Pending(); got != 0 {
		t.Fatalf("Pending() = %d after close, want 0", got)
	}
}

// TestPlaneOverflowBackpressure pins the full-queue contract: a Submit
// into a full shard queue stalls the dispatcher and increments the
// overflow counter, and the response still lands — backpressure, never
// loss.
func TestPlaneOverflowBackpressure(t *testing.T) {
	p, err := New(Config{
		Shards:            1,
		QueueDepth:        1,
		Validator:         core.ValidatorConfig{K: 2, Timeout: 10 * time.Millisecond},
		Members:           members3(),
		TimeFromResponses: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	w := p.workers[0]
	gate := make(chan struct{})
	p.enqueue(w, item{kind: itemStall, gate: gate})
	for w.depth.Value() != 0 {
		time.Sleep(100 * time.Microsecond) // wallclock:boundary -- wait for the worker to block on the gate
	}
	p.Submit(execAt(2, 1, "τ", "k", "up", 9, 0)) // fills the depth-1 queue

	// Hand the dispatcher role to a helper goroutine for the blocking
	// submit (dispatch stays serialized: this goroutine is the only
	// dispatcher until done is closed).
	done := make(chan struct{})
	go func() {
		defer close(done)
		p.Submit(execAt(3, 1, "τ", "k", "up", 9, time.Millisecond))
	}()
	for w.overflow.Value() == 0 {
		time.Sleep(100 * time.Microsecond) // wallclock:boundary -- test-only spin on a live counter
	}
	close(gate)
	<-done
	// Exactly one stall so far: the second response. (Close's flush below
	// may stall again on the depth-1 queue, so read the counter first.)
	if got := w.overflow.Value(); got != 1 {
		t.Fatalf("overflow counter = %d, want 1", got)
	}
	p.Close()
	if got := p.Decided(); got != 1 {
		t.Fatalf("Decided() = %d, want 1 — the stalled response was lost", got)
	}
	if got := w.enqueued.Value(); got != 4 {
		// stall + 2 responses + the close-path flush
		t.Fatalf("enqueued counter = %d, want 4", got)
	}
}

func TestPlaneConfigValidation(t *testing.T) {
	if _, err := New(Config{Shards: 2}); err == nil {
		t.Fatal("New accepted a plane with no membership")
	}
	p, err := New(Config{Members: members3()})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if got := p.Shards(); got != 1 {
		t.Fatalf("defaulted Shards() = %d, want 1", got)
	}
}

// TestPlaneFlightRecorderDumpOnAlarm asserts the armed plane records
// per-shard trigger lifecycles, fires a merged dump when a verdict goes
// non-benign, and produces a deterministic merged snapshot.
func TestPlaneFlightRecorderDumpOnAlarm(t *testing.T) {
	var (
		dumpMu  sync.Mutex
		reasons []string
		dumped  [][]obs.Event
	)
	p, err := New(Config{
		Shards:            2,
		Validator:         core.ValidatorConfig{K: 2, Timeout: 50 * time.Millisecond},
		Members:           members3(),
		TimeFromResponses: true,
		FlightRing:        128,
		OnFlightDump: func(reason string, events []obs.Event) {
			dumpMu.Lock()
			reasons = append(reasons, reason)
			dumped = append(dumped, events)
			dumpMu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !p.FlightRecording() {
		t.Fatal("plane with FlightRing is not recording")
	}
	// τv: full agreement (benign, no dump). τf: same-state value conflict
	// (fault verdict, dump fires).
	p.Submit(cacheAt(1, 1, "τv", "k", "up", 7, 0))
	p.Submit(execAt(2, 1, "τv", "k", "up", 7, time.Millisecond))
	p.Submit(execAt(3, 1, "τv", "k", "up", 7, 2*time.Millisecond))
	p.Submit(cacheAt(1, 1, "τf", "k", "up", 7, 3*time.Millisecond))
	p.Submit(execAt(2, 1, "τf", "k", "down", 7, 4*time.Millisecond))
	p.Submit(execAt(3, 1, "τf", "k", "down", 7, 5*time.Millisecond))
	p.Close()
	if p.Faults() == 0 {
		t.Fatal("conflict workload raised no alarm")
	}
	dumpMu.Lock()
	defer dumpMu.Unlock()
	if len(reasons) == 0 {
		t.Fatal("non-benign verdict fired no flight dump")
	}
	found := false
	for _, r := range reasons {
		if strings.HasPrefix(r, "verdict:") {
			found = true
		}
	}
	if !found {
		t.Fatalf("dump reasons %v carry no verdict predicate", reasons)
	}
	last := dumped[len(dumped)-1]
	if len(last) == 0 {
		t.Fatal("dump carried no events")
	}
	for i := 1; i < len(last); i++ {
		a, b := last[i-1], last[i]
		if a.AtNS > b.AtNS || (a.AtNS == b.AtNS && a.Shard > b.Shard) {
			t.Fatalf("merged dump out of order at %d: %+v then %+v", i, a, b)
		}
	}
	var verdicts int
	for _, e := range last {
		if e.Kind == obs.EvVerdict {
			verdicts++
		}
	}
	if verdicts == 0 {
		t.Fatal("dump retains no verdict events")
	}
}

// TestPlaneSyncBarrier asserts Sync advances every live shard's engine to
// the same virtual instant without overshooting pending timers: a trigger
// whose deadline falls past the barrier must still be undecided after it.
func TestPlaneSyncBarrier(t *testing.T) {
	p, err := New(Config{
		Shards:            4,
		Validator:         core.ValidatorConfig{K: 2, Timeout: 50 * time.Millisecond},
		Members:           members3(),
		TimeFromResponses: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// One lone response per trigger: each arms a 50ms omission timer.
	for i := 0; i < 8; i++ {
		p.Submit(execAt(2, 1, fmt.Sprintf("τ%d", i), "k", "up", 9, time.Duration(i)*time.Millisecond))
	}
	p.Sync(20 * time.Millisecond)
	if got := p.Decided(); got != 0 {
		t.Fatalf("sync to 20ms decided %d triggers; barrier overshot the 50ms deadlines", got)
	}
	p.Sync(100 * time.Millisecond)
	if got := p.Decided(); got != 8 {
		t.Fatalf("sync past deadlines decided %d triggers, want 8", got)
	}
	if got := p.Timeouts(); got != 8 {
		t.Fatalf("timeouts = %d, want 8", got)
	}
	p.Close()
}

// TestPlaneQueueHighWatermark asserts the per-shard depth gauges retain
// their maxima after the queues drain.
func TestPlaneQueueHighWatermark(t *testing.T) {
	load := mixedWorkload()
	_, p := runPlane(t, 2, load)
	var peak int
	for i := 0; i < p.Shards(); i++ {
		if hwm := p.QueueHighWatermark(i); hwm > peak {
			peak = hwm
		}
	}
	if peak == 0 {
		t.Fatal("no shard queue ever held an item under the mixed workload")
	}
}

// TestPlaneFlightDisabledByDefault asserts planes without FlightRing pay
// nothing: no recorders, nil snapshot, inert FlightDump.
func TestPlaneFlightDisabledByDefault(t *testing.T) {
	_, p := runPlane(t, 2, mixedWorkload())
	if p.FlightRecording() {
		t.Fatal("plane without FlightRing reports recording")
	}
	if p.FlightSnapshot() != nil {
		t.Fatal("disabled plane produced a flight snapshot")
	}
	p.FlightDump("manual")
}

// TestPlaneSyncAcrossKill asserts Sync does not hang when a shard dies
// with sync items queued: the kill path must ack adopted barriers.
func TestPlaneSyncAcrossKill(t *testing.T) {
	p, err := New(Config{
		Shards:            3,
		Validator:         core.ValidatorConfig{K: 2, Timeout: 50 * time.Millisecond},
		Members:           members3(),
		TimeFromResponses: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	p.Submit(execAt(2, 1, "τk", "k", "up", 9, 0))
	p.Kill(1)
	done := make(chan struct{})
	go func() {
		p.Sync(10 * time.Millisecond)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second): //jurylint:allow wallclock -- liveness watchdog for the barrier, not a measurement
		t.Fatal("Sync hung after Kill")
	}
	p.Close()
}
