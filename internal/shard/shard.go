// Package shard is the parallel validation plane: it scales JURY's
// out-of-band validator (internal/core, Algorithm 1) across N worker
// goroutines by partitioning triggers over per-shard bounded queues.
//
// A thin dispatcher hashes Response.Trigger (FNV-1a64, the same family
// internal/sweep uses for seed derivation — see core.ShardForTrigger)
// onto a shard; each worker owns a private simnet engine and a
// single-shard core.Validator outright, so every pending map, Ψ table and
// timer has exactly one writer and the sim contract holds inside each
// worker. Untainted responses are broadcast to every worker (ψ updates
// keep all shards' view of controller state identical); tainted responses
// go only to the owning shard. Because each trigger's response
// subsequence is delivered in submission order to a single owner, and
// worker engines advance to each response's virtual timestamp before
// submitting, verdicts are identical at any shard count for a fixed
// input — the wall-clock interleaving of workers is invisible in the
// results.
//
// Concurrency contract: Submit, Advance, Drain, Kill and Close form the
// dispatch side and must be serialized by the caller (one dispatcher
// goroutine, or an external lock — the wire server uses its own mutex).
// The stats accessors (Decided, Faults, Pending, Alarms, ...) are safe
// from any goroutine at any time: they read atomic counters and immutable
// snapshots. The cluster membership handed to New must not be mutated
// while the plane runs.
//
// This package is a jurylint concurrency bridge: it owns goroutines and
// channels, unlike the sim-contract core it multiplies.
package shard

import (
	"fmt"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/jurysdn/jury/internal/cluster"
	"github.com/jurysdn/jury/internal/core"
	"github.com/jurysdn/jury/internal/obs"
	"github.com/jurysdn/jury/internal/simnet"
	"github.com/jurysdn/jury/internal/trigger"
)

// DefaultQueueDepth bounds one shard's intake queue when Config leaves it
// zero.
const DefaultQueueDepth = 1024

// Config parameterizes a validation plane.
type Config struct {
	// Shards is the worker count (default 1).
	Shards int
	// QueueDepth bounds each shard's intake queue (default
	// DefaultQueueDepth). A full queue applies backpressure to the
	// dispatcher — responses are never dropped — and each stall is
	// counted in jury_shard_overflow_total.
	QueueDepth int
	// Validator carries K, timeout and adaptive settings for every
	// worker's validator. Shards, Metrics and Tracer inside it are
	// overridden: each worker runs single-sharded against a private
	// registry, and the span tracer is single-goroutine so it cannot
	// cross the plane.
	Validator core.ValidatorConfig
	// Members is the deployment's governance map, shared read-only by
	// every worker.
	Members *cluster.Membership
	// TimeFromResponses, when set, advances each worker's engine to every
	// response's virtual timestamp (Response.At) before submitting it, so
	// per-trigger timers expire at exact virtual deadlines regardless of
	// wall-clock interleaving — the deterministic mode tests and benches
	// run. When unset the caller drives virtual time with Advance, the
	// live service mode.
	TimeFromResponses bool
	// Seed seeds each worker engine (the validator draws no randomness,
	// so this only matters to code sharing the engines).
	Seed int64
	// Metrics receives the plane's families (jury_shard_* and the
	// aggregate jury_validator_* counters); nil creates a private
	// registry reachable via Metrics().
	Metrics *obs.Registry
	// OnResult observes every decision from every shard. Calls are
	// serialized by the plane; the hook must not call back into the
	// dispatch side.
	OnResult func(core.Result)
	// FlightRing, when positive, arms a per-shard flight recorder of that
	// capacity: every worker's validator records its trigger lifecycle
	// events (submit/response/ψ/timer/verdict) into a fixed ring, and the
	// plane dumps the merged rings when a dump predicate fires (fault
	// verdict, queue overflow, queue high-watermark ≥ 3/4 QueueDepth).
	// Zero leaves the recorder off and the hot path unchanged.
	FlightRing int
	// OnFlightDump receives each flight dump: the predicate that fired and
	// the merged ring snapshot (oldest-first across shards). Calls are
	// serialized by the plane and rate-limited to one dump per new
	// recorded event; the hook must not call back into the dispatch side.
	OnFlightDump func(reason string, events []obs.Event)
}

type itemKind uint8

const (
	itemResponse itemKind = iota + 1
	itemAdvance
	itemFlush
	// itemSync advances the worker's engine to an exact virtual instant
	// (never past it, unlike itemFlush) and acks — the barrier behind
	// Plane.Sync, which campaign telemetry uses to sample all shards at
	// one virtual timestamp.
	itemSync
	// itemStall blocks the worker on a gate channel — a test hook for
	// deterministically building a backlog behind a live worker.
	itemStall
)

// item is one entry on a shard's intake queue.
type item struct {
	kind  itemKind
	r     core.Response
	owner bool
	to    time.Duration // vclock:wire -- advance target on the virtual time base
	ack   chan struct{}
	gate  chan struct{}
}

// worker is one shard: a goroutine that owns a private engine and
// validator and consumes its intake queue.
type worker struct {
	id       int
	timeFrom bool
	eng      *simnet.Engine
	v        *core.Validator
	q        chan item
	// dieC delivers the kill handshake: the dispatcher sends a reply
	// channel, the worker answers with its unprocessed backlog and exits.
	dieC chan chan []item
	// dead is set by the dispatcher before the die handshake; the worker
	// checks it before processing each item so nothing is validated after
	// the shard is declared dead.
	dead atomic.Bool

	// rec is the shard's flight recorder (nil when Config.FlightRing is
	// zero). The worker's validator appends to it; dump goroutines
	// snapshot it concurrently (the recorder has its own mutex).
	rec *obs.Recorder

	depth    *obs.Gauge
	enqueued *obs.Counter
	overflow *obs.Counter
	steals   *obs.Counter
}

// Plane is a sharded validation plane.
type Plane struct {
	cfg     Config
	reg     *obs.Registry
	workers []*worker
	// alive tracks which shards still run. Dispatcher-owned state: only
	// the serialized Submit/Kill/Close side reads or writes it, so it
	// needs no lock.
	alive []bool
	wg    sync.WaitGroup

	// resMu serializes result aggregation and the user's OnResult hook
	// across worker goroutines.
	resMu    sync.Mutex
	decided  *obs.Counter
	valid    *obs.Counter
	faults   *obs.Counter
	nondet   *obs.Counter
	timeouts *obs.Counter

	// dumpMu serializes flight dumps (predicates fire from both the
	// dispatcher and worker result paths) and guards dumpSeen, the total
	// recorded-event count at the last dump — the rate limiter that
	// suppresses a dump when nothing new was recorded since.
	dumpMu   sync.Mutex
	dumpSeen uint64
}

// New builds and starts a validation plane. The workers run until Close.
func New(cfg Config) (*Plane, error) {
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = DefaultQueueDepth
	}
	if cfg.Members == nil {
		return nil, fmt.Errorf("shard: no cluster membership configured")
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	p := &Plane{
		cfg:     cfg,
		reg:     reg,
		workers: make([]*worker, cfg.Shards),
		alive:   make([]bool, cfg.Shards),
	}
	p.decided = reg.Counter("jury_validator_decided_total", "Triggers decided.")
	p.valid = reg.Counter("jury_validator_valid_total", "Triggers judged valid.")
	p.faults = reg.Counter("jury_validator_faults_total", "Alarms raised (fault verdicts).")
	p.nondet = reg.Counter("jury_validator_nondeterministic_total", "Triggers labeled non-deterministic.")
	p.timeouts = reg.Counter("jury_validator_timeouts_total", "Decisions forced by timer expiry.")
	reg.GaugeFunc("jury_validator_pending", "Triggers awaiting decision across shards.",
		func() float64 { return float64(p.Pending()) })
	vcfg := cfg.Validator
	vcfg.Shards = 1
	vcfg.Metrics = nil // per-worker private registries; the plane aggregates
	vcfg.Tracer = nil  // the span tracer is single-goroutine by contract
	for i := range p.workers {
		w := &worker{
			id:       i,
			timeFrom: cfg.TimeFromResponses,
			eng:      simnet.NewEngine(cfg.Seed),
			q:        make(chan item, cfg.QueueDepth),
			dieC:     make(chan chan []item),
		}
		if cfg.FlightRing > 0 {
			w.rec = obs.NewRecorder(cfg.FlightRing)
			w.rec.SetShard(i)
			vcfg.Recorder = w.rec
		}
		w.v = core.NewValidator(w.eng, cfg.Members, vcfg)
		w.v.OnResult = p.onResult
		l := obs.L("shard", strconv.Itoa(i))
		w.depth = reg.Gauge("jury_shard_queue_depth", "Items queued to the shard's intake.", l)
		w.enqueued = reg.Counter("jury_shard_enqueued_total", "Items enqueued to the shard.", l)
		w.overflow = reg.Counter("jury_shard_overflow_total", "Backpressure stalls on a full shard queue.", l)
		w.steals = reg.Counter("jury_shard_steals_total", "Responses adopted from a killed shard.", l)
		p.workers[i] = w
		p.alive[i] = true
		p.wg.Add(1)
		go w.run(&p.wg)
	}
	return p, nil
}

// SetOnResult installs (or replaces) the decision observer after New —
// for callers that need the plane pointer inside the hook. Serialized
// with result delivery; install it before the first Submit so no
// decision slips past the hook.
func (p *Plane) SetOnResult(fn func(core.Result)) {
	p.resMu.Lock()
	p.cfg.OnResult = fn
	p.resMu.Unlock()
}

// onResult aggregates one worker decision into the plane counters and
// relays it to the user hook, serialized across workers.
func (p *Plane) onResult(r core.Result) {
	p.resMu.Lock()
	defer p.resMu.Unlock()
	p.decided.Inc()
	switch r.Verdict {
	case core.VerdictValid:
		p.valid.Inc()
	case core.VerdictNonDeterministic:
		p.nondet.Inc()
	case core.VerdictFault:
		p.faults.Inc()
	}
	if r.TimedOut {
		p.timeouts.Inc()
	}
	if p.cfg.OnResult != nil {
		p.cfg.OnResult(r)
	}
	if r.Verdict == core.VerdictFault {
		p.FlightDump("verdict:" + r.Fault.String())
	}
}

// run is a worker's consume loop. Engine run errors are deliberately
// dropped here, matching the wire server's live-service stance: a horizon
// or stop error on one advance is benign for a plane that advances again
// on the next item, and decisions themselves surface through OnResult.
//
//jurylint:allow errcrit -- benign Run errors for a live plane; see above
func (w *worker) run(wg *sync.WaitGroup) {
	defer wg.Done()
	for {
		select {
		case reply := <-w.dieC:
			w.die(reply, nil)
			return
		case it := <-w.q:
			w.depth.Add(-1)
			if w.dead.Load() {
				// Declared dead before this item was processed: stash
				// everything still queued and wait for the kill
				// handshake to hand it over.
				backlog := append([]item{it}, w.drain()...)
				w.die(<-w.dieC, backlog)
				return
			}
			w.process(it)
		}
	}
}

// die flushes the worker's own validator — every open trigger decides or
// alarms by timer expiry, never silently vanishing — then hands the
// unprocessed backlog to the dispatcher and exits.
//
//jurylint:allow errcrit -- benign RunUntilIdle error at shard death
func (w *worker) die(reply chan<- []item, backlog []item) {
	backlog = append(backlog, w.drain()...)
	_ = w.eng.RunUntilIdle()
	reply <- backlog
}

// drain empties the intake queue without blocking.
func (w *worker) drain() []item {
	var out []item
	for {
		select {
		case it := <-w.q:
			w.depth.Add(-1)
			out = append(out, it)
		default:
			return out
		}
	}
}

//jurylint:allow errcrit -- benign Run errors for a live plane; see run
func (w *worker) process(it item) {
	switch it.kind {
	case itemResponse:
		if w.timeFrom && it.r.At > w.eng.Now() {
			_ = w.eng.Run(it.r.At)
		}
		if it.owner {
			w.v.Submit(it.r)
		} else {
			w.v.ObserveState(it.r)
		}
	case itemAdvance:
		if it.to > w.eng.Now() {
			_ = w.eng.Run(it.to)
		}
	case itemFlush:
		_ = w.eng.RunUntilIdle()
		if it.ack != nil {
			it.ack <- struct{}{}
		}
	case itemSync:
		// Advance to the sync instant exactly — never RunUntilIdle, which
		// would overshoot and expire timers beyond the barrier.
		if it.to > w.eng.Now() {
			_ = w.eng.Run(it.to)
		}
		if it.ack != nil {
			it.ack <- struct{}{}
		}
	case itemStall:
		<-it.gate
	}
}

// enqueue places one item on a worker's queue, blocking (and counting the
// stall) when the queue is full: backpressure, never loss. A stall, or a
// queue crossing 3/4 of its depth, is a saturation signal and fires a
// flight dump.
func (p *Plane) enqueue(w *worker, it item) {
	stalled := false
	select {
	case w.q <- it:
	default:
		w.overflow.Inc()
		stalled = true
		w.q <- it
	}
	w.enqueued.Inc()
	w.depth.Add(1)
	if w.rec != nil {
		if stalled {
			p.FlightDump("overflow")
		} else if int(w.depth.Value()) >= (3*p.cfg.QueueDepth)/4 {
			p.FlightDump("queue-high-watermark")
		}
	}
}

// ownerOf maps a trigger onto its live owning shard: the FNV home shard,
// or the next live shard after it when the home was killed.
func (p *Plane) ownerOf(id trigger.ID) int {
	if id == "" {
		return -1
	}
	n := len(p.workers)
	home := core.ShardForTrigger(id, n)
	for probe := 0; probe < n; probe++ {
		if i := (home + probe) % n; p.alive[i] {
			return i
		}
	}
	return -1
}

// Submit dispatches one controller response. Untainted responses are
// broadcast to every live shard (the ψ update) with the owner flag set on
// the owning shard's copy; tainted responses go only to the owner.
// Dispatch side: callers serialize.
func (p *Plane) Submit(r core.Response) {
	owner := p.ownerOf(r.Trigger)
	if r.Tainted {
		if owner >= 0 {
			p.enqueue(p.workers[owner], item{kind: itemResponse, r: r, owner: true})
		}
		return
	}
	for i, w := range p.workers {
		if !p.alive[i] {
			continue
		}
		p.enqueue(w, item{kind: itemResponse, r: r, owner: i == owner})
	}
}

// Advance asynchronously moves every live shard's virtual clock to the
// given elapsed time, expiring per-trigger timers up to it — the live
// service drives this from its wall-clock tick. Dispatch side: callers
// serialize.
func (p *Plane) Advance(to time.Duration) {
	for i, w := range p.workers {
		if p.alive[i] {
			p.enqueue(w, item{kind: itemAdvance, to: to})
		}
	}
}

// Sync is a barrier at one virtual instant: every live shard processes
// everything queued ahead of the barrier, advances its engine to exactly
// `to` (expiring timers up to it, never past it), and acks. On return all
// shards sit at the same virtual time, so aggregate validator counters
// read immediately after form a consistent snapshot — the campaign
// time-series sampler runs on this. Dispatch side: callers serialize.
func (p *Plane) Sync(to time.Duration) {
	acks := make([]chan struct{}, 0, len(p.workers))
	for i, w := range p.workers {
		if !p.alive[i] {
			continue
		}
		ack := make(chan struct{}, 1)
		p.enqueue(w, item{kind: itemSync, to: to, ack: ack})
		acks = append(acks, ack)
	}
	for _, ack := range acks {
		<-ack
	}
}

// Drain processes everything queued on every live shard and runs each
// engine until idle, so every submitted trigger reaches a decision (timer
// expiries included). It returns when all shards have flushed. Dispatch
// side: callers serialize.
func (p *Plane) Drain() {
	acks := make([]chan struct{}, 0, len(p.workers))
	for i, w := range p.workers {
		if !p.alive[i] {
			continue
		}
		ack := make(chan struct{}, 1)
		p.enqueue(w, item{kind: itemFlush, ack: ack})
		acks = append(acks, ack)
	}
	for _, ack := range acks {
		<-ack
	}
}

// Kill abruptly stops one shard, models a worker crash, and hands its
// queue to the next live shard: the dead worker stops processing
// immediately, flushes its own open triggers through timer expiry (decided
// or alarmed, never dropped), and its unprocessed backlog is adopted by
// the successor (counted in jury_shard_steals_total). Returns the number
// of adopted responses, or -1 when the shard is already dead or is the
// last one alive. Dispatch side: callers serialize.
//
// A trigger split across the crash — some responses already processed by
// the victim, the rest still in its backlog — is decided TWICE: the
// victim's flush decides it from the responses it saw (usually an
// omission alarm by timer expiry), then the successor re-opens it from
// the adopted remainder and decides it again. That is the fail-safe
// choice: the alternative, suppressing either half, could silently clear
// a real fault. Consumers of OnResult and the aggregate counters must
// therefore treat results per trigger ID idempotently across a Kill
// (keep the first, or the more severe, verdict); Decided/Faults count
// decisions, not distinct triggers, once a crash splits one.
// TestPlaneKillSplitTrigger pins this contract.
func (p *Plane) Kill(i int) int {
	if i < 0 || i >= len(p.workers) || !p.alive[i] {
		return -1
	}
	live := 0
	for _, a := range p.alive {
		if a {
			live++
		}
	}
	if live <= 1 {
		return -1 // the plane must keep at least one shard
	}
	w := p.workers[i]
	w.dead.Store(true)
	p.alive[i] = false
	reply := make(chan []item)
	w.dieC <- reply
	backlog := <-reply
	adopted := 0
	for _, it := range backlog {
		switch it.kind {
		case itemResponse:
			// Non-owner copies were ψ broadcasts; every other live shard
			// already received its own copy, so only owned responses move.
			// The successor re-observes an adopted untainted response (its
			// broadcast copy already updated ψ); the duplicate touches
			// only Ψ bookkeeping counts, never verdicts.
			if !it.owner {
				continue
			}
			to := p.ownerOf(it.r.Trigger)
			if to < 0 {
				continue
			}
			p.enqueue(p.workers[to], item{kind: itemResponse, r: it.r, owner: true})
			p.workers[to].steals.Inc()
			adopted++
		case itemFlush, itemSync:
			if it.ack != nil {
				it.ack <- struct{}{} // the dead engine flushed in die
			}
		}
	}
	return adopted
}

// Close drains every live shard and stops all workers. Dispatch side:
// callers serialize; no dispatch call may follow Close.
func (p *Plane) Close() {
	p.Drain()
	for i, w := range p.workers {
		if !p.alive[i] {
			continue
		}
		w.dead.Store(true)
		p.alive[i] = false
		reply := make(chan []item)
		w.dieC <- reply
		<-reply // empty: the plane was drained and the dispatcher is here
	}
	p.wg.Wait()
}

// Metrics returns the registry carrying the plane's families.
func (p *Plane) Metrics() *obs.Registry { return p.reg }

// Shards returns the plane's shard count (live and dead).
func (p *Plane) Shards() int { return len(p.workers) }

// Decided returns the number of triggers decided across shards.
func (p *Plane) Decided() int64 { return p.decided.Value() }

// Valid returns the number of triggers judged valid across shards.
func (p *Plane) Valid() int64 { return p.valid.Value() }

// Faults returns the number of alarms raised across shards.
func (p *Plane) Faults() int64 { return p.faults.Value() }

// NonDeterministic returns the triggers labeled non-deterministic.
func (p *Plane) NonDeterministic() int64 { return p.nondet.Value() }

// Timeouts returns the decisions forced by timer expiry across shards.
func (p *Plane) Timeouts() int64 { return p.timeouts.Value() }

// Pending returns the triggers awaiting decision, summed across shards.
func (p *Plane) Pending() int {
	total := 0
	for _, w := range p.workers {
		total += w.v.Pending()
	}
	return total
}

// ShardDecided returns one shard's decided-trigger count.
func (p *Plane) ShardDecided(i int) int64 {
	if i < 0 || i >= len(p.workers) {
		return 0
	}
	return p.workers[i].v.Decided()
}

// QueueHighWatermark returns the deepest one shard's intake queue has
// ever been — a saturation diagnostic that outlives the episode. Zero for
// an out-of-range shard.
func (p *Plane) QueueHighWatermark(i int) int {
	if i < 0 || i >= len(p.workers) {
		return 0
	}
	return int(p.workers[i].depth.HighWatermark())
}

// FlightRecording reports whether the plane's flight recorders are armed.
func (p *Plane) FlightRecording() bool {
	return len(p.workers) > 0 && p.workers[0].rec != nil
}

// FlightSnapshot merges every shard's flight ring into one oldest-first
// event stream (ordered by virtual time, then shard, then ring sequence).
// Nil when FlightRing was zero. Safe from any goroutine: each ring is
// snapshotted under its own lock while workers keep recording.
func (p *Plane) FlightSnapshot() []obs.Event {
	if !p.FlightRecording() {
		return nil
	}
	snaps := make([][]obs.Event, 0, len(p.workers))
	for _, w := range p.workers {
		snaps = append(snaps, w.rec.Snapshot())
	}
	return obs.MergeEvents(snaps...)
}

// FlightDump snapshots the merged flight rings and hands them to
// Config.OnFlightDump with the given reason. Dumps are rate-limited:
// when no shard has recorded a new event since the last dump the call is
// a no-op, so a predicate that keeps firing during one saturation episode
// produces one dump per fresh evidence, not one per enqueue. Safe from
// any goroutine; a no-op without recorders or a hook.
func (p *Plane) FlightDump(reason string) {
	if p.cfg.OnFlightDump == nil || !p.FlightRecording() {
		return
	}
	p.dumpMu.Lock()
	defer p.dumpMu.Unlock()
	var total uint64
	for _, w := range p.workers {
		total += w.rec.Total()
	}
	if total == p.dumpSeen {
		return
	}
	p.dumpSeen = total
	p.cfg.OnFlightDump(reason, p.FlightSnapshot())
}

// Steals returns the responses adopted from killed shards, summed.
func (p *Plane) Steals() int64 {
	var total int64
	for _, w := range p.workers {
		total += w.steals.Value()
	}
	return total
}

// FalsePositiveRate returns alarms / decisions across shards.
func (p *Plane) FalsePositiveRate() float64 {
	decided := p.decided.Value()
	if decided == 0 {
		return 0
	}
	return float64(p.faults.Value()) / float64(decided)
}

// Alarms returns the retained alarms merged across shards in decision
// order (virtual decision time, then trigger ID — a deterministic total
// order, since wall-clock worker interleaving must not show in output).
func (p *Plane) Alarms() []core.Result {
	var out []core.Result
	for _, w := range p.workers {
		out = append(out, w.v.Alarms()...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].DecidedAt != out[j].DecidedAt {
			return out[i].DecidedAt < out[j].DecidedAt
		}
		return out[i].Trigger < out[j].Trigger
	})
	return out
}
