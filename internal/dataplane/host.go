package dataplane

import (
	"github.com/jurysdn/jury/internal/openflow"
	"github.com/jurysdn/jury/internal/topo"
)

// Host is a simulated end host: it answers ARP requests for its own IP and
// counts frames addressed to it, which lets tests verify end-to-end
// connectivity after flow installation.
type Host struct {
	fabric *Fabric
	info   topo.Host

	received  uint64
	arpSent   uint64
	arpRecv   uint64
	lastFrame []byte

	// OnReceive, when set, observes every frame delivered to the host.
	OnReceive func(frame []byte)
}

// NewHost creates a host attached to the fabric.
func NewHost(f *Fabric, info topo.Host) *Host {
	return &Host{fabric: f, info: info}
}

// Info returns the host's topology record.
func (h *Host) Info() topo.Host { return h.info }

// Received returns the number of frames delivered to this host.
func (h *Host) Received() uint64 { return h.received }

// ARPRepliesSent returns the number of ARP replies emitted.
func (h *Host) ARPRepliesSent() uint64 { return h.arpSent }

// LastFrame returns the most recently received frame.
func (h *Host) LastFrame() []byte { return h.lastFrame }

// Send injects a frame from this host into its attachment switch.
func (h *Host) Send(frame []byte) error {
	return h.fabric.InjectAtSwitch(h.info.Attach, frame)
}

// SendARPRequest broadcasts an ARP request for targetIP.
func (h *Host) SendARPRequest(targetIP openflow.IPv4) error {
	frame := openflow.ARPPacket(openflow.ARPRequest, h.info.MAC, h.info.IP, openflow.MAC{}, targetIP)
	return h.Send(frame)
}

// SendTCP sends a TCP frame (SYN by default semantics is up to flags) to a
// destination host's addresses.
func (h *Host) SendTCP(dstMAC openflow.MAC, dstIP openflow.IPv4, srcPort, dstPort uint16, flags uint8, payloadLen int) error {
	frame := openflow.TCPPacket(h.info.MAC, dstMAC, h.info.IP, dstIP, srcPort, dstPort, flags, payloadLen)
	return h.Send(frame)
}

// Receive processes a frame delivered to the host.
func (h *Host) Receive(frame []byte) {
	pf, err := openflow.ParsePacket(frame, 0)
	if err != nil {
		return
	}
	// Accept frames addressed to us or broadcast.
	if pf.EthDst != h.info.MAC && pf.EthDst != openflow.BroadcastMAC {
		return
	}
	h.received++
	h.lastFrame = frame
	if h.OnReceive != nil {
		h.OnReceive(frame)
	}
	if pf.EthType == openflow.EthTypeARP && pf.ARPOp == openflow.ARPRequest {
		h.arpRecv++
		if pf.ARPTargetIP == h.info.IP {
			reply := openflow.ARPPacket(openflow.ARPReply, h.info.MAC, h.info.IP, pf.EthSrc, pf.ARPSenderIP)
			h.arpSent++
			_ = h.Send(reply)
		}
	}
}
