package dataplane

import (
	"testing"
	"time"

	"github.com/jurysdn/jury/internal/openflow"
	"github.com/jurysdn/jury/internal/simnet"
	"github.com/jurysdn/jury/internal/topo"
)

func newTestSwitch(t *testing.T) (*simnet.Engine, *Switch, *[]openflow.Message) {
	t.Helper()
	eng := simnet.NewEngine(1)
	sw := NewSwitch(eng, 1)
	sw.SetPorts([]uint16{1, 2, 3})
	var up []openflow.Message
	sw.SetSendUp(func(m openflow.Message) { up = append(up, m) })
	return eng, sw, &up
}

func flowModAdd(match openflow.Match, prio uint16, out uint16) *openflow.FlowMod {
	return &openflow.FlowMod{
		Match:    match,
		Command:  openflow.FlowAdd,
		Priority: prio,
		Actions:  []openflow.Action{openflow.Output(out)},
	}
}

func TestSwitchMissGeneratesPacketIn(t *testing.T) {
	_, sw, up := newTestSwitch(t)
	frame := openflow.TCPPacket(openflow.MAC{1}, openflow.MAC{2}, openflow.IPv4{}, openflow.IPv4{}, 1, 2, 0, 0)
	sw.Inject(frame, 2)
	if len(*up) != 1 {
		t.Fatalf("messages up = %d", len(*up))
	}
	pin, ok := (*up)[0].(*openflow.PacketIn)
	if !ok {
		t.Fatalf("got %T", (*up)[0])
	}
	if pin.InPort != 2 || pin.Reason != openflow.ReasonNoMatch {
		t.Fatalf("pin = %+v", pin)
	}
	if sw.PacketIns() != 1 {
		t.Fatalf("counter = %d", sw.PacketIns())
	}
}

func TestSwitchMissDropWhenDisabled(t *testing.T) {
	_, sw, up := newTestSwitch(t)
	sw.TableMissToController = false
	sw.Inject(openflow.TCPPacket(openflow.MAC{1}, openflow.MAC{2}, openflow.IPv4{}, openflow.IPv4{}, 1, 2, 0, 0), 1)
	if len(*up) != 0 || sw.Dropped() != 1 {
		t.Fatalf("up=%d dropped=%d", len(*up), sw.Dropped())
	}
}

func TestSwitchInstallAndForward(t *testing.T) {
	_, sw, _ := newTestSwitch(t)
	var forwarded []uint16
	sw.SetForward(func(_ []byte, out, _ uint16) { forwarded = append(forwarded, out) })
	src, dst := openflow.MAC{1}, openflow.MAC{2}
	sw.HandleControllerMessage(flowModAdd(openflow.ExactSrcDst(src, dst), 10, 3))
	frame := openflow.TCPPacket(src, dst, openflow.IPv4{}, openflow.IPv4{}, 1, 2, 0, 0)
	sw.Inject(frame, 1)
	if len(forwarded) != 1 || forwarded[0] != 3 {
		t.Fatalf("forwarded = %v", forwarded)
	}
	entries := sw.Table()
	if len(entries) != 1 || entries[0].Packets != 1 {
		t.Fatalf("table = %+v", entries)
	}
}

func TestSwitchPriorityOrdering(t *testing.T) {
	_, sw, _ := newTestSwitch(t)
	var outs []uint16
	sw.SetForward(func(_ []byte, out, _ uint16) { outs = append(outs, out) })
	src, dst := openflow.MAC{1}, openflow.MAC{2}
	sw.HandleControllerMessage(flowModAdd(openflow.MatchAll(), 1, 9))             // low prio catch-all
	sw.HandleControllerMessage(flowModAdd(openflow.ExactSrcDst(src, dst), 10, 3)) // high prio specific
	sw.Inject(openflow.TCPPacket(src, dst, openflow.IPv4{}, openflow.IPv4{}, 1, 2, 0, 0), 1)
	if len(outs) != 1 || outs[0] != 3 {
		t.Fatalf("high-priority rule not preferred: %v", outs)
	}
	sw.Inject(openflow.TCPPacket(dst, src, openflow.IPv4{}, openflow.IPv4{}, 1, 2, 0, 0), 1)
	if len(outs) != 2 || outs[1] != 9 {
		t.Fatalf("catch-all not used: %v", outs)
	}
}

func TestSwitchAddOverwritesSameMatch(t *testing.T) {
	_, sw, _ := newTestSwitch(t)
	m := openflow.ExactDst(openflow.MAC{5})
	sw.HandleControllerMessage(flowModAdd(m, 10, 1))
	sw.HandleControllerMessage(flowModAdd(m, 10, 2))
	table := sw.Table()
	if len(table) != 1 {
		t.Fatalf("table size = %d, want 1 (overwrite)", len(table))
	}
	if table[0].Actions[0].Port != 2 {
		t.Fatal("second ADD did not overwrite")
	}
}

func TestSwitchDelete(t *testing.T) {
	_, sw, _ := newTestSwitch(t)
	m := openflow.ExactDst(openflow.MAC{5})
	sw.HandleControllerMessage(flowModAdd(m, 10, 1))
	del := &openflow.FlowMod{Match: m, Command: openflow.FlowDelete}
	sw.HandleControllerMessage(del)
	if len(sw.Table()) != 0 {
		t.Fatal("delete did not remove entry")
	}
}

func TestSwitchDeleteStrictRespectsPriority(t *testing.T) {
	_, sw, _ := newTestSwitch(t)
	m := openflow.ExactDst(openflow.MAC{5})
	sw.HandleControllerMessage(flowModAdd(m, 10, 1))
	sw.HandleControllerMessage(flowModAdd(m, 20, 2))
	sw.HandleControllerMessage(&openflow.FlowMod{Match: m, Command: openflow.FlowDeleteStrict, Priority: 10})
	table := sw.Table()
	if len(table) != 1 || table[0].Priority != 20 {
		t.Fatalf("strict delete wrong: %+v", table)
	}
}

func TestSwitchModify(t *testing.T) {
	_, sw, _ := newTestSwitch(t)
	m := openflow.ExactDst(openflow.MAC{5})
	sw.HandleControllerMessage(flowModAdd(m, 10, 1))
	sw.HandleControllerMessage(&openflow.FlowMod{
		Match:   m,
		Command: openflow.FlowModify,
		Actions: []openflow.Action{openflow.Output(7)},
	})
	if sw.Table()[0].Actions[0].Port != 7 {
		t.Fatal("modify did not change actions")
	}
}

func TestSwitchIdleTimeoutExpires(t *testing.T) {
	eng, sw, up := newTestSwitch(t)
	fm := flowModAdd(openflow.ExactDst(openflow.MAC{5}), 10, 1)
	fm.IdleTimeout = 2
	fm.Flags = openflow.FlagSendFlowRem
	sw.HandleControllerMessage(fm)
	if err := eng.Run(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if len(sw.Table()) != 0 {
		t.Fatal("idle entry not expired")
	}
	var removed *openflow.FlowRemoved
	for _, m := range *up {
		if fr, ok := m.(*openflow.FlowRemoved); ok {
			removed = fr
		}
	}
	if removed == nil || removed.Reason != openflow.RemovedIdleTimeout {
		t.Fatalf("FLOW_REMOVED = %+v", removed)
	}
}

func TestSwitchIdleTimeoutRefreshedByTraffic(t *testing.T) {
	eng, sw, _ := newTestSwitch(t)
	dst := openflow.MAC{5}
	fm := flowModAdd(openflow.ExactDst(dst), 10, 1)
	fm.IdleTimeout = 2
	sw.HandleControllerMessage(fm)
	// Hit the rule every second for 5 seconds.
	for i := 1; i <= 5; i++ {
		eng.Schedule(time.Duration(i)*time.Second, func() {
			sw.Inject(openflow.TCPPacket(openflow.MAC{1}, dst, openflow.IPv4{}, openflow.IPv4{}, 1, 2, 0, 0), 2)
		})
	}
	if err := eng.Run(6 * time.Second); err != nil {
		t.Fatal(err)
	}
	if len(sw.Table()) != 1 {
		t.Fatal("active entry expired despite traffic")
	}
	if err := eng.Run(10 * time.Second); err != nil { // horizon is absolute
		t.Fatal(err)
	}
	if len(sw.Table()) != 0 {
		t.Fatal("entry survived idle period")
	}
}

func TestSwitchHardTimeout(t *testing.T) {
	eng, sw, _ := newTestSwitch(t)
	fm := flowModAdd(openflow.MatchAll(), 10, 1)
	fm.HardTimeout = 1
	sw.HandleControllerMessage(fm)
	if err := eng.Run(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if len(sw.Table()) != 0 {
		t.Fatal("hard timeout did not expire entry")
	}
}

func TestSwitchRejectsInvalidHierarchy(t *testing.T) {
	_, sw, up := newTestSwitch(t)
	bad := openflow.MatchAll()
	bad.Wildcards &^= openflow.WildcardTPDst
	bad.TPDst = 80
	sw.HandleControllerMessage(flowModAdd(bad, 10, 1))
	if len(sw.Table()) != 0 {
		t.Fatal("invalid match installed")
	}
	if len(*up) != 1 {
		t.Fatalf("expected error message, got %d messages", len(*up))
	}
	if _, ok := (*up)[0].(*openflow.ErrorMsg); !ok {
		t.Fatalf("got %T, want ErrorMsg", (*up)[0])
	}
}

func TestSwitchAcceptsInvalidMatchWhenPermissive(t *testing.T) {
	_, sw, up := newTestSwitch(t)
	sw.AcceptInvalidMatch = true
	bad := openflow.MatchAll()
	bad.Wildcards &^= openflow.WildcardTPDst
	bad.TPDst = 80
	sw.HandleControllerMessage(flowModAdd(bad, 10, 1))
	if len(*up) != 0 {
		t.Fatal("permissive switch should not error")
	}
	table := sw.Table()
	if len(table) != 1 {
		t.Fatal("rule not installed")
	}
	// The orphaned L4 field must have been discarded: installed match is
	// broader than requested (covers any port).
	if !table[0].Match.Covers(openflow.PacketFields{TPDst: 9999}) {
		t.Fatal("invalid fields were not stripped")
	}
}

func TestSwitchPendingAddState(t *testing.T) {
	_, sw, _ := newTestSwitch(t)
	sw.HoldPendingAdd = true
	sw.HandleControllerMessage(flowModAdd(openflow.MatchAll(), 1, 1))
	if sw.Table()[0].State != FlowPendingAdd {
		t.Fatal("entry should stay PENDING_ADD")
	}
}

func TestSwitchHandshake(t *testing.T) {
	_, sw, up := newTestSwitch(t)
	sw.HandleControllerMessage(&openflow.Hello{XID: 1})
	sw.HandleControllerMessage(&openflow.FeaturesRequest{XID: 2})
	sw.HandleControllerMessage(&openflow.EchoRequest{XID: 3, Data: []byte("x")})
	sw.HandleControllerMessage(&openflow.BarrierRequest{XID: 4})
	if len(*up) != 4 {
		t.Fatalf("messages = %d", len(*up))
	}
	fr, ok := (*up)[1].(*openflow.FeaturesReply)
	if !ok || fr.DatapathID != 1 || len(fr.Ports) != 3 {
		t.Fatalf("features reply = %+v", fr)
	}
}

func TestSwitchPacketOut(t *testing.T) {
	_, sw, _ := newTestSwitch(t)
	var outs []uint16
	sw.SetForward(func(_ []byte, out, _ uint16) { outs = append(outs, out) })
	sw.HandleControllerMessage(&openflow.PacketOut{
		Actions: []openflow.Action{openflow.Output(2)},
		Data:    openflow.TCPPacket(openflow.MAC{1}, openflow.MAC{2}, openflow.IPv4{}, openflow.IPv4{}, 1, 2, 0, 0),
	})
	if len(outs) != 1 || outs[0] != 2 {
		t.Fatalf("packet out forwarded = %v", outs)
	}
	if sw.PacketOuts() != 1 {
		t.Fatal("counter wrong")
	}
}

func TestSwitchEmptyActionDrops(t *testing.T) {
	_, sw, _ := newTestSwitch(t)
	fm := &openflow.FlowMod{Match: openflow.MatchAll(), Command: openflow.FlowAdd}
	sw.HandleControllerMessage(fm)
	sw.Inject(openflow.TCPPacket(openflow.MAC{1}, openflow.MAC{2}, openflow.IPv4{}, openflow.IPv4{}, 1, 2, 0, 0), 1)
	if sw.Dropped() != 1 {
		t.Fatal("empty action list should drop")
	}
}

// Fabric tests.

func TestFabricEndToEndDelivery(t *testing.T) {
	eng := simnet.NewEngine(1)
	top, _ := topo.Linear(3)
	f := NewFabric(eng, top)
	// Install path rules host1@sw1 -> host3@sw3.
	h1, _ := f.Host("h1")
	h3, _ := f.Host("h3")
	m := openflow.ExactSrcDst(h1.Info().MAC, h3.Info().MAC)
	sw1, _ := f.Switch(1)
	sw2, _ := f.Switch(2)
	sw3, _ := f.Switch(3)
	sw1.HandleControllerMessage(flowModAdd(m, 10, 3))
	sw2.HandleControllerMessage(flowModAdd(m, 10, 3))
	sw3.HandleControllerMessage(flowModAdd(m, 10, 1))
	if err := h1.SendTCP(h3.Info().MAC, h3.Info().IP, 1234, 80, 0x02, 10); err != nil {
		t.Fatal(err)
	}
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if h3.Received() != 1 {
		t.Fatalf("h3 received %d frames", h3.Received())
	}
}

func TestFabricHostARPReply(t *testing.T) {
	eng := simnet.NewEngine(1)
	top, _ := topo.Linear(2)
	f := NewFabric(eng, top)
	h1, _ := f.Host("h1")
	h2, _ := f.Host("h2")
	// Flood rules so ARP reaches hosts without a controller.
	for _, sw := range f.Switches() {
		sw.HandleControllerMessage(flowModAdd(openflow.MatchAll(), 1, openflow.PortFlood))
	}
	if err := h1.SendARPRequest(h2.Info().IP); err != nil {
		t.Fatal(err)
	}
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if h2.ARPRepliesSent() != 1 {
		t.Fatalf("h2 sent %d ARP replies", h2.ARPRepliesSent())
	}
	// The reply flooded back to h1.
	if h1.Received() == 0 {
		t.Fatal("h1 never received the reply")
	}
}

func TestFabricFloodDoesNotStorm(t *testing.T) {
	eng := simnet.NewEngine(1)
	top, _ := topo.ThreeTier(4, 2, 2, 1) // meshed topology with cycles
	f := NewFabric(eng, top)
	for _, sw := range f.Switches() {
		sw.HandleControllerMessage(flowModAdd(openflow.MatchAll(), 1, openflow.PortFlood))
	}
	h1, _ := f.Host("h1")
	eng.MaxEvents = 2_000_000
	if err := h1.SendARPRequest(topo.HostIP(2)); err != nil {
		t.Fatal(err)
	}
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatalf("flood stormed: %v", err)
	}
}

func TestFabricLinkDown(t *testing.T) {
	eng := simnet.NewEngine(1)
	top, _ := topo.Linear(2)
	f := NewFabric(eng, top)
	h1, _ := f.Host("h1")
	h2, _ := f.Host("h2")
	m := openflow.ExactSrcDst(h1.Info().MAC, h2.Info().MAC)
	sw1, _ := f.Switch(1)
	sw2, _ := f.Switch(2)
	sw1.HandleControllerMessage(flowModAdd(m, 10, 3))
	sw2.HandleControllerMessage(flowModAdd(m, 10, 1))
	f.SetLinkDown(topo.Port{DPID: 1, Port: 3}, true)
	_ = h1.SendTCP(h2.Info().MAC, h2.Info().IP, 1, 2, 0, 0)
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if h2.Received() != 0 {
		t.Fatal("frame crossed a failed link")
	}
	f.SetLinkDown(topo.Port{DPID: 1, Port: 3}, false)
	_ = h1.SendTCP(h2.Info().MAC, h2.Info().IP, 1, 2, 0, 0)
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if h2.Received() != 1 {
		t.Fatal("frame lost after link restore")
	}
}

func TestHostIgnoresForeignFrames(t *testing.T) {
	eng := simnet.NewEngine(1)
	top, _ := topo.Linear(2)
	f := NewFabric(eng, top)
	h1, _ := f.Host("h1")
	foreign := openflow.TCPPacket(openflow.MAC{9}, openflow.MAC{8}, openflow.IPv4{}, openflow.IPv4{}, 1, 2, 0, 0)
	h1.Receive(foreign)
	if h1.Received() != 0 {
		t.Fatal("host accepted frame not addressed to it")
	}
}

func TestHostOnReceiveHook(t *testing.T) {
	eng := simnet.NewEngine(1)
	top, _ := topo.Linear(2)
	f := NewFabric(eng, top)
	h1, _ := f.Host("h1")
	called := false
	h1.OnReceive = func([]byte) { called = true }
	h1.Receive(openflow.TCPPacket(openflow.MAC{9}, h1.Info().MAC, openflow.IPv4{}, openflow.IPv4{}, 1, 2, 0, 0))
	if !called {
		t.Fatal("OnReceive not invoked")
	}
	_ = eng
}

func TestSwitchFlowStatsExcludesPending(t *testing.T) {
	_, sw, up := newTestSwitch(t)
	sw.HandleControllerMessage(flowModAdd(openflow.ExactDst(openflow.MAC{1}), 10, 1))
	sw.HoldPendingAdd = true
	sw.HandleControllerMessage(flowModAdd(openflow.ExactDst(openflow.MAC{2}), 10, 1))
	*up = nil
	sw.HandleControllerMessage(&openflow.FlowStatsRequest{XID: 5, Match: openflow.MatchAll(), OutPort: openflow.PortNone})
	if len(*up) != 1 {
		t.Fatalf("replies = %d", len(*up))
	}
	reply, ok := (*up)[0].(*openflow.FlowStatsReply)
	if !ok {
		t.Fatalf("got %T", (*up)[0])
	}
	if len(reply.Flows) != 1 {
		t.Fatalf("stats entries = %d, want 1 (PENDING_ADD excluded)", len(reply.Flows))
	}
}

func TestFabricLinkDownEmitsPortStatus(t *testing.T) {
	eng := simnet.NewEngine(1)
	top, _ := topo.Linear(2)
	f := NewFabric(eng, top)
	var statuses []*openflow.PortStatus
	for _, sw := range f.Switches() {
		sw.SetSendUp(func(m openflow.Message) {
			if ps, ok := m.(*openflow.PortStatus); ok {
				statuses = append(statuses, ps)
			}
		})
	}
	f.SetLinkDown(topo.Port{DPID: 1, Port: 3}, true)
	if len(statuses) != 2 {
		t.Fatalf("port statuses = %d, want one per endpoint", len(statuses))
	}
	for _, ps := range statuses {
		if !ps.Down {
			t.Fatal("status not down")
		}
	}
}
