// Package dataplane models the forwarding plane: OpenFlow 1.0 switches with
// priority flow tables, idle/hard timeouts and PACKET_IN generation on
// table miss; end hosts that answer ARP; a fabric that moves frames across
// links; and the programmable replicator switch (the OVS of §VI-A) that
// JURY uses to intercept and replicate southbound triggers.
package dataplane

import (
	"fmt"
	"sort"
	"time"

	"github.com/jurysdn/jury/internal/openflow"
	"github.com/jurysdn/jury/internal/simnet"
	"github.com/jurysdn/jury/internal/topo"
)

// FlowState is the lifecycle state of a flow entry. ONOS distinguishes
// PENDING_ADD from ADDED by comparing its FlowsDB against switch state; the
// PENDING_ADD fault of the appendix exploits a mismatch.
type FlowState uint8

// Flow entry states.
const (
	FlowPendingAdd FlowState = iota + 1
	FlowAdded
)

// FlowEntry is one installed flow rule.
type FlowEntry struct {
	Match       openflow.Match
	Priority    uint16
	Actions     []openflow.Action
	Cookie      uint64
	IdleTimeout uint16
	HardTimeout uint16
	Flags       uint16
	State       FlowState

	InstalledAt time.Duration
	LastHit     time.Duration
	Packets     uint64
	Bytes       uint64
}

// NoBuffer is the OpenFlow buffer id meaning "packet not buffered".
const NoBuffer uint32 = 0xFFFFFFFF

// Switch is a simulated OpenFlow 1.0 switch.
type Switch struct {
	eng  *simnet.Engine
	dpid topo.DPID

	ports []uint16
	table []*FlowEntry

	// sendUp delivers a message on the southbound channel toward the
	// controller; the replicator interposes here.
	sendUp func(msg openflow.Message)
	// forward emits a frame out a physical port into the fabric.
	forward func(frame []byte, outPort uint16, inPort uint16)

	// TableMissToController controls whether misses produce PACKET_INs.
	TableMissToController bool
	// AcceptInvalidMatch reproduces the "ODL incorrect FLOW_MOD" fault
	// environment (§III-B T3): an OpenFlow 1.0 switch silently accepting
	// a FLOW_MOD whose match violates the field hierarchy, discarding the
	// incorrect fields.
	AcceptInvalidMatch bool
	// HoldPendingAdd keeps installed entries in FlowPendingAdd (appendix
	// fault 4) instead of transitioning them to FlowAdded.
	HoldPendingAdd bool

	xid        uint32
	packetIns  uint64
	flowMods   uint64
	packetOuts uint64
	dropped    uint64
}

// NewSwitch creates a switch. Callbacks are wired by the fabric/cluster.
func NewSwitch(eng *simnet.Engine, dpid topo.DPID) *Switch {
	return &Switch{eng: eng, dpid: dpid, TableMissToController: true}
}

// DPID returns the datapath id.
func (s *Switch) DPID() topo.DPID { return s.dpid }

// SetPorts records the switch's physical ports (reported in
// FEATURES_REPLY).
func (s *Switch) SetPorts(ports []uint16) {
	s.ports = append([]uint16(nil), ports...)
}

// Ports returns the switch's physical ports.
func (s *Switch) Ports() []uint16 {
	return append([]uint16(nil), s.ports...)
}

// SetSendUp wires the southbound channel toward the controller.
func (s *Switch) SetSendUp(fn func(msg openflow.Message)) { s.sendUp = fn }

// SetForward wires the data-plane egress callback.
func (s *Switch) SetForward(fn func(frame []byte, outPort, inPort uint16)) { s.forward = fn }

// Stats counters.
func (s *Switch) PacketIns() uint64  { return s.packetIns }
func (s *Switch) FlowMods() uint64   { return s.flowMods }
func (s *Switch) PacketOuts() uint64 { return s.packetOuts }
func (s *Switch) Dropped() uint64    { return s.dropped }

// Table returns the flow entries sorted by descending priority.
func (s *Switch) Table() []*FlowEntry {
	out := make([]*FlowEntry, len(s.table))
	copy(out, s.table)
	return out
}

// Lookup returns the highest-priority entry covering pf, if any.
func (s *Switch) Lookup(pf openflow.PacketFields) (*FlowEntry, bool) {
	for _, e := range s.table {
		if e.Match.Covers(pf) {
			return e, true
		}
	}
	return nil, false
}

// Inject delivers a frame arriving on inPort, as if from the wire.
func (s *Switch) Inject(frame []byte, inPort uint16) {
	pf, err := openflow.ParsePacket(frame, inPort)
	if err != nil {
		s.dropped++
		return
	}
	entry, ok := s.Lookup(pf)
	if !ok {
		if s.TableMissToController {
			s.sendPacketIn(frame, inPort, openflow.ReasonNoMatch)
		} else {
			s.dropped++
		}
		return
	}
	entry.Packets++
	entry.Bytes += uint64(len(frame))
	entry.LastHit = s.eng.Now()
	s.applyActions(entry.Actions, frame, inPort)
}

func (s *Switch) applyActions(actions []openflow.Action, frame []byte, inPort uint16) {
	if len(actions) == 0 {
		s.dropped++ // empty action list drops the packet
		return
	}
	for _, a := range actions {
		switch a.Port {
		case openflow.PortController:
			s.sendPacketIn(frame, inPort, openflow.ReasonAction)
		case openflow.PortNone:
			s.dropped++
		default:
			if s.forward != nil {
				s.forward(frame, a.Port, inPort)
			}
		}
	}
}

func (s *Switch) sendPacketIn(frame []byte, inPort uint16, reason openflow.PacketInReason) {
	if s.sendUp == nil {
		return
	}
	s.xid++
	s.packetIns++
	s.sendUp(&openflow.PacketIn{
		XID:      s.xid,
		BufferID: NoBuffer,
		TotalLen: uint16(len(frame)),
		InPort:   inPort,
		Reason:   reason,
		Data:     frame,
	})
}

// HandleControllerMessage processes a message arriving from the controller.
func (s *Switch) HandleControllerMessage(msg openflow.Message) {
	switch m := msg.(type) {
	case *openflow.Hello:
		s.sendUp(&openflow.Hello{XID: m.XID})
	case *openflow.EchoRequest:
		s.sendUp(&openflow.EchoReply{XID: m.XID, Data: m.Data})
	case *openflow.FeaturesRequest:
		s.sendUp(&openflow.FeaturesReply{
			XID:        m.XID,
			DatapathID: uint64(s.dpid),
			NumBuffers: 256,
			NumTables:  1,
			Ports:      s.Ports(),
		})
	case *openflow.FlowMod:
		s.handleFlowMod(m)
	case *openflow.PacketOut:
		s.packetOuts++
		data := m.Data
		s.applyActions(m.Actions, data, m.InPort)
	case *openflow.FlowStatsRequest:
		s.sendUp(s.flowStats(m))
	case *openflow.BarrierRequest:
		s.sendUp(&openflow.BarrierReply{XID: m.XID})
	}
}

// flowStats builds the reply to a flow-stats request. Entries still in
// PENDING_ADD are not reported — the store-vs-switch comparison gap the
// appendix PENDING_ADD fault exploits.
func (s *Switch) flowStats(req *openflow.FlowStatsRequest) *openflow.FlowStatsReply {
	reply := &openflow.FlowStatsReply{XID: req.XID}
	for _, e := range s.table {
		if e.State != FlowAdded {
			continue
		}
		reply.Flows = append(reply.Flows, openflow.FlowStat{
			Match:       e.Match,
			Priority:    e.Priority,
			DurationSec: uint32((s.eng.Now() - e.InstalledAt) / time.Second),
			IdleTimeout: e.IdleTimeout,
			HardTimeout: e.HardTimeout,
			Cookie:      e.Cookie,
			PacketCount: e.Packets,
			ByteCount:   e.Bytes,
		})
	}
	return reply
}

// NotifyPortStatus emits a PORT_STATUS message for a port's link change.
func (s *Switch) NotifyPortStatus(port uint16, down bool) {
	if s.sendUp == nil {
		return
	}
	s.xid++
	s.sendUp(&openflow.PortStatus{XID: s.xid, Reason: openflow.PortModify, Port: port, Down: down})
}

func (s *Switch) handleFlowMod(m *openflow.FlowMod) {
	s.flowMods++
	match := m.Match
	if !match.HierarchyValid() {
		if !s.AcceptInvalidMatch {
			s.sendUp(&openflow.ErrorMsg{XID: m.XID, ErrType: 3 /* FLOW_MOD_FAILED */, Code: 0})
			return
		}
		// Faulty environment: silently discard the invalid (orphaned)
		// fields, installing a broader rule than requested — the switch
		// state now disagrees with the controller's FlowsDB.
		match = stripInvalidFields(match)
	}
	switch m.Command {
	case openflow.FlowAdd:
		state := FlowAdded
		if s.HoldPendingAdd {
			state = FlowPendingAdd
		}
		entry := &FlowEntry{
			Match:       match,
			Priority:    m.Priority,
			Actions:     m.Actions,
			Cookie:      m.Cookie,
			IdleTimeout: m.IdleTimeout,
			HardTimeout: m.HardTimeout,
			Flags:       m.Flags,
			State:       state,
			InstalledAt: s.eng.Now(),
			LastHit:     s.eng.Now(),
		}
		s.insert(entry)
		s.scheduleTimeouts(entry)
	case openflow.FlowModify, openflow.FlowModifyStrict:
		for _, e := range s.table {
			if e.Match.Equal(match) && (m.Command == openflow.FlowModify || e.Priority == m.Priority) {
				e.Actions = m.Actions
			}
		}
	case openflow.FlowDelete, openflow.FlowDeleteStrict:
		s.deleteMatching(match, m.Priority, m.Command == openflow.FlowDeleteStrict)
	}
}

func (s *Switch) insert(entry *FlowEntry) {
	// Replace an identical match at the same priority (OpenFlow ADD
	// overwrites).
	for i, e := range s.table {
		if e.Match.Equal(entry.Match) && e.Priority == entry.Priority {
			s.table[i] = entry
			return
		}
	}
	s.table = append(s.table, entry)
	sort.SliceStable(s.table, func(i, j int) bool { return s.table[i].Priority > s.table[j].Priority })
}

func (s *Switch) deleteMatching(match openflow.Match, priority uint16, strict bool) {
	kept := s.table[:0]
	for _, e := range s.table {
		remove := e.Match.Equal(match)
		if strict {
			remove = remove && e.Priority == priority
		}
		if remove {
			s.emitFlowRemoved(e, openflow.RemovedDelete)
			continue
		}
		kept = append(kept, e)
	}
	s.table = kept
}

func (s *Switch) scheduleTimeouts(entry *FlowEntry) {
	if entry.HardTimeout > 0 {
		d := time.Duration(entry.HardTimeout) * time.Second
		s.eng.Schedule(d, func() { s.expire(entry, openflow.RemovedHardTimeout) })
	}
	if entry.IdleTimeout > 0 {
		s.scheduleIdleCheck(entry)
	}
}

func (s *Switch) scheduleIdleCheck(entry *FlowEntry) {
	idle := time.Duration(entry.IdleTimeout) * time.Second
	s.eng.At(entry.LastHit+idle, func() {
		if !s.contains(entry) {
			return
		}
		if s.eng.Now()-entry.LastHit >= idle {
			s.expire(entry, openflow.RemovedIdleTimeout)
			return
		}
		s.scheduleIdleCheck(entry)
	})
}

func (s *Switch) expire(entry *FlowEntry, reason openflow.FlowRemovedReason) {
	for i, e := range s.table {
		if e == entry {
			s.table = append(s.table[:i], s.table[i+1:]...)
			s.emitFlowRemoved(entry, reason)
			return
		}
	}
}

func (s *Switch) contains(entry *FlowEntry) bool {
	for _, e := range s.table {
		if e == entry {
			return true
		}
	}
	return false
}

func (s *Switch) emitFlowRemoved(entry *FlowEntry, reason openflow.FlowRemovedReason) {
	if entry.Flags&openflow.FlagSendFlowRem == 0 || s.sendUp == nil {
		return
	}
	s.xid++
	s.sendUp(&openflow.FlowRemoved{
		XID:         s.xid,
		Match:       entry.Match,
		Cookie:      entry.Cookie,
		Priority:    entry.Priority,
		Reason:      reason,
		DurationSec: uint32((s.eng.Now() - entry.InstalledAt) / time.Second),
		PacketCount: entry.Packets,
		ByteCount:   entry.Bytes,
	})
}

// stripInvalidFields removes match constraints that violate the OpenFlow
// 1.0 prerequisite hierarchy, mimicking the permissive switch of the T3
// fault.
func stripInvalidFields(m openflow.Match) openflow.Match {
	w := m.Wildcards
	dlTypeSet := w&openflow.WildcardDLType == 0
	ipOrARP := dlTypeSet && (m.DLType == openflow.EthTypeIPv4 || m.DLType == openflow.EthTypeARP)
	if !ipOrARP {
		m = m.WithNWSrcMask(32).WithNWDstMask(32)
		m.Wildcards |= openflow.WildcardNWProto | openflow.WildcardNWTOS
	}
	l4OK := m.Wildcards&openflow.WildcardNWProto == 0 &&
		(m.NWProto == openflow.IPProtoTCP || m.NWProto == openflow.IPProtoUDP || m.NWProto == openflow.IPProtoICMP)
	if !l4OK {
		m.Wildcards |= openflow.WildcardTPSrc | openflow.WildcardTPDst
	}
	return m
}

// String describes the switch.
func (s *Switch) String() string {
	return fmt.Sprintf("switch(%s, %d flows)", s.dpid, len(s.table))
}
