package dataplane

import (
	"fmt"
	"hash/fnv"
	"time"

	"github.com/jurysdn/jury/internal/openflow"
	"github.com/jurysdn/jury/internal/simnet"
	"github.com/jurysdn/jury/internal/topo"
)

// Fabric instantiates switches and hosts for a topology and moves frames
// across links with a configurable per-hop latency.
type Fabric struct {
	eng      *simnet.Engine
	topo     *topo.Topology
	switches map[topo.DPID]*Switch
	hosts    map[topo.HostID]*Host

	// HopLatency is the per-link propagation delay (default 50µs).
	HopLatency time.Duration
	// MaxFloodHops bounds flood propagation to prevent broadcast storms
	// in meshed topologies (models spanning tree).
	MaxFloodHops int

	downPorts map[topo.Port]bool

	// Frame dedup (spanning-tree stand-in): a frame entering a switch it
	// already visited within the rotation window is dropped, which keeps
	// floods in meshed topologies from storming. Two generations rotate
	// so identical periodic frames (LLDP probes) are not suppressed
	// across periods.
	seenCur   map[uint64]map[topo.DPID]bool
	seenPrev  map[uint64]map[topo.DPID]bool
	seenGenAt time.Duration

	delivered uint64
}

// NewFabric builds switches and hosts for t.
func NewFabric(eng *simnet.Engine, t *topo.Topology) *Fabric {
	f := &Fabric{
		eng:          eng,
		topo:         t,
		switches:     make(map[topo.DPID]*Switch),
		hosts:        make(map[topo.HostID]*Host),
		HopLatency:   50 * time.Microsecond,
		MaxFloodHops: 16,
		downPorts:    make(map[topo.Port]bool),
		seenCur:      make(map[uint64]map[topo.DPID]bool),
		seenPrev:     make(map[uint64]map[topo.DPID]bool),
	}
	for _, sw := range t.Switches() {
		s := NewSwitch(eng, sw.DPID)
		s.SetPorts(sw.Ports)
		dpid := sw.DPID
		s.SetForward(func(frame []byte, outPort, inPort uint16) {
			f.carry(dpid, frame, outPort, inPort, f.MaxFloodHops)
		})
		f.switches[dpid] = s
	}
	for _, h := range t.Hosts() {
		f.hosts[h.ID] = NewHost(f, *h)
	}
	return f
}

// Topology returns the underlying topology.
func (f *Fabric) Topology() *topo.Topology { return f.topo }

// Switch returns the switch with the given dpid.
func (f *Fabric) Switch(dpid topo.DPID) (*Switch, bool) {
	s, ok := f.switches[dpid]
	return s, ok
}

// Switches returns all switches in DPID order.
func (f *Fabric) Switches() []*Switch {
	out := make([]*Switch, 0, len(f.switches))
	for _, sw := range f.topo.Switches() {
		if s, ok := f.switches[sw.DPID]; ok {
			out = append(out, s)
		}
	}
	return out
}

// Host returns the host with the given id.
func (f *Fabric) Host(id topo.HostID) (*Host, bool) {
	h, ok := f.hosts[id]
	return h, ok
}

// Hosts returns all hosts in ID order.
func (f *Fabric) Hosts() []*Host {
	out := make([]*Host, 0, len(f.hosts))
	for _, h := range f.topo.Hosts() {
		if hh, ok := f.hosts[h.ID]; ok {
			out = append(out, hh)
		}
	}
	return out
}

// Delivered returns the number of frames delivered to hosts.
func (f *Fabric) Delivered() uint64 { return f.delivered }

// SetLinkDown fails (or restores) the inter-switch link attached to p, in
// both directions. Frames crossing a failed link are dropped, and both
// attached switches emit PORT_STATUS notifications as real switches do.
func (f *Fabric) SetLinkDown(p topo.Port, down bool) {
	f.downPorts[p] = down
	if sw, ok := f.switches[p.DPID]; ok {
		sw.NotifyPortStatus(p.Port, down)
	}
	if peer, ok := f.topo.Peer(p); ok {
		f.downPorts[peer] = down
		if sw, ok := f.switches[peer.DPID]; ok {
			sw.NotifyPortStatus(peer.Port, down)
		}
	}
}

// LinkDown reports whether the link at p is failed.
func (f *Fabric) LinkDown(p topo.Port) bool { return f.downPorts[p] }

// InjectAtSwitch delivers a frame into a switch port after one hop latency,
// as if sent by the attached device.
func (f *Fabric) InjectAtSwitch(p topo.Port, frame []byte) error {
	sw, ok := f.switches[p.DPID]
	if !ok {
		return fmt.Errorf("dataplane: unknown switch %v", p.DPID)
	}
	f.eng.Schedule(f.HopLatency, func() { sw.Inject(frame, p.Port) })
	return nil
}

// carry moves a frame leaving (from, outPort). PortFlood fans out to every
// port except the ingress.
func (f *Fabric) carry(from topo.DPID, frame []byte, outPort, inPort uint16, hops int) {
	if hops <= 0 {
		return
	}
	if outPort == openflow.PortFlood {
		sw, ok := f.topo.Switch(from)
		if !ok {
			return
		}
		for _, p := range sw.Ports {
			if p != inPort {
				f.carryOne(from, frame, p, hops)
			}
		}
		return
	}
	f.carryOne(from, frame, outPort, hops)
}

func (f *Fabric) carryOne(from topo.DPID, frame []byte, outPort uint16, hops int) {
	src := topo.Port{DPID: from, Port: outPort}
	// Host attachment?
	for _, h := range f.topo.Hosts() {
		if h.Attach == src {
			if hh, ok := f.hosts[h.ID]; ok {
				f.eng.Schedule(f.HopLatency, func() {
					f.delivered++
					hh.Receive(frame)
				})
			}
			return
		}
	}
	if f.downPorts[src] {
		return // link failed: frame lost on the wire
	}
	// Switch-to-switch link?
	if peer, ok := f.topo.Peer(src); ok {
		if sw, ok := f.switches[peer.DPID]; ok {
			if f.alreadyVisited(frame, peer.DPID) {
				return
			}
			remaining := hops - 1
			f.eng.Schedule(f.HopLatency, func() {
				f.injectWithHops(sw, frame, peer.Port, remaining)
			})
		}
	}
}

// alreadyVisited records and checks frame/switch visits within the current
// dedup window.
func (f *Fabric) alreadyVisited(frame []byte, to topo.DPID) bool {
	const window = 100 * time.Millisecond
	now := f.eng.Now()
	if now-f.seenGenAt > window {
		f.seenPrev = f.seenCur
		f.seenCur = make(map[uint64]map[topo.DPID]bool)
		f.seenGenAt = now
	}
	h := fnv.New64a()
	h.Write(frame)
	key := h.Sum64()
	if f.seenCur[key][to] || f.seenPrev[key][to] {
		return true
	}
	set := f.seenCur[key]
	if set == nil {
		set = make(map[topo.DPID]bool)
		f.seenCur[key] = set
	}
	set[to] = true
	return false
}

// injectWithHops is like Switch.Inject but threads a hop budget through
// flood chains by temporarily overriding the forward callback depth. The
// switch's own forward closure always starts from MaxFloodHops, so here we
// inline the lookup to honor the remaining budget.
func (f *Fabric) injectWithHops(sw *Switch, frame []byte, inPort uint16, hops int) {
	pf, err := openflow.ParsePacket(frame, inPort)
	if err != nil {
		return
	}
	entry, ok := sw.Lookup(pf)
	if !ok {
		sw.Inject(frame, inPort) // miss path: PACKET_IN as usual
		return
	}
	entry.Packets++
	entry.Bytes += uint64(len(frame))
	entry.LastHit = f.eng.Now()
	for _, a := range entry.Actions {
		switch a.Port {
		case openflow.PortController:
			sw.sendPacketIn(frame, inPort, openflow.ReasonAction)
		case openflow.PortNone:
		default:
			f.carry(sw.DPID(), frame, a.Port, inPort, hops)
		}
	}
}
