// Package experiment packages the paper's evaluation runs (§VII) as
// reusable functions: every figure and table has a runner here, shared by
// the benchmark harness (bench_test.go) and the figure regenerator
// (cmd/juryfig).
package experiment

import (
	"fmt"
	"time"

	jury "github.com/jurysdn/jury"
	"github.com/jurysdn/jury/internal/controller"
	"github.com/jurysdn/jury/internal/faults"
	"github.com/jurysdn/jury/internal/metrics"
	"github.com/jurysdn/jury/internal/store"
	"github.com/jurysdn/jury/internal/workload"
)

// DetectionConfig parameterizes a detection-time calibration run
// (Figs. 4a-4d).
type DetectionConfig struct {
	Kind jury.ControllerKind
	N    int
	K    int
	// M timing-faulty (slow) replicas.
	M int
	// Rate profile: base/peak flows per second with a bursty duty cycle,
	// matching "different PACKET_IN rates ... peak ~5.5K" (§VII-A).
	BaseRate float64
	PeakRate float64
	// Trace, when non-empty, drives a benign trace model instead
	// (Fig. 4d): "LBNL", "UNIV" or "SMIA".
	Trace string
	// Timeout is the validation deadline; calibration runs use a large
	// value so the consensus-time distribution is unclipped.
	Timeout  time.Duration
	Duration time.Duration
	Seed     int64
}

// DetectionResult summarizes one detection run.
type DetectionResult struct {
	Config     DetectionConfig
	PacketIns  float64 // measured PACKET_IN rate
	Decided    int64
	Timeouts   int64
	Faults     int64
	FPRate     float64
	Detections metrics.Distribution
}

// Detection runs one detection-time experiment.
func Detection(cfg DetectionConfig) (*DetectionResult, error) {
	if cfg.N == 0 {
		cfg.N = 7
	}
	if cfg.Duration == 0 {
		cfg.Duration = 15 * time.Second
	}
	if cfg.Timeout == 0 {
		cfg.Timeout = 2 * time.Second
	}
	sim, err := jury.New(jury.Config{
		Seed:              cfg.Seed,
		Kind:              cfg.Kind,
		ClusterSize:       cfg.N,
		EnableJury:        true,
		K:                 cfg.K,
		ValidationTimeout: cfg.Timeout,
	})
	if err != nil {
		return nil, err
	}
	sim.Boot()
	for i := 0; i < cfg.M; i++ {
		// The slowest (faulty) replicas are the highest-ID controllers.
		target := sim.Controller(cfg.N - i)
		if cfg.Kind == jury.ODL {
			faults.InjectTimingDelay(target, 80*time.Millisecond, 250*time.Millisecond)
		} else {
			faults.InjectTimingDelay(target, 10*time.Millisecond, 50*time.Millisecond)
		}
	}
	start := sim.Now()
	until := start + cfg.Duration
	var profile workload.RateProfile
	join, flap := 2*time.Second, 5*time.Second
	switch {
	case cfg.Trace != "":
		spec, err := traceByName(cfg.Trace)
		if err != nil {
			return nil, err
		}
		profile = spec.Profile()
		join, flap = spec.JoinEvery, spec.FlapEvery
		sim.Driver.LocalPairs = false
	default:
		profile = workload.SquareBurst(cfg.BaseRate, cfg.PeakRate, 2*time.Second, 0.35)
		sim.Driver.LocalPairs = true
	}
	sim.Driver.Start(profile, until)
	sim.Driver.StartChurn(join, flap, until)
	if err := sim.Run(cfg.Duration + time.Second); err != nil {
		return nil, err
	}
	v := sim.Validator()
	return &DetectionResult{
		Config:     cfg,
		PacketIns:  sim.PacketIns.MeanRate(start, until),
		Decided:    v.Decided(),
		Timeouts:   v.Timeouts(),
		Faults:     v.Faults(),
		FPRate:     v.FalsePositiveRate(),
		Detections: v.DetectionsExternal,
	}, nil
}

// ThroughputPoint is one (offered, measured) sample of Figs. 4f-4h.
type ThroughputPoint struct {
	N         int
	JuryK     int // -1 when JURY is disabled
	Offered   float64
	PacketIns float64
	FlowMods  float64
	Drops     uint64
}

// Throughput measures FLOW_MOD vs PACKET_IN throughput for one
// configuration. juryK < 0 disables JURY (Figs. 4f/4g); otherwise JURY
// runs with that replication factor (Fig. 4h).
func Throughput(kind jury.ControllerKind, n int, juryK int, offered float64, dur time.Duration, seed int64) (ThroughputPoint, error) {
	cfg := jury.Config{Seed: seed, Kind: kind, ClusterSize: n}
	if juryK >= 0 {
		cfg.EnableJury = true
		cfg.K = juryK
	}
	sim, err := jury.New(cfg)
	if err != nil {
		return ThroughputPoint{}, err
	}
	sim.Boot()
	start := sim.Now()
	until := start + dur
	sim.Driver.LocalPairs = true
	sim.Driver.Start(workload.ConstantRate(offered), until)
	if err := sim.Run(dur + time.Second); err != nil {
		return ThroughputPoint{}, err
	}
	var drops uint64
	for _, c := range sim.Controllers {
		drops += c.IngressDrops()
	}
	return ThroughputPoint{
		N:         n,
		JuryK:     juryK,
		Offered:   offered,
		PacketIns: sim.PacketIns.MeanRate(start, until),
		FlowMods:  sim.FlowMods.MeanRate(start, until),
		Drops:     drops,
	}, nil
}

// CbenchResult carries the per-second series of Fig. 4e.
type CbenchResult struct {
	Seconds   []int
	PacketIns []float64
	FlowMods  []float64
}

// Cbench drives closed bursts against a single overloadable controller and
// records the per-second PACKET_IN and FLOW_MOD rates (Fig. 4e).
func Cbench(burst int, dur time.Duration, seed int64) (*CbenchResult, error) {
	profile := controller.ONOSProfile()
	profile.QueueCap = 8192
	profile.InflateAt = 2048
	profile.InflateSlope = 0.006
	sim, err := jury.New(jury.Config{
		Seed:        seed,
		Kind:        jury.ONOS,
		Profile:     &profile,
		ClusterSize: 1,
		Topology:    jury.SingleSwitch,
	})
	if err != nil {
		return nil, err
	}
	sim.Boot()
	cb := workload.NewCbench(sim.Engine, sim.Fabric)
	cb.BurstSize = burst
	cb.Period = time.Second
	cb.Spread = 900 * time.Millisecond
	start := sim.Now()
	cb.Start(start + dur)
	if err := sim.Run(dur + time.Second); err != nil {
		return nil, err
	}
	res := &CbenchResult{}
	pins := sim.PacketIns.Rates()
	fms := sim.FlowMods.Rates()
	for i := int(start / time.Second); i < len(pins); i++ {
		res.Seconds = append(res.Seconds, i-int(start/time.Second))
		res.PacketIns = append(res.PacketIns, pins[i])
		var fm float64
		if i < len(fms) {
			fm = fms[i]
		}
		res.FlowMods = append(res.FlowMods, fm)
	}
	return res, nil
}

// Decapsulation measures the ODL-path decapsulation overhead distribution
// (Fig. 4i) at the given flow rate.
func Decapsulation(rate float64, dur time.Duration, seed int64) (metrics.Distribution, error) {
	sim, err := jury.New(jury.Config{
		Seed:        seed,
		Kind:        jury.ODL,
		ClusterSize: 7,
		EnableJury:  true,
		K:           6,
	})
	if err != nil {
		return metrics.Distribution{}, err
	}
	sim.Boot()
	until := sim.Now() + dur
	sim.Driver.LocalPairs = true
	sim.Driver.Start(workload.ConstantRate(rate), until)
	if err := sim.Run(dur + time.Second); err != nil {
		return metrics.Distribution{}, err
	}
	var all metrics.Distribution
	for i := 1; i <= 7; i++ {
		if m, ok := sim.System.Module(store.NodeID(i)); ok {
			for _, s := range m.DecapTimes.Samples() {
				all.Add(s)
			}
		}
	}
	return all, nil
}

// OverheadResult carries the §VII-B2 traffic accounting.
type OverheadResult struct {
	K                     int
	PacketIns             float64
	InterControllerMbps   float64
	JuryReplicationMbps   float64
	JuryValidatorMbps     float64
	JuryShareOfControlPct float64
}

// Overhead measures network-overhead proportions at one replication factor.
func Overhead(kind jury.ControllerKind, n, k int, rate float64, dur time.Duration, seed int64) (OverheadResult, error) {
	sim, err := jury.New(jury.Config{
		Seed: seed, Kind: kind, ClusterSize: n, EnableJury: true, K: k,
	})
	if err != nil {
		return OverheadResult{}, err
	}
	sim.Boot()
	start := sim.Now()
	until := start + dur
	sim.Driver.LocalPairs = true
	sim.Driver.Start(workload.ConstantRate(rate), until)
	if err := sim.Run(dur + time.Second); err != nil {
		return OverheadResult{}, err
	}
	secs := dur.Seconds()
	mbps := func(bytes int64) float64 { return float64(bytes) * 8 / secs / 1e6 }
	res := OverheadResult{
		K:                   k,
		PacketIns:           sim.PacketIns.MeanRate(start, until),
		InterControllerMbps: mbps(sim.Store.ReplicationBytes()),
		JuryReplicationMbps: mbps(sim.System.ReplicationBytes()),
		JuryValidatorMbps:   mbps(sim.System.ValidatorBytes()),
	}
	if res.InterControllerMbps > 0 {
		res.JuryShareOfControlPct = (res.JuryReplicationMbps + res.JuryValidatorMbps) / res.InterControllerMbps * 100
	}
	return res, nil
}

// PacketOutThroughput measures the PACKET_OUT fast path (the §VII-B1
// aside: PACKET_OUT saturates at ~220K/s, far above FLOW_MOD's ~5K/s) by
// driving ARP requests toward known bindings, which cost only a proxy
// PACKET_OUT.
func PacketOutThroughput(rate float64, dur time.Duration, seed int64) (float64, error) {
	sim, err := jury.New(jury.Config{Seed: seed, Kind: jury.ONOS, ClusterSize: 1, Topology: jury.SingleSwitch})
	if err != nil {
		return 0, err
	}
	sim.Boot()
	start := sim.Now()
	until := start + dur
	hosts := sim.Fabric.Hosts()
	// Repeated ARP requests for already-known bindings: proxy replies
	// only, no FlowsDB writes.
	var arpTick func()
	gap := time.Duration(float64(time.Second) / rate)
	if gap <= 0 {
		gap = time.Microsecond
	}
	i := 0
	arpTick = func() {
		if sim.Now() >= until {
			return
		}
		h := hosts[i%len(hosts)]
		other := hosts[(i+1)%len(hosts)]
		i++
		_ = h.SendARPRequest(other.Info().IP)
		sim.Engine.Schedule(gap, arpTick)
	}
	sim.Engine.Schedule(0, arpTick)
	if err := sim.Run(dur + time.Second); err != nil {
		return 0, err
	}
	return sim.PacketOuts.MeanRate(start, until), nil
}

func traceByName(name string) (workload.TraceSpec, error) {
	for _, spec := range workload.Traces() {
		if spec.Name == name {
			return spec, nil
		}
	}
	return workload.TraceSpec{}, fmt.Errorf("experiment: unknown trace %q", name)
}
