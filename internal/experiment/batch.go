package experiment

import (
	"context"
	"time"

	jury "github.com/jurysdn/jury"
	"github.com/jurysdn/jury/internal/metrics"
	"github.com/jurysdn/jury/internal/sweep"
)

// SchemaVersion salts the sweep result cache for every batch entry
// point. Bump it whenever a change anywhere in the simulation or in the
// result schema makes previously cached figures stale — old entries are
// then orphaned instead of being served.
const SchemaVersion = "jury-experiment-v1"

// BatchOptions parameterizes a campaign of independent experiment runs.
// Every batch entry point fans its points across a bounded worker pool
// (internal/sweep); each point's seed is derived from RootSeed and the
// point's canonical key, so results are bit-identical at any
// Parallelism. The Seed field of individual point configs is ignored in
// batch mode — leave it zero.
type BatchOptions struct {
	// RootSeed is the campaign seed every point seed derives from.
	RootSeed int64
	// Parallelism bounds concurrent simulations; 0 means
	// runtime.GOMAXPROCS(0).
	Parallelism int
	// FailFast cancels the campaign on the first point error.
	FailFast bool
	// Cache, when non-nil, makes the campaign resumable: completed
	// points are served from disk.
	Cache *sweep.Cache
	// Progress receives serialized progress events.
	Progress sweep.ProgressFunc
}

func (o BatchOptions) config() sweep.Config {
	return sweep.Config{
		RootSeed:    o.RootSeed,
		Parallelism: o.Parallelism,
		FailFast:    o.FailFast,
		Cache:       o.Cache,
		Progress:    o.Progress,
	}
}

// runBatch adapts a (config, seed) experiment runner to a sweep.
func runBatch[P, R any](ctx context.Context, cfgs []P, opt BatchOptions, run func(P, int64) (R, error)) ([]sweep.Result[P, R], error) {
	return sweep.Run(ctx, opt.config(), cfgs, func(_ context.Context, pt sweep.Point[P]) (R, error) {
		return run(pt.Params, pt.Seed)
	})
}

// DetectionBatch runs detection-time experiments (Figs. 4a-4d) as a
// parallel campaign.
func DetectionBatch(ctx context.Context, cfgs []DetectionConfig, opt BatchOptions) ([]sweep.Result[DetectionConfig, *DetectionResult], error) {
	return runBatch(ctx, cfgs, opt, func(cfg DetectionConfig, seed int64) (*DetectionResult, error) {
		cfg.Seed = seed
		return Detection(cfg)
	})
}

// ThroughputConfig parameterizes one Throughput point (Figs. 4f-4h) for
// batch runs.
type ThroughputConfig struct {
	Kind jury.ControllerKind
	N    int
	// JuryK < 0 disables JURY (vanilla baseline).
	JuryK    int
	Offered  float64
	Duration time.Duration
}

// ThroughputBatch runs throughput points as a parallel campaign.
func ThroughputBatch(ctx context.Context, cfgs []ThroughputConfig, opt BatchOptions) ([]sweep.Result[ThroughputConfig, ThroughputPoint], error) {
	return runBatch(ctx, cfgs, opt, func(cfg ThroughputConfig, seed int64) (ThroughputPoint, error) {
		return Throughput(cfg.Kind, cfg.N, cfg.JuryK, cfg.Offered, cfg.Duration, seed)
	})
}

// CbenchConfig parameterizes one Cbench overload run (Fig. 4e) for
// batch runs.
type CbenchConfig struct {
	Burst    int
	Duration time.Duration
}

// CbenchBatch runs Cbench points as a parallel campaign.
func CbenchBatch(ctx context.Context, cfgs []CbenchConfig, opt BatchOptions) ([]sweep.Result[CbenchConfig, *CbenchResult], error) {
	return runBatch(ctx, cfgs, opt, func(cfg CbenchConfig, seed int64) (*CbenchResult, error) {
		return Cbench(cfg.Burst, cfg.Duration, seed)
	})
}

// DecapsulationConfig parameterizes one decapsulation-overhead run
// (Fig. 4i) for batch runs.
type DecapsulationConfig struct {
	Rate     float64
	Duration time.Duration
}

// DecapsulationBatch runs decapsulation points as a parallel campaign.
func DecapsulationBatch(ctx context.Context, cfgs []DecapsulationConfig, opt BatchOptions) ([]sweep.Result[DecapsulationConfig, metrics.Distribution], error) {
	return runBatch(ctx, cfgs, opt, func(cfg DecapsulationConfig, seed int64) (metrics.Distribution, error) {
		return Decapsulation(cfg.Rate, cfg.Duration, seed)
	})
}
