package experiment

import (
	"context"
	"encoding/json"
	"path/filepath"
	"testing"
	"time"

	jury "github.com/jurysdn/jury"
	"github.com/jurysdn/jury/internal/sweep"
)

func quickDetectionGrid() []DetectionConfig {
	var cfgs []DetectionConfig
	for _, k := range []int{1, 2} {
		cfgs = append(cfgs, DetectionConfig{
			Kind: jury.ONOS, N: 3, K: k,
			BaseRate: 100, PeakRate: 200,
			Duration: 2 * time.Second,
		})
	}
	return cfgs
}

// TestBatchDeterministicAcrossParallelism is the determinism regression
// test for the orchestration subsystem: the same campaign executed
// sequentially and on an 8-wide pool must produce byte-identical encoded
// results, because every point's seed is derived from the root seed and
// the point key, never from scheduling.
func TestBatchDeterministicAcrossParallelism(t *testing.T) {
	cfgs := quickDetectionGrid()
	encode := func(parallelism int) []byte {
		res, err := DetectionBatch(context.Background(), cfgs,
			BatchOptions{RootSeed: 7, Parallelism: parallelism})
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	seq := encode(1)
	par := encode(8)
	if string(seq) != string(par) {
		t.Fatalf("Parallelism=1 and Parallelism=8 diverged:\nseq: %.200s...\npar: %.200s...", seq, par)
	}
}

// TestBatchWarmCacheMatchesCold pins the cache round trip for real
// experiment results: a warm resume must serve every point from disk and
// encode identically to the cold run (Distribution survives JSON).
func TestBatchWarmCacheMatchesCold(t *testing.T) {
	cache, err := sweep.NewCache(filepath.Join(t.TempDir(), "figcache"), SchemaVersion)
	if err != nil {
		t.Fatal(err)
	}
	cfgs := quickDetectionGrid()[:1]
	opt := BatchOptions{RootSeed: 7, Parallelism: 2, Cache: cache}
	cold, err := DetectionBatch(context.Background(), cfgs, opt)
	if err != nil {
		t.Fatal(err)
	}
	if cold[0].Cached {
		t.Fatal("cold run served from cache")
	}
	warm, err := DetectionBatch(context.Background(), cfgs, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !warm[0].Cached {
		t.Fatal("warm run not served from cache")
	}
	cb, _ := json.Marshal(cold[0].Value)
	wb, _ := json.Marshal(warm[0].Value)
	if string(cb) != string(wb) {
		t.Fatalf("cache round trip changed the result:\ncold: %.200s...\nwarm: %.200s...", cb, wb)
	}
	if warm[0].Value.Detections.Count() != cold[0].Value.Detections.Count() {
		t.Fatal("detection distribution lost samples through the cache")
	}
}

// TestThroughputBatchMatchesDirect ensures batch orchestration runs the
// same simulation as the direct entry point given the same seed.
func TestThroughputBatchMatchesDirect(t *testing.T) {
	cfgs := []ThroughputConfig{{Kind: jury.ONOS, N: 3, JuryK: -1, Offered: 500, Duration: 2 * time.Second}}
	res, err := ThroughputBatch(context.Background(), cfgs, BatchOptions{RootSeed: 42})
	if err != nil {
		t.Fatal(err)
	}
	direct, err := Throughput(jury.ONOS, 3, -1, 500, 2*time.Second, res[0].Point.Seed)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Value != direct {
		t.Fatalf("batch %+v != direct %+v", res[0].Value, direct)
	}
}
