package experiment

import (
	"testing"
	"time"

	jury "github.com/jurysdn/jury"
)

func TestDetectionRunner(t *testing.T) {
	res, err := Detection(DetectionConfig{
		Kind: jury.ONOS, N: 3, K: 2,
		BaseRate: 100, PeakRate: 200,
		Duration: 2 * time.Second, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Decided == 0 || res.Detections.Count() == 0 {
		t.Fatalf("empty result: %+v", res)
	}
	if res.PacketIns <= 0 {
		t.Fatal("no packet-in rate measured")
	}
}

func TestDetectionTraceRunner(t *testing.T) {
	res, err := Detection(DetectionConfig{
		Kind: jury.ONOS, N: 3, K: 2,
		Trace:    "LBNL",
		Timeout:  130 * time.Millisecond,
		Duration: 2 * time.Second, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Decided == 0 {
		t.Fatal("trace run decided nothing")
	}
	if _, err := Detection(DetectionConfig{Trace: "NOPE", Duration: time.Second}); err == nil {
		t.Fatal("unknown trace accepted")
	}
}

func TestThroughputRunner(t *testing.T) {
	pt, err := Throughput(jury.ONOS, 3, -1, 1000, 2*time.Second, 1)
	if err != nil {
		t.Fatal(err)
	}
	if pt.FlowMods < 700 || pt.FlowMods > 1100 {
		t.Fatalf("flow mods = %.0f, want ~1000", pt.FlowMods)
	}
	withJury, err := Throughput(jury.ONOS, 3, 2, 1000, 2*time.Second, 1)
	if err != nil {
		t.Fatal(err)
	}
	if withJury.JuryK != 2 || withJury.FlowMods == 0 {
		t.Fatalf("jury point = %+v", withJury)
	}
}

func TestCbenchRunner(t *testing.T) {
	res, err := Cbench(2000, 4*time.Second, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Seconds) == 0 {
		t.Fatal("no series")
	}
	var peak float64
	for _, v := range res.PacketIns {
		if v > peak {
			peak = v
		}
	}
	if peak < 1500 {
		t.Fatalf("peak packet-in = %.0f", peak)
	}
}

func TestDecapsulationRunner(t *testing.T) {
	d, err := Decapsulation(50, 2*time.Second, 1)
	if err != nil {
		t.Fatal(err)
	}
	if d.Count() == 0 {
		t.Fatal("no decap samples")
	}
}

func TestOverheadRunner(t *testing.T) {
	res, err := Overhead(jury.ONOS, 3, 2, 500, 2*time.Second, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.InterControllerMbps <= 0 || res.JuryShareOfControlPct <= 0 {
		t.Fatalf("overhead result = %+v", res)
	}
}

func TestPacketOutRunner(t *testing.T) {
	rate, err := PacketOutThroughput(5000, time.Second, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rate < 2000 {
		t.Fatalf("packet-out rate = %.0f", rate)
	}
}
