// Package policy implements JURY's light-weight policy framework (§V):
// administrators express fine-grained constraints on controller actions in
// the four-directive language of Table 2 (controller, trigger, cache,
// destination), serialized in the XML form of Fig. 3. The validator
// evaluates every primary response against the policy set after consensus.
package policy

import (
	"encoding/xml"
	"fmt"
	"strconv"
	"strings"

	"github.com/jurysdn/jury/internal/controller"
	"github.com/jurysdn/jury/internal/store"
	"github.com/jurysdn/jury/internal/trigger"
)

// Destination classifies where a side-effect lands relative to the acting
// controller: a switch it governs (local), a switch governed by another
// controller (remote), or anywhere.
type Destination uint8

// Destinations.
const (
	DestAny Destination = iota
	DestLocal
	DestRemote
)

// String names the destination as used in policy files.
func (d Destination) String() string {
	switch d {
	case DestLocal:
		return "local"
	case DestRemote:
		return "remote"
	default:
		return "*"
	}
}

// ParseDestination parses a policy-file destination value.
func ParseDestination(s string) (Destination, error) {
	switch strings.ToLower(s) {
	case "", "*", "any":
		return DestAny, nil
	case "local":
		return DestLocal, nil
	case "remote":
		return DestRemote, nil
	default:
		return DestAny, fmt.Errorf("policy: unknown destination %q", s)
	}
}

// Policy is one administrator constraint. A policy with Allow=false raises
// an alarm when an action matches it; Allow=true whitelists matching
// actions (evaluated in order, first match wins).
type Policy struct {
	// Name labels the policy in alarms.
	Name string
	// Allow: false = raise alarm on match (the Fig. 3 example), true =
	// explicitly permit.
	Allow bool
	// Controller is a controller id ("3") or "*".
	Controller string
	// Trigger is "internal", "external" or "*".
	Trigger string
	// Cache is a cache name or "*".
	Cache string
	// Operation is "create", "update", "delete" or "*".
	Operation string
	// Entry is a "key,value" glob ('*' matches any run of characters).
	Entry string
	// Destination is "local", "remote" or "*".
	Destination string
	// RequireMatchHierarchy, for FlowsDB entries, additionally matches
	// only rules whose OpenFlow match violates the 1.0 field-prerequisite
	// hierarchy — the policy the paper uses against the "ODL incorrect
	// FLOW_MOD" T3 fault (§VII-A1(4)).
	RequireMatchHierarchy bool
}

// Input is one controller action presented for policy evaluation.
type Input struct {
	Kind        trigger.Kind
	Controller  store.NodeID
	Cache       store.CacheName
	Op          store.Op
	Key         string
	Value       string
	Destination Destination
}

// compiled is a pre-processed policy.
type compiled struct {
	p         Policy
	ctrl      store.NodeID // 0 = any
	anyCtrl   bool
	kind      trigger.Kind // 0 = any
	cache     store.CacheName
	anyCache  bool
	op        store.Op // 0 = any
	keyGlob   glob
	valueGlob glob
	dest      Destination
	hierarchy bool
}

// Engine evaluates a policy set. Policies are checked in order; the first
// matching policy decides (deny → violation). The scan is linear, matching
// the validation-cost scaling the paper reports (§VII-B2(3)); see
// NewIndexed for the indexed ablation.
type Engine struct {
	policies []compiled
	indexed  bool
	byCache  map[store.CacheName][]int
	anyCache []int
}

// New compiles a policy set.
func New(policies []Policy) (*Engine, error) {
	e := &Engine{}
	for i, p := range policies {
		c, err := compile(p)
		if err != nil {
			return nil, fmt.Errorf("policy %d (%s): %w", i, p.Name, err)
		}
		e.policies = append(e.policies, c)
	}
	return e, nil
}

// NewIndexed compiles a policy set with a cache-name index, trading the
// paper's linear scan for O(matching) lookup (ablation bench).
func NewIndexed(policies []Policy) (*Engine, error) {
	e, err := New(policies)
	if err != nil {
		return nil, err
	}
	e.indexed = true
	e.byCache = make(map[store.CacheName][]int)
	for i, c := range e.policies {
		if c.anyCache {
			e.anyCache = append(e.anyCache, i)
		} else {
			e.byCache[c.cache] = append(e.byCache[c.cache], i)
		}
	}
	return e, nil
}

// Len returns the number of policies.
func (e *Engine) Len() int { return len(e.policies) }

// Check evaluates an action. It returns the name of the violated policy
// and true when a deny policy matches.
func (e *Engine) Check(in Input) (string, bool) {
	if e.indexed {
		return e.checkIndexed(in)
	}
	for i := range e.policies {
		c := &e.policies[i]
		if !c.matches(in) {
			continue
		}
		if c.p.Allow {
			return "", false
		}
		return c.name(i), true
	}
	return "", false
}

func (e *Engine) checkIndexed(in Input) (string, bool) {
	best := -1
	for _, i := range e.byCache[in.Cache] {
		if e.policies[i].matches(in) {
			best = i
			break
		}
	}
	for _, i := range e.anyCache {
		if best >= 0 && i >= best {
			break
		}
		if e.policies[i].matches(in) {
			best = i
			break
		}
	}
	if best < 0 {
		return "", false
	}
	if e.policies[best].p.Allow {
		return "", false
	}
	return e.policies[best].name(best), true
}

func (c *compiled) name(i int) string {
	if c.p.Name != "" {
		return c.p.Name
	}
	return "policy#" + strconv.Itoa(i)
}

func (c *compiled) matches(in Input) bool {
	if !c.anyCtrl && c.ctrl != in.Controller {
		return false
	}
	if c.kind != 0 && c.kind != in.Kind {
		return false
	}
	if !c.anyCache && c.cache != in.Cache {
		return false
	}
	if c.op != 0 && c.op != in.Op {
		return false
	}
	if c.dest != DestAny && in.Destination != DestAny && c.dest != in.Destination {
		return false
	}
	if !c.keyGlob.match(in.Key) || !c.valueGlob.match(in.Value) {
		return false
	}
	if c.hierarchy {
		if in.Cache != store.FlowsDB {
			return false
		}
		rule, err := controller.DecodeFlowRule(in.Value)
		if err != nil {
			return false
		}
		if rule.Match.HierarchyValid() {
			return false
		}
	}
	return true
}

func compile(p Policy) (compiled, error) {
	c := compiled{p: p}
	switch p.Controller {
	case "", "*":
		c.anyCtrl = true
	default:
		id, err := strconv.Atoi(p.Controller)
		if err != nil {
			return c, fmt.Errorf("bad controller id %q", p.Controller)
		}
		c.ctrl = store.NodeID(id)
	}
	switch strings.ToLower(p.Trigger) {
	case "", "*":
	case "internal":
		c.kind = trigger.Internal
	case "external":
		c.kind = trigger.External
	default:
		return c, fmt.Errorf("bad trigger %q", p.Trigger)
	}
	switch p.Cache {
	case "", "*":
		c.anyCache = true
	default:
		c.cache = store.CacheName(p.Cache)
	}
	switch strings.ToLower(p.Operation) {
	case "", "*":
	default:
		op, err := store.ParseOp(strings.ToLower(p.Operation))
		if err != nil {
			return c, err
		}
		c.op = op
	}
	keyPat, valPat := "*", "*"
	if p.Entry != "" {
		parts := strings.SplitN(p.Entry, ",", 2)
		keyPat = parts[0]
		if len(parts) == 2 {
			valPat = parts[1]
		}
	}
	c.keyGlob = compileGlob(keyPat)
	c.valueGlob = compileGlob(valPat)
	dest, err := ParseDestination(p.Destination)
	if err != nil {
		return c, err
	}
	c.dest = dest
	c.hierarchy = p.RequireMatchHierarchy
	return c, nil
}

// glob is a compiled '*' wildcard pattern.
type glob struct {
	any      bool
	literals []string
	prefix   bool // pattern started with a literal (anchored at start)
	suffix   bool // pattern ended with a literal (anchored at end)
}

func compileGlob(pattern string) glob {
	if pattern == "" || pattern == "*" {
		return glob{any: true}
	}
	parts := strings.Split(pattern, "*")
	g := glob{
		prefix: parts[0] != "",
		suffix: parts[len(parts)-1] != "",
	}
	for _, p := range parts {
		if p != "" {
			g.literals = append(g.literals, p)
		}
	}
	if len(g.literals) == 0 {
		g.any = true
	}
	return g
}

func (g glob) match(s string) bool {
	if g.any {
		return true
	}
	lits := g.literals
	if g.prefix {
		if !strings.HasPrefix(s, lits[0]) {
			return false
		}
		s = s[len(lits[0]):]
		lits = lits[1:]
	}
	var tail string
	if g.suffix {
		if len(lits) == 0 {
			// The whole pattern was one anchored literal ("exact"):
			// nothing may remain after the prefix strip.
			return s == ""
		}
		tail = lits[len(lits)-1]
		lits = lits[:len(lits)-1]
	}
	for _, l := range lits {
		idx := strings.Index(s, l)
		if idx < 0 {
			return false
		}
		s = s[idx+len(l):]
	}
	if tail != "" {
		return strings.HasSuffix(s, tail)
	}
	return true
}

// XML serialization (Fig. 3 format).

type xmlPolicies struct {
	XMLName  xml.Name    `xml:"Policies"`
	Policies []xmlPolicy `xml:"Policy"`
}

type xmlPolicy struct {
	Allow       string         `xml:"allow,attr"`
	Name        string         `xml:"name,attr,omitempty"`
	Controller  xmlController  `xml:"Controller"`
	Action      xmlAction      `xml:"Action"`
	Cache       xmlCache       `xml:"Cache"`
	Destination xmlDestination `xml:"Destination"`
}

type xmlController struct {
	ID string `xml:"id,attr"`
}

type xmlAction struct {
	Type string `xml:"type,attr"`
}

type xmlCache struct {
	Name           string `xml:"name,attr"`
	Entry          string `xml:"entry,attr"`
	Operation      string `xml:"operation,attr"`
	MatchHierarchy string `xml:"matchHierarchy,attr,omitempty"`
}

type xmlDestination struct {
	Value string `xml:"value,attr"`
}

// ParseXML reads a policy set in the Fig. 3 XML format. A single <Policy>
// document (without a <Policies> wrapper) is also accepted.
func ParseXML(data []byte) ([]Policy, error) {
	var doc xmlPolicies
	if err := xml.Unmarshal(data, &doc); err != nil {
		var single xmlPolicy
		if err2 := xml.Unmarshal(data, &single); err2 != nil {
			return nil, fmt.Errorf("policy: parse XML: %w", err)
		}
		doc.Policies = []xmlPolicy{single}
	}
	out := make([]Policy, 0, len(doc.Policies))
	for _, xp := range doc.Policies {
		out = append(out, Policy{
			Name:                  xp.Name,
			Allow:                 strings.EqualFold(xp.Allow, "yes"),
			Controller:            xp.Controller.ID,
			Trigger:               strings.ToLower(xp.Action.Type),
			Cache:                 xp.Cache.Name,
			Operation:             strings.ToLower(xp.Cache.Operation),
			Entry:                 xp.Cache.Entry,
			Destination:           strings.ToLower(xp.Destination.Value),
			RequireMatchHierarchy: strings.EqualFold(xp.Cache.MatchHierarchy, "required"),
		})
	}
	return out, nil
}

// MarshalXML renders a policy set in the Fig. 3 XML format.
func MarshalXML(policies []Policy) ([]byte, error) {
	doc := xmlPolicies{}
	for _, p := range policies {
		allow := "No"
		if p.Allow {
			allow = "Yes"
		}
		hier := ""
		if p.RequireMatchHierarchy {
			hier = "required"
		}
		doc.Policies = append(doc.Policies, xmlPolicy{
			Allow:       allow,
			Name:        p.Name,
			Controller:  xmlController{ID: orStar(p.Controller)},
			Action:      xmlAction{Type: orStar(p.Trigger)},
			Cache:       xmlCache{Name: orStar(p.Cache), Entry: orStar(p.Entry), Operation: orStar(p.Operation), MatchHierarchy: hier},
			Destination: xmlDestination{Value: orStar(p.Destination)},
		})
	}
	return xml.MarshalIndent(doc, "", "  ")
}

func orStar(s string) string {
	if s == "" {
		return "*"
	}
	return s
}
