package policy

import (
	"fmt"
	"strings"
	"testing"

	"github.com/jurysdn/jury/internal/controller"
	"github.com/jurysdn/jury/internal/faults"
	"github.com/jurysdn/jury/internal/openflow"
	"github.com/jurysdn/jury/internal/store"
	"github.com/jurysdn/jury/internal/trigger"
)

func mustEngine(t *testing.T, policies []Policy) *Engine {
	t.Helper()
	e, err := New(policies)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestDenyInternalTopologyWrites(t *testing.T) {
	// The Fig. 3 example policy: alarm on any proactive EdgesDB change.
	e := mustEngine(t, []Policy{{
		Name:    "fig3",
		Trigger: "internal",
		Cache:   "EdgesDB",
	}})
	if name, bad := e.Check(Input{
		Kind:  trigger.Internal,
		Cache: store.EdgesDB,
		Op:    store.OpUpdate,
		Key:   "k",
	}); !bad || name != "fig3" {
		t.Fatalf("internal EdgesDB write not denied: %q %v", name, bad)
	}
	if _, bad := e.Check(Input{Kind: trigger.External, Cache: store.EdgesDB, Op: store.OpUpdate}); bad {
		t.Fatal("external trigger wrongly denied")
	}
	if _, bad := e.Check(Input{Kind: trigger.Internal, Cache: store.FlowsDB}); bad {
		t.Fatal("other cache wrongly denied")
	}
}

func TestControllerScoping(t *testing.T) {
	e := mustEngine(t, []Policy{{Name: "c3-only", Controller: "3"}})
	if _, bad := e.Check(Input{Controller: 3}); !bad {
		t.Fatal("C3 action not matched")
	}
	if _, bad := e.Check(Input{Controller: 4}); bad {
		t.Fatal("C4 action wrongly matched")
	}
}

func TestOperationScoping(t *testing.T) {
	e := mustEngine(t, []Policy{{Name: "no-deletes", Operation: "delete"}})
	if _, bad := e.Check(Input{Op: store.OpDelete}); !bad {
		t.Fatal("delete not matched")
	}
	if _, bad := e.Check(Input{Op: store.OpCreate}); bad {
		t.Fatal("create wrongly matched")
	}
}

func TestDestinationScoping(t *testing.T) {
	e := mustEngine(t, []Policy{{Name: "no-remote", Destination: "remote"}})
	if _, bad := e.Check(Input{Destination: DestRemote}); !bad {
		t.Fatal("remote not matched")
	}
	if _, bad := e.Check(Input{Destination: DestLocal}); bad {
		t.Fatal("local wrongly matched")
	}
	// Unknown destination matches any policy destination.
	if _, bad := e.Check(Input{Destination: DestAny}); !bad {
		t.Fatal("unknown destination should conservatively match")
	}
}

func TestEntryGlobs(t *testing.T) {
	e := mustEngine(t, []Policy{{Name: "glob", Entry: "10.0.*,*down*"}})
	if _, bad := e.Check(Input{Key: "10.0.0.1", Value: "link down now"}); !bad {
		t.Fatal("glob should match")
	}
	if _, bad := e.Check(Input{Key: "192.168.0.1", Value: "down"}); bad {
		t.Fatal("key glob should not match")
	}
	if _, bad := e.Check(Input{Key: "10.0.0.1", Value: "up"}); bad {
		t.Fatal("value glob should not match")
	}
}

func TestAllowPolicyShortCircuits(t *testing.T) {
	e := mustEngine(t, []Policy{
		{Name: "allow-admin", Allow: true, Controller: "1", Cache: "LinksDB"},
		{Name: "deny-links", Cache: "LinksDB"},
	})
	if _, bad := e.Check(Input{Controller: 1, Cache: store.LinksDB}); bad {
		t.Fatal("allow policy should win for C1")
	}
	if name, bad := e.Check(Input{Controller: 2, Cache: store.LinksDB}); !bad || name != "deny-links" {
		t.Fatal("deny policy should match C2")
	}
}

func TestMatchHierarchyPolicy(t *testing.T) {
	e := mustEngine(t, []Policy{{
		Name:                  "match-hierarchy",
		Cache:                 "FlowsDB",
		RequireMatchHierarchy: true,
	}})
	bad := faults.InvalidHierarchyRule(3)
	if _, violated := e.Check(Input{Cache: store.FlowsDB, Value: bad.Encode()}); !violated {
		t.Fatal("invalid-hierarchy rule not flagged")
	}
	good := controller.FlowRule{DPID: 3, Match: openflow.MatchAll(), Priority: 1}
	if _, violated := e.Check(Input{Cache: store.FlowsDB, Value: good.Encode()}); violated {
		t.Fatal("valid rule wrongly flagged")
	}
	// Non-FlowsDB entries never match a hierarchy policy.
	if _, violated := e.Check(Input{Cache: store.HostDB, Value: "junk"}); violated {
		t.Fatal("non-flow cache flagged")
	}
}

func TestUnnamedPolicyGetsIndexName(t *testing.T) {
	e := mustEngine(t, []Policy{{Cache: "LinksDB"}})
	name, bad := e.Check(Input{Cache: store.LinksDB})
	if !bad || name != "policy#0" {
		t.Fatalf("name = %q", name)
	}
}

func TestCompileErrors(t *testing.T) {
	cases := []Policy{
		{Controller: "not-a-number"},
		{Trigger: "sideways"},
		{Operation: "truncate"},
		{Destination: "elsewhere"},
	}
	for i, p := range cases {
		if _, err := New([]Policy{p}); err == nil {
			t.Fatalf("case %d compiled", i)
		}
	}
}

func TestFirstMatchWins(t *testing.T) {
	e := mustEngine(t, []Policy{
		{Name: "first", Cache: "LinksDB"},
		{Name: "second", Cache: "LinksDB"},
	})
	name, _ := e.Check(Input{Cache: store.LinksDB})
	if name != "first" {
		t.Fatalf("got %q", name)
	}
}

func TestIndexedEngineAgreesWithLinear(t *testing.T) {
	var policies []Policy
	for i := 0; i < 100; i++ {
		policies = append(policies, Policy{
			Name:       fmt.Sprintf("p%d", i),
			Cache:      []string{"LinksDB", "FlowsDB", "HostDB", "*"}[i%4],
			Operation:  []string{"create", "update", "delete", "*"}[i%4],
			Controller: []string{"1", "2", "*", "*"}[i%4],
		})
	}
	lin := mustEngine(t, policies)
	idx, err := NewIndexed(policies)
	if err != nil {
		t.Fatal(err)
	}
	caches := []store.CacheName{store.LinksDB, store.FlowsDB, store.HostDB, store.ArpDB}
	ops := []store.Op{store.OpCreate, store.OpUpdate, store.OpDelete}
	for ci := range caches {
		for oi := range ops {
			for ctrl := 1; ctrl <= 3; ctrl++ {
				in := Input{Cache: caches[ci], Op: ops[oi], Controller: store.NodeID(ctrl)}
				n1, b1 := lin.Check(in)
				n2, b2 := idx.Check(in)
				if n1 != n2 || b1 != b2 {
					t.Fatalf("divergence on %+v: linear=(%q,%v) indexed=(%q,%v)", in, n1, b1, n2, b2)
				}
			}
		}
	}
}

func TestXMLRoundTrip(t *testing.T) {
	in := []Policy{
		{Name: "a", Allow: false, Controller: "*", Trigger: "internal", Cache: "EdgesDB", Entry: "*,*", Operation: "*", Destination: "*"},
		{Name: "b", Allow: true, Controller: "3", Trigger: "external", Cache: "FlowsDB", Entry: "k,*", Operation: "create", Destination: "remote", RequireMatchHierarchy: true},
	}
	data, err := MarshalXML(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := ParseXML(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("parsed %d policies", len(out))
	}
	if out[0].Allow || !out[1].Allow {
		t.Fatal("allow flags wrong")
	}
	if out[1].Controller != "3" || out[1].Cache != "FlowsDB" || !out[1].RequireMatchHierarchy {
		t.Fatalf("policy b mangled: %+v", out[1])
	}
	if _, err := New(out); err != nil {
		t.Fatalf("round-tripped policies failed to compile: %v", err)
	}
}

func TestParseXMLFig3Form(t *testing.T) {
	// The paper's Fig. 3 policy, as a single document.
	doc := `<Policy allow="No">
  <Controller id="*"/>
  <Action type="Internal"/>
  <Cache name="EdgesDB" entry="*,*" operation="*"/>
  <Destination value="*"/>
</Policy>`
	ps, err := ParseXML([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 1 {
		t.Fatalf("policies = %d", len(ps))
	}
	p := ps[0]
	if p.Allow || p.Cache != "EdgesDB" || p.Trigger != "internal" {
		t.Fatalf("parsed = %+v", p)
	}
	e := mustEngine(t, ps)
	if _, bad := e.Check(Input{Kind: trigger.Internal, Cache: store.EdgesDB, Op: store.OpUpdate}); !bad {
		t.Fatal("Fig. 3 policy did not fire")
	}
}

func TestParseXMLGarbage(t *testing.T) {
	if _, err := ParseXML([]byte("{json?}")); err == nil {
		t.Fatal("expected error")
	}
}

func TestGlobEdgeCases(t *testing.T) {
	tests := []struct {
		pattern string
		input   string
		want    bool
	}{
		{"*", "anything", true},
		{"", "anything", true},
		{"exact", "exact", true},
		{"exact", "exactly", false},
		{"pre*", "prefix", true},
		{"pre*", "nope", false},
		{"*fix", "suffix", true},
		{"*fix", "fixes", false},
		{"a*b*c", "aXbYc", true},
		{"a*b*c", "acb", false},
		{"**", "anything", true},
	}
	for _, tt := range tests {
		g := compileGlob(tt.pattern)
		if got := g.match(tt.input); got != tt.want {
			t.Errorf("glob(%q).match(%q) = %v, want %v", tt.pattern, tt.input, got, tt.want)
		}
	}
}

func TestDestinationParse(t *testing.T) {
	for _, s := range []string{"", "*", "any", "local", "remote", "LOCAL"} {
		if _, err := ParseDestination(s); err != nil {
			t.Fatalf("ParseDestination(%q): %v", s, err)
		}
	}
	if DestLocal.String() != "local" || DestRemote.String() != "remote" || DestAny.String() != "*" {
		t.Fatal("destination strings wrong")
	}
}

func TestLenAndEmptyEngine(t *testing.T) {
	e := mustEngine(t, nil)
	if e.Len() != 0 {
		t.Fatal("len wrong")
	}
	if _, bad := e.Check(Input{Cache: store.LinksDB}); bad {
		t.Fatal("empty engine denied something")
	}
}

func TestMarshalXMLIsReadable(t *testing.T) {
	data, err := MarshalXML([]Policy{{Name: "x", Cache: "LinksDB"}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `<Cache name="LinksDB"`) {
		t.Fatalf("unexpected XML:\n%s", data)
	}
}
