// Package loadgen is the streaming workload engine: it synthesizes
// Clos-scale traffic — heavy-tailed flow arrivals, host churn, link
// flaps, diurnal load swings — lazily on the simnet virtual clock, with
// memory proportional to the *active* flow set rather than the host
// population. internal/workload materializes per-host generator state
// and tops out around 10^4 endpoints; loadgen addresses endpoints by
// integer index (resolved through topo.FatTreeAttach / topo.HostMAC on
// demand), so a Source over 2^24 hosts costs the same bytes as one over
// 2^4. That is what lets the scale campaign push trigger rates into the
// millions per second against the sharded validation plane.
//
// Determinism: every stochastic stream (arrivals, sizes, endpoint picks,
// joins, leaves, flaps) owns a private RNG seeded by
// sweep.DeriveSeed(cfg.Seed, "loadgen/<stream>"), so streams are
// mutually independent and the event sequence is a pure function of the
// Config — byte-identical across processes, pull interleavings, and
// sweep parallelism.
//
// jurylint classifies loadgen as a concurrency bridge: the Source
// itself is single-goroutine (pull-based, driven from simnet callbacks)
// but its obs counters are scraped concurrently by exporters, so it
// uses the registry's atomic instruments rather than the sim-only
// exemptions.
package loadgen

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"github.com/jurysdn/jury/internal/obs"
	"github.com/jurysdn/jury/internal/simnet"
	"github.com/jurysdn/jury/internal/sweep"
)

// EventKind discriminates the events a Source emits.
type EventKind uint8

const (
	// FlowArrival is a new flow's first packet: a PACKET_IN trigger at
	// the source host's edge port.
	FlowArrival EventKind = iota
	// FlowEnd marks a tracked flow's last byte leaving the network.
	FlowEnd
	// HostJoin is a host (re)appearing: an ARP/discovery trigger that
	// updates the host store.
	HostJoin
	// HostLeave is a host disappearing from the edge.
	HostLeave
	// LinkFlap is a port-status transition on a fabric link.
	LinkFlap
)

// kindNames is indexed by EventKind; also the metric label values.
var kindNames = [...]string{"flow_arrival", "flow_end", "host_join", "host_leave", "link_flap"}

// String returns the snake_case kind name used in metrics and traces.
func (k EventKind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Event is one synthesized workload event. Events are plain values —
// emitting one allocates nothing.
type Event struct {
	At   time.Duration `json:"at_ns"` // vclock:wire -- virtual timestamp; consumers must not compare against wall time
	Kind EventKind     `json:"kind"`
	// Src and Dst are 1-based virtual host indices (FlowArrival/FlowEnd);
	// Src alone identifies the host for HostJoin/HostLeave. Resolve to
	// fabric coordinates with topo.FatTreeAttach / topo.HostMAC.
	Src uint64 `json:"src,omitempty"`
	Dst uint64 `json:"dst,omitempty"`
	// Bytes is the flow size (FlowArrival/FlowEnd only).
	Bytes uint64 `json:"bytes,omitempty"`
	// Link is a canonical link index (LinkFlap only); Up is the new
	// port status.
	Link int  `json:"link,omitempty"`
	Up   bool `json:"up,omitempty"`
}

// Config parameterizes a Source. The zero value is invalid; NewSource
// applies the documented defaults to zero fields.
type Config struct {
	// Hosts is the virtual endpoint population (≥ 2). Hosts are never
	// materialized: the value only bounds the index space events draw
	// from, so 2^24 costs no more than 16.
	Hosts uint64
	// Links bounds the link index space for flap events; 0 disables
	// flaps even when Churn.FlapRate is set.
	Links int
	// MeanRate is the peak flow-arrival rate in flows per second of
	// virtual time (required, > 0). The diurnal factor scales it down
	// off-peak.
	MeanRate float64
	// ArrivalAlpha is the Pareto shape of the interarrival process;
	// smaller is burstier. Default 1.5 (finite mean, infinite variance).
	ArrivalAlpha float64
	// SizeMu and SizeSigma parameterize the lognormal flow-size body.
	// Defaults exp(9.2)≈10 kB median with σ=1.5 — the classic
	// mice-and-elephants mix.
	SizeMu, SizeSigma float64
	// Sizes overrides the flow-size sampler; nil uses the lognormal.
	Sizes Sampler
	// BandwidthBps converts flow size to duration (last byte at
	// size·8/bandwidth). Default 100e6 (100 Mbit/s access links).
	BandwidthBps float64
	// Diurnal modulates MeanRate over the virtual day; zero disables.
	Diurnal DiurnalSpec
	// Churn drives host-join/leave and link-flap side streams; zero
	// disables them.
	Churn ChurnSpec
	// MaxActive bounds the tracked-flow heap — the only structure that
	// grows with load. Flows arriving past the bound still emit
	// FlowArrival (the trigger path must saturate) but skip FlowEnd and
	// count as untracked. Default 65536.
	MaxActive int
	// Seed roots every per-stream RNG via sweep.DeriveSeed.
	Seed int64
	// Metrics, when non-nil, registers the jury_loadgen_* families.
	Metrics *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.ArrivalAlpha == 0 {
		c.ArrivalAlpha = 1.5
	}
	if c.SizeMu == 0 {
		c.SizeMu = 9.2
	}
	if c.SizeSigma == 0 {
		c.SizeSigma = 1.5
	}
	if c.BandwidthBps == 0 {
		c.BandwidthBps = 100e6
	}
	if c.MaxActive == 0 {
		c.MaxActive = 1 << 16
	}
	return c
}

// flowEnd is a tracked flow awaiting its FlowEnd event.
type flowEnd struct {
	at       time.Duration
	src, dst uint64
	bytes    uint64
}

// Source is the pull-based event iterator. It is single-goroutine: call
// Next (or Drive) from one goroutine only; the atomic obs instruments
// are the sole state shared with metric scrapers.
type Source struct {
	cfg   Config
	inter Pareto // unit-mean interarrival kernel
	sizes Sampler

	// One private RNG per stochastic stream, each derived from
	// (Seed, stream name): consuming one stream never perturbs another.
	arrival, size, pick *rand.Rand
	join, leave, flap   *rand.Rand

	// Next pending time per stream; disabled streams sit at sentinel.
	nextArrival time.Duration
	nextJoin    time.Duration
	nextLeave   time.Duration
	nextFlap    time.Duration

	// active is a manual min-heap by flowEnd.at with capacity MaxActive,
	// preallocated so the steady-state pull path never allocates.
	active []flowEnd

	flapUp    bool
	generated uint64
	untracked uint64

	events     [len(kindNames)]*obs.Counter
	activeG    *obs.Gauge
	untrackedC *obs.Counter
}

// sentinel is "never": far enough out that no horizon reaches it.
const sentinel = time.Duration(math.MaxInt64)

// NewSource validates cfg, derives the per-stream RNGs and returns a
// Source positioned before its first event.
func NewSource(cfg Config) (*Source, error) {
	cfg = cfg.withDefaults()
	if cfg.Hosts < 2 {
		return nil, fmt.Errorf("loadgen: need >= 2 hosts, got %d", cfg.Hosts)
	}
	if cfg.MeanRate <= 0 {
		return nil, fmt.Errorf("loadgen: MeanRate must be positive, got %v", cfg.MeanRate)
	}
	if cfg.ArrivalAlpha <= 1 {
		return nil, fmt.Errorf("loadgen: ArrivalAlpha must exceed 1 (finite-mean interarrivals), got %v", cfg.ArrivalAlpha)
	}
	s := &Source{
		cfg:    cfg,
		inter:  UnitPareto(cfg.ArrivalAlpha),
		sizes:  cfg.Sizes,
		active: make([]flowEnd, 0, cfg.MaxActive),
	}
	if s.sizes == nil {
		s.sizes = Lognormal{Mu: cfg.SizeMu, Sigma: cfg.SizeSigma}
	}
	stream := func(name string) *rand.Rand {
		return rand.New(rand.NewSource(sweep.DeriveSeed(cfg.Seed, "loadgen/"+name)))
	}
	s.arrival = stream("arrival")
	s.size = stream("size")
	s.pick = stream("pick")
	s.join = stream("join")
	s.leave = stream("leave")
	s.flap = stream("flap")

	s.nextArrival = s.gap(s.arrival, 0, s.rate(0))
	s.nextJoin = s.expAfter(s.join, 0, cfg.Churn.JoinRate)
	s.nextLeave = s.expAfter(s.leave, 0, cfg.Churn.LeaveRate)
	if cfg.Links > 0 {
		s.nextFlap = s.expAfter(s.flap, 0, cfg.Churn.FlapRate)
	} else {
		s.nextFlap = sentinel
	}

	if reg := cfg.Metrics; reg != nil {
		for k, name := range kindNames {
			s.events[k] = reg.Counter("jury_loadgen_events_total",
				"Workload events synthesized, by kind.", obs.L("kind", name))
		}
		s.activeG = reg.Gauge("jury_loadgen_active_flows",
			"Flows currently tracked for FlowEnd emission.")
		s.untrackedC = reg.Counter("jury_loadgen_untracked_flows_total",
			"Flows admitted past MaxActive: triggered but never ended.")
	}
	return s, nil
}

// rate returns the instantaneous arrival rate at virtual time t, floored
// so a zero-trough diurnal cannot stall the stream at +Inf gaps.
func (s *Source) rate(t time.Duration) float64 {
	r := s.cfg.MeanRate * s.cfg.Diurnal.Factor(t)
	if min := s.cfg.MeanRate * 1e-6; r < min {
		r = min
	}
	return r
}

// gap returns now + a heavy-tailed interarrival at the given rate.
func (s *Source) gap(r *rand.Rand, now time.Duration, rate float64) time.Duration {
	d := time.Duration(s.inter.Sample(r) / rate * float64(time.Second))
	if d < 1 {
		d = 1 // strictly advancing: sub-nanosecond gaps round up
	}
	return now + d
}

// expAfter returns now + an exponential interarrival, or sentinel when
// the stream is disabled (rate ≤ 0).
func (s *Source) expAfter(r *rand.Rand, now time.Duration, rate float64) time.Duration {
	if rate <= 0 {
		return sentinel
	}
	d := time.Duration(r.ExpFloat64() / rate * float64(time.Second))
	if d < 1 {
		d = 1
	}
	return now + d
}

// pickHost draws a 1-based host index.
func (s *Source) pickHost() uint64 { return 1 + uint64(s.pick.Int63())%s.cfg.Hosts }

// Next synthesizes and returns the next event in virtual-time order.
// The stream is infinite; callers stop by horizon (see Drive). Ties
// resolve by fixed stream priority — FlowEnd, FlowArrival, HostJoin,
// HostLeave, LinkFlap — so the sequence is deterministic.
func (s *Source) Next() Event {
	at := s.nextArrival
	kind := FlowArrival
	if len(s.active) > 0 && s.active[0].at <= at {
		at = s.active[0].at
		kind = FlowEnd
	}
	if s.nextJoin < at {
		at = s.nextJoin
		kind = HostJoin
	}
	if s.nextLeave < at {
		at = s.nextLeave
		kind = HostLeave
	}
	if s.nextFlap < at {
		at = s.nextFlap
		kind = LinkFlap
	}

	ev := Event{At: at, Kind: kind}
	switch kind {
	case FlowEnd:
		f := s.popActive()
		ev.Src, ev.Dst, ev.Bytes = f.src, f.dst, f.bytes
		if s.activeG != nil {
			s.activeG.Add(-1)
		}
	case FlowArrival:
		src := s.pickHost()
		dst := s.pickHost()
		if dst == src { // deterministic collision fix-up, still uniform-ish
			dst = 1 + src%s.cfg.Hosts
		}
		bytes := uint64(s.sizes.Sample(s.size))
		if bytes < 64 {
			bytes = 64 // no sub-minimum frames
		}
		ev.Src, ev.Dst, ev.Bytes = src, dst, bytes
		end := at + time.Duration(float64(bytes)*8/s.cfg.BandwidthBps*float64(time.Second))
		if len(s.active) < cap(s.active) {
			s.pushActive(flowEnd{at: end, src: src, dst: dst, bytes: bytes})
			if s.activeG != nil {
				s.activeG.Add(1)
			}
		} else {
			s.untracked++
			if s.untrackedC != nil {
				s.untrackedC.Inc()
			}
		}
		s.nextArrival = s.gap(s.arrival, at, s.rate(at))
	case HostJoin:
		ev.Src = 1 + uint64(s.join.Int63())%s.cfg.Hosts
		s.nextJoin = s.expAfter(s.join, at, s.cfg.Churn.JoinRate)
	case HostLeave:
		ev.Src = 1 + uint64(s.leave.Int63())%s.cfg.Hosts
		s.nextLeave = s.expAfter(s.leave, at, s.cfg.Churn.LeaveRate)
	case LinkFlap:
		ev.Link = int(s.flap.Int63()) % s.cfg.Links
		s.flapUp = !s.flapUp
		ev.Up = s.flapUp
		s.nextFlap = s.expAfter(s.flap, at, s.cfg.Churn.FlapRate)
	}

	s.generated++
	if c := s.events[kind]; c != nil {
		c.Inc()
	}
	return ev
}

// pushActive inserts into the tracked-flow min-heap. Manual sift-up on a
// preallocated slice: container/heap would box every element into an
// interface and allocate on the hot path.
func (s *Source) pushActive(f flowEnd) {
	s.active = append(s.active, f)
	i := len(s.active) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if s.active[parent].at <= s.active[i].at {
			break
		}
		s.active[parent], s.active[i] = s.active[i], s.active[parent]
		i = parent
	}
}

// popActive removes and returns the earliest-ending tracked flow.
func (s *Source) popActive() flowEnd {
	top := s.active[0]
	last := len(s.active) - 1
	s.active[0] = s.active[last]
	s.active = s.active[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(s.active) && s.active[l].at < s.active[small].at {
			small = l
		}
		if r < len(s.active) && s.active[r].at < s.active[small].at {
			small = r
		}
		if small == i {
			break
		}
		s.active[i], s.active[small] = s.active[small], s.active[i]
		i = small
	}
	return top
}

// Generated returns the total events emitted so far.
func (s *Source) Generated() uint64 { return s.generated }

// Active returns the tracked-flow count — the only load-proportional
// state the Source holds.
func (s *Source) Active() int { return len(s.active) }

// Untracked returns how many flows overflowed MaxActive (arrived but
// will never emit FlowEnd).
func (s *Source) Untracked() uint64 { return s.untracked }

// Drive feeds the source into a simnet engine one event at a time: each
// callback schedules only its successor, so the engine's queue holds at
// most one loadgen event regardless of load (the lazy-synthesis
// contract). Generation stops at the first event past horizon; run the
// engine with eng.Run(horizon) as usual.
func (s *Source) Drive(eng *simnet.Engine, horizon time.Duration, fn func(Event)) {
	var step func()
	step = func() {
		ev := s.Next()
		if ev.At > horizon {
			return
		}
		eng.At(ev.At, func() {
			fn(ev)
			step()
		})
	}
	step()
}
